//go:build !race

package floorplanner_test

import "time"

// contractEpsilon is the slack the deadline-contract tests grant past
// TimeLimit: enough for one deadline-poll interval in the slowest engine
// (a single simplex pivot on the contract instance costs tens of
// milliseconds) plus model decode and validation.
const contractEpsilon = 250 * time.Millisecond
