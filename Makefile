# Tier-1 verification and build targets.
#
#   make check   format + vet + build + race tests (the CI gate)
#   make build   compile every package and the CLI/daemon binaries into bin/
#   make serve   run the floorplanning service daemon locally
#   make test      plain test run (no race detector; faster)
#   make bench     candidate-enumeration cache benchmarks (hit vs miss)
#   make obs-bench telemetry + profile-label overhead benchmarks (bare vs
#                  no-op vs recorder; labels off vs on)
#   make diag-smoke boot floorpland with chaos + fault injection, force an
#                  anomaly, and verify a diagnostic bundle lands (the CI
#                  diag job; artifacts under DIAG_SMOKE_DIR)
#   make bench-json run the floorbench harness and validate BENCH.json
#                  (tune with BENCH_INSTANCES/BENCH_ENGINES/BENCH_BUDGET/
#                   BENCH_REPEATS; CI runs a short smoke)
#   make bench-diff regression-gate BENCH.json against the committed
#                  baseline (BENCH_BASELINE, default BENCH_PR7.json):
#                  fails on significant p50 slowdowns, outcome drops or
#                  new budget violations, writes BENCH_DIFF.json
#   make sim-json  run the floorsim online-session driver and validate
#                  SIM.json (tune with SIM_DEVICE/SIM_EVENTS/SIM_SEED/
#                  SIM_INTENSITY; CI runs the seeded smoke)
#   make sim-faults run the floorsim soak under injected reconfiguration
#                  faults (SIM_FAULT_SEED) and validate the report —
#                  proves zero corrupted frames and zero lost tasks
#   make fuzz      short fuzz smoke over the wire-format decoders
#                  (FUZZTIME=10s per target by default)

GO       ?= go
BIN      := bin
FUZZTIME ?= 10s

BENCH_INSTANCES ?= sdr,sdr2,sdr3
BENCH_ENGINES   ?= exact,milp-ho,constructive
BENCH_BUDGET    ?= 2s
BENCH_REPEATS   ?= 1
BENCH_OUT       ?= BENCH.json

# Compare-gate knobs. The noise margins are deliberately generous for a
# repeats=1 run on shared CI hardware: a cell only regresses past BOTH
# +50% and +400ms on its median wall-clock.
BENCH_BASELINE    ?= BENCH_PR7.json
BENCH_NOISE_PCT   ?= 50
BENCH_NOISE_FLOOR ?= 400
BENCH_DIFF_OUT    ?= BENCH_DIFF.json

SIM_DEVICE    ?= fx70t
SIM_EVENTS    ?= 250
SIM_SEED      ?= 7
SIM_INTENSITY ?= 0.6
SIM_OUT       ?= SIM.json

SIM_FAULT_SEED ?= 7
SIM_FAULTS_OUT ?= SIM_FAULTS.json

.PHONY: check fmt vet build test race bench obs-bench diag-smoke bench-json bench-diff sim-json sim-faults fuzz serve clean

check: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...
	@mkdir -p $(BIN)
	$(GO) build -o $(BIN)/floorplanner ./cmd/floorplanner
	$(GO) build -o $(BIN)/floorpland   ./cmd/floorpland
	$(GO) build -o $(BIN)/relocate     ./cmd/relocate
	$(GO) build -o $(BIN)/experiments  ./cmd/experiments
	$(GO) build -o $(BIN)/floorbench   ./cmd/floorbench
	$(GO) build -o $(BIN)/floorsim     ./cmd/floorsim
	$(GO) build -o $(BIN)/floorplanctl ./cmd/floorplanctl

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkCandidate' -benchmem -benchtime 1x .

obs-bench:
	$(GO) test -run '^$$' -bench 'BenchmarkObsOverhead|BenchmarkProfileLabelOverhead' -benchmem .

diag-smoke:
	./scripts/diag_smoke.sh

bench-json:
	@mkdir -p $(BIN)
	$(GO) build -o $(BIN)/floorbench ./cmd/floorbench
	$(BIN)/floorbench -instances $(BENCH_INSTANCES) -engines $(BENCH_ENGINES) \
		-budget $(BENCH_BUDGET) -repeats $(BENCH_REPEATS) -out $(BENCH_OUT) $(BENCH_FLAGS)
	$(BIN)/floorbench -validate $(BENCH_OUT)

bench-diff:
	@mkdir -p $(BIN)
	$(GO) build -o $(BIN)/floorbench ./cmd/floorbench
	$(BIN)/floorbench -compare $(BENCH_BASELINE) -noise-pct $(BENCH_NOISE_PCT) \
		-noise-floor $(BENCH_NOISE_FLOOR) -diff-out $(BENCH_DIFF_OUT) \
		$(BENCH_DIFF_FLAGS) $(BENCH_OUT)

sim-json:
	@mkdir -p $(BIN)
	$(GO) build -o $(BIN)/floorsim ./cmd/floorsim
	$(BIN)/floorsim -device $(SIM_DEVICE) -events $(SIM_EVENTS) -seed $(SIM_SEED) \
		-intensity $(SIM_INTENSITY) -out $(SIM_OUT)
	$(BIN)/floorsim -validate $(SIM_OUT)

sim-faults:
	@mkdir -p $(BIN)
	$(GO) build -o $(BIN)/floorsim ./cmd/floorsim
	$(BIN)/floorsim -device $(SIM_DEVICE) -events $(SIM_EVENTS) -seed $(SIM_SEED) \
		-intensity $(SIM_INTENSITY) -faults seed:$(SIM_FAULT_SEED) -out $(SIM_FAULTS_OUT)
	$(BIN)/floorsim -validate $(SIM_FAULTS_OUT)

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzProblemDecode      -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz FuzzSolveRequestDecode -fuzztime $(FUZZTIME) ./internal/server
	$(GO) test -run '^$$' -fuzz FuzzDecode             -fuzztime $(FUZZTIME) ./internal/bitstream
	$(GO) test -run '^$$' -fuzz FuzzWALReplay          -fuzztime $(FUZZTIME) ./internal/session

serve: build
	$(BIN)/floorpland -addr :8080

clean:
	rm -rf $(BIN)
