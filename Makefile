# Tier-1 verification and build targets.
#
#   make check   format + vet + build + race tests (the CI gate)
#   make build   compile every package and the CLI/daemon binaries into bin/
#   make serve   run the floorplanning service daemon locally
#   make test      plain test run (no race detector; faster)
#   make bench     candidate-enumeration cache benchmarks (hit vs miss)
#   make obs-bench telemetry overhead benchmarks (bare vs no-op vs recorder)
#   make fuzz      short fuzz smoke over the wire-format decoders
#                  (FUZZTIME=10s per target by default)

GO       ?= go
BIN      := bin
FUZZTIME ?= 10s

.PHONY: check fmt vet build test race bench obs-bench fuzz serve clean

check: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...
	@mkdir -p $(BIN)
	$(GO) build -o $(BIN)/floorplanner ./cmd/floorplanner
	$(GO) build -o $(BIN)/floorpland   ./cmd/floorpland
	$(GO) build -o $(BIN)/relocate     ./cmd/relocate
	$(GO) build -o $(BIN)/experiments  ./cmd/experiments

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkCandidate' -benchmem -benchtime 1x .

obs-bench:
	$(GO) test -run '^$$' -bench 'BenchmarkObsOverhead' -benchmem .

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzProblemDecode      -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz FuzzSolveRequestDecode -fuzztime $(FUZZTIME) ./internal/server
	$(GO) test -run '^$$' -fuzz FuzzDecode             -fuzztime $(FUZZTIME) ./internal/bitstream

serve: build
	$(BIN)/floorpland -addr :8080

clean:
	rm -rf $(BIN)
