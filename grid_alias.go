package floorplanner

import "repro/internal/grid"

// gridRect aliases the internal geometry type so the public API can speak
// in rectangles without exposing the internal package path directly.
type gridRect = grid.Rect

// NewRect returns the rectangle with top-left corner (x, y), width w and
// height h, all in tiles.
func NewRect(x, y, w, h int) Rect { return grid.NewRect(x, y, w, h) }
