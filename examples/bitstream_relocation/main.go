// Bitstream relocation end to end: floorplan the SDR2 design, generate a
// synthetic partial bitstream for the Carrier Recovery region, and use
// the REPLICA/BiRF-style software filter to relocate it into the
// free-compatible areas the floorplanner reserved — then verify, through
// the configuration-memory simulator, that the relocated task is
// functionally identical and that relocating to a non-compatible area is
// rejected.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	floorplanner "repro"
	"repro/internal/bitstream"
	"repro/internal/sdr"
)

func main() {
	p := sdr.SDR2()
	sol, err := floorplanner.Solve(context.Background(), p, floorplanner.Options{
		Engine:    "exact",
		TimeLimit: 60 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	ri := p.RegionIndex(sdr.CarrierRecovery)
	src := sol.Regions[ri]
	targets := sol.PlacedFCFor(p, ri)
	fmt.Printf("Carrier Recovery placed at %v with %d reserved relocation targets\n", src, len(targets))

	// Generate the partial bitstream for the region (1040-byte frames,
	// position-independent payloads, CRC-sealed).
	bs, err := bitstream.Generate(p.Device, src, 0xC0FFEE)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d configuration frames (device model says %d)\n",
		bs.FrameCount(), p.Device.FramesInRect(src))

	cm := bitstream.NewConfigMemory(p.Device)
	if err := cm.Load(bs, "carrier-recovery"); err != nil {
		log.Fatal(err)
	}

	// Relocate into every reserved area and verify functional
	// equivalence after each move.
	for i, target := range targets {
		task := fmt.Sprintf("carrier-recovery-%d", i+1)
		moved, err := bitstream.Relocate(p.Device, bs, target)
		if err != nil {
			log.Fatalf("relocating to %v: %v", target, err)
		}
		if err := cm.Load(moved, task); err != nil {
			log.Fatalf("configuring %v: %v", target, err)
		}
		equivalent := cm.TaskEquivalent("carrier-recovery", src, task, target)
		fmt.Printf("  relocated to %v: CRC ok=%v, functionally equivalent=%v\n",
			target, moved.CheckCRC(), equivalent)
	}

	// Show that the filter refuses a non-compatible target: same shape,
	// wrong column signature.
	for x := 0; x+src.W <= p.Device.Width(); x++ {
		cand := floorplanner.NewRect(x, src.Y, src.W, src.H)
		if p.Device.CanPlace(cand) && !p.Device.Compatible(src, cand) {
			_, err := bitstream.Relocate(p.Device, bs, cand)
			fmt.Printf("  relocation to non-compatible %v rejected: %v\n", cand, err != nil)
			break
		}
	}

	// And the serialized form round-trips (what would be shipped to the
	// configuration port).
	data, err := bs.Bytes()
	if err != nil {
		log.Fatal(err)
	}
	back, err := bitstream.DecodeBytes(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded %d bytes, decode CRC ok=%v\n", len(data), back.CheckCRC())
}
