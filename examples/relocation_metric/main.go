// Relocation as a metric (Section V): rather than demanding
// free-compatible areas, the designer states how many they would like and
// the floorplanner trades missed areas against the objective. Areas that
// cannot exist (the Matched Filter's, per the feasibility analysis) are
// reported missed while everything else is still optimized.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	floorplanner "repro"
	"repro/internal/sdr"
)

func main() {
	p := sdr.Problem()
	// Wish for one relocation target per module — including the two
	// (Matched Filter, Video Decoder) that provably have none.
	for ri, r := range p.Regions {
		weight := 1.0
		if r.Name == sdr.VideoDecoder {
			weight = 3.0 // pretend the video decoder matters most
		}
		p.FCAreas = append(p.FCAreas, floorplanner.FCRequest{
			Region: ri,
			Mode:   floorplanner.RelocMetric,
			Weight: weight,
		})
	}

	sol, err := floorplanner.Solve(context.Background(), p, floorplanner.Options{
		Engine:    "exact",
		TimeLimit: 120 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	m := sol.Metrics(p)
	fmt.Printf("requested %d areas, placed %d, weighted miss cost %.1f\n\n",
		len(p.FCAreas), m.PlacedFC, m.RelocationMiss)
	for _, fc := range sol.FC {
		req := p.FCAreas[fc.Request]
		name := p.Regions[req.Region].Name
		if fc.Placed {
			fmt.Printf("  %-18s -> reserved %v\n", name, fc.Rect)
		} else {
			fmt.Printf("  %-18s -> MISSED (weight %.1f) — no compatible free area exists\n",
				name, req.EffectiveWeight())
		}
	}
	fmt.Println()
	fmt.Print(floorplanner.RenderASCII(p, sol))
}
