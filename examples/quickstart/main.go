// Quickstart: build a small columnar device, place two regions with one
// relocatable region, and print the floorplan.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	floorplanner "repro"
	"repro/internal/device"
)

func main() {
	// A 16x4 fabric: CLB columns with one BRAM column (4) and one DSP
	// column (9).
	cols := make([]device.TypeID, 16)
	for i := range cols {
		cols[i] = device.V5CLB
	}
	cols[4] = device.V5BRAM
	cols[9] = device.V5DSP
	dev, err := floorplanner.NewColumnarDevice("demo", cols, 4, device.V5Types(), nil)
	if err != nil {
		log.Fatal(err)
	}

	p := &floorplanner.Problem{
		Device: dev,
		Regions: []floorplanner.Region{
			{Name: "dsp-task", Req: floorplanner.Requirements{
				floorplanner.ClassCLB: 4, floorplanner.ClassDSP: 2}},
			{Name: "mem-task", Req: floorplanner.Requirements{
				floorplanner.ClassCLB: 3, floorplanner.ClassBRAM: 1}},
		},
		Nets:      []floorplanner.Net{{A: 0, B: 1, Weight: 32}},
		Objective: floorplanner.DefaultObjective(),
	}
	// Ask for one guaranteed relocation target for the memory task.
	p.FCAreas = []floorplanner.FCRequest{
		{Region: 1, Mode: floorplanner.RelocConstraint},
	}

	sol, err := floorplanner.Solve(context.Background(), p, floorplanner.Options{
		Engine:    "exact",
		TimeLimit: 10 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(sol.Summary(p))
	fmt.Println()
	fmt.Print(floorplanner.RenderASCII(p, sol))

	m := sol.Metrics(p)
	fmt.Printf("\nwasted frames: %d, wire length: %.1f, relocation targets: %d\n",
		m.WastedFrames, m.WireLength, m.PlacedFC)
}
