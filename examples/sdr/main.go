// SDR: the paper's Section VI case study. Places the five-module
// software-defined-radio design on the Virtex-5 FX70T with two reserved
// relocation targets per relocatable region (the SDR2 instance) and
// renders the floorplan of Figure 4.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	floorplanner "repro"
	"repro/internal/sdr"
)

func main() {
	p := sdr.SDR2()

	fmt.Println("SDR2: five SDR modules + 2 free-compatible areas per")
	fmt.Println("relocatable region (Carrier Recovery, Demodulator, Signal Decoder)")
	fmt.Println()

	sol, err := floorplanner.Solve(context.Background(), p, floorplanner.Options{
		Engine:    "exact",
		TimeLimit: 60 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(sol.Summary(p))
	fmt.Println()
	fmt.Print(floorplanner.RenderASCII(p, sol))

	m := sol.Metrics(p)
	fmt.Printf("\nRelocation cost: the same design without free-compatible areas\n")
	base := sdr.Problem()
	baseSol, err := floorplanner.Solve(context.Background(), base, floorplanner.Options{
		Engine:    "exact",
		TimeLimit: 60 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	bm := baseSol.Metrics(base)
	fmt.Printf("  without relocation: %4d wasted frames, wire length %.0f\n", bm.WastedFrames, bm.WireLength)
	fmt.Printf("  with 6 FC areas:    %4d wasted frames, wire length %.0f\n", m.WastedFrames, m.WireLength)
	fmt.Printf("  -> reserving %d relocation targets costs %+d frames and %+.0f wire length\n",
		m.PlacedFC, m.WastedFrames-bm.WastedFrames, m.WireLength-bm.WireLength)
}
