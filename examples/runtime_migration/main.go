// Runtime migration: operate the floorplanned SDR system over simulated
// time. Quantifies the two benefits the paper's introduction claims for
// bitstream relocation: rapid run-time changes (partial reconfiguration
// of one region's frames vs. the whole device) and design re-use (one
// stored bitstream per module mode serves every reserved area).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	floorplanner "repro"
	"repro/internal/reconfig"
	"repro/internal/sdr"
)

func main() {
	p := sdr.SDR2()
	sol, err := floorplanner.Solve(context.Background(), p, floorplanner.Options{
		Engine:    "exact",
		TimeLimit: 60 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	mgr, err := reconfig.New(p, sol, reconfig.DefaultFrameTime)
	if err != nil {
		log.Fatal(err)
	}

	// Bring the whole radio up, one module per region.
	for ri := range p.Regions {
		if err := mgr.Configure(ri, int64(ri), 0); err != nil {
			log.Fatalf("configuring %s: %v", p.Regions[ri].Name, err)
		}
	}
	fmt.Printf("system up: %d configurations, port busy %s\n",
		mgr.Stats().Configurations, mgr.Stats().BusyTime)

	// Latency: partial vs full reconfiguration (the intro's motivation).
	fmt.Printf("\nreconfiguration latency (at %s per frame):\n", reconfig.DefaultFrameTime)
	fmt.Printf("  full device:         %s\n", mgr.FullDeviceReconfig())
	for _, ri := range sdr.RelocatableRegions(p) {
		fmt.Printf("  %-18s   %s\n", p.Regions[ri].Name+":", mgr.RegionReconfig(ri))
	}

	// Migrate every relocatable module through its reserved areas and
	// back — e.g. to free a neighborhood for a maintenance task.
	fmt.Println("\nmigrating relocatable modules through their reserved areas:")
	for _, ri := range sdr.RelocatableRegions(p) {
		name := p.Regions[ri].Name
		slots := mgr.Slots(ri)
		for s := 1; s < len(slots); s++ {
			if err := mgr.Relocate(ri, s); err != nil {
				log.Fatalf("relocating %s to slot %d: %v", name, s, err)
			}
			fmt.Printf("  %-18s -> slot %d at %v\n", name, s, slots[s].Area)
		}
		if err := mgr.Relocate(ri, 0); err != nil {
			log.Fatalf("returning %s home: %v", name, err)
		}
	}
	st := mgr.Stats()
	fmt.Printf("performed %d relocations, %d frames written, port busy %s total\n",
		st.Relocations, st.FramesWritten, st.BusyTime)

	// Storage: one relocatable bitstream per mode vs one per (mode, slot).
	fmt.Println("\nbitstream storage for 4 modes per module:")
	rows, err := mgr.StorageReport(4)
	if err != nil {
		log.Fatal(err)
	}
	var with, without int
	for _, r := range rows {
		fmt.Printf("  %-18s slots=%d  relocatable=%7d B   per-slot copies=%7d B\n",
			r.Region, r.Slots, r.WithRelocation, r.WithoutRelocation)
		with += r.WithRelocation
		without += r.WithoutRelocation
	}
	fmt.Printf("  total: %d B vs %d B -> relocation saves %.0f%% of bitstream storage\n",
		with, without, 100*(1-float64(with)/float64(without)))
}
