// Package floorplanner is a relocation-aware floorplanner for
// partially-reconfigurable FPGA-based systems — an open reimplementation
// of Rabozzi et al., "Relocation-aware Floorplanning for
// Partially-Reconfigurable FPGA-based Systems" (IPDPSW 2015).
//
// The floorplanner places a design's reconfigurable regions on a
// tile-modeled FPGA and, on request, reserves free-compatible areas:
// spare rectangles with the same shape and tile-type layout as a region,
// into which that region's partial bitstream can later be relocated by a
// REPLICA/BiRF-style filter (also provided, in internal/bitstream).
//
// # Quick start
//
//	dev := floorplanner.VirtexFX70T()
//	p := &floorplanner.Problem{
//	    Device: dev,
//	    Regions: []floorplanner.Region{
//	        {Name: "filter", Req: floorplanner.Requirements{
//	            floorplanner.ClassCLB: 25, floorplanner.ClassDSP: 5}},
//	    },
//	}
//	p.FCAreas = []floorplanner.FCRequest{{Region: 0, Mode: floorplanner.RelocConstraint}}
//	sol, err := floorplanner.Solve(ctx, p, floorplanner.Options{})
//
// # Engines
//
//	exact        combinatorial branch-and-bound specialized to columnar
//	             devices; proves lexicographic optimality (default)
//	milp-o       the paper's O algorithm: full MILP via the built-in
//	             branch-and-bound LP solver
//	milp-ho      the paper's HO algorithm: MILP restricted to the
//	             sequence pair of a heuristic seed
//	constructive deterministic greedy placer
//	annealing    simulated-annealing baseline in the spirit of [9]
//	tessellation greedy columnar packer in the spirit of [8]
//	portfolio    races exact, milp-ho and the heuristics concurrently
//	             under one shared time budget and returns the best answer
//	fallback     tries exact, then milp-ho, then constructive under one
//	             shared budget, degrading past panics, invalid solutions
//	             and per-stage timeouts (see internal/guard)
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-versus-measured evaluation.
package floorplanner

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/exact"
	"repro/internal/flight"
	"repro/internal/guard"
	"repro/internal/heuristic"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/portfolio"
)

// Re-exported problem/solution types: the stable public surface.
type (
	// Problem is a relocation-aware floorplanning instance.
	Problem = core.Problem
	// Region is a reconfigurable region to place.
	Region = core.Region
	// Net is a weighted two-pin connection between regions.
	Net = core.Net
	// FCRequest asks for one free-compatible area for a region.
	FCRequest = core.FCRequest
	// RelocMode selects constraint- or metric-mode relocation.
	RelocMode = core.RelocMode
	// Objective weighs the cost terms (Equation 14 of the paper).
	Objective = core.Objective
	// Solution is a computed floorplan.
	Solution = core.Solution
	// FCPlacement records the outcome of one FCRequest in a Solution.
	FCPlacement = core.FCPlacement
	// Metrics are a solution's raw cost terms.
	Metrics = core.Metrics
	// Engine is a floorplanning algorithm.
	Engine = core.Engine
	// SolveOptions carries engine-independent solver knobs.
	SolveOptions = core.SolveOptions

	// Probe observes a solve (telemetry); see the internal obs package
	// docs for the event taxonomy. nil means no observation at zero cost.
	Probe = obs.Probe
	// Span is one engine's (or stage's) observation scope on a Probe.
	Span = obs.Span
	// Recorder is the in-memory Probe used for traces and telemetry
	// tables; construct with NewRecorder.
	Recorder = obs.Recorder
	// Trace is the wire-format snapshot of a recorded solve.
	Trace = obs.Trace

	// Device is the tile-level FPGA model.
	Device = device.Device
	// TileType describes one tile type.
	TileType = device.TileType
	// Requirements states tiles-per-class needs.
	Requirements = device.Requirements
	// Class names a resource family (CLB, BRAM, DSP, ...).
	Class = device.Class
)

// Relocation handling modes.
const (
	// RelocConstraint makes a free-compatible area mandatory.
	RelocConstraint = core.RelocConstraint
	// RelocMetric trades missing areas against the objective.
	RelocMetric = core.RelocMetric
)

// Resource classes.
const (
	ClassCLB  = device.ClassCLB
	ClassBRAM = device.ClassBRAM
	ClassDSP  = device.ClassDSP
	ClassIO   = device.ClassIO
)

// Errors.
var (
	// ErrInfeasible reports a provably unsatisfiable problem.
	ErrInfeasible = core.ErrInfeasible
	// ErrNoSolution reports an exhausted budget without a solution.
	ErrNoSolution = core.ErrNoSolution
)

// VirtexFX70T returns the tile model of the paper's target device.
func VirtexFX70T() *Device { return device.VirtexFX70T() }

// Kintex7K160T returns a larger 7-series-class columnar device, per the
// paper's claim that the columnar description covers recent families.
func Kintex7K160T() *Device { return device.Kintex7K160T() }

// NewColumnarDevice builds a custom columnar device; see device.NewColumnar.
func NewColumnarDevice(name string, colTypes []device.TypeID, h int, types []TileType, forbidden []Rect) (*Device, error) {
	return device.NewColumnar(name, colTypes, h, types, forbidden)
}

// Rect is a rectangle of tiles.
type Rect = gridRect

// DefaultObjective returns the paper's evaluation objective
// (lexicographic: relocation misses, wasted frames, wire length).
func DefaultObjective() Objective { return core.DefaultObjective() }

// Options selects and tunes an engine for Solve.
type Options struct {
	// Engine names the algorithm (see the package documentation);
	// empty selects "exact".
	Engine string
	// TimeLimit bounds the solve.
	TimeLimit time.Duration
	// Seed drives randomized engines.
	Seed int64
	// Workers bounds parallelism where supported.
	Workers int
	// Members selects the "portfolio" engine's racing members or the
	// "fallback" engine's degradation chain, by name (empty = the engine's
	// default set); ignored by every other engine.
	Members []string
	// Probe, when non-nil, observes the solve: counters, incumbent
	// trajectory and span outcomes. Use NewRecorder for the built-in
	// recording probe.
	Probe Probe
}

// NewRecorder returns a recording probe: pass it in Options.Probe, then
// read the telemetry via its Trace or Table methods.
func NewRecorder() *Recorder { return obs.NewRecorder() }

// NewEngine instantiates an engine by name.
func NewEngine(name string) (Engine, error) {
	switch name {
	case "", "exact":
		return &exact.Engine{}, nil
	case "milp-o":
		return &model.OEngine{}, nil
	case "milp-ho":
		return &model.HOEngine{}, nil
	case "constructive":
		return &heuristic.Constructive{}, nil
	case "annealing":
		return &heuristic.Annealing{}, nil
	case "tessellation":
		return &heuristic.Tessellation{}, nil
	case "portfolio":
		return portfolio.New(), nil
	case "fallback":
		return NewFallback()
	default:
		return nil, fmt.Errorf("floorplanner: unknown engine %q", name)
	}
}

// NewPortfolio builds a portfolio engine racing the named members
// (empty = the default race: exact, milp-ho and the three heuristics).
// Infeasibility verdicts are trusted only from engines that search the
// full solution space (exact, milp-o); milp-ho's MILP is restricted to
// its seed's sequence pair, so its verdicts are not proofs.
func NewPortfolio(members ...string) (Engine, error) {
	ms := make([]portfolio.Member, 0, len(members))
	for _, name := range members {
		if name == "portfolio" {
			return nil, fmt.Errorf("floorplanner: portfolio cannot race itself")
		}
		eng, err := NewEngine(name)
		if err != nil {
			return nil, err
		}
		ms = append(ms, portfolio.Member{
			Engine:          eng,
			TrustInfeasible: name == "exact" || name == "milp-o",
		})
	}
	return portfolio.New(ms...), nil
}

// DefaultFallbackChain is the fallback engine's default degradation
// order: the optimality-proving engine first, the paper's fast HO flow
// next, and the deterministic greedy placer as the last resort.
func DefaultFallbackChain() []string { return []string{"exact", "milp-ho", "constructive"} }

// NewFallback builds a graceful-degradation chain trying the named
// engines in order (empty = DefaultFallbackChain) under one shared
// budget. Each stage runs guarded: the chain advances past panics,
// invalid solutions, errors and per-stage budget expiry, so the caller
// gets the best answer the remaining budget allows. Infeasibility
// verdicts end the chain only from engines that search the full solution
// space (exact, milp-o).
func NewFallback(members ...string) (Engine, error) {
	if len(members) == 0 {
		members = DefaultFallbackChain()
	}
	ms := make([]guard.FallbackMember, 0, len(members))
	for _, name := range members {
		if name == "fallback" {
			return nil, fmt.Errorf("floorplanner: fallback cannot chain itself")
		}
		eng, err := NewEngine(name)
		if err != nil {
			return nil, err
		}
		ms = append(ms, guard.FallbackMember{
			Engine:          eng,
			TrustInfeasible: name == "exact" || name == "milp-o",
		})
	}
	return guard.NewFallback(ms...), nil
}

// EngineNames lists the available engines.
func EngineNames() []string {
	return []string{"exact", "milp-o", "milp-ho", "constructive", "annealing", "tessellation", "portfolio", "fallback"}
}

// SolveRecord is one entry of the flight recorder's ring: a finished
// solve's engine, outcome, objective, duration and stage timings. See
// RecentSolves.
type SolveRecord = flight.Record

// RecentSolves returns up to n records of the most recent Solve calls in
// this process, newest first (n <= 0 returns everything the ring holds).
// The ring keeps the last flight.DefaultSize solves.
func RecentSolves(n int) []SolveRecord { return flight.Default().Last(n) }

// Solve runs the selected engine on the problem. Every solve runs under
// the guard layer: panics are recovered into structured errors and the
// returned solution is verified (Solution.Validate plus an
// objective-consistency check) before being returned. Each call also
// appends one record to the process-wide flight recorder (RecentSolves).
func Solve(ctx context.Context, p *Problem, opts Options) (*Solution, error) {
	var eng Engine
	var err error
	switch {
	case opts.Engine == "portfolio" && len(opts.Members) > 0:
		eng, err = NewPortfolio(opts.Members...)
	case opts.Engine == "fallback" && len(opts.Members) > 0:
		eng, err = NewFallback(opts.Members...)
	default:
		eng, err = NewEngine(opts.Engine)
	}
	if err != nil {
		return nil, err
	}
	ctx, stages := guard.WithStageLog(ctx)
	started := time.Now()
	sol, err := guard.Wrap(eng).Solve(ctx, p, SolveOptions{
		TimeLimit: opts.TimeLimit,
		Seed:      opts.Seed,
		Workers:   opts.Workers,
		Probe:     opts.Probe,
	})
	rec := flight.Record{
		RequestDigest: guard.RequestDigest(p),
		Engine:        eng.Name(),
		Outcome:       string(core.ObsOutcome(sol, err)),
		DurationMS:    float64(time.Since(started)) / float64(time.Millisecond),
	}
	if sol != nil {
		obj := sol.Objective(p)
		rec.Objective = &obj
	}
	if err != nil {
		rec.Err = err.Error()
	}
	for _, st := range stages.Stages() {
		rec.Stages = append(rec.Stages, flight.Stage{
			Engine:    st.Engine,
			Outcome:   st.Outcome,
			ElapsedMS: float64(st.Elapsed) / float64(time.Millisecond),
			Err:       st.Err,
		})
	}
	flight.Default().Record(rec)
	return sol, err
}

// RenderASCII draws a floorplan as text (Figures 4-5 style).
func RenderASCII(p *Problem, s *Solution) string { return core.RenderASCII(p, s) }

// RenderSVG draws a floorplan as an SVG document.
func RenderSVG(p *Problem, s *Solution) string { return core.RenderSVG(p, s) }
