package floorplanner_test

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	floorplanner "repro"
	"repro/internal/device"
	"repro/internal/sdr"
)

func quickProblem(t *testing.T) *floorplanner.Problem {
	t.Helper()
	cols := make([]device.TypeID, 16)
	for i := range cols {
		cols[i] = device.V5CLB
	}
	cols[4] = device.V5BRAM
	cols[9] = device.V5DSP
	dev, err := floorplanner.NewColumnarDevice("demo", cols, 4, device.V5Types(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return &floorplanner.Problem{
		Device: dev,
		Regions: []floorplanner.Region{
			{Name: "a", Req: floorplanner.Requirements{floorplanner.ClassCLB: 4, floorplanner.ClassDSP: 2}},
			{Name: "b", Req: floorplanner.Requirements{floorplanner.ClassCLB: 3, floorplanner.ClassBRAM: 1}},
		},
		Nets:      []floorplanner.Net{{A: 0, B: 1, Weight: 32}},
		FCAreas:   []floorplanner.FCRequest{{Region: 1, Mode: floorplanner.RelocConstraint}},
		Objective: floorplanner.DefaultObjective(),
	}
}

func TestSolveAllEngines(t *testing.T) {
	p := quickProblem(t)
	for _, name := range floorplanner.EngineNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			sol, err := floorplanner.Solve(context.Background(), p, floorplanner.Options{
				Engine:    name,
				TimeLimit: 30 * time.Second,
				Seed:      3,
			})
			if errors.Is(err, floorplanner.ErrNoSolution) && (name == "annealing" || name == "tessellation") {
				t.Skipf("%s could not pack the FC area (allowed for baselines)", name)
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := sol.Validate(p); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSolveRecordsFlight(t *testing.T) {
	p := quickProblem(t)
	sol, err := floorplanner.Solve(context.Background(), p, floorplanner.Options{
		Engine:    "exact",
		TimeLimit: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := floorplanner.RecentSolves(1)
	if len(recs) != 1 {
		t.Fatalf("RecentSolves(1) returned %d records", len(recs))
	}
	rec := recs[0]
	if rec.Engine != "exact" {
		t.Errorf("recorded engine %q, want exact", rec.Engine)
	}
	if rec.Outcome != "proven" {
		t.Errorf("recorded outcome %q, want proven", rec.Outcome)
	}
	if rec.Objective == nil || *rec.Objective != sol.Objective(p) {
		t.Errorf("recorded objective %v, want %v", rec.Objective, sol.Objective(p))
	}
	if rec.RequestDigest == "" {
		t.Error("record has no request digest")
	}
	if rec.DurationMS < 0 {
		t.Errorf("record has negative duration %v", rec.DurationMS)
	}
}

func TestSolveRecordsFallbackStages(t *testing.T) {
	p := quickProblem(t)
	if _, err := floorplanner.Solve(context.Background(), p, floorplanner.Options{
		Engine:    "fallback",
		TimeLimit: 30 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	recs := floorplanner.RecentSolves(1)
	if len(recs) != 1 || recs[0].Engine != "fallback" {
		t.Fatalf("newest record is not the fallback solve: %+v", recs)
	}
	stages := recs[0].Stages
	if len(stages) == 0 {
		t.Fatal("fallback record has no stage timings")
	}
	if stages[0].Engine != "exact" || stages[0].Outcome != "proven" {
		t.Errorf("stage 0 = %s/%s, want exact/proven (the chain's first member wins on this instance)",
			stages[0].Engine, stages[0].Outcome)
	}
}

func TestSolveUnknownEngine(t *testing.T) {
	p := quickProblem(t)
	if _, err := floorplanner.Solve(context.Background(), p, floorplanner.Options{Engine: "nope"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestSolveInfeasibleSurfaced(t *testing.T) {
	p := quickProblem(t)
	p.Regions[0].Req[floorplanner.ClassDSP] = 99
	_, err := floorplanner.Solve(context.Background(), p, floorplanner.Options{})
	if !errors.Is(err, floorplanner.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestRenderers(t *testing.T) {
	p := quickProblem(t)
	sol, err := floorplanner.Solve(context.Background(), p, floorplanner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ascii := floorplanner.RenderASCII(p, sol); !strings.Contains(ascii, "A") {
		t.Fatal("ASCII render missing regions")
	}
	if svg := floorplanner.RenderSVG(p, sol); !strings.HasPrefix(svg, "<svg") {
		t.Fatal("SVG render invalid")
	}
}

func TestProblemJSONRoundTrip(t *testing.T) {
	p := sdr.SDR2()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back floorplanner.Problem
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(back.Regions) != 5 || len(back.FCAreas) != 6 {
		t.Fatalf("round trip lost content: %d regions, %d FC areas", len(back.Regions), len(back.FCAreas))
	}
	if back.Device.Width() != 41 || back.Device.Height() != 8 {
		t.Fatal("device lost in round trip")
	}
	// The round-tripped problem must be solvable identically.
	sol, err := floorplanner.Solve(context.Background(), &back, floorplanner.Options{TimeLimit: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(&back); err != nil {
		t.Fatal(err)
	}
}

func TestNewRect(t *testing.T) {
	r := floorplanner.NewRect(1, 2, 3, 4)
	if r.X != 1 || r.Y != 2 || r.W != 3 || r.H != 4 {
		t.Fatalf("rect = %+v", r)
	}
}

func TestVirtexFX70T(t *testing.T) {
	d := floorplanner.VirtexFX70T()
	if d.Name() != "xc5vfx70t" {
		t.Fatalf("name = %s", d.Name())
	}
}
