#!/usr/bin/env bash
# diag_smoke.sh — end-to-end smoke for the diagnostics pipeline (the CI
# diag-smoke job; also runnable locally via `make diag-smoke`).
#
# Boots floorpland with fault injection, scripted chaos (the first solve
# panics), continuous profiling and an armed diag dir; forces the panic
# anomaly over HTTP; and verifies:
#
#   1. exactly one anomaly bundle lands in -diag-dir (rate limit holds
#      against the follow-up panic),
#   2. the archive lists manifest.json first plus the runtime dumps,
#   3. /metrics exposes the panic trigger and profiler cycles,
#   4. SIGUSR2 captures an on-demand bundle bypassing the rate limit,
#   5. floorplanctl diag fetches and unpacks a bundle over HTTP.
set -euo pipefail

cd "$(dirname "$0")/.."

DIR=${DIAG_SMOKE_DIR:-$(mktemp -d)}
PORT=${DIAG_SMOKE_PORT:-18790}
BUNDLES="$DIR/bundles"
mkdir -p "$BUNDLES" bin

say() { echo "diag-smoke: $*"; }
die() { say "FAIL: $*"; exit 1; }

go build -o bin/floorpland ./cmd/floorpland
go build -o bin/floorplanctl ./cmd/floorplanctl

bin/floorpland -addr "127.0.0.1:$PORT" -workers 2 \
  -faults seed:7 -chaos script:panic,pass \
  -diag-dir "$BUNDLES" -diag-min-interval 1h \
  -profile-every 300ms -profile-cpu 100ms \
  -log-level warn >"$DIR/floorpland.log" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; wait "$PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
  curl -fsS "localhost:$PORT/healthz" >/dev/null 2>&1 && break
  kill -0 "$PID" 2>/dev/null || { cat "$DIR/floorpland.log"; die "daemon died on boot"; }
  sleep 0.2
done
curl -fsS "localhost:$PORT/healthz" >/dev/null || die "daemon never became healthy"
say "daemon up on :$PORT"

solve() { # $1 = seed; prints the HTTP status code
  curl -s -o /dev/null -w '%{http_code}' -X POST \
    -H 'Content-Type: application/json' \
    -d "{\"problem\": $(cat testdata/problem.golden.json), \"engine\": \"exact\", \"time_limit_ms\": 30000, \"seed\": $1}" \
    "localhost:$PORT/v1/solve"
}

# The chaos script panics on the first solve: the guard layer must
# absorb it (HTTP 500, daemon stays up) and trigger a panic bundle.
code=$(solve 1)
[ "$code" = "500" ] || die "chaos-panic solve returned HTTP $code, want 500"
# A second distinct solve passes (script entry 2) — service recovered.
code=$(solve 2)
[ "$code" = "200" ] || die "post-panic solve returned HTTP $code, want 200"

bundle=""
for _ in $(seq 1 100); do
  bundle=$(ls "$BUNDLES"/bundle-*.tar.gz 2>/dev/null | head -1 || true)
  [ -n "$bundle" ] && break
  sleep 0.1
done
[ -n "$bundle" ] || { cat "$DIR/floorpland.log"; die "no anomaly bundle appeared in $BUNDLES"; }
count=$(ls "$BUNDLES"/bundle-*.tar.gz | wc -l)
[ "$count" = "1" ] || die "$count bundles on disk, want exactly 1 (rate limit)"
say "anomaly bundle: $bundle"

manifest=$(tar -tzf "$bundle")
echo "$manifest" | head -1 | grep -qx 'manifest.json' || die "manifest.json is not the first archive entry"
for f in cpu.pprof heap.pprof goroutines.txt flight.json events.json slo.json metrics.prom; do
  echo "$manifest" | grep -qx "$f" || die "bundle lacks $f (has: $(echo "$manifest" | tr '\n' ' '))"
done
say "bundle manifest complete"

metrics=$(curl -fsS "localhost:$PORT/metrics")
echo "$metrics" | grep -q 'floorpland_diag_bundles_total{trigger="panic"} 1' \
  || die "metrics do not show the panic bundle trigger"
# The first profiler cycle completes one -profile-every tick plus one
# -profile-cpu window after boot; poll instead of racing it.
cycled=""
for _ in $(seq 1 100); do
  metrics=$(curl -fsS "localhost:$PORT/metrics")
  if echo "$metrics" | grep -q '^floorpland_profile_cycles_total [1-9]'; then
    cycled=yes
    break
  fi
  sleep 0.1
done
[ -n "$cycled" ] || die "continuous profiler reported no cycles within 10s"
say "metrics expose the trigger and profiler cycles"

# SIGUSR2: on-demand capture bypasses the anomaly rate limit.
kill -USR2 "$PID"
for _ in $(seq 1 100); do
  count=$(ls "$BUNDLES"/bundle-*.tar.gz 2>/dev/null | wc -l)
  [ "$count" -ge 2 ] && break
  sleep 0.1
done
[ "$count" -ge 2 ] || die "SIGUSR2 produced no bundle"
say "SIGUSR2 bundle captured"

# floorplanctl diag fetches and safely unpacks a bundle over HTTP.
bin/floorplanctl diag -addr "http://localhost:$PORT" -out "$DIR" -unpack >"$DIR/ctl.out"
grep -q 'floorpland-diag/1' "$DIR/ctl.out" || die "floorplanctl did not print the manifest"
say "floorplanctl diag fetched and unpacked a bundle"

kill "$PID"
wait "$PID" 2>/dev/null || true
trap - EXIT
say "OK (artifacts under $DIR)"
