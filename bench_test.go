// Benchmarks regenerating the paper's tables and figures (one benchmark
// per evaluation artifact), plus the ablation studies listed in
// DESIGN.md. Run everything with:
//
//	go test -bench=. -benchmem
//
// Solve benchmarks report waste/wirelength via b.ReportMetric so the
// regenerated numbers appear directly in the benchmark output.
package floorplanner_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	floorplanner "repro"
	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/diag"
	"repro/internal/exact"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/heuristic"
	"repro/internal/lp"
	"repro/internal/milp"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sdr"
)

const benchBudget = 30 * time.Second

// BenchmarkTable1FrameAccounting regenerates Table I (per-region frame
// requirements on the FX70T).
func BenchmarkTable1FrameAccounting(b *testing.B) {
	total := 0
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		total = 0
		for _, r := range rows {
			total += r.Frames
		}
	}
	b.ReportMetric(float64(total), "frames")
}

// BenchmarkFeasibilityPerRegion regenerates the Section VI feasibility
// analysis: one free-compatible area per region at a time.
func BenchmarkFeasibilityPerRegion(b *testing.B) {
	base := sdr.Problem()
	for ri, region := range base.Regions {
		b.Run(region.Name, func(b *testing.B) {
			p := base.WithFCConstraints([]int{ri}, 1)
			feasible := 0.0
			for i := 0; i < b.N; i++ {
				_, err := (&exact.Engine{}).Solve(context.Background(), p, core.SolveOptions{TimeLimit: benchBudget})
				switch {
				case err == nil:
					feasible = 1
				case errors.Is(err, core.ErrInfeasible):
					feasible = 0
				default:
					b.Fatal(err)
				}
			}
			b.ReportMetric(feasible, "feasible")
		})
	}
}

// benchSolve runs one Table II row: solve and report waste/wirelength.
func benchSolve(b *testing.B, eng core.Engine, p *core.Problem) {
	b.Helper()
	var m core.Metrics
	for i := 0; i < b.N; i++ {
		sol, err := eng.Solve(context.Background(), p, core.SolveOptions{TimeLimit: benchBudget, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := sol.Validate(p); err != nil {
			b.Fatal(err)
		}
		m = sol.Metrics(p)
	}
	b.ReportMetric(float64(m.WastedFrames), "wasted-frames")
	b.ReportMetric(m.WireLength, "wirelength")
	b.ReportMetric(float64(m.PlacedFC), "fc-areas")
}

// BenchmarkTable2 regenerates the four rows of Table II.
func BenchmarkTable2(b *testing.B) {
	b.Run("tessellation-SDR", func(b *testing.B) {
		benchSolve(b, &heuristic.Tessellation{BandQuantum: 2}, sdr.Problem())
	})
	b.Run("optimal-SDR", func(b *testing.B) {
		benchSolve(b, &exact.Engine{}, sdr.Problem())
	})
	b.Run("PA-SDR2", func(b *testing.B) {
		benchSolve(b, &exact.Engine{}, sdr.SDR2())
	})
	b.Run("PA-SDR3", func(b *testing.B) {
		benchSolve(b, &exact.Engine{}, sdr.SDR3())
	})
}

// BenchmarkFigure4 regenerates the SDR2 floorplan of Figure 4 (solve plus
// both renderings).
func BenchmarkFigure4(b *testing.B) {
	benchFigure(b, "SDR2")
}

// BenchmarkFigure5 regenerates the SDR3 floorplan of Figure 5.
func BenchmarkFigure5(b *testing.B) {
	benchFigure(b, "SDR3")
}

func benchFigure(b *testing.B, design string) {
	b.Helper()
	n := 0
	for i := 0; i < b.N; i++ {
		p, sol, err := experiments.Floorplan(context.Background(), design, benchBudget)
		if err != nil {
			b.Fatal(err)
		}
		ascii := core.RenderASCII(p, sol)
		svg := core.RenderSVG(p, sol)
		n = len(ascii) + len(svg)
	}
	b.ReportMetric(float64(n), "render-bytes")
}

// BenchmarkFigure1Compatibility exercises the Figure 1 compatibility
// checks across the whole FX70T.
func BenchmarkFigure1Compatibility(b *testing.B) {
	d := device.VirtexFX70T()
	src := grid.Rect{X: 4, Y: 0, W: 6, H: 5}
	count := 0
	for i := 0; i < b.N; i++ {
		count = len(d.CompatiblePlacements(src))
	}
	b.ReportMetric(float64(count), "placements")
}

// BenchmarkFigure2Partitioning runs the Figure 2 columnar partitioning.
func BenchmarkFigure2Partitioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md section 5) ---

// BenchmarkAblationEncoding compares the profile and pairwise (literal
// Equations 9/10) compatibility encodings: model size and root-LP time.
func BenchmarkAblationEncoding(b *testing.B) {
	p := sdr.SDR2()
	for _, enc := range []struct {
		name string
		e    model.Encoding
	}{{"profile", model.EncodingProfile}, {"pairwise", model.EncodingPairwise}} {
		b.Run(enc.name, func(b *testing.B) {
			var cons int
			for i := 0; i < b.N; i++ {
				c, err := model.Build(p, model.Options{Encoding: enc.e})
				if err != nil {
					b.Fatal(err)
				}
				cons = c.LP.NumConstraints()
			}
			b.ReportMetric(float64(cons), "constraints")
		})
	}
}

// BenchmarkAblationWarmStart measures MILP branch-and-bound with and
// without the constructive warm start on a small instance. The cold run
// regularly exhausts its budget without an incumbent — that IS the
// ablation's finding — so the benchmark reports a solved indicator
// instead of failing.
func BenchmarkAblationWarmStart(b *testing.B) {
	p := smallMILPProblem()
	for _, warm := range []bool{true, false} {
		name := "cold"
		if warm {
			name = "warm"
		}
		b.Run(name, func(b *testing.B) {
			solved := 1.0
			for i := 0; i < b.N; i++ {
				eng := &model.OEngine{SkipWarmStart: !warm, SkipWireStage: true}
				_, err := eng.Solve(context.Background(), p, core.SolveOptions{TimeLimit: benchBudget / 3})
				switch {
				case err == nil:
				case errors.Is(err, core.ErrNoSolution):
					solved = 0
				default:
					b.Fatal(err)
				}
			}
			b.ReportMetric(solved, "solved")
		})
	}
}

// BenchmarkAblationHOvsO compares the paper's two algorithms on the same
// small instance.
func BenchmarkAblationHOvsO(b *testing.B) {
	p := smallMILPProblem()
	b.Run("O", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := &model.OEngine{SkipWireStage: true}
			if _, err := eng.Solve(context.Background(), p, core.SolveOptions{TimeLimit: benchBudget}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("HO", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := &model.HOEngine{SkipWireStage: true}
			if _, err := eng.Solve(context.Background(), p, core.SolveOptions{TimeLimit: benchBudget}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelExact measures the exact engine's worker scaling on
// the SDR3 instance.
func BenchmarkParallelExact(b *testing.B) {
	p := sdr.SDR3()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sol, err := (&exact.Engine{}).Solve(context.Background(), p, core.SolveOptions{
					TimeLimit: benchBudget, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !sol.Proven {
					b.Fatal("not proven")
				}
			}
		})
	}
}

// BenchmarkParallelBnB measures branch-and-bound scaling with worker
// count on a knapsack family.
func BenchmarkParallelBnB(b *testing.B) {
	m := benchKnapsack(22)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := milp.Solve(context.Background(), m, milp.Options{Workers: workers})
				if res.Status != milp.StatusOptimal {
					b.Fatalf("status %v", res.Status)
				}
			}
		})
	}
}

// BenchmarkScalingRegions sweeps the exact engine over synthetic designs
// of growing size on the FX70T.
func BenchmarkScalingRegions(b *testing.B) {
	for _, n := range []int{3, 5, 7, 9} {
		b.Run(fmt.Sprintf("regions-%d", n), func(b *testing.B) {
			p, err := sdr.Synthetic(sdr.GeneratorConfig{
				Regions: n, MaxCLB: 12, MaxBRAM: 2, MaxDSP: 1, ChainNets: true, Seed: int64(n),
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				sol, err := (&exact.Engine{}).Solve(context.Background(), p, core.SolveOptions{TimeLimit: 10 * time.Second})
				if err != nil {
					b.Fatal(err)
				}
				if err := sol.Validate(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKintex7Scaling runs the SDR-style workload on the larger
// 7-series device model: same design, more fabric, more candidates.
func BenchmarkKintex7Scaling(b *testing.B) {
	p, err := sdr.Synthetic(sdr.GeneratorConfig{
		Regions: 8, Device: device.Kintex7K160T(),
		MaxCLB: 30, MaxBRAM: 4, MaxDSP: 3, ChainNets: true, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		sol, err := (&exact.Engine{}).Solve(context.Background(), p, core.SolveOptions{TimeLimit: 10 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		if err := sol.Validate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselines compares the three heuristic engines on the SDR
// design.
func BenchmarkBaselines(b *testing.B) {
	engines := []core.Engine{
		&heuristic.Constructive{},
		&heuristic.Annealing{},
		&heuristic.Tessellation{},
	}
	p := sdr.Problem()
	for _, eng := range engines {
		b.Run(eng.Name(), func(b *testing.B) {
			benchSolve(b, eng, p)
		})
	}
}

// BenchmarkBitstreamRelocate measures the relocation filter on a
// Table I-sized bitstream (the Video Decoder's 2180 frames).
func BenchmarkBitstreamRelocate(b *testing.B) {
	d := device.VirtexFX70T()
	src := grid.Rect{X: 0, Y: 0, W: 13, H: 5}
	dst := grid.Rect{X: 0, Y: 3, W: 13, H: 5}
	bs, err := bitstream.Generate(d, src, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(bs.FrameCount() * bitstream.FrameBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bitstream.Relocate(d, bs, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntimeRelocation measures the end-to-end runtime experiment:
// floorplan SDR2, bring the system up, migrate every relocatable module
// through its reserved areas.
func BenchmarkRuntimeRelocation(b *testing.B) {
	var storageSave float64
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Runtime(context.Background(), benchBudget)
		if err != nil {
			b.Fatal(err)
		}
		storageSave = 100 * (1 - float64(rep.StorageWith)/float64(rep.StorageWithout))
	}
	b.ReportMetric(storageSave, "storage-save-%")
}

// BenchmarkLPSolve measures the simplex on an assignment relaxation.
func BenchmarkLPSolve(b *testing.B) {
	m := benchAssignment(16)
	for i := 0; i < b.N; i++ {
		sol := lp.Solve(m, lp.Options{})
		if sol.Status != lp.StatusOptimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

// BenchmarkCandidateEnumeration measures placement-candidate generation
// for the Video Decoder on the FX70T.
func BenchmarkCandidateEnumeration(b *testing.B) {
	d := device.VirtexFX70T()
	req := device.Requirements{device.ClassCLB: 55, device.ClassBRAM: 2, device.ClassDSP: 5}
	n := 0
	for i := 0; i < b.N; i++ {
		n = len(core.EnumerateCandidates(d, req))
	}
	b.ReportMetric(float64(n), "candidates")
}

// BenchmarkCandidateCache compares a memoized candidate lookup against
// direct enumeration of the same shape — the speedup the portfolio's
// racing members share when they hit core.CachedCandidates (the "hit"
// case pays one mutex acquisition; "miss" pays the full sweep).
func BenchmarkCandidateCache(b *testing.B) {
	req := device.Requirements{device.ClassCLB: 55, device.ClassBRAM: 2, device.ClassDSP: 5}
	b.Run("miss", func(b *testing.B) {
		d := device.VirtexFX70T()
		n := 0
		for i := 0; i < b.N; i++ {
			n = len(core.EnumerateCandidates(d, req))
		}
		b.ReportMetric(float64(n), "candidates")
	})
	b.Run("hit", func(b *testing.B) {
		d := device.VirtexFX70T()
		core.CachedCandidates(d, req) // warm the entry
		b.ResetTimer()
		n := 0
		for i := 0; i < b.N; i++ {
			n = len(core.CachedCandidates(d, req))
		}
		b.ReportMetric(float64(n), "candidates")
	})
}

// BenchmarkPortfolioRace measures the portfolio engine end to end on the
// paper's SDR design: wall clock should track the fastest proving member
// (the exact engine), not the sum of all five members.
func BenchmarkPortfolioRace(b *testing.B) {
	p := sdr.Problem()
	for i := 0; i < b.N; i++ {
		sol, err := floorplanner.Solve(context.Background(), p, floorplanner.Options{
			Engine: "portfolio", TimeLimit: benchBudget, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !sol.Proven {
			b.Fatal("portfolio missed the proven optimum on SDR")
		}
	}
}

// BenchmarkPublicAPI exercises the facade end to end (what a downstream
// user pays for a quickstart-sized problem).
func BenchmarkPublicAPI(b *testing.B) {
	p := sdr.SDR2()
	for i := 0; i < b.N; i++ {
		sol, err := floorplanner.Solve(context.Background(), p, floorplanner.Options{TimeLimit: benchBudget})
		if err != nil {
			b.Fatal(err)
		}
		_ = floorplanner.RenderASCII(p, sol)
	}
}

// BenchmarkObsOverhead quantifies the telemetry layer's cost on a full
// exact solve of a small instance (the DESIGN.md "Observability" section
// promises the no-op default stays under 2% of solve time):
//
//	bare     nil Probe — the default path every pre-existing caller takes
//	nop      the explicit zero-allocation no-op probe
//	recorder the full recording probe (mutex + slice appends)
//
// Compare bare vs nop to see the instrumentation's intrinsic cost, and
// recorder to see what the daemon pays per observed solve.
func BenchmarkObsOverhead(b *testing.B) {
	p := smallMILPProblem()
	solve := func(b *testing.B, probe floorplanner.Probe) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			sol, err := (&exact.Engine{}).Solve(context.Background(), p, core.SolveOptions{
				TimeLimit: benchBudget, Probe: probe,
			})
			if err != nil {
				b.Fatal(err)
			}
			if !sol.Proven {
				b.Fatal("not proven")
			}
		}
	}
	b.Run("bare", func(b *testing.B) { solve(b, nil) })
	b.Run("nop", func(b *testing.B) { solve(b, obs.Nop) })
	b.Run("recorder", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec := floorplanner.NewRecorder()
			sol, err := (&exact.Engine{}).Solve(context.Background(), p, core.SolveOptions{
				TimeLimit: benchBudget, Probe: rec,
			})
			if err != nil {
				b.Fatal(err)
			}
			if !sol.Proven {
				b.Fatal("not proven")
			}
			if len(rec.Incumbents("")) == 0 {
				b.Fatal("recorder saw no incumbents")
			}
		}
	})
}

// BenchmarkProfileLabelOverhead quantifies the goroutine-label
// attribution layer's cost on the same exact solve (DESIGN.md's
// "Continuous profiling & diagnostics" section promises the disabled
// path stays under 2% of solve time):
//
//	bare       nil Probe, labeling globally off — the seed baseline
//	labels-off the diag.LabelProbe wrapper with labeling disabled, the
//	           path every solve takes when neither -profile-every nor
//	           -diag-dir is set
//	labels-on  labeling enabled: pprof label sets swapped per span
//
// Compare bare vs labels-off for the disabled-path regression gate;
// labels-on shows what a profiling daemon pays per attributed solve.
func BenchmarkProfileLabelOverhead(b *testing.B) {
	p := smallMILPProblem()
	wasOn := diag.LabelingEnabled()
	defer diag.SetLabeling(wasOn)

	solve := func(b *testing.B, probe floorplanner.Probe) {
		b.Helper()
		ls := diag.LabelSet{Engine: "exact", Phase: "solve", Endpoint: "bench", Digest: "feedface"}
		for i := 0; i < b.N; i++ {
			diag.Do(context.Background(), ls, func(ctx context.Context) {
				sol, err := (&exact.Engine{}).Solve(ctx, p, core.SolveOptions{
					TimeLimit: benchBudget, Probe: probe,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !sol.Proven {
					b.Fatal("not proven")
				}
			})
		}
	}
	b.Run("bare", func(b *testing.B) {
		diag.SetLabeling(false)
		solve(b, nil)
	})
	b.Run("labels-off", func(b *testing.B) {
		diag.SetLabeling(false)
		lprobe := diag.NewLabelProbe(obs.Nop)
		lprobe.Bind(context.Background())
		solve(b, lprobe)
	})
	b.Run("labels-on", func(b *testing.B) {
		diag.SetLabeling(true)
		lprobe := diag.NewLabelProbe(obs.Nop)
		lprobe.Bind(context.Background())
		solve(b, lprobe)
	})
}

// --- helpers ---

func smallMILPProblem() *core.Problem {
	cols := make([]device.TypeID, 12)
	for i := range cols {
		cols[i] = device.V5CLB
	}
	cols[2], cols[8] = device.V5BRAM, device.V5BRAM
	cols[5] = device.V5DSP
	d, err := device.NewColumnar("bench-small", cols, 3, device.V5Types(), nil)
	if err != nil {
		panic(err)
	}
	return &core.Problem{
		Device: d,
		Regions: []core.Region{
			{Name: "A", Req: device.Requirements{device.ClassCLB: 3, device.ClassDSP: 1}},
			{Name: "B", Req: device.Requirements{device.ClassCLB: 2, device.ClassBRAM: 1}},
		},
		FCAreas:   []core.FCRequest{{Region: 0, Mode: core.RelocConstraint}},
		Objective: core.DefaultObjective(),
	}
}

func benchKnapsack(n int) *lp.Model {
	m := lp.NewModel()
	var terms []lp.Term
	total := 0.0
	for i := 0; i < n; i++ {
		w := float64(20 + (i*37)%30)
		v := w + float64((i*13)%10)
		x := m.AddBinary("x", -v)
		terms = append(terms, lp.Term{Var: x, Coef: w})
		total += w
	}
	m.AddConstraint("cap", terms, lp.LE, total/2)
	return m
}

func benchAssignment(n int) *lp.Model {
	m := lp.NewModel()
	vars := make([][]lp.VarID, n)
	for i := range vars {
		vars[i] = make([]lp.VarID, n)
		for j := range vars[i] {
			vars[i][j] = m.AddVariable("x", 0, 1, float64((i*31+j*17)%100))
		}
	}
	for i := 0; i < n; i++ {
		var row, col []lp.Term
		for j := 0; j < n; j++ {
			row = append(row, lp.Term{Var: vars[i][j], Coef: 1})
			col = append(col, lp.Term{Var: vars[j][i], Coef: 1})
		}
		m.AddConstraint("r", row, lp.EQ, 1)
		m.AddConstraint("c", col, lp.EQ, 1)
	}
	return m
}
