package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// FileSink writes events as JSON lines to a size-rotated file: when the
// live file exceeds MaxBytes it is renamed to <path>.1 (shifting older
// rotations up, dropping the one past Keep) and a fresh file is opened.
// One event is one line, so the log greps and tails cleanly.
type FileSink struct {
	mu       sync.Mutex
	path     string
	maxBytes int64
	keep     int
	f        *os.File
	size     int64
}

// Defaults for NewFileSink's non-positive arguments.
const (
	DefaultSinkMaxBytes = 8 << 20
	DefaultSinkKeep     = 2
)

// NewFileSink opens (appending) the events file at path. maxBytes <= 0
// uses DefaultSinkMaxBytes; keep <= 0 uses DefaultSinkKeep rotated
// files.
func NewFileSink(path string, maxBytes int64, keep int) (*FileSink, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultSinkMaxBytes
	}
	if keep <= 0 {
		keep = DefaultSinkKeep
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("telemetry: opening events sink: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("telemetry: stat events sink: %w", err)
	}
	return &FileSink{path: path, maxBytes: maxBytes, keep: keep, f: f, size: info.Size()}, nil
}

// WriteEvent implements Sink: one JSON line per event, rotating first
// when the live file is over budget.
func (s *FileSink) WriteEvent(ev *Event) error {
	line, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("telemetry: encoding event: %w", err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("telemetry: events sink is closed")
	}
	if s.size > 0 && s.size+int64(len(line)) > s.maxBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := s.f.Write(line)
	s.size += int64(n)
	if err != nil {
		return fmt.Errorf("telemetry: writing event: %w", err)
	}
	return nil
}

// rotateLocked shifts <path>.i → <path>.i+1 (dropping the oldest),
// moves the live file to <path>.1 and reopens a fresh live file.
// Callers hold s.mu.
func (s *FileSink) rotateLocked() error {
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("telemetry: rotating events sink: %w", err)
	}
	os.Remove(fmt.Sprintf("%s.%d", s.path, s.keep))
	for i := s.keep - 1; i >= 1; i-- {
		// Renaming a missing rotation is fine; the chain just has a gap.
		os.Rename(fmt.Sprintf("%s.%d", s.path, i), fmt.Sprintf("%s.%d", s.path, i+1))
	}
	if err := os.Rename(s.path, s.path+".1"); err != nil {
		return fmt.Errorf("telemetry: rotating events sink: %w", err)
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("telemetry: reopening events sink: %w", err)
	}
	s.f, s.size = f, 0
	return nil
}

// Close flushes and closes the live file. Further writes fail.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
