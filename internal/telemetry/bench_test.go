package telemetry

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/flight"
)

// benchSink models a saturated disk: every write costs 1ms, far slower
// than the emit rate, so the queue fills and the exporter must drop.
type benchSink struct {
	writes atomic.Int64
}

func (s *benchSink) WriteEvent(*Event) error {
	s.writes.Add(1)
	time.Sleep(time.Millisecond)
	return nil
}

// BenchmarkEventExport measures the hot-path cost a solve pays to emit
// one wide event. "baseline" is constructing the event without an
// exporter; the emit variants add the sampling decision and the
// non-blocking queue send. "saturated" runs against a sink three orders
// of magnitude slower than the emitters — per-emit cost must stay flat
// (drops, not blocking) for the backpressure contract to hold.
//
//	go test -run '^$' -bench BenchmarkEventExport -benchmem ./internal/telemetry
func BenchmarkEventExport(b *testing.B) {
	mk := func(i int) Event {
		return Event{
			Kind:     "solve",
			Endpoint: "/v1/solve",
			Record: flight.Record{
				Engine:     "exact",
				Outcome:    "proven",
				DurationMS: float64(10 + i%5),
			},
			BudgetMS: 2000,
		}
	}

	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev := mk(i)
			_ = ev
		}
	})

	b.Run("emit-sampled", func(b *testing.B) {
		e := New(Config{SampleRate: 0.1, Seed: 1})
		defer e.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Emit(mk(i))
		}
	})

	b.Run("emit-keep-all", func(b *testing.B) {
		e := New(Config{SampleRate: 1, Seed: 1})
		defer e.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Emit(mk(i))
		}
	})

	b.Run("emit-saturated-sink", func(b *testing.B) {
		sink := &benchSink{}
		e := New(Config{Sink: sink, SampleRate: 1, Seed: 1, QueueSize: 64})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Emit(mk(i))
		}
		b.StopTimer()
		e.Close()
		// At benchmark pace a 1ms-per-write sink cannot keep up with any
		// non-trivial b.N: the queue must have shed load.
		if st := e.Stats(); b.N > 1000 && st.DroppedQueue == 0 {
			b.Fatalf("saturated sink produced no drops: %+v", st)
		}
	})
}
