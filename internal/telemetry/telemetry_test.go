package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/flight"
)

// collectSink records every exported event, optionally sleeping per
// write to model a slow disk.
type collectSink struct {
	mu     sync.Mutex
	delay  time.Duration
	events []Event
	closed bool
}

func (s *collectSink) WriteEvent(ev *Event) error {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, *ev)
	return nil
}

func (s *collectSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

func (s *collectSink) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

func solveEvent(outcome string, durMS float64) Event {
	return Event{
		Kind:     "solve",
		Endpoint: "/v1/solve",
		Record:   flight.Record{Engine: "exact", Outcome: outcome, DurationMS: durMS},
	}
}

// TestExporterAlwaysKeepsRemarkableEvents pins the tail-sampling
// policy: errors, panics, invalid solutions and budget breaches survive
// even with a zero sample rate.
func TestExporterAlwaysKeepsRemarkableEvents(t *testing.T) {
	e := New(Config{SampleRate: -1, Seed: 1})
	defer e.Close()

	e.Emit(solveEvent("error", 5))
	e.Emit(solveEvent("panic", 5))
	e.Emit(solveEvent("invalid", 5))
	breach := solveEvent("solved", 2400)
	breach.BudgetMS = 2000
	breach.BudgetOverrunMS = 150
	e.Emit(breach)
	e.Emit(solveEvent("solved", 5)) // unremarkable: sampled out at rate<=0

	e.Sync()
	got := e.Tail(0)
	if len(got) != 4 {
		t.Fatalf("tail holds %d events, want 4: %+v", len(got), got)
	}
	reasons := map[string]int{}
	for _, ev := range got {
		reasons[ev.SampleReason]++
	}
	if reasons["error"] != 3 || reasons["budget"] != 1 {
		t.Fatalf("sample reasons = %v, want 3 error + 1 budget", reasons)
	}
	st := e.Stats()
	if st.SampledOut != 1 {
		t.Fatalf("sampled_out = %d, want 1", st.SampledOut)
	}
}

// TestExporterKeepsSlowTail feeds a stable duration population and
// checks an outlier far past the p95 survives with reason "slow" while
// its ordinary siblings are sampled out.
func TestExporterKeepsSlowTail(t *testing.T) {
	e := New(Config{SampleRate: -1, Seed: 1})
	defer e.Close()

	// Warm the estimator past slowMinObs and a recompute boundary.
	for i := 0; i < 64; i++ {
		e.Emit(solveEvent("solved", 10+float64(i%5)))
	}
	e.Emit(solveEvent("solved", 500)) // 35x the window's p95
	e.Sync()

	got := e.Tail(0)
	if len(got) != 1 || got[0].SampleReason != "slow" || got[0].DurationMS != 500 {
		t.Fatalf("tail = %+v, want exactly the 500ms outlier kept as slow", got)
	}
}

// TestExporterProbabilisticRate checks the random gate keeps roughly
// SampleRate of unremarkable events and that rate 1 keeps all.
func TestExporterProbabilisticRate(t *testing.T) {
	e := New(Config{SampleRate: 1, Seed: 1})
	for i := 0; i < 50; i++ {
		e.Emit(solveEvent("solved", 10))
	}
	e.Close()
	if st := e.Stats(); st.Kept != 50 || st.Exported != 50 {
		t.Fatalf("rate 1: stats %+v, want 50 kept+exported", st)
	}

	e = New(Config{SampleRate: 0.2, Seed: 42, QueueSize: 4096})
	const n = 2000
	for i := 0; i < n; i++ {
		e.Emit(solveEvent("solved", 10))
	}
	e.Close()
	st := e.Stats()
	kept := st.Kept
	if kept < n/10 || kept > n/2 {
		t.Fatalf("rate 0.2 kept %d of %d, outside the plausible band", kept, n)
	}
	if st.SampledOut+kept != n {
		t.Fatalf("stats don't balance: %+v", st)
	}
}

// TestExporterNeverBlocksOnSlowSink is the backpressure contract: with
// a saturated sink, concurrent emitters finish promptly, events are
// dropped rather than queued unboundedly, and the counters balance
// exactly. Run under -race this also exercises the Emit/drain/Tail
// locking.
func TestExporterNeverBlocksOnSlowSink(t *testing.T) {
	sink := &collectSink{delay: 2 * time.Millisecond}
	e := New(Config{Sink: sink, SampleRate: 1, Seed: 1, QueueSize: 8, TailSize: 8})

	const workers, perWorker = 8, 50
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				e.Emit(solveEvent("error", float64(i))) // always kept: queue pressure guaranteed
				_ = e.Tail(4)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	// 400 events at 2ms each would take 800ms through the sink; the
	// emitters must not be paying that.
	if elapsed > 500*time.Millisecond {
		t.Fatalf("emitters took %v; Emit is blocking on the sink", elapsed)
	}

	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	total := int64(workers * perWorker)
	if st.Emitted != total {
		t.Fatalf("emitted %d, want %d", st.Emitted, total)
	}
	if st.Kept+st.DroppedQueue+st.SampledOut != total {
		t.Fatalf("counters don't balance: %+v", st)
	}
	if st.DroppedQueue == 0 {
		t.Fatalf("no drops despite a saturated sink: %+v", st)
	}
	if st.Exported != st.Kept {
		t.Fatalf("close did not drain: exported %d != kept %d", st.Exported, st.Kept)
	}
	if int64(sink.len()) != st.Exported {
		t.Fatalf("sink saw %d events, exporter counted %d", sink.len(), st.Exported)
	}
	if !sink.closed {
		t.Fatal("Close did not close the sink")
	}

	// Post-close emits are counted drops, not panics.
	e.Emit(solveEvent("error", 1))
	if st := e.Stats(); st.DroppedQueue == 0 || st.Emitted != total+1 {
		t.Fatalf("post-close emit not counted as drop: %+v", st)
	}
}

// TestExporterTailNewestFirst checks Tail ordering and bounding.
func TestExporterTailNewestFirst(t *testing.T) {
	e := New(Config{SampleRate: 1, Seed: 1, TailSize: 4})
	defer e.Close()
	for i := 0; i < 6; i++ {
		e.Emit(solveEvent("solved", float64(i)))
	}
	e.Sync()
	got := e.Tail(0)
	if len(got) != 4 {
		t.Fatalf("tail holds %d, want 4 (ring bound)", len(got))
	}
	for i, ev := range got {
		if want := float64(5 - i); ev.DurationMS != want {
			t.Fatalf("tail[%d].duration = %v, want %v (newest first)", i, ev.DurationMS, want)
		}
	}
	if got := e.Tail(2); len(got) != 2 || got[0].DurationMS != 5 {
		t.Fatalf("tail(2) = %+v", got)
	}
}

// TestFileSinkRotation fills the sink past its byte budget and checks
// the JSONL rotation chain: live file fresh, .1 and .2 shifted, .3
// dropped, every surviving line valid JSON.
func TestFileSinkRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	sink, err := NewFileSink(path, 1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		ev := solveEvent("solved", float64(i))
		ev.Time = time.Unix(int64(i), 0)
		ev.RequestID = fmt.Sprintf("req-%03d", i)
		if err := sink.WriteEvent(&ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	var lines int
	for _, name := range []string{path, path + ".1", path + ".2"} {
		f, err := os.Open(name)
		if err != nil {
			t.Fatalf("rotation chain missing %s: %v", name, err)
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			var ev Event
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatalf("%s holds a non-JSON line: %v", name, err)
			}
			lines++
		}
		f.Close()
	}
	if _, err := os.Stat(path + ".3"); !os.IsNotExist(err) {
		t.Fatalf("rotation kept more than 2 old files: %v", err)
	}
	if lines == 0 || lines > 40 {
		t.Fatalf("rotation chain holds %d lines, want 1..40", lines)
	}

	// Reopening appends: the live file keeps its contents.
	sink2, err := NewFileSink(path, 1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	ev := solveEvent("solved", 1)
	if err := sink2.WriteEvent(&ev); err != nil {
		t.Fatal(err)
	}
	if err := sink2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sink2.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestExporterCloseIdempotent double-closes and emits concurrently with
// Close (race-detector fodder for the closeMu handshake).
func TestExporterCloseIdempotent(t *testing.T) {
	e := New(Config{SampleRate: 1, Seed: 1})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				e.Emit(solveEvent("solved", 1))
			}
		}()
	}
	wg.Add(2)
	go func() { defer wg.Done(); e.Close() }()
	go func() { defer wg.Done(); e.Close() }()
	wg.Wait()
	st := e.Stats()
	if st.Kept+st.SampledOut+st.DroppedQueue != st.Emitted {
		t.Fatalf("counters don't balance after racing close: %+v", st)
	}
}
