// Package telemetry is the wide-event export layer: every solve and
// every session event batch becomes ONE structured event carrying the
// whole story — request ID, problem digest, engine, outcome, objective,
// duration, fallback stages, breaker and cache state, budget compliance
// and the flight sequence — so a single grep over the event log answers
// questions that would otherwise need joining three log streams.
//
// Exporting must never slow a solve down. Emit is non-blocking: events
// pass a tail-sampling decision (always keep errors, panics, invalid
// solutions, budget breaches and the slowest tail; keep a configurable
// random fraction of the unremarkable rest) and are then handed to a
// bounded queue drained by one background goroutine. A full queue drops
// the event and counts the drop — backpressure never reaches the solve
// path. The drained events go to an optional Sink (production: the
// rotating JSONL FileSink) and into an in-memory tail ring served at
// GET /debug/events.
package telemetry

import (
	"io"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flight"
)

// Event is one wide event: a flight record plus the service context the
// ring does not carry. The embedded record contributes the solve fields
// (digest, key, engine, outcome, objective, duration, stages, breakers,
// session stats, flight seq); Trace is stripped before export to keep
// events one line wide.
type Event struct {
	flight.Record
	// Kind discriminates the event: "solve" or "session".
	Kind string `json:"kind"`
	// Endpoint is the serving endpoint the event came through
	// ("/v1/solve", "/v1/sessions/events").
	Endpoint string `json:"endpoint,omitempty"`
	// RequestID is the HTTP request ID (sanitized), correlating the
	// event with request logs.
	RequestID string `json:"request_id,omitempty"`
	// BudgetMS is the solve's time budget in milliseconds (0 when the
	// event has no budget, e.g. session batches).
	BudgetMS float64 `json:"budget_ms,omitempty"`
	// BudgetOverrunMS is how far the duration exceeded the budget plus
	// the deadline-contract epsilon; 0 when compliant. A positive value
	// marks a deadline-contract breach and forces the event through
	// sampling.
	BudgetOverrunMS float64 `json:"budget_overrun_ms,omitempty"`
	// SampleReason records why the event survived tail sampling:
	// "error", "budget", "slow" or "random".
	SampleReason string `json:"sample_reason,omitempty"`
}

// Sink receives exported events, one call per event, from the
// exporter's single drain goroutine (implementations need no internal
// locking against the exporter, only against their own concurrent
// users).
type Sink interface {
	WriteEvent(ev *Event) error
}

// Stats are the exporter's monotonic counters. Emitted is every Emit
// call; each one ends in exactly one of Kept, SampledOut or — when the
// queue was full or the exporter closed — DroppedQueue. Exported counts
// events the drain goroutine has fully processed so far; SinkErrors
// counts failed sink writes (the event still reaches the tail ring).
type Stats struct {
	Emitted      int64 `json:"emitted"`
	Kept         int64 `json:"kept"`
	SampledOut   int64 `json:"sampled_out"`
	DroppedQueue int64 `json:"dropped_queue"`
	Exported     int64 `json:"exported"`
	SinkErrors   int64 `json:"sink_errors"`
}

// Config tunes an Exporter. The zero value is usable: no sink (tail
// ring only), defaults elsewhere.
type Config struct {
	// Sink receives exported events; nil keeps events in memory only.
	// If the sink implements io.Closer it is closed by Exporter.Close.
	Sink Sink
	// QueueSize bounds the export queue (default 256). A full queue
	// drops events instead of blocking Emit.
	QueueSize int
	// TailSize bounds the in-memory tail ring behind /debug/events
	// (default 256).
	TailSize int
	// SampleRate is the keep probability for unremarkable events —
	// those that are not errors, budget breaches or slow-tail outliers
	// (default 0.1; 1 keeps everything, negative keeps none).
	SampleRate float64
	// Seed seeds the sampling RNG (0 uses the wall clock), so tests can
	// pin the probabilistic path.
	Seed int64
}

// Defaults for Config's zero values.
const (
	DefaultQueueSize  = 256
	DefaultTailSize   = 256
	DefaultSampleRate = 0.1
)

// slowWindow is how many recent durations the slow-tail estimator
// remembers; slowQuantile is the quantile above which an event is
// "slow" and always kept; slowRecompute is how often (in observations)
// the threshold is re-derived; slowMinObs is the observations required
// before the estimator trusts itself.
const (
	slowWindow    = 128
	slowQuantile  = 0.95
	slowRecompute = 16
	slowMinObs    = 16
)

// Exporter is the non-blocking wide-event pipeline. Safe for concurrent
// use.
type Exporter struct {
	sink  Sink
	queue chan Event

	stats struct {
		emitted, kept, sampledOut, droppedQueue, exported, sinkErrors atomic.Int64
	}

	// closeMu serializes Emit's channel send against Close's close(),
	// so a late Emit cannot send on a closed channel.
	closeMu sync.RWMutex
	closed  bool
	done    chan struct{}

	// sampleMu guards the sampling state: the RNG and the slow-tail
	// duration window.
	sampleMu   sync.Mutex
	rng        *rand.Rand
	sampleRate float64
	durs       [slowWindow]float64
	nDurs      int // total durations ever observed
	slowThresh float64

	// tailMu guards the tail ring (drain goroutine writes, HTTP reads).
	tailMu   sync.Mutex
	tail     []Event
	tailNext int64
}

// New builds an Exporter and starts its drain goroutine. Call Close to
// flush and stop it.
func New(cfg Config) *Exporter {
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = DefaultQueueSize
	}
	if cfg.TailSize <= 0 {
		cfg.TailSize = DefaultTailSize
	}
	if cfg.SampleRate == 0 {
		cfg.SampleRate = DefaultSampleRate
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	e := &Exporter{
		sink:       cfg.Sink,
		queue:      make(chan Event, cfg.QueueSize),
		done:       make(chan struct{}),
		rng:        rand.New(rand.NewSource(seed)),
		sampleRate: cfg.SampleRate,
		tail:       make([]Event, cfg.TailSize),
	}
	go e.drain()
	return e
}

// Emit offers one event to the pipeline and returns immediately. The
// event is dropped (and counted) when sampling rejects it, when the
// queue is full, or after Close.
func (e *Exporter) Emit(ev Event) {
	e.stats.emitted.Add(1)
	reason, keep := e.sample(&ev)
	if !keep {
		e.stats.sampledOut.Add(1)
		return
	}
	ev.SampleReason = reason
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	ev.Trace = nil // wide events stay one line wide; traces live in the flight ring

	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed {
		e.stats.droppedQueue.Add(1)
		return
	}
	select {
	case e.queue <- ev:
		e.stats.kept.Add(1)
	default:
		e.stats.droppedQueue.Add(1)
	}
}

// sample decides whether ev survives tail sampling and why. Remarkable
// events — failures, budget breaches and the slowest tail — always
// survive; the rest survive with probability SampleRate.
func (e *Exporter) sample(ev *Event) (string, bool) {
	switch ev.Outcome {
	case "panic", "invalid", "error":
		e.observeDuration(ev.DurationMS)
		return "error", true
	}
	if ev.Err != "" {
		e.observeDuration(ev.DurationMS)
		return "error", true
	}
	if ev.BudgetOverrunMS > 0 {
		e.observeDuration(ev.DurationMS)
		return "budget", true
	}
	if ev.Cached {
		// Cache hits carry no fresh duration signal; they only face the
		// probabilistic gate.
		return "random", e.draw()
	}
	if e.observeDuration(ev.DurationMS) {
		return "slow", true
	}
	return "random", e.draw()
}

// draw is one probabilistic keep decision.
func (e *Exporter) draw() bool {
	if e.sampleRate >= 1 {
		return true
	}
	if e.sampleRate <= 0 {
		return false
	}
	e.sampleMu.Lock()
	defer e.sampleMu.Unlock()
	return e.rng.Float64() < e.sampleRate
}

// observeDuration folds d into the slow-tail window and reports whether
// d sits in the current slowest tail. The threshold is the windowed
// slowQuantile, re-derived every slowRecompute observations, trusted
// only after slowMinObs.
func (e *Exporter) observeDuration(d float64) bool {
	e.sampleMu.Lock()
	defer e.sampleMu.Unlock()
	e.durs[e.nDurs%slowWindow] = d
	e.nDurs++
	if e.nDurs%slowRecompute == 0 {
		n := min(e.nDurs, slowWindow)
		window := make([]float64, n)
		copy(window, e.durs[:n])
		sort.Float64s(window)
		e.slowThresh = window[int(slowQuantile*float64(n-1))]
	}
	// Strictly greater: with a population of tied durations the p95
	// equals the common value, and "slow" must mean slower than the
	// pack, not equal to it.
	return e.nDurs > slowMinObs && e.slowThresh > 0 && d > e.slowThresh
}

// drain is the single background consumer: tail ring, then sink.
func (e *Exporter) drain() {
	defer close(e.done)
	for ev := range e.queue {
		e.tailMu.Lock()
		e.tail[int(e.tailNext%int64(len(e.tail)))] = ev
		e.tailNext++
		e.tailMu.Unlock()
		if e.sink != nil {
			if err := e.sink.WriteEvent(&ev); err != nil {
				e.stats.sinkErrors.Add(1)
			}
		}
		e.stats.exported.Add(1)
	}
	if c, ok := e.sink.(io.Closer); ok {
		c.Close()
	}
}

// Close stops intake, drains the queue to the sink, closes the sink if
// it is an io.Closer, and waits for the drain goroutine to finish.
// Emit calls after Close are counted as drops. Idempotent.
func (e *Exporter) Close() error {
	e.closeMu.Lock()
	if e.closed {
		e.closeMu.Unlock()
		<-e.done
		return nil
	}
	e.closed = true
	close(e.queue)
	e.closeMu.Unlock()
	<-e.done
	return nil
}

// Stats snapshots the exporter counters.
func (e *Exporter) Stats() Stats {
	return Stats{
		Emitted:      e.stats.emitted.Load(),
		Kept:         e.stats.kept.Load(),
		SampledOut:   e.stats.sampledOut.Load(),
		DroppedQueue: e.stats.droppedQueue.Load(),
		Exported:     e.stats.exported.Load(),
		SinkErrors:   e.stats.sinkErrors.Load(),
	}
}

// Tail returns up to n exported events, newest first (n <= 0 returns
// everything held).
func (e *Exporter) Tail(n int) []Event {
	e.tailMu.Lock()
	defer e.tailMu.Unlock()
	held := int(min(e.tailNext, int64(len(e.tail))))
	if n <= 0 || n > held {
		n = held
	}
	out := make([]Event, 0, n)
	for seq := e.tailNext; seq > e.tailNext-int64(n); seq-- {
		out = append(out, e.tail[int((seq-1)%int64(len(e.tail)))])
	}
	return out
}

// Sync blocks until every event enqueued before the call has been
// processed by the drain goroutine (test helper; bounded by the queue
// being finite).
func (e *Exporter) Sync() {
	for {
		s := e.Stats()
		if s.Exported >= s.Kept {
			return
		}
		select {
		case <-e.done:
			return
		case <-time.After(time.Millisecond):
		}
	}
}
