package experiments

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTable1ReproducesPaper(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"Matched Filter":   1040,
		"Carrier Recovery": 280,
		"Demodulator":      240,
		"Signal Decoder":   462,
		"Video Decoder":    2180,
	}
	total := 0
	for _, r := range rows {
		if want[r.Region] != r.Frames {
			t.Fatalf("%s: %d frames, paper says %d", r.Region, r.Frames, want[r.Region])
		}
		total += r.Frames
	}
	if total != 4202 {
		t.Fatalf("total = %d, want 4202", total)
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "4202") {
		t.Fatal("formatted table missing total")
	}
}

func TestFeasibilityReproducesPaperShape(t *testing.T) {
	rows, err := Feasibility(context.Background(), 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Feasible != r.PaperFeasible {
			t.Fatalf("%s: measured %v, paper %v", r.Region, r.Feasible, r.PaperFeasible)
		}
	}
	out := FormatFeasibility(rows)
	if !strings.Contains(out, "INFEASIBLE") {
		t.Fatal("formatted output missing infeasible rows")
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2(context.Background(), 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byKey := map[string]Table2Row{}
	for _, r := range rows {
		byKey[r.Algorithm+"/"+r.Design] = r
	}
	tess := byKey["[8] tessellation/SDR"]
	opt := byKey["[10] MILP (no reloc)/SDR"]
	sdr2 := byKey["PA (this work)/SDR2"]
	sdr3 := byKey["PA (this work)/SDR3"]
	// Qualitative shape of Table II: the heuristic wastes more than the
	// MILP optimum; SDR2 matches the relocation-free optimum; SDR3 is
	// between SDR2 and the heuristic.
	if tess.Wasted <= opt.Wasted {
		t.Fatalf("tessellation waste %d not above optimum %d", tess.Wasted, opt.Wasted)
	}
	if sdr2.Wasted != opt.Wasted {
		t.Fatalf("SDR2 waste %d != relocation-free optimum %d (paper: equal)", sdr2.Wasted, opt.Wasted)
	}
	if sdr3.Wasted < sdr2.Wasted || sdr3.Wasted >= tess.Wasted {
		t.Fatalf("SDR3 waste %d not between SDR2 %d and heuristic %d", sdr3.Wasted, sdr2.Wasted, tess.Wasted)
	}
	if sdr2.FCAreas != 6 || sdr3.FCAreas != 9 {
		t.Fatalf("FC areas = %d/%d, want 6/9", sdr2.FCAreas, sdr3.FCAreas)
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "SDR3") {
		t.Fatal("formatted table incomplete")
	}
}

func TestFloorplanFigures(t *testing.T) {
	for _, design := range []string{"SDR2", "SDR3"} {
		p, sol, err := Floorplan(context.Background(), design, 60*time.Second)
		if err != nil {
			t.Fatalf("%s: %v", design, err)
		}
		if err := sol.Validate(p); err != nil {
			t.Fatalf("%s: %v", design, err)
		}
	}
	if _, _, err := Floorplan(context.Background(), "nope", time.Second); err == nil {
		t.Fatal("unknown design accepted")
	}
}

func TestConceptFigures(t *testing.T) {
	f1 := Figure1()
	if !strings.Contains(f1, "Compatible(A,B) = true") || !strings.Contains(f1, "Compatible(A,C) = false") {
		t.Fatalf("Figure 1 narrative wrong:\n%s", f1)
	}
	f2, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f2, "f1") || !strings.Contains(f2, "f2") {
		t.Fatalf("Figure 2 missing forbidden areas:\n%s", f2)
	}
	if !strings.Contains(f2, "P0") {
		t.Fatalf("Figure 2 missing portions:\n%s", f2)
	}
}

func TestRuntimeReport(t *testing.T) {
	rep, err := Runtime(context.Background(), 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Relocations != 9 {
		t.Fatalf("relocations = %d, want 9 (2 per relocatable region + 3 returns)", rep.Relocations)
	}
	for name, d := range rep.RegionLatency {
		if d <= 0 || d >= rep.FullDevice {
			t.Fatalf("%s latency %s not within (0, full-device %s)", name, d, rep.FullDevice)
		}
	}
	if rep.StorageWith >= rep.StorageWithout {
		t.Fatal("relocation must reduce bitstream storage on SDR2")
	}
	out := FormatRuntime(rep)
	if !strings.Contains(out, "full-device") || !strings.Contains(out, "storage") {
		t.Fatalf("report incomplete:\n%s", out)
	}
}
