// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI) on the reconstructed FX70T tile model, plus the
// concept figures of Sections II and III. It is shared by
// cmd/experiments and the repository benchmarks.
//
// Absolute numbers differ from the paper where the substrate differs (our
// device model and solvers are clean-room reconstructions — see
// EXPERIMENTS.md); each row therefore reports the paper's value alongside
// the measured one so the qualitative shape can be compared directly.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/exact"
	"repro/internal/grid"
	"repro/internal/heuristic"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/portfolio"
	"repro/internal/sdr"
)

// Table1Row is one region of Table I.
type Table1Row struct {
	Region string
	CLB    int
	BRAM   int
	DSP    int
	Frames int
}

// Table1 recomputes Table I: per-region tile requirements and the minimal
// configuration-frame counts they imply on the FX70T.
func Table1() ([]Table1Row, error) {
	d := device.VirtexFX70T()
	var rows []Table1Row
	for _, r := range sdr.TableI() {
		frames, err := d.FramesForRequirements(r.Req)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Region: r.Name,
			CLB:    r.Req[device.ClassCLB],
			BRAM:   r.Req[device.ClassBRAM],
			DSP:    r.Req[device.ClassDSP],
			Frames: frames,
		})
	}
	return rows, nil
}

// FormatTable1 renders Table I with the paper's totals row.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: Resource requirements for the SDR design\n")
	fmt.Fprintf(&b, "%-18s %5s %5s %5s %9s\n", "Region", "CLB", "BRAM", "DSP", "# Frames")
	var tc, tb, td, tf int
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %5d %5d %5d %9d\n", r.Region, r.CLB, r.BRAM, r.DSP, r.Frames)
		tc += r.CLB
		tb += r.BRAM
		td += r.DSP
		tf += r.Frames
	}
	fmt.Fprintf(&b, "%-18s %5d %5d %5d %9d\n", "Total", tc, tb, td, tf)
	return b.String()
}

// FeasibilityRow is one region of the Section VI feasibility test.
type FeasibilityRow struct {
	Region        string
	Feasible      bool
	PaperFeasible bool
	Elapsed       time.Duration
}

// paperFeasible records the published result: a free-compatible area
// exists for every region except the Matched Filter and Video Decoder.
var paperFeasible = map[string]bool{
	sdr.MatchedFilter:   false,
	sdr.CarrierRecovery: true,
	sdr.Demodulator:     true,
	sdr.SignalDecoder:   true,
	sdr.VideoDecoder:    false,
}

// Feasibility reruns the per-region feasibility analysis: place the full
// SDR design plus one constraint-mode free-compatible area for a single
// region at a time.
func Feasibility(ctx context.Context, budget time.Duration) ([]FeasibilityRow, error) {
	base := sdr.Problem()
	var rows []FeasibilityRow
	for ri, region := range base.Regions {
		p := base.WithFCConstraints([]int{ri}, 1)
		start := time.Now()
		_, err := (&exact.Engine{}).Solve(ctx, p, core.SolveOptions{TimeLimit: budget})
		row := FeasibilityRow{
			Region:        region.Name,
			PaperFeasible: paperFeasible[region.Name],
			Elapsed:       time.Since(start),
		}
		switch {
		case err == nil:
			row.Feasible = true
		case errors.Is(err, core.ErrInfeasible):
			row.Feasible = false
		default:
			return nil, fmt.Errorf("experiments: feasibility of %s: %w", region.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFeasibility renders the feasibility analysis.
func FormatFeasibility(rows []FeasibilityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Feasibility: one free-compatible area per region (Section VI)\n")
	fmt.Fprintf(&b, "%-18s %-10s %-10s %8s\n", "Region", "measured", "paper", "time")
	verdict := func(f bool) string {
		if f {
			return "feasible"
		}
		return "INFEASIBLE"
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-10s %-10s %8s\n", r.Region, verdict(r.Feasible), verdict(r.PaperFeasible), r.Elapsed.Round(time.Millisecond))
	}
	return b.String()
}

// Table2Row is one line of Table II.
type Table2Row struct {
	Algorithm   string
	Design      string
	FCAreas     int
	Wasted      int
	PaperWasted int // -1 when the paper has no corresponding row
	WireLength  float64
	Proven      bool
	Elapsed     time.Duration
}

// Table2 reruns the Table II comparison:
//
//	[8]  -> the tessellation baseline (band-quantized, reconfiguration-
//	        centric greedy) on the plain SDR design,
//	[10] -> the relocation-free optimum (our exact engine; the paper's O
//	        without relocation constraints),
//	PA   -> the relocation-aware floorplanner on SDR2 and SDR3.
func Table2(ctx context.Context, budget time.Duration) ([]Table2Row, error) {
	var rows []Table2Row
	run := func(alg string, eng core.Engine, p *core.Problem, paper int) error {
		start := time.Now()
		sol, err := eng.Solve(ctx, p, core.SolveOptions{TimeLimit: budget, Seed: 1})
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", alg, err)
		}
		if err := sol.Validate(p); err != nil {
			return fmt.Errorf("experiments: %s produced invalid solution: %w", alg, err)
		}
		m := sol.Metrics(p)
		design := "SDR"
		if len(p.FCAreas) == 6 {
			design = "SDR2"
		} else if len(p.FCAreas) == 9 {
			design = "SDR3"
		}
		rows = append(rows, Table2Row{
			Algorithm:   alg,
			Design:      design,
			FCAreas:     m.PlacedFC,
			Wasted:      m.WastedFrames,
			PaperWasted: paper,
			WireLength:  m.WireLength,
			Proven:      sol.Proven,
			Elapsed:     time.Since(start),
		})
		return nil
	}
	if err := run("[8] tessellation", &heuristic.Tessellation{BandQuantum: 2}, sdr.Problem(), 466); err != nil {
		return nil, err
	}
	if err := run("[10] MILP (no reloc)", &exact.Engine{}, sdr.Problem(), 306); err != nil {
		return nil, err
	}
	if err := run("PA (this work)", &exact.Engine{}, sdr.SDR2(), 306); err != nil {
		return nil, err
	}
	if err := run("PA (this work)", &exact.Engine{}, sdr.SDR3(), 346); err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatTable2 renders the Table II comparison.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: Comparison of different floorplan solutions\n")
	fmt.Fprintf(&b, "%-22s %-6s %9s %14s %14s %10s %7s %9s\n",
		"Algorithm", "Design", "FC areas", "wasted frames", "paper wasted", "wirelen", "proven", "time")
	for _, r := range rows {
		paper := "-"
		if r.PaperWasted >= 0 {
			paper = fmt.Sprintf("%d", r.PaperWasted)
		}
		fmt.Fprintf(&b, "%-22s %-6s %9d %14d %14s %10.0f %7v %9s\n",
			r.Algorithm, r.Design, r.FCAreas, r.Wasted, paper, r.WireLength, r.Proven, r.Elapsed.Round(time.Millisecond))
	}
	return b.String()
}

// PortfolioRow is one SDR instance of the portfolio race comparison.
type PortfolioRow struct {
	Design string
	// Winner is the member engine whose solution the portfolio accepted.
	Winner string
	// Wasted and WireLength are the winning solution's cost terms.
	Wasted     int
	WireLength float64
	// Elapsed is the portfolio's wall-clock; with members racing
	// concurrently it tracks the decisive member, not the sum.
	Elapsed time.Duration
	// Members records each member's own latency and outcome.
	Members []portfolio.MemberStats
}

// PortfolioRace runs the portfolio engine on the three SDR instances
// under the shared budget, reporting per-member latencies alongside the
// accepted winner — the serving-layer view of the paper's exact-vs-
// heuristic comparison (Section VI under wall-clock budgets).
func PortfolioRace(ctx context.Context, budget time.Duration) ([]PortfolioRow, error) {
	var rows []PortfolioRow
	for _, design := range []string{"SDR", "SDR2", "SDR3"} {
		var p *core.Problem
		switch design {
		case "SDR":
			p = sdr.Problem()
		case "SDR2":
			p = sdr.SDR2()
		case "SDR3":
			p = sdr.SDR3()
		}
		pf := &portfolio.Portfolio{Stats: portfolio.NewStats()}
		start := time.Now()
		sol, err := pf.Solve(ctx, p, core.SolveOptions{TimeLimit: budget, Seed: 1})
		if err != nil {
			return nil, fmt.Errorf("experiments: portfolio on %s: %w", design, err)
		}
		if err := sol.Validate(p); err != nil {
			return nil, fmt.Errorf("experiments: portfolio on %s produced invalid solution: %w", design, err)
		}
		m := sol.Metrics(p)
		rows = append(rows, PortfolioRow{
			Design:     design,
			Winner:     sol.Engine,
			Wasted:     m.WastedFrames,
			WireLength: m.WireLength,
			Elapsed:    time.Since(start),
			Members:    pf.Stats.Snapshot(),
		})
	}
	return rows, nil
}

// FormatPortfolio renders the portfolio race comparison.
func FormatPortfolio(rows []PortfolioRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Portfolio race: engines under one shared budget per design\n")
	fmt.Fprintf(&b, "%-6s %-24s %14s %10s %9s\n", "Design", "winner", "wasted frames", "wirelen", "time")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-24s %14d %10.0f %9s\n",
			r.Design, r.Winner, r.Wasted, r.WireLength, r.Elapsed.Round(time.Millisecond))
		for _, ms := range r.Members {
			verdict := "ok"
			if ms.Failures > 0 {
				verdict = "failed"
			}
			if ms.Wins > 0 {
				verdict = "WON"
			}
			fmt.Fprintf(&b, "    %-20s %9s  %s\n", ms.Name, ms.Total.Round(time.Millisecond), verdict)
		}
	}
	return b.String()
}

// TelemetryRow is one engine's probe-layer telemetry on one SDR instance.
type TelemetryRow struct {
	Design  string
	Engine  string
	Outcome string
	// Nodes, Pivots and Backtracks are the work counters summed over the
	// engine's spans; Incumbents counts improvement events (capped points
	// included).
	Nodes      int64
	Pivots     int64
	Backtracks int64
	Incumbents int
	// Best is the final incumbent objective (NaN when none was found).
	Best    float64
	Elapsed time.Duration
}

// telemetryEngines are the engines the telemetry sweep runs, in report
// order. milp-o is omitted: on the full SDR instances its exhaustive MILP
// dominates the sweep's wall-clock without adding counter coverage beyond
// milp-ho.
func telemetryEngines() []core.Engine {
	return []core.Engine{
		&exact.Engine{},
		&model.HOEngine{},
		&heuristic.Constructive{},
		&heuristic.Annealing{},
		&heuristic.Tessellation{},
		portfolio.New(),
	}
}

// Telemetry runs every engine on the named SDR instance under a recording
// probe and reports the per-engine work counters and incumbent
// trajectories — the paper's Section VI effort comparison restated in
// solver-internal units (nodes, pivots, improvements) instead of
// wall-clock alone.
func Telemetry(ctx context.Context, design string, budget time.Duration) ([]TelemetryRow, error) {
	p, _, err := problemFor(design)
	if err != nil {
		return nil, err
	}
	var rows []TelemetryRow
	for _, eng := range telemetryEngines() {
		rec := obs.NewRecorder()
		start := time.Now()
		sol, serr := eng.Solve(ctx, p, core.SolveOptions{TimeLimit: budget, Seed: 1, Probe: rec})
		row := TelemetryRow{
			Design:     design,
			Engine:     eng.Name(),
			Outcome:    string(core.ObsOutcome(sol, serr)),
			Nodes:      rec.Total(obs.Nodes),
			Pivots:     rec.Total(obs.Pivots),
			Backtracks: rec.Total(obs.Backtracks),
			Incumbents: len(rec.Incumbents("")) + rec.DroppedIncumbents(),
			Elapsed:    time.Since(start),
		}
		if pts := rec.Incumbents(eng.Name()); len(pts) > 0 {
			row.Best = pts[len(pts)-1].Objective
		} else {
			row.Best = math.NaN()
		}
		if serr != nil && !errors.Is(serr, core.ErrInfeasible) && !errors.Is(serr, core.ErrNoSolution) {
			return nil, fmt.Errorf("experiments: telemetry %s on %s: %w", eng.Name(), design, serr)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTelemetry renders the per-engine telemetry table.
func FormatTelemetry(rows []TelemetryRow) string {
	var b strings.Builder
	if len(rows) > 0 {
		fmt.Fprintf(&b, "Solve telemetry on %s: per-engine work counters\n", rows[0].Design)
	}
	fmt.Fprintf(&b, "%-14s %-12s %10s %10s %10s %11s %10s %9s\n",
		"Engine", "outcome", "nodes", "pivots", "backtracks", "incumbents", "best", "time")
	for _, r := range rows {
		best := "-"
		if !math.IsNaN(r.Best) {
			best = fmt.Sprintf("%.0f", r.Best)
		}
		fmt.Fprintf(&b, "%-14s %-12s %10d %10d %10d %11d %10s %9s\n",
			r.Engine, r.Outcome, r.Nodes, r.Pivots, r.Backtracks, r.Incumbents, best,
			r.Elapsed.Round(time.Millisecond))
	}
	return b.String()
}

// problemFor resolves a design name to its SDR instance.
func problemFor(design string) (*core.Problem, string, error) {
	switch design {
	case "SDR":
		return sdr.Problem(), design, nil
	case "SDR2":
		return sdr.SDR2(), design, nil
	case "SDR3":
		return sdr.SDR3(), design, nil
	default:
		return nil, "", fmt.Errorf("experiments: unknown design %q", design)
	}
}

// Floorplan solves the named SDR instance ("SDR", "SDR2" or "SDR3") and
// returns the problem and solution — the data behind Figures 4 and 5.
func Floorplan(ctx context.Context, design string, budget time.Duration) (*core.Problem, *core.Solution, error) {
	var p *core.Problem
	switch design {
	case "SDR":
		p = sdr.Problem()
	case "SDR2":
		p = sdr.SDR2()
	case "SDR3":
		p = sdr.SDR3()
	default:
		return nil, nil, fmt.Errorf("experiments: unknown design %q", design)
	}
	sol, err := (&exact.Engine{}).Solve(ctx, p, core.SolveOptions{TimeLimit: budget})
	if err != nil {
		return nil, nil, err
	}
	return p, sol, nil
}

// Figure1 renders the compatible/non-compatible areas example of
// Figure 1 as text.
func Figure1() string {
	d := device.Figure1Device()
	var b strings.Builder
	b.WriteString("Figure 1: compatible (A,B) and non-compatible (A,C) areas\n")
	a := core.Region{Name: "A", Req: device.Requirements{device.ClassCLB: 1}}
	p := &core.Problem{Device: d, Regions: []core.Region{a}}
	b.WriteString(core.RenderASCII(p, nil))
	ra := "(1,0) 2x3"
	rb := "(4,3) 2x3"
	rc := "(7,0) 2x3"
	b.WriteString(fmt.Sprintf("A=%s B=%s C=%s\n", ra, rb, rc))
	b.WriteString(fmt.Sprintf("Compatible(A,B) = %v\n", d.Compatible(
		rect(1, 0, 2, 3), rect(4, 3, 2, 3))))
	b.WriteString(fmt.Sprintf("Compatible(A,C) = %v\n", d.Compatible(
		rect(1, 0, 2, 3), rect(7, 0, 2, 3))))
	return b.String()
}

// Figure2 runs the columnar partitioning walkthrough of Figure 2.
func Figure2() (string, error) {
	d := device.Figure2Device()
	part, err := partition.Columnar(d)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 2: columnar partitioning with forbidden areas\n")
	p := &core.Problem{Device: d}
	b.WriteString(core.RenderASCII(p, nil))
	for _, por := range part.Portions {
		fmt.Fprintf(&b, "  %s\n", por)
	}
	for i, f := range part.Forbidden {
		fmt.Fprintf(&b, "  f%d = %v\n", i+1, f)
	}
	return b.String(), nil
}

func rect(x, y, w, h int) grid.Rect {
	return grid.Rect{X: x, Y: y, W: w, H: h}
}
