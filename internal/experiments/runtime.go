package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/reconfig"
	"repro/internal/sdr"
)

// RuntimeReport quantifies the run-time benefits of the relocation-aware
// floorplan (the claims of the paper's introduction), measured on the
// SDR2 solution through the reconfiguration-manager simulation.
type RuntimeReport struct {
	// FullDevice is the simulated full-device reconfiguration time.
	FullDevice time.Duration
	// RegionLatency maps region name to its partial-reconfiguration
	// (and relocation) latency.
	RegionLatency map[string]time.Duration
	// Relocations is the number of relocations exercised.
	Relocations int
	// RelocationBusy is the summed configuration-port time of those
	// relocations.
	RelocationBusy time.Duration
	// StorageWith / StorageWithout are total stored bitstream bytes for
	// ModesPerRegion modes per module, with one relocatable image per
	// mode versus one image per (mode, slot).
	ModesPerRegion              int
	StorageWith, StorageWithout int
}

// Runtime floorplans SDR2, brings the system up, migrates every
// relocatable module through all of its reserved areas, and reports
// latency and storage figures.
func Runtime(ctx context.Context, budget time.Duration) (*RuntimeReport, error) {
	p, sol, err := Floorplan(ctx, "SDR2", budget)
	if err != nil {
		return nil, err
	}
	mgr, err := reconfig.New(p, sol, reconfig.DefaultFrameTime)
	if err != nil {
		return nil, err
	}
	for ri := range p.Regions {
		if err := mgr.Configure(ri, int64(ri), 0); err != nil {
			return nil, fmt.Errorf("experiments: configure %s: %w", p.Regions[ri].Name, err)
		}
	}
	before := mgr.Stats()
	for _, ri := range sdr.RelocatableRegions(p) {
		slots := mgr.Slots(ri)
		for s := 1; s < len(slots); s++ {
			if err := mgr.Relocate(ri, s); err != nil {
				return nil, fmt.Errorf("experiments: relocate %s: %w", p.Regions[ri].Name, err)
			}
		}
		if err := mgr.Relocate(ri, 0); err != nil {
			return nil, err
		}
	}
	after := mgr.Stats()

	rep := &RuntimeReport{
		FullDevice:     mgr.FullDeviceReconfig(),
		RegionLatency:  map[string]time.Duration{},
		Relocations:    after.Relocations - before.Relocations,
		RelocationBusy: after.BusyTime - before.BusyTime,
		ModesPerRegion: 4,
	}
	for ri, r := range p.Regions {
		rep.RegionLatency[r.Name] = mgr.RegionReconfig(ri)
	}
	rows, err := mgr.StorageReport(rep.ModesPerRegion)
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		rep.StorageWith += row.WithRelocation
		rep.StorageWithout += row.WithoutRelocation
	}
	return rep, nil
}

// FormatRuntime renders the runtime report.
func FormatRuntime(r *RuntimeReport) string {
	var b strings.Builder
	b.WriteString("Runtime relocation benefits (SDR2 floorplan, simulated ICAP)\n")
	fmt.Fprintf(&b, "  full-device reconfiguration: %s\n", r.FullDevice)
	for _, name := range []string{sdr.MatchedFilter, sdr.CarrierRecovery, sdr.Demodulator, sdr.SignalDecoder, sdr.VideoDecoder} {
		if d, ok := r.RegionLatency[name]; ok {
			fmt.Fprintf(&b, "  %-18s partial reconfig/relocation: %s\n", name, d)
		}
	}
	fmt.Fprintf(&b, "  exercised %d relocations in %s of port time\n", r.Relocations, r.RelocationBusy)
	save := 100 * (1 - float64(r.StorageWith)/float64(r.StorageWithout))
	fmt.Fprintf(&b, "  bitstream storage (%d modes/region): %d B relocatable vs %d B per-slot (-%.0f%%)\n",
		r.ModesPerRegion, r.StorageWith, r.StorageWithout, save)
	return b.String()
}
