// Package simfmt defines SIM.json — the schema-versioned output of
// cmd/floorsim, the online-session load driver. One Report captures a
// replayed workload against a session.Manager: placement counters, the
// fragmentation trajectory, and every defragmentation cycle with its
// relocation schedule accounting. Reports are committed over time to
// track the online subsystem's behavior, so the schema is versioned and
// Validate enforces its invariants before a report is written or
// accepted in CI.
package simfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"
)

// SchemaVersion is the current SIM.json schema. Bump on any incompatible
// shape change, so trajectory tooling can dispatch.
const SchemaVersion = 1

// Report is one workload replay against a session.
type Report struct {
	// SchemaVersion pins the report shape; must equal SchemaVersion.
	SchemaVersion int `json:"schema_version"`
	// CreatedAt is when the replay finished.
	CreatedAt time.Time `json:"created_at"`
	// GoVersion and Host describe the run environment (informational).
	GoVersion string `json:"go_version,omitempty"`
	Host      string `json:"host,omitempty"`

	// Device names the target FPGA model.
	Device string `json:"device"`
	// Seed drove the workload generator.
	Seed int64 `json:"seed"`
	// Events is the replayed event count.
	Events int `json:"events"`
	// Intensity is the generator's target occupancy.
	Intensity float64 `json:"intensity"`
	// FragThreshold triggered defragmentation.
	FragThreshold float64 `json:"frag_threshold"`
	// FallbackEngine names the floorplanner used for hard arrivals
	// (empty = fallback disabled).
	FallbackEngine string `json:"fallback_engine,omitempty"`

	// Arrivals/Departures partition the events; Placed/PlacedFallback/
	// Rejected partition the arrivals (PlacedFallback ⊆ Placed).
	Arrivals       int `json:"arrivals"`
	Departures     int `json:"departures"`
	Placed         int `json:"placed"`
	PlacedFallback int `json:"placed_fallback"`
	Rejected       int `json:"rejected"`
	// PlacementRate is Placed/Arrivals.
	PlacementRate float64 `json:"placement_rate"`

	// FragTrajectory samples the free-space fragmentation after events.
	FragTrajectory []FragPoint `json:"frag_trajectory"`
	// FinalFragmentation is the fragmentation after the last event.
	FinalFragmentation float64 `json:"final_fragmentation"`
	// FinalLive is the number of modules live after the last event.
	FinalLive int `json:"final_live"`

	// DefragCycles lists every defragmentation attempt, in event order.
	DefragCycles []DefragCycle `json:"defrag_cycles"`

	// FramesWritten and BusyMS total the configuration-port activity of
	// the whole replay (configures, fallback migrations, defrag moves).
	FramesWritten int     `json:"frames_written"`
	BusyMS        float64 `json:"busy_ms"`
	// CorruptedFrames counts readback mismatches across every executed
	// relocation schedule; any nonzero value fails validation.
	CorruptedFrames int `json:"corrupted_frames"`

	// FaultPlan describes the injected-fault plan the run was driven
	// under (empty = no injection). When set, FaultsInjected counts the
	// faults the reconfiguration pipeline absorbed, Retries the extra
	// load attempts it took, CorruptionsRepaired the corrupted frame
	// sets caught by readback and rewritten, and Rollbacks the
	// mid-schedule failures unwound transactionally.
	FaultPlan           string `json:"fault_plan,omitempty"`
	FaultsInjected      int    `json:"faults_injected,omitempty"`
	Retries             int    `json:"retries,omitempty"`
	CorruptionsRepaired int    `json:"corruptions_repaired,omitempty"`
	Rollbacks           int    `json:"rollbacks,omitempty"`
	// LostTasks counts modules that arrived, were acknowledged as
	// placed, never departed, and yet are absent from the final live
	// set; any nonzero value fails validation — the pipeline stranded a
	// task.
	LostTasks int `json:"lost_tasks"`
}

// FragPoint samples fragmentation after one event.
type FragPoint struct {
	// Event is the 1-based event sequence number.
	Event int `json:"event"`
	// Frag is the fragmentation after the event.
	Frag float64 `json:"frag"`
	// Occupancy is the occupied fraction of usable tiles.
	Occupancy float64 `json:"occupancy"`
}

// DefragCycle is one defragmentation attempt.
type DefragCycle struct {
	// AtEvent is the sequence number of the triggering event.
	AtEvent int `json:"at_event"`
	// Planned is the moves the compaction planner emitted; Executed is
	// how many ran (0 when the plan was abandoned as non-improving).
	Planned  int `json:"planned"`
	Executed int `json:"executed"`
	// FragBefore and FragAfter bracket the cycle.
	FragBefore float64 `json:"frag_before"`
	FragAfter  float64 `json:"frag_after"`
	// FramesWritten and BusyMS account the executed schedule.
	FramesWritten int     `json:"frames_written"`
	BusyMS        float64 `json:"busy_ms"`
	// FramesVerified and CorruptedFrames report the post-move readback.
	FramesVerified  int `json:"frames_verified"`
	CorruptedFrames int `json:"corrupted_frames"`
	// Retries counts extra load attempts forced by injected faults;
	// RolledBack counts moves unwound after a mid-schedule hard failure
	// (Executed is net of rollback).
	Retries    int `json:"retries,omitempty"`
	RolledBack int `json:"rolled_back,omitempty"`
}

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// Validate checks the report's invariants: current schema, consistent
// counters, fragmentation values in [0, 1], an ordered trajectory, and
// zero corrupted frames.
func (r *Report) Validate() error {
	if r.SchemaVersion != SchemaVersion {
		return fmt.Errorf("simfmt: schema_version %d, want %d", r.SchemaVersion, SchemaVersion)
	}
	if r.Device == "" {
		return fmt.Errorf("simfmt: report has no device")
	}
	if r.Events < 1 {
		return fmt.Errorf("simfmt: events %d, want >= 1", r.Events)
	}
	if r.Arrivals+r.Departures != r.Events {
		return fmt.Errorf("simfmt: arrivals %d + departures %d != events %d", r.Arrivals, r.Departures, r.Events)
	}
	if r.Placed+r.Rejected > r.Arrivals {
		return fmt.Errorf("simfmt: placed %d + rejected %d exceed arrivals %d", r.Placed, r.Rejected, r.Arrivals)
	}
	if r.PlacedFallback > r.Placed {
		return fmt.Errorf("simfmt: placed_fallback %d exceeds placed %d", r.PlacedFallback, r.Placed)
	}
	if !finite(r.PlacementRate) || r.PlacementRate < 0 || r.PlacementRate > 1 {
		return fmt.Errorf("simfmt: placement_rate %v outside [0, 1]", r.PlacementRate)
	}
	if !finite(r.FinalFragmentation) || r.FinalFragmentation < 0 || r.FinalFragmentation > 1 {
		return fmt.Errorf("simfmt: final_fragmentation %v outside [0, 1]", r.FinalFragmentation)
	}
	if r.FinalLive < 0 {
		return fmt.Errorf("simfmt: final_live %d negative", r.FinalLive)
	}
	if r.FramesWritten < 0 || r.BusyMS < 0 || !finite(r.BusyMS) {
		return fmt.Errorf("simfmt: negative or non-finite port accounting")
	}
	if r.CorruptedFrames != 0 {
		return fmt.Errorf("simfmt: %d corrupted frames — the relocation substrate is broken", r.CorruptedFrames)
	}
	if r.LostTasks != 0 {
		return fmt.Errorf("simfmt: %d lost tasks — the pipeline stranded placed modules", r.LostTasks)
	}
	if r.FaultsInjected < 0 || r.Retries < 0 || r.CorruptionsRepaired < 0 || r.Rollbacks < 0 {
		return fmt.Errorf("simfmt: negative fault accounting")
	}
	if r.FaultPlan == "" && (r.FaultsInjected != 0 || r.Retries != 0 || r.CorruptionsRepaired != 0 || r.Rollbacks != 0) {
		return fmt.Errorf("simfmt: fault accounting without a fault plan")
	}
	last := 0
	for i, p := range r.FragTrajectory {
		if p.Event <= last {
			return fmt.Errorf("simfmt: frag_trajectory point %d out of order (event %d after %d)", i, p.Event, last)
		}
		if p.Event > r.Events {
			return fmt.Errorf("simfmt: frag_trajectory point %d beyond the last event", i)
		}
		if !finite(p.Frag) || p.Frag < 0 || p.Frag > 1 {
			return fmt.Errorf("simfmt: frag_trajectory point %d fragmentation %v outside [0, 1]", i, p.Frag)
		}
		if !finite(p.Occupancy) || p.Occupancy < 0 || p.Occupancy > 1 {
			return fmt.Errorf("simfmt: frag_trajectory point %d occupancy %v outside [0, 1]", i, p.Occupancy)
		}
		last = p.Event
	}
	prev := 0
	for i, c := range r.DefragCycles {
		if c.AtEvent <= prev {
			return fmt.Errorf("simfmt: defrag cycle %d out of order (event %d after %d)", i, c.AtEvent, prev)
		}
		if c.AtEvent > r.Events {
			return fmt.Errorf("simfmt: defrag cycle %d beyond the last event", i)
		}
		if c.Executed > c.Planned || c.Executed < 0 || c.Planned < 0 {
			return fmt.Errorf("simfmt: defrag cycle %d executed %d of %d planned", i, c.Executed, c.Planned)
		}
		for _, f := range []float64{c.FragBefore, c.FragAfter} {
			if !finite(f) || f < 0 || f > 1 {
				return fmt.Errorf("simfmt: defrag cycle %d fragmentation %v outside [0, 1]", i, f)
			}
		}
		// Under fault injection a mid-schedule failure rolls the layout
		// back, so a cycle can legitimately execute moves without
		// improving fragmentation — the no-improvement check only holds
		// for fault-free runs.
		if c.Executed > 0 && c.FragAfter >= c.FragBefore && r.FaultPlan == "" {
			return fmt.Errorf("simfmt: defrag cycle %d executed but did not improve (%v -> %v)",
				i, c.FragBefore, c.FragAfter)
		}
		if c.CorruptedFrames != 0 {
			return fmt.Errorf("simfmt: defrag cycle %d corrupted %d frames", i, c.CorruptedFrames)
		}
		if c.FramesVerified < 0 || c.FramesWritten < 0 || !finite(c.BusyMS) || c.BusyMS < 0 ||
			c.Retries < 0 || c.RolledBack < 0 {
			return fmt.Errorf("simfmt: defrag cycle %d has negative accounting", i)
		}
		prev = c.AtEvent
	}
	return nil
}

// Write validates the report and writes it as indented JSON.
func (r *Report) Write(w io.Writer) error {
	if err := r.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Read parses and validates a report.
func Read(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("simfmt: parsing report: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}
