package simfmt

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func validReport() *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		CreatedAt:     time.Now().UTC(),
		Device:        "xc5vfx70t",
		Seed:          7,
		Events:        10,
		Intensity:     0.6,
		FragThreshold: 0.55,
		Arrivals:      6,
		Departures:    4,
		Placed:        5,
		Rejected:      1,
		PlacementRate: 5.0 / 6.0,
		FragTrajectory: []FragPoint{
			{Event: 1, Frag: 0.1, Occupancy: 0.05},
			{Event: 5, Frag: 0.6, Occupancy: 0.4},
			{Event: 10, Frag: 0.3, Occupancy: 0.35},
		},
		FinalFragmentation: 0.3,
		FinalLive:          2,
		DefragCycles: []DefragCycle{
			{AtEvent: 6, Planned: 3, Executed: 3, FragBefore: 0.7, FragAfter: 0.3,
				FramesWritten: 120, BusyMS: 0.7, FramesVerified: 120},
		},
		FramesWritten: 900,
		BusyMS:        5.4,
	}
}

func TestRoundTrip(t *testing.T) {
	r := validReport()
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Events != r.Events || len(got.DefragCycles) != 1 || got.FragTrajectory[1].Frag != 0.6 {
		t.Fatalf("round trip mangled report: %+v", got)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Report)
		want   string
	}{
		{"wrong schema", func(r *Report) { r.SchemaVersion = 99 }, "schema_version"},
		{"no device", func(r *Report) { r.Device = "" }, "no device"},
		{"event split", func(r *Report) { r.Departures++ }, "departures"},
		{"over-placed", func(r *Report) { r.Placed = 7 }, "exceed arrivals"},
		{"fallback over placed", func(r *Report) { r.PlacedFallback = 6 }, "placed_fallback"},
		{"rate out of range", func(r *Report) { r.PlacementRate = 1.5 }, "placement_rate"},
		{"corrupted frames", func(r *Report) { r.CorruptedFrames = 1 }, "corrupted"},
		{"trajectory disorder", func(r *Report) {
			r.FragTrajectory[2].Event = 3
		}, "out of order"},
		{"frag out of range", func(r *Report) { r.FragTrajectory[0].Frag = 1.5 }, "outside [0, 1]"},
		{"cycle disorder", func(r *Report) {
			r.DefragCycles = append(r.DefragCycles, DefragCycle{AtEvent: 6, FragBefore: 0.5, FragAfter: 0.5})
		}, "out of order"},
		{"executed over planned", func(r *Report) { r.DefragCycles[0].Executed = 4 }, "executed"},
		{"executed non-improving", func(r *Report) {
			r.DefragCycles[0].FragAfter = 0.7
		}, "did not improve"},
		{"cycle corruption", func(r *Report) { r.DefragCycles[0].CorruptedFrames = 2 }, "corrupted"},
	}
	for _, tc := range cases {
		r := validReport()
		tc.mutate(r)
		err := r.Validate()
		if err == nil {
			t.Errorf("%s: validated", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
