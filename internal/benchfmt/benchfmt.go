// Package benchfmt defines BENCH.json — the schema-versioned output of
// cmd/floorbench, the continuous benchmark harness. One Report captures
// a benchmark run: per instance×engine, wall-clock percentiles, the best
// objective found, optimality/feasibility flags and the incumbent curve.
// Reports are committed over time to seed a performance trajectory, so
// the schema is versioned and Validate enforces its invariants before a
// report is written or accepted in CI.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"
)

// SchemaVersion is the current BENCH.json schema. Bump on any
// incompatible shape change, so trajectory tooling can dispatch.
const SchemaVersion = 1

// Report is one benchmark run over a set of instances and engines.
type Report struct {
	// SchemaVersion pins the report shape; must equal SchemaVersion.
	SchemaVersion int `json:"schema_version"`
	// CreatedAt is when the run finished.
	CreatedAt time.Time `json:"created_at"`
	// GoVersion and Host describe the run environment (informational).
	GoVersion string `json:"go_version,omitempty"`
	Host      string `json:"host,omitempty"`
	// BudgetMS is the per-solve time budget in milliseconds.
	BudgetMS float64 `json:"budget_ms"`
	// Repeats is the solves per instance×engine cell.
	Repeats int `json:"repeats"`
	// Seed drove the randomized engines.
	Seed int64 `json:"seed"`
	// Meta records the run's provenance (toolchain, host shape, VCS
	// state) so two reports can be judged comparable before their numbers
	// are. Optional: reports from before the field existed — and
	// hand-built fixtures — validate without it.
	Meta *Meta `json:"meta,omitempty"`
	// Results holds one entry per instance×engine.
	Results []Result `json:"results"`
	// BudgetWarnings lists the cells whose median wall-clock blew the
	// budget by more than ContractEpsilonMS (see BudgetViolations).
	// Warn-level: a populated list never fails Validate — it exists so a
	// budget blowout is visible in the committed artifact itself. Write
	// recomputes it, so hand-edited lists do not survive serialization.
	BudgetWarnings []string `json:"budget_warnings,omitempty"`
}

// Meta is a report's provenance block: enough to tell whether two
// reports were produced by comparable builds on comparable hosts.
type Meta struct {
	// GitCommit is the VCS revision the harness binary was built from
	// (vcs.revision from the embedded build info); GitDirty marks a build
	// with uncommitted changes.
	GitCommit string `json:"git_commit,omitempty"`
	GitDirty  bool   `json:"git_dirty,omitempty"`
	// GoVersion, GOOS and GOARCH describe the toolchain and platform.
	GoVersion string `json:"go_version,omitempty"`
	GOOS      string `json:"goos,omitempty"`
	GOARCH    string `json:"goarch,omitempty"`
	// NumCPU and GOMAXPROCS describe the host parallelism at run time —
	// the usual suspect when two reports disagree on wall-clock.
	NumCPU     int `json:"num_cpu,omitempty"`
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
}

// ContractEpsilonMS is the slack a solve may overrun its budget before
// a report flags it: the same 250ms epsilon the deadline-contract tests
// grant engines past their TimeLimit (bookkeeping between the deadline
// firing and the call returning).
const ContractEpsilonMS = 250

// BudgetViolations returns one warning per instance×engine cell whose
// median wall-clock exceeds the per-solve budget by more than
// ContractEpsilonMS. Such a cell means the engine ignored its
// TimeLimit — the kind of regression percentile columns alone make
// easy to overlook.
func (r *Report) BudgetViolations() []string {
	var warns []string
	for _, res := range r.Results {
		if limit := r.BudgetMS + ContractEpsilonMS; res.WallMSP50 > limit {
			warns = append(warns, fmt.Sprintf(
				"%s×%s: wall p50 %.0fms exceeds the %.0fms budget by more than the %dms contract epsilon",
				res.Instance, res.Engine, res.WallMSP50, r.BudgetMS, ContractEpsilonMS))
		}
	}
	return warns
}

// Outcomes a Result may carry (the obs outcome labels a benchmark can
// end with; panics/invalid solutions surface as "error" with Err set).
var knownOutcomes = map[string]bool{
	"proven":      true,
	"solved":      true,
	"infeasible":  true,
	"no_solution": true,
	"error":       true,
}

// OutcomeRank orders outcomes by informativeness: a proof beats a
// solution beats an infeasibility verdict beats an exhausted budget
// beats a failure. Unknown outcomes rank lowest. The harness uses it to
// aggregate repeats; the compare gate uses it to spot a cell whose
// outcome got worse.
func OutcomeRank(o string) int {
	switch o {
	case "proven":
		return 5
	case "solved":
		return 4
	case "infeasible":
		return 3
	case "no_solution":
		return 2
	case "error":
		return 1
	default:
		return 0
	}
}

// Result is one instance×engine cell of the benchmark matrix.
type Result struct {
	// Instance and Engine name the cell.
	Instance string `json:"instance"`
	Engine   string `json:"engine"`
	// Outcome is the cell's best outcome across repeats: "proven",
	// "solved", "infeasible", "no_solution" or "error".
	Outcome string `json:"outcome"`
	// Feasible reports that at least one repeat returned a validated
	// solution; Optimal that at least one proved lexicographic
	// optimality.
	Feasible bool `json:"feasible"`
	Optimal  bool `json:"optimal"`
	// BestObjective is the best (lowest) objective across repeats,
	// present when Feasible.
	BestObjective *float64 `json:"best_objective,omitempty"`
	// Runs counts the repeats actually executed.
	Runs int `json:"runs"`
	// WallMSP50 and WallMSP95 are nearest-rank percentiles of the
	// per-repeat wall-clock, in milliseconds.
	WallMSP50 float64 `json:"wall_ms_p50"`
	WallMSP95 float64 `json:"wall_ms_p95"`
	// IncumbentCurve is the best repeat's incumbent trajectory:
	// timestamps nondecreasing, objectives strictly improving.
	IncumbentCurve []CurvePoint `json:"incumbent_curve,omitempty"`
	// Err carries the failure text when Outcome is "error".
	Err string `json:"err,omitempty"`
}

// CurvePoint is one incumbent improvement on the curve.
type CurvePoint struct {
	AtMS      float64 `json:"at_ms"`
	Objective float64 `json:"objective"`
}

// Validate checks the report's invariants: current schema, sane run
// parameters, known outcomes, consistent flags, ordered percentiles,
// monotone incumbent curves and no duplicate instance×engine cells.
func (r *Report) Validate() error {
	if r.SchemaVersion != SchemaVersion {
		return fmt.Errorf("benchfmt: schema_version %d, want %d", r.SchemaVersion, SchemaVersion)
	}
	if r.Repeats < 1 {
		return fmt.Errorf("benchfmt: repeats %d, want >= 1", r.Repeats)
	}
	if !(r.BudgetMS > 0) {
		return fmt.Errorf("benchfmt: budget_ms %v, want > 0", r.BudgetMS)
	}
	if len(r.Results) == 0 {
		return fmt.Errorf("benchfmt: report has no results")
	}
	seen := map[string]bool{}
	for i, res := range r.Results {
		cell := res.Instance + "\x00" + res.Engine
		if res.Instance == "" || res.Engine == "" {
			return fmt.Errorf("benchfmt: result %d has empty instance/engine", i)
		}
		if seen[cell] {
			return fmt.Errorf("benchfmt: duplicate cell %s×%s", res.Instance, res.Engine)
		}
		seen[cell] = true
		if !knownOutcomes[res.Outcome] {
			return fmt.Errorf("benchfmt: %s×%s has unknown outcome %q", res.Instance, res.Engine, res.Outcome)
		}
		if res.Runs < 1 || res.Runs > r.Repeats {
			return fmt.Errorf("benchfmt: %s×%s ran %d repeats, want 1..%d", res.Instance, res.Engine, res.Runs, r.Repeats)
		}
		if res.WallMSP50 < 0 || res.WallMSP95 < 0 || res.WallMSP50 > res.WallMSP95 {
			return fmt.Errorf("benchfmt: %s×%s percentiles out of order: p50=%v p95=%v",
				res.Instance, res.Engine, res.WallMSP50, res.WallMSP95)
		}
		if res.Feasible != (res.BestObjective != nil) {
			return fmt.Errorf("benchfmt: %s×%s feasible=%v but best_objective present=%v",
				res.Instance, res.Engine, res.Feasible, res.BestObjective != nil)
		}
		if res.Optimal && !res.Feasible {
			return fmt.Errorf("benchfmt: %s×%s optimal without being feasible", res.Instance, res.Engine)
		}
		if res.BestObjective != nil && (math.IsNaN(*res.BestObjective) || math.IsInf(*res.BestObjective, 0)) {
			return fmt.Errorf("benchfmt: %s×%s best_objective is not finite", res.Instance, res.Engine)
		}
		for j := 1; j < len(res.IncumbentCurve); j++ {
			prev, cur := res.IncumbentCurve[j-1], res.IncumbentCurve[j]
			if cur.AtMS < prev.AtMS {
				return fmt.Errorf("benchfmt: %s×%s incumbent curve timestamps regress at point %d",
					res.Instance, res.Engine, j)
			}
			if cur.Objective >= prev.Objective {
				return fmt.Errorf("benchfmt: %s×%s incumbent curve does not improve at point %d",
					res.Instance, res.Engine, j)
			}
		}
	}
	return nil
}

// Write validates the report and writes it as indented JSON, stamping
// the budget-compliance warnings so they travel with the artifact.
func (r *Report) Write(w io.Writer) error {
	r.BudgetWarnings = r.BudgetViolations()
	if err := r.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Read parses and validates a report.
func Read(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("benchfmt: parsing report: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}
