package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// CompareOpts tunes the regression gate's noise discrimination. A cell's
// wall-clock only counts as regressed when it exceeds BOTH margins —
// the relative one keeps fast cells from tripping on microsecond jitter,
// the absolute one keeps slow cells from tripping on a few percent of
// scheduler noise.
type CompareOpts struct {
	// NoisePct is the relative p50 slowdown (percent) tolerated as noise
	// (default 10).
	NoisePct float64
	// NoiseFloorMS is the absolute p50 slowdown (milliseconds) tolerated
	// as noise (default 25).
	NoiseFloorMS float64
}

// Compare defaults.
const (
	DefaultNoisePct     = 10
	DefaultNoiseFloorMS = 25
)

func (o *CompareOpts) withDefaults() CompareOpts {
	out := *o
	if out.NoisePct <= 0 {
		out.NoisePct = DefaultNoisePct
	}
	if out.NoiseFloorMS <= 0 {
		out.NoiseFloorMS = DefaultNoiseFloorMS
	}
	return out
}

// CellDiff is one instance×engine cell's old-vs-new comparison.
type CellDiff struct {
	Instance string `json:"instance"`
	Engine   string `json:"engine"`
	// OldP50/NewP50 and the deltas carry the gate's main signal.
	OldP50MS     float64  `json:"old_p50_ms"`
	NewP50MS     float64  `json:"new_p50_ms"`
	DeltaP50MS   float64  `json:"delta_p50_ms"`
	DeltaP50Pct  float64  `json:"delta_p50_pct"`
	OldP95MS     float64  `json:"old_p95_ms"`
	NewP95MS     float64  `json:"new_p95_ms"`
	OldOutcome   string   `json:"old_outcome"`
	NewOutcome   string   `json:"new_outcome"`
	OldObjective *float64 `json:"old_objective,omitempty"`
	NewObjective *float64 `json:"new_objective,omitempty"`
	// DeltaObjective is new minus old best objective, when both exist
	// (positive = worse: objectives are minimized).
	DeltaObjective *float64 `json:"delta_objective,omitempty"`
	// NewBudgetViolation marks a cell that breaks the deadline contract
	// in the new report but did not in the old one.
	NewBudgetViolation bool `json:"new_budget_violation,omitempty"`
	// Regressed aggregates Reasons.
	Regressed bool `json:"regressed,omitempty"`
	// Reasons spells out each regression ("p50 +140% (+320ms)",
	// "outcome proven -> error", ...), empty for clean cells.
	Reasons []string `json:"reasons,omitempty"`
}

// Diff is a full old-vs-new report comparison: the gate's verdict plus
// everything needed to render it.
type Diff struct {
	// Opts echoes the margins the verdict was computed under.
	Opts CompareOpts `json:"opts"`
	// OldMeta/NewMeta carry the reports' provenance, when present.
	OldMeta *Meta `json:"old_meta,omitempty"`
	NewMeta *Meta `json:"new_meta,omitempty"`
	// Cells compares every cell present in both reports, old-report order.
	Cells []CellDiff `json:"cells"`
	// MissingCells are cells the old report had and the new one lost —
	// a shrunk matrix is a regression until the baseline says otherwise.
	MissingCells []string `json:"missing_cells,omitempty"`
	// NewCells are cells only the new report has (informational).
	NewCells []string `json:"new_cells,omitempty"`
	// Regressions flattens every failure into one line each.
	Regressions []string `json:"regressions,omitempty"`
}

// Regressed reports whether the gate should fail.
func (d *Diff) Regressed() bool { return len(d.Regressions) > 0 }

// Compare diffs head against the base baseline cell by cell. A cell
// regresses when its median wall-clock slows past both noise margins,
// when its outcome rank drops (lost proof, lost feasibility, new
// failure), or when it violates the budget contract where the baseline
// did not. Cells missing from the head report regress unconditionally.
func Compare(base, head *Report, opts CompareOpts) *Diff {
	opts = opts.withDefaults()
	d := &Diff{Opts: opts, OldMeta: base.Meta, NewMeta: head.Meta}

	type cellKey struct{ instance, engine string }
	headCells := make(map[cellKey]*Result, len(head.Results))
	for i := range head.Results {
		res := &head.Results[i]
		headCells[cellKey{res.Instance, res.Engine}] = res
	}
	matched := map[cellKey]bool{}

	for i := range base.Results {
		o := &base.Results[i]
		key := cellKey{o.Instance, o.Engine}
		n, ok := headCells[key]
		if !ok {
			cell := fmt.Sprintf("%s×%s", o.Instance, o.Engine)
			d.MissingCells = append(d.MissingCells, cell)
			d.Regressions = append(d.Regressions, fmt.Sprintf("%s: cell missing from new report", cell))
			continue
		}
		matched[key] = true
		d.Cells = append(d.Cells, compareCell(o, n, base, head, opts))
	}
	for i := range head.Results {
		res := &head.Results[i]
		if !matched[cellKey{res.Instance, res.Engine}] {
			d.NewCells = append(d.NewCells, fmt.Sprintf("%s×%s", res.Instance, res.Engine))
		}
	}
	for _, c := range d.Cells {
		for _, reason := range c.Reasons {
			d.Regressions = append(d.Regressions, fmt.Sprintf("%s×%s: %s", c.Instance, c.Engine, reason))
		}
	}
	return d
}

// compareCell diffs one matched cell under the gate's rules.
func compareCell(o, n *Result, oldR, newR *Report, opts CompareOpts) CellDiff {
	c := CellDiff{
		Instance:   o.Instance,
		Engine:     o.Engine,
		OldP50MS:   o.WallMSP50,
		NewP50MS:   n.WallMSP50,
		DeltaP50MS: n.WallMSP50 - o.WallMSP50,
		OldP95MS:   o.WallMSP95,
		NewP95MS:   n.WallMSP95,
		OldOutcome: o.Outcome,
		NewOutcome: n.Outcome,
	}
	if o.WallMSP50 > 0 {
		c.DeltaP50Pct = 100 * c.DeltaP50MS / o.WallMSP50
	}
	if o.BestObjective != nil {
		v := *o.BestObjective
		c.OldObjective = &v
	}
	if n.BestObjective != nil {
		v := *n.BestObjective
		c.NewObjective = &v
	}
	if c.OldObjective != nil && c.NewObjective != nil {
		delta := *c.NewObjective - *c.OldObjective
		c.DeltaObjective = &delta
	}

	slowdownPct := c.DeltaP50Pct
	if o.WallMSP50 == 0 && c.DeltaP50MS > 0 {
		slowdownPct = math.Inf(1) // from instant to measurable: judge by the floor alone
	}
	if slowdownPct > opts.NoisePct && c.DeltaP50MS > opts.NoiseFloorMS {
		c.Reasons = append(c.Reasons, fmt.Sprintf(
			"p50 %.0fms -> %.0fms (+%.0f%%, +%.0fms past the %.0f%%/%.0fms noise margin)",
			c.OldP50MS, c.NewP50MS, c.DeltaP50Pct, c.DeltaP50MS, opts.NoisePct, opts.NoiseFloorMS))
	}
	if OutcomeRank(n.Outcome) < OutcomeRank(o.Outcome) {
		c.Reasons = append(c.Reasons, fmt.Sprintf("outcome %s -> %s", o.Outcome, n.Outcome))
	}
	oldViolates := o.WallMSP50 > oldR.BudgetMS+ContractEpsilonMS
	newViolates := n.WallMSP50 > newR.BudgetMS+ContractEpsilonMS
	if newViolates && !oldViolates {
		c.NewBudgetViolation = true
		c.Reasons = append(c.Reasons, fmt.Sprintf(
			"new budget violation: p50 %.0fms exceeds the %.0fms budget plus the %dms contract epsilon",
			n.WallMSP50, newR.BudgetMS, ContractEpsilonMS))
	}
	c.Regressed = len(c.Reasons) > 0
	return c
}

// WriteText renders the diff as the human report the CI log shows: one
// row per cell, then the verdict.
func (d *Diff) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-8s %-14s %12s %12s %9s  %s\n",
		"instance", "engine", "old p50", "new p50", "delta", "verdict"); err != nil {
		return err
	}
	for _, c := range d.Cells {
		verdict := "ok"
		if c.Regressed {
			verdict = "REGRESSED: " + c.Reasons[0]
			if len(c.Reasons) > 1 {
				verdict += fmt.Sprintf(" (+%d more)", len(c.Reasons)-1)
			}
		}
		if _, err := fmt.Fprintf(w, "%-8s %-14s %10.1fms %10.1fms %+8.1f%%  %s\n",
			c.Instance, c.Engine, c.OldP50MS, c.NewP50MS, c.DeltaP50Pct, verdict); err != nil {
			return err
		}
	}
	for _, cell := range d.MissingCells {
		if _, err := fmt.Fprintf(w, "%s: MISSING from new report\n", cell); err != nil {
			return err
		}
	}
	for _, cell := range d.NewCells {
		if _, err := fmt.Fprintf(w, "%s: new cell (no baseline)\n", cell); err != nil {
			return err
		}
	}
	var err error
	if d.Regressed() {
		_, err = fmt.Fprintf(w, "FAIL: %d regression(s)\n", len(d.Regressions))
	} else {
		_, err = fmt.Fprintf(w, "PASS: %d cell(s) within the noise margin\n", len(d.Cells))
	}
	return err
}

// WriteJSON writes the diff as indented JSON — the machine artifact CI
// uploads next to the human log.
func (d *Diff) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
