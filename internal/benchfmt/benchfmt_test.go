package benchfmt

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func validReport() *Report {
	obj := 12.5
	return &Report{
		SchemaVersion: SchemaVersion,
		CreatedAt:     time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC),
		BudgetMS:      2000,
		Repeats:       3,
		Seed:          1,
		Results: []Result{
			{
				Instance: "sdr", Engine: "exact",
				Outcome: "proven", Feasible: true, Optimal: true,
				BestObjective: &obj, Runs: 3,
				WallMSP50: 10, WallMSP95: 30,
				IncumbentCurve: []CurvePoint{{AtMS: 1, Objective: 20}, {AtMS: 5, Objective: 12.5}},
			},
			{
				Instance: "sdr", Engine: "annealing",
				Outcome: "no_solution", Runs: 3,
				WallMSP50: 2000, WallMSP95: 2000,
			},
		},
	}
}

func TestValidReportRoundTrips(t *testing.T) {
	r := validReport()
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 2 || back.Results[0].WallMSP95 != 30 {
		t.Errorf("round trip mangled the report: %+v", back)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(r *Report)
		want   string
	}{
		{"wrong schema", func(r *Report) { r.SchemaVersion = 99 }, "schema_version"},
		{"zero repeats", func(r *Report) { r.Repeats = 0 }, "repeats"},
		{"zero budget", func(r *Report) { r.BudgetMS = 0 }, "budget_ms"},
		{"no results", func(r *Report) { r.Results = nil }, "no results"},
		{"duplicate cell", func(r *Report) { r.Results[1] = r.Results[0] }, "duplicate"},
		{"unknown outcome", func(r *Report) { r.Results[0].Outcome = "great" }, "unknown outcome"},
		{"zero runs", func(r *Report) { r.Results[0].Runs = 0 }, "repeats"},
		{"p50 above p95", func(r *Report) { r.Results[0].WallMSP50 = 99 }, "percentiles"},
		{"feasible without objective", func(r *Report) { r.Results[0].BestObjective = nil }, "feasible"},
		{"optimal without feasible", func(r *Report) { r.Results[1].Optimal = true }, "optimal"},
		{"curve time regression", func(r *Report) { r.Results[0].IncumbentCurve[1].AtMS = 0.5 }, "timestamps regress"},
		{"curve not improving", func(r *Report) { r.Results[0].IncumbentCurve[1].Objective = 20 }, "does not improve"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := validReport()
			tc.mutate(r)
			err := r.Validate()
			if err == nil {
				t.Fatal("validation passed")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestWriteRefusesInvalid(t *testing.T) {
	r := validReport()
	r.Repeats = 0
	if err := r.Write(&bytes.Buffer{}); err == nil {
		t.Fatal("Write accepted an invalid report")
	}
}

// TestBudgetViolationsWarn pins the budget-compliance invariant: a cell
// whose wall p50 blows the budget past the contract epsilon is flagged
// — as a warning Write stamps into the artifact, never a Validate
// error, so reports predating the field (and reports with genuine
// blowouts) still validate.
func TestBudgetViolationsWarn(t *testing.T) {
	r := validReport()
	if warns := r.BudgetViolations(); len(warns) != 0 {
		t.Fatalf("compliant report flagged: %v", warns)
	}

	// The epsilon itself is slack, not a violation.
	r.Results[1].WallMSP50 = r.BudgetMS + ContractEpsilonMS
	r.Results[1].WallMSP95 = r.Results[1].WallMSP50
	if warns := r.BudgetViolations(); len(warns) != 0 {
		t.Fatalf("within-epsilon report flagged: %v", warns)
	}

	// An 18x blowout (the BENCH_PR5.json milp-ho case) must be flagged.
	r.Results[1].WallMSP50 = 18 * r.BudgetMS
	r.Results[1].WallMSP95 = r.Results[1].WallMSP50
	warns := r.BudgetViolations()
	if len(warns) != 1 || !strings.Contains(warns[0], "sdr×annealing") {
		t.Fatalf("blowout not flagged: %v", warns)
	}

	// Write stamps the warnings, still validates, and the round trip
	// keeps them.
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatalf("warn-level field failed validation: %v", err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.BudgetWarnings) != 1 {
		t.Fatalf("warnings did not survive the round trip: %+v", back.BudgetWarnings)
	}

	// Stale hand-written warnings are recomputed at write time.
	r.Results[1].WallMSP50 = 10
	r.Results[1].WallMSP95 = 10
	buf.Reset()
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if back, err = Read(&buf); err != nil {
		t.Fatal(err)
	}
	if len(back.BudgetWarnings) != 0 {
		t.Fatalf("stale warnings survived: %v", back.BudgetWarnings)
	}
}
