package benchfmt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// baseReport builds a clean two-cell baseline for the compare tests.
func baseReport() *Report {
	obj := 42.0
	return &Report{
		SchemaVersion: SchemaVersion,
		BudgetMS:      2000,
		Repeats:       1,
		Results: []Result{
			{Instance: "sdr", Engine: "exact", Outcome: "proven", Feasible: true, Optimal: true,
				BestObjective: &obj, Runs: 1, WallMSP50: 200, WallMSP95: 220},
			{Instance: "sdr", Engine: "constructive", Outcome: "solved", Feasible: true,
				BestObjective: &obj, Runs: 1, WallMSP50: 5, WallMSP95: 6},
		},
	}
}

func cloneReport(t *testing.T, r *Report) *Report {
	t.Helper()
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var out Report
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestCompareCleanRunPasses diffs a report against itself.
func TestCompareCleanRunPasses(t *testing.T) {
	base := baseReport()
	d := Compare(base, cloneReport(t, base), CompareOpts{})
	if d.Regressed() {
		t.Fatalf("self-compare regressed: %v", d.Regressions)
	}
	if len(d.Cells) != 2 || len(d.MissingCells) != 0 || len(d.NewCells) != 0 {
		t.Fatalf("cell bookkeeping off: %+v", d)
	}
}

// TestCompareNoiseMarginNeedsBothExceedances pins the double margin: a
// big relative slowdown on a tiny cell and a small relative slowdown on
// a big cell both pass; only exceeding both pct and floor fails.
func TestCompareNoiseMarginNeedsBothExceedances(t *testing.T) {
	base := baseReport()
	opts := CompareOpts{NoisePct: 10, NoiseFloorMS: 25}

	// +200% on the 5ms cell: relative blowout, absolute noise (+10ms).
	head := cloneReport(t, base)
	head.Results[1].WallMSP50, head.Results[1].WallMSP95 = 15, 16
	if d := Compare(base, head, opts); d.Regressed() {
		t.Fatalf("+10ms on a 5ms cell tripped the gate: %v", d.Regressions)
	}

	// +15% on the 200ms cell: past the pct margin, but +30ms is judged
	// against the floor too — with floor 50 it passes, with floor 25 it
	// fails.
	head = cloneReport(t, base)
	head.Results[0].WallMSP50, head.Results[0].WallMSP95 = 230, 250
	if d := Compare(base, head, CompareOpts{NoisePct: 10, NoiseFloorMS: 50}); d.Regressed() {
		t.Fatalf("+30ms under a 50ms floor tripped the gate: %v", d.Regressions)
	}
	d := Compare(base, head, opts)
	if !d.Regressed() {
		t.Fatal("+15%/+30ms past both margins did not trip the gate")
	}
	if !strings.Contains(d.Regressions[0], "p50") {
		t.Fatalf("regression reason does not name p50: %q", d.Regressions[0])
	}

	// A speedup never regresses.
	head = cloneReport(t, base)
	head.Results[0].WallMSP50, head.Results[0].WallMSP95 = 50, 60
	if d := Compare(base, head, opts); d.Regressed() {
		t.Fatalf("speedup regressed: %v", d.Regressions)
	}
}

// TestCompareOutcomeRankDrop fails the gate when a cell loses its proof
// or fails outright, regardless of timing.
func TestCompareOutcomeRankDrop(t *testing.T) {
	base := baseReport()
	head := cloneReport(t, base)
	head.Results[0].Outcome = "error"
	head.Results[0].Err = "engine exploded"
	head.Results[0].Feasible, head.Results[0].Optimal = false, false
	head.Results[0].BestObjective = nil
	d := Compare(base, head, CompareOpts{})
	if !d.Regressed() {
		t.Fatal("proven -> error did not trip the gate")
	}
	if !strings.Contains(strings.Join(d.Regressions, "\n"), "outcome proven -> error") {
		t.Fatalf("regressions don't name the outcome drop: %v", d.Regressions)
	}
	// The reverse (head improves to proven) is clean.
	if d := Compare(head, base, CompareOpts{}); d.Regressed() {
		t.Fatalf("outcome improvement regressed: %v", d.Regressions)
	}
}

// TestCompareNewBudgetViolation fails the gate when a cell starts
// breaking the deadline contract, and tolerates one that already did in
// the baseline.
func TestCompareNewBudgetViolation(t *testing.T) {
	base := baseReport()
	head := cloneReport(t, base)
	// 2400ms against a 2000ms budget: past budget + 250ms epsilon. Use a
	// huge noise margin so only the budget rule can fire.
	head.Results[0].WallMSP50, head.Results[0].WallMSP95 = 2400, 2500
	opts := CompareOpts{NoisePct: 1e6, NoiseFloorMS: 1e6}
	d := Compare(base, head, opts)
	if !d.Regressed() || !strings.Contains(d.Regressions[0], "budget violation") {
		t.Fatalf("new budget violation not caught: %+v", d.Regressions)
	}
	if !d.Cells[0].NewBudgetViolation {
		t.Fatal("cell diff does not mark the budget violation")
	}
	// Already violating in the baseline: not NEW, gate passes.
	if d := Compare(head, cloneReport(t, head), opts); d.Regressed() {
		t.Fatalf("pre-existing violation tripped the gate: %v", d.Regressions)
	}
}

// TestCompareMissingAndNewCells: a shrunk matrix regresses, a grown one
// is informational.
func TestCompareMissingAndNewCells(t *testing.T) {
	base := baseReport()
	head := cloneReport(t, base)
	head.Results = head.Results[:1]
	d := Compare(base, head, CompareOpts{})
	if !d.Regressed() || len(d.MissingCells) != 1 || d.MissingCells[0] != "sdr×constructive" {
		t.Fatalf("missing cell not flagged: %+v", d)
	}

	d = Compare(head, base, CompareOpts{})
	if d.Regressed() {
		t.Fatalf("new cell regressed: %v", d.Regressions)
	}
	if len(d.NewCells) != 1 || d.NewCells[0] != "sdr×constructive" {
		t.Fatalf("new cell not reported: %+v", d)
	}
}

// TestCompareObjectiveDelta records the objective movement on the cell
// diff (informational; the gate keys on outcome and timing).
func TestCompareObjectiveDelta(t *testing.T) {
	base := baseReport()
	head := cloneReport(t, base)
	worse := 45.0
	head.Results[0].BestObjective = &worse
	d := Compare(base, head, CompareOpts{})
	if d.Cells[0].DeltaObjective == nil || *d.Cells[0].DeltaObjective != 3 {
		t.Fatalf("objective delta = %+v, want 3", d.Cells[0].DeltaObjective)
	}
}

// TestCompareRendering exercises both writers on a failing diff.
func TestCompareRendering(t *testing.T) {
	base := baseReport()
	head := cloneReport(t, base)
	head.Results[0].WallMSP50, head.Results[0].WallMSP95 = 900, 950
	d := Compare(base, head, CompareOpts{})

	var text bytes.Buffer
	if err := d.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"REGRESSED", "FAIL: 1 regression(s)", "exact"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text report missing %q:\n%s", want, text.String())
		}
	}

	var raw bytes.Buffer
	if err := d.WriteJSON(&raw); err != nil {
		t.Fatal(err)
	}
	var back Diff
	if err := json.Unmarshal(raw.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !back.Regressed() || len(back.Cells) != 2 {
		t.Fatalf("JSON round-trip lost the verdict: %+v", back)
	}
}

// TestValidateToleratesMissingMeta pins the provenance satellite's
// compatibility contract: reports without a meta block stay valid, and
// one with a meta block round-trips.
func TestValidateToleratesMissingMeta(t *testing.T) {
	r := baseReport()
	if err := r.Validate(); err != nil {
		t.Fatalf("report without meta rejected: %v", err)
	}
	r.Meta = &Meta{GitCommit: "abc123", GoVersion: "go1.22", NumCPU: 8, GOMAXPROCS: 8}
	if err := r.Validate(); err != nil {
		t.Fatalf("report with meta rejected: %v", err)
	}
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Meta == nil || back.Meta.GitCommit != "abc123" {
		t.Fatalf("meta did not round-trip: %+v", back.Meta)
	}
}
