package bitstream

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// formatVersion is bumped on any change to the wire layout.
const formatVersion = 1

// Encode serializes the bitstream:
//
//	magic[4] version[u16] nameLen[u16] name area{x,y,w,h as i32}
//	frameCount[u32] frames{col,row,minor as i32, payload[FrameBytes]}...
//	crc[u32]
//
// All integers little-endian.
func (bs *Bitstream) Encode(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.write(Magic[:])
	bw.u16(formatVersion)
	if len(bs.DeviceName) > 0xffff {
		return fmt.Errorf("bitstream: device name too long")
	}
	bw.u16(uint16(len(bs.DeviceName)))
	bw.write([]byte(bs.DeviceName))
	bw.i32(bs.Area.X)
	bw.i32(bs.Area.Y)
	bw.i32(bs.Area.W)
	bw.i32(bs.Area.H)
	bw.u32(uint32(len(bs.Frames)))
	for _, f := range bs.Frames {
		bw.i32(f.Addr.Column)
		bw.i32(f.Addr.Row)
		bw.i32(f.Addr.Minor)
		bw.write(f.Payload[:])
	}
	bw.u32(bs.CRC)
	return bw.err
}

// Bytes returns the encoded form.
func (bs *Bitstream) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := bs.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode parses a bitstream previously written by Encode. The CRC is
// stored but not verified; call CheckCRC to validate content integrity.
func Decode(r io.Reader) (*Bitstream, error) {
	br := &errReader{r: r}
	var magic [4]byte
	br.read(magic[:])
	if br.err == nil && magic != Magic {
		return nil, fmt.Errorf("bitstream: bad magic %q", magic)
	}
	version := br.u16()
	if br.err == nil && version != formatVersion {
		return nil, fmt.Errorf("bitstream: unsupported version %d", version)
	}
	nameLen := br.u16()
	name := make([]byte, nameLen)
	br.read(name)
	bs := &Bitstream{DeviceName: string(name)}
	bs.Area.X = br.i32()
	bs.Area.Y = br.i32()
	bs.Area.W = br.i32()
	bs.Area.H = br.i32()
	n := br.u32()
	if br.err == nil && n > 1<<24 {
		return nil, fmt.Errorf("bitstream: implausible frame count %d", n)
	}
	bs.Frames = make([]Frame, 0, n)
	for i := uint32(0); i < n && br.err == nil; i++ {
		var f Frame
		f.Addr.Column = br.i32()
		f.Addr.Row = br.i32()
		f.Addr.Minor = br.i32()
		br.read(f.Payload[:])
		bs.Frames = append(bs.Frames, f)
	}
	bs.CRC = br.u32()
	if br.err != nil {
		return nil, fmt.Errorf("bitstream: decode: %w", br.err)
	}
	return bs, nil
}

// DecodeBytes parses an encoded bitstream from memory.
func DecodeBytes(data []byte) (*Bitstream, error) {
	return Decode(bytes.NewReader(data))
}

type errWriter struct {
	w   io.Writer
	err error
}

func (w *errWriter) write(p []byte) {
	if w.err == nil {
		_, w.err = w.w.Write(p)
	}
}

func (w *errWriter) u16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	w.write(b[:])
}

func (w *errWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.write(b[:])
}

func (w *errWriter) i32(v int) {
	w.u32(uint32(int32(v)))
}

type errReader struct {
	r   io.Reader
	err error
}

func (r *errReader) read(p []byte) {
	if r.err == nil {
		_, r.err = io.ReadFull(r.r, p)
	}
}

func (r *errReader) u16() uint16 {
	var b [2]byte
	r.read(b[:])
	return binary.LittleEndian.Uint16(b[:])
}

func (r *errReader) u32() uint32 {
	var b [4]byte
	r.read(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (r *errReader) i32() int {
	return int(int32(r.u32()))
}
