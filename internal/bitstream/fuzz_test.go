package bitstream

import (
	"bytes"
	"testing"

	"repro/internal/device"
	"repro/internal/grid"
)

// FuzzDecode hardens the bitstream parser against malformed input: it
// must never panic, and any stream it accepts must re-encode to an
// equivalent stream.
func FuzzDecode(f *testing.F) {
	d := device.VirtexFX70T()
	for _, area := range []grid.Rect{
		{X: 0, Y: 0, W: 1, H: 1},
		{X: 4, Y: 0, W: 6, H: 5},
		{X: 2, Y: 3, W: 3, H: 2},
	} {
		bs, err := Generate(d, area, 42)
		if err != nil {
			f.Fatal(err)
		}
		data, err := bs.Bytes()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte("PBIT"))
	f.Add([]byte{'P', 'B', 'I', 'T', 1, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		bs, err := DecodeBytes(data)
		if err != nil {
			return // rejected: fine
		}
		// Accepted streams must round-trip stably.
		out, err := bs.Bytes()
		if err != nil {
			t.Fatalf("accepted stream failed to re-encode: %v", err)
		}
		back, err := DecodeBytes(out)
		if err != nil {
			t.Fatalf("re-encoded stream rejected: %v", err)
		}
		if back.DeviceName != bs.DeviceName || back.Area != bs.Area ||
			len(back.Frames) != len(bs.Frames) || back.CRC != bs.CRC {
			t.Fatal("re-encode changed the stream")
		}
	})
}

// TestDecodeSeedCorpus runs the fuzz seeds as a plain test (what `go
// test` exercises without -fuzz).
func TestDecodeSeedCorpus(t *testing.T) {
	d := device.VirtexFX70T()
	bs, err := Generate(d, grid.Rect{X: 1, Y: 1, W: 2, H: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	data, err := bs.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	// Flip a sample of byte positions; decode must reject or round-trip,
	// never panic.
	for i := 0; i < len(data); i += 13 {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x5a
		if dec, err := DecodeBytes(mut); err == nil {
			if _, err := dec.Bytes(); err != nil {
				t.Fatalf("byte %d: accepted stream failed re-encode: %v", i, err)
			}
		}
	}
	// Truncations at every length.
	for n := 0; n < len(data); n += 7 {
		if dec, err := DecodeBytes(data[:n]); err == nil {
			if !bytes.Equal(mustBytes(t, dec), data[:n]) {
				// Acceptable: decoding a truncated stream that happens
				// to parse must still be internally consistent.
				_ = dec
			}
		}
	}
}

func mustBytes(t *testing.T, bs *Bitstream) []byte {
	t.Helper()
	data, err := bs.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return data
}
