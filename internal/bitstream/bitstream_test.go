package bitstream

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/grid"
)

func fx() *device.Device { return device.VirtexFX70T() }

func TestGenerateFrameCount(t *testing.T) {
	d := fx()
	area := grid.Rect{X: 4, Y: 0, W: 6, H: 5} // 25 CLB + 5 DSP
	bs, err := Generate(d, area, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := bs.FrameCount(), d.FramesInRect(area); got != want {
		t.Fatalf("frames = %d, want %d", got, want)
	}
	if got := bs.FrameCount(); got != 25*36+5*28 {
		t.Fatalf("frames = %d, want Table I's 1040", got)
	}
	if !bs.CheckCRC() {
		t.Fatal("fresh bitstream fails CRC")
	}
}

func TestGenerateRejectsIllegalArea(t *testing.T) {
	d := fx()
	if _, err := Generate(d, grid.Rect{X: 13, Y: 2, W: 4, H: 2}, 1); err == nil {
		t.Fatal("area crossing the PPC accepted")
	}
	if _, err := Generate(d, grid.Rect{X: 40, Y: 7, W: 3, H: 3}, 1); err == nil {
		t.Fatal("out-of-bounds area accepted")
	}
}

func TestPayloadPositionIndependence(t *testing.T) {
	d := fx()
	// Two compatible areas (the matched-filter spans around both DSP
	// columns) must yield identical payload sequences for the same seed.
	a := grid.Rect{X: 4, Y: 0, W: 6, H: 5}
	b := grid.Rect{X: 24, Y: 2, W: 6, H: 5}
	if !d.Compatible(a, b) {
		t.Fatal("test areas must be compatible")
	}
	bsA, err := Generate(d, a, 42)
	if err != nil {
		t.Fatal(err)
	}
	bsB, err := Generate(d, b, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(bsA.Frames) != len(bsB.Frames) {
		t.Fatal("frame counts differ across compatible areas")
	}
	for i := range bsA.Frames {
		if bsA.Frames[i].Payload != bsB.Frames[i].Payload {
			t.Fatalf("payload %d differs across compatible areas", i)
		}
	}
}

func TestRelocateRoundTrip(t *testing.T) {
	d := fx()
	src := grid.Rect{X: 4, Y: 0, W: 6, H: 5}
	dst := grid.Rect{X: 24, Y: 3, W: 6, H: 5}
	bs, err := Generate(d, src, 7)
	if err != nil {
		t.Fatal(err)
	}
	moved, err := Relocate(d, bs, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !moved.CheckCRC() {
		t.Fatal("relocated bitstream has stale CRC")
	}
	if moved.Area != dst {
		t.Fatalf("area = %v, want %v", moved.Area, dst)
	}
	// Payloads preserved; addresses shifted by the offset.
	for i := range bs.Frames {
		if moved.Frames[i].Payload != bs.Frames[i].Payload {
			t.Fatal("relocation changed a payload")
		}
		if moved.Frames[i].Addr.Column != bs.Frames[i].Addr.Column+20 ||
			moved.Frames[i].Addr.Row != bs.Frames[i].Addr.Row+3 {
			t.Fatalf("frame %d address not shifted correctly", i)
		}
	}
	// Relocating back reproduces the original exactly.
	back, err := Relocate(d, moved, src)
	if err != nil {
		t.Fatal(err)
	}
	if back.CRC != bs.CRC {
		t.Fatal("round-trip relocation changed the CRC")
	}
}

func TestRelocateRejectsIncompatible(t *testing.T) {
	d := fx()
	src := grid.Rect{X: 4, Y: 0, W: 6, H: 5} // contains the DSP column
	bs, err := Generate(d, src, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Same shape, but BRAM where the DSP was.
	if _, err := Relocate(d, bs, grid.Rect{X: 29, Y: 0, W: 6, H: 5}); err == nil {
		t.Fatal("incompatible target accepted")
	}
	// Different shape.
	if _, err := Relocate(d, bs, grid.Rect{X: 4, Y: 0, W: 6, H: 4}); err == nil {
		t.Fatal("different shape accepted")
	}
	// Crossing the forbidden area.
	if _, err := Relocate(d, bs, grid.Rect{X: 14, Y: 0, W: 6, H: 5}); err == nil {
		t.Fatal("forbidden-crossing target accepted")
	}
}

func TestConfigMemoryLifecycle(t *testing.T) {
	d := fx()
	cm := NewConfigMemory(d)
	src := grid.Rect{X: 4, Y: 0, W: 6, H: 5}
	dst := grid.Rect{X: 24, Y: 0, W: 6, H: 5}
	bs, err := Generate(d, src, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.Load(bs, "taskA"); err != nil {
		t.Fatal(err)
	}
	if cm.LoadedFrames() != bs.FrameCount() {
		t.Fatalf("loaded %d frames, want %d", cm.LoadedFrames(), bs.FrameCount())
	}
	// A second task on the same area must be rejected.
	bs2, err := Generate(d, src, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.Load(bs2, "taskB"); err == nil {
		t.Fatal("overlapping task accepted")
	}
	// Relocate task A to the free-compatible area and load as task B.
	moved, err := Relocate(d, bs, dst)
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.Load(moved, "taskB"); err != nil {
		t.Fatal(err)
	}
	if !cm.TaskEquivalent("taskA", src, "taskB", dst) {
		t.Fatal("relocated task not functionally equivalent")
	}
	// Unload task A; its tiles become free.
	cm.Unload("taskA")
	if err := cm.Load(bs2, "taskC"); err != nil {
		t.Fatalf("freed area not reusable: %v", err)
	}
}

func TestLoadRejectsTamperedCRC(t *testing.T) {
	d := fx()
	bs, err := Generate(d, grid.Rect{X: 0, Y: 0, W: 2, H: 1}, 9)
	if err != nil {
		t.Fatal(err)
	}
	bs.Frames[0].Payload[3] ^= 0xff
	cm := NewConfigMemory(d)
	if err := cm.Load(bs, "x"); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("tampered bitstream accepted (err=%v)", err)
	}
}

func TestLoadRejectsHandCraftedBadAddress(t *testing.T) {
	d := fx()
	bs, err := Generate(d, grid.Rect{X: 0, Y: 0, W: 2, H: 1}, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Naive relocation without the filter: move addresses out of the
	// declared area but keep the area header; reseal so only the address
	// check can catch it.
	bs.Frames[0].Addr.Column = 30
	bs.Seal()
	cm := NewConfigMemory(d)
	if err := cm.Load(bs, "x"); err == nil {
		t.Fatal("frame outside declared area accepted")
	}
	// Minor index beyond the tile type's frame count.
	bs2, _ := Generate(d, grid.Rect{X: 0, Y: 0, W: 2, H: 1}, 9)
	bs2.Frames[0].Addr.Minor = device.V5CLBFrames
	bs2.Seal()
	if err := cm.Load(bs2, "y"); err == nil {
		t.Fatal("minor index overflow accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := fx()
	bs, err := Generate(d, grid.Rect{X: 2, Y: 1, W: 3, H: 2}, 11)
	if err != nil {
		t.Fatal(err)
	}
	data, err := bs.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.DeviceName != bs.DeviceName || dec.Area != bs.Area || dec.CRC != bs.CRC {
		t.Fatal("header changed in round trip")
	}
	if len(dec.Frames) != len(bs.Frames) {
		t.Fatal("frame count changed")
	}
	for i := range dec.Frames {
		if dec.Frames[i] != bs.Frames[i] {
			t.Fatalf("frame %d changed", i)
		}
	}
	if !dec.CheckCRC() {
		t.Fatal("decoded bitstream fails CRC")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeBytes([]byte("nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := DecodeBytes([]byte{'P', 'B', 'I', 'T', 9, 9}); err == nil {
		t.Fatal("bad version accepted")
	}
	d := fx()
	bs, _ := Generate(d, grid.Rect{X: 0, Y: 0, W: 1, H: 1}, 1)
	data, _ := bs.Bytes()
	if _, err := DecodeBytes(data[:len(data)-5]); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

// TestQuickRelocationPreservesEquivalence: for random compatible area
// pairs, the full pipeline (generate, load, relocate, load) always yields
// functionally equivalent tasks; CRC stays valid throughout.
func TestQuickRelocationPreservesEquivalence(t *testing.T) {
	d := fx()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := grid.Rect{
			X: rng.Intn(d.Width()), Y: rng.Intn(d.Height()),
			W: 1 + rng.Intn(6), H: 1 + rng.Intn(4),
		}
		if !d.CanPlace(src) {
			return true
		}
		targets := d.CompatiblePlacements(src)
		var dst grid.Rect
		found := false
		for _, cand := range targets {
			if !cand.Overlaps(src) {
				dst = cand
				found = true
				break
			}
		}
		if !found {
			return true
		}
		bs, err := Generate(d, src, seed)
		if err != nil {
			return false
		}
		moved, err := Relocate(d, bs, dst)
		if err != nil || !moved.CheckCRC() {
			return false
		}
		cm := NewConfigMemory(d)
		if cm.Load(bs, "a") != nil || cm.Load(moved, "b") != nil {
			return false
		}
		return cm.TaskEquivalent("a", src, "b", dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeStable(t *testing.T) {
	d := fx()
	bs, _ := Generate(d, grid.Rect{X: 1, Y: 1, W: 2, H: 2}, 5)
	var a, b bytes.Buffer
	if err := bs.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := bs.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("encoding is not deterministic")
	}
}
