// Package bitstream provides a synthetic partial-bitstream substrate that
// makes the floorplanner's relocation story executable end to end.
//
// The paper assumes an external relocation filter (REPLICA [2,3] or BiRF
// [4,5]): moving a task between two compatible areas is "simply" a matter
// of changing the frame addresses in the partial bitstream and recomputing
// the CRC before feeding it to the configuration interface. This package
// implements exactly that pipeline against the tile-level device model:
//
//   - Generate builds a partial bitstream for an area: one frame per
//     (tile, minor index) with position-independent payloads,
//   - Relocate is the software filter: it verifies area compatibility,
//     rewrites every frame address by the (dx, dy) offset, and recomputes
//     the CRC — payloads are untouched,
//   - ConfigMemory simulates the configuration interface: it rejects
//     frames whose address does not match the expected tile type, so a
//     relocation to a non-compatible area fails exactly the way real
//     hardware would corrupt it.
package bitstream

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/device"
	"repro/internal/grid"
)

// FrameBytes is the payload size of one configuration frame. (On Virtex-5
// a frame is 41 32-bit words; the exact figure is irrelevant to the
// relocation logic, so the model uses a round number.)
const FrameBytes = 64

// Magic identifies encoded bitstreams.
var Magic = [4]byte{'P', 'B', 'I', 'T'}

// FrameAddress locates one configuration frame on the device: the tile it
// configures plus the minor frame index within that tile (0 <= Minor <
// frames-per-tile of the tile's type).
type FrameAddress struct {
	Column int
	Row    int
	Minor  int
}

func (a FrameAddress) String() string {
	return fmt.Sprintf("FAR(c=%d,r=%d,m=%d)", a.Column, a.Row, a.Minor)
}

// Frame is one addressed configuration frame.
type Frame struct {
	Addr    FrameAddress
	Payload [FrameBytes]byte
}

// Bitstream is a partial bitstream for a rectangular area of a device.
type Bitstream struct {
	// DeviceName records the target device.
	DeviceName string
	// Area is the rectangle the bitstream configures.
	Area grid.Rect
	// Frames lists the configuration frames in address order
	// (column-major, then row, then minor).
	Frames []Frame
	// CRC is the CRC-32 (IEEE) over the header and all frames, as
	// maintained by Seal.
	CRC uint32
}

// payload derives the position-independent content of a frame: it depends
// on the tile's offset *within the area*, its type, the minor index and
// the design seed — but never on the absolute device position. This is
// the property real relocatable designs must have (identical
// configuration data across compatible areas, Definition .1).
func payload(seed int64, relC, relR int, t device.TypeID, minor int) [FrameBytes]byte {
	var out [FrameBytes]byte
	var ctr [16]byte
	binary.LittleEndian.PutUint64(ctr[0:], uint64(seed))
	binary.LittleEndian.PutUint16(ctr[8:], uint16(relC))
	binary.LittleEndian.PutUint16(ctr[10:], uint16(relR))
	binary.LittleEndian.PutUint16(ctr[12:], uint16(t))
	binary.LittleEndian.PutUint16(ctr[14:], uint16(minor))
	// Simple xorshift-style expansion of the counter block.
	state := crc32.ChecksumIEEE(ctr[:])
	for i := 0; i < FrameBytes; i += 4 {
		state ^= state << 13
		state ^= state >> 17
		state ^= state << 5
		binary.LittleEndian.PutUint32(out[i:], state)
	}
	return out
}

// Generate builds the partial bitstream of a design occupying area on
// device d. seed distinguishes different designs for the same area. The
// area must be a legal placement (inside the device, off forbidden
// areas).
func Generate(d *device.Device, area grid.Rect, seed int64) (*Bitstream, error) {
	if !d.CanPlace(area) {
		return nil, fmt.Errorf("bitstream: area %v is not a legal placement on %s", area, d.Name())
	}
	bs := &Bitstream{DeviceName: d.Name(), Area: area}
	area.Tiles(func(c, r int) {
		t := d.TypeAt(c, r)
		frames := d.Type(t).Frames
		for minor := 0; minor < frames; minor++ {
			bs.Frames = append(bs.Frames, Frame{
				Addr:    FrameAddress{Column: c, Row: r, Minor: minor},
				Payload: payload(seed, c-area.X, r-area.Y, t, minor),
			})
		}
	})
	bs.Seal()
	return bs, nil
}

// Seal recomputes the bitstream CRC (what a relocation filter must do
// after rewriting addresses).
func (bs *Bitstream) Seal() {
	bs.CRC = bs.checksum()
}

// CheckCRC reports whether the stored CRC matches the content.
func (bs *Bitstream) CheckCRC() bool {
	return bs.CRC == bs.checksum()
}

func (bs *Bitstream) checksum() uint32 {
	h := crc32.NewIEEE()
	h.Write([]byte(bs.DeviceName))
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	writeInt(bs.Area.X)
	writeInt(bs.Area.Y)
	writeInt(bs.Area.W)
	writeInt(bs.Area.H)
	for _, f := range bs.Frames {
		writeInt(f.Addr.Column)
		writeInt(f.Addr.Row)
		writeInt(f.Addr.Minor)
		h.Write(f.Payload[:])
	}
	return h.Sum32()
}

// FrameCount returns the number of frames, which for a generated
// bitstream equals device.FramesInRect of its area.
func (bs *Bitstream) FrameCount() int { return len(bs.Frames) }

// Relocate applies the software relocation filter: it returns a copy of
// the bitstream retargeted to the compatible area target on device d.
// Frame payloads are preserved bit-exactly; only addresses move by the
// area offset, and the CRC is recomputed. It fails if the areas are not
// compatible (Section II) or the target is not a legal placement.
func Relocate(d *device.Device, bs *Bitstream, target grid.Rect) (*Bitstream, error) {
	if bs.DeviceName != d.Name() {
		return nil, fmt.Errorf("bitstream: built for %q, relocating on %q", bs.DeviceName, d.Name())
	}
	if !d.CanPlace(target) {
		return nil, fmt.Errorf("bitstream: target %v is not a legal placement", target)
	}
	if !d.Compatible(bs.Area, target) {
		return nil, fmt.Errorf("bitstream: area %v is not compatible with target %v", bs.Area, target)
	}
	dx := target.X - bs.Area.X
	dy := target.Y - bs.Area.Y
	out := &Bitstream{
		DeviceName: bs.DeviceName,
		Area:       target,
		Frames:     make([]Frame, len(bs.Frames)),
	}
	for i, f := range bs.Frames {
		f.Addr.Column += dx
		f.Addr.Row += dy
		out.Frames[i] = f
	}
	out.Seal()
	return out, nil
}

// ConfigMemory simulates the device's configuration memory plane: frames
// are written through Load, which performs the checks the configuration
// interface (and a bitstream filter) would perform.
type ConfigMemory struct {
	dev    *device.Device
	frames map[FrameAddress][FrameBytes]byte
	owner  map[FrameAddress]string
}

// NewConfigMemory returns an empty configuration memory for d.
func NewConfigMemory(d *device.Device) *ConfigMemory {
	return &ConfigMemory{
		dev:    d,
		frames: make(map[FrameAddress][FrameBytes]byte),
		owner:  make(map[FrameAddress]string),
	}
}

// Load writes a partial bitstream into configuration memory under the
// given task name. It rejects bitstreams with a stale CRC, frames outside
// the device or its stated area, frames addressed at forbidden tiles, and
// minor indices beyond the tile type's frame count. Tiles already owned
// by a different task are rejected too (the "must not overlap other
// tasks" rule of Definition .2).
func (cm *ConfigMemory) Load(bs *Bitstream, task string) error {
	if bs.DeviceName != cm.dev.Name() {
		return fmt.Errorf("bitstream: device mismatch: %q vs %q", bs.DeviceName, cm.dev.Name())
	}
	if !bs.CheckCRC() {
		return fmt.Errorf("bitstream: CRC mismatch (filter forgot to reseal?)")
	}
	bounds := cm.dev.Bounds()
	for _, f := range bs.Frames {
		if !bounds.Contains(f.Addr.Column, f.Addr.Row) {
			return fmt.Errorf("bitstream: frame %v outside the device", f.Addr)
		}
		if !bs.Area.Contains(f.Addr.Column, f.Addr.Row) {
			return fmt.Errorf("bitstream: frame %v outside the declared area %v", f.Addr, bs.Area)
		}
		if cm.dev.InForbidden(f.Addr.Column, f.Addr.Row) {
			return fmt.Errorf("bitstream: frame %v targets a forbidden tile", f.Addr)
		}
		t := cm.dev.TileAt(f.Addr.Column, f.Addr.Row)
		if f.Addr.Minor < 0 || f.Addr.Minor >= t.Frames {
			return fmt.Errorf("bitstream: frame %v has minor index beyond %s's %d frames", f.Addr, t.Name, t.Frames)
		}
		if owner, taken := cm.owner[f.Addr]; taken && owner != task {
			return fmt.Errorf("bitstream: frame %v already configured by task %q", f.Addr, owner)
		}
	}
	for _, f := range bs.Frames {
		cm.frames[f.Addr] = f.Payload
		cm.owner[f.Addr] = task
	}
	return nil
}

// Unload clears every frame owned by the task (the area becomes free for
// relocation targets again).
func (cm *ConfigMemory) Unload(task string) {
	for addr, owner := range cm.owner {
		if owner == task {
			delete(cm.frames, addr)
			delete(cm.owner, addr)
		}
	}
}

// Frame reads back one configured frame.
func (cm *ConfigMemory) Frame(addr FrameAddress) ([FrameBytes]byte, bool) {
	p, ok := cm.frames[addr]
	return p, ok
}

// CorruptFrame flips the given bit mask into the first payload word of a
// loaded frame, reporting whether the frame existed. It models an upset
// during shift-in — the write "succeeded" but the stored content is
// wrong — and exists for fault injection; only readback can detect it.
func (cm *ConfigMemory) CorruptFrame(addr FrameAddress, mask byte) bool {
	p, ok := cm.frames[addr]
	if !ok {
		return false
	}
	p[0] ^= mask
	cm.frames[addr] = p
	return true
}

// Digest hashes every configured frame (address and payload, in address
// order) into one CRC-32. Two configuration memories holding the same
// design content at the same locations digest identically — the
// frame-for-frame equality check crash-recovery verification relies on.
func (cm *ConfigMemory) Digest() uint32 {
	addrs := make([]FrameAddress, 0, len(cm.frames))
	for addr := range cm.frames {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool {
		a, b := addrs[i], addrs[j]
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		return a.Minor < b.Minor
	})
	h := crc32.NewIEEE()
	var buf [8]byte
	for _, addr := range addrs {
		binary.LittleEndian.PutUint16(buf[0:], uint16(addr.Column))
		binary.LittleEndian.PutUint16(buf[2:], uint16(addr.Row))
		binary.LittleEndian.PutUint16(buf[4:], uint16(addr.Minor))
		h.Write(buf[:6])
		p := cm.frames[addr]
		h.Write(p[:])
	}
	return h.Sum32()
}

// LoadedFrames returns the number of configured frames.
func (cm *ConfigMemory) LoadedFrames() int { return len(cm.frames) }

// TaskEquivalent reports whether two tasks' configurations are
// functionally identical: same relative frame layout and payloads within
// their areas. A correct relocation always satisfies this.
func (cm *ConfigMemory) TaskEquivalent(taskA string, areaA grid.Rect, taskB string, areaB grid.Rect) bool {
	if !areaA.SameShape(areaB) {
		return false
	}
	framesA := map[FrameAddress][FrameBytes]byte{}
	for addr, owner := range cm.owner {
		if owner == taskA {
			rel := FrameAddress{Column: addr.Column - areaA.X, Row: addr.Row - areaA.Y, Minor: addr.Minor}
			framesA[rel] = cm.frames[addr]
		}
	}
	count := 0
	for addr, owner := range cm.owner {
		if owner != taskB {
			continue
		}
		count++
		rel := FrameAddress{Column: addr.Column - areaB.X, Row: addr.Row - areaB.Y, Minor: addr.Minor}
		pa, ok := framesA[rel]
		if !ok || pa != cm.frames[addr] {
			return false
		}
	}
	return count == len(framesA) && count > 0
}
