package heuristic

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sdr"
)

func TestCoolingRateGuards(t *testing.T) {
	cases := []struct {
		name         string
		tStart, tEnd float64
		steps        int
		wantOne      bool
	}{
		{"single step", 2000, 0.1, 1, true},
		{"zero steps", 2000, 0.1, 0, true},
		{"negative steps", 2000, 0.1, -3, true},
		{"inverted schedule", 0.1, 2000, 120, true},
		{"flat schedule", 5, 5, 120, true},
		{"normal schedule", 2000, 0.1, 120, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := coolingRate(tc.tStart, tc.tEnd, tc.steps)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("coolingRate(%v, %v, %d) = %v", tc.tStart, tc.tEnd, tc.steps, got)
			}
			if tc.wantOne && got != 1 {
				t.Fatalf("coolingRate(%v, %v, %d) = %v, want the no-cooling guard value 1", tc.tStart, tc.tEnd, tc.steps, got)
			}
			if !tc.wantOne && !(got > 0 && got < 1) {
				t.Fatalf("coolingRate(%v, %v, %d) = %v, want a rate in (0, 1)", tc.tStart, tc.tEnd, tc.steps, got)
			}
		})
	}
}

// TestAnnealingSingleStep regression-tests the Steps==1 configuration,
// which used to compute a 1/(steps-1) division by zero in the cooling
// schedule. The solve must terminate and produce either a valid solution
// or a sentinel error — never hang on a degenerate temperature.
func TestAnnealingSingleStep(t *testing.T) {
	p := sdr.Problem()
	for _, a := range []*Annealing{
		{Steps: 1, Iterations: 25},
		{Steps: 1, Iterations: 25, Start: 0.1, End: 2000}, // inverted, used to cool at +Inf
	} {
		sol, err := a.Solve(context.Background(), p, core.SolveOptions{Seed: 1, TimeLimit: 10 * time.Second})
		switch {
		case err == nil:
			if verr := sol.Validate(p); verr != nil {
				t.Fatalf("Steps=1 returned invalid solution: %v", verr)
			}
		case errors.Is(err, core.ErrNoSolution), errors.Is(err, core.ErrInfeasible):
		default:
			t.Fatalf("Steps=1 solve failed unexpectedly: %v", err)
		}
	}
}
