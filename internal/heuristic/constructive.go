// Package heuristic provides the non-MILP floorplanning algorithms of the
// paper's experimental context:
//
//   - Constructive: a deterministic greedy placer producing the "first
//     feasible solution" that seeds the HO algorithm (and warm-starts the
//     MILP engines),
//   - Annealing: a simulated-annealing floorplanner in the spirit of
//     Bolchini et al. [9] (wire-length-driven),
//   - Tessellation: a greedy columnar packer in the spirit of Vipin &
//     Fahmy's reconfiguration-centric floorplanner [8] (bitstream-size
//     driven, left-to-right kernel packing).
package heuristic

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/obs"
)

// Constructive is a deterministic greedy floorplanner: regions in
// decreasing resource-footprint order, each at its least-waste free
// candidate, followed by greedy free-compatible-area packing with
// bounded backtracking over the region candidates.
type Constructive struct {
	// MaxBacktrack bounds how many alternative candidates per region the
	// placer may try when free-compatible areas cannot be packed
	// (0 = 32).
	MaxBacktrack int
}

// Name implements core.Engine.
func (c *Constructive) Name() string { return "constructive" }

// Solve implements core.Engine.
func (c *Constructive) Solve(ctx context.Context, p *core.Problem, opts core.SolveOptions) (sol *core.Solution, err error) {
	opts = opts.Normalized()
	start := time.Now()
	deadline := deadlineFor(start, opts)
	sp := opts.Probe.Span(c.Name())
	defer func() { sp.End(core.ObsOutcome(sol, err), obs.SlackUntil(deadline)) }()
	if err = p.Validate(); err != nil {
		return nil, err
	}
	maxBT := c.MaxBacktrack
	if maxBT <= 0 {
		maxBT = 32
	}

	cands := make([][]core.Candidate, len(p.Regions))
	for i, r := range p.Regions {
		cands[i] = core.CachedCandidatesFor(p.Device, r.Req, sp)
		if len(cands[i]) == 0 {
			return nil, fmt.Errorf("%w: region %q cannot be placed anywhere", core.ErrInfeasible, r.Name)
		}
	}

	order := placementOrder(p, cands)
	mask := grid.NewMask(p.Device.Width(), p.Device.Height())
	placed := make([]grid.Rect, len(p.Regions))

	var nodes, backtracks int64
	defer func() {
		sp.Add(obs.Nodes, nodes)
		sp.Add(obs.Backtracks, backtracks)
	}()

	aborted := false
	var place func(k int) bool
	place = func(k int) bool {
		if expired(ctx, deadline) {
			aborted = true
			return false
		}
		if k == len(order) {
			return true
		}
		ri := order[k]
		tried := 0
		for _, cand := range cands[ri] {
			if tried >= maxBT {
				break
			}
			if mask.OverlapsRect(cand.Rect) {
				continue
			}
			tried++
			nodes++
			mask.SetRect(cand.Rect)
			placed[ri] = cand.Rect
			if place(k + 1) {
				return true
			}
			backtracks++
			mask.ClearRect(cand.Rect)
			placed[ri] = grid.Rect{}
			if aborted {
				return false
			}
		}
		return false
	}
	if !place(0) {
		if aborted {
			return nil, core.ErrNoSolution
		}
		return nil, core.ErrInfeasible
	}

	fc, ok := GreedyFC(p, placed, mask)
	if !ok {
		// Greedy FC packing failed for a constraint-mode area; retry the
		// whole construction with FC packing interleaved as a filter.
		sol, err := c.solveWithFCFilter(ctx, deadline, p, cands, order, maxBT, sp)
		if err != nil {
			return nil, err
		}
		sol.Engine = c.Name()
		sol.Elapsed = time.Since(start)
		sp.Incumbent(sol.Objective(p))
		return sol, nil
	}
	sol = &core.Solution{
		Regions: placed,
		FC:      fc,
		Engine:  c.Name(),
		Elapsed: time.Since(start),
	}
	sp.Incumbent(sol.Objective(p))
	return sol, nil
}

// solveWithFCFilter redoes the construction, rejecting any complete
// placement whose free-compatible areas cannot be greedily packed. The
// deadline bounds the backtracking: on expiry the search stops and the
// engine reports an exhausted budget rather than (unproven) infeasibility.
func (c *Constructive) solveWithFCFilter(ctx context.Context, deadline time.Time, p *core.Problem, cands [][]core.Candidate, order []int, maxBT int, sp obs.Span) (*core.Solution, error) {
	mask := grid.NewMask(p.Device.Width(), p.Device.Height())
	placed := make([]grid.Rect, len(p.Regions))
	var result *core.Solution

	var nodes, backtracks int64
	defer func() {
		sp.Add(obs.Nodes, nodes)
		sp.Add(obs.Backtracks, backtracks)
	}()

	aborted := false
	var place func(k int) bool
	place = func(k int) bool {
		if expired(ctx, deadline) {
			aborted = true
			return false
		}
		if k == len(order) {
			fc, ok := GreedyFC(p, placed, mask)
			if !ok {
				return false
			}
			result = &core.Solution{
				Regions: append([]grid.Rect(nil), placed...),
				FC:      fc,
			}
			return true
		}
		ri := order[k]
		tried := 0
		for _, cand := range cands[ri] {
			if tried >= maxBT {
				break
			}
			if mask.OverlapsRect(cand.Rect) {
				continue
			}
			tried++
			nodes++
			mask.SetRect(cand.Rect)
			placed[ri] = cand.Rect
			if place(k + 1) {
				return true
			}
			backtracks++
			mask.ClearRect(cand.Rect)
			placed[ri] = grid.Rect{}
			if aborted {
				return false
			}
		}
		return false
	}
	if !place(0) {
		if aborted {
			return nil, core.ErrNoSolution
		}
		return nil, core.ErrInfeasible
	}
	return result, nil
}

// placementOrder sorts region indices by decreasing placement difficulty:
// fewer candidates first, larger frame footprint first among ties.
func placementOrder(p *core.Problem, cands [][]core.Candidate) []int {
	order := make([]int, len(p.Regions))
	for i := range order {
		order[i] = i
	}
	frames := make([]int, len(p.Regions))
	for i, r := range p.Regions {
		f, err := p.Device.FramesForRequirements(r.Req)
		if err == nil {
			frames[i] = f
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := order[a], order[b]
		if len(cands[ra]) != len(cands[rb]) {
			return len(cands[ra]) < len(cands[rb])
		}
		if frames[ra] != frames[rb] {
			return frames[ra] > frames[rb]
		}
		return ra < rb
	})
	return order
}

// GreedyFC packs the problem's free-compatible areas against fixed region
// placements, first-fit in compatible-placement order. mask must contain
// exactly the region rectangles; it is restored before returning. The
// boolean result is false when some constraint-mode area could not be
// placed.
func GreedyFC(p *core.Problem, regions []grid.Rect, mask *grid.Mask) ([]core.FCPlacement, bool) {
	fc := make([]core.FCPlacement, len(p.FCAreas))
	var placedRects []grid.Rect
	ok := true
	// Constraint-mode requests first so optional areas never squeeze
	// out mandatory ones.
	idxs := make([]int, len(p.FCAreas))
	for i := range idxs {
		idxs[i] = i
	}
	sort.SliceStable(idxs, func(a, b int) bool {
		ma := p.FCAreas[idxs[a]].Mode
		mb := p.FCAreas[idxs[b]].Mode
		if ma != mb {
			return ma == core.RelocConstraint
		}
		return idxs[a] < idxs[b]
	})
	for _, i := range idxs {
		req := p.FCAreas[i]
		fc[i] = core.FCPlacement{Request: i}
		src := regions[req.Region]
		found := false
		for _, slot := range p.Device.CompatiblePlacements(src) {
			if slot == src || mask.OverlapsRect(slot) {
				continue
			}
			if !compatibleWithAll(p, regions, req, slot) {
				continue
			}
			mask.SetRect(slot)
			placedRects = append(placedRects, slot)
			fc[i].Placed = true
			fc[i].Rect = slot
			found = true
			break
		}
		if !found && req.Mode == core.RelocConstraint {
			ok = false
		}
	}
	for _, r := range placedRects {
		mask.ClearRect(r)
	}
	if !ok {
		return nil, false
	}
	return fc, true
}

// compatibleWithAll checks a slot against every region the request lists
// (the s_{c,n} generalization: one area serving several regions).
func compatibleWithAll(p *core.Problem, regions []grid.Rect, req core.FCRequest, slot grid.Rect) bool {
	for _, ri := range req.CompatRegions() {
		if !p.Device.Compatible(regions[ri], slot) {
			return false
		}
		if slot.Overlaps(regions[ri]) {
			return false
		}
	}
	return true
}

func ctxDone(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// deadlineFor converts opts.TimeLimit into an absolute deadline (zero
// when unlimited).
func deadlineFor(start time.Time, opts core.SolveOptions) time.Time {
	if opts.TimeLimit <= 0 {
		return time.Time{}
	}
	return start.Add(opts.TimeLimit)
}

// expired reports whether the solve must stop: context canceled or the
// engine's own deadline passed.
func expired(ctx context.Context, deadline time.Time) bool {
	if ctxDone(ctx) {
		return true
	}
	return !deadline.IsZero() && time.Now().After(deadline)
}
