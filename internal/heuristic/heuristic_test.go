package heuristic

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/exact"
	"repro/internal/sdr"
)

func engines() []core.Engine {
	return []core.Engine{
		&Constructive{},
		&Annealing{},
		&Tessellation{},
	}
}

func TestAllEnginesSolveSDR(t *testing.T) {
	p := sdr.Problem()
	for _, eng := range engines() {
		sol, err := eng.Solve(context.Background(), p, core.SolveOptions{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if err := sol.Validate(p); err != nil {
			t.Fatalf("%s: invalid solution: %v", eng.Name(), err)
		}
		if sol.Engine != eng.Name() {
			t.Fatalf("%s: solution engine label %q", eng.Name(), sol.Engine)
		}
	}
}

// TestHeuristicsNeverBeatExact: the exact engine's lexicographic optimum
// is a lower bound on every heuristic's result.
func TestHeuristicsNeverBeatExact(t *testing.T) {
	p := sdr.Problem()
	opt, err := (&exact.Engine{}).Solve(context.Background(), p, core.SolveOptions{TimeLimit: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	optWaste := opt.Metrics(p).WastedFrames
	for _, eng := range engines() {
		sol, err := eng.Solve(context.Background(), p, core.SolveOptions{Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if w := sol.Metrics(p).WastedFrames; w < optWaste {
			t.Fatalf("%s: waste %d beats proven optimum %d", eng.Name(), w, optWaste)
		}
	}
}

func TestConstructiveDeterministic(t *testing.T) {
	p := sdr.SDR2()
	a, err := (&Constructive{}).Solve(context.Background(), p, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Constructive{}).Solve(context.Background(), p, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Regions {
		if a.Regions[i] != b.Regions[i] {
			t.Fatalf("region %d differs across runs: %v vs %v", i, a.Regions[i], b.Regions[i])
		}
	}
}

func TestConstructiveSolvesFCConstraints(t *testing.T) {
	p := sdr.SDR2()
	sol, err := (&Constructive{}).Solve(context.Background(), p, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(p); err != nil {
		t.Fatal(err)
	}
	if got := sol.Metrics(p).PlacedFC; got != 6 {
		t.Fatalf("placed %d FC areas, want 6", got)
	}
}

func TestConstructiveInfeasible(t *testing.T) {
	p := &core.Problem{
		Device:  device.VirtexFX70T(),
		Regions: []core.Region{{Name: "huge", Req: device.Requirements{device.ClassDSP: 17}}},
	}
	if _, err := (&Constructive{}).Solve(context.Background(), p, core.SolveOptions{}); !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("err = %v, want infeasible", err)
	}
}

func TestAnnealingSeedsDiffer(t *testing.T) {
	p := sdr.Problem()
	anneal := &Annealing{Iterations: 50, Steps: 30}
	solutions := map[string]bool{}
	for seed := int64(0); seed < 4; seed++ {
		sol, err := anneal.Solve(context.Background(), p, core.SolveOptions{Seed: seed})
		if err != nil {
			continue
		}
		if err := sol.Validate(p); err != nil {
			t.Fatal(err)
		}
		key := ""
		for _, r := range sol.Regions {
			key += r.String()
		}
		solutions[key] = true
	}
	if len(solutions) == 0 {
		t.Fatal("annealing failed for every seed")
	}
}

func TestAnnealingRespectsTimeLimit(t *testing.T) {
	p := sdr.Problem()
	anneal := &Annealing{Iterations: 100000, Steps: 100000}
	start := time.Now()
	_, _ = anneal.Solve(context.Background(), p, core.SolveOptions{Seed: 1, TimeLimit: 200 * time.Millisecond})
	if time.Since(start) > 5*time.Second {
		t.Fatal("annealing ignored the time limit")
	}
}

func TestTessellationQuantum(t *testing.T) {
	p := sdr.Problem()
	free, err := (&Tessellation{}).Solve(context.Background(), p, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	quant, err := (&Tessellation{BandQuantum: 2}).Solve(context.Background(), p, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := quant.Validate(p); err != nil {
		t.Fatal(err)
	}
	for _, r := range quant.Regions {
		if r.Y%2 != 0 || r.H%2 != 0 {
			t.Fatalf("quantized placement %v not aligned to 2-row bands", r)
		}
	}
	fw := free.Metrics(p).WastedFrames
	qw := quant.Metrics(p).WastedFrames
	if qw < fw {
		t.Fatalf("quantized tessellation waste %d below free waste %d", qw, fw)
	}
}

func TestGreedyFCMetricMiss(t *testing.T) {
	// Matched-filter FC areas are impossible on the FX70T; greedy
	// packing must report the metric-mode request as missed, not fail.
	p := sdr.Problem()
	p.FCAreas = []core.FCRequest{{Region: p.RegionIndex(sdr.MatchedFilter), Mode: core.RelocMetric}}
	sol, err := (&Constructive{}).Solve(context.Background(), p, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(p); err != nil {
		t.Fatal(err)
	}
	if sol.Metrics(p).PlacedFC != 0 {
		t.Fatal("impossible FC area reported as placed")
	}
}

func TestPlacementOrderMostConstrainedFirst(t *testing.T) {
	p := sdr.Problem()
	cands := make([][]core.Candidate, len(p.Regions))
	for i, r := range p.Regions {
		cands[i] = core.EnumerateCandidates(p.Device, r.Req)
	}
	order := placementOrder(p, cands)
	if len(order) != len(p.Regions) {
		t.Fatalf("order has %d entries", len(order))
	}
	for i := 1; i < len(order); i++ {
		if len(cands[order[i-1]]) > len(cands[order[i]]) {
			t.Fatalf("order not sorted by candidate count: %v", order)
		}
	}
}

func TestAnnealingRestartsSolveFCConstraints(t *testing.T) {
	p := sdr.SDR2()
	sol, err := (&Annealing{}).Solve(context.Background(), p, core.SolveOptions{Seed: 1})
	if err != nil {
		t.Skipf("annealing could not satisfy SDR2 even with restarts: %v", err)
	}
	if err := sol.Validate(p); err != nil {
		t.Fatal(err)
	}
	if sol.Metrics(p).PlacedFC != 6 {
		t.Fatal("restart path returned incomplete FC packing")
	}
}
