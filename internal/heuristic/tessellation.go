package heuristic

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/grid"
	"repro/internal/obs"
)

// Tessellation is a greedy columnar packer in the spirit of Vipin &
// Fahmy's architecture-aware reconfiguration-centric floorplanner [8]:
// regions are considered in decreasing bitstream-size order and each is
// tessellated onto the leftmost columnar kernel that accommodates it,
// preferring tall column-aligned shapes (which minimize the number of
// distinct configuration columns touched) over globally optimal waste.
//
// It reproduces the baseline's qualitative behavior: fast, feasible
// placements whose wasted-frame cost is noticeably above the MILP
// optimum (Table II: 466 vs 306 frames on the SDR design).
type Tessellation struct {
	// BandQuantum, when > 1, snaps region y positions and heights to
	// multiples of this many tile rows, modeling the kernel alignment
	// of the baseline (its reconfigurable slots span whole clock-region
	// groups). 0 or 1 places freely at tile-row granularity.
	BandQuantum int
}

// Name implements core.Engine.
func (ts *Tessellation) Name() string { return "tessellation" }

// Solve implements core.Engine.
func (ts *Tessellation) Solve(ctx context.Context, p *core.Problem, opts core.SolveOptions) (sol *core.Solution, err error) {
	opts = opts.Normalized()
	start := time.Now()
	deadline := deadlineFor(start, opts)
	sp := opts.Probe.Span(ts.Name())
	defer func() { sp.End(core.ObsOutcome(sol, err), obs.SlackUntil(deadline)) }()
	if err = p.Validate(); err != nil {
		return nil, err
	}
	d := p.Device

	// Decreasing frame-footprint order (largest bitstream first).
	order := make([]int, len(p.Regions))
	for i := range order {
		order[i] = i
	}
	frames := make([]int, len(p.Regions))
	for i, r := range p.Regions {
		f, err := d.FramesForRequirements(r.Req)
		if err != nil {
			return nil, fmt.Errorf("heuristic: region %q: %w", r.Name, err)
		}
		frames[i] = f
	}
	sort.SliceStable(order, func(a, b int) bool {
		if frames[order[a]] != frames[order[b]] {
			return frames[order[a]] > frames[order[b]]
		}
		return order[a] < order[b]
	})

	mask := grid.NewMask(d.Width(), d.Height())
	placed := make([]grid.Rect, len(p.Regions))
	for _, ri := range order {
		if expired(ctx, deadline) {
			return nil, core.ErrNoSolution
		}
		r, ok := ts.placeOne(ctx, deadline, d, p.Regions[ri].Req, mask)
		sp.Add(obs.Nodes, 1)
		if !ok {
			if expired(ctx, deadline) {
				// The sweep was cut short by the budget; infeasibility
				// was not established.
				return nil, core.ErrNoSolution
			}
			return nil, fmt.Errorf("%w: tessellation could not place region %q", core.ErrInfeasible, p.Regions[ri].Name)
		}
		mask.SetRect(r)
		placed[ri] = r
	}
	fc, ok := GreedyFC(p, placed, mask)
	if !ok {
		return nil, core.ErrNoSolution
	}
	sol = &core.Solution{
		Regions: placed,
		FC:      fc,
		Engine:  ts.Name(),
		Elapsed: time.Since(start),
	}
	sp.Incumbent(sol.Objective(p))
	return sol, nil
}

// placeOne tessellates one region onto the free fabric: among all
// width-minimal rectangles that fit, it takes the one with the smallest
// waste (i.e. the smallest bitstream), breaking ties toward the top-left
// kernel. Unlike the MILP, the choice is greedy per region — earlier
// regions are never reconsidered, so the global waste stays above the
// optimum whenever regions compete for scarce BRAM/DSP columns.
//
// The sweep checks the deadline once per column so an expired budget
// returns the best kernel found so far (or none, which the caller maps
// to an exhausted-budget error rather than infeasibility).
func (ts *Tessellation) placeOne(ctx context.Context, deadline time.Time, d *device.Device, req device.Requirements, mask *grid.Mask) (grid.Rect, bool) {
	W, H := d.Width(), d.Height()
	q := ts.BandQuantum
	if q <= 0 {
		q = 1
	}
	best := grid.Rect{}
	bestWaste := -1
	for x := 0; x < W; x++ {
		if expired(ctx, deadline) {
			break
		}
		for h := H - H%q; h >= q; h -= q {
			for y := 0; y+h <= H; y += q {
				// Widen until satisfied.
				for w := 1; x+w <= W; w++ {
					r := grid.Rect{X: x, Y: y, W: w, H: h}
					if !d.CanPlace(r) || mask.OverlapsRect(r) {
						break // wider rects only get worse
					}
					if !d.Satisfies(r, req) {
						continue
					}
					if waste := d.WastedFrames(r, req); bestWaste < 0 || waste < bestWaste {
						best, bestWaste = r, waste
					}
					break // wider rects at this (y, h) only add waste
				}
			}
		}
		if bestWaste == 0 {
			break // cannot improve; prefer the leftmost zero-waste kernel
		}
	}
	return best, bestWaste >= 0
}
