package heuristic

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/obs"
)

// Annealing is a simulated-annealing floorplanner in the spirit of
// Bolchini, Miele and Sandionigi [9]: it perturbs region placements over
// the candidate sets and accepts cost increases with the Metropolis
// criterion, driving down an energy that blends overlap (as a penalty),
// wasted frames and wire length. Free-compatible areas are packed
// greedily on the best placement found; in metric mode unplaceable areas
// contribute their weight to the reported miss cost, and in constraint
// mode the run fails if packing is impossible.
type Annealing struct {
	// Iterations per temperature step (0 = 200).
	Iterations int
	// Steps is the number of temperature steps (0 = 120).
	Steps int
	// Start and End temperatures (0 = 2000 / 0.1).
	Start, End float64
	// Restarts bounds the fresh-seed retries used to satisfy
	// free-compatible-area requests (0 = 8; 1 effectively disables).
	Restarts int
}

// Name implements core.Engine.
func (a *Annealing) Name() string { return "annealing" }

// energy blends the solution cost for annealing: overlaps dominate, then
// relocation misses (checked only at the end), then waste, then wire
// length.
func annealEnergy(overlapTiles, waste int, wl float64) float64 {
	return float64(overlapTiles)*1e9 + float64(waste)*1e3 + wl
}

// Solve implements core.Engine. When the problem carries free-compatible
// area requests, the annealer restarts with fresh seeds (up to Restarts
// times) until the greedy packer can satisfy them — annealing itself only
// shapes the region placement. opts.TimeLimit bounds the WHOLE solve:
// restarts share one deadline instead of each getting a fresh budget.
func (a *Annealing) Solve(ctx context.Context, p *core.Problem, opts core.SolveOptions) (sol *core.Solution, err error) {
	opts = opts.Normalized()
	deadline := deadlineFor(time.Now(), opts)
	sp := opts.Probe.Span(a.Name())
	// The raw energy descent has its own scale (overlap-dominated blend),
	// so it goes to a sub-span; tracking the global best across restarts
	// keeps that one trajectory monotone too.
	esp := opts.Probe.Span(a.Name() + "/energy")
	bestEnergy := math.Inf(1)
	defer func() {
		out := core.ObsOutcome(sol, err)
		slack := obs.SlackUntil(deadline)
		esp.End(out, slack)
		sp.End(out, slack)
	}()
	restarts := a.Restarts
	if restarts <= 0 {
		restarts = 8
	}
	if len(p.FCAreas) == 0 {
		restarts = 1
	}
	var lastErr error
	for attempt := 0; attempt < restarts; attempt++ {
		if expired(ctx, deadline) {
			break
		}
		sp.Add(obs.Restarts, 1)
		seedOpts := opts
		seedOpts.Seed = opts.Seed + int64(attempt)*7919
		sol, err := a.solveOnce(ctx, deadline, p, seedOpts, sp, esp, &bestEnergy)
		if err == nil {
			sp.Incumbent(sol.Objective(p))
			return sol, nil
		}
		lastErr = err
		if !errors.Is(err, core.ErrNoSolution) {
			return nil, err
		}
	}
	if lastErr == nil {
		lastErr = core.ErrNoSolution
	}
	return nil, lastErr
}

// coolingRate returns the per-step multiplicative factor that takes the
// temperature from tStart to tEnd in steps-1 multiplications. Degenerate
// schedules — a single step, or an inverted Start <= End pair that would
// yield a heating (>1) or NaN factor — fall back to a constant
// temperature instead of dividing by zero.
func coolingRate(tStart, tEnd float64, steps int) float64 {
	if steps < 2 || tEnd >= tStart {
		return 1
	}
	cool := math.Pow(tEnd/tStart, 1/float64(steps-1))
	if math.IsNaN(cool) || cool <= 0 || cool > 1 {
		return 1
	}
	return cool
}

func (a *Annealing) solveOnce(ctx context.Context, deadline time.Time, p *core.Problem, opts core.SolveOptions, sp, esp obs.Span, bestEnergy *float64) (*core.Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	iters := a.Iterations
	if iters <= 0 {
		iters = 200
	}
	steps := a.Steps
	if steps <= 0 {
		steps = 120
	}
	tStart := a.Start
	if tStart <= 0 {
		tStart = 2000
	}
	tEnd := a.End
	if tEnd <= 0 {
		tEnd = 0.1
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	cands := make([][]core.Candidate, len(p.Regions))
	for i, r := range p.Regions {
		cands[i] = core.CachedCandidatesFor(p.Device, r.Req, sp)
		if len(cands[i]) == 0 {
			return nil, fmt.Errorf("%w: region %q cannot be placed anywhere", core.ErrInfeasible, r.Name)
		}
	}

	// Initial state: random candidate per region.
	state := make([]int, len(p.Regions))
	for i := range state {
		state[i] = rng.Intn(len(cands[i]))
	}
	rects := func(s []int) []grid.Rect {
		out := make([]grid.Rect, len(s))
		for i, ci := range s {
			out[i] = cands[i][ci].Rect
		}
		return out
	}
	cost := func(s []int) float64 {
		rs := rects(s)
		overlap := 0
		for i := range rs {
			for j := i + 1; j < len(rs); j++ {
				if inter, ok := rs[i].Intersect(rs[j]); ok {
					overlap += inter.Area()
				}
			}
		}
		waste := 0
		for i, ci := range s {
			waste += cands[i][ci].Waste
		}
		return annealEnergy(overlap, waste, core.WireLengthOf(p, rs))
	}

	cur := cost(state)
	best := append([]int(nil), state...)
	bestCost := cur
	if cur < *bestEnergy {
		*bestEnergy = cur
		esp.Incumbent(cur)
	}

	// Move/accept counts are accumulated locally and flushed once: the
	// inner loop runs tens of thousands of times per restart.
	var moves, accepted int64
	defer func() {
		sp.Add(obs.Moves, moves)
		sp.Add(obs.Accepted, accepted)
	}()

	temp := tStart
	cool := coolingRate(tStart, tEnd, steps)
anneal:
	for step := 0; step < steps; step++ {
		for it := 0; it < iters; it++ {
			// Checked per move, not per temperature step, so an expired
			// budget costs at most one more cost evaluation.
			if expired(ctx, deadline) {
				break anneal
			}
			ri := rng.Intn(len(state))
			old := state[ri]
			state[ri] = rng.Intn(len(cands[ri]))
			next := cost(state)
			moves++
			if next <= cur || rng.Float64() < math.Exp((cur-next)/temp) {
				accepted++
				cur = next
				if cur < bestCost {
					bestCost = cur
					copy(best, state)
					if cur < *bestEnergy {
						*bestEnergy = cur
						esp.Incumbent(cur)
					}
				}
			} else {
				state[ri] = old
			}
		}
		temp *= cool
	}

	rs := rects(best)
	if !grid.Disjoint(rs) {
		return nil, core.ErrNoSolution
	}
	for i, r := range rs {
		if !p.Device.CanPlace(r) {
			return nil, fmt.Errorf("core: annealing produced illegal placement %v for region %d", r, i)
		}
	}
	mask := grid.NewMask(p.Device.Width(), p.Device.Height())
	for _, r := range rs {
		mask.SetRect(r)
	}
	fc, ok := GreedyFC(p, rs, mask)
	if !ok {
		return nil, core.ErrNoSolution
	}
	return &core.Solution{
		Regions: rs,
		FC:      fc,
		Engine:  a.Name(),
		Elapsed: time.Since(start),
	}, nil
}
