package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/reconfig"
	"repro/internal/session"
)

// startDurableServer brings up a server persisting sessions under dir.
// The returned shutdown func gracefully drains (the clean-restart
// path); not calling it and just closing the HTTP listener is the
// crash path.
func startDurableServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server, func()) {
	t.Helper()
	cfg.SessionDir = dir
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	return s, ts, func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Fatalf("closing server: %v", err)
		}
	}
}

func applyWorkload(t *testing.T, client *http.Client, baseURL, id string, events []session.Event) {
	t.Helper()
	var resp SessionEventsResponse
	code := sessionPost(t, client, baseURL+"/v1/sessions/"+id+"/events",
		SessionEventsRequest{Events: events}, &resp)
	if code != http.StatusOK {
		t.Fatalf("apply events: HTTP %d", code)
	}
	if len(resp.Results) != len(events) {
		t.Fatalf("%d results for %d events", len(resp.Results), len(events))
	}
}

// TestServerRecoversSessionsAcrossRestart drives the full daemon
// restart: sessions created and fed on one Server instance come back —
// same id, same live modules, same frame digest — on a second instance
// over the same directory. The first leg stops cleanly (drain flushes a
// final snapshot); a second restart exercises recovery from that
// snapshot alone.
func TestServerRecoversSessionsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1, ts1, shutdown1 := startDurableServer(t, dir, Config{})
	client := ts1.Client()

	info := createSession(t, client, ts1.URL, CreateSessionRequest{Device: "k160t", FragThreshold: -1})
	workload := session.GenerateWorkload(session.WorkloadConfig{
		Seed: 9, Events: 60, Intensity: 0.5, Device: device.Kintex7K160T(),
	})
	applyWorkload(t, client, ts1.URL, info.ID, workload)

	var before SessionInfo
	if code := sessionGet(t, client, ts1.URL+"/v1/sessions/"+info.ID, &before); code != http.StatusOK {
		t.Fatalf("get session: HTTP %d", code)
	}
	ls1, ok := s1.sessions.get(info.ID)
	if !ok {
		t.Fatal("session missing from registry")
	}
	digest := ls1.mgr.FrameDigest()
	shutdown1() // graceful drain: final snapshot per session

	// Restart: the second instance must resurrect the session.
	s2, ts2, shutdown2 := startDurableServer(t, dir, Config{})
	defer shutdown2()
	client = ts2.Client()

	var after SessionInfo
	if code := sessionGet(t, client, ts2.URL+"/v1/sessions/"+info.ID, &after); code != http.StatusOK {
		t.Fatalf("recovered session not served: HTTP %d", code)
	}
	if after.Device != before.Device {
		t.Fatalf("recovered device %q, want %q", after.Device, before.Device)
	}
	if len(after.Snapshot.Live) != len(before.Snapshot.Live) {
		t.Fatalf("recovered %d live modules, want %d", len(after.Snapshot.Live), len(before.Snapshot.Live))
	}
	for i := range after.Snapshot.Live {
		if after.Snapshot.Live[i] != before.Snapshot.Live[i] {
			t.Fatalf("live module %d: recovered %+v, want %+v",
				i, after.Snapshot.Live[i], before.Snapshot.Live[i])
		}
	}
	ls2, ok := s2.sessions.get(info.ID)
	if !ok {
		t.Fatal("recovered session missing from registry")
	}
	if got := ls2.mgr.FrameDigest(); got != digest {
		t.Fatalf("recovered frame digest %08x, want %08x", got, digest)
	}
	if got := scrapeCounter(t, client, ts2.URL, "floorpland_session_recoveries_total"); got != 1 {
		t.Fatalf("session_recoveries_total = %d, want 1", got)
	}

	// The recovered session keeps serving.
	applyWorkload(t, client, ts2.URL, info.ID, []session.Event{
		{Kind: session.Departure, Name: workload[0].Name},
	})
}

// TestServerRecoversFromCrash skips the graceful drain entirely: the
// first instance is abandoned mid-flight, so the second must replay WAL
// records on top of the last periodic snapshot.
func TestServerRecoversFromCrash(t *testing.T) {
	dir := t.TempDir()
	s1, ts1, _ := startDurableServer(t, dir, Config{SessionSnapshotEvery: 16})
	client := ts1.Client()

	info := createSession(t, client, ts1.URL, CreateSessionRequest{Device: "fx70t", FragThreshold: -1})
	workload := session.GenerateWorkload(session.WorkloadConfig{
		Seed: 4, Events: 40, Intensity: 0.5, Device: device.VirtexFX70T(),
	})
	applyWorkload(t, client, ts1.URL, info.ID, workload)
	ls1, ok := s1.sessions.get(info.ID)
	if !ok {
		t.Fatal("session missing from registry")
	}
	digest := ls1.mgr.FrameDigest()
	stats := ls1.mgr.Stats()
	// Crash: close only the listener. The worker pool and session stores
	// are dropped on the floor — nothing flushes.
	ts1.Close()

	s2, ts2, shutdown2 := startDurableServer(t, dir, Config{SessionSnapshotEvery: 16})
	defer shutdown2()
	client = ts2.Client()

	ls2, ok := s2.sessions.get(info.ID)
	if !ok {
		t.Fatal("crashed session not recovered")
	}
	if got := ls2.mgr.FrameDigest(); got != digest {
		t.Fatalf("recovered frame digest %08x, want %08x", got, digest)
	}
	if got := ls2.mgr.Stats().Events; got != stats.Events {
		t.Fatalf("recovered %d events, want %d", got, stats.Events)
	}
	// A crash after the last periodic snapshot leaves WAL records to
	// replay; the replay counter must account for them.
	if got := scrapeCounter(t, client, ts2.URL, "floorpland_session_replays_total"); got <= 0 {
		t.Fatalf("session_replays_total = %d, want > 0", got)
	}
}

// TestSessionDeleteRemovesDurableState: DELETE must purge the session's
// directory so a later restart cannot resurrect it.
func TestSessionDeleteRemovesDurableState(t *testing.T) {
	dir := t.TempDir()
	_, ts, shutdown := startDurableServer(t, dir, Config{})
	client := ts.Client()

	info := createSession(t, client, ts.URL, CreateSessionRequest{Device: "k160t", FragThreshold: -1})
	sessDir := filepath.Join(dir, info.ID)
	if _, err := os.Stat(sessDir); err != nil {
		t.Fatalf("session dir not created: %v", err)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: HTTP %d", resp.StatusCode)
	}
	if _, err := os.Stat(sessDir); !os.IsNotExist(err) {
		t.Fatalf("session dir survived DELETE: %v", err)
	}
	shutdown()

	// A restart over the directory must not bring the session back.
	_, ts2, shutdown2 := startDurableServer(t, dir, Config{})
	defer shutdown2()
	var list SessionListResponse
	if code := sessionGet(t, ts2.Client(), ts2.URL+"/v1/sessions", &list); code != http.StatusOK {
		t.Fatalf("list sessions: HTTP %d", code)
	}
	if len(list.Sessions) != 0 {
		t.Fatalf("deleted session resurrected: %+v", list.Sessions)
	}
}

// TestServerFaultMetrics: a fault plan on the server surfaces retries in
// /metrics while the workload still applies cleanly.
func TestServerFaultMetrics(t *testing.T) {
	dir := t.TempDir()
	plan, err := reconfig.ParseFaultPlan("script:transient,pass")
	if err != nil {
		t.Fatal(err)
	}
	_, ts, shutdown := startDurableServer(t, dir, Config{SessionFaults: plan})
	defer shutdown()
	client := ts.Client()

	info := createSession(t, client, ts.URL, CreateSessionRequest{Device: "fx70t", FragThreshold: -1})
	workload := session.GenerateWorkload(session.WorkloadConfig{
		Seed: 6, Events: 20, Intensity: 0.5, Device: device.VirtexFX70T(),
	})
	applyWorkload(t, client, ts.URL, info.ID, workload)

	if got := scrapeCounter(t, client, ts.URL, "floorpland_session_reconfig_retries_total"); got <= 0 {
		t.Fatalf("session_reconfig_retries_total = %d, want > 0", got)
	}
	if got := scrapeCounter(t, client, ts.URL, "floorpland_session_corrupted_frames_total"); got != 0 {
		t.Fatalf("session_corrupted_frames_total = %d under transient faults", got)
	}
	if got := scrapeCounter(t, client, ts.URL, "floorpland_session_wal_records_total"); got != int64(len(workload)) {
		t.Fatalf("session_wal_records_total = %d, want %d", got, len(workload))
	}
}
