package server

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/diag"
	"repro/internal/guard"
	"repro/internal/portfolio"
	"repro/internal/slo"
	"repro/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// populatedMetrics builds a metrics value exercising every family render
// path: flat counters, gauges, per-engine telemetry and histograms,
// candidate-cache counters, portfolio member stats, the wide-event
// pipeline counters, and the SLO gauges.
func populatedMetrics() *metrics {
	m := newMetrics()
	m.requests.Add(3)
	m.solvesStarted.Add(2)
	m.solvesCompleted.Add(2)
	m.cacheHits.Add(1)
	m.cacheMisses.Add(2)
	m.candCacheStats = func() (int64, int64) { return 7, 5 }
	m.eventStats = func() telemetry.Stats {
		return telemetry.Stats{Emitted: 9, Kept: 6, SampledOut: 3, Exported: 5, DroppedQueue: 1}
	}
	m.sloStatus = func() []slo.Status {
		return []slo.Status{{
			Objective:            slo.Objective{Name: "solve-availability"},
			ErrorBudgetRemaining: 0.5,
			BurnRates: []slo.BurnRate{
				{Window: "5m", Burn: 0.7, Total: 12},
				{Window: "1h", Burn: 0.4, Total: 80},
			},
		}}
	}
	m.portfolioStats = func() []portfolio.MemberStats {
		return []portfolio.MemberStats{{Name: "exact", Races: 1, Wins: 1, Total: time.Second}}
	}
	m.breakerStats = func() []guard.BreakerSnapshot {
		return []guard.BreakerSnapshot{{Name: "exact", State: guard.BreakerOpen, Failures: 5, Trips: 1}}
	}
	m.profileStats = func() diag.ProfileStats {
		return diag.ProfileStats{
			Cycles: 2,
			Errors: 1,
			Shares: []diag.CPUShare{
				{Engine: "exact", Phase: "solve", Seconds: 1.5},
				{Engine: "session", Phase: "apply", Seconds: 0.25},
			},
			HeapAllocBytes: 1 << 20,
			Goroutines:     12,
		}
	}
	m.diagStats = func() diag.BundleStats {
		return diag.BundleStats{
			Captured:    map[string]int64{"panic": 1, "slo-alert": 2},
			Errors:      1,
			RateLimited: 3,
			Dropped:     1,
		}
	}
	m.observeLatency("exact", 42*time.Millisecond)
	m.observeLatency("annealing", 3*time.Millisecond)
	m.recordTelemetry("exact", 120, 0, 4)
	m.recordTelemetry("milp-ho", 15, 900, 2)
	m.recordIncumbentTimes("exact", 10*time.Millisecond, 35*time.Millisecond)
	return m
}

// TestMetricsExpositionLint validates the full /metrics output against
// the Prometheus text-format rules the renderer must uphold: every
// sample's family is declared with a HELP and a TYPE line before its
// first sample, no family is declared twice, and label sets are
// alphabetically sorted within each sample.
func TestMetricsExpositionLint(t *testing.T) {
	body := populatedMetrics().render()

	type family struct{ help, typ bool }
	declared := map[string]*family{}
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name, help, ok := strings.Cut(strings.TrimPrefix(line, "# HELP "), " ")
			if !ok || help == "" {
				t.Errorf("HELP line has no text: %q", line)
			}
			f := declared[name]
			if f == nil {
				f = &family{}
				declared[name] = f
			}
			if f.help {
				t.Errorf("family %s declared HELP twice", name)
			}
			f.help = true
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || (typ != "counter" && typ != "gauge" && typ != "histogram") {
				t.Errorf("TYPE line malformed: %q", line)
			}
			f := declared[name]
			if f == nil || !f.help {
				t.Errorf("family %s has TYPE before HELP", name)
				if f == nil {
					f = &family{}
					declared[name] = f
				}
			}
			if f.typ {
				t.Errorf("family %s declared TYPE twice", name)
			}
			f.typ = true
		case strings.HasPrefix(line, "#"), line == "":
			t.Errorf("unexpected comment/blank line: %q", line)
		default:
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			fam := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, suffix)
				if base != name {
					if f, ok := declared[base]; ok && f.typ {
						fam = base
					}
					break
				}
			}
			if f, ok := declared[fam]; !ok || !f.help || !f.typ {
				t.Errorf("sample %q has no preceding HELP+TYPE for family %s", line, fam)
			}
			assertSortedLabels(t, line)
		}
	}
}

// assertSortedLabels checks the label names inside one sample line are
// alphabetically ordered.
func assertSortedLabels(t *testing.T, line string) {
	t.Helper()
	open := strings.IndexByte(line, '{')
	if open < 0 {
		return
	}
	close := strings.IndexByte(line, '}')
	if close < open {
		t.Errorf("unbalanced braces: %q", line)
		return
	}
	var names []string
	for _, pair := range strings.Split(line[open+1:close], ",") {
		name, _, ok := strings.Cut(pair, "=")
		if !ok {
			t.Errorf("malformed label pair %q in %q", pair, line)
			return
		}
		names = append(names, name)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("labels not sorted in %q: %v", line, names)
	}
}

// TestMetricsHistogramsWellFormed validates every rendered histogram
// series against the Prometheus histogram contract: bucket le bounds
// strictly ascending and cumulative, a terminal +Inf bucket whose count
// equals the series _count, and a _sum sample present for the series.
func TestMetricsHistogramsWellFormed(t *testing.T) {
	body := populatedMetrics().render()

	histFamilies := map[string]bool{}
	type hseries struct {
		les    []string
		counts []int64
		hasSum bool
		count  int64
		hasCnt bool
	}
	byKey := map[string]*hseries{} // family + non-le labels → series

	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			name, typ, _ := strings.Cut(strings.TrimPrefix(line, "# TYPE "), " ")
			if typ == "histogram" {
				histFamilies[name] = true
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		var fam, suffix string
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, sfx); base != name && histFamilies[base] {
				fam, suffix = base, sfx
				break
			}
		}
		if fam == "" {
			continue
		}
		labels, value := parseSample(t, line)
		le := labels["le"]
		delete(labels, "le")
		key := fam + "|" + fmt.Sprint(labels)
		sr := byKey[key]
		if sr == nil {
			sr = &hseries{}
			byKey[key] = sr
		}
		switch suffix {
		case "_bucket":
			sr.les = append(sr.les, le)
			sr.counts = append(sr.counts, int64(value))
		case "_sum":
			sr.hasSum = true
		case "_count":
			sr.hasCnt = true
			sr.count = int64(value)
		}
	}

	if len(byKey) == 0 {
		t.Fatal("no histogram series rendered")
	}
	for key, sr := range byKey {
		if !sr.hasSum {
			t.Errorf("%s: missing _sum sample", key)
		}
		if !sr.hasCnt {
			t.Errorf("%s: missing _count sample", key)
		}
		if len(sr.les) == 0 || sr.les[len(sr.les)-1] != "+Inf" {
			t.Errorf("%s: last bucket is %v, want +Inf", key, sr.les)
			continue
		}
		if sr.counts[len(sr.counts)-1] != sr.count {
			t.Errorf("%s: +Inf bucket %d != count %d", key, sr.counts[len(sr.counts)-1], sr.count)
		}
		prev := -1.0
		for i, le := range sr.les[:len(sr.les)-1] {
			ub, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Errorf("%s: unparseable le %q", key, le)
				continue
			}
			if ub <= prev {
				t.Errorf("%s: le bounds not strictly ascending at %q", key, le)
			}
			prev = ub
			if i > 0 && sr.counts[i] < sr.counts[i-1] {
				t.Errorf("%s: bucket counts not cumulative at le=%q (%d < %d)", key, le, sr.counts[i], sr.counts[i-1])
			}
		}
	}
}

// parseSample splits one exposition sample line into its label map and
// value.
func parseSample(t *testing.T, line string) (map[string]string, float64) {
	t.Helper()
	labels := map[string]string{}
	rest := line
	if open := strings.IndexByte(line, '{'); open >= 0 {
		close := strings.IndexByte(line, '}')
		if close < open {
			t.Fatalf("unbalanced braces: %q", line)
		}
		for _, pair := range strings.Split(line[open+1:close], ",") {
			name, val, ok := strings.Cut(pair, "=")
			if !ok {
				t.Fatalf("malformed label pair %q in %q", pair, line)
			}
			labels[name] = strings.Trim(val, `"`)
		}
		rest = line[close+1:]
	} else if i := strings.IndexByte(line, ' '); i >= 0 {
		rest = line[i:]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		t.Fatalf("unparseable sample value in %q: %v", line, err)
	}
	return labels, v
}

// TestMetricsFamiliesGolden pins the exposition's family declarations
// (every HELP/TYPE pair, in order) against a golden file, so renaming or
// dropping a metric family is a deliberate, reviewed change. Values are
// excluded: only the schema is golden. Refresh with `go test
// ./internal/server -run Golden -update`.
func TestMetricsFamiliesGolden(t *testing.T) {
	body := populatedMetrics().render()
	var families strings.Builder
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fmt.Fprintln(&families, strings.TrimPrefix(line, "# TYPE "))
		}
	}
	got := families.String()

	path := filepath.Join("testdata", "metrics_families.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (rerun with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("metric families changed.\ngot:\n%s\nwant:\n%s\n(rerun with -update if intended)", got, want)
	}
}
