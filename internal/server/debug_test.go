package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/flight"
)

// getJSON fetches url and decodes the body into out, returning the
// status code.
func getJSON(t *testing.T, client *http.Client, url string, out any) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s (HTTP %d): %v", url, resp.StatusCode, err)
	}
	return resp.StatusCode
}

// TestDebugSolvesEndToEnd drives real solves through the daemon and
// checks /debug/solves reflects them: records carry engine, outcome,
// duration and stripped traces; /debug/solves/{seq} returns the full
// record with its trace; engine summaries cover the solved engine.
func TestDebugSolvesEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueSize: 16})

	for i := 0; i < 3; i++ {
		code, resp := postSolve(t, ts.Client(), ts.URL, SolveRequest{
			Problem: testProblem(t, i),
			Engine:  "exact",
		})
		if code != http.StatusOK || resp.Status != "ok" {
			t.Fatalf("solve %d: HTTP %d status %q", i, code, resp.Status)
		}
	}

	var list DebugSolvesResponse
	if code := getJSON(t, ts.Client(), ts.URL+"/debug/solves", &list); code != http.StatusOK {
		t.Fatalf("/debug/solves: HTTP %d", code)
	}
	if list.Total != 3 || len(list.Records) != 3 {
		t.Fatalf("list has total=%d records=%d, want 3/3", list.Total, len(list.Records))
	}
	if list.Capacity != 256 {
		t.Errorf("capacity = %d, want the 256 default", list.Capacity)
	}
	for _, rec := range list.Records {
		if rec.Engine != "exact" || rec.Outcome != "proven" {
			t.Errorf("record %d = %s/%s, want exact/proven", rec.Seq, rec.Engine, rec.Outcome)
		}
		if rec.DurationMS <= 0 {
			t.Errorf("record %d has duration %v", rec.Seq, rec.DurationMS)
		}
		if rec.Trace != nil {
			t.Errorf("record %d in the list carries a trace; lists must strip them", rec.Seq)
		}
		if rec.RequestDigest == "" || rec.Key == "" {
			t.Errorf("record %d is missing digest/key: %+v", rec.Seq, rec)
		}
	}
	// Newest first.
	if list.Records[0].Seq != 3 || list.Records[2].Seq != 1 {
		t.Errorf("list not newest-first: seqs %d,%d,%d",
			list.Records[0].Seq, list.Records[1].Seq, list.Records[2].Seq)
	}

	es, ok := list.Engines["exact"]
	if !ok {
		t.Fatalf("engine summaries missing exact: %v", list.Engines)
	}
	if es.Solves != 3 || es.LatencyMS.Count != 3 {
		t.Errorf("exact summary counts = %d/%d, want 3/3", es.Solves, es.LatencyMS.Count)
	}
	if es.Nodes.Mean <= 0 {
		t.Errorf("exact nodes mean = %v, want > 0", es.Nodes.Mean)
	}

	// The ?n= limit applies.
	var limited DebugSolvesResponse
	getJSON(t, ts.Client(), ts.URL+"/debug/solves?n=1", &limited)
	if len(limited.Records) != 1 || limited.Records[0].Seq != 3 {
		t.Errorf("?n=1 returned %d records (first seq %d), want the newest only",
			len(limited.Records), limited.Records[0].Seq)
	}

	// The detail endpoint returns the full record, trace included.
	var rec flight.Record
	if code := getJSON(t, ts.Client(), ts.URL+"/debug/solves/2", &rec); code != http.StatusOK {
		t.Fatalf("/debug/solves/2: HTTP %d", code)
	}
	if rec.Seq != 2 || rec.Trace == nil {
		t.Fatalf("detail record seq=%d trace=%v, want seq 2 with a trace", rec.Seq, rec.Trace)
	}
	if len(rec.Trace.Spans) == 0 {
		t.Error("detail trace has no spans")
	}

	var errResp SolveResponse
	if code := getJSON(t, ts.Client(), ts.URL+"/debug/solves/99", &errResp); code != http.StatusNotFound {
		t.Errorf("/debug/solves/99: HTTP %d, want 404", code)
	}
	if code := getJSON(t, ts.Client(), ts.URL+"/debug/solves/zero", &errResp); code != http.StatusBadRequest {
		t.Errorf("/debug/solves/zero: HTTP %d, want 400", code)
	}
}

// TestDebugSolvesCacheHitLinksOrigin is the cached-solve contract: a
// cache hit appends its own flight record, marked Cached, whose
// OriginSeq points at the record of the solve that populated the cache
// and whose trace IS that original solve's trace — never a fresh or
// fabricated one.
func TestDebugSolvesCacheHitLinksOrigin(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueSize: 16})
	p := testProblem(t, 0)

	code, first := postSolve(t, ts.Client(), ts.URL, SolveRequest{Problem: p, Engine: "exact"})
	if code != http.StatusOK || first.Cached {
		t.Fatalf("first solve: HTTP %d cached=%v", code, first.Cached)
	}
	code, second := postSolve(t, ts.Client(), ts.URL, SolveRequest{Problem: p, Engine: "exact"})
	if code != http.StatusOK || !second.Cached {
		t.Fatalf("second solve: HTTP %d cached=%v, want a cache hit", code, second.Cached)
	}

	var origin, hit flight.Record
	getJSON(t, ts.Client(), ts.URL+"/debug/solves/1", &origin)
	getJSON(t, ts.Client(), ts.URL+"/debug/solves/2", &hit)

	if origin.Cached {
		t.Fatal("origin record is marked cached")
	}
	if !hit.Cached {
		t.Fatal("cache-hit record is not marked cached")
	}
	if hit.OriginSeq != origin.Seq {
		t.Fatalf("hit origin_seq = %d, want %d", hit.OriginSeq, origin.Seq)
	}
	if hit.DurationMS != 0 {
		t.Errorf("cache hit has duration %v, want 0 (no solve ran)", hit.DurationMS)
	}
	if origin.Trace == nil || hit.Trace == nil {
		t.Fatalf("traces missing: origin=%v hit=%v", origin.Trace, hit.Trace)
	}
	// Same trace, not a fabricated one: compare the serialized forms.
	ob, _ := json.Marshal(origin.Trace)
	hb, _ := json.Marshal(hit.Trace)
	if string(ob) != string(hb) {
		t.Errorf("cache-hit trace differs from the origin's:\norigin: %s\nhit:    %s", ob, hb)
	}
	if fmt.Sprint(hit.Objective) == "<nil>" || *hit.Objective != *origin.Objective {
		t.Errorf("cache-hit objective %v != origin %v", hit.Objective, origin.Objective)
	}
}
