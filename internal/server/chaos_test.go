package server

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/guard"
)

// quietLogger drops the (deliberately noisy) panic and validation logs
// the chaos runs produce.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// stubCoreEngine adapts fakeSolution to core.Engine so the chaos wrapper
// can inject faults around it.
type stubCoreEngine struct{}

func (stubCoreEngine) Name() string { return "stub" }
func (stubCoreEngine) Solve(_ context.Context, p *core.Problem, _ core.SolveOptions) (*core.Solution, error) {
	return fakeSolution(p), nil
}

// TestChaosRequestsNeverCrashOrServeInvalid is the soak acceptance test:
// 120 requests against engines wrapped in seeded chaos (panics, poison
// solutions, spurious errors, delays). The daemon must stay up, every
// 200-ok body must carry a valid floorplan, nothing invalid may enter
// the cache, and the panic/invalid counters must show the guard layer
// actually absorbed faults.
func TestChaosRequestsNeverCrashOrServeInvalid(t *testing.T) {
	engines := map[string]core.Engine{
		"good": stubCoreEngine{},
		"flaky": guard.NewChaos(stubCoreEngine{}, guard.ChaosConfig{
			Seed:          7,
			PassWeight:    5,
			PanicWeight:   2,
			InvalidWeight: 2,
			ErrorWeight:   1,
			DelayWeight:   1,
			Delay:         time.Millisecond,
		}),
		"evil": guard.NewChaos(stubCoreEngine{}, guard.ChaosConfig{
			Seed:          9,
			PanicWeight:   1,
			InvalidWeight: 1,
		}),
	}
	_, ts := newTestServer(t, Config{
		Workers:          4,
		QueueSize:        256,
		CacheSize:        256,
		BreakerThreshold: -1, // breaker lifecycle has its own test below
		Logger:           quietLogger(),
		Solve: func(ctx context.Context, p *core.Problem, engine string, opts core.SolveOptions) (*core.Solution, error) {
			return engines[engine].Solve(ctx, p, opts)
		},
	})

	const requests = 120
	names := []string{"good", "flaky", "evil"}
	p := testProblem(t, 0)
	var wg sync.WaitGroup
	var okCount, failCount atomic.Int64
	var mu sync.Mutex
	served := map[string]bool{} // keys that returned status ok at least once
	for i := 0; i < requests; i++ {
		engine := names[i%len(names)]
		seed := int64(i) // distinct cache key per request, same problem
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, resp := postSolve(t, ts.Client(), ts.URL, SolveRequest{
				Problem:     p,
				Engine:      engine,
				Seed:        seed,
				TimeLimitMS: 30_000,
			})
			switch code {
			case http.StatusOK:
				if resp.Status == "ok" {
					if resp.Solution == nil {
						t.Error("status ok without a solution")
						return
					}
					if err := resp.Solution.Validate(p); err != nil {
						t.Errorf("served an invalid floorplan: %v", err)
						return
					}
					mu.Lock()
					served[resp.Key] = true
					mu.Unlock()
					okCount.Add(1)
				}
			case http.StatusInternalServerError, http.StatusServiceUnavailable:
				failCount.Add(1) // absorbed fault: fine, as long as we stay up
			default:
				t.Errorf("unexpected HTTP %d (status %q: %s)", code, resp.Status, resp.Error)
			}
		}()
	}
	wg.Wait()

	if okCount.Load() == 0 {
		t.Fatal("no request succeeded; the chaos mix is broken")
	}
	if failCount.Load() == 0 {
		t.Fatal("no request failed; the chaos mix injected nothing")
	}

	// The daemon is still alive and healthy.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("daemon died during the chaos run: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d after chaos run", resp.StatusCode)
	}

	// The guard layer visibly absorbed both fault kinds.
	if n := scrapeCounter(t, ts.Client(), ts.URL, "floorpland_engine_panics_total"); n == 0 {
		t.Error("engine_panics_total = 0; no panic was recovered")
	}
	if n := scrapeCounter(t, ts.Client(), ts.URL, "floorpland_invalid_solutions_total"); n == 0 {
		t.Error("invalid_solutions_total = 0; no poison solution was rejected")
	}

	// Everything that made it into the cache revalidates: re-request one
	// previously-ok key per engine and check the cached body.
	mu.Lock()
	keys := len(served)
	mu.Unlock()
	if keys == 0 {
		t.Fatal("no ok keys to revalidate")
	}
	for i := 0; i < requests; i++ {
		engine := names[i%len(names)]
		code, resp := postSolve(t, ts.Client(), ts.URL, SolveRequest{
			Problem:     p,
			Engine:      engine,
			Seed:        int64(i),
			TimeLimitMS: 30_000,
		})
		if code != http.StatusOK || resp.Status != "ok" || !resp.Cached {
			continue // was a fault, or evicted: nothing cached to check
		}
		if resp.Solution == nil {
			t.Fatalf("cached ok entry without a solution (engine %s seed %d)", engine, i)
		}
		if err := resp.Solution.Validate(p); err != nil {
			t.Fatalf("cache served an invalid floorplan (engine %s seed %d): %v", engine, i, err)
		}
	}
}

// TestBreakerCycleOverHTTP drives one engine through the full circuit
// breaker lifecycle and watches every transition in /metrics: repeated
// panics open the breaker (state 2, one trip), requests are rejected
// with 503 + Retry-After while open, the cooldown moves it to half-open
// (state 1), and a successful probe closes it again (state 0).
func TestBreakerCycleOverHTTP(t *testing.T) {
	var panicking atomic.Bool
	panicking.Store(true)
	_, ts := newTestServer(t, Config{
		Workers:          1,
		QueueSize:        8,
		CacheSize:        8,
		BreakerThreshold: 2,
		BreakerCooldown:  200 * time.Millisecond,
		Logger:           quietLogger(),
		Solve: func(_ context.Context, p *core.Problem, _ string, _ core.SolveOptions) (*core.Solution, error) {
			if panicking.Load() {
				panic("engine is sick")
			}
			return fakeSolution(p), nil
		},
	})

	const stateGauge = `floorpland_breaker_state{engine="exact"}`
	post := func(seed int64) (int, SolveResponse) {
		return postSolve(t, ts.Client(), ts.URL, SolveRequest{
			Problem:     testProblem(t, 0),
			Engine:      "exact",
			Seed:        seed,
			TimeLimitMS: 30_000,
		})
	}

	// Two consecutive panics trip the breaker.
	for i := int64(0); i < 2; i++ {
		if code, resp := post(i); code != http.StatusInternalServerError {
			t.Fatalf("panicking solve %d: HTTP %d (%s), want 500", i, code, resp.Error)
		}
	}
	if st := scrapeCounter(t, ts.Client(), ts.URL, stateGauge); st != 2 {
		t.Fatalf("breaker state after %d failures = %d, want 2 (open)", 2, st)
	}
	if n := scrapeCounter(t, ts.Client(), ts.URL, `floorpland_breaker_trips_total{engine="exact"}`); n != 1 {
		t.Fatalf("trips_total = %d, want 1", n)
	}

	// While open: immediate 503, no engine invocation.
	code, resp := post(2)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("open breaker answered HTTP %d (%s), want 503", code, resp.Error)
	}
	if n := scrapeCounter(t, ts.Client(), ts.URL, "floorpland_breaker_rejected_total"); n == 0 {
		t.Error("breaker_rejected_total = 0 after a 503")
	}

	// Cooldown elapses: half-open.
	time.Sleep(300 * time.Millisecond)
	if st := scrapeCounter(t, ts.Client(), ts.URL, stateGauge); st != 1 {
		t.Fatalf("breaker state after cooldown = %d, want 1 (half-open)", st)
	}

	// The engine healed: the half-open probe succeeds and closes the
	// breaker.
	panicking.Store(false)
	code, resp = post(3)
	if code != http.StatusOK || resp.Status != "ok" {
		t.Fatalf("probe request: HTTP %d status %q (%s), want ok", code, resp.Status, resp.Error)
	}
	if st := scrapeCounter(t, ts.Client(), ts.URL, stateGauge); st != 0 {
		t.Fatalf("breaker state after successful probe = %d, want 0 (closed)", st)
	}
	if code, resp = post(4); code != http.StatusOK || resp.Status != "ok" {
		t.Fatalf("post-recovery request: HTTP %d status %q, want ok", code, resp.Status)
	}
}
