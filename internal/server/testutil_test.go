package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/grid"
)

// testDevice is a small columnar device on which the exact engine solves
// test instances in milliseconds.
func testDevice(t testing.TB) *device.Device {
	t.Helper()
	cols := make([]device.TypeID, 16)
	for i := range cols {
		cols[i] = device.V5CLB
	}
	cols[4] = device.V5BRAM
	cols[9] = device.V5DSP
	dev, err := device.NewColumnar("srvtest", cols, 4, device.V5Types(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// testProblem builds the i-th distinct test instance: varying the CLB
// requirement makes each instance hash to its own cache key.
func testProblem(t testing.TB, i int) *core.Problem {
	t.Helper()
	return &core.Problem{
		Device: testDevice(t),
		Regions: []core.Region{
			{Name: "a", Req: device.Requirements{device.ClassCLB: 3 + i, device.ClassDSP: 1}},
			{Name: "b", Req: device.Requirements{device.ClassCLB: 2, device.ClassBRAM: 1}},
		},
		Nets: []core.Net{{A: 0, B: 1, Weight: 8}},
	}
}

// fakeSolution returns a genuinely valid floorplan for testProblem
// instances (i <= 33) without running an engine: region "a" covers
// columns 6-15 (36 CLB + 4 DSP), region "b" covers columns 3-5 of row 0
// (2 CLB + 1 BRAM). Serving-boundary validation re-checks every
// solution, so test stubs must return legal placements.
func fakeSolution(p *core.Problem) *core.Solution {
	sol := &core.Solution{
		Regions: make([]grid.Rect, len(p.Regions)),
		FC:      make([]core.FCPlacement, len(p.FCAreas)),
		Engine:  "fake",
	}
	if len(sol.Regions) >= 2 {
		sol.Regions[0] = grid.Rect{X: 6, Y: 0, W: 10, H: 4}
		sol.Regions[1] = grid.Rect{X: 3, Y: 0, W: 3, H: 1}
	}
	for i := range sol.FC {
		sol.FC[i] = core.FCPlacement{Request: i}
	}
	return sol
}

// postSolve sends req to url and decodes the reply.
func postSolve(t testing.TB, client *http.Client, url string, req SolveRequest) (int, SolveResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := client.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var resp SolveResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatalf("decoding response (HTTP %d): %v", httpResp.StatusCode, err)
	}
	return httpResp.StatusCode, resp
}

// scrapeCounter fetches /metrics and returns the value of the named
// series (flat counters and gauges only).
func scrapeCounter(t testing.TB, client *http.Client, url, name string) int64 {
	t.Helper()
	httpResp, err := client.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(httpResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				t.Fatalf("parsing %s: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, data)
	return 0
}
