package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/guard"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return s, ts
}

// TestConcurrentSolvesSharedThroughCache is the acceptance scenario: many
// concurrent requests over a small set of repeated problems, served under
// the race detector, with exactly one underlying solve per unique problem
// (asserted via /metrics) and every response carrying a valid floorplan.
func TestConcurrentSolvesSharedThroughCache(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueSize: 256, CacheSize: 64})

	const unique = 3
	const requests = 60
	problems := make([]*core.Problem, unique)
	for i := range problems {
		problems[i] = testProblem(t, i)
	}

	var wg sync.WaitGroup
	var okCount atomic.Int64
	for i := 0; i < requests; i++ {
		p := problems[i%unique]
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, resp := postSolve(t, ts.Client(), ts.URL, SolveRequest{
				Problem:     p,
				Engine:      "exact",
				TimeLimitMS: 30_000,
				Workers:     2, // exercises the parallel exact engine concurrently
			})
			if code != http.StatusOK || resp.Status != "ok" {
				t.Errorf("HTTP %d, status %q (%s)", code, resp.Status, resp.Error)
				return
			}
			if resp.Solution == nil {
				t.Error("status ok without a solution")
				return
			}
			if err := resp.Solution.Validate(p); err != nil {
				t.Errorf("returned floorplan invalid: %v", err)
				return
			}
			okCount.Add(1)
		}()
	}
	wg.Wait()
	if n := okCount.Load(); n != requests {
		t.Fatalf("%d/%d requests succeeded", n, requests)
	}

	started := scrapeCounter(t, ts.Client(), ts.URL, "floorpland_solves_started_total")
	if started != unique {
		t.Fatalf("solves_started_total = %d, want exactly %d (one per unique problem)", started, unique)
	}
	completed := scrapeCounter(t, ts.Client(), ts.URL, "floorpland_solves_completed_total")
	if completed != unique {
		t.Fatalf("solves_completed_total = %d, want %d", completed, unique)
	}
	hits := scrapeCounter(t, ts.Client(), ts.URL, "floorpland_cache_hits_total")
	deduped := scrapeCounter(t, ts.Client(), ts.URL, "floorpland_dedup_joined_total")
	if hits+deduped != requests-unique {
		t.Fatalf("cache_hits (%d) + dedup_joined (%d) = %d, want %d",
			hits, deduped, hits+deduped, requests-unique)
	}

	// A later identical request is a straight cache hit.
	code, resp := postSolve(t, ts.Client(), ts.URL, SolveRequest{
		Problem: problems[0], Engine: "exact", TimeLimitMS: 30_000, Workers: 2,
	})
	if code != http.StatusOK || !resp.Cached {
		t.Fatalf("follow-up request: HTTP %d cached=%v, want cache hit", code, resp.Cached)
	}
	if got := scrapeCounter(t, ts.Client(), ts.URL, "floorpland_solves_started_total"); got != unique {
		t.Fatalf("follow-up request triggered a solve: started=%d", got)
	}
}

// TestQueueOverflowReturns429 drives a single-worker, single-slot server
// past capacity and expects backpressure, not queueing.
func TestQueueOverflowReturns429(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s, ts := newTestServer(t, Config{
		Workers:   1,
		QueueSize: 1,
		Solve: func(ctx context.Context, p *core.Problem, engine string, opts core.SolveOptions) (*core.Solution, error) {
			started <- struct{}{}
			select {
			case <-release:
				return fakeSolution(p), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})

	results := make(chan SolveResponse, 2)
	codes := make(chan int, 2)
	post := func(i int) {
		code, resp := postSolve(t, ts.Client(), ts.URL, SolveRequest{Problem: testProblem(t, i)})
		codes <- code
		results <- resp
	}

	go post(0)
	<-started // first request is solving
	go post(1)
	// Wait until the second request is queued behind the busy worker.
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.queueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue is full: the third distinct request must bounce.
	body := `{"problem":` + mustJSON(t, testProblem(t, 2)) + `}`
	httpResp, err := ts.Client().Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP %d, want 429", httpResp.StatusCode)
	}
	if httpResp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	close(release)
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("blocked request finished with HTTP %d", code)
		}
		<-results
	}
	if rejected := scrapeCounter(t, ts.Client(), ts.URL, "floorpland_queue_rejected_total"); rejected != 1 {
		t.Fatalf("queue_rejected_total = %d, want 1", rejected)
	}
}

// TestDedupSharesInFlightSolve has two identical requests race: the
// second must join the first solve rather than start its own.
func TestDedupSharesInFlightSolve(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	var calls atomic.Int64
	_, ts := newTestServer(t, Config{
		Workers:   2,
		QueueSize: 8,
		Solve: func(ctx context.Context, p *core.Problem, engine string, opts core.SolveOptions) (*core.Solution, error) {
			calls.Add(1)
			started <- struct{}{}
			<-release
			return fakeSolution(p), nil
		},
	})

	p := testProblem(t, 0)
	var wg sync.WaitGroup
	dedupedCount := atomic.Int64{}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, resp := postSolve(t, ts.Client(), ts.URL, SolveRequest{Problem: p})
			if code != http.StatusOK || resp.Status != "ok" {
				t.Errorf("HTTP %d status %q", code, resp.Status)
			}
			if resp.Deduped {
				dedupedCount.Add(1)
			}
		}()
	}
	<-started // leader is inside the solver
	// Let the follower reach the flight group before releasing; the
	// counters below verify it joined rather than solved.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("solver ran %d times for identical concurrent requests, want 1", n)
	}
	if n := dedupedCount.Load(); n != 1 {
		t.Fatalf("%d responses marked deduped, want 1", n)
	}
}

func TestGracefulShutdown(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	s := New(Config{
		Workers:   1,
		QueueSize: 1,
		Solve: func(ctx context.Context, p *core.Problem, engine string, opts core.SolveOptions) (*core.Solution, error) {
			started <- struct{}{}
			<-release
			return fakeSolution(p), nil
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type result struct {
		code int
		resp SolveResponse
	}
	inflight := make(chan result, 1)
	queued := make(chan result, 1)
	go func() {
		code, resp := postSolve(t, ts.Client(), ts.URL, SolveRequest{Problem: testProblem(t, 0)})
		inflight <- result{code, resp}
	}()
	<-started
	go func() {
		code, resp := postSolve(t, ts.Client(), ts.URL, SolveRequest{Problem: testProblem(t, 1)})
		queued <- result{code, resp}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.queueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		closed <- s.Close(ctx)
	}()
	time.Sleep(20 * time.Millisecond) // let Close reach the pool stop signal

	// New work is refused while draining.
	code, _ := postSolve(t, ts.Client(), ts.URL, SolveRequest{Problem: testProblem(t, 2)})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("request during shutdown: HTTP %d, want 503", code)
	}

	close(release) // drain the in-flight solve
	r := <-inflight
	if r.code != http.StatusOK || r.resp.Status != "ok" {
		t.Fatalf("in-flight solve not drained: HTTP %d status %q", r.code, r.resp.Status)
	}
	q := <-queued
	if q.code != http.StatusServiceUnavailable {
		t.Fatalf("queued solve: HTTP %d, want 503 (canceled by shutdown)", q.code)
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}

	httpResp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after shutdown: HTTP %d, want 503", httpResp.StatusCode)
	}
}

func TestInfeasibleIsCached(t *testing.T) {
	var calls atomic.Int64
	_, ts := newTestServer(t, Config{
		Solve: func(ctx context.Context, p *core.Problem, engine string, opts core.SolveOptions) (*core.Solution, error) {
			calls.Add(1)
			return nil, core.ErrInfeasible
		},
	})
	p := testProblem(t, 0)
	for i := 0; i < 2; i++ {
		code, resp := postSolve(t, ts.Client(), ts.URL, SolveRequest{Problem: p})
		if code != http.StatusOK || resp.Status != "infeasible" {
			t.Fatalf("HTTP %d status %q, want infeasible", code, resp.Status)
		}
		if (i == 1) != resp.Cached {
			t.Fatalf("request %d cached=%v", i, resp.Cached)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("infeasibility solved %d times, want 1 (cached)", n)
	}
}

func TestTransientFailureNotCached(t *testing.T) {
	var calls atomic.Int64
	_, ts := newTestServer(t, Config{
		Solve: func(ctx context.Context, p *core.Problem, engine string, opts core.SolveOptions) (*core.Solution, error) {
			calls.Add(1)
			return nil, context.DeadlineExceeded
		},
	})
	p := testProblem(t, 0)
	for i := 0; i < 2; i++ {
		code, _ := postSolve(t, ts.Client(), ts.URL, SolveRequest{Problem: p})
		if code != http.StatusGatewayTimeout {
			t.Fatalf("HTTP %d, want 504", code)
		}
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("solver ran %d times, want 2 (timeouts are not cached)", n)
	}
}

// TestFallbackBreakersOpenIsRetryable: when the fallback chain reports
// that every member's breaker was open (no engine ran), the daemon must
// answer a retryable 503 with Retry-After — not a definitive 200
// "no_solution" — and must not cache the outcome.
func TestFallbackBreakersOpenIsRetryable(t *testing.T) {
	var calls atomic.Int64
	_, ts := newTestServer(t, Config{
		Solve: func(ctx context.Context, p *core.Problem, engine string, opts core.SolveOptions) (*core.Solution, error) {
			calls.Add(1)
			return nil, fmt.Errorf("guard: no fallback member admitted a run: %w", guard.ErrBreakersOpen)
		},
	})
	p := testProblem(t, 0)
	for i := 0; i < 2; i++ {
		code, _ := postSolve(t, ts.Client(), ts.URL, SolveRequest{Problem: p})
		if code != http.StatusServiceUnavailable {
			t.Fatalf("HTTP %d, want 503", code)
		}
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("solver ran %d times, want 2 (breakers-open is not cached)", n)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
	}{
		{"empty body", ""},
		{"not json", "{"},
		{"no problem", `{"engine":"exact"}`},
		{"invalid problem", `{"problem":{"regions":[]}}`},
		{"unknown engine", `{"problem":` + mustJSON(t, testProblem(t, 0)) + `,"engine":"nope"}`},
		{"negative time limit", `{"problem":` + mustJSON(t, testProblem(t, 0)) + `,"time_limit_ms":-1}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := ts.Client().Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("HTTP %d, want 400", resp.StatusCode)
			}
		})
	}

	getResp, err := ts.Client().Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/solve: HTTP %d, want 405", getResp.StatusCode)
	}
}

func TestEnginesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/v1/engines")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out EnginesResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Default != "exact" {
		t.Fatalf("default engine %q", out.Default)
	}
	found := false
	for _, e := range out.Engines {
		if e == "exact" {
			found = true
		}
	}
	if !found {
		t.Fatalf("engines %v missing exact", out.Engines)
	}
}

func TestMetricsEndpointRenders(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, resp := postSolve(t, ts.Client(), ts.URL, SolveRequest{Problem: testProblem(t, 0), Engine: "constructive"})
	if code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", code, resp.Error)
	}
	httpResp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(httpResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"floorpland_requests_total 1",
		"floorpland_solves_started_total 1",
		`floorpland_solve_seconds_bucket{engine="constructive",le="+Inf"} 1`,
		`floorpland_solve_seconds_count{engine="constructive"} 1`,
		"floorpland_queue_depth 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
