package server

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestPoolSurvivesPanickingTask pins the last-resort isolation: a panic
// escaping the task function fails that task, fires the onPanic hook
// with a stack, and leaves the worker alive for the next submission.
func TestPoolSurvivesPanickingTask(t *testing.T) {
	p := newWorkerPool(1, 4)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		p.close(ctx)
	}()

	var hooked atomic.Int32
	var hookedStack atomic.Value
	p.onPanic = func(_ context.Context, v any, stack []byte) {
		hooked.Add(1)
		hookedStack.Store(string(stack))
	}

	task, err := p.submit(context.Background(), func(context.Context) (*core.Solution, error) {
		panic("task bug")
	})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := task.wait(context.Background())
	if sol != nil {
		t.Fatalf("panicked task produced a solution: %+v", sol)
	}
	if err == nil || !strings.Contains(err.Error(), "solve panicked") {
		t.Fatalf("want a solve-panicked error, got %v", err)
	}
	if hooked.Load() != 1 {
		t.Fatalf("onPanic fired %d times, want 1", hooked.Load())
	}
	if stack, _ := hookedStack.Load().(string); stack == "" {
		t.Error("onPanic got no stack trace")
	}

	// The single worker must still be serving.
	task, err = p.submit(context.Background(), func(_ context.Context) (*core.Solution, error) {
		return &core.Solution{Engine: "after"}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sol, err = task.wait(context.Background())
	if err != nil || sol == nil || sol.Engine != "after" {
		t.Fatalf("worker did not survive the panic: %v, %v", sol, err)
	}
}
