package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/session"
)

// sessionPost POSTs v as JSON and decodes the reply into out (when
// non-nil), returning the status code.
func sessionPost(t *testing.T, client *http.Client, url string, v, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s: %v (body %s)", url, err, raw)
		}
	}
	return resp.StatusCode
}

func sessionGet(t *testing.T, client *http.Client, url string, out any) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func createSession(t *testing.T, client *http.Client, baseURL string, req CreateSessionRequest) SessionInfo {
	t.Helper()
	var info SessionInfo
	if code := sessionPost(t, client, baseURL+"/v1/sessions", req, &info); code != http.StatusCreated {
		t.Fatalf("create session: HTTP %d", code)
	}
	if info.ID == "" {
		t.Fatal("created session has no id")
	}
	return info
}

// TestSessionLifecycle drives one session through the full HTTP
// surface: create, apply an arrival/departure batch, snapshot, list,
// close — and checks the counters on /metrics reflect it.
func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	client := ts.Client()

	info := createSession(t, client, ts.URL, CreateSessionRequest{Device: "k160t"})
	if info.Device != "xc7k160t" || len(info.Snapshot.Live) != 0 {
		t.Fatalf("unexpected create reply: %+v", info)
	}

	var events SessionEventsResponse
	code := sessionPost(t, client, ts.URL+"/v1/sessions/"+info.ID+"/events", SessionEventsRequest{
		Events: []session.Event{
			{Kind: session.Arrival, Name: "a", Req: device.Requirements{device.ClassCLB: 8}, Mode: 1},
			{Kind: session.Arrival, Name: "b", Req: device.Requirements{device.ClassCLB: 12, device.ClassBRAM: 1}, Mode: 2},
			{Kind: session.Departure, Name: "a"},
		},
	}, &events)
	if code != http.StatusOK {
		t.Fatalf("events: HTTP %d", code)
	}
	if len(events.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(events.Results))
	}
	for i := 0; i < 2; i++ {
		if !events.Results[i].Placed || events.Results[i].Rejected {
			t.Fatalf("arrival %d not placed: %+v", i, events.Results[i])
		}
	}

	var snap SessionInfo
	if code := sessionGet(t, client, ts.URL+"/v1/sessions/"+info.ID, &snap); code != http.StatusOK {
		t.Fatalf("get session: HTTP %d", code)
	}
	if len(snap.Snapshot.Live) != 1 || snap.Snapshot.Live[0].Name != "b" {
		t.Fatalf("snapshot live set wrong: %+v", snap.Snapshot.Live)
	}
	if snap.Snapshot.Stats.Events != 3 || snap.Snapshot.Stats.Placed != 2 {
		t.Fatalf("snapshot stats wrong: %+v", snap.Snapshot.Stats)
	}

	var list SessionListResponse
	if code := sessionGet(t, client, ts.URL+"/v1/sessions", &list); code != http.StatusOK {
		t.Fatalf("list sessions: HTTP %d", code)
	}
	if len(list.Sessions) != 1 || list.Sessions[0].ID != info.ID || list.Sessions[0].Live != 1 {
		t.Fatalf("listing wrong: %+v", list.Sessions)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: HTTP %d", resp.StatusCode)
	}
	if code := sessionGet(t, client, ts.URL+"/v1/sessions/"+info.ID, nil); code != http.StatusNotFound {
		t.Fatalf("get after delete: HTTP %d, want 404", code)
	}

	if got := scrapeCounter(t, client, ts.URL, "floorpland_sessions_created_total"); got != 1 {
		t.Fatalf("sessions_created_total = %d", got)
	}
	if got := scrapeCounter(t, client, ts.URL, "floorpland_sessions_closed_total"); got != 1 {
		t.Fatalf("sessions_closed_total = %d", got)
	}
	if got := scrapeCounter(t, client, ts.URL, "floorpland_session_events_total"); got != 3 {
		t.Fatalf("session_events_total = %d", got)
	}
	if got := scrapeCounter(t, client, ts.URL, "floorpland_sessions_live"); got != 0 {
		t.Fatalf("sessions_live = %d", got)
	}
}

// TestSessionWorkloadOverHTTP replays a generated workload through the
// events endpoint in batches — defragmentation cycles included — and
// expects zero corrupted frames and a flight record per batch.
func TestSessionWorkloadOverHTTP(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	client := ts.Client()

	info := createSession(t, client, ts.URL, CreateSessionRequest{
		Device:         "k160t",
		Engine:         "constructive",
		FragThreshold:  0.3,
		DefragCooldown: 4,
	})

	workload := session.GenerateWorkload(session.WorkloadConfig{
		Seed:      11,
		Events:    120,
		Intensity: 0.6,
		Device:    device.Kintex7K160T(),
	})
	const batch = 20
	batches := 0
	for at := 0; at < len(workload); at += batch {
		end := min(at+batch, len(workload))
		var events SessionEventsResponse
		code := sessionPost(t, client, ts.URL+"/v1/sessions/"+info.ID+"/events",
			SessionEventsRequest{Events: workload[at:end]}, &events)
		if code != http.StatusOK {
			t.Fatalf("batch at %d: HTTP %d", at, code)
		}
		if len(events.Results) != end-at {
			t.Fatalf("batch at %d: %d results, want %d", at, len(events.Results), end-at)
		}
		batches++
	}

	var snap SessionInfo
	if code := sessionGet(t, client, ts.URL+"/v1/sessions/"+info.ID, &snap); code != http.StatusOK {
		t.Fatalf("get session: HTTP %d", code)
	}
	st := snap.Snapshot.Stats
	if st.Events != len(workload) || st.Placed == 0 {
		t.Fatalf("session stats wrong after replay: %+v", st)
	}
	if st.CorruptedFrames != 0 {
		t.Fatalf("%d corrupted frames", st.CorruptedFrames)
	}
	if got := scrapeCounter(t, client, ts.URL, "floorpland_session_events_total"); got != int64(len(workload)) {
		t.Fatalf("session_events_total = %d, want %d", got, len(workload))
	}
	if got := scrapeCounter(t, client, ts.URL, "floorpland_session_corrupted_frames_total"); got != 0 {
		t.Fatalf("session_corrupted_frames_total = %d", got)
	}

	// One flight record per batch, keyed by the session id.
	recorded := 0
	for _, rec := range s.FlightRecorder().Last(batches + 16) {
		if rec.Engine == "session" && rec.Key == info.ID {
			recorded++
			if rec.Outcome != "ok" {
				t.Fatalf("session flight record not ok: %+v", rec)
			}
		}
	}
	if recorded != batches {
		t.Fatalf("%d session flight records, want %d", recorded, batches)
	}
}

// TestSessionConcurrentBatches hammers one session from several
// goroutines (run under -race in CI): every event must be applied
// exactly once, whatever the interleaving.
func TestSessionConcurrentBatches(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	client := ts.Client()
	info := createSession(t, client, ts.URL, CreateSessionRequest{Device: "k160t", FragThreshold: -1})

	const workers = 4
	const rounds = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				name := fmt.Sprintf("m-%d-%d", w, i)
				code := sessionPost(t, client, ts.URL+"/v1/sessions/"+info.ID+"/events", SessionEventsRequest{
					Events: []session.Event{
						{Kind: session.Arrival, Name: name, Req: device.Requirements{device.ClassCLB: 6}},
						{Kind: session.Departure, Name: name},
					},
				}, nil)
				if code != http.StatusOK {
					t.Errorf("worker %d round %d: HTTP %d", w, i, code)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	var snap SessionInfo
	if code := sessionGet(t, client, ts.URL+"/v1/sessions/"+info.ID, &snap); code != http.StatusOK {
		t.Fatalf("get session: HTTP %d", code)
	}
	st := snap.Snapshot.Stats
	if st.Events != workers*rounds*2 || len(snap.Snapshot.Live) != 0 {
		t.Fatalf("after concurrent batches: %+v live=%d", st, len(snap.Snapshot.Live))
	}
}

// TestSessionLimitAndTTL pins the registry bounds: the capacity answers
// 429, and an idle session past the TTL is lazily reclaimed.
func TestSessionLimitAndTTL(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxSessions: 2, SessionTTL: 50 * time.Millisecond})
	client := ts.Client()

	a := createSession(t, client, ts.URL, CreateSessionRequest{Device: "k160t"})
	createSession(t, client, ts.URL, CreateSessionRequest{Device: "fx70t"})
	if code := sessionPost(t, client, ts.URL+"/v1/sessions", CreateSessionRequest{Device: "k160t"}, nil); code != http.StatusTooManyRequests {
		t.Fatalf("third create: HTTP %d, want 429", code)
	}

	time.Sleep(80 * time.Millisecond)
	// Both sessions idled past the TTL: the next create evicts them.
	createSession(t, client, ts.URL, CreateSessionRequest{Device: "k160t"})
	if code := sessionGet(t, client, ts.URL+"/v1/sessions/"+a.ID, nil); code != http.StatusNotFound {
		t.Fatalf("expired session still served: HTTP %d", code)
	}
	if got := scrapeCounter(t, client, ts.URL, "floorpland_sessions_expired_total"); got != 2 {
		t.Fatalf("sessions_expired_total = %d, want 2", got)
	}
	if got := scrapeCounter(t, client, ts.URL, "floorpland_sessions_live"); got != 1 {
		t.Fatalf("sessions_live = %d, want 1", got)
	}
}

// TestSessionRequestValidation sweeps the error surface: bad device,
// bad engine, unknown id, malformed batches, wrong methods.
func TestSessionRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	client := ts.Client()
	info := createSession(t, client, ts.URL, CreateSessionRequest{Device: "k160t"})

	if code := sessionPost(t, client, ts.URL+"/v1/sessions", CreateSessionRequest{Device: "zynq"}, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown device: HTTP %d", code)
	}
	if code := sessionPost(t, client, ts.URL+"/v1/sessions", CreateSessionRequest{Device: "k160t", Engine: "nope"}, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown engine: HTTP %d", code)
	}
	if code := sessionGet(t, client, ts.URL+"/v1/sessions/deadbeef", nil); code != http.StatusNotFound {
		t.Fatalf("unknown id: HTTP %d", code)
	}
	if code := sessionPost(t, client, ts.URL+"/v1/sessions/"+info.ID+"/events", SessionEventsRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch: HTTP %d", code)
	}
	// A malformed event mid-batch answers 400 but keeps the applied
	// prefix: sessions are stateful.
	code := sessionPost(t, client, ts.URL+"/v1/sessions/"+info.ID+"/events", SessionEventsRequest{
		Events: []session.Event{
			{Kind: session.Arrival, Name: "ok", Req: device.Requirements{device.ClassCLB: 4}},
			{Kind: session.Arrival, Name: ""}, // malformed: no name
		},
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("malformed event: HTTP %d", code)
	}
	var snap SessionInfo
	if code := sessionGet(t, client, ts.URL+"/v1/sessions/"+info.ID, &snap); code != http.StatusOK {
		t.Fatalf("get session: HTTP %d", code)
	}
	if len(snap.Snapshot.Live) != 1 || snap.Snapshot.Live[0].Name != "ok" {
		t.Fatalf("prefix not preserved: %+v", snap.Snapshot.Live)
	}

	resp, err := client.Head(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("HEAD collection: HTTP %d", resp.StatusCode)
	}
	if code := sessionGet(t, client, ts.URL+"/v1/sessions/"+info.ID+"/bogus", nil); code != http.StatusNotFound {
		t.Fatalf("unknown subresource: HTTP %d", code)
	}
}

// TestSessionClassKeyCanonicalization pins the wire-format leniency:
// JSON clients writing lowercase resource-class keys ({"clb": 40}) get
// CLB tiles, not a silent unplaceable-class rejection. Unknown classes
// still pass through and reject.
func TestSessionClassKeyCanonicalization(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	client := ts.Client()
	info := createSession(t, client, ts.URL, CreateSessionRequest{Device: "fx70t"})

	body := bytes.NewReader([]byte(`{"events":[
		{"kind":"arrival","name":"lower","req":{"clb":40,"bram":1}},
		{"kind":"arrival","name":"mixed","req":{"Dsp":1,"CLB":8}},
		{"kind":"arrival","name":"alien","req":{"warpcore":1}}]}`))
	resp, err := client.Post(ts.URL+"/v1/sessions/"+info.ID+"/events", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events SessionEventsResponse
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(events.Results) != 3 {
		t.Fatalf("HTTP %d with %d results, want 200 with 3", resp.StatusCode, len(events.Results))
	}
	for i, name := range []string{"lower", "mixed"} {
		if !events.Results[i].Placed || events.Results[i].Rejected {
			t.Fatalf("%s arrival not placed: %+v", name, events.Results[i])
		}
	}
	if !events.Results[2].Rejected {
		t.Fatalf("unknown-class arrival should reject, got %+v", events.Results[2])
	}
}
