package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/diag"
	"repro/internal/flight"
	"repro/internal/obs"
	"repro/internal/slo"
	"repro/internal/telemetry"
)

// triggerDiag inspects one finished (non-cached) solve for anomaly
// bundle triggers: recovered panics, validation-rejected solutions and
// contract-breaching budget overruns each snapshot a diagnostic bundle
// (rate-limited; see diag.Bundler).
func (s *Server) triggerDiag(frec flight.Record, ev telemetry.Event) {
	if s.bundler == nil || frec.Cached {
		return
	}
	note := fmt.Sprintf("engine %s seq %d digest %s ldig %s",
		frec.Engine, frec.Seq, frec.RequestDigest, frec.LabelDigest)
	switch frec.Outcome {
	case string(obs.OutcomePanic):
		s.bundler.Trigger("panic", note)
	case string(obs.OutcomeInvalid):
		s.bundler.Trigger("invalid-solution", note)
	default:
		if ev.BudgetOverrunMS > 0 {
			s.bundler.Trigger("budget-overrun",
				fmt.Sprintf("%s overrun %.0fms past budget+epsilon", note, ev.BudgetOverrunMS))
		}
	}
}

// diagSLOState is the slo.json artifact shape.
type diagSLOState struct {
	EvaluatedAt time.Time    `json:"evaluated_at"`
	Firing      []string     `json:"firing"`
	Objectives  []slo.Status `json:"objectives"`
}

// diagArtifacts assembles the server-state files a diagnostic bundle
// carries beyond the runtime dumps: flight ring, wide-event tail, SLO
// and breaker state, the full metrics exposition, and (when the
// continuous profiler runs) its attribution stats and latest raw
// profile.
func (s *Server) diagArtifacts() []diag.Artifact {
	arts := []diag.Artifact{
		{Name: "flight.json", Write: s.flight.WriteJSON},
		{Name: "events.json", Write: func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(DebugEventsResponse{
				Stats:  s.events.Stats(),
				Events: s.events.Tail(0),
			})
		}},
		{Name: "slo.json", Write: func(w io.Writer) error {
			// Evaluate advances the edge-triggered alert state; a nested
			// slo-alert trigger is absorbed by the bundler's rate limit,
			// which the running capture has already reserved.
			st := diagSLOState{
				EvaluatedAt: time.Now(),
				Objectives:  s.slos.Evaluate(),
				Firing:      s.slos.Firing(),
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(st)
		}},
		{Name: "metrics.prom", Write: func(w io.Writer) error {
			_, err := io.WriteString(w, s.metrics.render())
			return err
		}},
	}
	if s.breakers != nil {
		arts = append(arts, diag.Artifact{Name: "breakers.json", Write: func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(s.breakers.Snapshot())
		}})
	}
	if s.sampler != nil {
		arts = append(arts, diag.Artifact{Name: "profile_stats.json", Write: func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(s.sampler.Stats())
		}})
		if ring := s.sampler.LatestCPUProfile(); ring != nil {
			arts = append(arts, diag.Artifact{Name: "cpu_ring.pprof", Write: func(w io.Writer) error {
				_, err := w.Write(ring)
				return err
			}})
		}
	}
	return arts
}

// CaptureDiagBundle captures a diagnostic bundle on demand (the daemon's
// SIGUSR2 handler) and returns the written file's path. It requires a
// configured DiagDir — unlike /debug/bundle there is nowhere else to
// put the bytes.
func (s *Server) CaptureDiagBundle(note string) (string, error) {
	if s.cfg.DiagDir == "" {
		return "", errors.New("server: diagnostic bundles need a configured diag dir")
	}
	_, name, err := s.bundler.Capture("signal", note)
	if err != nil {
		return "", err
	}
	return filepath.Join(s.cfg.DiagDir, name), nil
}

// handleDebugBundle serves GET /debug/bundle: a synchronous on-demand
// bundle capture, streamed back as the tar.gz (and persisted to the
// diag dir when one is configured). floorplanctl diag is the CLI front
// end for this endpoint.
func (s *Server) handleDebugBundle(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	note := "requested via /debug/bundle"
	if id := requestID(r.Context()); id != "" {
		note += " request_id " + id
	}
	data, name, err := s.bundler.Capture("manual", note)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "bundle capture failed: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/gzip")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", name))
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}
