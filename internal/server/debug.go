package server

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/flight"
	"repro/internal/slo"
	"repro/internal/telemetry"
)

// DebugSolvesResponse is the GET /debug/solves reply: the most recent
// solve records (newest first, traces stripped for size — fetch
// /debug/solves/{seq} for one record's full trace) plus the per-engine
// distribution summaries.
type DebugSolvesResponse struct {
	// Total counts solve records ever appended; Capacity is the ring
	// size. Records holds min(n, held) most-recent entries.
	Total    int64           `json:"total"`
	Capacity int             `json:"capacity"`
	Records  []flight.Record `json:"records"`
	// Engines summarizes each engine's latency/work/incumbent-time
	// distributions (the same data behind the /metrics histograms).
	Engines map[string]EngineDistSummary `json:"engines,omitempty"`
}

// defaultDebugSolves bounds the list reply when no ?n= is given.
const defaultDebugSolves = 50

// handleDebugSolves serves GET /debug/solves?n=: the recent solve list.
func (s *Server) handleDebugSolves(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	n := defaultDebugSolves
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 {
			s.writeError(w, http.StatusBadRequest, "n must be a positive integer")
			return
		}
		n = v
	}
	records := s.flight.Last(n)
	for i := range records {
		records[i].Trace = nil // the list stays light; Get serves the trace
	}
	s.writeJSON(w, http.StatusOK, DebugSolvesResponse{
		Total:    s.flight.Total(),
		Capacity: s.flight.Cap(),
		Records:  records,
		Engines:  s.metrics.engineSummaries(),
	})
}

// handleDebugSolve serves GET /debug/solves/{seq}: one full record,
// trace included.
func (s *Server) handleDebugSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/debug/solves/")
	seq, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || seq <= 0 {
		s.writeError(w, http.StatusBadRequest, "sequence must be a positive integer")
		return
	}
	rec, ok := s.flight.Get(seq)
	if !ok {
		s.writeError(w, http.StatusNotFound, "record not in the ring (evicted or never recorded)")
		return
	}
	s.writeJSON(w, http.StatusOK, rec)
}

// DebugEventsResponse is the GET /debug/events reply: the exporter's
// pipeline counters plus the most recent kept wide events (newest
// first). The tail holds only events that survived sampling — the same
// set a configured sink receives.
type DebugEventsResponse struct {
	Stats  telemetry.Stats   `json:"stats"`
	Events []telemetry.Event `json:"events"`
}

// handleDebugEvents serves GET /debug/events?n=&kind=&outcome=: the
// kept wide-event tail, optionally filtered by event kind ("solve",
// "session") and/or outcome ("panic", "no_solution", ...). Filters
// scan the whole retained tail and return the newest n matches.
func (s *Server) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	n := defaultDebugSolves
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 {
			s.writeError(w, http.StatusBadRequest, "n must be a positive integer")
			return
		}
		n = v
	}
	kind := r.URL.Query().Get("kind")
	outcome := r.URL.Query().Get("outcome")
	var events []telemetry.Event
	if kind == "" && outcome == "" {
		events = s.events.Tail(n)
	} else {
		events = make([]telemetry.Event, 0, n)
		for _, ev := range s.events.Tail(0) { // newest first
			if kind != "" && ev.Kind != kind {
				continue
			}
			if outcome != "" && ev.Outcome != outcome {
				continue
			}
			events = append(events, ev)
			if len(events) == n {
				break
			}
		}
	}
	s.writeJSON(w, http.StatusOK, DebugEventsResponse{
		Stats:  s.events.Stats(),
		Events: events,
	})
}

// DebugSLOResponse is the GET /debug/slo reply: every objective's
// compliance, error budget, burn rates and alert states at evaluation
// time.
type DebugSLOResponse struct {
	EvaluatedAt time.Time    `json:"evaluated_at"`
	Objectives  []slo.Status `json:"objectives"`
}

// handleDebugSLO serves GET /debug/slo. Evaluation drives the tracker's
// edge-triggered alert hook, so polling this endpoint (like scraping
// /metrics) is what turns burn-rate transitions into log lines.
func (s *Server) handleDebugSLO(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.writeJSON(w, http.StatusOK, DebugSLOResponse{
		EvaluatedAt: time.Now(),
		Objectives:  s.slos.Evaluate(),
	})
}
