package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/session"
	"repro/internal/slo"
)

// syncBuffer is a race-safe log capture: handlers on several goroutines
// write, the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// postSolveWithID is postSolve with a client-supplied X-Request-ID.
func postSolveWithID(t *testing.T, client *http.Client, url, id string, req SolveRequest) (*http.Response, SolveResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	httpReq, err := http.NewRequest(http.MethodPost, url+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set("X-Request-ID", id)
	httpResp, err := client.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var resp SolveResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatalf("decoding response (HTTP %d): %v", httpResp.StatusCode, err)
	}
	return httpResp, resp
}

// TestDebugEventsEndToEnd drives solves (fresh and cached) and a session
// batch through the daemon with sampling off (keep everything) and
// checks /debug/events exposes the full wide-event story: pipeline
// counters, request-ID propagation, budget context on solve events, and
// defrag parity (frag before/after, move counts) on session events.
func TestDebugEventsEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueSize: 16, EventSampleRate: 1})
	client := ts.Client()

	httpResp, resp := postSolveWithID(t, client, ts.URL, "bench-client-1", SolveRequest{
		Problem: testProblem(t, 0), Engine: "exact", TimeLimitMS: 30_000,
	})
	if httpResp.StatusCode != http.StatusOK || resp.Status != "ok" {
		t.Fatalf("solve: HTTP %d status %q", httpResp.StatusCode, resp.Status)
	}
	if got := httpResp.Header.Get("X-Request-ID"); got != "bench-client-1" {
		t.Fatalf("clean client request id not echoed: %q", got)
	}
	// Identical request: a cache hit must emit its own event.
	if code, resp := postSolve(t, client, ts.URL, SolveRequest{
		Problem: testProblem(t, 0), Engine: "exact", TimeLimitMS: 30_000,
	}); code != http.StatusOK || !resp.Cached {
		t.Fatalf("follow-up: HTTP %d cached=%v", code, resp.Cached)
	}

	info := createSession(t, client, ts.URL, CreateSessionRequest{Device: "k160t"})
	var batch SessionEventsResponse
	if code := sessionPost(t, client, ts.URL+"/v1/sessions/"+info.ID+"/events", SessionEventsRequest{
		Events: []session.Event{
			{Kind: session.Arrival, Name: "a", Req: device.Requirements{device.ClassCLB: 8}, Mode: 1},
			{Kind: session.Arrival, Name: "b", Req: device.Requirements{device.ClassCLB: 12, device.ClassBRAM: 1}, Mode: 2},
			{Kind: session.Departure, Name: "a"},
		},
	}, &batch); code != http.StatusOK {
		t.Fatalf("session batch: HTTP %d", code)
	}

	s.events.Sync()
	var out DebugEventsResponse
	if code := getJSON(t, client, ts.URL+"/debug/events?n=50", &out); code != http.StatusOK {
		t.Fatalf("/debug/events: HTTP %d", code)
	}
	if out.Stats.Emitted < 3 || out.Stats.Kept < 3 {
		t.Fatalf("pipeline stats too low: %+v", out.Stats)
	}
	var fresh, cached, sess int
	for _, ev := range out.Events {
		if ev.Trace != nil {
			t.Errorf("event %d carries a trace; events must stay lean", ev.Seq)
		}
		switch ev.Kind {
		case "solve":
			if ev.Endpoint != "/v1/solve" || ev.Engine != "exact" {
				t.Errorf("solve event mislabeled: %+v", ev)
			}
			if ev.BudgetMS != 30_000 {
				t.Errorf("solve event budget = %v, want 30000", ev.BudgetMS)
			}
			if ev.Cached {
				cached++
			} else {
				fresh++
				if ev.RequestID != "bench-client-1" {
					t.Errorf("fresh solve event request id = %q, want the client's", ev.RequestID)
				}
			}
		case "session":
			sess++
			if ev.Endpoint != "/v1/sessions/events" || ev.RequestID == "" {
				t.Errorf("session event mislabeled: %+v", ev)
			}
			st := ev.Session
			if st == nil {
				t.Fatalf("session event carries no session stats: %+v", ev)
			}
			if st.SessionID != info.ID || st.Events != 3 {
				t.Errorf("session stats = %+v, want id %s over 3 events", st, info.ID)
			}
			if st.FragBefore < 0 || st.FragAfter <= 0 {
				t.Errorf("frag before/after not captured: %+v", st)
			}
		default:
			t.Errorf("unknown event kind %q", ev.Kind)
		}
	}
	if fresh != 1 || cached != 1 || sess != 1 {
		t.Fatalf("event mix fresh/cached/session = %d/%d/%d, want 1/1/1", fresh, cached, sess)
	}

	// A hostile request ID (embedded spaces would corrupt log lines) is
	// discarded: the response carries a freshly minted hex ID instead.
	httpResp, _ = postSolveWithID(t, client, ts.URL, "evil injected id", SolveRequest{
		Problem: testProblem(t, 1), Engine: "exact", TimeLimitMS: 30_000,
	})
	if got := httpResp.Header.Get("X-Request-ID"); strings.Contains(got, "evil") || len(got) != 16 {
		t.Fatalf("hostile request id survived sanitization: %q", got)
	}
}

// TestSLOBurnAlertOverHTTP is the chaos-soak acceptance path: a fully
// failing engine drives the availability objective's burn rate far past
// the fast rule, /debug/slo reports the alert firing with the budget
// overspent, and the transition lands in the log.
func TestSLOBurnAlertOverHTTP(t *testing.T) {
	var logs syncBuffer
	_, ts := newTestServer(t, Config{
		Workers:          2,
		QueueSize:        64,
		BreakerThreshold: -1,
		Logger:           slog.New(slog.NewTextHandler(&logs, nil)),
		Solve: func(context.Context, *core.Problem, string, core.SolveOptions) (*core.Solution, error) {
			return nil, errors.New("engine exploded")
		},
	})

	const bad = 25
	for i := 0; i < bad; i++ {
		code, _ := postSolve(t, ts.Client(), ts.URL, SolveRequest{
			Problem: testProblem(t, 0), Engine: "exact", Seed: int64(i), TimeLimitMS: 30_000,
		})
		if code != http.StatusInternalServerError {
			t.Fatalf("failing solve %d: HTTP %d, want 500", i, code)
		}
	}

	var out DebugSLOResponse
	if code := getJSON(t, ts.Client(), ts.URL+"/debug/slo", &out); code != http.StatusOK {
		t.Fatalf("/debug/slo: HTTP %d", code)
	}
	avail := findStatus(t, out, "solve-availability")
	if avail.Total < bad || avail.Good != 0 {
		t.Fatalf("availability counted %d/%d good/total, want 0/%d+", avail.Good, avail.Total, bad)
	}
	if avail.ErrorBudgetRemaining >= 0 {
		t.Fatalf("budget remaining %v after a total outage, want negative", avail.ErrorBudgetRemaining)
	}
	var fastFiring bool
	for _, a := range avail.Alerts {
		if a.Rule == "fast" && a.Firing {
			fastFiring = true
			if a.ShortBurn < a.Threshold || a.LongBurn < a.Threshold {
				t.Errorf("fast alert firing below threshold: %+v", a)
			}
		}
	}
	if !fastFiring {
		t.Fatalf("fast burn alert not firing after a total outage: %+v", avail.Alerts)
	}
	if !strings.Contains(logs.String(), "slo alert firing") {
		t.Fatal("burn-rate transition did not reach the log")
	}

	// The gauges on /metrics tell the same story.
	if v := scrapeGauge(t, ts.Client(), ts.URL, `floorpland_slo_error_budget_remaining{slo="solve-availability"}`); v >= 0 {
		t.Fatalf("metrics budget gauge = %v, want negative", v)
	}
}

// TestSLOCleanSoakKeepsBudget is the burn alert's control arm: healthy
// traffic leaves every objective's budget untouched and nothing fires.
func TestSLOCleanSoakKeepsBudget(t *testing.T) {
	var logs syncBuffer
	_, ts := newTestServer(t, Config{
		Workers:   2,
		QueueSize: 64,
		Logger:    slog.New(slog.NewTextHandler(&logs, nil)),
	})
	for i := 0; i < 10; i++ {
		code, resp := postSolve(t, ts.Client(), ts.URL, SolveRequest{
			Problem: testProblem(t, i%3), Engine: "exact", TimeLimitMS: 30_000,
		})
		if code != http.StatusOK || resp.Status != "ok" {
			t.Fatalf("solve %d: HTTP %d status %q", i, code, resp.Status)
		}
	}
	var out DebugSLOResponse
	if code := getJSON(t, ts.Client(), ts.URL+"/debug/slo", &out); code != http.StatusOK {
		t.Fatalf("/debug/slo: HTTP %d", code)
	}
	for _, st := range out.Objectives {
		if st.Objective.Endpoint == "/v1/solve" && st.Total == 0 {
			t.Errorf("%s saw no traffic", st.Objective.Name)
		}
		if st.ErrorBudgetRemaining != 1 {
			t.Errorf("%s budget remaining = %v after a clean soak, want 1", st.Objective.Name, st.ErrorBudgetRemaining)
		}
		for _, a := range st.Alerts {
			if a.Firing {
				t.Errorf("%s/%s firing on healthy traffic", st.Objective.Name, a.Rule)
			}
		}
	}
	if strings.Contains(logs.String(), "slo alert firing") {
		t.Fatal("clean soak tripped a burn alert")
	}
}

// findStatus returns the named objective's status from a /debug/slo
// reply.
func findStatus(t *testing.T, out DebugSLOResponse, name string) slo.Status {
	t.Helper()
	for _, st := range out.Objectives {
		if st.Objective.Name == name {
			return st
		}
	}
	t.Fatalf("objective %s missing from /debug/slo: %+v", name, out.Objectives)
	return slo.Status{}
}

// scrapeGauge is scrapeCounter for float-valued samples.
func scrapeGauge(t testing.TB, client *http.Client, url, name string) float64 {
	t.Helper()
	httpResp, err := client.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(httpResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimSpace(rest), "%g", &v); err != nil {
				t.Fatalf("parsing %s: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestSanitizeRequestID pins the header-vetting rules: printable ASCII
// survives (truncated), anything with spaces, control bytes or
// multi-byte runes is discarded.
func TestSanitizeRequestID(t *testing.T) {
	long := strings.Repeat("a", 100)
	cases := []struct{ in, want string }{
		{"req-42", "req-42"},
		{"", ""},
		{"has space", ""},
		{"new\nline", ""},
		{"ctrl\x01byte", ""},
		{"héllo", ""},
		{long, long[:maxRequestIDLen]},
	}
	for _, tc := range cases {
		if got := sanitizeRequestID(tc.in); got != tc.want {
			t.Errorf("sanitizeRequestID(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
