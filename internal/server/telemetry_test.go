package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestSolveTraceEndToEnd runs a real solve through the daemon with
// "trace": true and asserts the response embeds the recorded telemetry:
// an ended engine span, work counters, and an incumbent trajectory whose
// last point matches the returned objective. A repeat of the same request
// must be served from the cache with the original trace intact, and a
// repeat without the flag must omit the trace (the flag is not part of
// the cache key).
func TestSolveTraceEndToEnd(t *testing.T) {
	s := New(Config{Workers: 1, DefaultTimeLimit: 20 * time.Second})
	t.Cleanup(func() { _ = s.Close(t.Context()) })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	req := SolveRequest{Problem: testProblem(t, 0), Engine: "exact", Trace: true}
	code, resp := postSolve(t, ts.Client(), ts.URL, req)
	if code != http.StatusOK || resp.Status != "ok" {
		t.Fatalf("solve: HTTP %d status %q (%s)", code, resp.Status, resp.Error)
	}
	if resp.Trace == nil {
		t.Fatal("trace requested but response has none")
	}
	var engineSpan bool
	for _, sp := range resp.Trace.Spans {
		if sp.Name == "exact" {
			engineSpan = true
			if sp.Outcome == "" {
				t.Error("engine span has no terminal outcome")
			}
		}
	}
	if !engineSpan {
		t.Errorf("trace has no span for the engine; spans: %+v", resp.Trace.Spans)
	}
	if resp.Trace.Counters["nodes"] == 0 {
		t.Errorf("trace counters show no search nodes: %v", resp.Trace.Counters)
	}
	if len(resp.Trace.Incumbents) == 0 {
		t.Fatal("trace has no incumbent trajectory")
	}
	last := resp.Trace.Incumbents[len(resp.Trace.Incumbents)-1]
	if resp.Objective == nil || last.Objective != *resp.Objective {
		t.Errorf("final incumbent %g != returned objective %v", last.Objective, resp.Objective)
	}

	code, cachedResp := postSolve(t, ts.Client(), ts.URL, req)
	if code != http.StatusOK || !cachedResp.Cached {
		t.Fatalf("repeat solve: HTTP %d cached=%v", code, cachedResp.Cached)
	}
	if cachedResp.Trace == nil || len(cachedResp.Trace.Incumbents) != len(resp.Trace.Incumbents) {
		t.Errorf("cached response lost the trace: %+v", cachedResp.Trace)
	}

	req.Trace = false
	code, plain := postSolve(t, ts.Client(), ts.URL, req)
	if code != http.StatusOK || !plain.Cached {
		t.Fatalf("plain repeat: HTTP %d cached=%v", code, plain.Cached)
	}
	if plain.Trace != nil {
		t.Error("trace embedded without the request asking for it")
	}
}

// TestSolveTelemetryOnMetrics asserts the probe counters a real solve
// produces surface on /metrics under the requested engine's label, along
// with the process-wide candidate-cache counters.
func TestSolveTelemetryOnMetrics(t *testing.T) {
	s := New(Config{Workers: 1, DefaultTimeLimit: 20 * time.Second})
	t.Cleanup(func() { _ = s.Close(t.Context()) })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	code, resp := postSolve(t, ts.Client(), ts.URL, SolveRequest{Problem: testProblem(t, 1), Engine: "exact"})
	if code != http.StatusOK || resp.Status != "ok" {
		t.Fatalf("solve: HTTP %d status %q (%s)", code, resp.Status, resp.Error)
	}

	body := scrapeMetrics(t, ts)
	for _, want := range []string{
		`floorpland_engine_nodes_total{engine="exact"}`,
		`floorpland_engine_pivots_total{engine="exact"}`,
		`floorpland_engine_incumbents_total{engine="exact"}`,
		"floorpland_candidate_cache_hits_total",
		"floorpland_candidate_cache_misses_total",
		`floorpland_build_info{go_version=`,
		"floorpland_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if nodes := scrapeCounter(t, ts.Client(), ts.URL, `floorpland_engine_nodes_total{engine="exact"}`); nodes <= 0 {
		t.Errorf("engine nodes counter is %d after a real solve, want > 0", nodes)
	}
	if inc := scrapeCounter(t, ts.Client(), ts.URL, `floorpland_engine_incumbents_total{engine="exact"}`); inc <= 0 {
		t.Errorf("engine incumbents counter is %d after a real solve, want > 0", inc)
	}
}

// TestRequestIDPropagation asserts every response carries X-Request-ID
// and that a caller-provided ID is echoed back rather than replaced.
func TestRequestIDPropagation(t *testing.T) {
	s := New(Config{Workers: 1, Solve: nil})
	t.Cleanup(func() { _ = s.Close(t.Context()) })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); id == "" {
		t.Error("response has no X-Request-ID")
	}

	httpReq, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("X-Request-ID", "caller-chosen-id")
	resp, err = ts.Client().Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); id != "caller-chosen-id" {
		t.Errorf("caller-provided request ID replaced with %q", id)
	}
}

// scrapeMetrics fetches the full /metrics body.
func scrapeMetrics(t testing.TB, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
