package server

import (
	"context"

	floorplanner "repro"
	"repro/internal/core"
	"repro/internal/portfolio"
)

// defaultSolve dispatches to the public floorplanner entry point, so the
// daemon serves exactly what the library computes — including solution
// validation against the problem.
func defaultSolve(ctx context.Context, p *core.Problem, engine string, opts core.SolveOptions) (*core.Solution, error) {
	return floorplanner.Solve(ctx, p, floorplanner.Options{
		Engine:    engine,
		TimeLimit: opts.TimeLimit,
		Seed:      opts.Seed,
		Workers:   opts.Workers,
		Probe:     opts.Probe,
	})
}

// defaultFallbackSolve dispatches to the "fallback" meta-engine with the
// server's configured degradation chain (empty = the library default:
// exact, milp-ho, constructive).
func defaultFallbackSolve(ctx context.Context, p *core.Problem, chain []string, opts core.SolveOptions) (*core.Solution, error) {
	return floorplanner.Solve(ctx, p, floorplanner.Options{
		Engine:    "fallback",
		Members:   chain,
		TimeLimit: opts.TimeLimit,
		Seed:      opts.Seed,
		Workers:   opts.Workers,
		Probe:     opts.Probe,
	})
}

// defaultEngineNames lists the engines the default solver accepts.
func defaultEngineNames() []string { return floorplanner.EngineNames() }

// defaultPortfolioStats exposes the process-wide portfolio race counters
// (per-member races, wins, failures, cumulative latency) that /metrics
// renders; portfolio engines built through the floorplanner facade all
// record into this shared recorder.
func defaultPortfolioStats() []portfolio.MemberStats { return portfolio.Shared().Snapshot() }
