package server

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

func entryFor(engine string) cacheEntry {
	return cacheEntry{sol: &core.Solution{Engine: engine}}
}

func TestLRUEvictsOldest(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", entryFor("a"))
	c.put("b", entryFor("b"))
	c.put("c", entryFor("c")) // evicts a
	if _, ok := c.get("a"); ok {
		t.Fatal("oldest entry not evicted")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("entry %s missing", k)
		}
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestLRUGetRefreshesRecency(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", entryFor("a"))
	c.put("b", entryFor("b"))
	c.get("a")                // a now most recent
	c.put("c", entryFor("c")) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("refreshed entry evicted instead of stale one")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently used entry evicted")
	}
}

func TestLRUPutUpdatesInPlace(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", entryFor("old"))
	c.put("a", entryFor("new"))
	e, ok := c.get("a")
	if !ok || e.sol.Engine != "new" {
		t.Fatalf("entry = %+v, want updated", e)
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
}

func TestFlightGroupRunsOnce(t *testing.T) {
	var g flightGroup
	var calls atomic.Int64
	release := make(chan struct{})
	const followers = 16

	var wg sync.WaitGroup
	leaders := atomic.Int64{}
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			entry, led, err := g.do(context.Background(), "k", func() cacheEntry {
				calls.Add(1)
				<-release
				return entryFor("shared")
			})
			if err != nil {
				t.Error(err)
				return
			}
			if led {
				leaders.Add(1)
			}
			if entry.sol == nil || entry.sol.Engine != "shared" {
				t.Errorf("entry = %+v, want shared", entry)
			}
		}()
	}
	// Give every goroutine a chance to join the flight before releasing.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	if n := leaders.Load(); n != 1 {
		t.Fatalf("%d leaders, want 1", n)
	}
}

func TestFlightGroupFollowerHonorsContext(t *testing.T) {
	var g flightGroup
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	go func() {
		g.do(context.Background(), "k", func() cacheEntry {
			close(started)
			<-release
			return cacheEntry{}
		})
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	begin := time.Now()
	_, _, err := g.do(ctx, "k", func() cacheEntry { return cacheEntry{} })
	if err == nil {
		t.Fatal("follower ignored its context")
	}
	if time.Since(begin) > time.Second {
		t.Fatal("follower did not return promptly on context end")
	}
}

func TestFlightGroupNewFlightAfterCompletion(t *testing.T) {
	var g flightGroup
	var calls atomic.Int64
	run := func() {
		_, _, err := g.do(context.Background(), "k", func() cacheEntry {
			calls.Add(1)
			return cacheEntry{}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	run()
	run()
	if n := calls.Load(); n != 2 {
		t.Fatalf("sequential calls deduplicated: fn ran %d times, want 2", n)
	}
}
