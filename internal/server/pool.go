package server

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"

	"repro/internal/core"
)

// Pool errors.
var (
	// errQueueFull reports backpressure: the queue has no room, the
	// caller should retry later (HTTP 429).
	errQueueFull = errors.New("server: solve queue is full")
	// errShuttingDown reports that the pool no longer accepts work or
	// that a queued task was canceled by shutdown.
	errShuttingDown = errors.New("server: shutting down")
)

// solveTask is one unit of pool work: run fn under ctx and publish the
// outcome on done.
type solveTask struct {
	ctx  context.Context
	fn   func(ctx context.Context) (*core.Solution, error)
	sol  *core.Solution
	err  error
	done chan struct{}
}

// workerPool runs solves on a fixed set of goroutines behind a bounded
// queue. Submission is non-blocking: when the queue is full the caller
// gets errQueueFull immediately (backpressure) instead of piling up.
//
// Shutdown semantics: close() stops admissions, lets in-flight solves
// drain, and fails queued-but-unstarted tasks with errShuttingDown.
type workerPool struct {
	tasks chan *solveTask
	stop  chan struct{}
	wg    sync.WaitGroup

	// onPanic, when set, observes a panic that escaped the task function's
	// own protection — the last-resort isolation keeping a worker alive.
	onPanic func(ctx context.Context, v any, stack []byte)

	mu     sync.Mutex
	closed bool
}

// newWorkerPool starts workers goroutines behind a queue of queueSize
// waiting slots.
func newWorkerPool(workers, queueSize int) *workerPool {
	if workers <= 0 {
		workers = 1
	}
	if queueSize < 0 {
		queueSize = 0
	}
	p := &workerPool{
		tasks: make(chan *solveTask, queueSize),
		stop:  make(chan struct{}),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *workerPool) worker() {
	defer p.wg.Done()
	for {
		// Check stop first: a stopping pool must cancel queued tasks,
		// not race the drain loop to start them.
		select {
		case <-p.stop:
			p.drainQueue()
			return
		default:
		}
		select {
		case t := <-p.tasks:
			p.run(t)
		case <-p.stop:
			p.drainQueue()
			return
		}
	}
}

// drainQueue cancels every still-queued task instead of running it.
func (p *workerPool) drainQueue() {
	for {
		select {
		case t := <-p.tasks:
			t.err = errShuttingDown
			close(t.done)
		default:
			return
		}
	}
}

// run executes one task, skipping the solve when the submitter's context
// already ended while the task sat in the queue. A panic escaping the
// task function fails the task instead of killing the worker: the guard
// layer recovers engine panics first, so anything landing here is a bug
// in the serving path itself — worth a log line, never worth the daemon.
func (p *workerPool) run(t *solveTask) {
	defer close(t.done)
	defer func() {
		if r := recover(); r != nil {
			t.sol, t.err = nil, fmt.Errorf("server: solve panicked: %v", r)
			if p.onPanic != nil {
				p.onPanic(t.ctx, r, debug.Stack())
			}
		}
	}()
	if err := t.ctx.Err(); err != nil {
		t.err = err
		return
	}
	t.sol, t.err = t.fn(t.ctx)
}

// submit enqueues fn and returns the task handle, or errQueueFull /
// errShuttingDown without blocking.
func (p *workerPool) submit(ctx context.Context, fn func(ctx context.Context) (*core.Solution, error)) (*solveTask, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errShuttingDown
	}
	p.mu.Unlock()
	t := &solveTask{ctx: ctx, fn: fn, done: make(chan struct{})}
	select {
	case p.tasks <- t:
		return t, nil
	default:
		return nil, errQueueFull
	}
}

// wait blocks until the task finishes or ctx ends. A task abandoned by
// its waiter still runs to completion on the worker.
func (t *solveTask) wait(ctx context.Context) (*core.Solution, error) {
	select {
	case <-t.done:
		return t.sol, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// queueDepth returns the number of queued-but-unstarted tasks.
func (p *workerPool) queueDepth() int { return len(p.tasks) }

// close stops admissions and waits — bounded by ctx — for the workers to
// drain in-flight solves and cancel queued ones.
func (p *workerPool) close(ctx context.Context) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.stop)

	drained := make(chan struct{})
	go func() {
		p.wg.Wait()
		// A submit racing with close can slip a task into the queue
		// after the workers exited; fail it rather than strand it.
		p.drainQueue()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
