package server

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/core"
)

// FuzzSolveRequestDecode hardens the daemon's request path: decoding a
// POST /v1/solve body, validating its problem, and deriving the cache
// key must never panic, and the key must be deterministic.
func FuzzSolveRequestDecode(f *testing.F) {
	seedReq := func(req SolveRequest) {
		data, err := json.Marshal(req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	seedReq(SolveRequest{Problem: testProblem(f, 0), Engine: "exact", TimeLimitMS: 1000})
	seedReq(SolveRequest{Problem: testProblem(f, 1), Engine: "fallback", Seed: 7, Workers: 2})
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"problem":null}`))
	f.Add([]byte(`{"problem":{},"time_limit_ms":-5}`))
	f.Add([]byte(`{"problem":{"nets":[{"weight":null}]}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req SolveRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		if req.Problem == nil {
			return
		}
		if err := req.Problem.Validate(); err != nil {
			return
		}
		opts := core.SolveOptions{
			TimeLimit: time.Duration(req.TimeLimitMS) * time.Millisecond,
			Seed:      req.Seed,
			Workers:   req.Workers,
		}.Normalized()
		k1, err := problemKey(req.Problem, req.Engine, opts)
		if err != nil {
			return
		}
		k2, err := problemKey(req.Problem, req.Engine, opts)
		if err != nil || k1 != k2 {
			t.Fatalf("cache key not deterministic: %q vs %q (err %v)", k1, k2, err)
		}
	})
}
