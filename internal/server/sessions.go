// Sessions: the daemon's online-placement surface. Where /v1/solve
// answers one offline instance, a session is a stateful
// session.Manager held server-side — arrivals, departures and
// defragmentation cycles applied over a live device across many
// requests.
//
//	POST   /v1/sessions              create a session
//	GET    /v1/sessions              list live sessions
//	GET    /v1/sessions/{id}         session snapshot
//	POST   /v1/sessions/{id}/events  apply an event batch
//	DELETE /v1/sessions/{id}         close a session
//
// Sessions live in a bounded registry with lazy TTL eviction (touched
// on every use), so an abandoned session costs nothing once it ages out
// and a runaway client cannot accumulate unbounded device state. With
// Config.SessionDir set, sessions are also durable: every applied event
// is WAL-logged before its result is acknowledged, snapshots compact
// the log, and a restarted daemon replays each session back
// (recovery.go) — eviction and DELETE purge the durable files so a dead
// session cannot be resurrected.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	floorplanner "repro"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/diag"
	"repro/internal/flight"
	"repro/internal/session"
	"repro/internal/slo"
	"repro/internal/telemetry"
)

// liveSession is one registry entry: the manager plus the bookkeeping
// the list/TTL machinery needs.
type liveSession struct {
	id      string
	device  string
	engine  string
	created time.Time
	mgr     *session.Manager
}

// sessionRegistry holds the daemon's live sessions: a bounded map with
// lazy TTL eviction. Eviction happens on access (create, lookup, list)
// rather than on a timer, so the registry needs no background
// goroutine and cannot leak one.
type sessionRegistry struct {
	mu       sync.Mutex
	capacity int
	ttl      time.Duration
	byID     map[string]*liveSession
	lastUsed map[string]time.Time
	// onExpire, when set, observes each TTL eviction (metrics hook plus
	// durable-state purge).
	onExpire func(*liveSession)
}

func newSessionRegistry(capacity int, ttl time.Duration) *sessionRegistry {
	return &sessionRegistry{
		capacity: capacity,
		ttl:      ttl,
		byID:     map[string]*liveSession{},
		lastUsed: map[string]time.Time{},
	}
}

// evictExpiredLocked drops every session idle past the TTL. Callers
// hold r.mu.
func (r *sessionRegistry) evictExpiredLocked(now time.Time) {
	for id, used := range r.lastUsed {
		if now.Sub(used) > r.ttl {
			ls := r.byID[id]
			delete(r.byID, id)
			delete(r.lastUsed, id)
			if r.onExpire != nil && ls != nil {
				r.onExpire(ls)
			}
		}
	}
}

// errSessionLimit reports the registry is at capacity (HTTP 429).
var errSessionLimit = fmt.Errorf("server: session limit reached")

// add registers a new session, evicting idle ones first.
func (r *sessionRegistry) add(ls *liveSession) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	r.evictExpiredLocked(now)
	if len(r.byID) >= r.capacity {
		return errSessionLimit
	}
	r.byID[ls.id] = ls
	r.lastUsed[ls.id] = now
	return nil
}

// get returns the session and refreshes its TTL clock.
func (r *sessionRegistry) get(id string) (*liveSession, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	r.evictExpiredLocked(now)
	ls, ok := r.byID[id]
	if ok {
		r.lastUsed[id] = now
	}
	return ls, ok
}

// remove deletes the session, returning it when it was present (so the
// caller can purge its durable state).
func (r *sessionRegistry) remove(id string) (*liveSession, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ls, ok := r.byID[id]
	delete(r.byID, id)
	delete(r.lastUsed, id)
	return ls, ok
}

// list returns the live sessions ordered by creation time.
func (r *sessionRegistry) list() []*liveSession {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evictExpiredLocked(time.Now())
	out := make([]*liveSession, 0, len(r.byID))
	for _, ls := range r.byID {
		out = append(out, ls)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].created.Equal(out[j].created) {
			return out[i].created.Before(out[j].created)
		}
		return out[i].id < out[j].id
	})
	return out
}

// live counts the registered sessions (after lazy eviction); it backs
// the floorpland_sessions_live gauge.
func (r *sessionRegistry) live() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evictExpiredLocked(time.Now())
	return len(r.byID)
}

// CreateSessionRequest is the POST /v1/sessions body.
type CreateSessionRequest struct {
	// Device names the target FPGA model: "fx70t" or "k160t".
	Device string `json:"device"`
	// Engine names the fallback floorplanner used for arrivals greedy
	// placement cannot fit; empty disables the fallback.
	Engine string `json:"engine,omitempty"`
	// FragThreshold triggers defragmentation (0 = session default;
	// negative disables). Devices with forbidden blocks have a nonzero
	// fragmentation baseline — see session.DefaultFragThreshold.
	FragThreshold float64 `json:"frag_threshold,omitempty"`
	// DefragCooldown is the minimum events between defragmentation
	// attempts (0 = session default).
	DefragCooldown int `json:"defrag_cooldown,omitempty"`
	// SolveBudgetMS bounds each fallback solve in milliseconds
	// (0 = session default).
	SolveBudgetMS int64 `json:"solve_budget_ms,omitempty"`
}

// SessionInfo is the create/get reply: identity plus a full snapshot.
type SessionInfo struct {
	ID        string           `json:"id"`
	Device    string           `json:"device"`
	Engine    string           `json:"engine,omitempty"`
	CreatedAt time.Time        `json:"created_at"`
	Snapshot  session.Snapshot `json:"snapshot"`
}

// SessionSummary is one row of the GET /v1/sessions listing.
type SessionSummary struct {
	ID            string    `json:"id"`
	Device        string    `json:"device"`
	Engine        string    `json:"engine,omitempty"`
	CreatedAt     time.Time `json:"created_at"`
	Events        int       `json:"events"`
	Live          int       `json:"live"`
	Fragmentation float64   `json:"fragmentation"`
}

// SessionListResponse is the GET /v1/sessions reply.
type SessionListResponse struct {
	Sessions []SessionSummary `json:"sessions"`
}

// SessionEventsRequest is the POST /v1/sessions/{id}/events body: a
// batch applied in order.
type SessionEventsRequest struct {
	Events []session.Event `json:"events"`
}

// SessionEventsResponse reports what the batch did. Results align with
// the request's events. If an event is malformed the batch stops there
// with HTTP 400 and the already-applied prefix stays applied.
type SessionEventsResponse struct {
	ID            string                `json:"id"`
	Results       []session.EventResult `json:"results"`
	Fragmentation float64               `json:"fragmentation"`
	Occupancy     float64               `json:"occupancy"`
}

// sessionDevice resolves a device model name from a create request.
func sessionDevice(name string) (*device.Device, error) {
	switch strings.ToLower(name) {
	case "fx70t", "virtex5", "xc5vfx70t":
		return device.VirtexFX70T(), nil
	case "k160t", "kintex7", "xc7k160t":
		return device.Kintex7K160T(), nil
	default:
		return nil, fmt.Errorf("unknown device %q (want fx70t or k160t)", name)
	}
}

// handleSessions serves the collection: POST creates, GET lists.
func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.createSession(w, r)
	case http.MethodGet:
		s.listSessions(w)
	default:
		w.Header().Set("Allow", "GET, POST")
		s.writeError(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

func (s *Server) createSession(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	var req CreateSessionRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	dev, err := sessionDevice(req.Device)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var engine core.Engine
	if req.Engine != "" {
		engine, err = floorplanner.NewEngine(req.Engine)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	if req.SolveBudgetMS < 0 {
		s.writeError(w, http.StatusBadRequest, "solve_budget_ms must be non-negative")
		return
	}
	id := newRequestID()
	created := time.Now()
	cfg := session.Config{
		Device:         dev,
		Engine:         engine,
		FragThreshold:  req.FragThreshold,
		DefragCooldown: req.DefragCooldown,
		SolveBudget:    time.Duration(req.SolveBudgetMS) * time.Millisecond,
		SnapshotEvery:  s.cfg.SessionSnapshotEvery,
		Faults:         s.cfg.SessionFaults,
	}
	if s.cfg.SessionDir != "" {
		store, err := session.OpenStore(filepath.Join(s.cfg.SessionDir, id))
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, "opening session store: "+err.Error())
			return
		}
		cfg.Store = store
		// Meta records the raw request values (not the resolved
		// defaults), so a recovery re-applies exactly the same Config.
		cfg.Meta = session.Meta{
			ID:             id,
			Device:         dev.Name(),
			Engine:         req.Engine,
			FragThreshold:  req.FragThreshold,
			DefragCooldown: req.DefragCooldown,
			SolveBudgetMS:  req.SolveBudgetMS,
			CreatedAt:      created,
		}
	}
	mgr, err := session.New(cfg)
	if err != nil {
		if cfg.Store != nil {
			cfg.Store.Purge()
		}
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ls := &liveSession{
		id:      id,
		device:  dev.Name(),
		engine:  req.Engine,
		created: created,
		mgr:     mgr,
	}
	if err := s.sessions.add(ls); err != nil {
		_ = mgr.Discard()
		s.writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("session limit (%d) reached; close or let idle sessions expire", s.cfg.MaxSessions))
		return
	}
	s.metrics.sessionsCreated.Add(1)
	s.log.Info("session created",
		"request_id", requestID(r.Context()),
		"session_id", ls.id,
		"device", ls.device,
		"engine", ls.engine,
	)
	s.writeJSON(w, http.StatusCreated, sessionInfo(ls))
}

func (s *Server) listSessions(w http.ResponseWriter) {
	resp := SessionListResponse{Sessions: []SessionSummary{}}
	for _, ls := range s.sessions.list() {
		snap := ls.mgr.Snapshot()
		resp.Sessions = append(resp.Sessions, SessionSummary{
			ID:            ls.id,
			Device:        ls.device,
			Engine:        ls.engine,
			CreatedAt:     ls.created,
			Events:        snap.Stats.Events,
			Live:          len(snap.Live),
			Fragmentation: snap.Fragmentation,
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleSession serves one session: GET {id}, DELETE {id},
// POST {id}/events.
func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/sessions/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		s.writeError(w, http.StatusNotFound, "no session id in path")
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		s.getSession(w, id)
	case sub == "" && r.Method == http.MethodDelete:
		s.deleteSession(w, r, id)
	case sub == "events" && r.Method == http.MethodPost:
		s.applySessionEvents(w, r, id)
	case sub == "" || sub == "events":
		w.Header().Set("Allow", "GET, DELETE, POST")
		s.writeError(w, http.StatusMethodNotAllowed, "unsupported method for this session path")
	default:
		s.writeError(w, http.StatusNotFound, fmt.Sprintf("unknown session subresource %q", sub))
	}
}

func (s *Server) getSession(w http.ResponseWriter, id string) {
	ls, ok := s.sessions.get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, "no such session (closed or expired)")
		return
	}
	s.writeJSON(w, http.StatusOK, sessionInfo(ls))
}

func (s *Server) deleteSession(w http.ResponseWriter, r *http.Request, id string) {
	ls, ok := s.sessions.remove(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, "no such session (closed or expired)")
		return
	}
	// A closed session must not come back on restart: purge its WAL and
	// snapshot along with the registry entry.
	if err := ls.mgr.Discard(); err != nil {
		s.log.Error("discarding session state", "session_id", id, "err", err)
	}
	s.metrics.sessionsClosed.Add(1)
	s.log.Info("session closed",
		"request_id", requestID(r.Context()),
		"session_id", id,
	)
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "closed", "id": id})
}

func (s *Server) applySessionEvents(w http.ResponseWriter, r *http.Request, id string) {
	if s.closing.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	ls, ok := s.sessions.get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, "no such session (closed or expired)")
		return
	}
	var req SessionEventsRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	if len(req.Events) == 0 {
		s.writeError(w, http.StatusBadRequest, "request has no events")
		return
	}
	for i := range req.Events {
		req.Events[i].Req = canonicalizeRequirements(req.Events[i].Req)
	}

	started := time.Now()
	resp := SessionEventsResponse{ID: id, Results: make([]session.EventResult, 0, len(req.Events))}
	stats := flight.SessionStats{SessionID: id, FragBefore: ls.mgr.Fragmentation()}
	// Durability/fault work is accounted as batch deltas of the
	// manager's counters, so retries inside failed events count too.
	sBefore, rBefore := ls.mgr.Stats(), ls.mgr.ReconfigStats()
	closeDeltas := func() {
		sAfter, rAfter := ls.mgr.Stats(), ls.mgr.ReconfigStats()
		stats.WALRecords = sAfter.WALRecords - sBefore.WALRecords
		stats.Retries = rAfter.Retries - rBefore.Retries
		stats.Rollbacks = rAfter.Rollbacks - rBefore.Rollbacks
		s.metrics.sessionWALRecords.Add(int64(stats.WALRecords))
		s.metrics.sessionRetries.Add(int64(stats.Retries))
		s.metrics.sessionRollbacks.Add(int64(stats.Rollbacks))
	}
	// The batch runs under session goroutine labels, so CPU profiles
	// attribute placement/defrag work to the session pseudo-engine.
	failIdx, failErr := -1, error(nil)
	diag.Do(r.Context(), sessionLabels(r.Context(), id), func(context.Context) {
		for i, ev := range req.Events {
			res, err := ls.mgr.Apply(ev)
			if err != nil {
				failIdx, failErr = i, err
				return
			}
			resp.Results = append(resp.Results, *res)
			resp.Fragmentation = res.Fragmentation
			resp.Occupancy = res.Occupancy
			if res.Defrag != nil && res.Defrag.Executed {
				stats.Defrags++
				if res.Defrag.Schedule != nil {
					stats.Moves += res.Defrag.Schedule.Executed
					stats.CorruptedFrames += res.Defrag.Schedule.CorruptedFrames
				}
			}
		}
	})
	if failErr != nil {
		// Malformed event: the applied prefix stays applied — sessions
		// are stateful and moves already flowed through the config
		// memory — and the client learns exactly where the batch broke.
		s.metrics.sessionEvents.Add(int64(failIdx))
		stats.Events = failIdx
		closeDeltas()
		s.recordSessionFlight(r.Context(), ls, stats, time.Since(started), failErr)
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("event %d: %v", failIdx, failErr))
		return
	}
	s.metrics.sessionEvents.Add(int64(len(req.Events)))
	s.metrics.sessionDefrags.Add(int64(stats.Defrags))
	s.metrics.sessionCorrupted.Add(int64(stats.CorruptedFrames))
	stats.Events = len(req.Events)
	closeDeltas()
	s.recordSessionFlight(r.Context(), ls, stats, time.Since(started), nil)
	s.writeJSON(w, http.StatusOK, resp)
}

// canonicalClasses maps case-folded spellings of the standard resource
// classes to their canonical names, so JSON clients writing {"clb": 40}
// ask for CLB tiles instead of a class no device provides (which would
// silently reject every arrival as unplaceable).
var canonicalClasses = map[string]device.Class{
	"clb":  device.ClassCLB,
	"bram": device.ClassBRAM,
	"dsp":  device.ClassDSP,
	"io":   device.ClassIO,
}

// canonicalizeRequirements rewrites standard-class keys to their
// canonical spelling, summing duplicates; unknown classes pass through
// untouched (custom devices may define their own).
func canonicalizeRequirements(req device.Requirements) device.Requirements {
	if req == nil {
		return nil
	}
	out := make(device.Requirements, len(req))
	for class, n := range req {
		if canon, ok := canonicalClasses[strings.ToLower(string(class))]; ok {
			class = canon
		}
		out[class] += n
	}
	return out
}

// recordSessionFlight appends one event-batch record to the flight
// ring, keyed by session id under the pseudo-engine "session", so
// /debug/solves interleaves online batches with offline solves — then
// feeds the same record to the wide-event pipeline and the SLO tracker.
// stats carries the batch's defrag work (frag before/after, executed
// moves) so an exported session event is self-contained.
func (s *Server) recordSessionFlight(ctx context.Context, ls *liveSession, stats flight.SessionStats, elapsed time.Duration, err error) {
	frag := ls.mgr.Fragmentation()
	stats.FragAfter = frag
	rec := flight.Record{
		Key:        ls.id,
		Engine:     "session",
		Outcome:    "ok",
		Objective:  &frag,
		DurationMS: durationMS(elapsed),
		Session:    &stats,
	}
	rec.RequestDigest = fmt.Sprintf("session:%s:%d", ls.id, stats.Events)
	rec.LabelDigest = sessionLabels(ctx, ls.id).JoinDigest()
	if err != nil {
		rec.Outcome = "error"
		rec.Err = err.Error()
	}
	rec.Seq = s.recordFlight(rec)
	if stats.Rollbacks > 0 && s.bundler != nil {
		// A transactional defrag rollback means a mid-schedule hard fault
		// just unwound live relocations — snapshot the evidence.
		s.bundler.Trigger("reconfig-rollback", fmt.Sprintf(
			"session %s seq %d rollbacks %d retries %d", ls.id, rec.Seq, stats.Rollbacks, stats.Retries))
	}
	s.events.Emit(telemetry.Event{
		Record:    rec,
		Kind:      "session",
		Endpoint:  "/v1/sessions/events",
		RequestID: requestID(ctx),
	})
	// Malformed events are client errors (HTTP 400): they don't enter the
	// availability objective's denominator at all, same as a canceled
	// solve. A clean batch is good service.
	if err == nil {
		s.slos.Record(slo.Sample{
			Engine:   "session",
			Endpoint: "/v1/sessions/events",
			Duration: elapsed,
		})
	}
}

// sessionLabels is the goroutine label set an event batch runs under;
// the same set derives the flight record's join digest, so profile
// samples attribute back to the exact batch.
func sessionLabels(ctx context.Context, id string) diag.LabelSet {
	return diag.LabelSet{
		Engine:    "session",
		Phase:     "apply",
		Endpoint:  "/v1/sessions/events",
		Digest:    id,
		RequestID: requestID(ctx),
	}
}

// sessionInfo assembles the full reply for create/get.
func sessionInfo(ls *liveSession) SessionInfo {
	return SessionInfo{
		ID:        ls.id,
		Device:    ls.device,
		Engine:    ls.engine,
		CreatedAt: ls.created,
		Snapshot:  ls.mgr.Snapshot(),
	}
}
