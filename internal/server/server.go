// Package server implements the floorplanning service daemon: an
// HTTP/JSON front end over floorplanner.Solve that amortizes repeated
// solves and bounds concurrency.
//
// Request flow (see DESIGN.md, "The service daemon"):
//
//	POST /v1/solve
//	    → canonical hash of (problem, engine, options)      (hash.go)
//	    → LRU solution cache lookup                         (cache.go)
//	    → single-flight join of identical in-flight solves  (cache.go)
//	    → bounded worker pool with queue backpressure       (pool.go)
//	    → engine (exact, milp-o, milp-ho, heuristics)
//
// Definitive outcomes — a validated solution or a proven infeasibility —
// are cached; transient failures (timeouts, cancellations, shutdown) are
// not. When the queue is full the server answers 429 with a Retry-After
// hint instead of queueing unboundedly. /metrics exposes counters and
// per-engine latency histograms in the Prometheus text format.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/flight"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/reconfig"
	"repro/internal/slo"
	"repro/internal/telemetry"
)

// errBreakerOpen reports that the requested engine's circuit breaker is
// open: the engine failed repeatedly and is cooling down (HTTP 503).
var errBreakerOpen = errors.New("server: engine circuit breaker is open")

// SolveFunc computes a floorplan for p with the named engine. The
// default implementation dispatches through the floorplanner package;
// tests substitute controlled solvers.
type SolveFunc func(ctx context.Context, p *core.Problem, engine string, opts core.SolveOptions) (*core.Solution, error)

// Config tunes the daemon. The zero value is usable: every field has a
// production-minded default.
type Config struct {
	// Workers is the number of concurrent solves (default 2).
	Workers int
	// QueueSize bounds the solves waiting behind the workers; beyond it
	// requests get 429 (default 64).
	QueueSize int
	// CacheSize bounds the solution cache entries (default 256).
	CacheSize int
	// DefaultEngine answers requests that name no engine (default
	// "exact").
	DefaultEngine string
	// DefaultTimeLimit applies when a request names no time limit
	// (default 30s).
	DefaultTimeLimit time.Duration
	// MaxTimeLimit caps the per-request time limit (default 2m).
	MaxTimeLimit time.Duration
	// MaxSolveWorkers caps the per-solve parallelism a request may ask
	// for (default GOMAXPROCS).
	MaxSolveWorkers int
	// MaxBodyBytes caps the request body (default 8 MiB).
	MaxBodyBytes int64
	// Engines lists the accepted engine names; empty accepts any name
	// the Solve function accepts.
	Engines []string
	// FallbackChain names the engines the "fallback" meta-engine tries in
	// order (default exact, milp-ho, constructive). Used by the default
	// solver only.
	FallbackChain []string
	// BreakerThreshold is the consecutive engine failures (panics,
	// invalid solutions, unexpected errors) that open an engine's circuit
	// breaker (default 5; negative disables breakers).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects requests before
	// admitting a half-open probe (default 30s).
	BreakerCooldown time.Duration
	// FlightSize bounds the flight recorder ring: the last FlightSize
	// solve records kept for /debug/solves and SIGUSR1 dumps (default
	// 256).
	FlightSize int
	// MaxSessions bounds the live online-placement sessions the daemon
	// holds (default 16; see sessions.go).
	MaxSessions int
	// SessionTTL is how long an untouched session survives before lazy
	// eviction reclaims it (default 30m).
	SessionTTL time.Duration
	// SessionDir, when set, makes sessions durable: each session's WAL
	// and snapshots live under SessionDir/<id>, and New replays every
	// recoverable session found there (sessions idle past SessionTTL are
	// purged instead).
	SessionDir string
	// SessionSnapshotEvery is the WAL-records-per-snapshot cadence for
	// durable sessions (0 = session.DefaultSnapshotEvery).
	SessionSnapshotEvery int
	// SessionFaults, when non-nil, injects configuration-port faults
	// into every session's frame writes (fault soaks; see
	// reconfig.ParseFaultPlan).
	SessionFaults *reconfig.FaultPlan
	// EventSink receives the exported wide events (one JSON-able record
	// per solve and session batch); nil keeps events in the in-memory
	// tail behind /debug/events only.
	EventSink telemetry.Sink
	// EventQueueSize bounds the wide-event export queue; a full queue
	// drops events instead of blocking solves (default 256).
	EventQueueSize int
	// EventTailSize bounds the in-memory event tail behind /debug/events
	// (default 256).
	EventTailSize int
	// EventSampleRate is the keep probability for unremarkable events;
	// errors, budget breaches and the slow tail are always kept
	// (default 0.1; 1 keeps everything, negative keeps only the
	// remarkable).
	EventSampleRate float64
	// SLOs overrides the tracked service-level objectives (default
	// slo.DefaultObjectives). Burn-rate alerts use slo.DefaultRules.
	SLOs []slo.Objective
	// DiagDir, when set, enables anomaly-triggered diagnostic bundles:
	// SLO alerts, budget overruns, panics/invalid solutions and reconfig
	// rollbacks each snapshot a bundle-<ts>.tar.gz there (rate-limited,
	// rotated). GET /debug/bundle works either way.
	DiagDir string
	// DiagKeep bounds the bundles kept in DiagDir (default 8).
	DiagKeep int
	// DiagMinInterval rate-limits anomaly-triggered bundles (default 1m).
	DiagMinInterval time.Duration
	// ProfileEvery, when positive, runs the continuous profiler: a short
	// CPU profile every ProfileEvery, attributed per engine/phase into
	// the floorpland_profile_* metric families.
	ProfileEvery time.Duration
	// ProfileCPUDuration is the profiler's CPU window per cycle (default
	// 250ms, clamped below ProfileEvery).
	ProfileCPUDuration time.Duration
	// Chaos, when non-nil, injects faults (panics, invalid solutions,
	// errors, delays) around the whole dispatch path — the fire drill
	// for the guard and diag layers. See guard.ParseChaosSpec.
	Chaos *guard.ChaosConfig
	// Solve overrides the solver (tests); nil uses floorplanner.Solve.
	Solve SolveFunc
	// Logger receives structured request logs; nil uses slog.Default.
	Logger *slog.Logger
	// Version labels the floorpland_build_info metric (default "dev").
	Version string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.DefaultEngine == "" {
		c.DefaultEngine = "exact"
	}
	if c.DefaultTimeLimit <= 0 {
		c.DefaultTimeLimit = 30 * time.Second
	}
	if c.MaxTimeLimit <= 0 {
		c.MaxTimeLimit = 2 * time.Minute
	}
	if c.MaxSolveWorkers <= 0 {
		c.MaxSolveWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	if c.FlightSize <= 0 {
		c.FlightSize = 256
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 16
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 30 * time.Minute
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Version == "" {
		c.Version = "dev"
	}
	return c
}

// Server is the floorplanning daemon: hash → cache → single-flight →
// worker pool → engine, with metrics over every stage.
type Server struct {
	cfg      Config
	pool     *workerPool
	cache    *lruCache
	flights  flightGroup
	flight   *flight.Recorder
	metrics  *metrics
	breakers *guard.BreakerSet // nil when breakers are disabled
	sessions *sessionRegistry
	events   *telemetry.Exporter
	slos     *slo.Tracker
	sampler  *diag.Sampler // nil unless ProfileEvery > 0
	bundler  *diag.Bundler
	chaos    *guard.Chaos // nil unless Config.Chaos set
	log      *slog.Logger
	closing  atomic.Bool
}

// New builds a Server from cfg (zero value fine; see Config defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if len(cfg.Engines) == 0 && cfg.Solve == nil {
		// With the default solver the engine set is known up front, so
		// unknown names fail fast with 400 instead of a failed solve.
		cfg.Engines = defaultEngineNames()
	}
	s := &Server{
		cfg:      cfg,
		pool:     newWorkerPool(cfg.Workers, cfg.QueueSize),
		cache:    newLRUCache(cfg.CacheSize),
		flight:   flight.NewRecorder(cfg.FlightSize),
		metrics:  newMetrics(),
		sessions: newSessionRegistry(cfg.MaxSessions, cfg.SessionTTL),
		log:      cfg.Logger,
	}
	s.events = telemetry.New(telemetry.Config{
		Sink:       cfg.EventSink,
		QueueSize:  cfg.EventQueueSize,
		TailSize:   cfg.EventTailSize,
		SampleRate: cfg.EventSampleRate,
	})
	objectives := cfg.SLOs
	if len(objectives) == 0 {
		objectives = slo.DefaultObjectives()
	}
	tracker, err := slo.New(slo.Config{Objectives: objectives, OnAlert: s.onSLOAlert})
	if err != nil {
		// A malformed custom SLO set must not take the daemon down with
		// it; run the stock objectives and say so.
		cfg.Logger.Error("invalid SLO config, using defaults", "err", err)
		tracker, _ = slo.New(slo.Config{Objectives: slo.DefaultObjectives(), OnAlert: s.onSLOAlert})
	}
	s.slos = tracker
	s.sessions.onExpire = func(ls *liveSession) {
		s.metrics.sessionsExpired.Add(1)
		// An expired session must not be resurrected by replay: its
		// durable files go with it.
		if err := ls.mgr.Discard(); err != nil {
			s.log.Error("discarding expired session state", "session_id", ls.id, "err", err)
		}
	}
	s.metrics.sessionsLive = s.sessions.live
	s.metrics.eventStats = s.events.Stats
	s.metrics.sloStatus = s.slos.Evaluate
	s.metrics.queueDepth = s.pool.queueDepth
	s.metrics.portfolioStats = defaultPortfolioStats
	s.metrics.candCacheStats = core.CandCacheStats
	s.metrics.version = cfg.Version
	if cfg.BreakerThreshold > 0 {
		s.breakers = guard.NewBreakerSet(guard.BreakerConfig{
			Threshold: cfg.BreakerThreshold,
			Cooldown:  cfg.BreakerCooldown,
		})
		s.metrics.breakerStats = s.breakers.Snapshot
	}
	s.pool.onPanic = func(ctx context.Context, v any, stack []byte) {
		s.metrics.poolPanics.Add(1)
		s.log.Error("panic escaped to the worker pool",
			"request_id", requestID(ctx),
			"panic", fmt.Sprint(v),
			"stack", string(stack),
		)
	}
	if cfg.Chaos != nil {
		s.chaos = guard.NewChaosInjector(*cfg.Chaos)
	}
	// Goroutine labeling switches on (process-wide) as soon as anything
	// consumes the labels: the continuous profiler or bundle captures.
	// Never switched back off here — another server in the process may
	// still depend on it.
	if cfg.ProfileEvery > 0 || cfg.DiagDir != "" {
		diag.SetLabeling(true)
	}
	s.bundler = diag.NewBundler(diag.BundlerConfig{
		Dir:         cfg.DiagDir,
		Keep:        cfg.DiagKeep,
		MinInterval: cfg.DiagMinInterval,
		CPUDuration: cfg.ProfileCPUDuration,
		Meta: map[string]string{
			"service": "floorpland",
			"version": cfg.Version,
		},
		Artifacts: s.diagArtifacts,
		Logger:    cfg.Logger,
	})
	s.metrics.diagStats = s.bundler.Stats
	if cfg.ProfileEvery > 0 {
		s.sampler = diag.NewSampler(diag.SamplerConfig{
			Every:       cfg.ProfileEvery,
			CPUDuration: cfg.ProfileCPUDuration,
			// Burn-rate state normally advances only when /metrics is
			// scraped; with the profiler on, every cycle also evaluates,
			// so alerts (and their bundles) fire without a scraper.
			OnCycle: func() { s.slos.Evaluate() },
			Logger:  cfg.Logger,
		})
		s.metrics.profileStats = s.sampler.Stats
	}
	if cfg.SessionDir != "" {
		s.recoverSessions()
	}
	return s
}

// FlightRecorder returns the server's solve flight ring — the backing
// store of /debug/solves, exposed so the daemon binary can dump it on
// SIGUSR1.
func (s *Server) FlightRecorder() *flight.Recorder { return s.flight }

// Close stops admissions, drains in-flight solves and cancels queued
// ones, bounded by ctx, flushes a final snapshot for every live session
// (graceful drain — a restarted daemon replays them back), then flushes
// and closes the wide-event exporter (and its sink).
func (s *Server) Close(ctx context.Context) error {
	s.closing.Store(true)
	if s.sampler != nil {
		s.sampler.Stop()
	}
	err := s.pool.close(ctx)
	flushed, drainErr := s.drainSessions()
	s.log.Info("session drain", "flushed", flushed)
	if err == nil {
		err = drainErr
	}
	if eerr := s.events.Close(); err == nil {
		err = eerr
	}
	// Last: in-flight anomaly bundles still read the flight ring and
	// event tail, both valid until here.
	s.bundler.Close()
	return err
}

// Events returns the server's wide-event exporter (the pipeline behind
// /debug/events), exposed for the daemon binary and tests.
func (s *Server) Events() *telemetry.Exporter { return s.events }

// onSLOAlert is the burn-rate transition hook: fired alerts land in the
// log at warning level, resolutions at info, both carrying the burns
// that drove them.
func (s *Server) onSLOAlert(ev slo.AlertEvent) {
	if ev.Firing {
		s.log.Warn("slo alert firing",
			"objective", ev.Objective,
			"rule", ev.Rule,
			"short_burn", ev.ShortBurn,
			"long_burn", ev.LongBurn,
		)
		if s.bundler != nil {
			s.bundler.Trigger("slo-alert", fmt.Sprintf(
				"objective %s rule %s short %.2f long %.2f",
				ev.Objective, ev.Rule, ev.ShortBurn, ev.LongBurn))
		}
		return
	}
	s.log.Info("slo alert resolved",
		"objective", ev.Objective,
		"rule", ev.Rule,
		"short_burn", ev.ShortBurn,
		"long_burn", ev.LongBurn,
	)
}

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/solve", s.handleSolve)
	mux.HandleFunc("/v1/engines", s.handleEngines)
	mux.HandleFunc("/v1/sessions", s.handleSessions)
	mux.HandleFunc("/v1/sessions/", s.handleSession)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/solves", s.handleDebugSolves)
	mux.HandleFunc("/debug/solves/", s.handleDebugSolve)
	mux.HandleFunc("/debug/events", s.handleDebugEvents)
	mux.HandleFunc("/debug/slo", s.handleDebugSLO)
	mux.HandleFunc("/debug/bundle", s.handleDebugBundle)
	return s.logRequests(s.recoverPanics(mux))
}

// SolveRequest is the POST /v1/solve body.
type SolveRequest struct {
	// Problem is the floorplanning instance (floorplanner.Problem JSON).
	Problem *core.Problem `json:"problem"`
	// Engine selects the algorithm; empty uses the server default.
	Engine string `json:"engine,omitempty"`
	// TimeLimitMS bounds the solve in milliseconds; 0 uses the server
	// default, values above the server maximum are clamped.
	TimeLimitMS int64 `json:"time_limit_ms,omitempty"`
	// Seed drives randomized engines.
	Seed int64 `json:"seed,omitempty"`
	// Workers bounds per-solve parallelism; clamped to the server
	// maximum.
	Workers int `json:"workers,omitempty"`
	// Trace asks for the solve's telemetry (incumbent trajectory, work
	// counters, span outcomes) to be embedded in the response. Telemetry
	// is recorded either way; the flag only controls the response size,
	// so it is deliberately NOT part of the cache key.
	Trace bool `json:"trace,omitempty"`
}

// SolveResponse is the POST /v1/solve reply.
type SolveResponse struct {
	// Status is "ok", "infeasible", "no_solution" or "error".
	Status string `json:"status"`
	// Key is the canonical problem hash (the cache key).
	Key string `json:"key"`
	// Cached reports a solution served from the cache.
	Cached bool `json:"cached"`
	// Deduped reports a solution shared from an identical concurrent
	// request's solve.
	Deduped bool `json:"deduped,omitempty"`
	// Engine echoes the engine that produced the solution.
	Engine string `json:"engine,omitempty"`
	// Solution is the floorplan (status "ok" only).
	Solution *core.Solution `json:"solution,omitempty"`
	// Metrics are the solution's raw cost terms (status "ok" only).
	Metrics *core.Metrics `json:"metrics,omitempty"`
	// Objective is the problem objective value (status "ok" only).
	Objective *float64 `json:"objective,omitempty"`
	// Error carries detail for status "error".
	Error string `json:"error,omitempty"`
	// Trace is the solve telemetry, present when the request set
	// "trace": true and the outcome carried a recording.
	Trace *obs.Trace `json:"trace,omitempty"`
}

// EnginesResponse is the GET /v1/engines reply.
type EnginesResponse struct {
	Engines []string `json:"engines"`
	Default string   `json:"default"`
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.closing.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}

	var req SolveRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	if req.Problem == nil {
		s.writeError(w, http.StatusBadRequest, "request has no problem")
		return
	}
	if err := req.Problem.Validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid problem: "+err.Error())
		return
	}
	engine := req.Engine
	if engine == "" {
		engine = s.cfg.DefaultEngine
	}
	if !s.engineAllowed(engine) {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown engine %q", engine))
		return
	}
	if req.TimeLimitMS < 0 || req.Workers < 0 {
		s.writeError(w, http.StatusBadRequest, "time_limit_ms and workers must be non-negative")
		return
	}

	opts := core.SolveOptions{
		TimeLimit: s.clampTimeLimit(time.Duration(req.TimeLimitMS) * time.Millisecond),
		Seed:      req.Seed,
		Workers:   min(max(req.Workers, 0), s.cfg.MaxSolveWorkers),
	}.Normalized()

	key, err := problemKey(req.Problem, engine, opts)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.metrics.requests.Add(1)

	if entry, ok := s.cache.get(key); ok {
		s.metrics.cacheHits.Add(1)
		// A cache hit gets its own flight record, linked by OriginSeq to
		// the record of the solve that populated the entry and carrying
		// that solve's trace — never a fabricated one.
		frec := flight.Record{
			RequestDigest: guard.RequestDigest(req.Problem),
			Key:           key,
			Engine:        engine,
			Outcome:       outcomeLabel(entry.sol, entry.err),
			Cached:        true,
			OriginSeq:     entry.flightSeq,
			Trace:         entry.trace,
		}
		if entry.sol != nil {
			obj := entry.sol.Objective(req.Problem)
			frec.Objective = &obj
		}
		if entry.err != nil {
			frec.Err = entry.err.Error()
		}
		frec.Seq = s.recordFlight(frec)
		s.observeSolve(r.Context(), frec, opts.TimeLimit, entry.err)
		s.respondEntry(w, r, key, engine, req.Problem, entry, true, false, req.Trace)
		return
	}
	s.metrics.cacheMisses.Add(1)

	// The solve context bounds queue wait plus solve: the engine's own
	// TimeLimit normally fires first, the deadline is the backstop.
	solveCtx, cancel := context.WithTimeout(r.Context(), opts.TimeLimit+5*time.Second)
	defer cancel()

	entry, led, err := s.flights.do(solveCtx, key, func() cacheEntry {
		return s.runSolve(solveCtx, key, engine, req.Problem, opts)
	})
	if err != nil {
		// Follower whose own request ended while the leader kept solving.
		s.writeError(w, http.StatusGatewayTimeout, "request canceled while awaiting shared solve: "+err.Error())
		return
	}
	if !led {
		s.metrics.dedupJoined.Add(1)
	}
	s.respondEntry(w, r, key, engine, req.Problem, entry, false, !led, req.Trace)
}

// runSolve is the single-flight leader path: queue on the pool, run the
// engine under a recording probe, record metrics and telemetry, and cache
// definitive outcomes (trace included, so cached answers keep their
// trajectory).
func (s *Server) runSolve(ctx context.Context, key, engine string, p *core.Problem, opts core.SolveOptions) cacheEntry {
	started := time.Now()
	frec := flight.Record{
		RequestDigest: guard.RequestDigest(p),
		Key:           key,
		Engine:        engine,
	}
	var br *guard.Breaker
	if s.breakers != nil {
		br = s.breakers.For(engine)
		if !br.Allow() {
			s.metrics.breakerRejected.Add(1)
			frec.Outcome = outcomeLabel(nil, errBreakerOpen)
			frec.Err = errBreakerOpen.Error()
			frec.Seq = s.recordFlight(frec)
			s.observeSolve(ctx, frec, opts.TimeLimit, errBreakerOpen)
			return cacheEntry{err: errBreakerOpen}
		}
	}
	rec := obs.NewRecorder()
	// The label probe keeps the worker goroutine's pprof labels in sync
	// with the open span, so CPU samples attribute to the engine/stage
	// actually running; the join digest links samples to this record.
	labels := diag.LabelSet{
		Engine:    engine,
		Phase:     "solve",
		Endpoint:  "/v1/solve",
		Digest:    frec.RequestDigest,
		RequestID: requestID(ctx),
	}
	frec.LabelDigest = labels.JoinDigest()
	lprobe := diag.NewLabelProbe(rec)
	opts.Probe = lprobe
	// The stage log collects fallback-chain stage timings; the pool hands
	// this ctx to the solve, so the guard layer's collector is ours.
	ctx, stageLog := guard.WithStageLog(ctx)
	run := func(ctx context.Context) (*core.Solution, error) {
		s.metrics.solvesStarted.Add(1)
		solveStarted := time.Now()
		// Guard boundary: engine panics become structured errors and every
		// solution is re-verified before it can be cached or served —
		// regardless of which SolveFunc produced it.
		sol, err := guard.Protect(engine, p, func() (*core.Solution, error) {
			return s.dispatch(ctx, p, engine, opts)
		})
		if err == nil {
			if verr := guard.CheckSolution(engine, p, sol); verr != nil {
				sol, err = nil, verr
			}
		}
		s.metrics.observeLatency(engine, time.Since(solveStarted))
		var panicked *guard.PanicError
		var invalid *guard.InvalidSolutionError
		switch {
		case errors.As(err, &panicked):
			s.metrics.enginePanics.Add(1)
			s.log.Error("engine panicked; recovered",
				"request_id", requestID(ctx),
				"engine", engine,
				"problem", panicked.Request,
				"panic", fmt.Sprint(panicked.Value),
				"stack", string(panicked.Stack),
			)
		case errors.As(err, &invalid):
			s.metrics.invalidSolutions.Add(1)
			s.log.Error("engine solution rejected by validation",
				"request_id", requestID(ctx),
				"engine", engine,
				"err", err.Error(),
			)
		}
		if err == nil || errors.Is(err, core.ErrInfeasible) {
			s.metrics.solvesCompleted.Add(1)
		} else {
			s.metrics.solvesFailed.Add(1)
		}
		return sol, err
	}
	task, err := s.pool.submit(ctx, func(ctx context.Context) (sol *core.Solution, err error) {
		diag.Do(ctx, labels, func(ctx context.Context) {
			lprobe.Bind(ctx)
			sol, err = run(ctx)
		})
		return sol, err
	})
	if err != nil {
		if br != nil {
			// Queue-full and shutdown say nothing about engine health.
			br.Record(guard.BreakerNeutral)
		}
		if errors.Is(err, errQueueFull) {
			s.metrics.queueRejected.Add(1)
		}
		frec.Outcome = outcomeLabel(nil, err)
		frec.Err = err.Error()
		frec.DurationMS = durationMS(time.Since(started))
		frec.Seq = s.recordFlight(frec)
		s.observeSolve(ctx, frec, opts.TimeLimit, err)
		return cacheEntry{err: err}
	}
	sol, err := task.wait(ctx)
	if br != nil {
		if errors.Is(err, errShuttingDown) {
			br.Record(guard.BreakerNeutral)
		} else {
			br.Record(guard.BreakerOutcomeOf(err))
		}
	}
	nodes := rec.Total(obs.Nodes)
	pivots := rec.Total(obs.Pivots)
	incumbents := int64(len(rec.Incumbents(""))) + int64(rec.DroppedIncumbents())
	s.metrics.recordTelemetry(engine, nodes, pivots, incumbents)
	// The top-level span carries the requested engine's name; its first
	// and latest incumbents give time-to-first/best (objectives within a
	// span are nonincreasing, so latest == best).
	if first, best, ok := rec.IncumbentTimes(engine); ok {
		s.metrics.recordIncumbentTimes(engine, first, best)
	}
	s.log.Info("solve telemetry",
		"request_id", requestID(ctx),
		"key", key,
		"engine", engine,
		"nodes", nodes,
		"pivots", pivots,
		"incumbents", incumbents,
		"outcome", outcomeLabel(sol, err),
	)
	frec.Outcome = outcomeLabel(sol, err)
	// Duration is measured here, not in the pool closure: wait can return
	// early on context expiry while the closure still runs, and closure
	// state must not be read after an early return.
	frec.DurationMS = durationMS(time.Since(started))
	if sol != nil {
		obj := sol.Objective(p)
		frec.Objective = &obj
	}
	if err != nil {
		frec.Err = err.Error()
	}
	for _, st := range stageLog.Stages() {
		frec.Stages = append(frec.Stages, flight.Stage{
			Engine:    st.Engine,
			Outcome:   st.Outcome,
			ElapsedMS: durationMS(st.Elapsed),
			Err:       st.Err,
		})
	}
	frec.Trace = rec.Trace()
	seq := s.recordFlight(frec)
	frec.Seq = seq
	s.observeSolve(ctx, frec, opts.TimeLimit, err)
	entry := cacheEntry{sol: sol, err: err, trace: frec.Trace, flightSeq: seq}
	if err == nil || errors.Is(err, core.ErrInfeasible) {
		s.cache.put(key, entry)
	}
	return entry
}

// recordFlight stamps the current breaker snapshots onto rec and appends
// it to the server's flight ring, returning the assigned sequence.
func (s *Server) recordFlight(rec flight.Record) int64 {
	if s.breakers != nil {
		for _, bs := range s.breakers.Snapshot() {
			rec.Breakers = append(rec.Breakers, flight.Breaker{
				Engine: bs.Name,
				State:  bs.State.String(),
				Trips:  bs.Trips,
			})
		}
	}
	return s.flight.Record(rec)
}

// observeSolve feeds one finished solve into the wide-event pipeline and
// the SLO tracker. The flight record must already carry its ring
// sequence (frec.Seq) so the exported event and /debug/solves agree on
// identity.
func (s *Server) observeSolve(ctx context.Context, frec flight.Record, budget time.Duration, err error) {
	ev := telemetry.Event{
		Record:    frec,
		Kind:      "solve",
		Endpoint:  "/v1/solve",
		RequestID: requestID(ctx),
		BudgetMS:  durationMS(budget),
	}
	// Overrun is measured against the same tolerance the SLO's
	// budget-relative latency objective uses, so the two never disagree
	// about whether a solve blew its deadline.
	if over := frec.DurationMS - ev.BudgetMS - durationMS(slo.BudgetEpsilon); over > 0 && !frec.Cached {
		ev.BudgetOverrunMS = over
	}
	s.events.Emit(ev)
	s.triggerDiag(frec, ev)
	failed, counted := sloCounts(err)
	if !counted {
		return
	}
	s.slos.Record(slo.Sample{
		Engine:   frec.Engine,
		Endpoint: "/v1/solve",
		Failed:   failed,
		Duration: time.Duration(frec.DurationMS * float64(time.Millisecond)),
		Budget:   budget,
	})
}

// sloCounts classifies a solve error for the SLO tracker: failed says
// whether the request burns error budget, counted whether it enters the
// denominator at all. Definitive answers (including proven infeasibility
// and an honest "no solution in budget") are good service. Load-shed,
// shutdown and client-canceled requests are excluded entirely — they say
// nothing about whether the service is meeting its objectives. Everything
// else (engine errors, panics, invalid solutions, open breakers,
// deadline blowouts) burns budget.
func sloCounts(err error) (failed, counted bool) {
	switch {
	case err == nil,
		errors.Is(err, core.ErrInfeasible),
		errors.Is(err, core.ErrNoSolution):
		return false, true
	case errors.Is(err, errQueueFull),
		errors.Is(err, errShuttingDown),
		errors.Is(err, context.Canceled):
		return false, false
	default:
		return true, true
	}
}

// durationMS converts a duration to float milliseconds for wire records.
func durationMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// outcomeLabel names a solve outcome for the telemetry log line.
func outcomeLabel(sol *core.Solution, err error) string {
	return string(core.ObsOutcome(sol, err))
}

// dispatch runs the configured solver, with the chaos injector (when
// enabled) applying its scheduled fault around the whole path — inside
// the guard boundary, so injected panics and poison solutions exercise
// the same recovery the real thing would.
func (s *Server) dispatch(ctx context.Context, p *core.Problem, engine string, opts core.SolveOptions) (*core.Solution, error) {
	if s.chaos != nil {
		return s.chaos.Apply(ctx, p, func(ctx context.Context) (*core.Solution, error) {
			return s.solve(ctx, p, engine, opts)
		})
	}
	return s.solve(ctx, p, engine, opts)
}

func (s *Server) solve(ctx context.Context, p *core.Problem, engine string, opts core.SolveOptions) (*core.Solution, error) {
	if s.cfg.Solve != nil {
		return s.cfg.Solve(ctx, p, engine, opts)
	}
	if engine == "fallback" {
		return defaultFallbackSolve(ctx, p, s.cfg.FallbackChain, opts)
	}
	return defaultSolve(ctx, p, engine, opts)
}

// respondEntry translates a solve outcome into the HTTP reply. wantTrace
// embeds the recorded telemetry on the definitive statuses.
func (s *Server) respondEntry(w http.ResponseWriter, r *http.Request, key, engine string, p *core.Problem, entry cacheEntry, cached, deduped, wantTrace bool) {
	resp := SolveResponse{Key: key, Cached: cached, Deduped: deduped}
	if wantTrace {
		resp.Trace = entry.trace
	}
	switch {
	case entry.err == nil && entry.sol != nil:
		resp.Status = "ok"
		resp.Engine = entry.sol.Engine
		resp.Solution = entry.sol
		m := entry.sol.Metrics(p)
		resp.Metrics = &m
		obj := entry.sol.Objective(p)
		resp.Objective = &obj
		s.writeJSON(w, http.StatusOK, resp)
	case errors.Is(entry.err, core.ErrInfeasible):
		resp.Status = "infeasible"
		resp.Engine = engine
		s.writeJSON(w, http.StatusOK, resp)
	case errors.Is(entry.err, core.ErrNoSolution):
		resp.Status = "no_solution"
		resp.Engine = engine
		resp.Error = "no solution found within the time limit"
		s.writeJSON(w, http.StatusOK, resp)
	case errors.Is(entry.err, errQueueFull):
		w.Header().Set("Retry-After", s.retryAfter())
		s.writeError(w, http.StatusTooManyRequests, "solve queue is full, retry later")
	case errors.Is(entry.err, errBreakerOpen), errors.Is(entry.err, guard.ErrBreakersOpen):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.BreakerCooldown/time.Second)+1))
		s.writeError(w, http.StatusServiceUnavailable, "engine disabled after repeated failures, retry later")
	case errors.Is(entry.err, errShuttingDown):
		s.writeError(w, http.StatusServiceUnavailable, "shutting down")
	case errors.Is(entry.err, context.DeadlineExceeded), errors.Is(entry.err, context.Canceled):
		s.writeError(w, http.StatusGatewayTimeout, "solve canceled: "+entry.err.Error())
	default:
		s.writeError(w, http.StatusInternalServerError, "solve failed: "+entry.err.Error())
	}
}

// retryAfter estimates seconds until queue space frees up: one solve
// time-slice per queued task per worker, floored at 1s.
func (s *Server) retryAfter() string {
	secs := s.pool.queueDepth() / s.cfg.Workers
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (s *Server) clampTimeLimit(d time.Duration) time.Duration {
	if d <= 0 {
		d = s.cfg.DefaultTimeLimit
	}
	if d > s.cfg.MaxTimeLimit {
		d = s.cfg.MaxTimeLimit
	}
	return d
}

func (s *Server) engineAllowed(name string) bool {
	if len(s.cfg.Engines) == 0 {
		return true
	}
	for _, e := range s.cfg.Engines {
		if e == name {
			return true
		}
	}
	return false
}

func (s *Server) handleEngines(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	engines := s.cfg.Engines
	if len(engines) == 0 {
		engines = defaultEngineNames()
	}
	s.writeJSON(w, http.StatusOK, EnginesResponse{Engines: engines, Default: s.cfg.DefaultEngine})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "shutting down"})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, s.metrics.render())
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		s.log.Error("encoding response", "err", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	s.writeJSON(w, code, SolveResponse{Status: "error", Error: msg})
}

// statusWriter captures the response code for request logging.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

// requestIDKey keys the per-request ID in the request context.
type requestIDKey struct{}

// requestID returns the ID logRequests assigned, or "" outside a request.
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// newRequestID returns a 16-hex-char random request ID.
func newRequestID() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(buf[:])
}

// maxRequestIDLen caps a client-supplied X-Request-ID.
const maxRequestIDLen = 64

// sanitizeRequestID vets a client-supplied request ID before it is
// echoed into response headers, logs and exported events: only printable
// non-space ASCII survives, truncated to maxRequestIDLen. Anything else
// (header injection attempts, control bytes, emptiness) is discarded and
// the caller mints a fresh ID.
func sanitizeRequestID(id string) string {
	if len(id) > maxRequestIDLen {
		id = id[:maxRequestIDLen]
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= 0x20 || id[i] >= 0x7f {
			return ""
		}
	}
	return id
}

// recoverPanics is the HTTP-layer last-resort recovery: a panic in any
// handler answers 500 (best effort; a mid-stream panic just truncates
// the response) instead of killing the daemon.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.handlerPanics.Add(1)
				s.log.Error("handler panicked; recovered",
					"request_id", requestID(r.Context()),
					"path", r.URL.Path,
					"panic", fmt.Sprint(rec),
					"stack", string(debug.Stack()),
				)
				s.writeError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started := time.Now()
		id := sanitizeRequestID(r.Header.Get("X-Request-ID"))
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id))
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r)
		s.log.Info("request",
			"request_id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.code,
			"elapsed", time.Since(started).Round(time.Microsecond),
			"remote", r.RemoteAddr,
		)
	})
}
