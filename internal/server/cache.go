package server

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
)

// cacheEntry is a finished solve outcome. Only definitive outcomes are
// cached: a validated solution, or a proven infeasibility. Transient
// failures (timeouts, cancellations) are never stored.
type cacheEntry struct {
	sol *core.Solution // nil when the problem is infeasible
	err error          // nil or core.ErrInfeasible
	// trace is the solve's recorded telemetry; cached alongside the
	// solution so "trace": true requests served from the cache still see
	// the trajectory of the solve that produced the entry.
	trace *obs.Trace
	// flightSeq is the flight-recorder sequence number of the solve that
	// produced this entry, so cache-hit records can link back to the
	// original record instead of fabricating a trace (0 when unknown).
	flightSeq int64
}

// lruCache is a fixed-capacity LRU map from canonical problem key to
// solve outcome, safe for concurrent use. Cached solutions are shared
// between requests and must be treated as immutable by all readers.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruItem struct {
	key   string
	entry cacheEntry
}

func newLRUCache(capacity int) *lruCache {
	if capacity <= 0 {
		capacity = 1
	}
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the entry for key, marking it most recently used.
func (c *lruCache) get(key string) (cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return cacheEntry{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruItem).entry, true
}

// put inserts or refreshes key, evicting the least recently used entry
// when over capacity.
func (c *lruCache) put(key string, entry cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruItem).entry = entry
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruItem{key: key, entry: entry})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruItem).key)
	}
}

// len returns the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// flightGroup deduplicates concurrent identical solves: the first caller
// of do for a key becomes the leader and runs fn; followers block until
// the leader finishes (or their own context ends) and share the result.
// The slot is removed when the leader returns, so a later request for the
// same key starts fresh (the cache, not the flight group, provides
// longer-term reuse).
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done  chan struct{}
	entry cacheEntry
}

// do runs fn once per key among concurrent callers. It reports whether
// this caller led the solve. A follower whose ctx ends before the leader
// finishes returns ctx.Err(); the leader is not interrupted.
func (g *flightGroup) do(ctx context.Context, key string, fn func() cacheEntry) (cacheEntry, bool, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if call, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-call.done:
			return call.entry, false, nil
		case <-ctx.Done():
			return cacheEntry{}, false, ctx.Err()
		}
	}
	call := &flightCall{done: make(chan struct{})}
	g.calls[key] = call
	g.mu.Unlock()

	call.entry = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(call.done)
	return call.entry, true, nil
}
