package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

// blockingFn returns a solve function that signals started and blocks
// until release (or ctx ends).
func blockingFn(started chan<- struct{}, release <-chan struct{}) func(context.Context) (*core.Solution, error) {
	return func(ctx context.Context) (*core.Solution, error) {
		if started != nil {
			started <- struct{}{}
		}
		select {
		case <-release:
			return &core.Solution{Engine: "blocking"}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func TestPoolBackpressure(t *testing.T) {
	p := newWorkerPool(1, 1)
	defer p.close(context.Background())
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)

	// First task occupies the worker...
	t1, err := p.submit(context.Background(), blockingFn(started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// ...second fills the queue...
	if _, err := p.submit(context.Background(), blockingFn(nil, release)); err != nil {
		t.Fatal(err)
	}
	if d := p.queueDepth(); d != 1 {
		t.Fatalf("queueDepth = %d, want 1", d)
	}
	// ...third must be rejected immediately.
	if _, err := p.submit(context.Background(), blockingFn(nil, release)); !errors.Is(err, errQueueFull) {
		t.Fatalf("err = %v, want errQueueFull", err)
	}
	_ = t1
}

func TestPoolSkipsTasksWithDeadContext(t *testing.T) {
	p := newWorkerPool(1, 4)
	defer p.close(context.Background())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	task, err := p.submit(ctx, func(context.Context) (*core.Solution, error) {
		ran = true
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = task.wait(context.Background())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("pool ran a task whose context had already ended")
	}
}

func TestPoolCloseDrainsInFlightAndCancelsQueued(t *testing.T) {
	p := newWorkerPool(1, 2)
	started := make(chan struct{}, 1)
	release := make(chan struct{})

	inflight, err := p.submit(context.Background(), blockingFn(started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := p.submit(context.Background(), blockingFn(nil, release))
	if err != nil {
		t.Fatal(err)
	}

	closed := make(chan error, 1)
	go func() { closed <- p.close(context.Background()) }()

	// Give close a moment to reach the stop signal, then let the
	// in-flight solve finish.
	time.Sleep(20 * time.Millisecond)
	close(release)

	sol, err := inflight.wait(context.Background())
	if err != nil || sol == nil {
		t.Fatalf("in-flight solve not drained: sol=%v err=%v", sol, err)
	}
	if _, err := queued.wait(context.Background()); !errors.Is(err, errShuttingDown) {
		t.Fatalf("queued task err = %v, want errShuttingDown", err)
	}
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := p.submit(context.Background(), blockingFn(nil, release)); !errors.Is(err, errShuttingDown) {
		t.Fatalf("submit after close err = %v, want errShuttingDown", err)
	}
}

func TestPoolCloseHonorsContext(t *testing.T) {
	p := newWorkerPool(1, 1)
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	if _, err := p.submit(context.Background(), blockingFn(started, release)); err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("close err = %v, want deadline exceeded while a solve blocks", err)
	}
}
