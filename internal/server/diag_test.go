package server

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/diag"
	"repro/internal/flight"
	"repro/internal/reconfig"
	"repro/internal/session"
)

// readBundleFile parses one bundle archive into name -> contents and
// its manifest, asserting manifest.json is the first entry (operators
// stream bundles; the manifest must be readable before the rest).
func readBundleFile(t *testing.T, data []byte) (map[string][]byte, diag.Manifest) {
	t.Helper()
	gz, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("bundle is not gzip: %v", err)
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	files := map[string][]byte{}
	first := ""
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("reading bundle tar: %v", err)
		}
		body, err := io.ReadAll(tr)
		if err != nil {
			t.Fatalf("reading %s: %v", hdr.Name, err)
		}
		if first == "" {
			first = hdr.Name
		}
		files[hdr.Name] = body
	}
	if first != "manifest.json" {
		t.Fatalf("first bundle entry = %q, want manifest.json", first)
	}
	var m diag.Manifest
	if err := json.Unmarshal(files["manifest.json"], &m); err != nil {
		t.Fatalf("decoding manifest: %v", err)
	}
	if m.Schema != diag.ManifestSchema {
		t.Fatalf("manifest schema = %q, want %q", m.Schema, diag.ManifestSchema)
	}
	return files, m
}

// waitForBundles polls dir until want bundle files exist (10s cap) and
// returns their paths sorted by name.
func waitForBundles(t *testing.T, dir string, want int) []string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		paths, err := filepath.Glob(filepath.Join(dir, "bundle-*.tar.gz"))
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) >= want {
			return paths
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d bundles in %s after 10s, want %d", len(paths), dir, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPanicProducesExactlyOneBundle is the anomaly-pipeline acceptance
// test: two panicking solves fire two triggers, the rate limit collapses
// them into exactly one bundle on disk, and that bundle carries a
// parseable CPU profile plus the flight record of the solve that
// triggered it — joinable through the goroutine-label digest.
func TestPanicProducesExactlyOneBundle(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{
		Workers:            1,
		QueueSize:          8,
		CacheSize:          8,
		BreakerThreshold:   -1,
		Logger:             quietLogger(),
		DiagDir:            dir,
		DiagMinInterval:    time.Hour,
		ProfileCPUDuration: 50 * time.Millisecond,
		EventSampleRate:    1,
		Solve: func(context.Context, *core.Problem, string, core.SolveOptions) (*core.Solution, error) {
			panic("chaos strike")
		},
	})

	for seed := int64(0); seed < 2; seed++ {
		code, _ := postSolve(t, ts.Client(), ts.URL, SolveRequest{
			Problem: testProblem(t, 0), Engine: "exact", Seed: seed, TimeLimitMS: 30_000,
		})
		if code != http.StatusInternalServerError {
			t.Fatalf("panicking solve: HTTP %d, want 500", code)
		}
	}

	paths := waitForBundles(t, dir, 1)
	// Both triggers have been enqueued synchronously by now (Trigger
	// reserves the rate limit before returning); one bundle must remain.
	if len(paths) != 1 {
		t.Fatalf("bundles on disk = %v, want exactly one", paths)
	}
	if n := scrapeCounter(t, ts.Client(), ts.URL, `floorpland_diag_bundles_total{trigger="panic"}`); n != 1 {
		t.Fatalf(`diag_bundles_total{trigger="panic"} = %d, want 1`, n)
	}
	// At least the second panic trigger was rate-limited (SLO alerts
	// evaluated during capture and scrapes may add more).
	if n := scrapeCounter(t, ts.Client(), ts.URL, "floorpland_diag_rate_limited_total"); n < 1 {
		t.Fatalf("diag_rate_limited_total = %d, want >= 1", n)
	}

	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	files, manifest := readBundleFile(t, data)
	if manifest.Trigger != "panic" {
		t.Fatalf("manifest trigger = %q, want panic", manifest.Trigger)
	}
	if manifest.Meta["service"] != "floorpland" {
		t.Fatalf("manifest meta = %v, want service=floorpland", manifest.Meta)
	}
	for _, name := range []string{"cpu.pprof", "heap.pprof", "goroutines.txt", "flight.json", "events.json", "slo.json", "metrics.prom"} {
		if _, ok := files[name]; !ok {
			t.Errorf("bundle lacks %s (has %v)", name, manifest.Contents)
		}
	}

	// The CPU profile must be a real parseable profile.
	prof, err := diag.ParseProfile(files["cpu.pprof"])
	if err != nil {
		t.Fatalf("cpu.pprof does not parse: %v", err)
	}
	if prof.ValueIndex("cpu") < 0 {
		t.Fatal("cpu.pprof has no cpu sample type")
	}

	// The flight ring in the bundle holds the panic record, and the
	// manifest note carries its label digest — the join key that matches
	// the "ldig" goroutine label on that solve's profile samples.
	var dump flight.Dump
	if err := json.Unmarshal(files["flight.json"], &dump); err != nil {
		t.Fatalf("decoding flight.json: %v", err)
	}
	var panicRec *flight.Record
	for i := range dump.Records {
		if dump.Records[i].Outcome == "panic" {
			panicRec = &dump.Records[i]
			break
		}
	}
	if panicRec == nil {
		t.Fatal("no panic record in the bundled flight ring")
	}
	if panicRec.LabelDigest == "" {
		t.Fatal("panic flight record carries no label digest")
	}
	if !strings.Contains(manifest.Note, panicRec.LabelDigest) {
		t.Fatalf("manifest note %q does not reference label digest %s", manifest.Note, panicRec.LabelDigest)
	}

	// The wide event mirrors the same digest, so profiles join to the
	// event pipeline too.
	resp, err := ts.Client().Get(ts.URL + "/debug/events?outcome=panic")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events DebugEventsResponse
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	if len(events.Events) == 0 {
		t.Fatal("no panic wide events retained")
	}
	found := false
	for _, ev := range events.Events {
		if ev.Seq == panicRec.Seq {
			found = true
			if ev.LabelDigest != panicRec.LabelDigest {
				t.Fatalf("wide event label digest = %q, flight record has %q", ev.LabelDigest, panicRec.LabelDigest)
			}
		}
	}
	if !found {
		t.Fatalf("no wide event for flight seq %d", panicRec.Seq)
	}
}

// TestDebugBundleOnDemand: GET /debug/bundle captures synchronously,
// bypasses the anomaly rate limit, and works without a configured diag
// dir (the bytes only travel over HTTP).
func TestDebugBundleOnDemand(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:            1,
		QueueSize:          8,
		CacheSize:          8,
		Logger:             quietLogger(),
		ProfileCPUDuration: 30 * time.Millisecond,
	})

	fetch := func() ([]byte, *http.Response) {
		resp, err := ts.Client().Get(ts.URL + "/debug/bundle")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return data, resp
	}

	data, resp := fetch()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/bundle: HTTP %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/gzip" {
		t.Fatalf("content type %q, want application/gzip", ct)
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, "bundle-") {
		t.Fatalf("content disposition %q names no bundle file", cd)
	}
	_, manifest := readBundleFile(t, data)
	if manifest.Trigger != "manual" {
		t.Fatalf("manifest trigger = %q, want manual", manifest.Trigger)
	}

	// A second on-demand capture must not be rate-limited away.
	if data2, resp2 := fetch(); resp2.StatusCode != http.StatusOK || len(data2) == 0 {
		t.Fatalf("second on-demand capture: HTTP %d, %d bytes", resp2.StatusCode, len(data2))
	}

	// POST is rejected.
	post, err := ts.Client().Post(ts.URL+"/debug/bundle", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /debug/bundle: HTTP %d, want 405", post.StatusCode)
	}
}

// TestReconfigRollbackTriggersBundle: a scripted configuration-port
// fault mix that hard-fails defrag moves mid-schedule (seed 1, 10%
// stuck — deterministically 6 rollbacks over this workload) must
// produce a reconfig-rollback bundle, rate-limited to exactly one.
func TestReconfigRollbackTriggersBundle(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{
		Workers:            1,
		QueueSize:          8,
		CacheSize:          8,
		Logger:             quietLogger(),
		DiagDir:            dir,
		DiagMinInterval:    time.Hour,
		ProfileCPUDuration: 30 * time.Millisecond,
		SessionFaults:      &reconfig.FaultPlan{Seed: 1, PassWeight: 90, StuckWeight: 10},
	})
	client := ts.Client()

	info := createSession(t, client, ts.URL, CreateSessionRequest{Device: "fx70t", FragThreshold: 0.1})
	workload := session.GenerateWorkload(session.WorkloadConfig{
		Seed: 1, Events: 40, Intensity: 0.6, Device: device.VirtexFX70T(),
	})
	// One event per batch: a hard-failed arrival (stuck fault past the
	// retry budget) 400s its own batch without masking later events.
	for _, ev := range workload {
		var resp SessionEventsResponse
		code := sessionPost(t, client, ts.URL+"/v1/sessions/"+info.ID+"/events",
			SessionEventsRequest{Events: []session.Event{ev}}, &resp)
		if code != http.StatusOK && code != http.StatusBadRequest {
			t.Fatalf("apply event: HTTP %d", code)
		}
	}

	if got := scrapeCounter(t, client, ts.URL, "floorpland_session_rollbacks_total"); got <= 0 {
		t.Fatalf("session_rollbacks_total = %d; the fault recipe no longer rolls back", got)
	}
	paths := waitForBundles(t, dir, 1)
	if len(paths) != 1 {
		t.Fatalf("bundles on disk = %v, want exactly one (rate limit)", paths)
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	files, manifest := readBundleFile(t, data)
	if manifest.Trigger != "reconfig-rollback" {
		t.Fatalf("manifest trigger = %q, want reconfig-rollback", manifest.Trigger)
	}
	if !strings.Contains(manifest.Note, "session "+info.ID) {
		t.Fatalf("manifest note %q does not name session %s", manifest.Note, info.ID)
	}
	if _, ok := files["flight.json"]; !ok {
		t.Fatal("rollback bundle lacks flight.json")
	}
	if st := s.bundler.Stats(); st.Captured["reconfig-rollback"] != 1 {
		t.Fatalf("bundler stats = %+v, want one reconfig-rollback capture", st)
	}
}

// TestDebugEventsFilters covers the ?kind= and ?outcome= query filters
// on /debug/events.
func TestDebugEventsFilters(t *testing.T) {
	var fail bool
	s, ts := newTestServer(t, Config{
		Workers:          1,
		QueueSize:        8,
		CacheSize:        8,
		BreakerThreshold: -1,
		Logger:           quietLogger(),
		EventSampleRate:  1, // keep every event: the filter test needs them all
		Solve: func(_ context.Context, p *core.Problem, _ string, _ core.SolveOptions) (*core.Solution, error) {
			if fail {
				panic("injected")
			}
			return fakeSolution(p), nil
		},
	})
	client := ts.Client()

	for seed := int64(0); seed < 2; seed++ {
		if code, _ := postSolve(t, client, ts.URL, SolveRequest{
			Problem: testProblem(t, 0), Engine: "exact", Seed: seed, TimeLimitMS: 30_000,
		}); code != http.StatusOK {
			t.Fatalf("ok solve: HTTP %d", code)
		}
	}
	fail = true
	if code, _ := postSolve(t, client, ts.URL, SolveRequest{
		Problem: testProblem(t, 0), Engine: "exact", Seed: 9, TimeLimitMS: 30_000,
	}); code != http.StatusInternalServerError {
		t.Fatalf("panicking solve: HTTP %d", code)
	}
	s.events.Sync()

	get := func(query string) DebugEventsResponse {
		t.Helper()
		resp, err := client.Get(ts.URL + "/debug/events" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /debug/events%s: HTTP %d", query, resp.StatusCode)
		}
		var out DebugEventsResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	if all := get(""); len(all.Events) != 3 {
		t.Fatalf("unfiltered events = %d, want 3", len(all.Events))
	}
	panics := get("?outcome=panic")
	if len(panics.Events) != 1 || panics.Events[0].Record.Outcome != "panic" {
		t.Fatalf("?outcome=panic returned %+v, want the one panic event", panics.Events)
	}
	oks := get("?kind=solve&outcome=solved")
	if len(oks.Events) != 2 {
		t.Fatalf("?kind=solve&outcome=solved = %d events, want 2", len(oks.Events))
	}
	for _, ev := range oks.Events {
		if ev.Kind != "solve" || ev.Outcome != "solved" {
			t.Fatalf("filter leaked event kind=%q outcome=%q", ev.Kind, ev.Outcome)
		}
	}
	if sessions := get("?kind=session"); len(sessions.Events) != 0 {
		t.Fatalf("?kind=session = %d events, want 0", len(sessions.Events))
	}
	if capped := get("?outcome=solved&n=1"); len(capped.Events) != 1 {
		t.Fatalf("?outcome=solved&n=1 = %d events, want 1", len(capped.Events))
	}

	resp, err := client.Get(ts.URL + "/debug/events?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("?n=bogus: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestSamplerAttributesEngineCPU boots the continuous profiler against
// a CPU-burning engine and waits for floorpland_profile_cpu_seconds to
// attribute work — the /metrics join of satellite profiling.
func TestSamplerAttributesEngineCPU(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling cadence test")
	}
	_, ts := newTestServer(t, Config{
		Workers:            2,
		QueueSize:          32,
		CacheSize:          32,
		Logger:             quietLogger(),
		ProfileEvery:       80 * time.Millisecond,
		ProfileCPUDuration: 40 * time.Millisecond,
		Solve: func(ctx context.Context, p *core.Problem, _ string, _ core.SolveOptions) (*core.Solution, error) {
			deadline := time.Now().Add(60 * time.Millisecond)
			x := 0
			for time.Now().Before(deadline) {
				x++
			}
			_ = x
			return fakeSolution(p), nil
		},
	})

	deadline := time.Now().Add(10 * time.Second)
	seed := int64(0)
	for {
		seed++
		if code, _ := postSolve(t, ts.Client(), ts.URL, SolveRequest{
			Problem: testProblem(t, 0), Engine: "exact", Seed: seed, TimeLimitMS: 30_000,
		}); code != http.StatusOK {
			t.Fatalf("solve: HTTP %d", code)
		}
		resp, err := ts.Client().Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		text := string(body)
		if strings.Contains(text, "floorpland_profile_cpu_seconds_total{") &&
			strings.Contains(text, "floorpland_profile_cycles_total") {
			if strings.Contains(text, `engine="exact"`) {
				return // attributed: the engine label reached /metrics
			}
		}
		if time.Now().After(deadline) {
			t.Skipf("no attributed CPU samples after 10s (profiler starved on this machine); last exposition:\n%s", text)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestSIGUSR2CaptureHelper covers Server.CaptureDiagBundle, the daemon's
// SIGUSR2 entry point.
func TestSIGUSR2CaptureHelper(t *testing.T) {
	dir := t.TempDir()
	s, _ := newTestServer(t, Config{
		Workers:            1,
		QueueSize:          8,
		CacheSize:          8,
		Logger:             quietLogger(),
		DiagDir:            dir,
		ProfileCPUDuration: 20 * time.Millisecond,
	})
	path, err := s.CaptureDiagBundle("SIGUSR2")
	if err != nil {
		t.Fatalf("CaptureDiagBundle: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("bundle not on disk: %v", err)
	}
	_, manifest := readBundleFile(t, data)
	if manifest.Trigger != "signal" {
		t.Fatalf("manifest trigger = %q, want signal", manifest.Trigger)
	}

	noDir, _ := newTestServer(t, Config{Workers: 1, QueueSize: 8, CacheSize: 8, Logger: quietLogger()})
	if _, err := noDir.CaptureDiagBundle("SIGUSR2"); err == nil {
		t.Fatal("CaptureDiagBundle without a diag dir must error")
	}
}
