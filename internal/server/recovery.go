package server

// Session recovery: with Config.SessionDir set, New scans the
// directory at startup and replays every recoverable session —
// snapshot base, WAL records folded on top, the rebuilt fabric verified
// frame by frame — back into the registry, so a crashed or restarted
// daemon resumes exactly the sessions it acknowledged. Graceful
// shutdown flushes a final snapshot per session (drainSessions), so a
// clean restart replays from snapshots alone.

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	floorplanner "repro"
	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/session"
	"repro/internal/telemetry"
)

// recoverSessions rebuilds every session persisted under SessionDir.
// Failures are per-session: a directory that cannot be recovered is
// logged and left in place for inspection, and the daemon serves on.
func (s *Server) recoverSessions() {
	entries, err := os.ReadDir(s.cfg.SessionDir)
	if err != nil {
		if !os.IsNotExist(err) {
			s.log.Error("session recovery: reading session dir", "dir", s.cfg.SessionDir, "err", err)
		}
		return
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(s.cfg.SessionDir, e.Name())
		// A session idle past the TTL would have been evicted had the
		// daemon stayed up; purge it instead of resurrecting it.
		if idle, ok := dirIdle(dir); ok && idle > s.cfg.SessionTTL {
			s.metrics.sessionsExpired.Add(1)
			if err := os.RemoveAll(dir); err != nil {
				s.log.Error("session recovery: purging expired session", "dir", dir, "err", err)
			} else {
				s.log.Info("session recovery: purged expired session", "id", e.Name(), "idle", idle.Round(time.Second))
			}
			continue
		}
		if err := s.recoverSession(dir, e.Name()); err != nil {
			s.log.Error("session recovery failed", "id", e.Name(), "err", err)
			s.emitRecoveryEvent(e.Name(), nil, err)
		}
	}
}

// recoverSession replays one session directory back into the registry.
func (s *Server) recoverSession(dir, name string) error {
	store, err := session.OpenStore(dir)
	if err != nil {
		return err
	}
	lr, err := store.Load()
	if err != nil {
		store.Close()
		return err
	}
	if lr.State == nil && len(lr.Records) == 0 {
		// Nothing was ever persisted — an aborted creation; clean it up.
		return store.Purge()
	}
	if lr.State == nil {
		store.Close()
		return fmt.Errorf("events without a snapshot base")
	}
	meta := lr.State.Meta
	if meta.ID == "" {
		meta.ID = name
	}
	dev, err := sessionDevice(meta.Device)
	if err != nil {
		store.Close()
		return err
	}
	var engine core.Engine
	if meta.Engine != "" {
		engine, err = floorplanner.NewEngine(meta.Engine)
		if err != nil {
			store.Close()
			return err
		}
	}
	mgr, rep, err := session.Restore(session.Config{
		Device:         dev,
		Engine:         engine,
		FragThreshold:  meta.FragThreshold,
		DefragCooldown: meta.DefragCooldown,
		SolveBudget:    time.Duration(meta.SolveBudgetMS) * time.Millisecond,
		Store:          store,
		SnapshotEvery:  s.cfg.SessionSnapshotEvery,
		Faults:         s.cfg.SessionFaults,
	}, lr)
	if err != nil {
		store.Close()
		return err
	}
	ls := &liveSession{
		id:      meta.ID,
		device:  dev.Name(),
		engine:  meta.Engine,
		created: meta.CreatedAt,
		mgr:     mgr,
	}
	if err := s.sessions.add(ls); err != nil {
		mgr.Close()
		return fmt.Errorf("registering recovered session: %w", err)
	}
	s.metrics.sessionRecoveries.Add(1)
	s.metrics.sessionReplays.Add(int64(rep.WALRecords))
	s.log.Info("session recovered",
		"session_id", ls.id,
		"device", ls.device,
		"live", rep.Live,
		"snapshot_events", rep.SnapshotEvents,
		"wal_records", rep.WALRecords,
		"frames_verified", rep.FramesVerified,
		"torn_tail", rep.TornTail != "",
	)
	s.emitRecoveryEvent(ls.id, rep, nil)
	return nil
}

// emitRecoveryEvent feeds one recovery outcome into the wide-event
// pipeline, so recoveries land in the same export stream as solves and
// session batches.
func (s *Server) emitRecoveryEvent(id string, rep *session.RecoveryReport, err error) {
	rec := flight.Record{
		Key:     id,
		Engine:  "session",
		Outcome: "ok",
	}
	if rep != nil {
		rec.Session = &flight.SessionStats{
			SessionID:       id,
			Events:          rep.SnapshotEvents,
			WALRecords:      rep.WALRecords,
			CorruptedFrames: rep.CorruptedFrames,
		}
	}
	if err != nil {
		rec.Outcome = "error"
		rec.Err = err.Error()
	}
	rec.Seq = s.recordFlight(rec)
	s.events.Emit(telemetry.Event{
		Record:   rec,
		Kind:     "recovery",
		Endpoint: "startup",
	})
}

// drainSessions flushes a final snapshot for every live session and
// closes their stores — the graceful-shutdown half of durability.
// Returns how many sessions flushed cleanly and the first error.
func (s *Server) drainSessions() (int, error) {
	var firstErr error
	flushed := 0
	for _, ls := range s.sessions.list() {
		if err := ls.mgr.Close(); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("draining session %s: %w", ls.id, err)
			}
			s.log.Error("session drain: final snapshot failed", "session_id", ls.id, "err", err)
			continue
		}
		flushed++
	}
	return flushed, firstErr
}

// dirIdle returns how long ago the directory's newest file was
// modified; ok is false for an empty or unreadable directory.
func dirIdle(dir string) (time.Duration, bool) {
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		return 0, false
	}
	var newest time.Time
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			continue
		}
		if info.ModTime().After(newest) {
			newest = info.ModTime()
		}
	}
	if newest.IsZero() {
		return 0, false
	}
	return time.Since(newest), true
}
