package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/core"
)

// hashedRequest is the canonical form fed to the hasher: the problem plus
// every solve knob that can change the answer. encoding/json emits map
// keys (device.Requirements) in sorted order and struct fields in
// declaration order, so the serialization is stable across processes —
// the same instance always maps to the same cache key.
type hashedRequest struct {
	Problem     *core.Problem `json:"problem"`
	Engine      string        `json:"engine"`
	TimeLimitNS int64         `json:"time_limit_ns"`
	Seed        int64         `json:"seed"`
	Workers     int           `json:"workers"`
}

// problemKey returns the canonical SHA-256 key of (problem, engine, opts).
// opts must already be normalized so that equivalent spellings of the
// defaults (Workers 0 vs 1) collapse to one key.
func problemKey(p *core.Problem, engine string, opts core.SolveOptions) (string, error) {
	data, err := json.Marshal(hashedRequest{
		Problem:     p,
		Engine:      engine,
		TimeLimitNS: int64(opts.TimeLimit),
		Seed:        opts.Seed,
		Workers:     opts.Workers,
	})
	if err != nil {
		return "", fmt.Errorf("server: hashing problem: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
