package server

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
)

func TestProblemKeyStable(t *testing.T) {
	opts := core.SolveOptions{TimeLimit: time.Second, Seed: 1, Workers: 2}
	k1, err := problemKey(testProblem(t, 0), "exact", opts)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := problemKey(testProblem(t, 0), "exact", opts)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("identical problems hash differently: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", k1)
	}
}

// Requirements is a map; the canonical serialization must not depend on
// insertion order.
func TestProblemKeyMapOrderIndependent(t *testing.T) {
	opts := core.SolveOptions{}.Normalized()
	p1 := testProblem(t, 0)
	p1.Regions[0].Req = device.Requirements{}
	p1.Regions[0].Req[device.ClassCLB] = 3
	p1.Regions[0].Req[device.ClassDSP] = 1
	p2 := testProblem(t, 0)
	p2.Regions[0].Req = device.Requirements{}
	p2.Regions[0].Req[device.ClassDSP] = 1
	p2.Regions[0].Req[device.ClassCLB] = 3

	k1, err := problemKey(p1, "exact", opts)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := problemKey(p2, "exact", opts)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("requirement insertion order changed the key")
	}
}

func TestProblemKeyDiscriminates(t *testing.T) {
	base := core.SolveOptions{TimeLimit: time.Second, Seed: 1, Workers: 1}
	ref, err := problemKey(testProblem(t, 0), "exact", base)
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name   string
		p      *core.Problem
		engine string
		opts   core.SolveOptions
	}{
		{"problem", testProblem(t, 1), "exact", base},
		{"engine", testProblem(t, 0), "annealing", base},
		{"time limit", testProblem(t, 0), "exact", core.SolveOptions{TimeLimit: 2 * time.Second, Seed: 1, Workers: 1}},
		{"seed", testProblem(t, 0), "exact", core.SolveOptions{TimeLimit: time.Second, Seed: 2, Workers: 1}},
		{"workers", testProblem(t, 0), "exact", core.SolveOptions{TimeLimit: time.Second, Seed: 1, Workers: 2}},
	}
	for _, v := range variants {
		k, err := problemKey(v.p, v.engine, v.opts)
		if err != nil {
			t.Fatal(err)
		}
		if k == ref {
			t.Errorf("changing %s did not change the key", v.name)
		}
	}
}

// Normalization collapses equivalent spellings of the defaults before
// hashing, so Workers 0 and 1 share a cache entry.
func TestProblemKeyNormalizedWorkers(t *testing.T) {
	k0, err := problemKey(testProblem(t, 0), "exact", core.SolveOptions{Workers: 0}.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	k1, err := problemKey(testProblem(t, 0), "exact", core.SolveOptions{Workers: 1}.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	if k0 != k1 {
		t.Fatal("normalized Workers 0 and 1 hash differently")
	}
}
