package server

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diag"
	"repro/internal/guard"
	"repro/internal/obs/hist"
	"repro/internal/portfolio"
	"repro/internal/slo"
	"repro/internal/telemetry"
)

// engineDist holds one engine's per-solve distributions (proper
// histograms: buckets + sum + count) and its monotonic work totals. The
// distributions answer tail questions ("did exact's p95 regress?") that
// the totals alone cannot.
type engineDist struct {
	// latency is seconds per solve.
	latency *hist.Hist
	// nodes and pivots are work counts per solve.
	nodes  *hist.Hist
	pivots *hist.Hist
	// firstIncumbent and bestIncumbent are seconds from solve start to
	// the engine span's first/best incumbent (observed only when the
	// solve produced incumbents).
	firstIncumbent *hist.Hist
	bestIncumbent  *hist.Hist

	// Monotonic totals, kept alongside the histograms for rate queries.
	nodesTotal      atomic.Int64
	pivotsTotal     atomic.Int64
	incumbentsTotal atomic.Int64
}

func newEngineDist() *engineDist {
	return &engineDist{
		latency:        hist.New(hist.LatencyBuckets()),
		nodes:          hist.New(hist.WorkBuckets()),
		pivots:         hist.New(hist.WorkBuckets()),
		firstIncumbent: hist.New(hist.LatencyBuckets()),
		bestIncumbent:  hist.New(hist.LatencyBuckets()),
	}
}

// metrics is the server's observability state: flat atomic counters plus
// per-engine distributions. All fields are safe for concurrent use; the
// per-engine map is guarded by mu for creation only.
type metrics struct {
	solvesStarted   atomic.Int64
	solvesCompleted atomic.Int64
	solvesFailed    atomic.Int64
	cacheHits       atomic.Int64
	cacheMisses     atomic.Int64
	dedupJoined     atomic.Int64
	queueRejected   atomic.Int64
	requests        atomic.Int64

	// Fault-tolerance counters (the guard layer).
	enginePanics     atomic.Int64
	invalidSolutions atomic.Int64
	poolPanics       atomic.Int64
	handlerPanics    atomic.Int64
	breakerRejected  atomic.Int64

	// Online-placement session counters (sessions.go).
	sessionsCreated  atomic.Int64
	sessionsClosed   atomic.Int64
	sessionsExpired  atomic.Int64
	sessionEvents    atomic.Int64
	sessionDefrags   atomic.Int64
	sessionCorrupted atomic.Int64

	// Session durability and fault-recovery counters (sessions.go,
	// recovery.go).
	sessionWALRecords atomic.Int64
	sessionReplays    atomic.Int64
	sessionRecoveries atomic.Int64
	sessionRetries    atomic.Int64
	sessionRollbacks  atomic.Int64

	queueDepth   func() int // live gauge, set by the server
	sessionsLive func() int // live session gauge, set by the server
	// breakerStats, when set, supplies the per-engine circuit breaker
	// snapshots for rendering.
	breakerStats func() []guard.BreakerSnapshot
	// portfolioStats, when set, supplies the portfolio engine's
	// per-member race counters for rendering.
	portfolioStats func() []portfolio.MemberStats
	// candCacheStats, when set, supplies the process-wide candidate-cache
	// hit/miss counters (core.CandCacheStats in production).
	candCacheStats func() (hits, misses int64)
	// eventStats, when set, supplies the wide-event exporter's pipeline
	// counters.
	eventStats func() telemetry.Stats
	// sloStatus, when set, supplies the evaluated SLO statuses. Rendering
	// /metrics drives the tracker's edge-triggered alert hook as a side
	// effect, so a scraped daemon needs no background evaluation loop.
	sloStatus func() []slo.Status
	// profileStats, when set, supplies the continuous profiler's
	// per-engine/phase CPU attribution and runtime gauges.
	profileStats func() diag.ProfileStats
	// diagStats, when set, supplies the diagnostic-bundle pipeline
	// counters.
	diagStats func() diag.BundleStats

	// version labels floorpland_build_info; start anchors the uptime gauge.
	version string
	start   time.Time

	mu        sync.Mutex
	perEngine map[string]*engineDist
}

func newMetrics() *metrics {
	return &metrics{
		perEngine:    map[string]*engineDist{},
		queueDepth:   func() int { return 0 },
		sessionsLive: func() int { return 0 },
		version:      "dev",
		start:        time.Now(),
	}
}

// dist returns (creating if needed) the named engine's distributions.
func (m *metrics) dist(engine string) *engineDist {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.perEngine[engine]
	if !ok {
		d = newEngineDist()
		m.perEngine[engine] = d
	}
	return d
}

// observeLatency folds one solve's wall-clock into the engine's latency
// histogram.
func (m *metrics) observeLatency(engine string, d time.Duration) {
	m.dist(engine).latency.Observe(d.Seconds())
}

// recordTelemetry folds one solve's probe totals into the per-engine
// aggregates: monotonic totals plus the per-solve work distributions.
// engine is the requested engine name, so stage sub-spans (MILP passes,
// warm-start seeds) accumulate under the engine the client asked for.
func (m *metrics) recordTelemetry(engine string, nodes, pivots, incumbents int64) {
	d := m.dist(engine)
	d.nodesTotal.Add(nodes)
	d.pivotsTotal.Add(pivots)
	d.incumbentsTotal.Add(incumbents)
	d.nodes.Observe(float64(nodes))
	d.pivots.Observe(float64(pivots))
}

// recordIncumbentTimes folds one solve's time-to-first/best-incumbent
// into the engine's distributions. Call only when the solve produced
// incumbents.
func (m *metrics) recordIncumbentTimes(engine string, first, best time.Duration) {
	d := m.dist(engine)
	d.firstIncumbent.Observe(first.Seconds())
	d.bestIncumbent.Observe(best.Seconds())
}

// engineNames returns the engines with recorded distributions, sorted.
func (m *metrics) engineNames() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.perEngine))
	for name := range m.perEngine {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DistSummary condenses one distribution for /debug/solves: count, mean
// and bucket-interpolated quantiles (the same estimate Prometheus's
// histogram_quantile computes). Zero-valued when the distribution is
// empty.
type DistSummary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
}

// summarize converts a snapshot, scaling values by scale (1000 turns
// seconds into milliseconds).
func summarize(s hist.Snapshot, scale float64) DistSummary {
	if s.Count == 0 {
		return DistSummary{}
	}
	return DistSummary{
		Count: s.Count,
		Mean:  s.Mean() * scale,
		P50:   s.Quantile(0.5) * scale,
		P95:   s.Quantile(0.95) * scale,
	}
}

// EngineDistSummary is one engine's /debug/solves distribution summary.
type EngineDistSummary struct {
	// Solves counts observed solves (the latency histogram's count).
	Solves                 int64       `json:"solves"`
	LatencyMS              DistSummary `json:"latency_ms"`
	Nodes                  DistSummary `json:"nodes"`
	Pivots                 DistSummary `json:"pivots"`
	TimeToFirstIncumbentMS DistSummary `json:"time_to_first_incumbent_ms"`
	TimeToBestIncumbentMS  DistSummary `json:"time_to_best_incumbent_ms"`
}

// engineSummaries snapshots every engine's distributions for
// /debug/solves.
func (m *metrics) engineSummaries() map[string]EngineDistSummary {
	out := map[string]EngineDistSummary{}
	for _, name := range m.engineNames() {
		d := m.dist(name)
		lat := d.latency.Snapshot()
		out[name] = EngineDistSummary{
			Solves:                 lat.Count,
			LatencyMS:              summarize(lat, 1000),
			Nodes:                  summarize(d.nodes.Snapshot(), 1),
			Pivots:                 summarize(d.pivots.Snapshot(), 1),
			TimeToFirstIncumbentMS: summarize(d.firstIncumbent.Snapshot(), 1000),
			TimeToBestIncumbentMS:  summarize(d.bestIncumbent.Snapshot(), 1000),
		}
	}
	return out
}

// render writes the metrics in the Prometheus text exposition format.
func (m *metrics) render() string {
	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("floorpland_requests_total", "HTTP requests accepted on /v1/solve.", m.requests.Load())
	counter("floorpland_solves_started_total", "Solves handed to the worker pool.", m.solvesStarted.Load())
	counter("floorpland_solves_completed_total", "Solves that produced a solution or a proven infeasibility.", m.solvesCompleted.Load())
	counter("floorpland_solves_failed_total", "Solves that errored, timed out or were canceled.", m.solvesFailed.Load())
	counter("floorpland_cache_hits_total", "Solve requests answered from the solution cache.", m.cacheHits.Load())
	counter("floorpland_cache_misses_total", "Solve requests not present in the solution cache.", m.cacheMisses.Load())
	counter("floorpland_dedup_joined_total", "Solve requests that joined an identical in-flight solve.", m.dedupJoined.Load())
	counter("floorpland_queue_rejected_total", "Solve requests rejected with 429 because the queue was full.", m.queueRejected.Load())
	counter("floorpland_engine_panics_total", "Engine panics recovered by the guard layer.", m.enginePanics.Load())
	counter("floorpland_invalid_solutions_total", "Engine solutions rejected by serving-boundary validation.", m.invalidSolutions.Load())
	counter("floorpland_pool_panics_total", "Panics recovered by the worker pool's last-resort handler.", m.poolPanics.Load())
	counter("floorpland_handler_panics_total", "Panics recovered by the HTTP handler middleware.", m.handlerPanics.Load())
	counter("floorpland_breaker_rejected_total", "Solve requests rejected because the engine's circuit breaker was open.", m.breakerRejected.Load())
	counter("floorpland_sessions_created_total", "Online-placement sessions created.", m.sessionsCreated.Load())
	counter("floorpland_sessions_closed_total", "Online-placement sessions closed by clients.", m.sessionsClosed.Load())
	counter("floorpland_sessions_expired_total", "Online-placement sessions reclaimed after their idle TTL.", m.sessionsExpired.Load())
	counter("floorpland_session_events_total", "Arrival/departure events applied across all sessions.", m.sessionEvents.Load())
	counter("floorpland_session_defrag_cycles_total", "Executed defragmentation cycles across all sessions.", m.sessionDefrags.Load())
	counter("floorpland_session_corrupted_frames_total", "Frame readback mismatches across all executed relocation schedules (0 on a correct run).", m.sessionCorrupted.Load())
	counter("floorpland_session_wal_records_total", "Write-ahead-log records appended across all durable sessions.", m.sessionWALRecords.Load())
	counter("floorpland_session_replays_total", "WAL records replayed while recovering sessions at startup.", m.sessionReplays.Load())
	counter("floorpland_session_recoveries_total", "Sessions rebuilt from snapshot+WAL at startup.", m.sessionRecoveries.Load())
	counter("floorpland_session_reconfig_retries_total", "Frame-write attempts retried after transient faults or detected corruptions.", m.sessionRetries.Load())
	counter("floorpland_session_rollbacks_total", "Relocation-schedule moves rolled back after mid-schedule hard failures.", m.sessionRollbacks.Load())
	if m.candCacheStats != nil {
		hits, misses := m.candCacheStats()
		counter("floorpland_candidate_cache_hits_total", "Candidate enumerations served from the shared candidate cache.", hits)
		counter("floorpland_candidate_cache_misses_total", "Candidate enumerations that ran the full sweep (cache misses).", misses)
	}
	if m.eventStats != nil {
		es := m.eventStats()
		counter("floorpland_events_emitted_total", "Wide events offered to the export pipeline.", es.Emitted)
		counter("floorpland_events_exported_total", "Wide events delivered to the configured sink.", es.Exported)
		counter("floorpland_events_dropped_total", "Wide events dropped because the export queue was full.", es.DroppedQueue)
		counter("floorpland_events_sampled_out_total", "Unremarkable wide events discarded by tail sampling.", es.SampledOut)
		counter("floorpland_events_sink_errors_total", "Wide-event sink write failures.", es.SinkErrors)
	}
	if m.diagStats != nil {
		ds := m.diagStats()
		if len(ds.Captured) > 0 {
			triggers := make([]string, 0, len(ds.Captured))
			for t := range ds.Captured {
				triggers = append(triggers, t)
			}
			sort.Strings(triggers)
			b.WriteString("# HELP floorpland_diag_bundles_total Diagnostic bundles captured, by trigger cause.\n# TYPE floorpland_diag_bundles_total counter\n")
			for _, t := range triggers {
				fmt.Fprintf(&b, "floorpland_diag_bundles_total{trigger=%q} %d\n", t, ds.Captured[t])
			}
		}
		counter("floorpland_diag_bundle_errors_total", "Diagnostic bundle captures that failed.", ds.Errors)
		counter("floorpland_diag_rate_limited_total", "Anomaly bundle triggers suppressed by the rate limit.", ds.RateLimited)
		counter("floorpland_diag_dropped_total", "Anomaly bundle triggers dropped because the capture queue was full.", ds.Dropped)
	}
	if m.profileStats != nil {
		ps := m.profileStats()
		counter("floorpland_profile_cycles_total", "Continuous-profiler sampling cycles completed.", ps.Cycles)
		counter("floorpland_profile_errors_total", "Continuous-profiler cycles that failed to capture or parse.", ps.Errors)
		if len(ps.Shares) > 0 {
			b.WriteString("# HELP floorpland_profile_cpu_seconds_total Sampled CPU seconds attributed by goroutine label, by engine and phase.\n# TYPE floorpland_profile_cpu_seconds_total counter\n")
			for _, sh := range ps.Shares {
				fmt.Fprintf(&b, "floorpland_profile_cpu_seconds_total{engine=%q,phase=%q} %g\n", sh.Engine, sh.Phase, sh.Seconds)
			}
		}
		fmt.Fprintf(&b, "# HELP floorpland_profile_heap_alloc_bytes Live heap bytes at the last profiler cycle.\n# TYPE floorpland_profile_heap_alloc_bytes gauge\nfloorpland_profile_heap_alloc_bytes %d\n", ps.HeapAllocBytes)
		fmt.Fprintf(&b, "# HELP floorpland_profile_goroutines Goroutines at the last profiler cycle.\n# TYPE floorpland_profile_goroutines gauge\nfloorpland_profile_goroutines %d\n", ps.Goroutines)
	}
	fmt.Fprintf(&b, "# HELP floorpland_queue_depth Solves waiting in the pool queue.\n# TYPE floorpland_queue_depth gauge\nfloorpland_queue_depth %d\n", m.queueDepth())
	fmt.Fprintf(&b, "# HELP floorpland_sessions_live Online-placement sessions currently registered.\n# TYPE floorpland_sessions_live gauge\nfloorpland_sessions_live %d\n", m.sessionsLive())
	// Labels must stay alphabetically sorted (the exposition lint test
	// enforces this for every labeled sample).
	fmt.Fprintf(&b, "# HELP floorpland_build_info Build metadata; the value is always 1.\n# TYPE floorpland_build_info gauge\nfloorpland_build_info{go_version=%q,version=%q} 1\n",
		runtime.Version(), m.version)
	fmt.Fprintf(&b, "# HELP floorpland_uptime_seconds Seconds since the server started.\n# TYPE floorpland_uptime_seconds gauge\nfloorpland_uptime_seconds %g\n",
		time.Since(m.start).Seconds())

	engines := m.engineNames()
	dists := make([]*engineDist, len(engines))
	for i, name := range engines {
		dists[i] = m.dist(name)
	}

	if len(engines) > 0 {
		b.WriteString("# HELP floorpland_engine_nodes_total Search/branch-and-bound nodes expanded, by requested engine.\n# TYPE floorpland_engine_nodes_total counter\n")
		for i, name := range engines {
			fmt.Fprintf(&b, "floorpland_engine_nodes_total{engine=%q} %d\n", name, dists[i].nodesTotal.Load())
		}
		b.WriteString("# HELP floorpland_engine_pivots_total Simplex pivots spent in LP relaxations, by requested engine.\n# TYPE floorpland_engine_pivots_total counter\n")
		for i, name := range engines {
			fmt.Fprintf(&b, "floorpland_engine_pivots_total{engine=%q} %d\n", name, dists[i].pivotsTotal.Load())
		}
		b.WriteString("# HELP floorpland_engine_incumbents_total Incumbent improvements observed, by requested engine.\n# TYPE floorpland_engine_incumbents_total counter\n")
		for i, name := range engines {
			fmt.Fprintf(&b, "floorpland_engine_incumbents_total{engine=%q} %d\n", name, dists[i].incumbentsTotal.Load())
		}
	}

	histFamily := func(name, help string, snap func(*engineDist) hist.Snapshot) {
		if len(engines) == 0 {
			return
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		for i, engine := range engines {
			s := snap(dists[i])
			for j, ub := range s.Bounds {
				fmt.Fprintf(&b, "%s_bucket{engine=%q,le=%q} %d\n", name, engine, trimFloat(ub), s.Counts[j])
			}
			fmt.Fprintf(&b, "%s_bucket{engine=%q,le=\"+Inf\"} %d\n", name, engine, s.Count)
			fmt.Fprintf(&b, "%s_sum{engine=%q} %g\n", name, engine, s.Sum)
			fmt.Fprintf(&b, "%s_count{engine=%q} %d\n", name, engine, s.Count)
		}
	}
	histFamily("floorpland_solve_seconds", "Solve latency by engine.",
		func(d *engineDist) hist.Snapshot { return d.latency.Snapshot() })
	histFamily("floorpland_solve_nodes", "Branch-and-bound nodes expanded per solve, by engine.",
		func(d *engineDist) hist.Snapshot { return d.nodes.Snapshot() })
	histFamily("floorpland_solve_pivots", "Simplex pivots per solve, by engine.",
		func(d *engineDist) hist.Snapshot { return d.pivots.Snapshot() })
	histFamily("floorpland_time_to_first_incumbent_seconds", "Seconds from solve start to the first incumbent, by engine (solves that produced incumbents).",
		func(d *engineDist) hist.Snapshot { return d.firstIncumbent.Snapshot() })
	histFamily("floorpland_time_to_best_incumbent_seconds", "Seconds from solve start to the best incumbent, by engine (solves that produced incumbents).",
		func(d *engineDist) hist.Snapshot { return d.bestIncumbent.Snapshot() })

	if m.breakerStats != nil {
		if snaps := m.breakerStats(); len(snaps) > 0 {
			b.WriteString("# HELP floorpland_breaker_state Per-engine circuit breaker state: 0 closed, 1 half-open, 2 open.\n# TYPE floorpland_breaker_state gauge\n")
			for _, bs := range snaps {
				fmt.Fprintf(&b, "floorpland_breaker_state{engine=%q} %d\n", bs.Name, int(bs.State))
			}
			b.WriteString("# HELP floorpland_breaker_trips_total Circuit breaker closed-to-open transitions, by engine.\n# TYPE floorpland_breaker_trips_total counter\n")
			for _, bs := range snaps {
				fmt.Fprintf(&b, "floorpland_breaker_trips_total{engine=%q} %d\n", bs.Name, bs.Trips)
			}
		}
	}

	if m.sloStatus != nil {
		if statuses := m.sloStatus(); len(statuses) > 0 {
			b.WriteString("# HELP floorpland_slo_error_budget_remaining Unspent fraction of each objective's error budget (1 untouched, negative overspent).\n# TYPE floorpland_slo_error_budget_remaining gauge\n")
			for _, st := range statuses {
				fmt.Fprintf(&b, "floorpland_slo_error_budget_remaining{slo=%q} %g\n", st.Objective.Name, st.ErrorBudgetRemaining)
			}
			b.WriteString("# HELP floorpland_slo_burn_rate Error-budget burn rate per objective and rule window (1 = budgeted pace).\n# TYPE floorpland_slo_burn_rate gauge\n")
			for _, st := range statuses {
				for _, br := range st.BurnRates {
					fmt.Fprintf(&b, "floorpland_slo_burn_rate{slo=%q,window=%q} %g\n", st.Objective.Name, br.Window, br.Burn)
				}
			}
		}
	}

	if m.portfolioStats != nil {
		if stats := m.portfolioStats(); len(stats) > 0 {
			b.WriteString("# HELP floorpland_portfolio_member_races_total Portfolio races each member engine ran in.\n# TYPE floorpland_portfolio_member_races_total counter\n")
			for _, ms := range stats {
				fmt.Fprintf(&b, "floorpland_portfolio_member_races_total{member=%q} %d\n", ms.Name, ms.Races)
			}
			b.WriteString("# HELP floorpland_portfolio_member_wins_total Portfolio races each member engine won.\n# TYPE floorpland_portfolio_member_wins_total counter\n")
			for _, ms := range stats {
				fmt.Fprintf(&b, "floorpland_portfolio_member_wins_total{member=%q} %d\n", ms.Name, ms.Wins)
			}
			b.WriteString("# HELP floorpland_portfolio_member_failures_total Portfolio member runs that returned an error.\n# TYPE floorpland_portfolio_member_failures_total counter\n")
			for _, ms := range stats {
				fmt.Fprintf(&b, "floorpland_portfolio_member_failures_total{member=%q} %d\n", ms.Name, ms.Failures)
			}
			b.WriteString("# HELP floorpland_portfolio_member_seconds_sum Cumulative portfolio member solve time.\n# TYPE floorpland_portfolio_member_seconds_sum counter\n")
			for _, ms := range stats {
				fmt.Fprintf(&b, "floorpland_portfolio_member_seconds_sum{member=%q} %g\n", ms.Name, ms.Total.Seconds())
			}
		}
	}
	return b.String()
}

// trimFloat formats a bucket bound without trailing zeros (0.05, 1, 30).
func trimFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", f), "0"), ".")
}
