package server

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/guard"
	"repro/internal/portfolio"
)

// solveBuckets are the latency histogram upper bounds in seconds, chosen
// to span the paper's workloads: sub-millisecond heuristic solves up to
// minute-scale exact/MILP proofs.
var solveBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120}

// histogram is a fixed-bucket latency histogram safe for concurrent use.
// counts[i] counts observations <= solveBuckets[i]; counts[len(buckets)]
// is the overflow (+Inf) bucket. sumNanos accumulates total observed time.
type histogram struct {
	counts   []atomic.Int64
	sumNanos atomic.Int64
	total    atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(solveBuckets)+1)}
}

func (h *histogram) observe(d time.Duration) {
	secs := d.Seconds()
	idx := len(solveBuckets)
	for i, ub := range solveBuckets {
		if secs <= ub {
			idx = i
			break
		}
	}
	h.counts[idx].Add(1)
	h.sumNanos.Add(int64(d))
	h.total.Add(1)
}

// metrics is the server's observability state: flat atomic counters plus
// one latency histogram per engine. All fields are safe for concurrent
// use; the per-engine map is guarded by mu for creation only.
type metrics struct {
	solvesStarted   atomic.Int64
	solvesCompleted atomic.Int64
	solvesFailed    atomic.Int64
	cacheHits       atomic.Int64
	cacheMisses     atomic.Int64
	dedupJoined     atomic.Int64
	queueRejected   atomic.Int64
	requests        atomic.Int64

	// Fault-tolerance counters (the guard layer).
	enginePanics     atomic.Int64
	invalidSolutions atomic.Int64
	poolPanics       atomic.Int64
	handlerPanics    atomic.Int64
	breakerRejected  atomic.Int64

	queueDepth func() int // live gauge, set by the server
	// breakerStats, when set, supplies the per-engine circuit breaker
	// snapshots for rendering.
	breakerStats func() []guard.BreakerSnapshot
	// portfolioStats, when set, supplies the portfolio engine's
	// per-member race counters for rendering.
	portfolioStats func() []portfolio.MemberStats
	// candCacheStats, when set, supplies the process-wide candidate-cache
	// hit/miss counters (core.CandCacheStats in production).
	candCacheStats func() (hits, misses int64)

	// version labels floorpland_build_info; start anchors the uptime gauge.
	version string
	start   time.Time

	mu        sync.Mutex
	perEngine map[string]*histogram
	perTelem  map[string]*engineTelem
}

// engineTelem aggregates the probe-layer solve telemetry per engine for
// /metrics: search nodes, simplex pivots and incumbent improvements.
type engineTelem struct {
	nodes      atomic.Int64
	pivots     atomic.Int64
	incumbents atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{
		perEngine:  map[string]*histogram{},
		perTelem:   map[string]*engineTelem{},
		queueDepth: func() int { return 0 },
		version:    "dev",
		start:      time.Now(),
	}
}

// engineHistogram returns (creating if needed) the named engine's
// solve-time histogram.
func (m *metrics) engineHistogram(engine string) *histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.perEngine[engine]
	if !ok {
		h = newHistogram()
		m.perEngine[engine] = h
	}
	return h
}

// engineTelemetry returns (creating if needed) the named engine's probe
// telemetry aggregates.
func (m *metrics) engineTelemetry(engine string) *engineTelem {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.perTelem[engine]
	if !ok {
		t = &engineTelem{}
		m.perTelem[engine] = t
	}
	return t
}

// recordTelemetry folds one solve's probe totals into the per-engine
// aggregates. engine is the requested engine name, so stage sub-spans
// (MILP passes, warm-start seeds) accumulate under the engine the client
// asked for.
func (m *metrics) recordTelemetry(engine string, nodes, pivots, incumbents int64) {
	t := m.engineTelemetry(engine)
	t.nodes.Add(nodes)
	t.pivots.Add(pivots)
	t.incumbents.Add(incumbents)
}

// render writes the metrics in the Prometheus text exposition format.
func (m *metrics) render() string {
	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("floorpland_requests_total", "HTTP requests accepted on /v1/solve.", m.requests.Load())
	counter("floorpland_solves_started_total", "Solves handed to the worker pool.", m.solvesStarted.Load())
	counter("floorpland_solves_completed_total", "Solves that produced a solution or a proven infeasibility.", m.solvesCompleted.Load())
	counter("floorpland_solves_failed_total", "Solves that errored, timed out or were canceled.", m.solvesFailed.Load())
	counter("floorpland_cache_hits_total", "Solve requests answered from the solution cache.", m.cacheHits.Load())
	counter("floorpland_cache_misses_total", "Solve requests not present in the solution cache.", m.cacheMisses.Load())
	counter("floorpland_dedup_joined_total", "Solve requests that joined an identical in-flight solve.", m.dedupJoined.Load())
	counter("floorpland_queue_rejected_total", "Solve requests rejected with 429 because the queue was full.", m.queueRejected.Load())
	counter("floorpland_engine_panics_total", "Engine panics recovered by the guard layer.", m.enginePanics.Load())
	counter("floorpland_invalid_solutions_total", "Engine solutions rejected by serving-boundary validation.", m.invalidSolutions.Load())
	counter("floorpland_pool_panics_total", "Panics recovered by the worker pool's last-resort handler.", m.poolPanics.Load())
	counter("floorpland_handler_panics_total", "Panics recovered by the HTTP handler middleware.", m.handlerPanics.Load())
	counter("floorpland_breaker_rejected_total", "Solve requests rejected because the engine's circuit breaker was open.", m.breakerRejected.Load())
	if m.candCacheStats != nil {
		hits, misses := m.candCacheStats()
		counter("floorpland_candidate_cache_hits_total", "Candidate enumerations served from the shared candidate cache.", hits)
		counter("floorpland_candidate_cache_misses_total", "Candidate enumerations that ran the full sweep (cache misses).", misses)
	}
	fmt.Fprintf(&b, "# HELP floorpland_queue_depth Solves waiting in the pool queue.\n# TYPE floorpland_queue_depth gauge\nfloorpland_queue_depth %d\n", m.queueDepth())
	// Labels must stay alphabetically sorted (the exposition lint test
	// enforces this for every labeled sample).
	fmt.Fprintf(&b, "# HELP floorpland_build_info Build metadata; the value is always 1.\n# TYPE floorpland_build_info gauge\nfloorpland_build_info{go_version=%q,version=%q} 1\n",
		runtime.Version(), m.version)
	fmt.Fprintf(&b, "# HELP floorpland_uptime_seconds Seconds since the server started.\n# TYPE floorpland_uptime_seconds gauge\nfloorpland_uptime_seconds %g\n",
		time.Since(m.start).Seconds())

	m.mu.Lock()
	engines := make([]string, 0, len(m.perEngine))
	for name := range m.perEngine {
		engines = append(engines, name)
	}
	sort.Strings(engines)
	hists := make([]*histogram, len(engines))
	for i, name := range engines {
		hists[i] = m.perEngine[name]
	}
	telemEngines := make([]string, 0, len(m.perTelem))
	for name := range m.perTelem {
		telemEngines = append(telemEngines, name)
	}
	sort.Strings(telemEngines)
	telems := make([]*engineTelem, len(telemEngines))
	for i, name := range telemEngines {
		telems[i] = m.perTelem[name]
	}
	m.mu.Unlock()

	if len(telemEngines) > 0 {
		b.WriteString("# HELP floorpland_engine_nodes_total Search/branch-and-bound nodes expanded, by requested engine.\n# TYPE floorpland_engine_nodes_total counter\n")
		for i, name := range telemEngines {
			fmt.Fprintf(&b, "floorpland_engine_nodes_total{engine=%q} %d\n", name, telems[i].nodes.Load())
		}
		b.WriteString("# HELP floorpland_engine_pivots_total Simplex pivots spent in LP relaxations, by requested engine.\n# TYPE floorpland_engine_pivots_total counter\n")
		for i, name := range telemEngines {
			fmt.Fprintf(&b, "floorpland_engine_pivots_total{engine=%q} %d\n", name, telems[i].pivots.Load())
		}
		b.WriteString("# HELP floorpland_engine_incumbents_total Incumbent improvements observed, by requested engine.\n# TYPE floorpland_engine_incumbents_total counter\n")
		for i, name := range telemEngines {
			fmt.Fprintf(&b, "floorpland_engine_incumbents_total{engine=%q} %d\n", name, telems[i].incumbents.Load())
		}
	}

	if len(engines) > 0 {
		b.WriteString("# HELP floorpland_solve_seconds Solve latency by engine.\n# TYPE floorpland_solve_seconds histogram\n")
	}
	for i, name := range engines {
		h := hists[i]
		cum := int64(0)
		for j, ub := range solveBuckets {
			cum += h.counts[j].Load()
			fmt.Fprintf(&b, "floorpland_solve_seconds_bucket{engine=%q,le=%q} %d\n", name, trimFloat(ub), cum)
		}
		cum += h.counts[len(solveBuckets)].Load()
		fmt.Fprintf(&b, "floorpland_solve_seconds_bucket{engine=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(&b, "floorpland_solve_seconds_sum{engine=%q} %g\n", name, time.Duration(h.sumNanos.Load()).Seconds())
		fmt.Fprintf(&b, "floorpland_solve_seconds_count{engine=%q} %d\n", name, h.total.Load())
	}

	if m.breakerStats != nil {
		if snaps := m.breakerStats(); len(snaps) > 0 {
			b.WriteString("# HELP floorpland_breaker_state Per-engine circuit breaker state: 0 closed, 1 half-open, 2 open.\n# TYPE floorpland_breaker_state gauge\n")
			for _, bs := range snaps {
				fmt.Fprintf(&b, "floorpland_breaker_state{engine=%q} %d\n", bs.Name, int(bs.State))
			}
			b.WriteString("# HELP floorpland_breaker_trips_total Circuit breaker closed-to-open transitions, by engine.\n# TYPE floorpland_breaker_trips_total counter\n")
			for _, bs := range snaps {
				fmt.Fprintf(&b, "floorpland_breaker_trips_total{engine=%q} %d\n", bs.Name, bs.Trips)
			}
		}
	}

	if m.portfolioStats != nil {
		if stats := m.portfolioStats(); len(stats) > 0 {
			b.WriteString("# HELP floorpland_portfolio_member_races_total Portfolio races each member engine ran in.\n# TYPE floorpland_portfolio_member_races_total counter\n")
			for _, ms := range stats {
				fmt.Fprintf(&b, "floorpland_portfolio_member_races_total{member=%q} %d\n", ms.Name, ms.Races)
			}
			b.WriteString("# HELP floorpland_portfolio_member_wins_total Portfolio races each member engine won.\n# TYPE floorpland_portfolio_member_wins_total counter\n")
			for _, ms := range stats {
				fmt.Fprintf(&b, "floorpland_portfolio_member_wins_total{member=%q} %d\n", ms.Name, ms.Wins)
			}
			b.WriteString("# HELP floorpland_portfolio_member_failures_total Portfolio member runs that returned an error.\n# TYPE floorpland_portfolio_member_failures_total counter\n")
			for _, ms := range stats {
				fmt.Fprintf(&b, "floorpland_portfolio_member_failures_total{member=%q} %d\n", ms.Name, ms.Failures)
			}
			b.WriteString("# HELP floorpland_portfolio_member_seconds_sum Cumulative portfolio member solve time.\n# TYPE floorpland_portfolio_member_seconds_sum counter\n")
			for _, ms := range stats {
				fmt.Fprintf(&b, "floorpland_portfolio_member_seconds_sum{member=%q} %g\n", ms.Name, ms.Total.Seconds())
			}
		}
	}
	return b.String()
}

// trimFloat formats a bucket bound without trailing zeros (0.05, 1, 30).
func trimFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", f), "0"), ".")
}
