package guard

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

func goodEngine(name string) core.Engine {
	return &stubEngine{name: name, fn: func(_ context.Context, p *core.Problem, _ core.SolveOptions) (*core.Solution, error) {
		return validSolution(p), nil
	}}
}

func panicEngine(name string) core.Engine {
	return &stubEngine{name: name, fn: func(context.Context, *core.Problem, core.SolveOptions) (*core.Solution, error) {
		panic(name + " exploded")
	}}
}

func lyingEngine(name string) core.Engine {
	return &stubEngine{name: name, fn: func(_ context.Context, p *core.Problem, _ core.SolveOptions) (*core.Solution, error) {
		return invalidSolution(p), nil
	}}
}

func erroringEngine(name string, err error) core.Engine {
	return &stubEngine{name: name, fn: func(context.Context, *core.Problem, core.SolveOptions) (*core.Solution, error) {
		return nil, err
	}}
}

func TestFallbackAdvancesPastFaults(t *testing.T) {
	p := testProblem(t)
	f := NewFallback(
		FallbackMember{Engine: panicEngine("boom")},
		FallbackMember{Engine: lyingEngine("liar")},
		FallbackMember{Engine: goodEngine("good")},
	)
	sol, err := f.Solve(context.Background(), p, core.SolveOptions{TimeLimit: 5 * time.Second})
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if err := sol.Validate(p); err != nil {
		t.Fatalf("fallback served an invalid solution: %v", err)
	}
	if sol.Engine != "fallback(good)" {
		t.Errorf("winner = %q, want fallback(good)", sol.Engine)
	}
}

func TestFallbackTrustedInfeasibleShortCircuits(t *testing.T) {
	p := testProblem(t)
	called := false
	later := &stubEngine{name: "later", fn: func(_ context.Context, p *core.Problem, _ core.SolveOptions) (*core.Solution, error) {
		called = true
		return validSolution(p), nil
	}}
	f := NewFallback(
		FallbackMember{Engine: erroringEngine("prover", core.ErrInfeasible), TrustInfeasible: true},
		FallbackMember{Engine: later},
	)
	_, err := f.Solve(context.Background(), p, core.SolveOptions{TimeLimit: time.Second})
	if !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	if called {
		t.Error("chain advanced past a trusted infeasibility proof")
	}
}

func TestFallbackUntrustedInfeasibleAdvances(t *testing.T) {
	p := testProblem(t)
	f := NewFallback(
		FallbackMember{Engine: erroringEngine("heuristic", core.ErrInfeasible)},
		FallbackMember{Engine: goodEngine("good")},
	)
	sol, err := f.Solve(context.Background(), p, core.SolveOptions{TimeLimit: time.Second})
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if sol.Engine != "fallback(good)" {
		t.Errorf("winner = %q, want fallback(good)", sol.Engine)
	}
}

func TestFallbackBudgetExhaustionIsNoSolution(t *testing.T) {
	p := testProblem(t)
	f := NewFallback(
		FallbackMember{Engine: erroringEngine("a", core.ErrNoSolution)},
		FallbackMember{Engine: erroringEngine("b", fmt.Errorf("slow: %w", context.DeadlineExceeded))},
	)
	_, err := f.Solve(context.Background(), p, core.SolveOptions{TimeLimit: time.Second})
	if !errors.Is(err, core.ErrNoSolution) {
		t.Fatalf("budget exhaustion should wrap ErrNoSolution, got %v", err)
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		t.Errorf("budget exhaustion misreported as a panic: %v", err)
	}
}

func TestFallbackAllHardFaults(t *testing.T) {
	p := testProblem(t)
	f := NewFallback(
		FallbackMember{Engine: panicEngine("boom")},
		FallbackMember{Engine: lyingEngine("liar")},
	)
	_, err := f.Solve(context.Background(), p, core.SolveOptions{TimeLimit: time.Second})
	if err == nil {
		t.Fatal("all-faulty chain returned nil error")
	}
	if errors.Is(err, core.ErrNoSolution) || errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("hard faults must not masquerade as budget/infeasible outcomes: %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Errorf("joined error does not expose the PanicError: %v", err)
	}
	var ie *InvalidSolutionError
	if !errors.As(err, &ie) {
		t.Errorf("joined error does not expose the InvalidSolutionError: %v", err)
	}
	if got := core.ObsOutcome(nil, err); got != obs.OutcomePanic {
		t.Errorf("ObsOutcome = %q, want %q", got, obs.OutcomePanic)
	}
}

// TestFallbackHardFaultDoesNotLeakStageSentinels is the regression test
// for a false infeasibility proof: milp-ho claims infeasible (untrusted,
// not a proof), then the next member panics. The joined hard-fault error
// must not satisfy errors.Is for the budget-class sentinels the chain
// deliberately advanced past, or the server would cache and serve the
// claim as definitive "infeasible" — and the fallback engine's own
// breaker would score the total failure as a success.
func TestFallbackHardFaultDoesNotLeakStageSentinels(t *testing.T) {
	p := testProblem(t)
	f := NewFallback(
		FallbackMember{Engine: erroringEngine("heuristic", core.ErrInfeasible)},
		FallbackMember{Engine: erroringEngine("slow", fmt.Errorf("slow: %w", context.DeadlineExceeded))},
		FallbackMember{Engine: erroringEngine("dry", core.ErrNoSolution)},
		FallbackMember{Engine: panicEngine("boom")},
	)
	_, err := f.Solve(context.Background(), p, core.SolveOptions{TimeLimit: 5 * time.Second})
	if err == nil {
		t.Fatal("faulty chain returned nil error")
	}
	for sentinel, name := range map[error]string{
		core.ErrInfeasible:       "ErrInfeasible",
		core.ErrNoSolution:       "ErrNoSolution",
		context.DeadlineExceeded: "DeadlineExceeded",
		context.Canceled:         "Canceled",
	} {
		if errors.Is(err, sentinel) {
			t.Errorf("hard-fault error leaks stage sentinel %s: %v", name, err)
		}
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Errorf("joined error does not expose the PanicError: %v", err)
	}
	if got := BreakerOutcomeOf(err); got != BreakerFailure {
		t.Errorf("BreakerOutcomeOf = %v, want BreakerFailure", got)
	}
}

// TestFallbackAllBreakersOpen: when every member is skipped because its
// breaker is open, no engine ran at all, so the chain must report the
// retryable ErrBreakersOpen — not ErrNoSolution, which the daemon would
// serve as a definitive "budget exhausted" answer.
func TestFallbackAllBreakersOpen(t *testing.T) {
	p := testProblem(t)
	clk := newFakeClock()
	set := NewBreakerSet(BreakerConfig{Threshold: 1, Cooldown: time.Hour, Clock: clk.Now})
	f := &Fallback{
		Members: []FallbackMember{
			{Engine: panicEngine("boom-a")},
			{Engine: panicEngine("boom-b")},
		},
		Breakers: set,
	}
	// First solve trips both breakers (each member panics once).
	if _, err := f.Solve(context.Background(), p, core.SolveOptions{TimeLimit: time.Second}); err == nil {
		t.Fatal("all-panicking chain returned nil error")
	}
	// Second solve: every member is skipped, nothing runs.
	_, err := f.Solve(context.Background(), p, core.SolveOptions{TimeLimit: time.Second})
	if !errors.Is(err, ErrBreakersOpen) {
		t.Fatalf("want ErrBreakersOpen, got %v", err)
	}
	if errors.Is(err, core.ErrNoSolution) {
		t.Errorf("breaker-skip outcome masquerades as ErrNoSolution: %v", err)
	}
	if got := BreakerOutcomeOf(err); got != BreakerNeutral {
		t.Errorf("BreakerOutcomeOf = %v, want BreakerNeutral", got)
	}
}

func TestFallbackHonorsCancellation(t *testing.T) {
	p := testProblem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := NewFallback(FallbackMember{Engine: goodEngine("good")})
	_, err := f.Solve(ctx, p, core.SolveOptions{TimeLimit: time.Second})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled context not honored: %v", err)
	}
}

func TestFallbackSkipsOpenBreaker(t *testing.T) {
	p := testProblem(t)
	clk := newFakeClock()
	set := NewBreakerSet(BreakerConfig{Threshold: 1, Cooldown: time.Hour, Clock: clk.Now})
	boomCalls := 0
	boom := &stubEngine{name: "boom", fn: func(context.Context, *core.Problem, core.SolveOptions) (*core.Solution, error) {
		boomCalls++
		panic("boom")
	}}
	f := &Fallback{
		Members: []FallbackMember{
			{Engine: boom},
			{Engine: goodEngine("good")},
		},
		Breakers: set,
	}
	// First solve: boom panics and trips its breaker, good wins.
	sol, err := f.Solve(context.Background(), p, core.SolveOptions{TimeLimit: time.Second})
	if err != nil || sol.Engine != "fallback(good)" {
		t.Fatalf("solve 1: %v, %v", sol, err)
	}
	if st := set.For("boom").State(); st != BreakerOpen {
		t.Fatalf("boom breaker = %v, want open", st)
	}
	// Second solve: boom's breaker is open, so boom is never called again.
	sol, err = f.Solve(context.Background(), p, core.SolveOptions{TimeLimit: time.Second})
	if err != nil || sol.Engine != "fallback(good)" {
		t.Fatalf("solve 2: %v, %v", sol, err)
	}
	if boomCalls != 1 {
		t.Errorf("boom called %d times, want 1 (breaker should skip it)", boomCalls)
	}
}

// TestFallbackProbeContract mirrors the engine probe contract for the
// chain as a whole: one span named "fallback", ended exactly once, with
// the final incumbent equal to the returned objective.
func TestFallbackProbeContract(t *testing.T) {
	p := testProblem(t)
	rec := obs.NewRecorder()
	f := NewFallback(
		FallbackMember{Engine: panicEngine("boom")},
		FallbackMember{Engine: goodEngine("good")},
	)
	sol, err := f.Solve(context.Background(), p, core.SolveOptions{TimeLimit: time.Second, Probe: rec})
	if err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace()
	var ended int
	for _, sp := range tr.Spans {
		if sp.Name == "fallback" && sp.Outcome != "" {
			ended++
			if sp.Outcome != string(obs.OutcomeSolved) {
				t.Errorf("fallback span outcome = %q, want %q", sp.Outcome, obs.OutcomeSolved)
			}
		}
	}
	if ended != 1 {
		t.Fatalf("fallback span ended %d times, want 1", ended)
	}
	incs := rec.Incumbents("fallback")
	if len(incs) == 0 {
		t.Fatal("no incumbent recorded on the fallback span")
	}
	if got, want := incs[len(incs)-1].Objective, sol.Objective(p); got != want {
		t.Errorf("final incumbent %v != returned objective %v", got, want)
	}
}
