package guard

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
)

func TestFallbackRecordsStageTimings(t *testing.T) {
	p := testProblem(t)
	f := NewFallback(
		FallbackMember{Engine: panicEngine("boom")},
		FallbackMember{Engine: lyingEngine("liar")},
		FallbackMember{Engine: goodEngine("good")},
	)
	ctx, log := WithStageLog(context.Background())
	if _, err := f.Solve(ctx, p, core.SolveOptions{TimeLimit: 5 * time.Second}); err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	stages := log.Stages()
	if len(stages) != 3 {
		t.Fatalf("recorded %d stages, want 3: %+v", len(stages), stages)
	}
	want := []struct{ engine, outcome string }{
		{"boom", "panic"},
		{"liar", "invalid"},
		{"good", "solved"},
	}
	for i, w := range want {
		if stages[i].Engine != w.engine || stages[i].Outcome != w.outcome {
			t.Errorf("stage %d = %s/%s, want %s/%s", i, stages[i].Engine, stages[i].Outcome, w.engine, w.outcome)
		}
		if stages[i].Elapsed < 0 {
			t.Errorf("stage %d has negative elapsed %v", i, stages[i].Elapsed)
		}
	}
	// Failed stages carry their error text; the winner does not.
	if stages[0].Err == "" || stages[1].Err == "" {
		t.Errorf("fault stages lost their error text: %+v", stages[:2])
	}
	if stages[2].Err != "" {
		t.Errorf("winning stage has error text %q", stages[2].Err)
	}
}

func TestFallbackRecordsSkippedStages(t *testing.T) {
	p := testProblem(t)
	brs := NewBreakerSet(BreakerConfig{Threshold: 1, Cooldown: time.Hour})
	// Trip the boom breaker.
	brs.For("boom").Record(BreakerFailure)
	f := NewFallback(
		FallbackMember{Engine: panicEngine("boom")},
		FallbackMember{Engine: goodEngine("good")},
	)
	f.Breakers = brs
	ctx, log := WithStageLog(context.Background())
	if _, err := f.Solve(ctx, p, core.SolveOptions{TimeLimit: 5 * time.Second}); err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	stages := log.Stages()
	if len(stages) != 2 {
		t.Fatalf("recorded %d stages, want 2: %+v", len(stages), stages)
	}
	if stages[0].Engine != "boom" || stages[0].Outcome != StageOutcomeSkipped {
		t.Errorf("stage 0 = %s/%s, want boom/%s", stages[0].Engine, stages[0].Outcome, StageOutcomeSkipped)
	}
	if stages[0].Elapsed != 0 {
		t.Errorf("skipped stage has elapsed %v, want 0", stages[0].Elapsed)
	}
	if stages[1].Engine != "good" || stages[1].Outcome != "solved" {
		t.Errorf("stage 1 = %s/%s, want good/solved", stages[1].Engine, stages[1].Outcome)
	}
}

func TestWithStageLogReusesExisting(t *testing.T) {
	ctx, outer := WithStageLog(context.Background())
	ctx2, inner := WithStageLog(ctx)
	if outer != inner {
		t.Fatal("nested WithStageLog created a second collector")
	}
	if ctx2 != ctx {
		t.Fatal("nested WithStageLog rewrapped the context")
	}
	if StageLogFrom(context.Background()) != nil {
		t.Fatal("StageLogFrom on a bare context is non-nil")
	}
}

func TestStageLogWithoutCollectorIsHarmless(t *testing.T) {
	p := testProblem(t)
	f := NewFallback(FallbackMember{Engine: goodEngine("good")})
	// No WithStageLog on the context: the solve must run unchanged.
	if _, err := f.Solve(context.Background(), p, core.SolveOptions{TimeLimit: 5 * time.Second}); err != nil {
		t.Fatalf("fallback failed without a stage log: %v", err)
	}
}
