package guard

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// ErrBreakersOpen reports that a solve could not run at all because
// every candidate engine's circuit breaker was open. It is a retryable
// condition (the engines are cooling down), distinct from ErrNoSolution
// (the budget was genuinely spent): servers should map it to a 503 with
// Retry-After rather than a definitive "no solution" answer.
var ErrBreakersOpen = errors.New("guard: all circuit breakers open")

// BreakerState is a circuit breaker's effective state.
type BreakerState int

const (
	// BreakerClosed: requests flow normally.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: the cooldown elapsed; one probe request is
	// admitted to test whether the engine recovered.
	BreakerHalfOpen
	// BreakerOpen: requests are rejected until the cooldown elapses.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// BreakerOutcome classifies one guarded run for the breaker's failure
// accounting.
type BreakerOutcome int

const (
	// BreakerNeutral: the run says nothing about engine health (queue
	// full, caller canceled, budget expired without a verdict). Neutral
	// runs neither trip nor reset the breaker.
	BreakerNeutral BreakerOutcome = iota
	// BreakerSuccess: the engine produced a definitive answer (validated
	// solution or proven infeasibility). Resets the consecutive-failure
	// count and closes a probing breaker.
	BreakerSuccess
	// BreakerFailure: the engine panicked, returned an invalid solution,
	// or failed unexpectedly. Counts toward the trip threshold and
	// re-opens a probing breaker.
	BreakerFailure
)

// BreakerOutcomeOf classifies an engine result for breaker accounting:
// definitive answers (nil error, proven infeasibility) are successes;
// budget, cancellation, and breakers-open outcomes are neutral;
// everything else — panics, invalid solutions, unexpected errors — is a
// failure.
func BreakerOutcomeOf(err error) BreakerOutcome {
	switch {
	case err == nil, errors.Is(err, core.ErrInfeasible):
		return BreakerSuccess
	case errors.Is(err, core.ErrNoSolution),
		errors.Is(err, ErrBreakersOpen),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return BreakerNeutral
	default:
		return BreakerFailure
	}
}

// BreakerConfig tunes a Breaker; the zero value gets production-minded
// defaults.
type BreakerConfig struct {
	// Threshold is the consecutive failures that open the breaker
	// (default 5).
	Threshold int
	// Cooldown is how long an open breaker rejects before admitting a
	// half-open probe (default 30s).
	Cooldown time.Duration
	// Clock supplies the current time (default time.Now); tests inject a
	// fake to step through the open -> half-open transition.
	Clock func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Breaker is a per-engine consecutive-failure circuit breaker
// (closed/open/half-open). Usage contract: every Allow() that returns
// true must be paired with exactly one Record call — the half-open state
// reserves its single probe slot on Allow and releases it on Record.
type Breaker struct {
	name string
	cfg  BreakerConfig

	mu       sync.Mutex
	failures int  // consecutive failures while closed
	open     bool // tripped and not yet recovered
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	trips    int64
}

// NewBreaker builds a breaker for the named engine.
func NewBreaker(name string, cfg BreakerConfig) *Breaker {
	return &Breaker{name: name, cfg: cfg.withDefaults()}
}

// stateLocked computes the effective state at now; callers hold mu.
func (b *Breaker) stateLocked(now time.Time) BreakerState {
	if !b.open {
		return BreakerClosed
	}
	if now.Sub(b.openedAt) >= b.cfg.Cooldown {
		return BreakerHalfOpen
	}
	return BreakerOpen
}

// State returns the breaker's effective state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked(b.cfg.Clock())
}

// Allow reports whether a request may proceed. In the half-open state it
// admits exactly one probe at a time; the probe slot is released by the
// paired Record call.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.stateLocked(b.cfg.Clock()) {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default:
		return false
	}
}

// Record reports the outcome of a run admitted by Allow. A probe success
// closes the breaker; a probe failure re-opens it (restarting the
// cooldown); a neutral probe keeps the breaker half-open so the next
// Allow probes again.
func (b *Breaker) Record(o BreakerOutcome) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.probing {
		b.probing = false
		switch o {
		case BreakerSuccess:
			b.open = false
			b.failures = 0
		case BreakerFailure:
			b.openedAt = b.cfg.Clock()
		}
		return
	}
	if b.open {
		// A stale result from a run admitted before the trip: the
		// breaker's verdict is already made, ignore it.
		return
	}
	switch o {
	case BreakerSuccess:
		b.failures = 0
	case BreakerFailure:
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.open = true
			b.openedAt = b.cfg.Clock()
			b.trips++
		}
	}
}

// BreakerSnapshot is one breaker's observable state for /metrics.
type BreakerSnapshot struct {
	// Name is the engine the breaker guards.
	Name string
	// State is the effective state at snapshot time.
	State BreakerState
	// Failures is the current consecutive-failure count.
	Failures int
	// Trips counts closed -> open transitions over the breaker's life.
	Trips int64
}

// Snapshot returns the breaker's observable state.
func (b *Breaker) Snapshot() BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnapshot{
		Name:     b.name,
		State:    b.stateLocked(b.cfg.Clock()),
		Failures: b.failures,
		Trips:    b.trips,
	}
}

// BreakerSet holds one breaker per engine name, created lazily with a
// shared config. Safe for concurrent use.
type BreakerSet struct {
	cfg BreakerConfig
	mu  sync.Mutex
	m   map[string]*Breaker
}

// NewBreakerSet builds an empty set whose breakers share cfg.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	return &BreakerSet{cfg: cfg.withDefaults(), m: map[string]*Breaker{}}
}

// For returns (creating if needed) the named engine's breaker.
func (s *BreakerSet) For(name string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[name]
	if !ok {
		b = NewBreaker(name, s.cfg)
		s.m[name] = b
	}
	return b
}

// Snapshot returns every breaker's state, sorted by engine name.
func (s *BreakerSet) Snapshot() []BreakerSnapshot {
	s.mu.Lock()
	breakers := make([]*Breaker, 0, len(s.m))
	for _, b := range s.m {
		breakers = append(breakers, b)
	}
	s.mu.Unlock()
	out := make([]BreakerSnapshot, len(breakers))
	for i, b := range breakers {
		out[i] = b.Snapshot()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
