package guard

import (
	"context"
	"sync"
	"time"
)

// StageOutcomeSkipped labels a fallback stage that never ran because its
// engine's circuit breaker was open. Every other stage outcome is one of
// the obs outcome labels ("solved", "no_solution", "panic", ...).
const StageOutcomeSkipped = "skipped"

// StageTiming records one fallback-chain stage attempt: which member
// engine ran, how it ended, and how long it took. The flight recorder
// stores these per solve so /debug/solves and SIGUSR1 dumps can show
// where a degraded solve spent its budget.
type StageTiming struct {
	// Engine names the stage's member engine.
	Engine string
	// Outcome is the stage's obs outcome label, or StageOutcomeSkipped.
	Outcome string
	// Elapsed is the stage's wall-clock (zero when skipped).
	Elapsed time.Duration
	// Err is the stage's error text, when it failed.
	Err string
}

// StageLog collects stage timings across one solve. Safe for concurrent
// use (a meta-engine may be raced inside a portfolio).
type StageLog struct {
	mu     sync.Mutex
	stages []StageTiming
}

// add appends one stage timing.
func (l *StageLog) add(st StageTiming) {
	l.mu.Lock()
	l.stages = append(l.stages, st)
	l.mu.Unlock()
}

// Stages returns the collected timings in emission order.
func (l *StageLog) Stages() []StageTiming {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]StageTiming(nil), l.stages...)
}

type stageLogKey struct{}

// WithStageLog returns a context carrying a stage-timing collector and
// the collector itself. If ctx already carries one, it is reused — so a
// serving layer that installs the log before dispatch and a facade that
// installs it inside both observe the same stages.
func WithStageLog(ctx context.Context) (context.Context, *StageLog) {
	if l := StageLogFrom(ctx); l != nil {
		return ctx, l
	}
	l := &StageLog{}
	return context.WithValue(ctx, stageLogKey{}, l), l
}

// StageLogFrom returns the context's stage-timing collector, or nil.
func StageLogFrom(ctx context.Context) *StageLog {
	l, _ := ctx.Value(stageLogKey{}).(*StageLog)
	return l
}
