package guard

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/grid"
	"repro/internal/obs"
)

// testProblem builds a small columnar instance every test shares: a
// 16x4 device with one BRAM and one DSP column, two regions, one net.
func testProblem(t testing.TB) *core.Problem {
	t.Helper()
	cols := make([]device.TypeID, 16)
	for i := range cols {
		cols[i] = device.V5CLB
	}
	cols[4] = device.V5BRAM
	cols[9] = device.V5DSP
	dev, err := device.NewColumnar("guardtest", cols, 4, device.V5Types(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return &core.Problem{
		Device: dev,
		Regions: []core.Region{
			{Name: "a", Req: device.Requirements{device.ClassCLB: 3, device.ClassDSP: 1}},
			{Name: "b", Req: device.Requirements{device.ClassCLB: 2, device.ClassBRAM: 1}},
		},
		Nets: []core.Net{{A: 0, B: 1, Weight: 8}},
	}
}

// validSolution is a hand-placed legal floorplan for testProblem.
func validSolution(p *core.Problem) *core.Solution {
	return &core.Solution{
		Regions: []grid.Rect{
			{X: 6, Y: 0, W: 10, H: 4},
			{X: 3, Y: 0, W: 3, H: 1},
		},
		FC:     make([]core.FCPlacement, 0),
		Engine: "stub",
	}
}

// invalidSolution places region 0 off the device.
func invalidSolution(p *core.Problem) *core.Solution {
	s := validSolution(p)
	s.Regions[0] = grid.Rect{X: p.Device.Width(), Y: 0, W: 1, H: 1}
	return s
}

// stubEngine adapts a function to core.Engine.
type stubEngine struct {
	name string
	fn   func(ctx context.Context, p *core.Problem, opts core.SolveOptions) (*core.Solution, error)
}

func (s *stubEngine) Name() string { return s.name }
func (s *stubEngine) Solve(ctx context.Context, p *core.Problem, opts core.SolveOptions) (*core.Solution, error) {
	return s.fn(ctx, p, opts)
}

func TestProtectRecoversPanic(t *testing.T) {
	p := testProblem(t)
	sol, err := Protect("boomer", p, func() (*core.Solution, error) {
		panic("kaboom")
	})
	if sol != nil {
		t.Fatalf("panic produced a solution: %+v", sol)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %T: %v", err, err)
	}
	if pe.Engine != "boomer" {
		t.Errorf("engine = %q, want boomer", pe.Engine)
	}
	if pe.Value != "kaboom" {
		t.Errorf("value = %v, want kaboom", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("no stack captured")
	}
	if pe.Request == "" || pe.Request == "unknown" {
		t.Errorf("request digest = %q, want a real digest", pe.Request)
	}
	if pe.Request != RequestDigest(p) {
		t.Errorf("digest %q does not match RequestDigest %q", pe.Request, RequestDigest(p))
	}
	if got := core.ObsOutcome(nil, err); got != obs.OutcomePanic {
		t.Errorf("ObsOutcome = %q, want %q", got, obs.OutcomePanic)
	}
}

func TestProtectPassesThrough(t *testing.T) {
	p := testProblem(t)
	want := validSolution(p)
	sol, err := Protect("ok", p, func() (*core.Solution, error) { return want, nil })
	if err != nil || sol != want {
		t.Fatalf("pass-through altered the result: %v, %v", sol, err)
	}
}

func TestCheckSolution(t *testing.T) {
	p := testProblem(t)
	if err := CheckSolution("stub", p, validSolution(p)); err != nil {
		t.Fatalf("valid solution rejected: %v", err)
	}
	for name, sol := range map[string]*core.Solution{
		"nil":     nil,
		"invalid": invalidSolution(p),
	} {
		err := CheckSolution("stub", p, sol)
		var ie *InvalidSolutionError
		if !errors.As(err, &ie) {
			t.Errorf("%s: want *InvalidSolutionError, got %T: %v", name, err, err)
			continue
		}
		if ie.Engine != "stub" {
			t.Errorf("%s: engine = %q", name, ie.Engine)
		}
		if got := core.ObsOutcome(nil, err); got != obs.OutcomeInvalid {
			t.Errorf("%s: ObsOutcome = %q, want %q", name, got, obs.OutcomeInvalid)
		}
	}
}

func TestWrapConvertsFaults(t *testing.T) {
	p := testProblem(t)
	ctx := context.Background()

	panicky := Wrap(&stubEngine{name: "p", fn: func(context.Context, *core.Problem, core.SolveOptions) (*core.Solution, error) {
		panic("engine bug")
	}})
	if panicky.Name() != "p" {
		t.Errorf("wrapper not transparent: Name = %q", panicky.Name())
	}
	_, err := panicky.Solve(ctx, p, core.SolveOptions{})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %T: %v", err, err)
	}

	lying := Wrap(&stubEngine{name: "l", fn: func(_ context.Context, p *core.Problem, _ core.SolveOptions) (*core.Solution, error) {
		return invalidSolution(p), nil
	}})
	_, err = lying.Solve(ctx, p, core.SolveOptions{})
	var ie *InvalidSolutionError
	if !errors.As(err, &ie) {
		t.Fatalf("want *InvalidSolutionError, got %T: %v", err, err)
	}

	honest := Wrap(&stubEngine{name: "h", fn: func(_ context.Context, p *core.Problem, _ core.SolveOptions) (*core.Solution, error) {
		return validSolution(p), nil
	}})
	sol, err := honest.Solve(ctx, p, core.SolveOptions{})
	if err != nil || sol == nil {
		t.Fatalf("valid solve rejected: %v", err)
	}
}

// TestWrapEmitsFaultSpan asserts the wrapper records the fault outcome
// on a "<engine>/guard" span without touching the happy path.
func TestWrapEmitsFaultSpan(t *testing.T) {
	p := testProblem(t)
	rec := obs.NewRecorder()
	eng := Wrap(&stubEngine{name: "p", fn: func(context.Context, *core.Problem, core.SolveOptions) (*core.Solution, error) {
		panic("x")
	}})
	_, _ = eng.Solve(context.Background(), p, core.SolveOptions{Probe: rec})
	var found bool
	for _, sp := range rec.Trace().Spans {
		if sp.Name == "p/guard" {
			found = true
			if sp.Outcome != string(obs.OutcomePanic) {
				t.Errorf("guard span outcome = %q, want %q", sp.Outcome, obs.OutcomePanic)
			}
		}
	}
	if !found {
		t.Error("no p/guard span recorded for the fault")
	}
}
