package guard

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
)

// fakeClock is a manually-advanced clock for breaker tests.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) advance(d time.Duration) { c.now = c.now.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{now: time.Unix(1000, 0)} }
func testBreaker(clk *fakeClock, threshold int) *Breaker {
	return NewBreaker("x", BreakerConfig{Threshold: threshold, Cooldown: time.Minute, Clock: clk.Now})
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 3)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.Record(BreakerFailure)
	}
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after 2/3 failures = %v, want closed", st)
	}
	// A success resets the consecutive count.
	if !b.Allow() {
		t.Fatal("closed breaker rejected")
	}
	b.Record(BreakerSuccess)
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("breaker rejected before threshold (failure %d)", i)
		}
		b.Record(BreakerFailure)
	}
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", st)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request")
	}
	if snap := b.Snapshot(); snap.Trips != 1 {
		t.Errorf("trips = %d, want 1", snap.Trips)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 1)
	b.Allow()
	b.Record(BreakerFailure) // opens
	clk.advance(59 * time.Second)
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state before cooldown = %v, want open", st)
	}
	clk.advance(2 * time.Second)
	if st := b.State(); st != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", st)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Probe failure re-opens and restarts the cooldown.
	b.Record(BreakerFailure)
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", st)
	}
	clk.advance(61 * time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the second probe")
	}
	b.Record(BreakerSuccess)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
	if !b.Allow() {
		t.Fatal("recovered breaker rejected a request")
	}
	b.Record(BreakerSuccess)
}

func TestBreakerNeutralProbeKeepsProbing(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 1)
	b.Allow()
	b.Record(BreakerFailure)
	clk.advance(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the probe")
	}
	b.Record(BreakerNeutral) // canceled probe: no verdict
	if st := b.State(); st != BreakerHalfOpen {
		t.Fatalf("state after neutral probe = %v, want half-open", st)
	}
	if !b.Allow() {
		t.Fatal("breaker did not re-admit a probe after a neutral one")
	}
	b.Record(BreakerSuccess)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state = %v, want closed", st)
	}
}

func TestBreakerNeutralDoesNotTrip(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 2)
	for i := 0; i < 10; i++ {
		if !b.Allow() {
			t.Fatalf("breaker rejected neutral run %d", i)
		}
		b.Record(BreakerNeutral)
	}
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("neutral outcomes tripped the breaker: %v", st)
	}
}

func TestBreakerOutcomeOf(t *testing.T) {
	cases := []struct {
		err  error
		want BreakerOutcome
	}{
		{nil, BreakerSuccess},
		{core.ErrInfeasible, BreakerSuccess},
		{fmt.Errorf("wrapped: %w", core.ErrNoSolution), BreakerNeutral},
		{context.Canceled, BreakerNeutral},
		{context.DeadlineExceeded, BreakerNeutral},
		{&PanicError{Engine: "x"}, BreakerFailure},
		{&InvalidSolutionError{Engine: "x", Reason: errors.New("bad")}, BreakerFailure},
		{errors.New("mystery"), BreakerFailure},
	}
	for _, c := range cases {
		if got := BreakerOutcomeOf(c.err); got != c.want {
			t.Errorf("BreakerOutcomeOf(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestBreakerSetSnapshotSorted(t *testing.T) {
	s := NewBreakerSet(BreakerConfig{Threshold: 1})
	for _, name := range []string{"zeta", "alpha", "milp"} {
		s.For(name)
	}
	if a, b := s.For("alpha"), s.For("alpha"); a != b {
		t.Error("For returned distinct breakers for the same name")
	}
	snaps := s.Snapshot()
	if len(snaps) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(snaps))
	}
	for i, want := range []string{"alpha", "milp", "zeta"} {
		if snaps[i].Name != want {
			t.Errorf("snapshot[%d] = %q, want %q", i, snaps[i].Name, want)
		}
	}
}
