// Package guard is the fault-tolerance layer around the floorplanning
// engines: it isolates solver panics, verifies every returned solution
// before it may be accepted, chains engines into graceful-degradation
// fallbacks, trips per-engine circuit breakers on repeated failures, and
// injects deterministic faults for chaos testing.
//
// Like the obs telemetry layer, guard wraps any core.Engine without
// changing the Engine interface, so the serving stack composes it freely
// around real solvers, portfolios and test stubs:
//
//	eng := guard.Wrap(&exact.Engine{})        // panics -> PanicError,
//	                                          // invalid -> InvalidSolutionError
//	fb  := guard.NewFallback(members...)      // milp-o -> milp-ho -> constructive
//	brs := guard.NewBreakerSet(guard.BreakerConfig{})
//	ch  := guard.NewChaos(eng, guard.ChaosConfig{Seed: 7, PanicWeight: 1})
//
// The structured errors implement an ObsOutcome method, which
// core.ObsOutcome recognizes, so recovered panics and rejected solutions
// surface in traces and metrics as the terminal outcomes "panic" and
// "invalid" rather than a generic "error".
package guard

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"runtime/debug"

	"repro/internal/core"
	"repro/internal/obs"
)

// PanicError is a solver panic recovered by the guard layer: structured
// enough to alert on (engine, request digest) and to debug (panic value,
// stack at the panic site).
type PanicError struct {
	// Engine names the engine whose Solve panicked.
	Engine string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
	// Request is a short digest of the problem (RequestDigest), so log
	// lines correlate panics with the requests that triggered them.
	Request string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("guard: engine %s panicked on request %s: %v", e.Engine, e.Request, e.Value)
}

// ObsOutcome marks recovered panics with their own terminal outcome.
func (e *PanicError) ObsOutcome() obs.Outcome { return obs.OutcomePanic }

// InvalidSolutionError reports a solution that failed verification at the
// guard boundary: it must never be accepted, cached, or served.
type InvalidSolutionError struct {
	// Engine names the engine that produced the solution.
	Engine string
	// Reason is the underlying validation failure.
	Reason error
}

func (e *InvalidSolutionError) Error() string {
	return fmt.Sprintf("guard: engine %s returned an invalid solution: %v", e.Engine, e.Reason)
}

func (e *InvalidSolutionError) Unwrap() error { return e.Reason }

// ObsOutcome marks rejected solutions with their own terminal outcome.
func (e *InvalidSolutionError) ObsOutcome() obs.Outcome { return obs.OutcomeInvalid }

// RequestDigest returns a short stable digest of the problem for log
// correlation. It is not the serving cache key (that is SHA-256 over the
// full request); fnv-64a over the problem JSON is enough to tell requests
// apart in logs.
func RequestDigest(p *core.Problem) string {
	data, err := json.Marshal(p)
	if err != nil {
		return "unknown"
	}
	h := fnv.New64a()
	_, _ = h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Protect runs fn, converting a panic into a *PanicError so one buggy
// engine cannot take down the worker pool, a portfolio race, or a
// fallback chain.
func Protect(engine string, p *core.Problem, fn func() (*core.Solution, error)) (sol *core.Solution, err error) {
	defer func() {
		if r := recover(); r != nil {
			sol = nil
			err = &PanicError{
				Engine:  engine,
				Value:   r,
				Stack:   debug.Stack(),
				Request: RequestDigest(p),
			}
		}
	}()
	return fn()
}

// CheckSolution verifies a solution before it may cross a trust boundary
// (be accepted by a fallback stage, cached, or served): it must be
// non-nil, pass the full Solution.Validate oracle, and evaluate to a
// finite, non-negative objective. A nil error means the solution is safe
// to accept; otherwise the returned error is an *InvalidSolutionError.
func CheckSolution(engine string, p *core.Problem, sol *core.Solution) error {
	if sol == nil {
		return &InvalidSolutionError{Engine: engine, Reason: fmt.Errorf("nil solution with nil error")}
	}
	if err := sol.Validate(p); err != nil {
		return &InvalidSolutionError{Engine: engine, Reason: err}
	}
	if obj := sol.Objective(p); math.IsNaN(obj) || math.IsInf(obj, 0) || obj < 0 {
		return &InvalidSolutionError{Engine: engine, Reason: fmt.Errorf("objective is not a finite non-negative value: %g", obj)}
	}
	return nil
}

// Engine wraps an inner engine with panic isolation and solution
// verification. It is transparent on the happy path: Name and traces are
// the inner engine's own. On a fault it emits a "<engine>/guard" span
// ending with the fault outcome, so trajectories record what the guard
// intercepted without disturbing the engine's own span.
type Engine struct {
	// Inner is the wrapped engine.
	Inner core.Engine
}

// Wrap returns inner guarded by panic isolation and solution
// verification.
func Wrap(inner core.Engine) *Engine { return &Engine{Inner: inner} }

// Name implements core.Engine; the wrapper is transparent.
func (g *Engine) Name() string { return g.Inner.Name() }

// Solve implements core.Engine: run the inner engine under Protect and
// verify whatever it returns with CheckSolution.
func (g *Engine) Solve(ctx context.Context, p *core.Problem, opts core.SolveOptions) (*core.Solution, error) {
	opts = opts.Normalized()
	name := g.Inner.Name()
	sol, err := Protect(name, p, func() (*core.Solution, error) {
		return g.Inner.Solve(ctx, p, opts)
	})
	if err == nil {
		if verr := CheckSolution(name, p, sol); verr != nil {
			sol, err = nil, verr
		}
	}
	if oc, ok := err.(interface{ ObsOutcome() obs.Outcome }); ok {
		// Fault-only span: the engine's own span (if it got that far) is
		// untouched; this records what the guard intercepted.
		opts.Probe.Span(name+"/guard").End(oc.ObsOutcome(), 0)
	}
	return sol, err
}
