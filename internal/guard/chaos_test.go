package guard

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

func TestChaosScriptCycles(t *testing.T) {
	p := testProblem(t)
	c := NewChaos(goodEngine("inner"), ChaosConfig{
		Script: []Fault{FaultPanic, FaultError, FaultNone},
	})
	if c.Name() != "chaos(inner)" {
		t.Errorf("Name = %q", c.Name())
	}
	for round := 0; round < 2; round++ {
		// Entry 1: panic.
		_, err := Protect(c.Name(), p, func() (*core.Solution, error) {
			return c.Solve(context.Background(), p, core.SolveOptions{})
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("round %d entry 1: want panic, got %v", round, err)
		}
		// Entry 2: injected error.
		_, err = c.Solve(context.Background(), p, core.SolveOptions{})
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("round %d entry 2: want ErrInjected, got %v", round, err)
		}
		// Entry 3: pass through.
		sol, err := c.Solve(context.Background(), p, core.SolveOptions{})
		if err != nil || sol == nil {
			t.Fatalf("round %d entry 3: want pass-through, got %v, %v", round, sol, err)
		}
	}
	if c.Calls() != 6 {
		t.Errorf("calls = %d, want 6", c.Calls())
	}
}

// TestChaosSeededDeterminism runs the same weighted schedule twice and
// requires identical fault sequences: a chaos run is reproducible from
// its seed.
func TestChaosSeededDeterminism(t *testing.T) {
	draw := func(seed int64) []Fault {
		c := NewChaos(goodEngine("inner"), ChaosConfig{
			Seed:          seed,
			PassWeight:    4,
			PanicWeight:   2,
			InvalidWeight: 2,
			ErrorWeight:   1,
			DelayWeight:   1,
		})
		out := make([]Fault, 50)
		for i := range out {
			_, out[i] = c.next()
		}
		return out
	}
	a, b := draw(42), draw(42)
	varied := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] != a[0] {
			varied = true
		}
	}
	if !varied {
		t.Error("50 weighted draws produced a single fault kind; weights look broken")
	}
	c, d := draw(1), draw(2)
	same := true
	for i := range c {
		if c[i] != d[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

func TestChaosPoisonFailsValidation(t *testing.T) {
	p := testProblem(t)
	c := NewChaos(goodEngine("inner"), ChaosConfig{Script: []Fault{FaultInvalid}})
	sol, err := c.Solve(context.Background(), p, core.SolveOptions{})
	if err != nil {
		t.Fatalf("FaultInvalid must return a nil error: %v", err)
	}
	if sol.Validate(p) == nil {
		t.Fatal("poison solution passed Validate; the chaos harness can't test the guard")
	}
	if CheckSolution(c.Name(), p, sol) == nil {
		t.Fatal("CheckSolution accepted the poison solution")
	}
}

func TestChaosDelayHonorsContext(t *testing.T) {
	p := testProblem(t)
	c := NewChaos(goodEngine("inner"), ChaosConfig{
		Script: []Fault{FaultDelay},
		Delay:  10 * time.Second,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Solve(ctx, p, core.SolveOptions{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("delayed solve ignored cancellation (took %v)", e)
	}
}

// TestChaosFallbackEverySlotPanics is the acceptance scenario: a chaos
// schedule injects a panic into EVERY engine slot of a fallback chain.
// The first solve absorbs three panics without crashing and reports a
// structured joined error; the second solve — same chain, schedules
// advanced — completes and serves a validated solution. No panic ever
// escapes to the caller.
func TestChaosFallbackEverySlotPanics(t *testing.T) {
	p := testProblem(t)
	f := NewFallback(
		FallbackMember{Engine: NewChaos(goodEngine("inner"), ChaosConfig{Script: []Fault{FaultPanic}})},
		FallbackMember{Engine: NewChaos(goodEngine("inner"), ChaosConfig{Script: []Fault{FaultPanic}})},
		FallbackMember{Engine: NewChaos(goodEngine("inner"), ChaosConfig{Script: []Fault{FaultPanic, FaultNone}})},
	)

	// Solve 1: all three slots panic. The process must survive and the
	// error must carry the recovered panics.
	_, err := f.Solve(context.Background(), p, core.SolveOptions{TimeLimit: 5 * time.Second})
	if err == nil {
		t.Fatal("all-panic solve returned nil error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("joined error does not expose a PanicError: %v", err)
	}

	// Solve 2: the third slot's script has advanced to FaultNone, so the
	// chain degrades past two fresh panics and completes.
	sol, err := f.Solve(context.Background(), p, core.SolveOptions{TimeLimit: 5 * time.Second})
	if err != nil {
		t.Fatalf("fallback did not recover once a slot healed: %v", err)
	}
	if err := sol.Validate(p); err != nil {
		t.Fatalf("recovered solve served an invalid solution: %v", err)
	}
	if sol.Engine != "fallback(chaos(inner))" {
		t.Errorf("winner = %q, want fallback(chaos(inner))", sol.Engine)
	}
}

func TestParseChaosSpec(t *testing.T) {
	for _, spec := range []string{"", "off", "none", "  off  "} {
		cfg, err := ParseChaosSpec(spec)
		if err != nil || cfg != nil {
			t.Fatalf("ParseChaosSpec(%q) = %+v, %v; want nil, nil", spec, cfg, err)
		}
	}

	cfg, err := ParseChaosSpec("script:panic,pass,error,invalid,delay,none")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{FaultPanic, FaultNone, FaultError, FaultInvalid, FaultDelay, FaultNone}
	if len(cfg.Script) != len(want) {
		t.Fatalf("script = %v, want %v", cfg.Script, want)
	}
	for i, f := range want {
		if cfg.Script[i] != f {
			t.Fatalf("script = %v, want %v", cfg.Script, want)
		}
	}

	cfg, err = ParseChaosSpec("seed:7")
	if err != nil {
		t.Fatal(err)
	}
	pw, pa, in, er, de := DefaultChaosWeights()
	if cfg.Seed != 7 || cfg.PassWeight != pw || cfg.PanicWeight != pa ||
		cfg.InvalidWeight != in || cfg.ErrorWeight != er || cfg.DelayWeight != de {
		t.Fatalf("seed:7 cfg = %+v", cfg)
	}

	cfg, err = ParseChaosSpec("seed:3,panic:10,pass:85,delay:5")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 3 || cfg.PanicWeight != 10 || cfg.PassWeight != 85 || cfg.DelayWeight != 5 ||
		cfg.InvalidWeight != 0 || cfg.ErrorWeight != 0 {
		t.Fatalf("explicit cfg = %+v", cfg)
	}

	for _, bad := range []string{
		"panic:10", "seed:x", "script:bogus", "script:", "seed:1,wat:2",
		"seed:1,seed:2", "seed:1,panic:-3", "justwords",
	} {
		if _, err := ParseChaosSpec(bad); err == nil {
			t.Fatalf("ParseChaosSpec(%q) accepted", bad)
		}
	}
}

// TestChaosInjectorApply: the engine-less injector form applies faults
// around an arbitrary solve function, consuming the script in order.
func TestChaosInjectorApply(t *testing.T) {
	p := testProblem(t)
	c := NewChaosInjector(ChaosConfig{Script: []Fault{FaultError, FaultNone}})
	if c.Name() != "chaos" {
		t.Fatalf("injector name = %q", c.Name())
	}
	inner := func(context.Context) (*core.Solution, error) {
		return goodEngine("inner").Solve(context.Background(), p, core.SolveOptions{})
	}
	if _, err := c.Apply(context.Background(), p, inner); !errors.Is(err, ErrInjected) {
		t.Fatalf("scripted error fault not applied: %v", err)
	}
	sol, err := c.Apply(context.Background(), p, inner)
	if err != nil || sol == nil {
		t.Fatalf("pass-through call = %v, %v", sol, err)
	}
	if c.Calls() != 2 {
		t.Fatalf("calls = %d, want 2", c.Calls())
	}
}
