package guard

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// FallbackMember is one stage of a fallback chain.
type FallbackMember struct {
	// Engine computes floorplans; it runs guarded (panic isolation +
	// solution verification), so the chain advances on any fault.
	Engine core.Engine
	// TrustInfeasible marks engines whose ErrInfeasible is a proof over
	// the full solution space (exact, milp-o): a trusted infeasibility
	// ends the chain immediately. Untrusted verdicts are treated as
	// exhausted budgets and the chain advances.
	TrustInfeasible bool
}

// Fallback is a graceful-degradation meta-engine: it tries its members
// in order under one shared budget, advancing past panics, invalid
// solutions, unexpected errors and per-stage budget expiry, so the
// caller always gets the best answer the remaining budget allows. The
// first member to produce a validated solution wins.
//
// Budget split: stage i of n receives remaining/(n-i) of the shared
// budget, so a stage that fails fast rolls its unused time over to the
// later stages while a stage that burns its slice cannot starve them.
type Fallback struct {
	// Members are the chain stages, in preference order.
	Members []FallbackMember
	// Breakers, when non-nil, gates members through per-engine circuit
	// breakers: members whose breaker is open are skipped for this solve
	// and every admitted run records its outcome.
	Breakers *BreakerSet
}

// NewFallback builds a fallback chain over the given members.
func NewFallback(members ...FallbackMember) *Fallback {
	return &Fallback{Members: members}
}

// Name implements core.Engine.
func (f *Fallback) Name() string { return "fallback" }

// Solve implements core.Engine: try members in order until one returns a
// validated solution, a trusted infeasibility proof, or the budget and
// chain are exhausted. The returned solution's Engine field names the
// winning member ("fallback(constructive)").
func (f *Fallback) Solve(ctx context.Context, p *core.Problem, opts core.SolveOptions) (sol *core.Solution, err error) {
	opts = opts.Normalized()
	start := time.Now()
	var deadline time.Time
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit)
	}
	sp := opts.Probe.Span(f.Name())
	defer func() {
		if err == nil && sol != nil {
			sp.Incumbent(sol.Objective(p))
		}
		sp.End(core.ObsOutcome(sol, err), obs.SlackUntil(deadline))
	}()
	if err = p.Validate(); err != nil {
		return nil, err
	}
	if len(f.Members) == 0 {
		return nil, fmt.Errorf("guard: fallback chain has no members")
	}

	stages := StageLogFrom(ctx) // nil outside a collecting caller
	var faults []error
	hardFault := false
	skipped := 0
	for i, m := range f.Members {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		if !deadline.IsZero() && time.Until(deadline) <= 0 {
			break
		}
		name := m.Engine.Name()
		var br *Breaker
		if f.Breakers != nil {
			br = f.Breakers.For(name)
			if !br.Allow() {
				skipped++
				faults = append(faults, fmt.Errorf("%s: circuit breaker open", name))
				if stages != nil {
					stages.add(StageTiming{Engine: name, Outcome: StageOutcomeSkipped})
				}
				continue
			}
		}
		stageOpts := opts
		if !deadline.IsZero() {
			stageOpts.TimeLimit = time.Until(deadline) / time.Duration(len(f.Members)-i)
		}
		stageStart := time.Now()
		stageSol, stageErr := Wrap(m.Engine).Solve(ctx, p, stageOpts)
		if stages != nil {
			st := StageTiming{
				Engine:  name,
				Outcome: string(core.ObsOutcome(stageSol, stageErr)),
				Elapsed: time.Since(stageStart),
			}
			if stageErr != nil {
				st.Err = stageErr.Error()
			}
			stages.add(st)
		}
		if br != nil {
			br.Record(BreakerOutcomeOf(stageErr))
		}
		switch {
		case stageErr == nil:
			win := *stageSol
			win.Engine = fmt.Sprintf("fallback(%s)", name)
			win.Elapsed = time.Since(start)
			return &win, nil
		case errors.Is(stageErr, core.ErrInfeasible) && m.TrustInfeasible:
			return nil, stageErr
		case errors.Is(stageErr, core.ErrInfeasible),
			errors.Is(stageErr, core.ErrNoSolution),
			errors.Is(stageErr, context.DeadlineExceeded):
			// Budget-class outcomes (including untrusted infeasibility
			// claims, which are not proofs): advance. %v, not %w — the
			// chain's final error must not inherit this stage's sentinel
			// identity, or an untrusted ErrInfeasible would surface as a
			// false infeasibility proof (cached and served as definitive)
			// whenever a later stage hard-faults.
			faults = append(faults, fmt.Errorf("%s: %v", name, stageErr))
		case errors.Is(stageErr, context.Canceled):
			if ctx.Err() != nil {
				// The caller canceled the whole solve: stop.
				return nil, stageErr
			}
			faults = append(faults, fmt.Errorf("%s: %v", name, stageErr))
		default:
			// Panic, invalid solution, or unexpected error: degrade to the
			// next member. %w is safe here: this branch excludes the
			// sentinel-matching errors by construction, and keeping the
			// chain means errors.As still surfaces PanicError /
			// InvalidSolutionError from the joined error.
			hardFault = true
			faults = append(faults, fmt.Errorf("%s: %w", name, stageErr))
		}
	}
	if skipped == len(f.Members) {
		// No member ran at all: the engines are cooling down, not the
		// budget exhausted. A distinct sentinel lets the daemon answer
		// retryable (503) instead of definitive "no_solution".
		return nil, fmt.Errorf("guard: no fallback member admitted a run: %w", ErrBreakersOpen)
	}
	if !hardFault {
		return nil, fmt.Errorf("guard: no fallback member found a solution within the budget: %w", core.ErrNoSolution)
	}
	return nil, fmt.Errorf("guard: every fallback member failed: %w", errors.Join(faults...))
}
