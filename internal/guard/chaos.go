package guard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
)

// Fault is one kind of injected failure.
type Fault int

const (
	// FaultNone passes the call through to the inner engine.
	FaultNone Fault = iota
	// FaultPanic panics inside Solve.
	FaultPanic
	// FaultInvalid returns a deliberately illegal floorplan with a nil
	// error (the poison the serving boundary must catch).
	FaultInvalid
	// FaultError returns a spurious error wrapping ErrInjected.
	FaultError
	// FaultDelay sleeps before passing the call through, to exercise
	// deadline and straggler handling.
	FaultDelay
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultPanic:
		return "panic"
	case FaultInvalid:
		return "invalid"
	case FaultError:
		return "error"
	default:
		return "delay"
	}
}

// ErrInjected is the spurious error FaultError returns.
var ErrInjected = errors.New("guard: injected chaos error")

// ChaosConfig schedules a Chaos wrapper's faults. Two modes:
//
//   - Script: a non-empty fault list cycled deterministically, one entry
//     per Solve call — exact control for unit tests.
//   - Weights: when Script is empty, each call draws a fault from the
//     weighted distribution using a rand.Rand seeded with Seed, so a
//     whole chaos run is reproducible from one integer.
type ChaosConfig struct {
	// Seed seeds the weighted draw (ignored in Script mode).
	Seed int64
	// Script, when non-empty, is cycled deterministically call by call.
	Script []Fault
	// PassWeight .. DelayWeight are the relative draw weights for the
	// weighted mode. All zero means every call passes through.
	PassWeight    int
	PanicWeight   int
	InvalidWeight int
	ErrorWeight   int
	DelayWeight   int
	// Delay is the FaultDelay sleep (default 10ms).
	Delay time.Duration
}

// Chaos wraps an engine with deterministic fault injection. It is safe
// for concurrent use; concurrent callers consume schedule entries in
// arrival order.
type Chaos struct {
	inner core.Engine
	cfg   ChaosConfig

	mu    sync.Mutex
	rng   *rand.Rand
	calls int
}

// NewChaos wraps inner with the fault schedule cfg describes.
func NewChaos(inner core.Engine, cfg ChaosConfig) *Chaos {
	return &Chaos{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// NewChaosInjector builds a Chaos with no inner engine, for callers
// that inject faults around an arbitrary solve function via Apply (the
// daemon's -chaos flag wraps its whole dispatch path this way).
func NewChaosInjector(cfg ChaosConfig) *Chaos { return NewChaos(nil, cfg) }

// Name implements core.Engine: "chaos(<inner>)", or "chaos" for an
// injector with no inner engine.
func (c *Chaos) Name() string {
	if c.inner == nil {
		return "chaos"
	}
	return fmt.Sprintf("chaos(%s)", c.inner.Name())
}

// Calls returns how many Solve calls the wrapper has seen.
func (c *Chaos) Calls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// next consumes one schedule entry and returns (call number, fault).
func (c *Chaos) next() (int, Fault) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if len(c.cfg.Script) > 0 {
		return c.calls, c.cfg.Script[(c.calls-1)%len(c.cfg.Script)]
	}
	weights := [...]struct {
		f Fault
		w int
	}{
		{FaultNone, c.cfg.PassWeight},
		{FaultPanic, c.cfg.PanicWeight},
		{FaultInvalid, c.cfg.InvalidWeight},
		{FaultError, c.cfg.ErrorWeight},
		{FaultDelay, c.cfg.DelayWeight},
	}
	total := 0
	for _, e := range weights {
		if e.w > 0 {
			total += e.w
		}
	}
	if total == 0 {
		return c.calls, FaultNone
	}
	draw := c.rng.Intn(total)
	for _, e := range weights {
		if e.w <= 0 {
			continue
		}
		if draw < e.w {
			return c.calls, e.f
		}
		draw -= e.w
	}
	return c.calls, FaultNone
}

// Solve implements core.Engine: apply the scheduled fault, then (for
// FaultNone and FaultDelay) run the inner engine.
func (c *Chaos) Solve(ctx context.Context, p *core.Problem, opts core.SolveOptions) (*core.Solution, error) {
	return c.Apply(ctx, p, func(ctx context.Context) (*core.Solution, error) {
		return c.inner.Solve(ctx, p, opts)
	})
}

// Apply consumes one schedule entry and applies it around inner: panic,
// error and invalid faults replace the call; none and delay run it
// (after the sleep). This is the injector form used by the daemon,
// where "inner" is the whole guarded dispatch path, not a core.Engine.
func (c *Chaos) Apply(ctx context.Context, p *core.Problem, inner func(context.Context) (*core.Solution, error)) (*core.Solution, error) {
	n, fault := c.next()
	switch fault {
	case FaultPanic:
		panic(fmt.Sprintf("%s: injected panic (call %d)", c.Name(), n))
	case FaultError:
		return nil, fmt.Errorf("%s: call %d: %w", c.Name(), n, ErrInjected)
	case FaultInvalid:
		return c.poison(p), nil
	case FaultDelay:
		d := c.cfg.Delay
		if d <= 0 {
			d = 10 * time.Millisecond
		}
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return inner(ctx)
}

// DefaultChaosWeights returns the weighted-mode defaults used by
// ParseChaosSpec when a seed spec names no explicit weights: mostly
// pass-through with a thin tail of every fault kind.
func DefaultChaosWeights() (pass, panicW, invalid, errW, delay int) {
	return 90, 4, 3, 2, 1
}

// ParseChaosSpec parses the -chaos flag grammar, mirroring
// reconfig.ParseFaultPlan:
//
//	off | none | ""                        no chaos (nil config)
//	script:panic,pass,error,...            deterministic script, cycled
//	seed:7                                 weighted mode, default weights
//	seed:7,panic:10,pass:85,delay:5        weighted mode, explicit weights
//
// Script entries are the Fault names (pass/none, panic, invalid, error,
// delay); weight keys are the same names plus required leading seed.
func ParseChaosSpec(spec string) (*ChaosConfig, error) {
	spec = strings.TrimSpace(spec)
	switch spec {
	case "", "off", "none":
		return nil, nil
	}

	if rest, ok := strings.CutPrefix(spec, "script:"); ok {
		var script []Fault
		for _, name := range strings.Split(rest, ",") {
			switch strings.TrimSpace(name) {
			case "pass", "none":
				script = append(script, FaultNone)
			case "panic":
				script = append(script, FaultPanic)
			case "invalid":
				script = append(script, FaultInvalid)
			case "error":
				script = append(script, FaultError)
			case "delay":
				script = append(script, FaultDelay)
			default:
				return nil, fmt.Errorf("guard: chaos script entry %q (want pass|panic|invalid|error|delay)", name)
			}
		}
		if len(script) == 0 {
			return nil, errors.New("guard: empty chaos script")
		}
		return &ChaosConfig{Script: script}, nil
	}

	if !strings.HasPrefix(spec, "seed:") {
		return nil, fmt.Errorf("guard: chaos spec %q (want off, script:..., or seed:N[,fault:weight...])", spec)
	}
	cfg := &ChaosConfig{}
	cfg.PassWeight, cfg.PanicWeight, cfg.InvalidWeight, cfg.ErrorWeight, cfg.DelayWeight = DefaultChaosWeights()
	explicit := false
	for i, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("guard: chaos spec part %q", part)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("guard: chaos spec %s:%s (want a non-negative integer)", key, val)
		}
		if i == 0 {
			if key != "seed" {
				return nil, fmt.Errorf("guard: chaos spec must start with seed:, got %q", part)
			}
			cfg.Seed = int64(n)
			continue
		}
		if !explicit {
			// First explicit weight clears the defaults: the spec now
			// defines the whole distribution.
			cfg.PassWeight, cfg.PanicWeight, cfg.InvalidWeight, cfg.ErrorWeight, cfg.DelayWeight = 0, 0, 0, 0, 0
			explicit = true
		}
		switch key {
		case "pass", "none":
			cfg.PassWeight = n
		case "panic":
			cfg.PanicWeight = n
		case "invalid":
			cfg.InvalidWeight = n
		case "error":
			cfg.ErrorWeight = n
		case "delay":
			cfg.DelayWeight = n
		case "seed":
			return nil, errors.New("guard: duplicate seed in chaos spec")
		default:
			return nil, fmt.Errorf("guard: chaos weight %q (want pass|panic|invalid|error|delay)", key)
		}
	}
	return cfg, nil
}

// poison builds a floorplan that always fails Solution.Validate: region
// 0 is placed off-device, the rest overlap at the origin.
func (c *Chaos) poison(p *core.Problem) *core.Solution {
	sol := &core.Solution{
		Regions: make([]grid.Rect, len(p.Regions)),
		FC:      make([]core.FCPlacement, len(p.FCAreas)),
		Engine:  c.Name(),
	}
	for i := range sol.FC {
		sol.FC[i] = core.FCPlacement{Request: i}
	}
	for i := range sol.Regions {
		sol.Regions[i] = grid.Rect{X: 0, Y: 0, W: 1, H: 1}
	}
	if len(sol.Regions) > 0 {
		sol.Regions[0] = grid.Rect{X: p.Device.Width(), Y: 0, W: 1, H: 1}
	}
	return sol
}
