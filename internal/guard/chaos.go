package guard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
)

// Fault is one kind of injected failure.
type Fault int

const (
	// FaultNone passes the call through to the inner engine.
	FaultNone Fault = iota
	// FaultPanic panics inside Solve.
	FaultPanic
	// FaultInvalid returns a deliberately illegal floorplan with a nil
	// error (the poison the serving boundary must catch).
	FaultInvalid
	// FaultError returns a spurious error wrapping ErrInjected.
	FaultError
	// FaultDelay sleeps before passing the call through, to exercise
	// deadline and straggler handling.
	FaultDelay
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultPanic:
		return "panic"
	case FaultInvalid:
		return "invalid"
	case FaultError:
		return "error"
	default:
		return "delay"
	}
}

// ErrInjected is the spurious error FaultError returns.
var ErrInjected = errors.New("guard: injected chaos error")

// ChaosConfig schedules a Chaos wrapper's faults. Two modes:
//
//   - Script: a non-empty fault list cycled deterministically, one entry
//     per Solve call — exact control for unit tests.
//   - Weights: when Script is empty, each call draws a fault from the
//     weighted distribution using a rand.Rand seeded with Seed, so a
//     whole chaos run is reproducible from one integer.
type ChaosConfig struct {
	// Seed seeds the weighted draw (ignored in Script mode).
	Seed int64
	// Script, when non-empty, is cycled deterministically call by call.
	Script []Fault
	// PassWeight .. DelayWeight are the relative draw weights for the
	// weighted mode. All zero means every call passes through.
	PassWeight    int
	PanicWeight   int
	InvalidWeight int
	ErrorWeight   int
	DelayWeight   int
	// Delay is the FaultDelay sleep (default 10ms).
	Delay time.Duration
}

// Chaos wraps an engine with deterministic fault injection. It is safe
// for concurrent use; concurrent callers consume schedule entries in
// arrival order.
type Chaos struct {
	inner core.Engine
	cfg   ChaosConfig

	mu    sync.Mutex
	rng   *rand.Rand
	calls int
}

// NewChaos wraps inner with the fault schedule cfg describes.
func NewChaos(inner core.Engine, cfg ChaosConfig) *Chaos {
	return &Chaos{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Name implements core.Engine: "chaos(<inner>)".
func (c *Chaos) Name() string { return fmt.Sprintf("chaos(%s)", c.inner.Name()) }

// Calls returns how many Solve calls the wrapper has seen.
func (c *Chaos) Calls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// next consumes one schedule entry and returns (call number, fault).
func (c *Chaos) next() (int, Fault) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if len(c.cfg.Script) > 0 {
		return c.calls, c.cfg.Script[(c.calls-1)%len(c.cfg.Script)]
	}
	weights := [...]struct {
		f Fault
		w int
	}{
		{FaultNone, c.cfg.PassWeight},
		{FaultPanic, c.cfg.PanicWeight},
		{FaultInvalid, c.cfg.InvalidWeight},
		{FaultError, c.cfg.ErrorWeight},
		{FaultDelay, c.cfg.DelayWeight},
	}
	total := 0
	for _, e := range weights {
		if e.w > 0 {
			total += e.w
		}
	}
	if total == 0 {
		return c.calls, FaultNone
	}
	draw := c.rng.Intn(total)
	for _, e := range weights {
		if e.w <= 0 {
			continue
		}
		if draw < e.w {
			return c.calls, e.f
		}
		draw -= e.w
	}
	return c.calls, FaultNone
}

// Solve implements core.Engine: apply the scheduled fault, then (for
// FaultNone and FaultDelay) run the inner engine.
func (c *Chaos) Solve(ctx context.Context, p *core.Problem, opts core.SolveOptions) (*core.Solution, error) {
	n, fault := c.next()
	switch fault {
	case FaultPanic:
		panic(fmt.Sprintf("%s: injected panic (call %d)", c.Name(), n))
	case FaultError:
		return nil, fmt.Errorf("%s: call %d: %w", c.Name(), n, ErrInjected)
	case FaultInvalid:
		return c.poison(p), nil
	case FaultDelay:
		d := c.cfg.Delay
		if d <= 0 {
			d = 10 * time.Millisecond
		}
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return c.inner.Solve(ctx, p, opts)
}

// poison builds a floorplan that always fails Solution.Validate: region
// 0 is placed off-device, the rest overlap at the origin.
func (c *Chaos) poison(p *core.Problem) *core.Solution {
	sol := &core.Solution{
		Regions: make([]grid.Rect, len(p.Regions)),
		FC:      make([]core.FCPlacement, len(p.FCAreas)),
		Engine:  c.Name(),
	}
	for i := range sol.FC {
		sol.FC[i] = core.FCPlacement{Request: i}
	}
	for i := range sol.Regions {
		sol.Regions[i] = grid.Rect{X: 0, Y: 0, W: 1, H: 1}
	}
	if len(sol.Regions) > 0 {
		sol.Regions[0] = grid.Rect{X: p.Device.Width(), Y: 0, W: 1, H: 1}
	}
	return sol
}
