package lp

import (
	"fmt"
	"math"
	"time"

	"repro/internal/obs"
)

// Status reports the outcome of an LP solve.
type Status int

// Solve outcomes.
const (
	StatusOptimal Status = iota
	StatusInfeasible
	StatusUnbounded
	StatusIterationLimit
	StatusNumericalFailure
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterationLimit:
		return "iteration-limit"
	case StatusNumericalFailure:
		return "numerical-failure"
	}
	return "unknown"
}

// Solution is the result of an LP solve.
type Solution struct {
	Status     Status
	Objective  float64
	X          []float64 // structural variable values
	Iterations int
	// Basis is the final basis snapshot when Options.ReturnBasis was set
	// and the solve ended optimal with no artificial left basic. It warm
	// starts subsequent solves of the same model under changed bounds.
	Basis *Basis
}

// Options tunes the simplex solver. The zero value selects defaults.
type Options struct {
	// MaxIterations bounds the total simplex iterations across both
	// phases (0 = default).
	MaxIterations int
	// Tol is the feasibility/optimality tolerance (0 = default 1e-7).
	Tol float64
	// Deadline, when nonzero, bounds the wall-clock time of the solve.
	// A solve cut short by the deadline reports StatusIterationLimit,
	// which callers already treat as "no usable relaxation". Every stage
	// of the solve polls it, including basis refactorization.
	Deadline time.Time
	// WarmBasis, when non-nil, starts the solve from this basis via the
	// dual simplex instead of the two-phase primal from scratch. The
	// basis must come from a solve of the same model (same variable and
	// constraint count); only bounds may differ. Invalid or numerically
	// unusable bases fall back to a cold solve, so a warm start never
	// changes the answer — only the work needed to reach it.
	WarmBasis *Basis
	// ReturnBasis requests a Basis snapshot on Solution for warm-starting
	// later solves.
	ReturnBasis bool
	// Obs, when non-nil, receives the pivot count of each solve (the
	// obs.Pivots counter). The LP core is the sole reporter of pivots so
	// layered callers (MILP branch-and-bound) never double-count.
	Obs obs.Span
}

const (
	defaultTol = 1e-7
	// refactorEvery bounds eta-file growth: after this many pivots the
	// product-form inverse is rebuilt from the basis columns. With the
	// sparse factorization this costs about as much as a handful of
	// pivots, unlike the dense O(m^3) rebuild it replaced.
	refactorEvery = 100
	// blandTrigger is the number of consecutive degenerate iterations
	// after which the solver switches to Bland's anti-cycling rule.
	blandTrigger = 60
)

// variable status within the simplex tableau.
type vstat int8

const (
	nbLower vstat = iota // nonbasic at lower bound
	nbUpper              // nonbasic at upper bound
	nbFree               // nonbasic free variable, value 0
	basic
)

type sparseEntry struct {
	row  int
	coef float64
}

// simplex holds the working state of one solve.
type simplex struct {
	m, n    int // rows, total columns (structural + slack + artificial)
	nStruct int
	cols    [][]sparseEntry
	lo, hi  []float64
	cost    []float64 // current phase costs
	cost2   []float64 // phase-2 costs
	b       []float64

	basis    []int   // row -> column
	stat     []vstat // column -> status
	x        []float64
	etas     []eta // product-form basis inverse
	tol      float64
	iters    int
	maxIter  int
	deadline time.Time

	degenStreak int
	bland       bool

	// scratch buffers
	y     []float64
	alpha []float64
	rho   []float64
	// factorization scratch (lazily allocated by factorize)
	forder   []int
	fpivoted []bool
	fbasis   []int
	fmark    []bool
	find     []int32
	fwork    []float64
}

// Solve minimizes the model objective subject to its constraints and
// bounds. Integrality markers are ignored (use internal/milp).
func Solve(m *Model, opts Options) Solution {
	return SolveWithBounds(m, opts, nil, nil)
}

// SolveWithBounds solves the model with per-variable bound overrides.
// Either override slice may be nil (use model bounds); individual entries
// equal to NaN also fall back to the model bound. This is the entry point
// used by branch-and-bound nodes.
func SolveWithBounds(m *Model, opts Options, loOverride, hiOverride []float64) Solution {
	sol := solveWithBounds(m, opts, loOverride, hiOverride)
	if opts.Obs != nil && sol.Iterations > 0 {
		opts.Obs.Add(obs.Pivots, int64(sol.Iterations))
	}
	return sol
}

func solveWithBounds(m *Model, opts Options, loOverride, hiOverride []float64) Solution {
	if !opts.Deadline.IsZero() && time.Now().After(opts.Deadline) {
		return Solution{Status: StatusIterationLimit}
	}
	s, st := setup(m, opts, loOverride, hiOverride)
	if st != StatusOptimal {
		return Solution{Status: st}
	}

	if opts.WarmBasis != nil {
		if sol, ok := s.warmSolve(opts.WarmBasis, opts.ReturnBasis); ok {
			return sol
		}
		// Warm start unusable (stale basis, numerical trouble): rebuild
		// clean state and fall through to the cold two-phase solve.
		iters := s.iters
		s, st = setup(m, opts, loOverride, hiOverride)
		if st != StatusOptimal {
			return Solution{Status: st}
		}
		s.iters = iters
	}

	if status := s.initialize(); status != StatusOptimal {
		return Solution{Status: status, Iterations: s.iters}
	}

	// Phase 1 if artificials were needed.
	total := s.nStruct + s.m
	if s.n > total {
		s.cost = make([]float64, s.n)
		for j := total; j < s.n; j++ {
			s.cost[j] = 1
		}
		st := s.run()
		if st != StatusOptimal {
			if st == StatusUnbounded {
				// A minimization of a nonnegative sum cannot be
				// unbounded; treat as numerical failure.
				st = StatusNumericalFailure
			}
			return Solution{Status: st, Iterations: s.iters}
		}
		if s.phaseObjective() > 1e-6 {
			return Solution{Status: StatusInfeasible, Iterations: s.iters}
		}
		// Freeze artificials at zero for phase 2.
		for j := total; j < s.n; j++ {
			s.lo[j], s.hi[j] = 0, 0
			if s.stat[j] != basic {
				s.stat[j] = nbLower
				s.x[j] = 0
			}
		}
	}

	// Phase 2.
	s.cost = make([]float64, s.n)
	copy(s.cost, s.cost2)
	s.bland = false
	s.degenStreak = 0
	st = s.run()
	if st != StatusOptimal {
		return Solution{Status: st, Iterations: s.iters}
	}
	return s.solution(opts.ReturnBasis)
}

// solution packages the optimal point currently held by the simplex.
func (s *simplex) solution(returnBasis bool) Solution {
	x := make([]float64, s.nStruct)
	copy(x, s.x[:s.nStruct])
	obj := 0.0
	for j := 0; j < s.nStruct; j++ {
		obj += s.cost2[j] * x[j]
	}
	sol := Solution{Status: StatusOptimal, Objective: obj, X: x, Iterations: s.iters}
	if returnBasis {
		sol.Basis = s.snapshotBasis()
	}
	return sol
}

// setup assembles the working arrays (structural columns, bounds with
// overrides applied, slack columns) shared by the cold and warm paths.
// It returns StatusInfeasible when an override crosses its bound.
func setup(m *Model, opts Options, loOverride, hiOverride []float64) (*simplex, Status) {
	tol := opts.Tol
	if tol <= 0 {
		tol = defaultTol
	}
	nStruct := m.NumVariables()
	rows := m.NumConstraints()

	s := &simplex{
		m:       rows,
		nStruct: nStruct,
		tol:     tol,
	}
	s.maxIter = opts.MaxIterations
	if s.maxIter <= 0 {
		s.maxIter = 2000 + 40*(rows+nStruct)
	}
	s.deadline = opts.Deadline

	// Assemble columns: structural then one slack per row.
	total := nStruct + rows
	s.cols = make([][]sparseEntry, total, total+rows)
	s.lo = make([]float64, total, total+rows)
	s.hi = make([]float64, total, total+rows)
	s.cost2 = make([]float64, total, total+rows)
	for j := 0; j < nStruct; j++ {
		s.lo[j] = m.lo[j]
		s.hi[j] = m.hi[j]
		if loOverride != nil && j < len(loOverride) && !math.IsNaN(loOverride[j]) {
			s.lo[j] = loOverride[j]
		}
		if hiOverride != nil && j < len(hiOverride) && !math.IsNaN(hiOverride[j]) {
			s.hi[j] = hiOverride[j]
		}
		if s.lo[j] > s.hi[j]+tol {
			return nil, StatusInfeasible
		}
		if s.lo[j] > s.hi[j] {
			s.lo[j] = s.hi[j]
		}
		s.cost2[j] = m.obj[j]
	}
	for r, row := range m.rows {
		for _, t := range row {
			s.cols[t.Var] = append(s.cols[t.Var], sparseEntry{row: r, coef: t.Coef})
		}
	}
	s.b = append([]float64(nil), m.rhs...)
	for r := 0; r < rows; r++ {
		j := nStruct + r
		s.cols[j] = []sparseEntry{{row: r, coef: 1}}
		switch m.senses[r] {
		case LE:
			s.lo[j], s.hi[j] = 0, Inf
		case GE:
			s.lo[j], s.hi[j] = -Inf, 0
		case EQ:
			s.lo[j], s.hi[j] = 0, 0
		}
	}
	s.n = total
	s.y = make([]float64, rows)
	s.alpha = make([]float64, rows)
	return s, StatusOptimal
}

// initialize sets the cold starting point: structurals at a finite bound
// (or 0 if free), slacks basic where feasible, artificials elsewhere. The
// initial basis is diagonal, so its product-form inverse needs one eta per
// negative-signed artificial and nothing else.
func (s *simplex) initialize() Status {
	s.x = make([]float64, s.n, s.n+s.m)
	s.stat = make([]vstat, s.n, s.n+s.m)
	for j := 0; j < s.nStruct; j++ {
		switch {
		case !math.IsInf(s.lo[j], -1):
			s.stat[j] = nbLower
			s.x[j] = s.lo[j]
		case !math.IsInf(s.hi[j], 1):
			s.stat[j] = nbUpper
			s.x[j] = s.hi[j]
		default:
			s.stat[j] = nbFree
			s.x[j] = 0
		}
	}

	// Row activity of the nonbasic structurals.
	act := make([]float64, s.m)
	for j := 0; j < s.nStruct; j++ {
		if v := s.x[j]; v != 0 {
			for _, e := range s.cols[j] {
				act[e.row] += e.coef * v
			}
		}
	}

	s.basis = make([]int, s.m)
	s.etas = s.etas[:0]
	for r := 0; r < s.m; r++ {
		slack := s.nStruct + r
		resid := s.b[r] - act[r]
		if resid >= s.lo[slack]-s.tol && resid <= s.hi[slack]+s.tol {
			// Slack is basic and feasible.
			s.basis[r] = slack
			s.stat[slack] = basic
			s.x[slack] = clamp(resid, s.lo[slack], s.hi[slack])
			continue
		}
		// Clamp the slack at its nearest bound and cover the residual
		// with an artificial variable.
		var sv float64
		if resid < s.lo[slack] {
			sv = s.lo[slack]
			s.stat[slack] = nbLower
		} else {
			sv = s.hi[slack]
			s.stat[slack] = nbUpper
		}
		s.x[slack] = sv
		gap := resid - sv
		sign := 1.0
		if gap < 0 {
			sign = -1.0
		}
		aj := len(s.cols)
		s.cols = append(s.cols, []sparseEntry{{row: r, coef: sign}})
		s.lo = append(s.lo, 0)
		s.hi = append(s.hi, Inf)
		s.cost2 = append(s.cost2, 0)
		s.x = append(s.x, math.Abs(gap))
		s.stat = append(s.stat, basic)
		s.basis[r] = aj
		if sign < 0 {
			s.etas = append(s.etas, eta{r: int32(r), alphaR: sign})
		}
		s.n++
	}
	return StatusOptimal
}

func (s *simplex) phaseObjective() float64 {
	v := 0.0
	for j, c := range s.cost {
		if c != 0 {
			v += c * s.x[j]
		}
	}
	return v
}

// run iterates the bounded-variable revised simplex until optimality,
// unboundedness, or the iteration limit.
func (s *simplex) run() Status {
	sinceRefactor := 0
	for {
		if s.iters >= s.maxIter {
			return StatusIterationLimit
		}
		// A clock read is trivial next to a pivot, so the deadline is
		// polled every iteration.
		if !s.deadline.IsZero() && time.Now().After(s.deadline) {
			return StatusIterationLimit
		}
		s.iters++
		sinceRefactor++
		if sinceRefactor >= refactorEvery {
			if st := s.factorize(); st != StatusOptimal {
				return st
			}
			sinceRefactor = 0
		}

		s.computeDuals()
		enter, dir := s.price()
		if enter < 0 {
			return StatusOptimal
		}

		// alpha = B^{-1} a_enter
		for r := range s.alpha {
			s.alpha[r] = 0
		}
		for _, e := range s.cols[enter] {
			s.alpha[e.row] = e.coef
		}
		s.ftran(s.alpha)

		leaveRow, step, flip, ok := s.ratioTest(enter, dir)
		if !ok {
			return StatusUnbounded
		}
		if step < s.tol {
			s.degenStreak++
			if s.degenStreak > blandTrigger {
				s.bland = true
			}
		} else {
			s.degenStreak = 0
			s.bland = false
		}

		// Move the entering variable and update basic values.
		s.x[enter] += dir * step
		if step != 0 {
			for r := 0; r < s.m; r++ {
				if s.alpha[r] != 0 {
					s.x[s.basis[r]] -= dir * step * s.alpha[r]
				}
			}
		}

		if flip {
			// Bound flip: the entering variable moved to its other
			// bound; the basis is unchanged.
			if dir > 0 {
				s.stat[enter] = nbUpper
				s.x[enter] = s.hi[enter]
			} else {
				s.stat[enter] = nbLower
				s.x[enter] = s.lo[enter]
			}
			continue
		}

		leave := s.basis[leaveRow]
		// The leaving variable settles at the bound it hit.
		if dir*s.alpha[leaveRow] > 0 {
			s.stat[leave] = nbLower
			s.x[leave] = s.lo[leave]
		} else {
			s.stat[leave] = nbUpper
			s.x[leave] = s.hi[leave]
		}
		if math.IsInf(s.lo[leave], -1) && math.IsInf(s.hi[leave], 1) {
			s.stat[leave] = nbFree
			s.x[leave] = 0
		}

		// Pivot: append the eta encoding this basis change.
		piv := s.alpha[leaveRow]
		if math.Abs(piv) < 1e-10 {
			if st := s.factorize(); st != StatusOptimal {
				return st
			}
			sinceRefactor = 0
			continue
		}
		s.appendEta(s.alpha, leaveRow)
		s.basis[leaveRow] = enter
		s.stat[enter] = basic
	}
}

// computeDuals sets y = c_B^T B^{-1} via a backward transformation of the
// basic costs through the eta file.
func (s *simplex) computeDuals() {
	for r := 0; r < s.m; r++ {
		s.y[r] = s.cost[s.basis[r]]
	}
	s.btran(s.y)
}

// price selects the entering column and its direction (+1 to increase, -1
// to decrease), or (-1, 0) at optimality. Dantzig pricing with a Bland
// fallback under degeneracy.
func (s *simplex) price() (enter int, dir float64) {
	best := -1
	bestScore := s.tol
	bestDir := 0.0
	for j := 0; j < s.n; j++ {
		st := s.stat[j]
		if st == basic {
			continue
		}
		if s.lo[j] == s.hi[j] && st != nbFree {
			continue // fixed variable can never improve
		}
		d := s.reducedCost(j)
		var score, dj float64
		switch st {
		case nbLower:
			if d < -s.tol {
				score, dj = -d, 1
			}
		case nbUpper:
			if d > s.tol {
				score, dj = d, -1
			}
		case nbFree:
			if d < -s.tol {
				score, dj = -d, 1
			} else if d > s.tol {
				score, dj = d, -1
			}
		}
		if dj == 0 {
			continue
		}
		if s.bland {
			return j, dj
		}
		if score > bestScore {
			best, bestScore, bestDir = j, score, dj
		}
	}
	if best < 0 {
		return -1, 0
	}
	return best, bestDir
}

func (s *simplex) reducedCost(j int) float64 {
	d := s.cost[j]
	for _, e := range s.cols[j] {
		d -= s.y[e.row] * e.coef
	}
	return d
}

// ratioTest computes the maximal step for the entering variable. It
// returns the limiting basic row (or -1), the step, whether the limit is
// the entering variable's own opposite bound (a bound flip), and false
// when the problem is unbounded in this direction.
func (s *simplex) ratioTest(enter int, dir float64) (leaveRow int, step float64, flip bool, ok bool) {
	step = math.Inf(1)
	leaveRow = -1
	// Entering variable's own range.
	if r := s.hi[enter] - s.lo[enter]; !math.IsInf(r, 1) {
		step = r
		flip = true
	}
	for r := 0; r < s.m; r++ {
		a := dir * s.alpha[r]
		if math.Abs(a) < 1e-9 {
			continue
		}
		bi := s.basis[r]
		var limit float64
		if a > 0 {
			if math.IsInf(s.lo[bi], -1) {
				continue
			}
			limit = (s.x[bi] - s.lo[bi]) / a
		} else {
			if math.IsInf(s.hi[bi], 1) {
				continue
			}
			limit = (s.x[bi] - s.hi[bi]) / a
		}
		if limit < 0 {
			limit = 0
		}
		better := limit < step-1e-12
		tie := !better && limit <= step+1e-12
		if better ||
			(tie && leaveRow >= 0 && s.tieBreak(r, leaveRow)) ||
			(tie && leaveRow < 0 && flip) {
			step = limit
			leaveRow = r
			flip = false
		}
	}
	if math.IsInf(step, 1) {
		return -1, 0, false, false
	}
	return leaveRow, step, flip, true
}

// tieBreak prefers r over current when ratios tie: Bland's rule picks the
// lowest basis column index; otherwise prefer the larger pivot magnitude
// for numerical stability.
func (s *simplex) tieBreak(r, current int) bool {
	if s.bland {
		return s.basis[r] < s.basis[current]
	}
	return math.Abs(s.alpha[r]) > math.Abs(s.alpha[current])
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// String renders a short human-readable description of a solution.
func (sol Solution) String() string {
	return fmt.Sprintf("%s obj=%.6g iters=%d", sol.Status, sol.Objective, sol.Iterations)
}
