package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestPresolveDetectsInfeasibleBox catches bound-contradiction at presolve
// time, before any simplex work.
func TestPresolveDetectsInfeasibleBox(t *testing.T) {
	m := NewModel()
	x := m.AddVariable("x", 2, 3, 1)
	m.AddConstraint("cap", []Term{{x, 1}}, LE, 1)
	if _, infeasible := Presolve(m, false); !infeasible {
		t.Fatal("presolve accepted an infeasible model")
	}
}

// TestPresolveIntegerRounding verifies integer-aware bound tightening:
// fractional bounds on integer variables round inward.
func TestPresolveIntegerRounding(t *testing.T) {
	m := NewModel()
	x := m.AddInteger("x", 0, 10, -1)
	// 3x <= 8.5 -> x <= 2.833 -> x <= 2 for integer x.
	m.AddConstraint("c", []Term{{x, 3}}, LE, 8.5)
	pm, infeasible := Presolve(m, true)
	if infeasible {
		t.Fatal("presolve claims infeasible")
	}
	if _, hi := pm.Bounds(x); hi != 2 {
		t.Fatalf("integer upper bound = %g, want 2", hi)
	}
	// Continuous mode must not round.
	pc, infeasible := Presolve(m, false)
	if infeasible {
		t.Fatal("presolve claims infeasible (continuous)")
	}
	if _, hi := pc.Bounds(x); hi < 2.8 || hi > 2.9 {
		t.Fatalf("continuous upper bound = %g, want ~2.833", hi)
	}
}

// TestPresolveKeepsVariableIndices pins the contract the MILP layer
// depends on: presolve may drop constraints but never variables, so the
// branch-and-bound bound-override slices stay index-aligned.
func TestPresolveKeepsVariableIndices(t *testing.T) {
	m := NewModel()
	m.AddVariable("a", 0, 1, 1)
	m.AddInteger("b", 0, 5, -1)
	m.AddVariable("c", -2, 2, 0)
	m.AddConstraint("redundant", []Term{{0, 1}}, LE, 100)
	pm, infeasible := Presolve(m, true)
	if infeasible {
		t.Fatal("presolve claims infeasible")
	}
	if pm.NumVariables() != m.NumVariables() {
		t.Fatalf("variable count changed: %d -> %d", m.NumVariables(), pm.NumVariables())
	}
	for v := 0; v < m.NumVariables(); v++ {
		if pm.VarName(VarID(v)) != m.VarName(VarID(v)) {
			t.Fatalf("variable %d renamed: %q -> %q", v, m.VarName(VarID(v)), pm.VarName(VarID(v)))
		}
		if pm.IsInteger(VarID(v)) != m.IsInteger(VarID(v)) {
			t.Fatalf("variable %d integrality changed", v)
		}
	}
	if pm.NumConstraints() >= m.NumConstraints() {
		t.Fatalf("redundant row survived presolve: %d rows", pm.NumConstraints())
	}
}

// TestPresolveEquivalenceRandom is the presolve soundness property: on
// random bounded LPs the presolved model must agree with the original —
// same feasibility verdict, same optimum, and the presolved solution
// feasible in the original model.
func TestPresolveEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	reduced := 0
	for trial := 0; trial < 400; trial++ {
		m := randomBoundedLP(rng)
		orig := Solve(m, Options{})
		pm, infeasible := Presolve(m, false)
		if infeasible {
			if orig.Status == StatusOptimal {
				t.Fatalf("trial %d: presolve says infeasible but original solves to %g", trial, orig.Objective)
			}
			continue
		}
		if pm.NumConstraints() < m.NumConstraints() {
			reduced++
		}
		pre := Solve(pm, Options{})
		if pre.Status != orig.Status {
			t.Fatalf("trial %d: presolved status %v, original %v", trial, pre.Status, orig.Status)
		}
		if orig.Status != StatusOptimal {
			continue
		}
		if math.Abs(pre.Objective-orig.Objective) > 1e-6*(1+math.Abs(orig.Objective)) {
			t.Fatalf("trial %d: presolved obj %g != original obj %g", trial, pre.Objective, orig.Objective)
		}
		if err := m.CheckFeasible(pre.X, 1e-5); err != nil {
			t.Fatalf("trial %d: presolved optimum infeasible in original: %v", trial, err)
		}
	}
	if reduced < 20 {
		t.Fatalf("presolve only reduced %d of 400 models; generator or presolve too weak", reduced)
	}
}
