package lp

import "math"

// Presolve returns a reduced clone of m: variable bounds tightened by
// constraint-activity propagation (rounded to integrality for integer
// variables when integerAware), singleton rows folded into bounds, and
// rows made redundant by the bounds dropped. The variable set and order
// are unchanged, so solutions of the presolved model are solutions of the
// original and per-variable bound overrides keep their meaning — which is
// what lets the MILP branch-and-bound presolve once at the root and reuse
// the reduction for every node.
//
// The second result is true when presolve proves the model infeasible
// (a bound crossing or a row whose minimum activity exceeds its rhs).
// Tightenings are implied by the original constraints plus bounds —
// integer roundings by integrality on top — so every (integer-)feasible
// point of the original model remains feasible in the presolved one.
func Presolve(m *Model, integerAware bool) (*Model, bool) {
	const (
		tol    = 1e-9
		minGap = 1e-7 // only apply tightenings that move a bound materially
	)
	out := m.Clone()
	n := len(out.lo)
	keep := make([]bool, len(out.rows))
	for i := range keep {
		keep[i] = true
	}

	tightenLo := func(j int, lo float64) bool {
		if lo <= out.lo[j]+minGap {
			return true
		}
		if integerAware && out.integer[j] {
			lo = math.Ceil(lo - 1e-6)
		}
		if lo > out.lo[j] {
			out.lo[j] = lo
		}
		return out.lo[j] <= out.hi[j]+tol
	}
	tightenHi := func(j int, hi float64) bool {
		if hi >= out.hi[j]-minGap {
			return true
		}
		if integerAware && out.integer[j] {
			hi = math.Floor(hi + 1e-6)
		}
		if hi < out.hi[j] {
			out.hi[j] = hi
		}
		return out.lo[j] <= out.hi[j]+tol
	}

	for pass := 0; pass < 8; pass++ {
		changed := false
		for r, row := range out.rows {
			if !keep[r] {
				continue
			}
			if len(row) == 0 {
				// Empty row: constant sense rhs.
				lhs := 0.0
				if violatesSense(lhs, out.senses[r], out.rhs[r], tol) {
					return out, true
				}
				keep[r] = false
				changed = true
				continue
			}
			if len(row) == 1 {
				// Singleton row: a bound in disguise.
				t := row[0]
				bound := out.rhs[r] / t.Coef
				sense := out.senses[r]
				if t.Coef < 0 {
					if sense == LE {
						sense = GE
					} else if sense == GE {
						sense = LE
					}
				}
				ok := true
				switch sense {
				case LE:
					ok = tightenHi(int(t.Var), bound)
				case GE:
					ok = tightenLo(int(t.Var), bound)
				case EQ:
					ok = tightenHi(int(t.Var), bound) && tightenLo(int(t.Var), bound)
				}
				if !ok {
					return out, true
				}
				keep[r] = false
				changed = true
				continue
			}

			// Activity bounds of the row over the variable box.
			minAct, maxAct := 0.0, 0.0
			nMinInf, nMaxInf := 0, 0
			for _, t := range row {
				lo, hi := out.lo[t.Var], out.hi[t.Var]
				if t.Coef > 0 {
					if math.IsInf(lo, -1) {
						nMinInf++
					} else {
						minAct += t.Coef * lo
					}
					if math.IsInf(hi, 1) {
						nMaxInf++
					} else {
						maxAct += t.Coef * hi
					}
				} else {
					if math.IsInf(hi, 1) {
						nMinInf++
					} else {
						minAct += t.Coef * hi
					}
					if math.IsInf(lo, -1) {
						nMaxInf++
					} else {
						maxAct += t.Coef * lo
					}
				}
			}

			sense, rhs := out.senses[r], out.rhs[r]
			// Infeasible or redundant rows.
			if (sense == LE || sense == EQ) && nMinInf == 0 && minAct > rhs+feasSlack(minAct, rhs) {
				return out, true
			}
			if (sense == GE || sense == EQ) && nMaxInf == 0 && maxAct < rhs-feasSlack(maxAct, rhs) {
				return out, true
			}
			switch sense {
			case LE:
				if nMaxInf == 0 && maxAct <= rhs+tol {
					keep[r] = false
					changed = true
					continue
				}
			case GE:
				if nMinInf == 0 && minAct >= rhs-tol {
					keep[r] = false
					changed = true
					continue
				}
			case EQ:
				if nMinInf == 0 && nMaxInf == 0 &&
					maxAct <= rhs+tol && minAct >= rhs-tol {
					keep[r] = false
					changed = true
					continue
				}
			}

			// Bound tightening: for each variable, the residual activity
			// of the rest of the row bounds what it can contribute.
			if sense == LE || sense == EQ {
				if nMinInf <= 1 {
					for _, t := range row {
						lo, hi := out.lo[t.Var], out.hi[t.Var]
						var rest float64
						if t.Coef > 0 {
							if math.IsInf(lo, -1) {
								if nMinInf > 1 {
									continue
								}
								rest = minAct
							} else if nMinInf > 0 {
								continue
							} else {
								rest = minAct - t.Coef*lo
							}
							before := out.hi[t.Var]
							if !tightenHi(int(t.Var), (rhs-rest)/t.Coef) {
								return out, true
							}
							changed = changed || out.hi[t.Var] != before
						} else {
							if math.IsInf(hi, 1) {
								if nMinInf > 1 {
									continue
								}
								rest = minAct
							} else if nMinInf > 0 {
								continue
							} else {
								rest = minAct - t.Coef*hi
							}
							before := out.lo[t.Var]
							if !tightenLo(int(t.Var), (rhs-rest)/t.Coef) {
								return out, true
							}
							changed = changed || out.lo[t.Var] != before
						}
					}
				}
			}
			if sense == GE || sense == EQ {
				if nMaxInf <= 1 {
					for _, t := range row {
						lo, hi := out.lo[t.Var], out.hi[t.Var]
						var rest float64
						if t.Coef > 0 {
							if math.IsInf(hi, 1) {
								if nMaxInf > 1 {
									continue
								}
								rest = maxAct
							} else if nMaxInf > 0 {
								continue
							} else {
								rest = maxAct - t.Coef*hi
							}
							before := out.lo[t.Var]
							if !tightenLo(int(t.Var), (rhs-rest)/t.Coef) {
								return out, true
							}
							changed = changed || out.lo[t.Var] != before
						} else {
							if math.IsInf(lo, -1) {
								if nMaxInf > 1 {
									continue
								}
								rest = maxAct
							} else if nMaxInf > 0 {
								continue
							} else {
								rest = maxAct - t.Coef*lo
							}
							before := out.hi[t.Var]
							if !tightenHi(int(t.Var), (rhs-rest)/t.Coef) {
								return out, true
							}
							changed = changed || out.hi[t.Var] != before
						}
					}
				}
			}
		}
		if !changed {
			break
		}
	}

	// Final integer rounding and bound sanity.
	for j := 0; j < n; j++ {
		if integerAware && out.integer[j] {
			if !math.IsInf(out.lo[j], -1) {
				out.lo[j] = math.Ceil(out.lo[j] - 1e-6)
			}
			if !math.IsInf(out.hi[j], 1) {
				out.hi[j] = math.Floor(out.hi[j] + 1e-6)
			}
		}
		if out.lo[j] > out.hi[j]+tol {
			return out, true
		}
		if out.lo[j] > out.hi[j] {
			out.lo[j] = out.hi[j]
		}
	}

	// Compact the kept rows.
	w := 0
	for r := range out.rows {
		if !keep[r] {
			continue
		}
		out.conNames[w] = out.conNames[r]
		out.rows[w] = out.rows[r]
		out.senses[w] = out.senses[r]
		out.rhs[w] = out.rhs[r]
		w++
	}
	out.conNames = out.conNames[:w]
	out.rows = out.rows[:w]
	out.senses = out.senses[:w]
	out.rhs = out.rhs[:w]
	return out, false
}

// violatesSense reports whether lhs sense rhs fails within tol.
func violatesSense(lhs float64, sense Sense, rhs, tol float64) bool {
	switch sense {
	case LE:
		return lhs > rhs+tol
	case GE:
		return lhs < rhs-tol
	default:
		return math.Abs(lhs-rhs) > tol
	}
}

// feasSlack is the infeasibility-detection margin: absolute 1e-7 scaled
// up for large magnitudes so presolve never declares infeasible on
// floating-point noise.
func feasSlack(a, b float64) float64 {
	return 1e-7 * math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}
