// Package lp provides a self-contained linear-programming solver: a
// revised simplex method for problems with bounded variables, used as the
// relaxation engine of the MILP branch-and-bound in internal/milp.
//
// The paper solves its floorplanning formulation with a commercial MILP
// solver; this package is the open substrate substituted for it (see
// DESIGN.md). It is a dense, two-phase bounded-variable simplex with
// explicit basis-inverse maintenance and periodic refactorization —
// adequate for the model sizes produced by internal/model.
package lp

import (
	"fmt"
	"math"
)

// Inf is the bound used for unbounded variables ("no bound").
var Inf = math.Inf(1)

// VarID identifies a variable within a Model.
type VarID int

// ConID identifies a constraint within a Model.
type ConID int

// Sense is the direction of a linear constraint.
type Sense int8

// Constraint senses.
const (
	LE Sense = iota // sum <= rhs
	GE              // sum >= rhs
	EQ              // sum == rhs
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Term is one coefficient of a linear expression.
type Term struct {
	Var  VarID
	Coef float64
}

// Model is an LP/MILP model under construction: variables with bounds and
// objective coefficients, plus linear constraints. Minimization is assumed
// throughout.
type Model struct {
	varNames []string
	lo, hi   []float64
	obj      []float64
	integer  []bool

	conNames []string
	rows     [][]Term
	senses   []Sense
	rhs      []float64
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// AddVariable adds a continuous variable with bounds [lo, hi] and objective
// coefficient obj, returning its id.
func (m *Model) AddVariable(name string, lo, hi, obj float64) VarID {
	if lo > hi {
		panic(fmt.Sprintf("lp: variable %q has lo %g > hi %g", name, lo, hi))
	}
	m.varNames = append(m.varNames, name)
	m.lo = append(m.lo, lo)
	m.hi = append(m.hi, hi)
	m.obj = append(m.obj, obj)
	m.integer = append(m.integer, false)
	return VarID(len(m.varNames) - 1)
}

// AddInteger adds an integer variable with bounds [lo, hi] and objective
// coefficient obj. Integrality is ignored by the LP solver and enforced by
// the MILP layer.
func (m *Model) AddInteger(name string, lo, hi, obj float64) VarID {
	id := m.AddVariable(name, lo, hi, obj)
	m.integer[id] = true
	return id
}

// AddBinary adds a {0,1} variable with objective coefficient obj.
func (m *Model) AddBinary(name string, obj float64) VarID {
	return m.AddInteger(name, 0, 1, obj)
}

// AddConstraint adds the linear constraint sum(terms) sense rhs. Duplicate
// variables within terms are accumulated.
func (m *Model) AddConstraint(name string, terms []Term, sense Sense, rhs float64) ConID {
	for _, t := range terms {
		if int(t.Var) < 0 || int(t.Var) >= len(m.varNames) {
			panic(fmt.Sprintf("lp: constraint %q references unknown variable %d", name, t.Var))
		}
	}
	m.conNames = append(m.conNames, name)
	m.rows = append(m.rows, compactTerms(terms))
	m.senses = append(m.senses, sense)
	m.rhs = append(m.rhs, rhs)
	return ConID(len(m.conNames) - 1)
}

// compactTerms merges duplicate variables and drops zero coefficients.
func compactTerms(terms []Term) []Term {
	byVar := map[VarID]float64{}
	order := make([]VarID, 0, len(terms))
	for _, t := range terms {
		if _, seen := byVar[t.Var]; !seen {
			order = append(order, t.Var)
		}
		byVar[t.Var] += t.Coef
	}
	out := make([]Term, 0, len(order))
	for _, v := range order {
		if c := byVar[v]; c != 0 {
			out = append(out, Term{Var: v, Coef: c})
		}
	}
	return out
}

// SetObjective replaces the objective coefficient of v.
func (m *Model) SetObjective(v VarID, obj float64) { m.obj[v] = obj }

// SetBounds replaces the bounds of v.
func (m *Model) SetBounds(v VarID, lo, hi float64) {
	if lo > hi {
		panic(fmt.Sprintf("lp: SetBounds(%d) lo %g > hi %g", v, lo, hi))
	}
	m.lo[v] = lo
	m.hi[v] = hi
}

// Bounds returns the bounds of v.
func (m *Model) Bounds(v VarID) (lo, hi float64) { return m.lo[v], m.hi[v] }

// NumVariables returns the number of variables.
func (m *Model) NumVariables() int { return len(m.varNames) }

// NumConstraints returns the number of constraints.
func (m *Model) NumConstraints() int { return len(m.conNames) }

// VarName returns the name of v.
func (m *Model) VarName(v VarID) string { return m.varNames[v] }

// ConName returns the name of c.
func (m *Model) ConName(c ConID) string { return m.conNames[c] }

// IsInteger reports whether v was declared integer.
func (m *Model) IsInteger(v VarID) bool { return m.integer[v] }

// IntegerVariables returns the ids of all integer variables in order.
func (m *Model) IntegerVariables() []VarID {
	var out []VarID
	for i, isInt := range m.integer {
		if isInt {
			out = append(out, VarID(i))
		}
	}
	return out
}

// Objective evaluates the model objective at x.
func (m *Model) Objective(x []float64) float64 {
	v := 0.0
	for i, c := range m.obj {
		if c != 0 {
			v += c * x[i]
		}
	}
	return v
}

// CheckFeasible verifies that x satisfies every bound and constraint within
// tol, returning a descriptive error for the first violation. It is used by
// tests and by the MILP layer's incumbent acceptance.
func (m *Model) CheckFeasible(x []float64, tol float64) error {
	if len(x) != len(m.varNames) {
		return fmt.Errorf("lp: solution has %d entries, want %d", len(x), len(m.varNames))
	}
	for i := range x {
		if x[i] < m.lo[i]-tol || x[i] > m.hi[i]+tol {
			return fmt.Errorf("lp: variable %s=%g outside [%g, %g]", m.varNames[i], x[i], m.lo[i], m.hi[i])
		}
	}
	for r, row := range m.rows {
		sum := 0.0
		for _, t := range row {
			sum += t.Coef * x[t.Var]
		}
		switch m.senses[r] {
		case LE:
			if sum > m.rhs[r]+tol {
				return fmt.Errorf("lp: constraint %s: %g > %g", m.conNames[r], sum, m.rhs[r])
			}
		case GE:
			if sum < m.rhs[r]-tol {
				return fmt.Errorf("lp: constraint %s: %g < %g", m.conNames[r], sum, m.rhs[r])
			}
		case EQ:
			if math.Abs(sum-m.rhs[r]) > tol {
				return fmt.Errorf("lp: constraint %s: %g != %g", m.conNames[r], sum, m.rhs[r])
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	cp := &Model{
		varNames: append([]string(nil), m.varNames...),
		lo:       append([]float64(nil), m.lo...),
		hi:       append([]float64(nil), m.hi...),
		obj:      append([]float64(nil), m.obj...),
		integer:  append([]bool(nil), m.integer...),
		conNames: append([]string(nil), m.conNames...),
		senses:   append([]Sense(nil), m.senses...),
		rhs:      append([]float64(nil), m.rhs...),
	}
	cp.rows = make([][]Term, len(m.rows))
	for i, row := range m.rows {
		cp.rows[i] = append([]Term(nil), row...)
	}
	return cp
}
