package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g, want %g", msg, got, want)
	}
}

func TestSolveTrivial(t *testing.T) {
	// min -x, x in [0, 5] -> x = 5, obj = -5.
	m := NewModel()
	x := m.AddVariable("x", 0, 5, -1)
	sol := Solve(m, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	approx(t, sol.X[x], 5, 1e-6, "x")
	approx(t, sol.Objective, -5, 1e-6, "obj")
}

func TestSolveClassic2D(t *testing.T) {
	// max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
	// Optimum (2, 6) with value 36 (classic Dantzig example).
	m := NewModel()
	x := m.AddVariable("x", 0, Inf, -3)
	y := m.AddVariable("y", 0, Inf, -5)
	m.AddConstraint("c1", []Term{{x, 1}}, LE, 4)
	m.AddConstraint("c2", []Term{{y, 2}}, LE, 12)
	m.AddConstraint("c3", []Term{{x, 3}, {y, 2}}, LE, 18)
	sol := Solve(m, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	approx(t, sol.Objective, -36, 1e-6, "obj")
	approx(t, sol.X[x], 2, 1e-6, "x")
	approx(t, sol.X[y], 6, 1e-6, "y")
}

func TestSolveEquality(t *testing.T) {
	// min x + 2y  s.t. x + y = 10, x - y >= -2, x,y >= 0.
	// Push y down: y = x... x + y = 10, y = 10 - x; obj = x + 20 - 2x = 20 - x;
	// maximize x: x - (10-x) >= -2 always true for x >= 4; x <= 10 (y >= 0).
	// So x = 10, y = 0, obj = 10.
	m := NewModel()
	x := m.AddVariable("x", 0, Inf, 1)
	y := m.AddVariable("y", 0, Inf, 2)
	m.AddConstraint("sum", []Term{{x, 1}, {y, 1}}, EQ, 10)
	m.AddConstraint("diff", []Term{{x, 1}, {y, -1}}, GE, -2)
	sol := Solve(m, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	approx(t, sol.Objective, 10, 1e-6, "obj")
	approx(t, sol.X[x], 10, 1e-6, "x")
	approx(t, sol.X[y], 0, 1e-6, "y")
}

func TestSolveGEConstraints(t *testing.T) {
	// Diet-style: min 2x + 3y  s.t. x + y >= 4, x + 3y >= 6, x,y >= 0.
	// Vertices: (4,0): 8; (3,1): 9; (0,4)?? check (6,0): x+y=6 ok -> 12.
	// Intersection x+y=4, x+3y=6 -> 2y=2, y=1, x=3 -> obj 9. (4,0): x+3y=4 <6 infeasible.
	// (6,0) obj 12, (0,4) obj 12. So optimum is (3,1) = 9.
	m := NewModel()
	x := m.AddVariable("x", 0, Inf, 2)
	y := m.AddVariable("y", 0, Inf, 3)
	m.AddConstraint("c1", []Term{{x, 1}, {y, 1}}, GE, 4)
	m.AddConstraint("c2", []Term{{x, 1}, {y, 3}}, GE, 6)
	sol := Solve(m, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	approx(t, sol.Objective, 9, 1e-6, "obj")
}

func TestSolveInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddVariable("x", 0, 10, 1)
	m.AddConstraint("lo", []Term{{x, 1}}, GE, 5)
	m.AddConstraint("hi", []Term{{x, 1}}, LE, 3)
	sol := Solve(m, Options{})
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveInfeasibleBounds(t *testing.T) {
	m := NewModel()
	x := m.AddVariable("x", 0, 10, 1)
	lo := []float64{11}
	hi := []float64{math.NaN()}
	sol := SolveWithBounds(m, Options{}, lo, hi)
	_ = x
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	m := NewModel()
	x := m.AddVariable("x", 0, Inf, -1)
	y := m.AddVariable("y", 0, Inf, 0)
	m.AddConstraint("c", []Term{{x, 1}, {y, -1}}, LE, 1)
	sol := Solve(m, Options{})
	if sol.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveFreeVariable(t *testing.T) {
	// min x  s.t. x >= -7 via constraint, x free.
	m := NewModel()
	x := m.AddVariable("x", -Inf, Inf, 1)
	m.AddConstraint("c", []Term{{x, 1}}, GE, -7)
	sol := Solve(m, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	approx(t, sol.X[x], -7, 1e-6, "x")
}

func TestSolveNegativeBounds(t *testing.T) {
	// min x + y with x in [-5, -1], y in [-3, 8], x + y >= -6.
	// Optimum at x + y = -6 with both as low as possible: e.g. x=-5, y=-1 -> -6.
	m := NewModel()
	x := m.AddVariable("x", -5, -1, 1)
	y := m.AddVariable("y", -3, 8, 1)
	m.AddConstraint("c", []Term{{x, 1}, {y, 1}}, GE, -6)
	sol := Solve(m, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	approx(t, sol.Objective, -6, 1e-6, "obj")
	if err := m.CheckFeasible(sol.X, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestSolveBoundFlipPath(t *testing.T) {
	// Forces bound flips: maximize sum of variables with a single coupling
	// constraint that binds only two of them.
	m := NewModel()
	var vars []VarID
	for i := 0; i < 6; i++ {
		vars = append(vars, m.AddVariable("v", 0, 1, -1))
	}
	m.AddConstraint("c", []Term{{vars[0], 1}, {vars[1], 1}}, LE, 1)
	sol := Solve(m, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	approx(t, sol.Objective, -5, 1e-6, "obj")
}

func TestSolveDegenerate(t *testing.T) {
	// A degenerate LP (redundant constraints meeting at the optimum).
	m := NewModel()
	x := m.AddVariable("x", 0, Inf, -1)
	y := m.AddVariable("y", 0, Inf, -1)
	m.AddConstraint("c1", []Term{{x, 1}, {y, 1}}, LE, 2)
	m.AddConstraint("c2", []Term{{x, 1}}, LE, 1)
	m.AddConstraint("c3", []Term{{y, 1}}, LE, 1)
	m.AddConstraint("c4", []Term{{x, 2}, {y, 2}}, LE, 4)
	sol := Solve(m, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	approx(t, sol.Objective, -2, 1e-6, "obj")
}

func TestSolveEqualityPhase1(t *testing.T) {
	// Multiple equalities requiring artificial variables.
	// x + y + z = 6, x - y = 1, y + z = 4 -> x = 2, y = 1, z = 3.
	m := NewModel()
	x := m.AddVariable("x", 0, Inf, 1)
	y := m.AddVariable("y", 0, Inf, 1)
	z := m.AddVariable("z", 0, Inf, 1)
	m.AddConstraint("e1", []Term{{x, 1}, {y, 1}, {z, 1}}, EQ, 6)
	m.AddConstraint("e2", []Term{{x, 1}, {y, -1}}, EQ, 1)
	m.AddConstraint("e3", []Term{{y, 1}, {z, 1}}, EQ, 4)
	sol := Solve(m, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	approx(t, sol.X[x], 2, 1e-6, "x")
	approx(t, sol.X[y], 1, 1e-6, "y")
	approx(t, sol.X[z], 3, 1e-6, "z")
}

func TestSolutionSatisfiesModel(t *testing.T) {
	m := NewModel()
	x := m.AddVariable("x", 0, 10, -2)
	y := m.AddVariable("y", -4, 4, 1)
	z := m.AddVariable("z", 0, Inf, 3)
	m.AddConstraint("c1", []Term{{x, 1}, {y, 2}, {z, -1}}, LE, 8)
	m.AddConstraint("c2", []Term{{x, -1}, {y, 1}}, GE, -9)
	m.AddConstraint("c3", []Term{{y, 1}, {z, 1}}, EQ, 2)
	sol := Solve(m, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if err := m.CheckFeasible(sol.X, 1e-6); err != nil {
		t.Fatal(err)
	}
	approx(t, m.Objective(sol.X), sol.Objective, 1e-6, "objective consistency")
}

// bruteForce2D finds the optimum of a 2-variable LP by enumerating all
// vertex candidates (pairwise intersections of constraint lines and bound
// lines) — an independent oracle for the property test below.
type line struct{ a, b, c float64 } // a*x + b*y = c

func bruteForce2D(m *Model, tol float64) (float64, bool) {
	var lines []line
	for r := 0; r < m.NumConstraints(); r++ {
		var a, b float64
		for _, t := range m.rows[r] {
			switch t.Var {
			case 0:
				a = t.Coef
			case 1:
				b = t.Coef
			}
		}
		lines = append(lines, line{a, b, m.rhs[r]})
	}
	for v := 0; v < 2; v++ {
		av, bv := 1.0, 0.0
		if v == 1 {
			av, bv = 0, 1
		}
		if !math.IsInf(m.lo[v], -1) {
			lines = append(lines, line{av, bv, m.lo[v]})
		}
		if !math.IsInf(m.hi[v], 1) {
			lines = append(lines, line{av, bv, m.hi[v]})
		}
	}
	bestObj := math.Inf(1)
	found := false
	try := func(x, y float64) {
		if math.IsNaN(x) || math.IsNaN(y) {
			return
		}
		pt := []float64{x, y}
		if m.CheckFeasible(pt, tol) != nil {
			return
		}
		obj := m.Objective(pt)
		if obj < bestObj {
			bestObj, found = obj, true
		}
	}
	for i := range lines {
		for j := i + 1; j < len(lines); j++ {
			l1, l2 := lines[i], lines[j]
			det := l1.a*l2.b - l2.a*l1.b
			if math.Abs(det) < 1e-9 {
				continue
			}
			x := (l1.c*l2.b - l2.c*l1.b) / det
			y := (l1.a*l2.c - l2.a*l1.c) / det
			try(x, y)
		}
	}
	return bestObj, found
}

// TestRandom2DAgainstBruteForce cross-checks the simplex against the vertex
// enumeration oracle on random bounded 2-variable LPs.
func TestRandom2DAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		m := NewModel()
		for v := 0; v < 2; v++ {
			lo := float64(rng.Intn(7) - 3)
			hi := lo + float64(1+rng.Intn(8))
			obj := float64(rng.Intn(11) - 5)
			m.AddVariable("v", lo, hi, obj)
		}
		nCons := 1 + rng.Intn(4)
		for c := 0; c < nCons; c++ {
			terms := []Term{
				{0, float64(rng.Intn(9) - 4)},
				{1, float64(rng.Intn(9) - 4)},
			}
			sense := Sense(rng.Intn(3))
			rhs := float64(rng.Intn(21) - 10)
			m.AddConstraint("c", terms, sense, rhs)
		}
		want, feasible := bruteForce2D(m, 1e-7)
		sol := Solve(m, Options{})
		if !feasible {
			if sol.Status == StatusOptimal {
				// The oracle's vertex set is complete for bounded
				// problems, so an optimal solve here means the oracle
				// missed a vertex only if the solution is feasible.
				if err := m.CheckFeasible(sol.X, 1e-6); err != nil {
					t.Fatalf("trial %d: solver claims optimal but infeasible: %v", trial, err)
				}
				t.Fatalf("trial %d: oracle says infeasible, solver found obj %g", trial, sol.Objective)
			}
			continue
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v, oracle obj %g", trial, sol.Status, want)
		}
		if err := m.CheckFeasible(sol.X, 1e-6); err != nil {
			t.Fatalf("trial %d: solver solution infeasible: %v", trial, err)
		}
		if sol.Objective > want+1e-5 {
			t.Fatalf("trial %d: solver obj %g worse than oracle %g", trial, sol.Objective, want)
		}
		if sol.Objective < want-1e-5 {
			t.Fatalf("trial %d: solver obj %g better than oracle %g (solution must be infeasible)", trial, sol.Objective, want)
		}
	}
}

// TestQuickFeasibilityInvariant: whatever the solver returns as optimal is
// feasible and matches its reported objective.
func TestQuickFeasibilityInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewModel()
		n := 2 + rng.Intn(5)
		for v := 0; v < n; v++ {
			lo := float64(rng.Intn(5))
			m.AddVariable("v", lo, lo+float64(1+rng.Intn(10)), float64(rng.Intn(13)-6))
		}
		for c := 0; c < 1+rng.Intn(6); c++ {
			var terms []Term
			for v := 0; v < n; v++ {
				if rng.Intn(2) == 0 {
					terms = append(terms, Term{VarID(v), float64(rng.Intn(7) - 3)})
				}
			}
			if len(terms) == 0 {
				continue
			}
			m.AddConstraint("c", terms, Sense(rng.Intn(3)), float64(rng.Intn(31)-5))
		}
		sol := Solve(m, Options{})
		if sol.Status != StatusOptimal {
			return true // nothing to verify
		}
		if err := m.CheckFeasible(sol.X, 1e-5); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if math.Abs(m.Objective(sol.X)-sol.Objective) > 1e-5 {
			t.Logf("seed %d: objective mismatch", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactTerms(t *testing.T) {
	m := NewModel()
	x := m.AddVariable("x", 0, 1, 0)
	y := m.AddVariable("y", 0, 1, 0)
	m.AddConstraint("c", []Term{{x, 1}, {y, 2}, {x, 3}, {y, -2}}, LE, 4)
	row := m.rows[0]
	if len(row) != 1 || row[0].Var != x || row[0].Coef != 4 {
		t.Fatalf("compacted row = %+v", row)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewModel()
	x := m.AddVariable("x", 0, 5, 1)
	m.AddConstraint("c", []Term{{x, 1}}, LE, 3)
	cp := m.Clone()
	cp.SetBounds(x, 0, 1)
	cp.SetObjective(x, -1)
	if lo, hi := m.Bounds(x); lo != 0 || hi != 5 {
		t.Fatalf("clone mutated original bounds: [%g, %g]", lo, hi)
	}
	if m.obj[x] != 1 {
		t.Fatalf("clone mutated original objective")
	}
}

func TestLargeDenseLP(t *testing.T) {
	// A larger assignment-like LP to exercise refactorization paths:
	// min sum c_ij x_ij s.t. row sums = 1, col sums = 1, x in [0,1].
	const n = 12
	m := NewModel()
	rng := rand.New(rand.NewSource(7))
	vars := make([][]VarID, n)
	cost := make([][]float64, n)
	for i := range vars {
		vars[i] = make([]VarID, n)
		cost[i] = make([]float64, n)
		for j := range vars[i] {
			cost[i][j] = float64(rng.Intn(100))
			vars[i][j] = m.AddVariable("x", 0, 1, cost[i][j])
		}
	}
	for i := 0; i < n; i++ {
		var row, col []Term
		for j := 0; j < n; j++ {
			row = append(row, Term{vars[i][j], 1})
			col = append(col, Term{vars[j][i], 1})
		}
		m.AddConstraint("r", row, EQ, 1)
		m.AddConstraint("c", col, EQ, 1)
	}
	sol := Solve(m, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if err := m.CheckFeasible(sol.X, 1e-5); err != nil {
		t.Fatal(err)
	}
	// LP relaxation of assignment is integral; verify against a greedy
	// upper bound at least.
	if sol.Objective < 0 {
		t.Fatalf("objective %g < 0 impossible with nonnegative costs", sol.Objective)
	}
}
