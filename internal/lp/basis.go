package lp

import (
	"math"
	"sort"
	"time"
)

// Basis is a warm-start snapshot of a simplex basis: the basic column per
// row plus the status of every structural and slack column. A Basis taken
// from an optimal solve of a model stays dual-feasible when only variable
// bounds change, which is exactly the branch-and-bound situation — child
// nodes re-solve the parent relaxation with one tightened bound, so the
// parent basis lets the dual simplex finish in a handful of pivots instead
// of re-solving from scratch.
//
// A Basis is immutable once returned by the solver and safe to share
// across goroutines; warm solves copy it before mutating anything.
type Basis struct {
	// Basic maps each constraint row to its basic column index
	// (0..nStruct-1 structural, nStruct..nStruct+rows-1 slack).
	// Artificial columns never appear: solutions whose final basis still
	// contains an artificial are not snapshotted.
	Basic []int32
	// Stat holds the vstat of every structural and slack column.
	Stat []int8
}

// eta is one elementary transformation of the product-form basis inverse:
// the identity except for column r, encoding the pivot B^{-1}a_q = alpha.
// Applying it forward (ftran) maps v[r] -> v[r]/alphaR and
// v[i] -> v[i] - alpha_i * (v[r]/alphaR) for the stored off-pivot rows.
type eta struct {
	r      int32
	alphaR float64
	rows   []int32
	vals   []float64
}

// ftran computes v <- B^{-1} v by applying the eta file in append order.
// Dense v; the v[e.r] == 0 skip makes sparse right-hand sides cheap.
func (s *simplex) ftran(v []float64) {
	for i := range s.etas {
		e := &s.etas[i]
		vr := v[e.r]
		if vr == 0 {
			continue
		}
		vr /= e.alphaR
		v[e.r] = vr
		for k, row := range e.rows {
			v[row] -= e.vals[k] * vr
		}
	}
}

// btran computes u <- (B^{-1})^T u by applying the transposed eta file in
// reverse append order: only u[e.r] changes per eta.
func (s *simplex) btran(u []float64) {
	for i := len(s.etas) - 1; i >= 0; i-- {
		e := &s.etas[i]
		acc := 0.0
		for k, row := range e.rows {
			acc += e.vals[k] * u[row]
		}
		u[e.r] = (u[e.r] - acc) / e.alphaR
	}
}

// appendEta records the pivot (alpha, leaveRow) as a new eta. alpha is the
// ftran'd entering column; tiny off-pivot entries are dropped to keep the
// file sparse (they are far below the solver's feasibility tolerance).
func (s *simplex) appendEta(alpha []float64, r int) {
	var rows []int32
	var vals []float64
	for i, a := range alpha {
		if i == r || a == 0 {
			continue
		}
		if math.Abs(a) < 1e-13 {
			continue
		}
		rows = append(rows, int32(i))
		vals = append(vals, a)
	}
	s.etas = append(s.etas, eta{r: int32(r), alphaR: alpha[r], rows: rows, vals: vals})
}

// factorize rebuilds the eta file from the current basis columns and
// recomputes the basic variable values, replacing the drifted product
// form. Columns are processed in nonzero-count order so slack columns
// (which yield identity etas that are skipped entirely) come first; the
// pivot row of each column is chosen by partial pivoting over the rows no
// earlier column claimed. Unlike the dense O(m^3) Gauss-Jordan it
// replaces, the cost is near-linear in basis nonzeros plus fill, and the
// deadline is polled throughout — refactorization was the un-deadlined
// stage behind the milp-ho 18x budget blowout on sdr2.
//
// Returns StatusOptimal on success, StatusIterationLimit on deadline, and
// StatusNumericalFailure if the basis matrix is singular.
func (s *simplex) factorize() Status {
	m := s.m
	s.etas = s.etas[:0]
	if s.forder == nil {
		s.forder = make([]int, m)
		s.fpivoted = make([]bool, m)
		s.fbasis = make([]int, m)
		s.fmark = make([]bool, m)
		s.find = make([]int32, 0, 64)
		s.fwork = make([]float64, m)
	}
	order := s.forder
	for r := 0; r < m; r++ {
		order[r] = r
		s.fpivoted[r] = false
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := len(s.cols[s.basis[order[a]]]), len(s.cols[s.basis[order[b]]])
		if la != lb {
			return la < lb
		}
		return order[a] < order[b]
	})

	v := s.fwork
	for t, r0 := range order {
		if t&63 == 0 && !s.deadline.IsZero() && time.Now().After(s.deadline) {
			return StatusIterationLimit
		}
		j := s.basis[r0]
		// Scatter column j and ftran it through the etas built so far,
		// tracking touched rows so pivot search and cleanup stay sparse.
		ind := s.find[:0]
		for _, e := range s.cols[j] {
			if e.coef == 0 {
				continue
			}
			if !s.fmark[e.row] {
				s.fmark[e.row] = true
				ind = append(ind, int32(e.row))
			}
			v[e.row] += e.coef
		}
		for ei := range s.etas {
			e := &s.etas[ei]
			vr := v[e.r]
			if vr == 0 {
				continue
			}
			vr /= e.alphaR
			v[e.r] = vr
			for k, row := range e.rows {
				if !s.fmark[row] {
					s.fmark[row] = true
					ind = append(ind, row)
				}
				v[row] -= e.vals[k] * vr
			}
		}
		// Partial pivot over the rows not yet claimed.
		best := int32(-1)
		bestAbs := 1e-11
		for _, r := range ind {
			if !s.fpivoted[r] {
				if a := math.Abs(v[r]); a > bestAbs {
					best, bestAbs = r, a
				}
			}
		}
		if best < 0 {
			for _, r := range ind {
				v[r] = 0
				s.fmark[r] = false
			}
			s.find = ind[:0]
			return StatusNumericalFailure
		}
		// Identity columns (a slack pivoting its own untouched row) need
		// no eta at all.
		if !(len(ind) == 1 && v[best] == 1) {
			var rows []int32
			var vals []float64
			for _, r := range ind {
				if r == best || v[r] == 0 || math.Abs(v[r]) < 1e-13 {
					continue
				}
				rows = append(rows, r)
				vals = append(vals, v[r])
			}
			s.etas = append(s.etas, eta{r: best, alphaR: v[best], rows: rows, vals: vals})
		}
		s.fpivoted[best] = true
		s.fbasis[best] = j
		for _, r := range ind {
			v[r] = 0
			s.fmark[r] = false
		}
		s.find = ind[:0]
	}
	copy(s.basis, s.fbasis)
	s.recomputeBasics()
	return StatusOptimal
}

// recomputeBasics refreshes the basic variable values from the nonbasic
// point: xB = B^{-1}(b - N xN).
func (s *simplex) recomputeBasics() {
	rhs := s.fwork
	copy(rhs, s.b)
	for j := 0; j < s.n; j++ {
		if s.stat[j] == basic {
			continue
		}
		if v := s.x[j]; v != 0 {
			for _, e := range s.cols[j] {
				rhs[e.row] -= e.coef * v
			}
		}
	}
	s.ftran(rhs)
	for r := 0; r < s.m; r++ {
		s.x[s.basis[r]] = rhs[r]
		rhs[r] = 0
	}
}

// snapshotBasis captures the final basis for reuse by warm starts, or nil
// when an artificial variable is still basic (such a basis cannot be
// replayed on a model built without artificials).
func (s *simplex) snapshotBasis() *Basis {
	nReal := s.nStruct + s.m
	for _, j := range s.basis {
		if j >= nReal {
			return nil
		}
	}
	b := &Basis{
		Basic: make([]int32, s.m),
		Stat:  make([]int8, nReal),
	}
	for r, j := range s.basis {
		b.Basic[r] = int32(j)
	}
	for j := 0; j < nReal; j++ {
		b.Stat[j] = int8(s.stat[j])
	}
	return b
}
