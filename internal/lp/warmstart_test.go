package lp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// randomBoundedLP generates a bounded random LP in the size class of a
// branch-and-bound node relaxation: finite boxes on every variable so the
// solve can never be unbounded, mixed-sense constraints so both slack
// directions and artificials appear.
func randomBoundedLP(rng *rand.Rand) *Model {
	m := NewModel()
	n := 3 + rng.Intn(8)
	for v := 0; v < n; v++ {
		lo := float64(rng.Intn(9) - 4)
		m.AddVariable("v", lo, lo+float64(1+rng.Intn(12)), float64(rng.Intn(15)-7))
	}
	for c := 0; c < 2+rng.Intn(8); c++ {
		var terms []Term
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				terms = append(terms, Term{VarID(v), float64(rng.Intn(9) - 4)})
			}
		}
		if len(terms) == 0 {
			continue
		}
		m.AddConstraint("c", terms, Sense(rng.Intn(3)), float64(rng.Intn(41)-10))
	}
	return m
}

// branchBounds mimics a branch-and-bound child: pick a variable and
// tighten one side of its box to an integer point inside it, as the MILP
// layer does via bound overrides.
func branchBounds(rng *rand.Rand, m *Model, lo, hi []float64) {
	for tries := 0; tries < 3; tries++ {
		v := rng.Intn(m.NumVariables())
		l, h := m.Bounds(VarID(v))
		if !math.IsNaN(lo[v]) {
			l = lo[v]
		}
		if !math.IsNaN(hi[v]) {
			h = hi[v]
		}
		if h-l < 1 {
			continue
		}
		cut := math.Floor(l + float64(rng.Intn(int(h-l))) + 0.5)
		if rng.Intn(2) == 0 {
			hi[v] = cut
		} else {
			lo[v] = cut
		}
	}
}

// TestWarmStartMatchesColdProperty is the warm-start soundness property:
// for random LPs and random branch-style bound tightenings, the
// dual-simplex warm start from the parent's optimal basis must agree with
// a cold solve of the child — same status, and on optimal children the
// same objective with a feasible point. This is the invariant the MILP
// layer relies on when it reuses bases across branch-and-bound nodes.
func TestWarmStartMatchesColdProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	warmStarted := 0
	for trial := 0; trial < 500; trial++ {
		m := randomBoundedLP(rng)
		parent := Solve(m, Options{ReturnBasis: true})
		if parent.Status != StatusOptimal || parent.Basis == nil {
			continue
		}
		n := m.NumVariables()
		lo, hi := make([]float64, n), make([]float64, n)
		for v := range lo {
			lo[v], hi[v] = math.NaN(), math.NaN()
		}
		branchBounds(rng, m, lo, hi)

		cold := SolveWithBounds(m, Options{}, lo, hi)
		warm := SolveWithBounds(m, Options{WarmBasis: parent.Basis}, lo, hi)
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: warm status %v, cold status %v", trial, warm.Status, cold.Status)
		}
		if cold.Status != StatusOptimal {
			continue
		}
		warmStarted++
		if math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
			t.Fatalf("trial %d: warm obj %g != cold obj %g", trial, warm.Objective, cold.Objective)
		}
		if err := m.CheckFeasible(warm.X, 1e-5); err != nil {
			t.Fatalf("trial %d: warm solution violates model: %v", trial, err)
		}
		for v := 0; v < n; v++ {
			l, h := effectiveBound(m, v, lo, hi)
			if warm.X[v] < l-1e-6 || warm.X[v] > h+1e-6 {
				t.Fatalf("trial %d: warm x[%d]=%g outside tightened [%g, %g]", trial, v, warm.X[v], l, h)
			}
		}
	}
	if warmStarted < 50 {
		t.Fatalf("only %d trials exercised the warm-start path; generator too restrictive", warmStarted)
	}
}

func effectiveBound(m *Model, v int, lo, hi []float64) (float64, float64) {
	l, h := m.Bounds(VarID(v))
	if !math.IsNaN(lo[v]) {
		l = lo[v]
	}
	if !math.IsNaN(hi[v]) {
		h = hi[v]
	}
	return l, h
}

// TestWarmStartFromStaleBasisFallsBack feeds a basis of the wrong shape;
// the solve must ignore it and still reach the optimum.
func TestWarmStartFromStaleBasisFallsBack(t *testing.T) {
	m := NewModel()
	x := m.AddVariable("x", 0, 4, -1)
	y := m.AddVariable("y", 0, 4, -2)
	m.AddConstraint("c", []Term{{x, 1}, {y, 1}}, LE, 5)
	bogus := &Basis{Basic: []int32{0, 1, 2}, Stat: []int8{0, 0, 0, 0, 0, 0, 0}}
	sol := Solve(m, Options{WarmBasis: bogus})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	approx(t, sol.Objective, -9, 1e-6, "obj") // y=4, x=1
}

// TestDeadlineExpiredReturnsImmediately pins the entry-point check: a
// deadline already in the past must short-circuit before any setup work.
func TestDeadlineExpiredReturnsImmediately(t *testing.T) {
	m := NewModel()
	for v := 0; v < 50; v++ {
		m.AddVariable("v", 0, 1, -1)
	}
	start := time.Now()
	sol := Solve(m, Options{Deadline: start.Add(-time.Second)})
	if sol.Status != StatusIterationLimit {
		t.Fatalf("status = %v, want iteration limit", sol.Status)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("expired-deadline solve took %s", elapsed)
	}
}

// TestDeadlinePolledInsideSolve is the regression test for the PR5
// benchmark's budget blowout: the un-deadlined dense refactorization let a
// single Solve call overshoot its deadline by tens of seconds. Every
// phase loop and the factorization itself now poll the deadline, so even
// a model large enough to need many pivots and several refactorizations
// must come back within a small multiple of the budget, never a large
// one. The allowance (150ms) is the cost of at most one pivot plus one
// sparse factorization on this size class — if a future change
// reintroduces an unpolled O(m^3) stage, this test fails by seconds, not
// milliseconds.
func TestDeadlinePolledInsideSolve(t *testing.T) {
	// Assignment-relaxation LP, large enough that a full solve needs
	// hundreds of pivots (and therefore crosses refactorEvery).
	const n = 40
	m := NewModel()
	rng := rand.New(rand.NewSource(99))
	vars := make([][]VarID, n)
	for i := range vars {
		vars[i] = make([]VarID, n)
		for j := range vars[i] {
			vars[i][j] = m.AddVariable("x", 0, 1, float64(rng.Intn(100)))
		}
	}
	for i := 0; i < n; i++ {
		var row, col []Term
		for j := 0; j < n; j++ {
			row = append(row, Term{vars[i][j], 1})
			col = append(col, Term{vars[j][i], 1})
		}
		m.AddConstraint("r", row, EQ, 1)
		m.AddConstraint("c", col, EQ, 1)
	}
	const budget = 20 * time.Millisecond
	start := time.Now()
	sol := Solve(m, Options{Deadline: start.Add(budget)})
	elapsed := time.Since(start)
	if elapsed > budget+150*time.Millisecond {
		t.Fatalf("solve with %s deadline returned after %s", budget, elapsed)
	}
	if sol.Status == StatusOptimal {
		// Fast machines may finish inside the budget; that satisfies the
		// contract trivially but still verifies the answer.
		if err := m.CheckFeasible(sol.X, 1e-5); err != nil {
			t.Fatal(err)
		}
	}
}
