package lp

import (
	"math"
	"time"
)

// warmSolve attempts to solve from a previously snapshotted basis using
// the dual simplex. It returns (solution, true) when the warm start
// reached a definitive answer — optimal, infeasible, or out of budget —
// and (zero, false) when the basis is unusable (stale shape, singular, or
// numerically stuck), in which case the caller re-solves cold. A false
// return therefore never changes the final answer, only its cost.
//
// The warm basis comes from an optimal solve of the same model under
// different bounds (the branch-and-bound parent). The old basis is still
// dual feasible — reduced costs depend on costs and the basis, not on
// bounds — so the dual simplex restores primal feasibility directly,
// typically in a few pivots per changed bound.
func (s *simplex) warmSolve(wb *Basis, returnBasis bool) (Solution, bool) {
	if len(wb.Basic) != s.m || len(wb.Stat) != s.n {
		return Solution{}, false
	}
	// Install the snapshot: copy, never mutate the shared *Basis.
	s.basis = make([]int, s.m)
	s.stat = make([]vstat, s.n)
	s.x = make([]float64, s.n)
	inBasis := make([]bool, s.n)
	for r, j := range wb.Basic {
		if j < 0 || int(j) >= s.n || inBasis[j] {
			return Solution{}, false
		}
		inBasis[j] = true
		s.basis[r] = int(j)
	}
	for j := 0; j < s.n; j++ {
		st := vstat(wb.Stat[j])
		if (st == basic) != inBasis[j] {
			return Solution{}, false
		}
		if st == basic {
			s.stat[j] = basic
			continue
		}
		s.stat[j], s.x[j] = s.nonbasicPoint(j, st)
	}

	if st := s.factorize(); st != StatusOptimal {
		if st == StatusIterationLimit {
			return Solution{Status: st, Iterations: s.iters}, true
		}
		return Solution{}, false
	}

	s.cost = make([]float64, s.n)
	copy(s.cost, s.cost2)
	switch st := s.dualRun(); st {
	case StatusOptimal:
		// Primal feasibility restored; let the primal polish any dual
		// infeasibility left by tolerance drift and confirm optimality.
		s.bland = false
		s.degenStreak = 0
		switch st2 := s.run(); st2 {
		case StatusOptimal:
			return s.solution(returnBasis), true
		case StatusUnbounded:
			return Solution{Status: StatusUnbounded, Iterations: s.iters}, true
		case StatusIterationLimit:
			if s.deadlineExceeded() {
				return Solution{Status: StatusIterationLimit, Iterations: s.iters}, true
			}
			return Solution{}, false
		default:
			return Solution{}, false
		}
	case StatusInfeasible:
		return Solution{Status: StatusInfeasible, Iterations: s.iters}, true
	case StatusIterationLimit:
		if s.deadlineExceeded() {
			return Solution{Status: StatusIterationLimit, Iterations: s.iters}, true
		}
		return Solution{}, false
	default:
		return Solution{}, false
	}
}

// nonbasicPoint places nonbasic column j at the point implied by its
// snapshotted status, re-deriving the status when the bounds changed
// shape underneath it (a branch may fix a variable whose snapshot said
// free, etc.).
func (s *simplex) nonbasicPoint(j int, st vstat) (vstat, float64) {
	loFin, hiFin := !math.IsInf(s.lo[j], -1), !math.IsInf(s.hi[j], 1)
	switch st {
	case nbLower:
		if loFin {
			return nbLower, s.lo[j]
		}
	case nbUpper:
		if hiFin {
			return nbUpper, s.hi[j]
		}
	}
	switch {
	case loFin:
		return nbLower, s.lo[j]
	case hiFin:
		return nbUpper, s.hi[j]
	default:
		return nbFree, 0
	}
}

func (s *simplex) deadlineExceeded() bool {
	return !s.deadline.IsZero() && time.Now().After(s.deadline)
}

// dualRun iterates the bounded-variable dual simplex: while some basic
// variable violates a bound, pivot it out against the entering column
// that keeps the reduced costs dual feasible. Terminates with
// StatusOptimal when primal feasibility is restored, StatusInfeasible
// when a violated row has no feasible entering direction (a Farkas
// certificate independent of the objective), or the usual budget/numeric
// statuses.
func (s *simplex) dualRun() Status {
	if s.rho == nil {
		s.rho = make([]float64, s.m)
	}
	feasTol := math.Max(s.tol, 1e-9)
	sinceRefactor := 0
	for {
		if s.iters >= s.maxIter {
			return StatusIterationLimit
		}
		if s.deadlineExceeded() {
			return StatusIterationLimit
		}

		// Leaving row: the basic variable with the largest bound
		// violation.
		leaveRow := -1
		viol := 0.0
		worst := feasTol
		for r := 0; r < s.m; r++ {
			bi := s.basis[r]
			if d := s.x[bi] - s.hi[bi]; d > worst {
				leaveRow, worst, viol = r, d, d
			} else if d := s.lo[bi] - s.x[bi]; d > worst {
				leaveRow, worst, viol = r, d, -d
			}
		}
		if leaveRow < 0 {
			return StatusOptimal // primal feasible
		}

		s.iters++
		sinceRefactor++
		if sinceRefactor >= refactorEvery {
			if st := s.factorize(); st != StatusOptimal {
				return st
			}
			sinceRefactor = 0
			continue // re-scan: refreshed values may shift the pick
		}

		// rho = row leaveRow of B^{-1}; alphaRow_j = rho . a_j.
		for r := 0; r < s.m; r++ {
			s.rho[r] = 0
		}
		s.rho[leaveRow] = 1
		s.btran(s.rho)
		s.computeDuals()

		// Dual ratio test: among columns that can absorb the violation,
		// pick the one whose reduced cost reaches zero first, keeping
		// the remaining columns dual feasible.
		enter := -1
		bestRatio := math.Inf(1)
		bestAbs := 0.0
		for j := 0; j < s.n; j++ {
			if s.stat[j] == basic || s.lo[j] == s.hi[j] {
				continue
			}
			arj := 0.0
			for _, e := range s.cols[j] {
				arj += s.rho[e.row] * e.coef
			}
			if math.Abs(arj) < 1e-9 {
				continue
			}
			// The entering step is viol/arj; it must move j into its
			// feasible direction.
			dq := viol / arj
			switch s.stat[j] {
			case nbLower:
				if dq < 0 {
					continue
				}
			case nbUpper:
				if dq > 0 {
					continue
				}
			}
			ratio := math.Abs(s.reducedCost(j)) / math.Abs(arj)
			if ratio < bestRatio-1e-12 ||
				(ratio <= bestRatio+1e-12 && math.Abs(arj) > bestAbs) {
				enter, bestRatio, bestAbs = j, ratio, math.Abs(arj)
			}
		}
		if enter < 0 {
			// No column can reduce the violation: every feasible point
			// puts this row's basic variable at least as far outside its
			// bound, so the problem is infeasible regardless of costs.
			return StatusInfeasible
		}

		// Full entering column for the primal update.
		for r := range s.alpha {
			s.alpha[r] = 0
		}
		for _, e := range s.cols[enter] {
			s.alpha[e.row] = e.coef
		}
		s.ftran(s.alpha)
		arj := s.alpha[leaveRow]
		if math.Abs(arj) < 1e-10 {
			// The ftran'd pivot disagrees with the btran'd row — drifted
			// factors. Rebuild and retry the iteration.
			if st := s.factorize(); st != StatusOptimal {
				return st
			}
			sinceRefactor = 0
			continue
		}

		dq := viol / arj
		leave := s.basis[leaveRow]
		s.x[enter] += dq
		for r := 0; r < s.m; r++ {
			if s.alpha[r] != 0 {
				s.x[s.basis[r]] -= s.alpha[r] * dq
			}
		}
		// The leaving variable settles exactly on the bound it violated.
		if viol > 0 {
			s.stat[leave] = nbUpper
			s.x[leave] = s.hi[leave]
		} else {
			s.stat[leave] = nbLower
			s.x[leave] = s.lo[leave]
		}
		s.appendEta(s.alpha, leaveRow)
		s.basis[leaveRow] = enter
		s.stat[enter] = basic
	}
}
