package lp

import (
	"math"
	"testing"
)

func TestIterationLimitStatus(t *testing.T) {
	// An LP that needs more than one iteration, capped at one.
	m := NewModel()
	x := m.AddVariable("x", 0, Inf, -1)
	y := m.AddVariable("y", 0, Inf, -1)
	m.AddConstraint("c1", []Term{{x, 1}, {y, 2}}, LE, 10)
	m.AddConstraint("c2", []Term{{x, 2}, {y, 1}}, LE, 10)
	sol := Solve(m, Options{MaxIterations: 1})
	if sol.Status != StatusIterationLimit {
		t.Fatalf("status = %v, want iteration-limit", sol.Status)
	}
}

func TestNaNOverridesFallBack(t *testing.T) {
	m := NewModel()
	x := m.AddVariable("x", 0, 5, -1)
	y := m.AddVariable("y", 0, 5, -1)
	// Override only y's upper bound; x keeps its model bound via NaN.
	lo := []float64{math.NaN(), math.NaN()}
	hi := []float64{math.NaN(), 2}
	sol := SolveWithBounds(m, Options{}, lo, hi)
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.X[x]-5) > 1e-6 || math.Abs(sol.X[y]-2) > 1e-6 {
		t.Fatalf("x=%g y=%g, want 5, 2", sol.X[x], sol.X[y])
	}
}

func TestShortOverrideSlices(t *testing.T) {
	m := NewModel()
	x := m.AddVariable("x", 0, 5, -1)
	m.AddVariable("y", 0, 5, -1)
	// Shorter-than-model override slices only affect their prefix.
	sol := SolveWithBounds(m, Options{}, nil, []float64{1})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.X[x]-1) > 1e-6 {
		t.Fatalf("x=%g, want 1", sol.X[x])
	}
}

func TestFixedVariables(t *testing.T) {
	// All variables fixed: the solver must just evaluate feasibility.
	m := NewModel()
	x := m.AddVariable("x", 3, 3, 1)
	y := m.AddVariable("y", 4, 4, 1)
	m.AddConstraint("c", []Term{{x, 1}, {y, 1}}, LE, 10)
	sol := Solve(m, Options{})
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-7) > 1e-6 {
		t.Fatalf("sol = %+v", sol)
	}
	// And detect infeasibility of fixed points.
	m2 := NewModel()
	a := m2.AddVariable("a", 3, 3, 0)
	m2.AddConstraint("c", []Term{{a, 1}}, GE, 4)
	if s := Solve(m2, Options{}); s.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestBealeCyclingExample(t *testing.T) {
	// Beale's classic cycling LP; Dantzig pricing with the Bland
	// fallback must terminate at the optimum -0.05.
	m := NewModel()
	x1 := m.AddVariable("x1", 0, Inf, -0.75)
	x2 := m.AddVariable("x2", 0, Inf, 150)
	x3 := m.AddVariable("x3", 0, Inf, -0.02)
	x4 := m.AddVariable("x4", 0, Inf, 6)
	m.AddConstraint("r1", []Term{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0)
	m.AddConstraint("r2", []Term{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0)
	m.AddConstraint("r3", []Term{{x3, 1}}, LE, 1)
	sol := Solve(m, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-(-0.05)) > 1e-6 {
		t.Fatalf("objective = %g, want -0.05", sol.Objective)
	}
}

func TestEmptyConstraintSet(t *testing.T) {
	m := NewModel()
	x := m.AddVariable("x", -2, 7, 1)
	sol := Solve(m, Options{})
	if sol.Status != StatusOptimal || math.Abs(sol.X[x]-(-2)) > 1e-9 {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestZeroCoefficientDropped(t *testing.T) {
	m := NewModel()
	x := m.AddVariable("x", 0, 1, 0)
	m.AddConstraint("c", []Term{{x, 0}}, LE, -1) // 0 <= -1: infeasible
	sol := Solve(m, Options{})
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible (empty row with negative rhs)", sol.Status)
	}
}

func TestObjectiveConstantFreeRows(t *testing.T) {
	// GE row satisfied at the initial point exercises the negative-slack
	// path without artificials.
	m := NewModel()
	x := m.AddVariable("x", 2, 10, 1)
	m.AddConstraint("c", []Term{{x, 1}}, GE, 1)
	sol := Solve(m, Options{})
	if sol.Status != StatusOptimal || math.Abs(sol.X[x]-2) > 1e-9 {
		t.Fatalf("sol = %+v", sol)
	}
}
