package milp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/lp"
)

func TestKnapsack(t *testing.T) {
	// max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary.
	// Candidates: a+c (val 17, w 5), b+c (20, 6) <- optimum, a+b (w 7 no).
	m := lp.NewModel()
	a := m.AddBinary("a", -10)
	b := m.AddBinary("b", -13)
	c := m.AddBinary("c", -7)
	m.AddConstraint("w", []lp.Term{{Var: a, Coef: 3}, {Var: b, Coef: 4}, {Var: c, Coef: 2}}, lp.LE, 6)
	res := Solve(context.Background(), m, Options{})
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-(-20)) > 1e-6 {
		t.Fatalf("objective = %g, want -20", res.Objective)
	}
	if math.Round(res.X[b]) != 1 || math.Round(res.X[c]) != 1 || math.Round(res.X[a]) != 0 {
		t.Fatalf("solution = %v", res.X)
	}
}

func TestIntegerInfeasible(t *testing.T) {
	// 2x = 1 with x integer: LP feasible (x=0.5) but no integer point.
	m := lp.NewModel()
	x := m.AddInteger("x", 0, 10, 1)
	m.AddConstraint("c", []lp.Term{{Var: x, Coef: 2}}, lp.EQ, 1)
	res := Solve(context.Background(), m, Options{})
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestLPInfeasibleRoot(t *testing.T) {
	m := lp.NewModel()
	x := m.AddInteger("x", 0, 10, 1)
	m.AddConstraint("lo", []lp.Term{{Var: x, Coef: 1}}, lp.GE, 7)
	m.AddConstraint("hi", []lp.Term{{Var: x, Coef: 1}}, lp.LE, 2)
	res := Solve(context.Background(), m, Options{})
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestUnbounded(t *testing.T) {
	m := lp.NewModel()
	m.AddInteger("x", 0, math.Inf(1), -1)
	res := Solve(context.Background(), m, Options{})
	if res.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min -y - 10x  s.t. y <= 2.5 + 0.5x, y <= 10 - x, x binary, y >= 0.
	// x=1: y <= 3 and y <= 9 -> y = 3, obj = -13.
	// x=0: y <= 2.5 -> obj = -2.5.
	m := lp.NewModel()
	x := m.AddBinary("x", -10)
	y := m.AddVariable("y", 0, lp.Inf, -1)
	m.AddConstraint("c1", []lp.Term{{Var: y, Coef: 1}, {Var: x, Coef: -0.5}}, lp.LE, 2.5)
	m.AddConstraint("c2", []lp.Term{{Var: y, Coef: 1}, {Var: x, Coef: 1}}, lp.LE, 10)
	res := Solve(context.Background(), m, Options{})
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-(-13)) > 1e-6 {
		t.Fatalf("objective = %g, want -13", res.Objective)
	}
}

func TestWarmStartAcceptedAndImproved(t *testing.T) {
	m := lp.NewModel()
	a := m.AddBinary("a", -3)
	b := m.AddBinary("b", -5)
	m.AddConstraint("w", []lp.Term{{Var: a, Coef: 1}, {Var: b, Coef: 1}}, lp.LE, 1)
	var incumbents []float64
	res := Solve(context.Background(), m, Options{
		WarmStart:   []float64{1, 0}, // obj -3, suboptimal
		OnIncumbent: func(obj float64, _ []float64) { incumbents = append(incumbents, obj) },
	})
	if res.Status != StatusOptimal || math.Abs(res.Objective-(-5)) > 1e-6 {
		t.Fatalf("res = %+v", res)
	}
	if len(incumbents) < 2 || incumbents[0] != -3 {
		t.Fatalf("incumbent trail = %v, want warm start then improvement", incumbents)
	}
}

func TestInvalidWarmStartIgnored(t *testing.T) {
	m := lp.NewModel()
	a := m.AddBinary("a", -1)
	m.AddConstraint("w", []lp.Term{{Var: a, Coef: 1}}, lp.LE, 0)
	res := Solve(context.Background(), m, Options{WarmStart: []float64{1}})
	if res.Status != StatusOptimal || math.Abs(res.Objective) > 1e-9 {
		t.Fatalf("res = %+v", res)
	}
}

func TestTimeLimitReturnsIncumbent(t *testing.T) {
	m := hardKnapsack(30, 99)
	res := Solve(context.Background(), m, Options{TimeLimit: 30 * time.Millisecond})
	if res.Status == StatusOptimal {
		return // machine fast enough; fine
	}
	if res.Status != StatusFeasible && res.Status != StatusNoSolution {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Status == StatusFeasible && res.Gap() < 0 {
		t.Fatalf("negative gap %g", res.Gap())
	}
}

func TestContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := hardKnapsack(25, 3)
	res := Solve(ctx, m, Options{})
	if res.Nodes > 2 {
		t.Fatalf("processed %d nodes after cancellation", res.Nodes)
	}
}

func hardKnapsack(n int, seed int64) *lp.Model {
	rng := rand.New(rand.NewSource(seed))
	m := lp.NewModel()
	var terms []lp.Term
	total := 0.0
	for i := 0; i < n; i++ {
		w := float64(20 + rng.Intn(30))
		v := w + float64(rng.Intn(10))
		x := m.AddBinary("x", -v)
		terms = append(terms, lp.Term{Var: x, Coef: w})
		total += w
	}
	m.AddConstraint("cap", terms, lp.LE, total/2)
	return m
}

// enumerate solves a pure small integer program by brute force.
func enumerate(m *lp.Model, lo, hi []int) (float64, []float64, bool) {
	n := m.NumVariables()
	x := make([]float64, n)
	best := math.Inf(1)
	var bestX []float64
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if m.CheckFeasible(x, 1e-9) == nil {
				obj := m.Objective(x)
				if obj < best {
					best = obj
					bestX = append([]float64(nil), x...)
				}
			}
			return
		}
		for v := lo[i]; v <= hi[i]; v++ {
			x[i] = float64(v)
			rec(i + 1)
		}
	}
	rec(0)
	return best, bestX, bestX != nil
}

// TestRandomIPAgainstEnumeration cross-checks branch-and-bound against
// exhaustive enumeration on random small pure-integer programs.
func TestRandomIPAgainstEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := lp.NewModel()
		n := 2 + rng.Intn(4)
		lo := make([]int, n)
		hi := make([]int, n)
		for v := 0; v < n; v++ {
			lo[v] = rng.Intn(3) - 1
			hi[v] = lo[v] + rng.Intn(4)
			m.AddInteger("x", float64(lo[v]), float64(hi[v]), float64(rng.Intn(15)-7))
		}
		for c := 0; c < 1+rng.Intn(4); c++ {
			var terms []lp.Term
			for v := 0; v < n; v++ {
				if rng.Intn(3) > 0 {
					terms = append(terms, lp.Term{Var: lp.VarID(v), Coef: float64(rng.Intn(9) - 4)})
				}
			}
			if len(terms) == 0 {
				continue
			}
			m.AddConstraint("c", terms, lp.Sense(rng.Intn(3)), float64(rng.Intn(15)-7))
		}
		want, _, feasible := enumerate(m, lo, hi)
		res := Solve(context.Background(), m, Options{})
		if !feasible {
			if res.Status != StatusInfeasible {
				t.Logf("seed %d: oracle infeasible, solver %v obj %g", seed, res.Status, res.Objective)
				return false
			}
			return true
		}
		if res.Status != StatusOptimal {
			t.Logf("seed %d: status %v, want optimal (oracle %g)", seed, res.Status, want)
			return false
		}
		if math.Abs(res.Objective-want) > 1e-5 {
			t.Logf("seed %d: solver %g vs oracle %g", seed, res.Objective, want)
			return false
		}
		if err := m.CheckFeasible(res.X, 1e-5); err != nil {
			t.Logf("seed %d: incumbent infeasible: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelMatchesSequential verifies that the parallel search reaches
// the same optimum as the sequential one.
func TestParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		m := hardKnapsack(16, seed)
		seq := Solve(context.Background(), m, Options{Workers: 1})
		par := Solve(context.Background(), m, Options{Workers: 4})
		if seq.Status != StatusOptimal || par.Status != StatusOptimal {
			t.Fatalf("seed %d: statuses %v / %v", seed, seq.Status, par.Status)
		}
		if math.Abs(seq.Objective-par.Objective) > 1e-6 {
			t.Fatalf("seed %d: sequential %g != parallel %g", seed, seq.Objective, par.Objective)
		}
	}
}

func TestGapReporting(t *testing.T) {
	m := hardKnapsack(10, 5)
	res := Solve(context.Background(), m, Options{})
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Gap() != 0 {
		t.Fatalf("optimal gap = %g, want 0", res.Gap())
	}
	if res.Bound > res.Objective+1e-9 {
		t.Fatalf("bound %g above objective %g", res.Bound, res.Objective)
	}
}

func TestMaxNodesBudget(t *testing.T) {
	m := hardKnapsack(40, 11)
	res := Solve(context.Background(), m, Options{MaxNodes: 5})
	if res.Nodes > 6 {
		t.Fatalf("processed %d nodes with MaxNodes=5", res.Nodes)
	}
}
