// Package milp implements a branch-and-bound mixed-integer linear
// programming solver over the LP relaxation engine of internal/lp.
//
// It plays the role of the commercial MILP solver used by the paper: the
// floorplanning formulations of internal/model are handed to Solve, which
// explores a best-bound branch-and-bound tree (optionally with several
// parallel workers), accepts warm-start incumbents, and honors time limits
// — reporting the incumbent, the best bound, and the MIP gap exactly as
// the paper does for runs that hit their budget (e.g. SDR3, Section VI).
package milp

import (
	"container/heap"
	"context"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/lp"
	"repro/internal/obs"
)

// Status reports the outcome of a MILP solve.
type Status int

// Solve outcomes.
const (
	// StatusOptimal means the incumbent was proven optimal.
	StatusOptimal Status = iota
	// StatusFeasible means a feasible incumbent exists but optimality
	// was not proven within the budget.
	StatusFeasible
	// StatusInfeasible means the problem has no integer-feasible point.
	StatusInfeasible
	// StatusUnbounded means the relaxation is unbounded below.
	StatusUnbounded
	// StatusNoSolution means the budget expired before any feasible
	// point was found (the problem may still be feasible).
	StatusNoSolution
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusNoSolution:
		return "no-solution"
	}
	return "unknown"
}

// Result is the outcome of a MILP solve.
type Result struct {
	Status    Status
	Objective float64   // incumbent objective (minimization)
	X         []float64 // incumbent values, integral within tolerance
	Bound     float64   // best proven lower bound
	Nodes     int       // branch-and-bound nodes processed
	Elapsed   time.Duration
}

// Gap returns the relative MIP gap of the result, zero when optimal and
// +Inf when no incumbent exists.
func (r Result) Gap() float64 {
	if r.Status == StatusOptimal {
		return 0
	}
	if r.X == nil {
		return math.Inf(1)
	}
	denom := math.Max(1, math.Abs(r.Objective))
	return (r.Objective - r.Bound) / denom
}

// Options tunes the branch-and-bound search. The zero value gives a
// single-threaded exact solve with a generous node budget.
type Options struct {
	// TimeLimit bounds the wall-clock solve time (0 = none).
	TimeLimit time.Duration
	// MaxNodes bounds the number of processed nodes (0 = 1<<20).
	MaxNodes int
	// Workers is the number of parallel node processors (0 or 1 =
	// sequential).
	Workers int
	// IntTol is the integrality tolerance (0 = 1e-6).
	IntTol float64
	// WarmStart, when non-nil, is checked for feasibility and installed
	// as the initial incumbent (values are rounded to integrality
	// first).
	WarmStart []float64
	// LP tunes the relaxation solves.
	LP lp.Options
	// OnIncumbent, when non-nil, is invoked (serialized) whenever a new
	// best solution is accepted.
	OnIncumbent func(obj float64, x []float64)
	// Obs, when non-nil, receives the solve's telemetry: node and prune
	// counts plus the incumbent trajectory on the MILP objective scale.
	// It is also handed to the LP relaxation solves (unless LP.Obs is
	// already set), which report pivots on it.
	Obs obs.Span
}

type node struct {
	lo, hi []float64 // bound overrides (NaN = model bound)
	bound  float64   // parent relaxation objective (lower bound)
	depth  int
	// basis is the parent relaxation's optimal basis; the node's LP is
	// warm started from it with the dual simplex. Nil (cold solve) at the
	// root and when the open-node queue grew past warmBasisQueueCap.
	basis *lp.Basis
}

// warmBasisQueueCap bounds how many queued nodes may hold a basis
// snapshot: beyond this the snapshots are dropped (nodes re-solve cold)
// so a wide search cannot hold O(queue * m) floats alive.
const warmBasisQueueCap = 1024

// nodeQueue is a best-bound min-heap with depth as tie-break (deeper first,
// which gives the search a diving flavor among equal bounds).
type nodeQueue []*node

func (q nodeQueue) Len() int { return len(q) }
func (q nodeQueue) Less(i, j int) bool {
	if q[i].bound != q[j].bound {
		return q[i].bound < q[j].bound
	}
	return q[i].depth > q[j].depth
}
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(*node)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Solve minimizes the model subject to the integrality of its integer
// variables. The context cancels the search early (the best incumbent so
// far is returned with StatusFeasible/StatusNoSolution).
func Solve(ctx context.Context, m *lp.Model, opts Options) Result {
	start := time.Now()
	intTol := opts.IntTol
	if intTol <= 0 {
		intTol = 1e-6
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 1 << 20
	}
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit)
	}
	intVars := m.IntegerVariables()

	sp := obs.OrNop(opts.Obs)

	// Root presolve: tighten bounds (integer-aware) and drop redundant
	// rows once, so every node's relaxation solves the reduced model.
	// The variable set is unchanged, so branch bound overrides and the
	// returned X keep their indices, and every integer-feasible point of
	// the original model stays feasible in the presolved one.
	pm, infeasible := lp.Presolve(m, true)
	if infeasible {
		return Result{
			Status:    StatusInfeasible,
			Objective: math.Inf(1),
			Bound:     math.Inf(-1),
			Elapsed:   time.Since(start),
		}
	}
	m = pm
	lpOpts := opts.LP
	// Bound each node's relaxation solve by the overall deadline: the
	// search checks its budget between nodes, so a single runaway
	// simplex must not be able to blow past it.
	if lpOpts.Deadline.IsZero() || (!deadline.IsZero() && deadline.Before(lpOpts.Deadline)) {
		lpOpts.Deadline = deadline
	}
	if lpOpts.Obs == nil {
		lpOpts.Obs = opts.Obs
	}

	st := &search{
		model:     m,
		intVars:   intVars,
		intTol:    intTol,
		lpOpts:    lpOpts,
		incumbent: math.Inf(1),
		deadline:  deadline,
		ctx:       ctx,
		maxNodes:  maxNodes,
		onIncumb:  opts.OnIncumbent,
		sp:        sp,
	}

	if opts.WarmStart != nil {
		st.tryWarmStart(opts.WarmStart)
	}

	root := &node{
		lo:    nanSlice(m.NumVariables()),
		hi:    nanSlice(m.NumVariables()),
		bound: math.Inf(-1),
	}
	heap.Push(&st.queue, root)

	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers == 1 {
		st.runSequential()
	} else {
		st.runParallel(workers)
	}

	res := Result{
		Nodes:   st.nodes,
		Elapsed: time.Since(start),
	}
	res.Bound = st.finalBound()
	switch {
	case st.rootInfeasible && st.best == nil:
		res.Status = StatusInfeasible
	case st.rootUnbounded:
		res.Status = StatusUnbounded
	case st.best == nil && st.exhausted && !st.lpCut:
		res.Status = StatusInfeasible
	case st.best == nil:
		res.Status = StatusNoSolution
		res.Objective = math.Inf(1)
	case !st.lpCut && (st.exhausted || res.Bound >= st.incumbent-1e-9):
		res.Status = StatusOptimal
		res.Objective = st.incumbent
		res.X = st.best
		res.Bound = st.incumbent
	default:
		res.Status = StatusFeasible
		res.Objective = st.incumbent
		res.X = st.best
	}
	return res
}

// search is the shared state of one branch-and-bound run.
type search struct {
	model   *lp.Model
	intVars []lp.VarID
	intTol  float64
	lpOpts  lp.Options

	mu        sync.Mutex
	queue     nodeQueue
	incumbent float64
	best      []float64
	nodes     int
	active    int // nodes being processed by workers

	deadline time.Time
	ctx      context.Context
	maxNodes int
	onIncumb func(float64, []float64)
	// sp receives nodes/pruned counts and the incumbent trajectory on
	// the MILP objective scale (pivots come from the LP layer directly).
	sp obs.Span

	exhausted      bool
	rootInfeasible bool
	rootUnbounded  bool
	stopped        bool
	// lpCut records that at least one node was dropped because its LP
	// relaxation hit the iteration/deadline budget rather than being
	// solved. An "exhausted" queue then proves nothing: neither
	// optimality nor infeasibility may be claimed.
	lpCut bool
}

func nanSlice(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = math.NaN()
	}
	return s
}

func (st *search) tryWarmStart(x []float64) {
	rounded := append([]float64(nil), x...)
	for _, v := range st.intVars {
		rounded[v] = math.Round(rounded[v])
	}
	if st.model.CheckFeasible(rounded, 1e-6) != nil {
		return
	}
	obj := st.model.Objective(rounded)
	st.accept(obj, rounded)
}

// accept installs a new incumbent if it improves the current one.
func (st *search) accept(obj float64, x []float64) {
	st.mu.Lock()
	improved := obj < st.incumbent-1e-9
	if improved {
		st.incumbent = obj
		st.best = append([]float64(nil), x...)
		// Emitted under st.mu so the trajectory stays monotone even with
		// racing workers.
		st.sp.Incumbent(obj)
	}
	cb := st.onIncumb
	st.mu.Unlock()
	if improved && cb != nil {
		cb(obj, x)
	}
}

func (st *search) outOfBudget() bool {
	if st.ctx != nil {
		select {
		case <-st.ctx.Done():
			return true
		default:
		}
	}
	if !st.deadline.IsZero() && time.Now().After(st.deadline) {
		return true
	}
	return false
}

func (st *search) runSequential() {
	for {
		st.mu.Lock()
		if len(st.queue) == 0 {
			st.exhausted = true
			st.mu.Unlock()
			return
		}
		if st.nodes >= st.maxNodes || st.stopped {
			st.mu.Unlock()
			return
		}
		nd := heap.Pop(&st.queue).(*node)
		// Bound-based prune before paying for the LP.
		if nd.bound >= st.incumbent-1e-9 {
			st.mu.Unlock()
			st.sp.Add(obs.Pruned, 1)
			continue
		}
		st.nodes++
		st.mu.Unlock()
		st.sp.Add(obs.Nodes, 1)
		if st.outOfBudget() {
			st.mu.Lock()
			st.stopped = true
			heap.Push(&st.queue, nd) // keep for bound accounting
			st.mu.Unlock()
			return
		}
		st.processNode(nd)
	}
}

func (st *search) runParallel(workers int) {
	var wg sync.WaitGroup
	cond := sync.NewCond(&st.mu)
	done := false

	worker := func() {
		defer wg.Done()
		for {
			st.mu.Lock()
			for len(st.queue) == 0 && st.active > 0 && !done {
				cond.Wait()
			}
			if done || (len(st.queue) == 0 && st.active == 0) {
				if len(st.queue) == 0 && st.active == 0 && !done && !st.stopped {
					st.exhausted = true
				}
				done = true
				cond.Broadcast()
				st.mu.Unlock()
				return
			}
			if st.nodes >= st.maxNodes || st.stopped {
				done = true
				cond.Broadcast()
				st.mu.Unlock()
				return
			}
			nd := heap.Pop(&st.queue).(*node)
			if nd.bound >= st.incumbent-1e-9 {
				st.mu.Unlock()
				st.sp.Add(obs.Pruned, 1)
				continue
			}
			st.nodes++
			st.active++
			st.mu.Unlock()
			st.sp.Add(obs.Nodes, 1)

			if st.outOfBudget() {
				st.mu.Lock()
				st.stopped = true
				heap.Push(&st.queue, nd)
				st.active--
				done = true
				cond.Broadcast()
				st.mu.Unlock()
				return
			}
			st.processNode(nd)

			st.mu.Lock()
			st.active--
			cond.Broadcast()
			st.mu.Unlock()
		}
	}

	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go worker()
	}
	wg.Wait()
	st.mu.Lock()
	if len(st.queue) == 0 && st.active == 0 && !st.stopped && st.nodes < st.maxNodes {
		st.exhausted = true
	}
	st.mu.Unlock()
}

// processNode solves the node relaxation, prunes or branches.
func (st *search) processNode(nd *node) {
	lpOpts := st.lpOpts
	lpOpts.ReturnBasis = true
	lpOpts.WarmBasis = nd.basis
	sol := lp.SolveWithBounds(st.model, lpOpts, nd.lo, nd.hi)
	switch sol.Status {
	case lp.StatusInfeasible:
		if nd.depth == 0 {
			st.mu.Lock()
			st.rootInfeasible = true
			st.mu.Unlock()
		}
		return
	case lp.StatusUnbounded:
		if nd.depth == 0 {
			st.mu.Lock()
			st.rootUnbounded = true
			st.stopped = true
			st.mu.Unlock()
		}
		return
	case lp.StatusOptimal:
	default:
		// Iteration limit / numerical trouble: treat the node bound as
		// the parent's and keep going by branching on the most
		// fractional variable of the incumbent-less relaxation is not
		// possible without a solution, so drop the node conservatively
		// only when it carried no solution.
		if sol.X == nil {
			st.mu.Lock()
			st.lpCut = true
			st.mu.Unlock()
			return
		}
	}

	st.mu.Lock()
	cutoff := st.incumbent
	st.mu.Unlock()
	if sol.Objective >= cutoff-1e-9 {
		st.sp.Add(obs.Pruned, 1)
		return // bound prune
	}

	branchVar, frac := st.mostFractional(sol.X)
	if branchVar < 0 {
		// Integral: new incumbent.
		x := append([]float64(nil), sol.X...)
		for _, v := range st.intVars {
			x[v] = math.Round(x[v])
		}
		st.accept(st.model.Objective(x), x)
		return
	}
	_ = frac

	// Rounding heuristic: nearest-integer (then floor) rounding of the
	// relaxation occasionally lands on a feasible point, giving an early
	// incumbent that sharpens pruning for free.
	if nd.depth <= 8 {
		for _, round := range []func(float64) float64{math.Round, math.Floor} {
			rounded := append([]float64(nil), sol.X...)
			for _, v := range st.intVars {
				lo, hi := st.model.Bounds(v)
				r := round(rounded[v])
				if r < lo {
					r = lo
				}
				if r > hi {
					r = hi
				}
				rounded[v] = r
			}
			if st.model.CheckFeasible(rounded, 1e-6) == nil {
				st.accept(st.model.Objective(rounded), rounded)
				break
			}
		}
	}

	v := sol.X[branchVar]
	floor := math.Floor(v + st.intTol)
	// Down child: x <= floor.
	down := &node{
		lo:    append([]float64(nil), nd.lo...),
		hi:    append([]float64(nil), nd.hi...),
		bound: sol.Objective,
		depth: nd.depth + 1,
		basis: sol.Basis,
	}
	down.hi[branchVar] = floor
	// Up child: x >= floor+1.
	up := &node{
		lo:    append([]float64(nil), nd.lo...),
		hi:    append([]float64(nil), nd.hi...),
		bound: sol.Objective,
		depth: nd.depth + 1,
		basis: sol.Basis,
	}
	up.lo[branchVar] = floor + 1

	st.mu.Lock()
	if len(st.queue) > warmBasisQueueCap {
		down.basis, up.basis = nil, nil
	}
	heap.Push(&st.queue, down)
	heap.Push(&st.queue, up)
	st.mu.Unlock()
}

// mostFractional returns the integer variable whose relaxation value is
// farthest from integrality, or (-1, 0) when all are integral.
func (st *search) mostFractional(x []float64) (lp.VarID, float64) {
	best := lp.VarID(-1)
	bestFrac := st.intTol
	for _, v := range st.intVars {
		f := math.Abs(x[v] - math.Round(x[v]))
		if f > bestFrac {
			best, bestFrac = v, f
		}
	}
	if best < 0 {
		return -1, 0
	}
	return best, bestFrac
}

// finalBound computes the best proven lower bound: the minimum over the
// remaining open nodes and the incumbent.
func (st *search) finalBound() float64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	bounds := make([]float64, 0, len(st.queue)+1)
	for _, nd := range st.queue {
		bounds = append(bounds, nd.bound)
	}
	if st.best != nil {
		bounds = append(bounds, st.incumbent)
	}
	if len(bounds) == 0 {
		if st.best != nil {
			return st.incumbent
		}
		return math.Inf(-1)
	}
	sort.Float64s(bounds)
	return bounds[0]
}
