package milp

import (
	"context"
	"math"
	"testing"

	"repro/internal/lp"
)

func TestOnIncumbentMonotonic(t *testing.T) {
	m := hardKnapsack(18, 2)
	var objs []float64
	res := Solve(context.Background(), m, Options{
		OnIncumbent: func(obj float64, x []float64) {
			objs = append(objs, obj)
			if len(x) != m.NumVariables() {
				t.Errorf("incumbent has %d entries", len(x))
			}
		},
	})
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if len(objs) == 0 {
		t.Fatal("no incumbent callbacks")
	}
	for i := 1; i < len(objs); i++ {
		if objs[i] >= objs[i-1] {
			t.Fatalf("incumbents not strictly improving: %v", objs)
		}
	}
	if math.Abs(objs[len(objs)-1]-res.Objective) > 1e-9 {
		t.Fatalf("final incumbent %g != result %g", objs[len(objs)-1], res.Objective)
	}
}

func TestWarmStartWrongLengthIgnored(t *testing.T) {
	m := lp.NewModel()
	a := m.AddBinary("a", -1)
	m.AddConstraint("c", []lp.Term{{Var: a, Coef: 1}}, lp.LE, 1)
	res := Solve(context.Background(), m, Options{WarmStart: []float64{1, 2, 3}})
	if res.Status != StatusOptimal || math.Abs(res.Objective-(-1)) > 1e-9 {
		t.Fatalf("res = %+v", res)
	}
}

func TestRoundingHeuristicFindsIncumbentEarly(t *testing.T) {
	// A model whose relaxation rounds to a feasible point: loose
	// knapsack where rounding the fractional item down stays feasible.
	m := hardKnapsack(24, 9)
	got := false
	Solve(context.Background(), m, Options{
		MaxNodes: 3,
		OnIncumbent: func(obj float64, _ []float64) {
			got = true
		},
	})
	if !got {
		t.Fatal("no incumbent within 3 nodes (rounding heuristic inactive?)")
	}
}

func TestAllVariablesContinuous(t *testing.T) {
	// With no integer variables, MILP solve = LP solve at the root.
	m := lp.NewModel()
	x := m.AddVariable("x", 0, 4, -1)
	m.AddConstraint("c", []lp.Term{{Var: x, Coef: 2}}, lp.LE, 5)
	res := Solve(context.Background(), m, Options{})
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-(-2.5)) > 1e-6 {
		t.Fatalf("objective = %g, want -2.5", res.Objective)
	}
	if res.Nodes != 1 {
		t.Fatalf("nodes = %d, want 1", res.Nodes)
	}
}

func TestNegativeIntegerBounds(t *testing.T) {
	// Integer variables with negative ranges.
	m := lp.NewModel()
	x := m.AddInteger("x", -7, -2, 1)
	y := m.AddInteger("y", -3, 3, 1)
	m.AddConstraint("c", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 2}}, lp.GE, -8.5)
	res := Solve(context.Background(), m, Options{})
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	// min x+y with x+2y >= -8.5: try x=-7 -> 2y >= -1.5 -> y >= -0.75 -> y=0
	// giving -7; x=-6,y=-1: sum -7, constraint -8 >= -8.5 ok -> -7;
	// x=-4,y=-2: -8.5 >= -8.5? -4-4=-8 >= -8.5 ok sum -6... best is
	// x=-6,y=-1 or x=-7,y=0 at -7; check x=-5,y=-1: -7 ok sum -6. So -7?
	// x=-7,y=-0.75 not integer; x=-6,y=-1: -6-2=-8>=-8.5 ok, sum -7.
	// x=-7,y=-0: sum -7. x=-5,y=-1.75 no. Optimal -7.
	if math.Abs(res.Objective-(-7)) > 1e-6 {
		t.Fatalf("objective = %g, want -7", res.Objective)
	}
}

func TestResultGapNoIncumbent(t *testing.T) {
	r := Result{Status: StatusNoSolution}
	if !math.IsInf(r.Gap(), 1) {
		t.Fatalf("gap = %g, want +Inf", r.Gap())
	}
}
