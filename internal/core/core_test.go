package core

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/grid"
)

func testProblem() *Problem {
	return &Problem{
		Device: device.VirtexFX70T(),
		Regions: []Region{
			{Name: "A", Req: device.Requirements{device.ClassCLB: 25, device.ClassDSP: 5}},
			{Name: "B", Req: device.Requirements{device.ClassCLB: 5, device.ClassBRAM: 2}},
		},
		Nets:      []Net{{A: 0, B: 1, Weight: 64}},
		Objective: DefaultObjective(),
	}
}

func TestProblemValidate(t *testing.T) {
	p := testProblem()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *p
	bad.Regions = nil
	if bad.Validate() == nil {
		t.Fatal("empty region list accepted")
	}
	bad = *p
	bad.Regions = []Region{{Name: "", Req: device.Requirements{device.ClassCLB: 1}}}
	if bad.Validate() == nil {
		t.Fatal("unnamed region accepted")
	}
	bad = *p
	bad.Regions = []Region{
		{Name: "X", Req: device.Requirements{device.ClassCLB: 1}},
		{Name: "X", Req: device.Requirements{device.ClassCLB: 1}},
	}
	if bad.Validate() == nil {
		t.Fatal("duplicate names accepted")
	}
	bad = *p
	bad.Nets = []Net{{A: 0, B: 5, Weight: 1}}
	if bad.Validate() == nil {
		t.Fatal("net to unknown region accepted")
	}
	bad = *p
	bad.Nets = []Net{{A: 0, B: 0, Weight: 1}}
	if bad.Validate() == nil {
		t.Fatal("self-net accepted")
	}
	bad = *p
	bad.FCAreas = []FCRequest{{Region: 9}}
	if bad.Validate() == nil {
		t.Fatal("FC request for unknown region accepted")
	}
}

func TestRequiredFrames(t *testing.T) {
	p := testProblem()
	got, err := p.RequiredFrames()
	if err != nil {
		t.Fatal(err)
	}
	want := 25*36 + 5*28 + 5*36 + 2*30
	if got != want {
		t.Fatalf("required frames = %d, want %d", got, want)
	}
}

func TestWithFCConstraints(t *testing.T) {
	p := testProblem()
	p2 := p.WithFCConstraints([]int{0, 1}, 2)
	if len(p2.FCAreas) != 4 {
		t.Fatalf("FC areas = %d, want 4", len(p2.FCAreas))
	}
	if len(p.FCAreas) != 0 {
		t.Fatal("WithFCConstraints mutated the original")
	}
	counts := p2.FCCountByRegion()
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("per-region counts = %v", counts)
	}
}

func validSolution(p *Problem) *Solution {
	return &Solution{
		Regions: []grid.Rect{
			{X: 4, Y: 0, W: 6, H: 5},  // A: 25 CLB + 5 DSP exactly
			{X: 10, Y: 0, W: 4, H: 2}, // B: 6 CLB + 2 BRAM
		},
		FC: []FCPlacement{},
	}
}

func TestSolutionValidateAccepts(t *testing.T) {
	p := testProblem()
	sol := validSolution(p)
	if err := sol.Validate(p); err != nil {
		t.Fatal(err)
	}
}

func TestSolutionValidateRejects(t *testing.T) {
	p := testProblem()

	sol := validSolution(p)
	sol.Regions[1] = grid.Rect{X: 5, Y: 0, W: 4, H: 2} // overlaps region A
	if sol.Validate(p) == nil {
		t.Fatal("overlapping regions accepted")
	}

	sol = validSolution(p)
	sol.Regions[1] = grid.Rect{X: 0, Y: 0, W: 2, H: 2} // no BRAM coverage
	if sol.Validate(p) == nil {
		t.Fatal("under-resourced region accepted")
	}

	sol = validSolution(p)
	sol.Regions[1] = grid.Rect{X: 13, Y: 2, W: 4, H: 2} // crosses the PPC
	if sol.Validate(p) == nil {
		t.Fatal("forbidden-crossing region accepted")
	}

	sol = validSolution(p)
	sol.Regions[1] = grid.Rect{X: 39, Y: 6, W: 4, H: 4} // out of bounds
	if sol.Validate(p) == nil {
		t.Fatal("out-of-bounds region accepted")
	}

	sol = validSolution(p)
	sol.Regions = sol.Regions[:1]
	if sol.Validate(p) == nil {
		t.Fatal("missing region accepted")
	}
}

func TestSolutionValidateFC(t *testing.T) {
	p := testProblem()
	p.FCAreas = []FCRequest{{Region: 0, Mode: RelocConstraint}}
	sol := validSolution(p)

	// Missing FC entry.
	if sol.Validate(p) == nil {
		t.Fatal("missing FC entry accepted")
	}

	// Unplaced constraint-mode FC.
	sol.FC = []FCPlacement{{Request: 0, Placed: false}}
	if sol.Validate(p) == nil {
		t.Fatal("unplaced constraint FC accepted")
	}

	// Placed but incompatible (different column signature: BRAM column
	// where the region has its DSP column).
	sol.FC = []FCPlacement{{Request: 0, Placed: true, Rect: grid.Rect{X: 29, Y: 3, W: 6, H: 5}}}
	if err := sol.Validate(p); err == nil {
		t.Fatal("incompatible FC area accepted")
	} else if !strings.Contains(err.Error(), "not compatible") {
		t.Fatalf("unexpected error: %v", err)
	}

	// Correct: the only other compatible x-offset is 24.
	sol.FC = []FCPlacement{{Request: 0, Placed: true, Rect: grid.Rect{X: 24, Y: 0, W: 6, H: 5}}}
	if err := sol.Validate(p); err != nil {
		t.Fatal(err)
	}

	// Metric mode: unplaced is fine.
	p.FCAreas[0].Mode = RelocMetric
	sol.FC = []FCPlacement{{Request: 0, Placed: false}}
	if err := sol.Validate(p); err != nil {
		t.Fatal(err)
	}
}

func TestMetrics(t *testing.T) {
	p := testProblem()
	p.FCAreas = []FCRequest{
		{Region: 0, Mode: RelocMetric, Weight: 2.5},
		{Region: 0, Mode: RelocMetric},
	}
	sol := validSolution(p)
	sol.FC = []FCPlacement{
		{Request: 0, Placed: true, Rect: grid.Rect{X: 24, Y: 0, W: 6, H: 5}},
		{Request: 1, Placed: false},
	}
	m := sol.Metrics(p)
	if m.WastedFrames != 36 { // B covers 6 CLB for a 5-CLB need
		t.Fatalf("waste = %d, want 36", m.WastedFrames)
	}
	if m.PlacedFC != 1 {
		t.Fatalf("placedFC = %d", m.PlacedFC)
	}
	if m.RelocationMiss != 1 { // default weight of the missed request
		t.Fatalf("miss = %g", m.RelocationMiss)
	}
	// Wire length: centers (7, 2.5) and (12, 1) -> |dx|+|dy| = 5+1.5 = 6.5.
	if m.WireLength != 64*6.5 {
		t.Fatalf("wire length = %g, want %g", m.WireLength, 64*6.5)
	}
	if m.Perimeter != float64(2*(6+5)+2*(4+2)) {
		t.Fatalf("perimeter = %g", m.Perimeter)
	}
}

func TestObjectiveLexicographicOrdering(t *testing.T) {
	p := testProblem()
	obj := DefaultObjective()
	lowWaste := Metrics{WastedFrames: 10, WireLength: 10000}
	highWaste := Metrics{WastedFrames: 11, WireLength: 0}
	if obj.Value(p, lowWaste) >= obj.Value(p, highWaste) {
		t.Fatal("lexicographic objective must rank waste above wire length")
	}
	missed := Metrics{RelocationMiss: 0.5, WastedFrames: 0}
	if obj.Value(p, missed) <= obj.Value(p, highWaste) {
		t.Fatal("lexicographic objective must rank relocation miss first")
	}
}

func TestObjectiveWeighted(t *testing.T) {
	p := testProblem()
	obj := Objective{WireLength: 1, Resource: 1}
	a := Metrics{WastedFrames: 100, WireLength: 50}
	b := Metrics{WastedFrames: 100, WireLength: 60}
	if obj.Value(p, a) >= obj.Value(p, b) {
		t.Fatal("higher wire length must cost more")
	}
}

func TestEnumerateCandidatesExactFit(t *testing.T) {
	p := testProblem()
	cands := EnumerateCandidates(p.Device, p.Regions[0].Req)
	if len(cands) == 0 {
		t.Fatal("no candidates for region A")
	}
	if cands[0].Waste != 0 {
		t.Fatalf("best waste = %d, want 0 (exact-fit shape exists)", cands[0].Waste)
	}
	for _, c := range cands {
		if !p.Device.Satisfies(c.Rect, p.Regions[0].Req) {
			t.Fatalf("candidate %v does not satisfy requirements", c.Rect)
		}
		if p.Device.OverlapsForbidden(c.Rect) {
			t.Fatalf("candidate %v crosses forbidden area", c.Rect)
		}
		if got := p.Device.WastedFrames(c.Rect, p.Regions[0].Req); got != c.Waste {
			t.Fatalf("candidate %v waste mismatch: %d vs %d", c.Rect, got, c.Waste)
		}
	}
	// Sorted by waste.
	for i := 1; i < len(cands); i++ {
		if cands[i].Waste < cands[i-1].Waste {
			t.Fatal("candidates not sorted by waste")
		}
	}
}

func TestEnumerateCandidatesWidthMinimal(t *testing.T) {
	p := testProblem()
	cands := EnumerateCandidates(p.Device, p.Regions[1].Req)
	for _, c := range cands {
		if c.Rect.W > 1 {
			narrower := grid.Rect{X: c.Rect.X, Y: c.Rect.Y, W: c.Rect.W - 1, H: c.Rect.H}
			if p.Device.Satisfies(narrower, p.Regions[1].Req) && p.Device.CanPlace(narrower) {
				t.Fatalf("candidate %v is not width-minimal", c.Rect)
			}
		}
	}
}

func TestEnumerateCandidatesImpossible(t *testing.T) {
	p := testProblem()
	cands := EnumerateCandidates(p.Device, device.Requirements{device.ClassDSP: 17})
	if len(cands) != 0 {
		t.Fatalf("got %d candidates for an impossible requirement", len(cands))
	}
	if MinWaste(cands) != -1 {
		t.Fatal("MinWaste of empty must be -1")
	}
}

func TestRenderASCII(t *testing.T) {
	p := testProblem()
	sol := validSolution(p)
	out := RenderASCII(p, sol)
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Fatal("regions missing from ASCII render")
	}
	if !strings.Contains(out, "#") {
		t.Fatal("forbidden area missing from ASCII render")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < p.Device.Height()+1 {
		t.Fatalf("render has %d lines", len(lines))
	}
	// Device-only render.
	if empty := RenderASCII(p, nil); !strings.Contains(empty, "#") {
		t.Fatal("device-only render missing forbidden area")
	}
}

func TestRenderSVG(t *testing.T) {
	p := testProblem()
	p.FCAreas = []FCRequest{{Region: 0, Mode: RelocConstraint}}
	sol := validSolution(p)
	sol.FC = []FCPlacement{{Request: 0, Placed: true, Rect: grid.Rect{X: 24, Y: 0, W: 6, H: 5}}}
	out := RenderSVG(p, sol)
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Fatal("not an SVG document")
	}
	if !strings.Contains(out, "stroke-dasharray") {
		t.Fatal("FC area (dashed) missing from SVG")
	}
	if !strings.Contains(out, "A") {
		t.Fatal("region label missing")
	}
}

func TestSummary(t *testing.T) {
	p := testProblem()
	sol := validSolution(p)
	sol.Engine = "test"
	s := sol.Summary(p)
	if !strings.Contains(s, "engine=test") || !strings.Contains(s, "wasted=") {
		t.Fatalf("summary incomplete: %s", s)
	}
}

func TestFCRequestWeight(t *testing.T) {
	if (FCRequest{}).EffectiveWeight() != 1 {
		t.Fatal("default weight must be 1")
	}
	if (FCRequest{Weight: 2.5}).EffectiveWeight() != 2.5 {
		t.Fatal("explicit weight lost")
	}
}

func TestRegionIndex(t *testing.T) {
	p := testProblem()
	if p.RegionIndex("B") != 1 {
		t.Fatal("lookup failed")
	}
	if p.RegionIndex("nope") != -1 {
		t.Fatal("unknown name found")
	}
}

func TestSolutionJSONRoundTrip(t *testing.T) {
	p := testProblem()
	p.FCAreas = []FCRequest{{Region: 0, Mode: RelocConstraint}}
	sol := validSolution(p)
	sol.FC = []FCPlacement{{Request: 0, Placed: true, Rect: grid.Rect{X: 24, Y: 0, W: 6, H: 5}}}
	sol.Engine = "exact"
	sol.Proven = true
	data, err := json.Marshal(sol)
	if err != nil {
		t.Fatal(err)
	}
	var back Solution
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(p); err != nil {
		t.Fatalf("round-tripped solution invalid: %v", err)
	}
	if back.Engine != "exact" || !back.Proven {
		t.Fatal("metadata lost")
	}
	if back.Regions[0] != sol.Regions[0] || back.FC[0].Rect != sol.FC[0].Rect {
		t.Fatal("geometry lost")
	}
}

func TestMultiRegionValidate(t *testing.T) {
	p := testProblem()
	p.FCAreas = []FCRequest{{Region: 0, AlsoCompatible: []int{9}}}
	if p.Validate() == nil {
		t.Fatal("out-of-range AlsoCompatible accepted")
	}
	p.FCAreas = []FCRequest{{Region: 0, AlsoCompatible: []int{1}, Mode: RelocConstraint}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// A placed FC area compatible with region 0 but not region 1 must be
	// rejected by the solution validator.
	sol := validSolution(p)
	sol.FC = []FCPlacement{{Request: 0, Placed: true, Rect: grid.Rect{X: 24, Y: 0, W: 6, H: 5}}}
	if sol.Validate(p) == nil {
		t.Fatal("area incompatible with AlsoCompatible region accepted")
	}
}
