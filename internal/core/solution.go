package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/grid"
)

// FCPlacement records the outcome of one FCRequest.
type FCPlacement struct {
	// Request indexes Problem.FCAreas.
	Request int
	// Placed reports whether the area was identified. Constraint-mode
	// requests are always placed in a feasible solution; metric-mode
	// requests may be missed at a cost.
	Placed bool
	// Rect is the reserved area (valid only when Placed).
	Rect grid.Rect
}

// Solution is a floorplan: one rectangle per region plus the outcome of
// every free-compatible area request.
type Solution struct {
	// Regions holds one placement per problem region, index-aligned.
	Regions []grid.Rect
	// FC holds one entry per FCRequest, index-aligned.
	FC []FCPlacement

	// Engine names the algorithm that produced the solution.
	Engine string
	// Proven reports whether the engine proved the solution optimal
	// under the problem objective.
	Proven bool
	// Elapsed is the solve time.
	Elapsed time.Duration
	// Nodes counts search nodes (engine-specific; 0 if not applicable).
	Nodes int
}

// Metrics computes the raw cost terms of the solution for problem p.
func (s *Solution) Metrics(p *Problem) Metrics {
	m := Metrics{
		WireLength: WireLengthOf(p, s.Regions),
		Perimeter:  PerimeterOf(s.Regions),
	}
	for i, r := range p.Regions {
		m.WastedFrames += p.Device.WastedFrames(s.Regions[i], r.Req)
	}
	for _, fc := range s.FC {
		if fc.Placed {
			m.PlacedFC++
		} else {
			m.RelocationMiss += p.FCAreas[fc.Request].EffectiveWeight()
		}
	}
	return m
}

// Objective evaluates the problem objective on this solution.
func (s *Solution) Objective(p *Problem) float64 {
	obj := p.Objective
	if obj.IsZero() {
		obj = DefaultObjective()
	}
	return obj.Value(p, s.Metrics(p))
}

// PlacedFCFor returns the placed free-compatible areas reserved for
// region ri.
func (s *Solution) PlacedFCFor(p *Problem, ri int) []grid.Rect {
	var out []grid.Rect
	for _, fc := range s.FC {
		if fc.Placed && p.FCAreas[fc.Request].Region == ri {
			out = append(out, fc.Rect)
		}
	}
	return out
}

// allRects returns every occupied rectangle: regions then placed FC areas.
func (s *Solution) allRects() []grid.Rect {
	out := append([]grid.Rect(nil), s.Regions...)
	for _, fc := range s.FC {
		if fc.Placed {
			out = append(out, fc.Rect)
		}
	}
	return out
}

// Validate checks the solution against the problem: every region placed
// legally with its resources covered, every constraint-mode FC area placed,
// every placed FC area compatible with its region's placement
// (Definition .2: free-compatible = compatible + overlapping nothing), and
// all rectangles pairwise disjoint and clear of forbidden areas.
//
// Validation is independent of the engines: it re-derives every property
// from the device model, so it doubles as the correctness oracle in tests.
func (s *Solution) Validate(p *Problem) error {
	if len(s.Regions) != len(p.Regions) {
		return fmt.Errorf("core: solution has %d regions, problem has %d", len(s.Regions), len(p.Regions))
	}
	if len(s.FC) != len(p.FCAreas) {
		return fmt.Errorf("core: solution has %d FC entries, problem has %d", len(s.FC), len(p.FCAreas))
	}
	for i, r := range s.Regions {
		name := p.Regions[i].Name
		if r.Empty() {
			return fmt.Errorf("core: region %q not placed", name)
		}
		if !p.Device.CanPlace(r) {
			return fmt.Errorf("core: region %q at %v is out of bounds or crosses a forbidden area", name, r)
		}
		if !p.Device.Satisfies(r, p.Regions[i].Req) {
			return fmt.Errorf("core: region %q at %v does not cover its required resources %v (has %v)",
				name, r, p.Regions[i].Req, p.Device.CountClasses(r))
		}
	}
	seen := make(map[int]bool)
	for i, fc := range s.FC {
		if fc.Request != i {
			return fmt.Errorf("core: FC entry %d has request index %d", i, fc.Request)
		}
		if seen[fc.Request] {
			return fmt.Errorf("core: duplicate FC entry for request %d", fc.Request)
		}
		seen[fc.Request] = true
		req := p.FCAreas[fc.Request]
		if !fc.Placed {
			if req.Mode == RelocConstraint {
				return fmt.Errorf("core: constraint-mode free-compatible area %d (region %q) not placed",
					i, p.Regions[req.Region].Name)
			}
			continue
		}
		if !p.Device.CanPlace(fc.Rect) {
			return fmt.Errorf("core: FC area %d at %v is out of bounds or crosses a forbidden area", i, fc.Rect)
		}
		for _, ri := range req.CompatRegions() {
			src := s.Regions[ri]
			if !p.Device.Compatible(src, fc.Rect) {
				return fmt.Errorf("core: FC area %d at %v is not compatible with region %q at %v",
					i, fc.Rect, p.Regions[ri].Name, src)
			}
		}
	}
	rects := s.allRects()
	for i := range rects {
		for j := i + 1; j < len(rects); j++ {
			if rects[i].Overlaps(rects[j]) {
				return fmt.Errorf("core: areas %s and %s overlap",
					s.rectName(p, i), s.rectName(p, j))
			}
		}
	}
	return nil
}

// rectName labels the k-th rectangle of allRects for error messages.
func (s *Solution) rectName(p *Problem, k int) string {
	if k < len(s.Regions) {
		return fmt.Sprintf("region %q %v", p.Regions[k].Name, s.Regions[k])
	}
	k -= len(s.Regions)
	for _, fc := range s.FC {
		if !fc.Placed {
			continue
		}
		if k == 0 {
			req := p.FCAreas[fc.Request]
			return fmt.Sprintf("FC area %d for %q %v", fc.Request, p.Regions[req.Region].Name, fc.Rect)
		}
		k--
	}
	return "unknown area"
}

// Summary renders a one-solution report: placements, FC outcomes, metrics.
func (s *Solution) Summary(p *Problem) string {
	var b strings.Builder
	m := s.Metrics(p)
	fmt.Fprintf(&b, "engine=%s proven=%v elapsed=%s\n", s.Engine, s.Proven, s.Elapsed.Round(time.Millisecond))
	for i, r := range s.Regions {
		fmt.Fprintf(&b, "  %-18s %v waste=%df\n", p.Regions[i].Name, r, p.Device.WastedFrames(r, p.Regions[i].Req))
	}
	for _, fc := range s.FC {
		req := p.FCAreas[fc.Request]
		if fc.Placed {
			fmt.Fprintf(&b, "  FC[%d] %-12s %v (%s)\n", fc.Request, p.Regions[req.Region].Name, fc.Rect, req.Mode)
		} else {
			fmt.Fprintf(&b, "  FC[%d] %-12s MISSED (%s)\n", fc.Request, p.Regions[req.Region].Name, req.Mode)
		}
	}
	fmt.Fprintf(&b, "  wasted=%df wirelength=%.1f perimeter=%.0f placedFC=%d missed=%.1f\n",
		m.WastedFrames, m.WireLength, m.Perimeter, m.PlacedFC, m.RelocationMiss)
	return b.String()
}
