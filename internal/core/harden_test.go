package core

import (
	"math"
	"testing"

	"repro/internal/device"
)

// TestValidateRejectsHostileNumerics pins the input-hardening layer:
// NaN/Inf weights and absurd requirements must be rejected by Validate
// before any engine can turn them into a hang, an overflow, or a
// nonsensical objective.
func TestValidateRejectsHostileNumerics(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)

	cases := map[string]func(p *Problem){
		"NaN net weight":  func(p *Problem) { p.Nets[0].Weight = nan },
		"+Inf net weight": func(p *Problem) { p.Nets[0].Weight = inf },
		"-Inf net weight": func(p *Problem) { p.Nets[0].Weight = math.Inf(-1) },
		"NaN FC weight": func(p *Problem) {
			p.FCAreas = []FCRequest{{Region: 0, Weight: nan}}
		},
		"Inf FC weight": func(p *Problem) {
			p.FCAreas = []FCRequest{{Region: 0, Weight: inf}}
		},
		"negative requirement": func(p *Problem) {
			p.Regions[0].Req = device.Requirements{device.ClassCLB: -1}
		},
		"overflowing requirement": func(p *Problem) {
			p.Regions[0].Req = device.Requirements{device.ClassCLB: math.MaxInt}
		},
		"NaN objective weight": func(p *Problem) { p.Objective.WireLength = nan },
		"Inf objective weight": func(p *Problem) { p.Objective.Relocation = inf },
	}
	for name, mutate := range cases {
		p := testProblem()
		mutate(p)
		if p.Validate() == nil {
			t.Errorf("%s accepted by Validate", name)
		}
	}

	// Sanity: the unmutated problem still validates, so the rejections
	// above are the mutation's doing.
	if err := testProblem().Validate(); err != nil {
		t.Fatalf("baseline problem no longer validates: %v", err)
	}
}
