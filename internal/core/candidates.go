package core

import (
	"sort"

	"repro/internal/device"
	"repro/internal/grid"
)

// Candidate is one legal placement rectangle for a region, precomputed
// with its waste.
type Candidate struct {
	Rect grid.Rect
	// Waste is the configuration frames covered beyond the region's
	// requirements.
	Waste int
}

// EnumerateCandidates lists the width-minimal legal placements of a region
// with requirements req on device d: for every top-left corner (x, y) and
// height h, the narrowest rectangle that covers the required resources and
// does not cross a forbidden area.
//
// Restricting the search to width-minimal rectangles is lossless for the
// paper's lexicographic objective (relocation misses, then wasted frames,
// then wire length): every tile type has a positive frame count, so any
// wider rectangle strictly increases waste, and shrinking a region can
// only enlarge the placement freedom of its free-compatible areas (a
// sub-rectangle of a compatible pair remains compatible).
//
// Candidates are returned sorted by increasing waste, ties broken by
// (y, x, h) for determinism.
func EnumerateCandidates(d *device.Device, req device.Requirements) []Candidate {
	W, H := d.Width(), d.Height()
	classes := classesOf(d)
	need := make([]int, len(classes))
	for i, cl := range classes {
		need[i] = req[cl]
	}
	classIdx := make(map[device.Class]int, len(classes))
	for i, cl := range classes {
		classIdx[cl] = i
	}

	var out []Candidate
	colCount := make([][]int, W) // per column: class tile counts for the current (y, h)
	for c := range colCount {
		colCount[c] = make([]int, len(classes))
	}
	have := make([]int, len(classes))

	for y := 0; y < H; y++ {
		// Reset incremental column counts for this starting row.
		for c := 0; c < W; c++ {
			for k := range colCount[c] {
				colCount[c][k] = 0
			}
		}
		for h := 1; y+h <= H; h++ {
			row := y + h - 1
			for c := 0; c < W; c++ {
				cl := d.Type(d.TypeAt(c, row)).Class
				colCount[c][classIdx[cl]]++
			}
			// Two-pointer sweep: for each x, the minimal right edge is
			// monotone non-decreasing.
			for k := range have {
				have[k] = 0
			}
			right := 0 // exclusive
			for x := 0; x < W; x++ {
				if right < x {
					right = x
					for k := range have {
						have[k] = 0
					}
				}
				for !satisfied(have, need) && right < W {
					for k, v := range colCount[right] {
						have[k] += v
					}
					right++
				}
				if !satisfied(have, need) {
					break // no wider window from this x can help
				}
				r := grid.Rect{X: x, Y: y, W: right - x, H: h}
				if d.CanPlace(r) {
					out = append(out, Candidate{Rect: r, Waste: d.WastedFrames(r, req)})
				}
				// Slide the left edge out before the next x.
				for k, v := range colCount[x] {
					have[k] -= v
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Waste != b.Waste {
			return a.Waste < b.Waste
		}
		if a.Rect.Y != b.Rect.Y {
			return a.Rect.Y < b.Rect.Y
		}
		if a.Rect.X != b.Rect.X {
			return a.Rect.X < b.Rect.X
		}
		return a.Rect.H < b.Rect.H
	})
	return out
}

func satisfied(have, need []int) bool {
	for k, n := range need {
		if have[k] < n {
			return false
		}
	}
	return true
}

// classesOf returns the device's resource classes in deterministic order.
func classesOf(d *device.Device) []device.Class {
	seen := map[device.Class]bool{}
	var out []device.Class
	for _, t := range d.Types() {
		if !seen[t.Class] {
			seen[t.Class] = true
			out = append(out, t.Class)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MinWaste returns the smallest waste over all candidates, or -1 when the
// region cannot be placed at all.
func MinWaste(cands []Candidate) int {
	if len(cands) == 0 {
		return -1
	}
	return cands[0].Waste // sorted ascending
}

// EnumerateAllCandidates lists EVERY legal placement of the requirements,
// not only the width-minimal ones, sorted like EnumerateCandidates.
//
// It is needed for regions that must share a tile-type signature with
// other regions (multi-region free-compatible areas, the paper's general
// s_{c,n}): there the width-minimal restriction loses solutions, because
// widening a region may be the only way to align its signature with a
// partner's. For ordinary regions prefer EnumerateCandidates — same
// optima, far fewer candidates.
func EnumerateAllCandidates(d *device.Device, req device.Requirements) []Candidate {
	var out []Candidate
	for x := 0; x < d.Width(); x++ {
		for y := 0; y < d.Height(); y++ {
			for h := 1; y+h <= d.Height(); h++ {
				for w := 1; x+w <= d.Width(); w++ {
					r := grid.Rect{X: x, Y: y, W: w, H: h}
					if !d.CanPlace(r) {
						break // wider rects stay blocked
					}
					if !d.Satisfies(r, req) {
						continue
					}
					out = append(out, Candidate{Rect: r, Waste: d.WastedFrames(r, req)})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Waste != b.Waste {
			return a.Waste < b.Waste
		}
		if a.Rect.Y != b.Rect.Y {
			return a.Rect.Y < b.Rect.Y
		}
		if a.Rect.X != b.Rect.X {
			return a.Rect.X < b.Rect.X
		}
		if a.Rect.H != b.Rect.H {
			return a.Rect.H < b.Rect.H
		}
		return a.Rect.W < b.Rect.W
	})
	return out
}
