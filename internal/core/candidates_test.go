package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/grid"
)

// bruteMinWaste finds the minimum waste over ALL legal rectangles (not
// only width-minimal ones) by complete enumeration.
func bruteMinWaste(d *device.Device, req device.Requirements) int {
	best := -1
	for x := 0; x < d.Width(); x++ {
		for y := 0; y < d.Height(); y++ {
			for w := 1; x+w <= d.Width(); w++ {
				for h := 1; y+h <= d.Height(); h++ {
					r := grid.Rect{X: x, Y: y, W: w, H: h}
					if !d.CanPlace(r) || !d.Satisfies(r, req) {
						continue
					}
					if waste := d.WastedFrames(r, req); best < 0 || waste < best {
						best = waste
					}
				}
			}
		}
	}
	return best
}

// TestQuickCandidatesReachBruteForceMinimum: the width-minimal candidate
// set always contains a rectangle achieving the global minimum waste —
// the losslessness property the exact engine relies on.
func TestQuickCandidatesReachBruteForceMinimum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := device.MustGenerate(device.GeneratorConfig{
			Width: 6 + rng.Intn(8), Height: 2 + rng.Intn(4),
			BRAMEvery: 4, DSPEvery: 6,
			ForbiddenBlocks: rng.Intn(2),
			Seed:            seed,
		})
		req := device.Requirements{device.ClassCLB: 1 + rng.Intn(6)}
		if rng.Intn(2) == 0 {
			req[device.ClassBRAM] = 1 + rng.Intn(2)
		}
		want := bruteMinWaste(d, req)
		got := MinWaste(EnumerateCandidates(d, req))
		if got != want {
			t.Logf("seed %d: candidates min %d, brute force %d", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCandidatesAllLegal: every enumerated candidate is a legal,
// satisfying, width-minimal placement.
func TestQuickCandidatesAllLegal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := device.MustGenerate(device.GeneratorConfig{
			Width: 8 + rng.Intn(10), Height: 3 + rng.Intn(4),
			BRAMEvery: 5, DSPEvery: 7,
			ForbiddenBlocks: rng.Intn(3),
			Seed:            seed,
		})
		req := device.Requirements{device.ClassCLB: 2 + rng.Intn(8)}
		if rng.Intn(2) == 0 {
			req[device.ClassDSP] = 1
		}
		for _, c := range EnumerateCandidates(d, req) {
			if !d.CanPlace(c.Rect) || !d.Satisfies(c.Rect, req) {
				return false
			}
			if c.Rect.W > 1 {
				narrower := grid.Rect{X: c.Rect.X, Y: c.Rect.Y, W: c.Rect.W - 1, H: c.Rect.H}
				if d.Satisfies(narrower, req) {
					return false // not width-minimal for its anchor
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
