package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/device"
	"repro/internal/obs"
)

func TestCachedCandidatesMemoizes(t *testing.T) {
	d := device.VirtexFX70T()
	req := device.Requirements{device.ClassCLB: 7, device.ClassBRAM: 1}

	a := CachedCandidates(d, req)
	b := CachedCandidates(d, req)
	if len(a) == 0 {
		t.Fatal("no candidates for a placeable shape")
	}
	if &a[0] != &b[0] {
		t.Fatal("repeated lookups did not share the memoized slice")
	}
	if want := EnumerateCandidates(d, req); !reflect.DeepEqual(a, want) {
		t.Fatal("cached candidates differ from direct enumeration")
	}

	all := CachedAllCandidates(d, req)
	if len(all) > 0 && len(a) > 0 && &all[0] == &a[0] {
		t.Fatal("all-candidates and width-minimal lists share one cache entry")
	}
}

func TestCachedCandidatesKeyedByDeviceIdentity(t *testing.T) {
	req := device.Requirements{device.ClassCLB: 5}
	a := CachedCandidates(device.VirtexFX70T(), req)
	b := CachedCandidates(device.VirtexFX70T(), req)
	// Two equal-looking devices are distinct models: same contents, but
	// the lists must come from separate entries (no stale pointer hits).
	if len(a) > 0 && len(b) > 0 && &a[0] == &b[0] {
		t.Fatal("look-alike devices shared one cache entry")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical devices enumerated different candidates")
	}
}

func TestCachedCandidatesRequirementsOrderInsensitive(t *testing.T) {
	// Map iteration order is random; the key must not depend on it, and
	// zero-valued classes must not split entries.
	d := device.VirtexFX70T()
	a := CachedCandidates(d, device.Requirements{device.ClassCLB: 9, device.ClassDSP: 2})
	b := CachedCandidates(d, device.Requirements{device.ClassDSP: 2, device.ClassCLB: 9, device.ClassBRAM: 0})
	if len(a) == 0 || &a[0] != &b[0] {
		t.Fatal("equivalent requirements missed the cache")
	}
}

func TestCachedCandidatesSingleFlight(t *testing.T) {
	d := device.VirtexFX70T()
	req := device.Requirements{device.ClassCLB: 11}
	const racers = 16
	out := make([][]Candidate, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = CachedCandidates(d, req)
		}(i)
	}
	wg.Wait()
	for i := 1; i < racers; i++ {
		if len(out[i]) == 0 || &out[i][0] != &out[0][0] {
			t.Fatalf("racer %d got a private enumeration; want one shared slice", i)
		}
	}
}

func TestCandCacheEvictsFIFO(t *testing.T) {
	c := &candCache{m: make(map[candKey]*candEntry)}
	d := device.VirtexFX70T()
	first := device.Requirements{device.ClassCLB: 1}
	got := c.get(d, first, false, nil)
	for i := 0; i < candCacheCap; i++ {
		// Distinct keys via distinct requirement sizes; enough of them to
		// push the first entry out.
		c.get(d, device.Requirements{device.ClassCLB: i + 2}, false, nil)
	}
	c.mu.Lock()
	size := len(c.m)
	_, stillThere := c.m[candKey{dev: d, req: reqKey(first), all: false}]
	c.mu.Unlock()
	if size != candCacheCap {
		t.Fatalf("cache holds %d entries, want the cap %d", size, candCacheCap)
	}
	if stillThere {
		t.Fatal("oldest entry survived eviction")
	}
	// A re-lookup must re-enumerate into a fresh entry, not resurrect the
	// evicted slice.
	again := c.get(d, first, false, nil)
	if len(got) > 0 && len(again) > 0 && &got[0] == &again[0] {
		t.Fatal("evicted entry was resurrected instead of re-enumerated")
	}
	if !reflect.DeepEqual(got, again) {
		t.Fatal("re-enumeration after eviction produced different candidates")
	}
}

func TestCandCacheStatsAndSpanCounters(t *testing.T) {
	d := device.VirtexFX70T()
	req := device.Requirements{device.ClassCLB: 13, device.ClassDSP: 1}
	rec := obs.NewRecorder()
	sp := rec.Span("test")

	hits0, misses0 := CandCacheStats()
	CachedCandidatesFor(d, req, sp) // first sight of this key: a miss
	CachedCandidatesFor(d, req, sp) // memoized: a hit
	hits1, misses1 := CandCacheStats()

	if misses1-misses0 < 1 {
		t.Errorf("process miss counter moved by %d, want >= 1", misses1-misses0)
	}
	if hits1-hits0 < 1 {
		t.Errorf("process hit counter moved by %d, want >= 1", hits1-hits0)
	}
	if got := rec.TotalFor("test", obs.CacheMisses); got != 1 {
		t.Errorf("span recorded %d cache misses, want 1", got)
	}
	if got := rec.TotalFor("test", obs.CacheHits); got != 1 {
		t.Errorf("span recorded %d cache hits, want 1", got)
	}
	// The probe-free entry points keep counting process-wide.
	CachedCandidates(d, req)
	if hits2, _ := CandCacheStats(); hits2-hits1 < 1 {
		t.Errorf("probe-free lookup did not count as a hit")
	}
	if got := rec.TotalFor("test", obs.CacheHits); got != 1 {
		t.Errorf("probe-free lookup leaked onto the span: %d hits", got)
	}
}

func TestReqKeyDeterministic(t *testing.T) {
	req := device.Requirements{device.ClassCLB: 3, device.ClassBRAM: 2, device.ClassDSP: 1}
	want := reqKey(req)
	for i := 0; i < 20; i++ {
		if got := reqKey(req); got != want {
			t.Fatalf("reqKey unstable: %q vs %q", got, want)
		}
	}
	if reqKey(device.Requirements{}) != "" {
		t.Fatal("empty requirements should key to the empty string")
	}
	if want == "" {
		t.Fatal("non-empty requirements keyed to the empty string")
	}
}
