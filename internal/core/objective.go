package core

import (
	"repro/internal/grid"
)

// Objective is the paper's composite cost function (Equation 14):
//
//	min  q1*WLcost/WLmax + q2*Pcost/Pmax + q3*Rcost/Rmax + q4*RLcost/RLmax
//
// with the four terms being wire length, perimeter, wasted resources
// (configuration frames) and missed relocation areas. The evaluation of
// Section VI uses the [8]/[10] objective — "first optimize the wasted
// area and, without increasing the area cost, minimize the overall wire
// length" — which Lexicographic selects.
type Objective struct {
	// WireLength is q1.
	WireLength float64
	// Perimeter is q2.
	Perimeter float64
	// Resource is q3 (wasted configuration frames).
	Resource float64
	// Relocation is q4 (weighted missed free-compatible areas).
	Relocation float64
	// Lexicographic, when true, ignores the q-weights and ranks
	// solutions by (RLcost, Rcost, WLcost): relocation misses first,
	// then wasted frames, then wire length — the paper's evaluation
	// objective, with metric-mode misses dominating.
	Lexicographic bool
}

// DefaultObjective returns the paper's evaluation objective.
func DefaultObjective() Objective { return Objective{Lexicographic: true} }

// IsZero reports whether the objective is entirely unset, in which case
// engines substitute DefaultObjective.
func (o Objective) IsZero() bool {
	return o == Objective{}
}

// Metrics are the raw cost terms of a solution.
type Metrics struct {
	// WireLength is WLcost: the weighted half-perimeter wire length
	// over the problem's nets, between region centers (in tile units).
	WireLength float64
	// Perimeter is Pcost: the total perimeter of all regions.
	Perimeter float64
	// WastedFrames is Rcost: configuration frames covered by regions in
	// excess of their requirements.
	WastedFrames int
	// RelocationMiss is RLcost: the summed weights of requested
	// free-compatible areas that were not placed.
	RelocationMiss float64
	// PlacedFC is the number of free-compatible areas successfully
	// identified.
	PlacedFC int
}

// normalizers derives WLmax/Pmax/Rmax/RLmax for a problem, used to blend
// the weighted objective exactly as Equation 14 prescribes.
func normalizers(p *Problem) (wl, per, res, rl float64) {
	w := float64(p.Device.Width())
	h := float64(p.Device.Height())
	for _, n := range p.Nets {
		wl += n.Weight * (w + h)
	}
	per = float64(len(p.Regions)) * 2 * (w + h)
	res = float64(p.Device.TotalFrames())
	for _, fc := range p.FCAreas {
		if fc.Mode == RelocMetric {
			rl += fc.EffectiveWeight()
		}
	}
	if wl == 0 {
		wl = 1
	}
	if per == 0 {
		per = 1
	}
	if res == 0 {
		res = 1
	}
	if rl == 0 {
		rl = 1
	}
	return wl, per, res, rl
}

// Value blends the metrics into a single scalar according to the
// objective. Lexicographic objectives map to a scalar by scaling the
// tiers far apart (safe because each term is bounded by its normalizer).
func (o Objective) Value(p *Problem, m Metrics) float64 {
	wlMax, pMax, rMax, rlMax := normalizers(p)
	if o.Lexicographic || o.IsZero() {
		const tier = 1e6
		return m.RelocationMiss/rlMax*tier*tier +
			float64(m.WastedFrames)/rMax*tier +
			m.WireLength/wlMax
	}
	return o.WireLength*m.WireLength/wlMax +
		o.Perimeter*m.Perimeter/pMax +
		o.Resource*float64(m.WastedFrames)/rMax +
		o.Relocation*m.RelocationMiss/rlMax
}

// WireLengthOf computes WLcost for a set of region placements: for each
// net, weight times the Manhattan distance between the region centers.
// Centers are computed exactly with doubled coordinates and the result is
// halved at the end.
func WireLengthOf(p *Problem, regions []grid.Rect) float64 {
	total := 0.0
	for _, n := range p.Nets {
		a, b := regions[n.A], regions[n.B]
		dx := a.CenterX2() - b.CenterX2()
		if dx < 0 {
			dx = -dx
		}
		dy := a.CenterY2() - b.CenterY2()
		if dy < 0 {
			dy = -dy
		}
		total += n.Weight * float64(dx+dy) / 2
	}
	return total
}

// PerimeterOf computes Pcost: the summed full perimeters of the regions.
func PerimeterOf(regions []grid.Rect) float64 {
	total := 0.0
	for _, r := range regions {
		total += float64(2 * r.HalfPerimeter())
	}
	return total
}
