// Package core defines the relocation-aware floorplanning problem, its
// solutions, objective, validation and rendering — the primary contribution
// of the reproduced paper (Rabozzi et al., IPDPSW 2015).
//
// A Problem places a set of reconfigurable regions on a tile-modeled FPGA
// and, following the paper, additionally reserves free-compatible areas:
// spare rectangles compatible (same shape and tile-type layout) with a
// region, into which that region's partial bitstream can be relocated at
// run time. Free-compatible areas can be demanded as hard constraints
// (Section IV) or traded off in the objective as a metric (Section V).
package core

import (
	"fmt"
	"math"

	"repro/internal/device"
)

// Region is a reconfigurable region to place: a named rectangular area
// that must cover at least the stated resource requirements.
type Region struct {
	// Name identifies the region (e.g. "Matched Filter").
	Name string
	// Req is the region's resource requirement in tiles per class
	// (Table I of the paper).
	Req device.Requirements
}

// Net is a weighted two-pin connection between regions, used by the
// wire-length term of the objective. The paper's SDR case study chains the
// five modules with a 64-bit bus; Weight models bus width.
type Net struct {
	// A and B index Problem.Regions.
	A, B int
	// Weight scales this net's half-perimeter wire length.
	Weight float64
}

// RelocMode selects how a free-compatible area request is enforced.
type RelocMode int

const (
	// RelocConstraint makes the free-compatible area mandatory: a
	// solution is feasible only if the area is placed (Section IV).
	RelocConstraint RelocMode = iota
	// RelocMetric makes the area optional: failing to place it adds its
	// weight to the relocation cost term RLcost (Section V).
	RelocMetric
)

func (m RelocMode) String() string {
	if m == RelocConstraint {
		return "constraint"
	}
	return "metric"
}

// FCRequest asks the floorplanner to reserve one free-compatible area for
// a region. Requesting k areas for the same region is expressed as k
// FCRequests.
type FCRequest struct {
	// Region indexes Problem.Regions: the area must be compatible with
	// this region's placement.
	Region int
	// AlsoCompatible lists further regions the area must be compatible
	// with (the paper's general s_{c,n} parameter: one area serving
	// several regions). This implicitly forces those regions to be
	// placed with identical tile-type signatures.
	AlsoCompatible []int
	// Mode selects constraint vs metric handling.
	Mode RelocMode
	// Weight is the metric-mode cost cw_c of not placing the area
	// (ignored in constraint mode; defaults to 1 when zero).
	Weight float64
}

// CompatRegions returns every region the area must be compatible with:
// the primary region followed by AlsoCompatible, deduplicated.
func (r FCRequest) CompatRegions() []int {
	out := []int{r.Region}
	for _, extra := range r.AlsoCompatible {
		dup := false
		for _, seen := range out {
			if seen == extra {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, extra)
		}
	}
	return out
}

// EffectiveWeight returns the metric weight, defaulting to 1.
func (r FCRequest) EffectiveWeight() float64 {
	if r.Weight == 0 {
		return 1
	}
	return r.Weight
}

// Problem is a relocation-aware floorplanning instance.
type Problem struct {
	// Device is the target FPGA.
	Device *device.Device
	// Regions are the reconfigurable regions to place.
	Regions []Region
	// Nets connect regions for the wire-length objective term.
	Nets []Net
	// FCAreas are the requested free-compatible areas.
	FCAreas []FCRequest
	// Objective weighs the cost terms; the zero value selects the
	// paper's evaluation objective (lexicographic wasted-area then
	// wire length). See Objective.
	Objective Objective
}

// maxRequirement bounds a single per-class tile requirement. No real
// device has 2^30 tiles of one class; larger values are malformed input
// (and risk overflow in frame arithmetic), so Validate rejects them
// before any engine sees them.
const maxRequirement = 1 << 30

// finite reports whether f is a usable weight: not NaN, not infinite.
func finite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// Validate checks the static well-formedness of the problem.
func (p *Problem) Validate() error {
	if p.Device == nil {
		return fmt.Errorf("core: problem has no device")
	}
	if len(p.Regions) == 0 {
		return fmt.Errorf("core: problem has no regions")
	}
	names := map[string]bool{}
	for i, r := range p.Regions {
		if r.Name == "" {
			return fmt.Errorf("core: region %d has no name", i)
		}
		if names[r.Name] {
			return fmt.Errorf("core: duplicate region name %q", r.Name)
		}
		names[r.Name] = true
		if r.Req.IsZero() {
			return fmt.Errorf("core: region %q requires no resources", r.Name)
		}
		for class, n := range r.Req {
			if n < 0 {
				return fmt.Errorf("core: region %q has negative requirement for %s", r.Name, class)
			}
			if n > maxRequirement {
				return fmt.Errorf("core: region %q requirement for %s is implausibly large (%d > %d)", r.Name, class, n, maxRequirement)
			}
		}
	}
	for i, n := range p.Nets {
		if n.A < 0 || n.A >= len(p.Regions) || n.B < 0 || n.B >= len(p.Regions) {
			return fmt.Errorf("core: net %d references unknown region", i)
		}
		if n.A == n.B {
			return fmt.Errorf("core: net %d connects region %d to itself", i, n.A)
		}
		if !finite(n.Weight) {
			return fmt.Errorf("core: net %d has non-finite weight", i)
		}
		if n.Weight < 0 {
			return fmt.Errorf("core: net %d has negative weight", i)
		}
	}
	for i, fc := range p.FCAreas {
		if fc.Region < 0 || fc.Region >= len(p.Regions) {
			return fmt.Errorf("core: free-compatible request %d references unknown region %d", i, fc.Region)
		}
		for _, extra := range fc.AlsoCompatible {
			if extra < 0 || extra >= len(p.Regions) {
				return fmt.Errorf("core: free-compatible request %d references unknown region %d", i, extra)
			}
		}
		if !finite(fc.Weight) {
			return fmt.Errorf("core: free-compatible request %d has non-finite weight", i)
		}
		if fc.Weight < 0 {
			return fmt.Errorf("core: free-compatible request %d has negative weight", i)
		}
	}
	for _, q := range []struct {
		name string
		v    float64
	}{
		{"wire-length", p.Objective.WireLength},
		{"perimeter", p.Objective.Perimeter},
		{"resource", p.Objective.Resource},
		{"relocation", p.Objective.Relocation},
	} {
		if !finite(q.v) {
			return fmt.Errorf("core: objective %s weight is not finite", q.name)
		}
	}
	return nil
}

// RegionIndex returns the index of the named region, or -1.
func (p *Problem) RegionIndex(name string) int {
	for i, r := range p.Regions {
		if r.Name == name {
			return i
		}
	}
	return -1
}

// RequiredFrames returns the minimal total configuration frames of all
// regions (the Table I "Total" row).
func (p *Problem) RequiredFrames() (int, error) {
	total := 0
	for _, r := range p.Regions {
		f, err := p.Device.FramesForRequirements(r.Req)
		if err != nil {
			return 0, fmt.Errorf("core: region %q: %w", r.Name, err)
		}
		total += f
	}
	return total, nil
}

// FCCountByRegion returns, per region index, how many free-compatible
// areas are requested.
func (p *Problem) FCCountByRegion() []int {
	counts := make([]int, len(p.Regions))
	for _, fc := range p.FCAreas {
		counts[fc.Region]++
	}
	return counts
}

// WithFCConstraints returns a copy of the problem requesting count
// constraint-mode free-compatible areas for every region listed in
// regions. It is the helper used to build the SDR2/SDR3 instances.
func (p *Problem) WithFCConstraints(regions []int, count int) *Problem {
	cp := *p
	cp.FCAreas = append([]FCRequest(nil), p.FCAreas...)
	for _, ri := range regions {
		for k := 0; k < count; k++ {
			cp.FCAreas = append(cp.FCAreas, FCRequest{Region: ri, Mode: RelocConstraint})
		}
	}
	return &cp
}
