package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/device"
)

// RenderASCII draws the floorplan as a W x H character grid, one character
// per tile — the textual analogue of the paper's Figures 4 and 5.
//
// Regions are drawn with uppercase letters (A, B, ... in region order),
// their free-compatible areas with the matching lowercase letter, the
// forbidden areas with '#', BRAM columns with ':', DSP columns with '|'
// and free CLB tiles with '.'.
func RenderASCII(p *Problem, s *Solution) string {
	d := p.Device
	W, H := d.Width(), d.Height()
	cells := make([][]rune, H)
	for r := range cells {
		cells[r] = make([]rune, W)
		for c := range cells[r] {
			switch d.Type(d.TypeAt(c, r)).Class {
			case device.ClassBRAM:
				cells[r][c] = ':'
			case device.ClassDSP:
				cells[r][c] = '|'
			default:
				cells[r][c] = '.'
			}
		}
	}
	for _, f := range d.Forbidden() {
		f.Tiles(func(c, r int) { cells[r][c] = '#' })
	}
	letter := func(i int) rune { return rune('A' + i%26) }
	if s != nil {
		for i, r := range s.Regions {
			ch := letter(i)
			r.Tiles(func(c, row int) { cells[row][c] = ch })
		}
		for _, fc := range s.FC {
			if !fc.Placed {
				continue
			}
			ch := letter(p.FCAreas[fc.Request].Region) + ('a' - 'A')
			fc.Rect.Tiles(func(c, row int) { cells[row][c] = ch })
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s (%dx%d tiles)\n", d.Name(), W, H)
	for r := 0; r < H; r++ {
		b.WriteString(string(cells[r]))
		b.WriteByte('\n')
	}
	if s != nil {
		for i := range s.Regions {
			fmt.Fprintf(&b, "%c=%s ", letter(i), p.Regions[i].Name)
		}
		b.WriteString("(lowercase = free-compatible area, #=forbidden, :=BRAM, |=DSP)\n")
	}
	return b.String()
}

// svgPalette provides visually distinct fills for up to 10 regions; it
// cycles beyond that.
var svgPalette = []string{
	"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1",
	"#76b7b2", "#edc948", "#ff9da7", "#9c755f", "#bab0ac",
}

// RenderSVG draws the floorplan as a standalone SVG document, one cell per
// tile, regions filled solid and free-compatible areas hatched in the
// region's color — the vector analogue of Figures 4 and 5.
func RenderSVG(p *Problem, s *Solution) string {
	const cell = 18
	d := p.Device
	W, H := d.Width(), d.Height()
	width := W*cell + 20
	height := H*cell + 40 + 16*len(p.Regions)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)

	// Fabric background per tile class.
	for r := 0; r < H; r++ {
		for c := 0; c < W; c++ {
			fill := "#f2f2f2"
			switch d.Type(d.TypeAt(c, r)).Class {
			case device.ClassBRAM:
				fill = "#d9e8f5"
			case device.ClassDSP:
				fill = "#f5e6d9"
			}
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#ddd"/>`+"\n",
				10+c*cell, 10+r*cell, cell, cell, fill)
		}
	}
	for _, f := range d.Forbidden() {
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#666" stroke="#333"/>`+"\n",
			10+f.X*cell, 10+f.Y*cell, f.W*cell, f.H*cell)
	}
	if s != nil {
		for i, r := range s.Regions {
			col := svgPalette[i%len(svgPalette)]
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" fill-opacity="0.85" stroke="black" stroke-width="1.5"/>`+"\n",
				10+r.X*cell, 10+r.Y*cell, r.W*cell, r.H*cell, col)
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" fill="white">%s</text>`+"\n",
				12+r.X*cell, 22+r.Y*cell, p.Regions[i].Name)
		}
		fcIndex := map[int]int{}
		for _, fc := range s.FC {
			if !fc.Placed {
				continue
			}
			ri := p.FCAreas[fc.Request].Region
			fcIndex[ri]++
			col := svgPalette[ri%len(svgPalette)]
			r := fc.Rect
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" fill-opacity="0.35" stroke="%s" stroke-dasharray="4,3" stroke-width="1.5"/>`+"\n",
				10+r.X*cell, 10+r.Y*cell, r.W*cell, r.H*cell, col, col)
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="9" fill="%s">%s %d</text>`+"\n",
				12+r.X*cell, 21+r.Y*cell, col, p.Regions[ri].Name, fcIndex[ri])
		}
	}

	// Legend.
	y := H*cell + 24
	names := make([]int, len(p.Regions))
	for i := range names {
		names[i] = i
	}
	sort.Ints(names)
	for _, i := range names {
		col := svgPalette[i%len(svgPalette)]
		fmt.Fprintf(&b, `<rect x="10" y="%d" width="10" height="10" fill="%s"/>`+"\n", y, col)
		fmt.Fprintf(&b, `<text x="24" y="%d" font-size="11">%s</text>`+"\n", y+9, p.Regions[i].Name)
		y += 16
	}
	b.WriteString("</svg>\n")
	return b.String()
}
