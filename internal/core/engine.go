package core

import (
	"context"
	"errors"
	"time"
)

// ErrInfeasible is returned by engines when the problem provably has no
// feasible floorplan (e.g. a constraint-mode free-compatible area cannot
// be identified — the paper's Matched Filter / Video Decoder result).
var ErrInfeasible = errors.New("core: problem is infeasible")

// ErrNoSolution is returned when the engine's budget expired before any
// feasible solution was found; the problem may still be feasible.
var ErrNoSolution = errors.New("core: no solution found within budget")

// SolveOptions carries engine-independent knobs.
type SolveOptions struct {
	// TimeLimit bounds the solve (0 = engine default).
	TimeLimit time.Duration
	// Seed drives randomized engines (annealing); deterministic engines
	// ignore it.
	Seed int64
	// Workers bounds parallelism for engines that support it (0 = 1).
	Workers int
}

// Normalized returns a copy of the options with engine-independent
// defaults applied: Workers <= 0 becomes 1 (sequential). Every engine is
// expected to normalize its options on entry so that callers — notably
// the serving layer — can pass user-supplied knobs through uniformly
// without re-implementing the defaulting rules.
func (o SolveOptions) Normalized() SolveOptions {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	return o
}

// Engine is a floorplanning algorithm: given a problem it produces a
// validated solution or reports infeasibility.
type Engine interface {
	// Name identifies the engine in reports ("exact", "milp-o", ...).
	Name() string
	// Solve computes a floorplan. Implementations must return solutions
	// that pass Solution.Validate against the problem.
	Solve(ctx context.Context, p *Problem, opts SolveOptions) (*Solution, error)
}
