package core

import (
	"context"
	"errors"
	"time"

	"repro/internal/obs"
)

// ErrInfeasible is returned by engines when the problem provably has no
// feasible floorplan (e.g. a constraint-mode free-compatible area cannot
// be identified — the paper's Matched Filter / Video Decoder result).
var ErrInfeasible = errors.New("core: problem is infeasible")

// ErrNoSolution is returned when the engine's budget expired before any
// feasible solution was found; the problem may still be feasible.
var ErrNoSolution = errors.New("core: no solution found within budget")

// SolveOptions carries engine-independent knobs.
type SolveOptions struct {
	// TimeLimit bounds the solve (0 = engine default).
	TimeLimit time.Duration
	// Seed drives randomized engines (annealing); deterministic engines
	// ignore it.
	Seed int64
	// Workers bounds parallelism for engines that support it (0 = 1).
	Workers int
	// Probe observes the solve (telemetry): engines open spans on it,
	// count work, and report incumbents. nil means no observation (the
	// zero-overhead obs.Nop probe). Probes must be safe for concurrent
	// use — parallel engines emit from several goroutines.
	Probe obs.Probe
}

// Normalized returns a copy of the options with engine-independent
// defaults applied: Workers <= 0 becomes 1 (sequential), a nil Probe
// becomes the no-op probe. Every engine is expected to normalize its
// options on entry so that callers — notably the serving layer — can
// pass user-supplied knobs through uniformly without re-implementing the
// defaulting rules.
func (o SolveOptions) Normalized() SolveOptions {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Probe == nil {
		o.Probe = obs.Nop
	}
	return o
}

// outcomeCarrier is implemented by errors that know their own telemetry
// outcome — the guard layer's PanicError and InvalidSolutionError.
type outcomeCarrier interface{ ObsOutcome() obs.Outcome }

// ObsOutcome maps an engine's Solve result onto the telemetry outcome
// taxonomy, for the span End every engine emits on return.
func ObsOutcome(sol *Solution, err error) obs.Outcome {
	switch {
	case err == nil && sol != nil && sol.Proven:
		return obs.OutcomeProven
	case err == nil:
		return obs.OutcomeSolved
	case errors.Is(err, ErrInfeasible):
		return obs.OutcomeInfeasible
	case errors.Is(err, ErrNoSolution),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return obs.OutcomeNoSolution
	}
	var oc outcomeCarrier
	if errors.As(err, &oc) {
		return oc.ObsOutcome()
	}
	return obs.OutcomeError
}

// Engine is a floorplanning algorithm: given a problem it produces a
// validated solution or reports infeasibility.
type Engine interface {
	// Name identifies the engine in reports ("exact", "milp-o", ...).
	Name() string
	// Solve computes a floorplan. Implementations must return solutions
	// that pass Solution.Validate against the problem.
	Solve(ctx context.Context, p *Problem, opts SolveOptions) (*Solution, error)
}
