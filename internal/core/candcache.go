package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/device"
	"repro/internal/obs"
)

// The candidate cache memoizes EnumerateCandidates/EnumerateAllCandidates
// per (device, requirements). Enumeration is pure and every engine needs
// the same lists, so racing N engines on one problem — the portfolio
// engine's normal mode — would otherwise redo the same sweep N times.
//
// Keys use device pointer identity: two Device values are only considered
// the same model when they are literally the same object, which is always
// true within one solve (engines share the Problem's device) and never
// produces stale hits for look-alike custom devices. This relies on
// device.Device being immutable after construction (which its API
// enforces — it exposes no mutators and documents its accessor slices as
// read-only): mutating a cached Device through unsafe means would serve
// stale candidate lists. It also means the cache retains a reference to
// every keyed Device (up to candCacheCap of them) for the process
// lifetime; per-request throwaway devices occupy slots without ever
// producing hits, which the FIFO eviction bounds but does not avoid —
// long-lived services should prefer the shared catalog devices.
//
// Entries carry a sync.Once so concurrent requesters of the same key
// share a single enumeration instead of duplicating the work and
// overwriting each other.

// candCacheCap bounds the memoized lists; beyond it the oldest keys are
// evicted FIFO. Each entry is one region shape on one device, so a
// service working a rotating set of designs stays comfortably under it.
const candCacheCap = 256

type candKey struct {
	dev *device.Device
	req string
	all bool
}

type candEntry struct {
	once  sync.Once
	cands []Candidate
}

type candCache struct {
	mu    sync.Mutex
	m     map[candKey]*candEntry
	order []candKey
}

var sharedCandCache = &candCache{m: make(map[candKey]*candEntry)}

// Process-wide hit/miss counters for the candidate cache, surfaced on the
// daemon's /metrics. A miss is a call that ran the enumeration; a hit is
// a call served from a memoized (or in-flight) entry.
var candCacheHits, candCacheMisses atomic.Int64

// CandCacheStats reports the process-wide candidate-cache hit/miss
// counts accumulated since start.
func CandCacheStats() (hits, misses int64) {
	return candCacheHits.Load(), candCacheMisses.Load()
}

// reqKey canonicalizes a Requirements map (class iteration order is
// random) into a deterministic cache key component.
func reqKey(req device.Requirements) string {
	classes := make([]string, 0, len(req))
	for cl, n := range req {
		if n == 0 {
			continue
		}
		classes = append(classes, fmt.Sprintf("%s=%d", cl, n))
	}
	sort.Strings(classes)
	return strings.Join(classes, ",")
}

func (c *candCache) entry(key candKey) *candEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		e = &candEntry{}
		c.m[key] = e
		c.order = append(c.order, key)
		for len(c.order) > candCacheCap {
			delete(c.m, c.order[0])
			c.order = c.order[1:]
		}
	}
	return e
}

func (c *candCache) get(d *device.Device, req device.Requirements, all bool, sp obs.Span) []Candidate {
	e := c.entry(candKey{dev: d, req: reqKey(req), all: all})
	ran := false
	e.once.Do(func() {
		ran = true
		if all {
			e.cands = EnumerateAllCandidates(d, req)
		} else {
			e.cands = EnumerateCandidates(d, req)
		}
	})
	sp = obs.OrNop(sp)
	if ran {
		candCacheMisses.Add(1)
		sp.Add(obs.CacheMisses, 1)
	} else {
		candCacheHits.Add(1)
		sp.Add(obs.CacheHits, 1)
	}
	return e.cands
}

// CachedCandidates is EnumerateCandidates memoized per (device,
// requirements). The returned slice is shared between callers and MUST be
// treated as read-only.
func CachedCandidates(d *device.Device, req device.Requirements) []Candidate {
	return sharedCandCache.get(d, req, false, nil)
}

// CachedAllCandidates is EnumerateAllCandidates memoized per (device,
// requirements). The returned slice is shared between callers and MUST be
// treated as read-only.
func CachedAllCandidates(d *device.Device, req device.Requirements) []Candidate {
	return sharedCandCache.get(d, req, true, nil)
}

// CachedCandidatesFor is CachedCandidates with the hit or miss also
// reported on the caller's telemetry span.
func CachedCandidatesFor(d *device.Device, req device.Requirements, sp obs.Span) []Candidate {
	return sharedCandCache.get(d, req, false, sp)
}

// CachedAllCandidatesFor is CachedAllCandidates with the hit or miss also
// reported on the caller's telemetry span.
func CachedAllCandidatesFor(d *device.Device, req device.Requirements, sp obs.Span) []Candidate {
	return sharedCandCache.get(d, req, true, sp)
}
