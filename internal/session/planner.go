package session

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/reconfig"
)

// plannedMove is one step of a defragmentation plan: move the module in
// region to target. Targets are chosen so that executing the plan in
// order is no-break: each target is fully free at its turn.
type plannedMove struct {
	region int
	target grid.Rect
}

// maybeDefrag runs a defragmentation cycle when fragmentation exceeds
// the threshold and the cooldown has elapsed. Callers hold m.mu.
func (m *Manager) maybeDefrag(seq int) *DefragReport {
	if m.cfg.FragThreshold < 0 || len(m.modules) == 0 {
		return nil
	}
	frag := m.free.Fragmentation()
	if frag <= m.cfg.FragThreshold {
		return nil
	}
	if m.lastDefrag != 0 && seq-m.lastDefrag < m.cfg.DefragCooldown {
		return nil
	}
	m.lastDefrag = seq

	plan, predicted := m.bestPlan()
	rep := &DefragReport{AtEvent: seq, Planned: len(plan), FragBefore: frag, FragAfter: frag}
	m.stats.DefragCycles++
	if len(plan) == 0 {
		return rep
	}
	// Abandon plans that do not actually reduce fragmentation — better
	// to stay put than to burn configuration-port time on a lateral move.
	if predicted >= frag {
		rep.Planned = 0
		return rep
	}

	moves := make([]reconfig.Move, 0, len(plan))
	for _, pm := range plan {
		slot, err := m.rcm.AddSlot(pm.region, pm.target)
		if err != nil {
			// The planner only emits compatible, placeable targets; a
			// failure here is an invariant violation — keep the device
			// consistent and report the cycle as not executed.
			return rep
		}
		moves = append(moves, reconfig.Move{Region: pm.region, Slot: slot})
	}
	sched, err := m.rcm.ExecuteSchedule(moves)
	m.stats.DefragMoves += sched.Executed
	m.stats.CorruptedFrames += sched.CorruptedFrames
	m.syncFreeSpace()
	if err != nil {
		// Partially executed: already synced; surface what ran.
		rep.Schedule = sched
		rep.Executed = sched.Executed > 0
		rep.FragAfter = m.free.Fragmentation()
		return rep
	}
	rep.Schedule = sched
	rep.Executed = true
	rep.FragAfter = m.free.Fragmentation()
	return rep
}

// bestPlan generates several candidate defragmentation plans, simulates
// the fragmentation each would leave, and returns the best one with its
// predicted fragmentation. Callers hold m.mu.
func (m *Manager) bestPlan() ([]plannedMove, float64) {
	var best []plannedMove
	bestFrag := 2.0 // above any real fragmentation
	for _, plan := range [][]plannedMove{
		m.planCompaction(lessXY),
		m.planCompaction(lessYX),
		m.planRepack(),
	} {
		if len(plan) == 0 {
			continue
		}
		if after := m.simulateFragmentation(plan); after < bestFrag {
			best, bestFrag = plan, after
		}
	}
	return best, bestFrag
}

// planCompaction computes a no-break compaction plan over the live
// modules: processing modules in packing order of their current areas,
// each is assigned the packing-minimal compatible placement that is
// disjoint from the targets of already-processed modules, from the
// current areas of yet-unprocessed modules, and from its own current
// area. A module whose best such placement is its current one stays. By
// construction, executing the returned moves in order touches only free
// tiles at every step.
//
// less orders placements by packing preference (lessXY packs leftward,
// lessYX downward); it also orders the modules processed.
func (m *Manager) planCompaction(less func(a, b grid.Rect) bool) []plannedMove {
	live := m.rcm.LiveAreas()
	regions := make([]int, 0, len(live))
	for ri := range live {
		regions = append(regions, ri)
	}
	sort.Slice(regions, func(i, j int) bool {
		a, b := live[regions[i]], live[regions[j]]
		if a != b {
			return less(a, b)
		}
		return regions[i] < regions[j]
	})

	var plan []plannedMove
	assigned := make([]grid.Rect, 0, len(regions)) // targets of processed modules
	for i, ri := range regions {
		cur := live[ri]
		best := cur
		for _, cand := range m.cfg.Device.CompatiblePlacements(cur) {
			if !less(cand, best) {
				continue
			}
			if cand != cur && cand.Overlaps(cur) {
				continue // make-before-break needs a disjoint target
			}
			if overlapsAny(cand, assigned) {
				continue
			}
			blocked := false
			for _, rj := range regions[i+1:] {
				if cand.Overlaps(live[rj]) {
					blocked = true
					break
				}
			}
			if !blocked {
				best = cand
			}
		}
		assigned = append(assigned, best)
		if best != cur {
			plan = append(plan, plannedMove{region: ri, target: best})
		}
	}
	return plan
}

// planRepack computes a global repack: modules (largest first) are
// re-placed bottom-left onto an empty board, each at its (y, x)-minimal
// compatible placement disjoint from the targets already assigned. The
// resulting layout usually beats sequential compaction, but its
// migration needs a no-break order, which may not exist (cyclic moves);
// then planRepack returns nil and the sequential plans stand.
func (m *Manager) planRepack() []plannedMove {
	live := m.rcm.LiveAreas()
	regions := make([]int, 0, len(live))
	for ri := range live {
		regions = append(regions, ri)
	}
	sort.Slice(regions, func(i, j int) bool {
		a, b := live[regions[i]], live[regions[j]]
		if a.Area() != b.Area() {
			return a.Area() > b.Area()
		}
		return regions[i] < regions[j]
	})

	targets := make(map[int]grid.Rect, len(regions))
	var assigned []grid.Rect
	for _, ri := range regions {
		cur := live[ri]
		best := grid.Rect{}
		found := false
		for _, cand := range m.cfg.Device.CompatiblePlacements(cur) {
			if overlapsAny(cand, assigned) {
				continue
			}
			if !found || lessYX(cand, best) {
				best, found = cand, true
			}
		}
		if !found {
			return nil // cannot even re-place; keep the sequential plans
		}
		targets[ri] = best
		assigned = append(assigned, best)
	}
	plan, ok := orderMoves(live, targets)
	if !ok {
		return nil
	}
	return plan
}

// lessXY orders rectangles by (x, y) — "pack leftward, then down".
func lessXY(a, b grid.Rect) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}

// lessYX orders rectangles by (y, x) — "pack downward, then left".
func lessYX(a, b grid.Rect) bool {
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	return a.X < b.X
}

func overlapsAny(r grid.Rect, rects []grid.Rect) bool {
	for _, o := range rects {
		if r.Overlaps(o) {
			return true
		}
	}
	return false
}

// simulateFragmentation computes the fragmentation of the layout the
// plan would produce, without touching the device.
func (m *Manager) simulateFragmentation(plan []plannedMove) float64 {
	final := m.rcm.LiveAreas()
	for _, pm := range plan {
		final[pm.region] = pm.target
	}
	rects := make([]grid.Rect, 0, len(final))
	for _, r := range final {
		rects = append(rects, r)
	}
	mask := m.cfg.Device.OccupancyMask(rects)
	free := m.cfg.Device.Width()*m.cfg.Device.Height() - mask.Count()
	if free == 0 {
		return 0
	}
	largest := 0
	for _, r := range mask.MaximalClearRects() {
		if a := r.Area(); a > largest {
			largest = a
		}
	}
	return 1 - float64(largest)/float64(free)
}

// syncFreeSpace rebuilds the free-space tracker from the reconfig
// manager's live areas — the ground truth after schedule execution.
func (m *Manager) syncFreeSpace() {
	fresh := NewFreeSpace(m.cfg.Device)
	for _, r := range m.rcm.LiveAreas() {
		// Live areas are disjoint legal placements; Insert cannot fail.
		_ = fresh.Insert(r)
	}
	m.free = fresh
}

// fallbackPlace handles an arrival no free rectangle fits: it asks the
// configured floorplanner engine for a fresh layout of all live modules
// plus the arrival, under a time budget. The layout is accepted only if
// every live module's new area is relocation-compatible with its current
// one (stored bitstreams only relocate between compatible areas) and the
// migration to it can be ordered no-break; then the migration executes
// and the arrival's area is returned.
func (m *Manager) fallbackPlace(ev Event) (grid.Rect, bool, string) {
	if m.cfg.Engine == nil {
		return grid.Rect{}, false, "no free rectangle fits and no fallback engine is configured"
	}

	names := make([]string, 0, len(m.modules))
	for name := range m.modules {
		names = append(names, name)
	}
	sort.Strings(names)
	p := &core.Problem{Device: m.cfg.Device}
	for _, name := range names {
		p.Regions = append(p.Regions, core.Region{Name: name, Req: m.modules[name].req})
	}
	p.Regions = append(p.Regions, core.Region{Name: ev.Name, Req: ev.Req})

	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.SolveBudget)
	defer cancel()
	sol, err := m.cfg.Engine.Solve(ctx, p, core.SolveOptions{TimeLimit: m.cfg.SolveBudget})
	if err != nil {
		return grid.Rect{}, false, fmt.Sprintf("fallback solve failed: %v", err)
	}

	// Relocatability gate: each live module must be able to reach its
	// solver target from where it runs now.
	targets := make(map[int]grid.Rect, len(names)) // region index -> target
	for i, name := range names {
		mod := m.modules[name]
		cur, _ := m.rcm.CurrentArea(mod.region)
		tgt := sol.Regions[i]
		if !m.cfg.Device.Compatible(cur, tgt) {
			return grid.Rect{}, false, fmt.Sprintf(
				"fallback layout moves %q to an incompatible area %v", name, tgt)
		}
		targets[mod.region] = tgt
	}
	arrivalRect := sol.Regions[len(names)]

	order, ok := orderMoves(m.rcm.LiveAreas(), targets)
	if !ok {
		return grid.Rect{}, false, "fallback migration has no no-break order (cyclic moves)"
	}
	moves := make([]reconfig.Move, 0, len(order))
	for _, pm := range order {
		slot, err := m.rcm.AddSlot(pm.region, pm.target)
		if err != nil {
			return grid.Rect{}, false, fmt.Sprintf("fallback migration: %v", err)
		}
		moves = append(moves, reconfig.Move{Region: pm.region, Slot: slot})
	}
	sched, err := m.rcm.ExecuteSchedule(moves)
	m.stats.CorruptedFrames += sched.CorruptedFrames
	m.syncFreeSpace()
	if err != nil {
		return grid.Rect{}, false, fmt.Sprintf("fallback migration failed mid-schedule: %v", err)
	}
	return arrivalRect, true, ""
}

// orderMoves greedily orders region moves so each executes onto free
// tiles: repeatedly pick a pending move whose target is disjoint from
// every other region's current area and from the mover's own. Live
// layouts are rectangle-disjoint, so any executable sequence exists iff
// the greedy one completes; a leftover pending set is a dependency cycle
// (breaking it would need scratch space, which this planner does not
// use). Moves whose target equals the current area are dropped.
func orderMoves(current map[int]grid.Rect, targets map[int]grid.Rect) ([]plannedMove, bool) {
	pos := make(map[int]grid.Rect, len(current))
	for ri, r := range current {
		pos[ri] = r
	}
	pending := make(map[int]grid.Rect, len(targets))
	for ri, t := range targets {
		if t != pos[ri] {
			pending[ri] = t
		}
	}
	var order []plannedMove
	for len(pending) > 0 {
		progressed := false
		// Deterministic pick order.
		ris := make([]int, 0, len(pending))
		for ri := range pending {
			ris = append(ris, ri)
		}
		sort.Ints(ris)
		for _, ri := range ris {
			t := pending[ri]
			blocked := t.Overlaps(pos[ri]) // make-before-break self-overlap
			if !blocked {
				for rj, r := range pos {
					if rj != ri && t.Overlaps(r) {
						blocked = true
						break
					}
				}
			}
			if blocked {
				continue
			}
			order = append(order, plannedMove{region: ri, target: t})
			pos[ri] = t
			delete(pending, ri)
			progressed = true
		}
		if !progressed {
			return nil, false
		}
	}
	return order, true
}
