package session

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/device"
	"repro/internal/grid"
	"repro/internal/heuristic"
	"repro/internal/reconfig"
)

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.Device == nil {
		cfg.Device = device.VirtexFX70T()
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestArrivalDepartureLifecycle(t *testing.T) {
	m := newTestManager(t, Config{FragThreshold: -1})

	res, err := m.Apply(Event{Kind: Arrival, Name: "a", Req: device.Requirements{device.ClassCLB: 6}, Mode: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Placed || res.Fallback || res.Rejected {
		t.Fatalf("arrival result = %+v", res)
	}
	if res.Rect.Empty() {
		t.Fatal("placed module has empty rect")
	}
	if res.Occupancy <= 0 {
		t.Fatalf("occupancy = %v", res.Occupancy)
	}

	// Duplicate live name is a malformed event.
	if _, err := m.Apply(Event{Kind: Arrival, Name: "a", Req: device.Requirements{device.ClassCLB: 2}}); err == nil {
		t.Fatal("duplicate arrival accepted")
	}

	res, err = m.Apply(Event{Kind: Departure, Name: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected {
		t.Fatalf("departure result = %+v", res)
	}
	if got := m.Snapshot(); len(got.Live) != 0 || got.FreeTiles != m.cfg.Device.UsableTiles() {
		t.Fatalf("after departure: %+v", got)
	}

	// Departing a never-placed module is tolerated (rejected, not error).
	res, err = m.Apply(Event{Kind: Departure, Name: "ghost"})
	if err != nil || !res.Rejected {
		t.Fatalf("ghost departure = (%+v, %v)", res, err)
	}
}

func TestBestFitPrefersTightHoles(t *testing.T) {
	m := newTestManager(t, Config{FragThreshold: -1})
	// Wall off a snug 4x2 hole at (3,0)..(6,1) — everything left of it,
	// below it, and the column to its right is occupied — leaving the
	// rest of the device as one large free expanse. A tiny arrival
	// should land in the snug hole, not carve up the expanse.
	for i, r := range []grid.Rect{
		{X: 0, Y: 0, W: 3, H: 8}, // left wall
		{X: 3, Y: 2, W: 4, H: 6}, // floor under the hole
		{X: 7, Y: 0, W: 1, H: 8}, // right wall
	} {
		if err := m.free.Insert(r); err != nil {
			t.Fatalf("blocker %d: %v", i, err)
		}
	}
	res, err := m.Apply(Event{Kind: Arrival, Name: "tiny", Req: device.Requirements{device.ClassCLB: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Placed {
		t.Fatalf("tiny not placed: %+v", res)
	}
	hole := grid.Rect{X: 3, Y: 0, W: 4, H: 2}
	if !hole.ContainsRect(res.Rect) {
		t.Fatalf("tiny placed at %v, want inside the snug hole %v", res.Rect, hole)
	}
}

// TestConcurrentIngestion hammers one session from several goroutines
// with disjoint module namespaces. Run under -race this checks the
// manager's serialization; the final snapshot must balance.
func TestConcurrentIngestion(t *testing.T) {
	m := newTestManager(t, Config{FragThreshold: -1})
	const workers = 4
	const rounds = 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				name := fmt.Sprintf("w%d-%d", w, i)
				res, err := m.Apply(Event{
					Kind: Arrival, Name: name,
					Req:  device.Requirements{device.ClassCLB: 2 + w},
					Mode: int64(w*1000 + i),
				})
				if err != nil {
					t.Errorf("worker %d arrival %d: %v", w, i, err)
					return
				}
				_ = m.Snapshot()
				if res.Placed {
					if _, err := m.Apply(Event{Kind: Departure, Name: name}); err != nil {
						t.Errorf("worker %d departure %d: %v", w, i, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	snap := m.Snapshot()
	if len(snap.Live) != 0 {
		t.Fatalf("live modules left: %+v", snap.Live)
	}
	if snap.FreeTiles != m.cfg.Device.UsableTiles() {
		t.Fatalf("free tiles = %d, want %d", snap.FreeTiles, m.cfg.Device.UsableTiles())
	}
	if snap.Stats.Events != workers*rounds+snap.Stats.Departures {
		t.Fatalf("event accounting off: %+v", snap.Stats)
	}
}

// TestCompactionPlanExecutable is the planner property test: for many
// random live layouts, every schedule the compaction planner emits must
// execute move-by-move on a fresh reconfig.Manager — each move onto
// currently-free tiles, never overlapping a live region.
func TestCompactionPlanExecutable(t *testing.T) {
	d := device.VirtexFX70T()
	rng := rand.New(rand.NewSource(99))

	for trial := 0; trial < 60; trial++ {
		m := newTestManager(t, Config{Device: d, FragThreshold: -1})
		// Random sparse layout via the session itself.
		n := 2 + rng.Intn(6)
		for i := 0; i < n; i++ {
			req := device.Requirements{device.ClassCLB: 2 + rng.Intn(10)}
			if rng.Intn(3) == 0 {
				req[device.ClassBRAM] = 1
			}
			_, err := m.Apply(Event{Kind: Arrival, Name: fmt.Sprintf("m%d", i), Req: req, Mode: int64(i)})
			if err != nil {
				t.Fatal(err)
			}
		}
		// Depart a random subset to shatter the free space.
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				if _, err := m.Apply(Event{Kind: Departure, Name: fmt.Sprintf("m%d", i)}); err != nil {
					t.Fatal(err)
				}
			}
		}

		plans := map[string][]plannedMove{
			"compact-xy": m.planCompaction(lessXY),
			"compact-yx": m.planCompaction(lessYX),
			"repack":     m.planRepack(),
		}
		for variant, plan := range plans {
			if len(plan) == 0 {
				continue
			}
			// Replay on a fresh manager holding the same live layout.
			fresh := reconfig.NewDynamic(d, reconfig.DefaultFrameTime)
			idx := map[int]int{} // session region -> fresh region
			for ri, rect := range m.rcm.LiveAreas() {
				fi, err := fresh.AddRegion(fmt.Sprintf("r%d", ri), rect)
				if err != nil {
					t.Fatalf("trial %d %s: AddRegion: %v", trial, variant, err)
				}
				if err := fresh.Configure(fi, int64(ri), 0); err != nil {
					t.Fatalf("trial %d %s: Configure: %v", trial, variant, err)
				}
				idx[ri] = fi
			}
			moves := make([]reconfig.Move, 0, len(plan))
			for _, pm := range plan {
				slot, err := fresh.AddSlot(idx[pm.region], pm.target)
				if err != nil {
					t.Fatalf("trial %d %s: planner emitted unusable target %v: %v", trial, variant, pm.target, err)
				}
				moves = append(moves, reconfig.Move{Region: idx[pm.region], Slot: slot})
			}
			rep, err := fresh.ExecuteSchedule(moves)
			if err != nil {
				t.Fatalf("trial %d %s: schedule not executable: %v (after %d moves)", trial, variant, err, rep.Executed)
			}
			if rep.CorruptedFrames != 0 {
				t.Fatalf("trial %d %s: %d corrupted frames", trial, variant, rep.CorruptedFrames)
			}
		}
	}
}

func TestDefragTriggersAndImproves(t *testing.T) {
	// K160T: no forbidden blocks, so fragmentation starts at 0 and a
	// modest threshold is reachable again after compaction.
	m := newTestManager(t, Config{Device: device.Kintex7K160T(), FragThreshold: 0.3, DefragCooldown: 1})
	// Fill most of the device with sizeable modules, then remove every
	// other one: the free space becomes a comb of scattered holes.
	var placed []string
	for i := 0; i < 18; i++ {
		name := fmt.Sprintf("comb-%d", i)
		res, err := m.Apply(Event{Kind: Arrival, Name: name, Req: device.Requirements{device.ClassCLB: 40}, Mode: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Placed {
			placed = append(placed, name)
		}
	}
	sawDefrag := false
	for i := 0; i < len(placed); i += 2 {
		res, err := m.Apply(Event{Kind: Departure, Name: placed[i]})
		if err != nil {
			t.Fatal(err)
		}
		if res.Defrag != nil && res.Defrag.Executed {
			sawDefrag = true
			if res.Defrag.FragAfter >= res.Defrag.FragBefore {
				t.Fatalf("defrag did not improve: %+v", res.Defrag)
			}
			if res.Defrag.Schedule.CorruptedFrames != 0 {
				t.Fatalf("corrupted frames: %+v", res.Defrag.Schedule)
			}
		}
	}
	if !sawDefrag {
		// Force one more fragmenting event sequence; if the layout never
		// crossed the threshold this test's comb needs to be denser —
		// fail loudly so it gets fixed rather than silently passing.
		t.Fatalf("no defrag cycle executed; final frag = %v", m.Fragmentation())
	}
	if m.Stats().DefragCycles == 0 {
		t.Fatal("stats recorded no defrag cycles")
	}
}

func TestFallbackPlacement(t *testing.T) {
	m := newTestManager(t, Config{
		FragThreshold: -1,
		Engine:        &heuristic.Constructive{},
	})
	// Fill the device with medium modules until greedy placement fails,
	// then check the fallback either places or rejects cleanly.
	var lastRes *EventResult
	for i := 0; i < 40; i++ {
		res, err := m.Apply(Event{
			Kind: Arrival, Name: fmt.Sprintf("fill-%d", i),
			Req: device.Requirements{device.ClassCLB: 20}, Mode: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		lastRes = res
		if res.Fallback || res.Rejected {
			break
		}
	}
	if lastRes == nil || (!lastRes.Fallback && !lastRes.Rejected) {
		t.Fatalf("never exhausted greedy placement: %+v", m.Stats())
	}
	if lastRes.Fallback && !lastRes.Placed {
		t.Fatalf("fallback result inconsistent: %+v", lastRes)
	}
	// Whatever happened, the session must still be internally consistent.
	snap := m.Snapshot()
	occupied := 0
	for _, mod := range snap.Live {
		occupied += mod.Rect.Area()
	}
	if snap.FreeTiles != m.cfg.Device.UsableTiles()-occupied {
		t.Fatalf("free-space accounting off: %+v", snap)
	}
	if snap.Stats.CorruptedFrames != 0 {
		t.Fatalf("corrupted frames: %+v", snap.Stats)
	}
}

func TestGenerateWorkloadDeterministic(t *testing.T) {
	cfg := WorkloadConfig{Seed: 11, Events: 120, Intensity: 0.55}
	a := GenerateWorkload(cfg)
	b := GenerateWorkload(cfg)
	if len(a) != 120 || len(b) != 120 {
		t.Fatalf("lengths = %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Name != b[i].Name || a[i].Mode != b[i].Mode {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	arrivals := 0
	for _, ev := range a {
		if ev.Kind == Arrival {
			arrivals++
		}
	}
	if arrivals == 0 || arrivals == len(a) {
		t.Fatalf("degenerate workload: %d arrivals of %d", arrivals, len(a))
	}
}

func TestWorkloadReplay(t *testing.T) {
	m := newTestManager(t, Config{FragThreshold: 0.45, DefragCooldown: 4})
	events := GenerateWorkload(WorkloadConfig{Seed: 3, Events: 150, Intensity: 0.6})
	for i, ev := range events {
		if _, err := m.Apply(ev); err != nil {
			t.Fatalf("event %d (%+v): %v", i, ev, err)
		}
	}
	st := m.Stats()
	if st.Placed == 0 {
		t.Fatal("replay placed nothing")
	}
	if st.CorruptedFrames != 0 {
		t.Fatalf("corrupted frames: %+v", st)
	}
}
