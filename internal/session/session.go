// Package session is the online side of the reproduced floorplanner: a
// stateful placement service over a live device. Where internal/core
// solves one offline instance, a session.Manager ingests a stream of
// module arrivals and departures, maintains the device's free space as a
// set of maximal empty rectangles, places arrivals best-fit into that
// free space (falling back to a budgeted floorplanner solve when greedy
// placement fails), and — when free-space fragmentation crosses a
// threshold — plans and executes a no-break relocation schedule that
// compacts the live modules, every move flowing through the
// bitstream/reconfig substrate and charged realistic frame-write time.
package session

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/grid"
	"repro/internal/reconfig"
)

// Defaults for Config's zero values.
//
// Note the fragmentation baseline: devices with forbidden blocks (the
// FX70T's PowerPC) measure nonzero fragmentation even when empty,
// because the block splits the free space (the empty FX70T sits at
// ~0.41). Thresholds must be set above the device's baseline or every
// cooldown window triggers a futile defragmentation attempt.
const (
	DefaultFragThreshold  = 0.55
	DefaultDefragCooldown = 8
	DefaultSolveBudget    = 2 * time.Second
	// DefaultSnapshotEvery is how many WAL records accumulate before the
	// session compacts them into a snapshot.
	DefaultSnapshotEvery = 64
	// idempotencyWindow bounds how many recent client-sequenced results a
	// session retains for duplicate detection.
	idempotencyWindow = 128
)

// Config parameterizes a session.
type Config struct {
	// Device is the target FPGA (required).
	Device *device.Device
	// Engine is the floorplanner used as placement fallback when no free
	// rectangle fits an arrival. nil disables the fallback: such
	// arrivals are rejected outright.
	Engine core.Engine
	// FrameTime is the simulated configuration-port time per frame
	// (0 = reconfig.DefaultFrameTime).
	FrameTime time.Duration
	// FragThreshold triggers defragmentation when the post-event
	// fragmentation exceeds it (0 = DefaultFragThreshold; negative
	// disables defragmentation).
	FragThreshold float64
	// DefragCooldown is the minimum number of events between
	// defragmentation attempts, preventing thrash when compaction cannot
	// push fragmentation below the threshold (0 = DefaultDefragCooldown).
	DefragCooldown int
	// SolveBudget bounds each fallback floorplanner solve
	// (0 = DefaultSolveBudget).
	SolveBudget time.Duration
	// Store, when non-nil, makes the session durable: every applied
	// event is WAL-appended before its result is returned, and every
	// SnapshotEvery records the WAL is compacted into a snapshot.
	Store *Store
	// SnapshotEvery is the WAL-records-per-snapshot cadence
	// (0 = DefaultSnapshotEvery). Only meaningful with a Store.
	SnapshotEvery int
	// Meta identifies the session in its durable files (ignored without
	// a Store).
	Meta Meta
	// Faults, when non-nil, injects configuration-port faults into every
	// frame write the session performs (see reconfig.FaultPlan).
	Faults *reconfig.FaultPlan
}

func (c Config) withDefaults() (Config, error) {
	if c.Device == nil {
		return c, fmt.Errorf("session: config has no device")
	}
	if c.FrameTime <= 0 {
		c.FrameTime = reconfig.DefaultFrameTime
	}
	if c.FragThreshold == 0 {
		c.FragThreshold = DefaultFragThreshold
	}
	if c.DefragCooldown <= 0 {
		c.DefragCooldown = DefaultDefragCooldown
	}
	if c.SolveBudget <= 0 {
		c.SolveBudget = DefaultSolveBudget
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = DefaultSnapshotEvery
	}
	return c, nil
}

// EventKind discriminates session events.
type EventKind string

const (
	// Arrival asks the session to place and configure a new module.
	Arrival EventKind = "arrival"
	// Departure retires a live module and frees its area.
	Departure EventKind = "departure"
)

// Event is one step of an online workload.
type Event struct {
	// Kind is Arrival or Departure.
	Kind EventKind `json:"kind"`
	// Name identifies the module; unique among live modules.
	Name string `json:"name"`
	// Req is the arriving module's resource requirement (arrivals only).
	Req device.Requirements `json:"req,omitempty"`
	// Mode seeds the module's bitstream content (arrivals only).
	Mode int64 `json:"mode,omitempty"`
	// ClientSeq, when positive, makes the event idempotent: the client
	// numbers its events per session, strictly increasing. A resubmission
	// of an already-applied ClientSeq (a retry after a lost ack) returns
	// the recorded result with Duplicate set instead of double-applying.
	ClientSeq int64 `json:"client_seq,omitempty"`
}

// EventResult reports what one event did to the session.
type EventResult struct {
	// Seq is the 1-based event sequence number.
	Seq int `json:"seq"`
	// Event echoes the applied event.
	Event Event `json:"event"`
	// Placed reports whether an arrival got an area (true for every
	// successful departure's module too, vacuously false otherwise).
	Placed bool `json:"placed"`
	// Fallback reports the arrival was placed by the budgeted
	// floorplanner solve rather than greedy free-space placement.
	Fallback bool `json:"fallback"`
	// Rejected reports an arrival the session could not place.
	Rejected bool `json:"rejected"`
	// Reason explains a rejection.
	Reason string `json:"reason,omitempty"`
	// Rect is the area assigned to an arrival (valid when Placed).
	Rect grid.Rect `json:"rect"`
	// Fragmentation is the free-space fragmentation after the event
	// (and after any defragmentation it triggered).
	Fragmentation float64 `json:"fragmentation"`
	// Occupancy is the fraction of usable tiles occupied after the event.
	Occupancy float64 `json:"occupancy"`
	// Defrag is non-nil when the event triggered a defragmentation
	// cycle (executed or abandoned — see its Executed field).
	Defrag *DefragReport `json:"defrag,omitempty"`
	// Duplicate reports that this result was recorded by an earlier
	// application of the same ClientSeq and is being replayed to a
	// retrying client — nothing was re-applied.
	Duplicate bool `json:"duplicate,omitempty"`
}

// DefragReport describes one defragmentation cycle.
type DefragReport struct {
	// AtEvent is the sequence number of the triggering event.
	AtEvent int `json:"at_event"`
	// Planned is the number of moves the compaction planner emitted.
	Planned int `json:"planned"`
	// Executed reports whether the schedule ran (a plan that does not
	// reduce fragmentation is abandoned).
	Executed bool `json:"executed"`
	// FragBefore and FragAfter bracket the cycle.
	FragBefore float64 `json:"frag_before"`
	FragAfter  float64 `json:"frag_after"`
	// Schedule accounts for the executed moves (nil when not executed).
	Schedule *reconfig.ScheduleReport `json:"schedule,omitempty"`
}

// Stats accumulates session activity.
type Stats struct {
	Events         int `json:"events"`
	Arrivals       int `json:"arrivals"`
	Departures     int `json:"departures"`
	Placed         int `json:"placed"`
	PlacedFallback int `json:"placed_fallback"`
	Rejected       int `json:"rejected"`
	DefragCycles   int `json:"defrag_cycles"`
	DefragMoves    int `json:"defrag_moves"`
	// CorruptedFrames sums readback mismatches across every executed
	// relocation schedule (0 on a correct run).
	CorruptedFrames int `json:"corrupted_frames"`
	// WALRecords counts events appended to the write-ahead log (0 for
	// non-durable sessions).
	WALRecords int `json:"wal_records,omitempty"`
	// Snapshots counts snapshot compactions written (0 for non-durable
	// sessions).
	Snapshots int `json:"snapshots,omitempty"`
}

// ModuleInfo describes one live module in a Snapshot.
type ModuleInfo struct {
	Name string    `json:"name"`
	Rect grid.Rect `json:"rect"`
	// Fallback records that the module's initial placement came from the
	// floorplanner fallback.
	Fallback bool `json:"fallback"`
}

// Snapshot is a point-in-time view of the session.
type Snapshot struct {
	Device        string         `json:"device"`
	Live          []ModuleInfo   `json:"live"`
	Fragmentation float64        `json:"fragmentation"`
	Occupancy     float64        `json:"occupancy"`
	FreeTiles     int            `json:"free_tiles"`
	Stats         Stats          `json:"stats"`
	Reconfig      reconfig.Stats `json:"reconfig"`
}

// module is the session's record of a live module.
type module struct {
	name     string
	req      device.Requirements
	mode     int64
	region   int // reconfig.Manager region index
	fallback bool
}

// Manager is a stateful online-placement session. It is safe for
// concurrent use; events are serialized internally.
type Manager struct {
	mu         sync.Mutex
	cfg        Config
	rcm        *reconfig.Manager
	free       *FreeSpace
	modules    map[string]*module
	stats      Stats
	lastDefrag int // event seq of the last defrag attempt, 0 if never

	// Durability (nil store = in-memory session).
	store         *Store
	sinceSnapshot int // WAL records since the last snapshot
	// Idempotency: highest ClientSeq applied, and a bounded window of
	// recent client-sequenced results for duplicate replay.
	lastClientSeq int64
	window        []EventResult
}

// New builds an empty session over cfg.Device. With a cfg.Store, an
// initial snapshot is written immediately, so a session that crashes
// before its first event still recovers (empty, with its Meta).
func New(cfg Config) (*Manager, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:     cfg,
		rcm:     reconfig.NewDynamic(cfg.Device, cfg.FrameTime),
		free:    NewFreeSpace(cfg.Device),
		modules: map[string]*module{},
		store:   cfg.Store,
	}
	m.rcm.SetFaultPlan(cfg.Faults)
	if m.store != nil {
		if err := m.snapshotLocked(); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Apply ingests one event and returns what it did. Errors are reserved
// for malformed events and internal invariant violations; an arrival the
// session cannot place is a non-error result with Rejected set.
//
// For durable sessions the result is acknowledged only after its WAL
// record is on stable storage; an append failure is an error and the
// event does not count as applied (the caller must retry — with a
// ClientSeq, safely).
func (m *Manager) Apply(ev Event) (*EventResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()

	if ev.ClientSeq > 0 && ev.ClientSeq <= m.lastClientSeq {
		for i := len(m.window) - 1; i >= 0; i-- {
			if m.window[i].Event.ClientSeq == ev.ClientSeq {
				dup := m.window[i]
				dup.Duplicate = true
				return &dup, nil
			}
		}
		return nil, fmt.Errorf("session: client seq %d was already applied but has aged out of the %d-result idempotency window",
			ev.ClientSeq, idempotencyWindow)
	}

	before := m.layoutLocked()
	m.stats.Events++
	res := &EventResult{Seq: m.stats.Events, Event: ev}
	var err error
	switch ev.Kind {
	case Arrival:
		err = m.applyArrival(ev, res)
	case Departure:
		err = m.applyDeparture(ev, res)
	default:
		err = fmt.Errorf("session: unknown event kind %q", ev.Kind)
	}
	if err != nil {
		return nil, err
	}

	if d := m.maybeDefrag(res.Seq); d != nil {
		res.Defrag = d
	}
	res.Fragmentation = m.free.Fragmentation()
	res.Occupancy = m.free.Occupancy()

	if ev.ClientSeq > 0 {
		m.lastClientSeq = ev.ClientSeq
		m.window = append(m.window, *res)
		if len(m.window) > idempotencyWindow {
			m.window = m.window[len(m.window)-idempotencyWindow:]
		}
	}
	if m.store != nil {
		m.stats.WALRecords++
		rec := &walRecord{
			Result:     *res,
			Ops:        diffLayout(before, m.layoutLocked()),
			LastDefrag: m.lastDefrag,
			Stats:      m.stats,
			Reconfig:   m.rcm.Stats(),
		}
		if err := m.store.AppendEvent(rec); err != nil {
			return nil, err
		}
		m.sinceSnapshot++
		if m.sinceSnapshot >= m.cfg.SnapshotEvery {
			// A failed compaction is not fatal: the WAL still holds every
			// record, so durability is intact; the next event retries.
			_ = m.snapshotLocked()
		}
	}
	return res, nil
}

// layoutLocked captures the live layout keyed by module name. Callers
// hold m.mu.
func (m *Manager) layoutLocked() map[string]persistedModule {
	out := make(map[string]persistedModule, len(m.modules))
	for name, mod := range m.modules {
		rect, _ := m.rcm.CurrentArea(mod.region)
		out[name] = persistedModule{
			Name: name, Rect: rect, Mode: mod.mode, Req: mod.req, Fallback: mod.fallback,
		}
	}
	return out
}

// diffLayout expresses after-vs-before as layout ops: removes, then
// moves, then places, each name-sorted for deterministic records.
func diffLayout(before, after map[string]persistedModule) []layoutOp {
	var ops []layoutOp
	for _, name := range sortedKeys(before) {
		if _, still := after[name]; !still {
			ops = append(ops, layoutOp{Op: "remove", Module: persistedModule{Name: name}})
		}
	}
	for _, name := range sortedKeys(after) {
		cur := after[name]
		prev, was := before[name]
		switch {
		case !was:
			ops = append(ops, layoutOp{Op: "place", Module: cur})
		case prev.Rect != cur.Rect:
			ops = append(ops, layoutOp{Op: "move", Module: persistedModule{Name: name, Rect: cur.Rect}})
		}
	}
	return ops
}

func sortedKeys(m map[string]persistedModule) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// snapshotLocked compacts the session's durable state: persists a full
// snapshot and truncates the WAL. Callers hold m.mu (or own m
// exclusively, as in New and Restore).
func (m *Manager) snapshotLocked() error {
	m.stats.Snapshots++
	state := &persistedState{
		Meta:          m.cfg.Meta,
		LastDefrag:    m.lastDefrag,
		LastClientSeq: m.lastClientSeq,
		Window:        append([]EventResult(nil), m.window...),
		Stats:         m.stats,
		Reconfig:      m.rcm.Stats(),
	}
	layout := m.layoutLocked()
	for _, name := range sortedKeys(layout) {
		state.Modules = append(state.Modules, layout[name])
	}
	if err := m.store.WriteSnapshot(state); err != nil {
		m.stats.Snapshots--
		return err
	}
	m.sinceSnapshot = 0
	return nil
}

// Close flushes a final snapshot (durable sessions) and closes the
// store. The manager must not be used afterwards.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.store == nil {
		return nil
	}
	err := m.snapshotLocked()
	if cerr := m.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// Discard closes the store and deletes the session's durable files, so
// a deleted session cannot be resurrected by replay. In-memory sessions
// discard trivially.
func (m *Manager) Discard() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.store == nil {
		return nil
	}
	return m.store.Purge()
}

// FrameDigest hashes the full configuration memory under the session —
// the frame-for-frame state equality check recovery tests rely on.
func (m *Manager) FrameDigest() uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rcm.FrameDigest()
}

func (m *Manager) applyArrival(ev Event, res *EventResult) error {
	m.stats.Arrivals++
	if ev.Name == "" {
		return fmt.Errorf("session: arrival has no name")
	}
	if _, live := m.modules[ev.Name]; live {
		return fmt.Errorf("session: module %q is already live", ev.Name)
	}
	if ev.Req.IsZero() {
		return fmt.Errorf("session: arrival %q requires no resources", ev.Name)
	}

	rect, ok := m.bestFit(ev.Req)
	if ok {
		if err := m.admit(ev, rect, false, res); err != nil {
			return err
		}
		return nil
	}

	rect, ok, reason := m.fallbackPlace(ev)
	if !ok {
		m.stats.Rejected++
		res.Rejected = true
		res.Reason = reason
		return nil
	}
	return m.admit(ev, rect, true, res)
}

// admit registers and configures an arrival at rect.
func (m *Manager) admit(ev Event, rect grid.Rect, fallback bool, res *EventResult) error {
	ri, err := m.rcm.AddRegion(ev.Name, rect)
	if err != nil {
		return fmt.Errorf("session: admit %q: %w", ev.Name, err)
	}
	if err := m.rcm.Configure(ri, ev.Mode, 0); err != nil {
		if errors.Is(err, reconfig.ErrFaultInjected) {
			// The retry budget ran out loading this module; the loader
			// already unloaded the partial task, so retire the region
			// and report a rejection — nothing is stranded and the
			// client can resubmit.
			_ = m.rcm.RemoveRegion(ri)
			m.stats.Rejected++
			res.Rejected = true
			res.Reason = fmt.Sprintf("reconfiguration failed: %v", err)
			return nil
		}
		return fmt.Errorf("session: admit %q: %w", ev.Name, err)
	}
	if err := m.free.Insert(rect); err != nil {
		return err
	}
	m.modules[ev.Name] = &module{
		name: ev.Name, req: ev.Req, mode: ev.Mode, region: ri, fallback: fallback,
	}
	m.stats.Placed++
	if fallback {
		m.stats.PlacedFallback++
	}
	res.Placed = true
	res.Fallback = fallback
	res.Rect = rect
	return nil
}

// bestFit picks the placement for an arrival greedily: among the
// width-minimal candidate rectangles that lie entirely on free tiles,
// minimize (wasted frames, best-fit slack) where slack is the smallest
// maximal-empty-rectangle the candidate fits in minus the candidate —
// i.e. prefer tight resource fits, and among those, fill small holes
// before carving up large ones.
func (m *Manager) bestFit(req device.Requirements) (grid.Rect, bool) {
	cands := core.CachedCandidates(m.cfg.Device, req)
	mers := m.free.MERs()
	best := grid.Rect{}
	bestWaste, bestSlack := 0, 0
	found := false
	for _, c := range cands {
		if found && c.Waste > bestWaste {
			break // candidates are sorted by waste; no better fit follows
		}
		if !m.free.Fits(c.Rect) {
			continue
		}
		slack := bestFitSlack(mers, c.Rect)
		if !found || slack < bestSlack {
			best, bestWaste, bestSlack, found = c.Rect, c.Waste, slack, true
		}
	}
	return best, found
}

// bestFitSlack returns the smallest containing MER's area minus the
// rectangle's own. Every rectangle on free tiles is contained in at
// least one MER.
func bestFitSlack(mers []grid.Rect, r grid.Rect) int {
	slack := -1
	for _, mer := range mers {
		if !mer.ContainsRect(r) {
			continue
		}
		if s := mer.Area() - r.Area(); slack < 0 || s < slack {
			slack = s
		}
	}
	return slack
}

func (m *Manager) applyDeparture(ev Event, res *EventResult) error {
	m.stats.Departures++
	mod, live := m.modules[ev.Name]
	if !live {
		// Not an error: in a replayed stream the module's arrival may
		// have been rejected, so there is nothing to retire.
		res.Rejected = true
		res.Reason = fmt.Sprintf("module %q is not live", ev.Name)
		return nil
	}
	rect, ok := m.rcm.CurrentArea(mod.region)
	if !ok {
		return fmt.Errorf("session: module %q has no live area", ev.Name)
	}
	if err := m.rcm.RemoveRegion(mod.region); err != nil {
		return fmt.Errorf("session: depart %q: %w", ev.Name, err)
	}
	m.free.Remove(rect)
	delete(m.modules, ev.Name)
	return nil
}

// Snapshot returns the current session state.
func (m *Manager) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := Snapshot{
		Device:        m.cfg.Device.Name(),
		Fragmentation: m.free.Fragmentation(),
		Occupancy:     m.free.Occupancy(),
		FreeTiles:     m.free.FreeTiles(),
		Stats:         m.stats,
		Reconfig:      m.rcm.Stats(),
	}
	for _, mod := range m.modules {
		rect, _ := m.rcm.CurrentArea(mod.region)
		snap.Live = append(snap.Live, ModuleInfo{Name: mod.name, Rect: rect, Fallback: mod.fallback})
	}
	sort.Slice(snap.Live, func(i, j int) bool { return snap.Live[i].Name < snap.Live[j].Name })
	return snap
}

// Stats returns the accumulated counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// ReconfigStats returns the underlying reconfig manager's counters —
// the cheap accessor batch-delta accounting needs (Snapshot builds the
// whole live list).
func (m *Manager) ReconfigStats() reconfig.Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rcm.Stats()
}

// Fragmentation returns the current free-space fragmentation.
func (m *Manager) Fragmentation() float64 { return m.free.Fragmentation() }
