// Package session is the online side of the reproduced floorplanner: a
// stateful placement service over a live device. Where internal/core
// solves one offline instance, a session.Manager ingests a stream of
// module arrivals and departures, maintains the device's free space as a
// set of maximal empty rectangles, places arrivals best-fit into that
// free space (falling back to a budgeted floorplanner solve when greedy
// placement fails), and — when free-space fragmentation crosses a
// threshold — plans and executes a no-break relocation schedule that
// compacts the live modules, every move flowing through the
// bitstream/reconfig substrate and charged realistic frame-write time.
package session

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/grid"
	"repro/internal/reconfig"
)

// Defaults for Config's zero values.
//
// Note the fragmentation baseline: devices with forbidden blocks (the
// FX70T's PowerPC) measure nonzero fragmentation even when empty,
// because the block splits the free space (the empty FX70T sits at
// ~0.41). Thresholds must be set above the device's baseline or every
// cooldown window triggers a futile defragmentation attempt.
const (
	DefaultFragThreshold  = 0.55
	DefaultDefragCooldown = 8
	DefaultSolveBudget    = 2 * time.Second
)

// Config parameterizes a session.
type Config struct {
	// Device is the target FPGA (required).
	Device *device.Device
	// Engine is the floorplanner used as placement fallback when no free
	// rectangle fits an arrival. nil disables the fallback: such
	// arrivals are rejected outright.
	Engine core.Engine
	// FrameTime is the simulated configuration-port time per frame
	// (0 = reconfig.DefaultFrameTime).
	FrameTime time.Duration
	// FragThreshold triggers defragmentation when the post-event
	// fragmentation exceeds it (0 = DefaultFragThreshold; negative
	// disables defragmentation).
	FragThreshold float64
	// DefragCooldown is the minimum number of events between
	// defragmentation attempts, preventing thrash when compaction cannot
	// push fragmentation below the threshold (0 = DefaultDefragCooldown).
	DefragCooldown int
	// SolveBudget bounds each fallback floorplanner solve
	// (0 = DefaultSolveBudget).
	SolveBudget time.Duration
}

func (c Config) withDefaults() (Config, error) {
	if c.Device == nil {
		return c, fmt.Errorf("session: config has no device")
	}
	if c.FrameTime <= 0 {
		c.FrameTime = reconfig.DefaultFrameTime
	}
	if c.FragThreshold == 0 {
		c.FragThreshold = DefaultFragThreshold
	}
	if c.DefragCooldown <= 0 {
		c.DefragCooldown = DefaultDefragCooldown
	}
	if c.SolveBudget <= 0 {
		c.SolveBudget = DefaultSolveBudget
	}
	return c, nil
}

// EventKind discriminates session events.
type EventKind string

const (
	// Arrival asks the session to place and configure a new module.
	Arrival EventKind = "arrival"
	// Departure retires a live module and frees its area.
	Departure EventKind = "departure"
)

// Event is one step of an online workload.
type Event struct {
	// Kind is Arrival or Departure.
	Kind EventKind `json:"kind"`
	// Name identifies the module; unique among live modules.
	Name string `json:"name"`
	// Req is the arriving module's resource requirement (arrivals only).
	Req device.Requirements `json:"req,omitempty"`
	// Mode seeds the module's bitstream content (arrivals only).
	Mode int64 `json:"mode,omitempty"`
}

// EventResult reports what one event did to the session.
type EventResult struct {
	// Seq is the 1-based event sequence number.
	Seq int `json:"seq"`
	// Event echoes the applied event.
	Event Event `json:"event"`
	// Placed reports whether an arrival got an area (true for every
	// successful departure's module too, vacuously false otherwise).
	Placed bool `json:"placed"`
	// Fallback reports the arrival was placed by the budgeted
	// floorplanner solve rather than greedy free-space placement.
	Fallback bool `json:"fallback"`
	// Rejected reports an arrival the session could not place.
	Rejected bool `json:"rejected"`
	// Reason explains a rejection.
	Reason string `json:"reason,omitempty"`
	// Rect is the area assigned to an arrival (valid when Placed).
	Rect grid.Rect `json:"rect"`
	// Fragmentation is the free-space fragmentation after the event
	// (and after any defragmentation it triggered).
	Fragmentation float64 `json:"fragmentation"`
	// Occupancy is the fraction of usable tiles occupied after the event.
	Occupancy float64 `json:"occupancy"`
	// Defrag is non-nil when the event triggered a defragmentation
	// cycle (executed or abandoned — see its Executed field).
	Defrag *DefragReport `json:"defrag,omitempty"`
}

// DefragReport describes one defragmentation cycle.
type DefragReport struct {
	// AtEvent is the sequence number of the triggering event.
	AtEvent int `json:"at_event"`
	// Planned is the number of moves the compaction planner emitted.
	Planned int `json:"planned"`
	// Executed reports whether the schedule ran (a plan that does not
	// reduce fragmentation is abandoned).
	Executed bool `json:"executed"`
	// FragBefore and FragAfter bracket the cycle.
	FragBefore float64 `json:"frag_before"`
	FragAfter  float64 `json:"frag_after"`
	// Schedule accounts for the executed moves (nil when not executed).
	Schedule *reconfig.ScheduleReport `json:"schedule,omitempty"`
}

// Stats accumulates session activity.
type Stats struct {
	Events         int `json:"events"`
	Arrivals       int `json:"arrivals"`
	Departures     int `json:"departures"`
	Placed         int `json:"placed"`
	PlacedFallback int `json:"placed_fallback"`
	Rejected       int `json:"rejected"`
	DefragCycles   int `json:"defrag_cycles"`
	DefragMoves    int `json:"defrag_moves"`
	// CorruptedFrames sums readback mismatches across every executed
	// relocation schedule (0 on a correct run).
	CorruptedFrames int `json:"corrupted_frames"`
}

// ModuleInfo describes one live module in a Snapshot.
type ModuleInfo struct {
	Name string    `json:"name"`
	Rect grid.Rect `json:"rect"`
	// Fallback records that the module's initial placement came from the
	// floorplanner fallback.
	Fallback bool `json:"fallback"`
}

// Snapshot is a point-in-time view of the session.
type Snapshot struct {
	Device        string         `json:"device"`
	Live          []ModuleInfo   `json:"live"`
	Fragmentation float64        `json:"fragmentation"`
	Occupancy     float64        `json:"occupancy"`
	FreeTiles     int            `json:"free_tiles"`
	Stats         Stats          `json:"stats"`
	Reconfig      reconfig.Stats `json:"reconfig"`
}

// module is the session's record of a live module.
type module struct {
	name     string
	req      device.Requirements
	mode     int64
	region   int // reconfig.Manager region index
	fallback bool
}

// Manager is a stateful online-placement session. It is safe for
// concurrent use; events are serialized internally.
type Manager struct {
	mu         sync.Mutex
	cfg        Config
	rcm        *reconfig.Manager
	free       *FreeSpace
	modules    map[string]*module
	stats      Stats
	lastDefrag int // event seq of the last defrag attempt, 0 if never
}

// New builds an empty session over cfg.Device.
func New(cfg Config) (*Manager, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Manager{
		cfg:     cfg,
		rcm:     reconfig.NewDynamic(cfg.Device, cfg.FrameTime),
		free:    NewFreeSpace(cfg.Device),
		modules: map[string]*module{},
	}, nil
}

// Apply ingests one event and returns what it did. Errors are reserved
// for malformed events and internal invariant violations; an arrival the
// session cannot place is a non-error result with Rejected set.
func (m *Manager) Apply(ev Event) (*EventResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()

	m.stats.Events++
	res := &EventResult{Seq: m.stats.Events, Event: ev}
	var err error
	switch ev.Kind {
	case Arrival:
		err = m.applyArrival(ev, res)
	case Departure:
		err = m.applyDeparture(ev, res)
	default:
		err = fmt.Errorf("session: unknown event kind %q", ev.Kind)
	}
	if err != nil {
		return nil, err
	}

	if d := m.maybeDefrag(res.Seq); d != nil {
		res.Defrag = d
	}
	res.Fragmentation = m.free.Fragmentation()
	res.Occupancy = m.free.Occupancy()
	return res, nil
}

func (m *Manager) applyArrival(ev Event, res *EventResult) error {
	m.stats.Arrivals++
	if ev.Name == "" {
		return fmt.Errorf("session: arrival has no name")
	}
	if _, live := m.modules[ev.Name]; live {
		return fmt.Errorf("session: module %q is already live", ev.Name)
	}
	if ev.Req.IsZero() {
		return fmt.Errorf("session: arrival %q requires no resources", ev.Name)
	}

	rect, ok := m.bestFit(ev.Req)
	if ok {
		if err := m.admit(ev, rect, false, res); err != nil {
			return err
		}
		return nil
	}

	rect, ok, reason := m.fallbackPlace(ev)
	if !ok {
		m.stats.Rejected++
		res.Rejected = true
		res.Reason = reason
		return nil
	}
	return m.admit(ev, rect, true, res)
}

// admit registers and configures an arrival at rect.
func (m *Manager) admit(ev Event, rect grid.Rect, fallback bool, res *EventResult) error {
	ri, err := m.rcm.AddRegion(ev.Name, rect)
	if err != nil {
		return fmt.Errorf("session: admit %q: %w", ev.Name, err)
	}
	if err := m.rcm.Configure(ri, ev.Mode, 0); err != nil {
		return fmt.Errorf("session: admit %q: %w", ev.Name, err)
	}
	if err := m.free.Insert(rect); err != nil {
		return err
	}
	m.modules[ev.Name] = &module{
		name: ev.Name, req: ev.Req, mode: ev.Mode, region: ri, fallback: fallback,
	}
	m.stats.Placed++
	if fallback {
		m.stats.PlacedFallback++
	}
	res.Placed = true
	res.Fallback = fallback
	res.Rect = rect
	return nil
}

// bestFit picks the placement for an arrival greedily: among the
// width-minimal candidate rectangles that lie entirely on free tiles,
// minimize (wasted frames, best-fit slack) where slack is the smallest
// maximal-empty-rectangle the candidate fits in minus the candidate —
// i.e. prefer tight resource fits, and among those, fill small holes
// before carving up large ones.
func (m *Manager) bestFit(req device.Requirements) (grid.Rect, bool) {
	cands := core.CachedCandidates(m.cfg.Device, req)
	mers := m.free.MERs()
	best := grid.Rect{}
	bestWaste, bestSlack := 0, 0
	found := false
	for _, c := range cands {
		if found && c.Waste > bestWaste {
			break // candidates are sorted by waste; no better fit follows
		}
		if !m.free.Fits(c.Rect) {
			continue
		}
		slack := bestFitSlack(mers, c.Rect)
		if !found || slack < bestSlack {
			best, bestWaste, bestSlack, found = c.Rect, c.Waste, slack, true
		}
	}
	return best, found
}

// bestFitSlack returns the smallest containing MER's area minus the
// rectangle's own. Every rectangle on free tiles is contained in at
// least one MER.
func bestFitSlack(mers []grid.Rect, r grid.Rect) int {
	slack := -1
	for _, mer := range mers {
		if !mer.ContainsRect(r) {
			continue
		}
		if s := mer.Area() - r.Area(); slack < 0 || s < slack {
			slack = s
		}
	}
	return slack
}

func (m *Manager) applyDeparture(ev Event, res *EventResult) error {
	m.stats.Departures++
	mod, live := m.modules[ev.Name]
	if !live {
		// Not an error: in a replayed stream the module's arrival may
		// have been rejected, so there is nothing to retire.
		res.Rejected = true
		res.Reason = fmt.Sprintf("module %q is not live", ev.Name)
		return nil
	}
	rect, ok := m.rcm.CurrentArea(mod.region)
	if !ok {
		return fmt.Errorf("session: module %q has no live area", ev.Name)
	}
	if err := m.rcm.RemoveRegion(mod.region); err != nil {
		return fmt.Errorf("session: depart %q: %w", ev.Name, err)
	}
	m.free.Remove(rect)
	delete(m.modules, ev.Name)
	return nil
}

// Snapshot returns the current session state.
func (m *Manager) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := Snapshot{
		Device:        m.cfg.Device.Name(),
		Fragmentation: m.free.Fragmentation(),
		Occupancy:     m.free.Occupancy(),
		FreeTiles:     m.free.FreeTiles(),
		Stats:         m.stats,
		Reconfig:      m.rcm.Stats(),
	}
	for _, mod := range m.modules {
		rect, _ := m.rcm.CurrentArea(mod.region)
		snap.Live = append(snap.Live, ModuleInfo{Name: mod.name, Rect: rect, Fallback: mod.fallback})
	}
	sort.Slice(snap.Live, func(i, j int) bool { return snap.Live[i].Name < snap.Live[j].Name })
	return snap
}

// Stats returns the accumulated counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Fragmentation returns the current free-space fragmentation.
func (m *Manager) Fragmentation() float64 { return m.free.Fragmentation() }
