package session

import (
	"fmt"
	"sort"

	"repro/internal/reconfig"
)

// RecoveryReport accounts for one session's crash recovery.
type RecoveryReport struct {
	// SessionID echoes the recovered session's Meta.ID.
	SessionID string `json:"session_id"`
	// SnapshotEvents is how many events the snapshot base covered.
	SnapshotEvents int `json:"snapshot_events"`
	// WALRecords is how many WAL records were replayed on top.
	WALRecords int `json:"wal_records"`
	// Live is the number of live modules after recovery.
	Live int `json:"live"`
	// FramesVerified / CorruptedFrames report the post-recovery frame
	// readback over every live region. Recovery fails on any corruption.
	FramesVerified  int `json:"frames_verified"`
	CorruptedFrames int `json:"corrupted_frames"`
	// TornTail describes a truncated or corrupted WAL suffix that was
	// discarded ("" when the log was clean). Records past a torn tail
	// were never acknowledged to a client, so dropping them is correct.
	TornTail string `json:"torn_tail,omitempty"`
}

// Restore rebuilds a session from its durable state: the snapshot is
// the base, each WAL record folds its layout delta and counters on top,
// and the resulting layout is materialized onto a fresh device —
// AddRegion + Configure per module, name-sorted, so two restores of the
// same log are frame-for-frame identical (bitstream payloads are
// position-independent, so loading a module directly at its final area
// reproduces exactly the frames the original session's moves left).
//
// Replay folds recorded outcomes, never re-running placement or defrag
// planning: those paths are time-budgeted and nondeterministic, and the
// log records what actually happened, rollbacks included.
//
// cfg.Store must be the store lr was loaded from; materialization runs
// fault-free (cfg.Faults is installed only afterwards), its port writes
// do not disturb the restored counters, and a fresh snapshot compacts
// the replayed WAL before Restore returns.
func Restore(cfg Config, lr *LoadResult) (*Manager, *RecoveryReport, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if cfg.Store == nil {
		return nil, nil, fmt.Errorf("session: restore needs a store")
	}
	if lr == nil || lr.State == nil {
		return nil, nil, fmt.Errorf("session: restore: no snapshot to restore from")
	}

	// Fold the snapshot base and the WAL records into the final state.
	st := lr.State
	layout := make(map[string]persistedModule, len(st.Modules))
	for _, pm := range st.Modules {
		layout[pm.Name] = pm
	}
	stats, rstats := st.Stats, st.Reconfig
	lastDefrag, lastClientSeq := st.LastDefrag, st.LastClientSeq
	window := append([]EventResult(nil), st.Window...)
	for _, rec := range lr.Records {
		for _, op := range rec.Ops {
			switch op.Op {
			case "place":
				layout[op.Module.Name] = op.Module
			case "move":
				pm, ok := layout[op.Module.Name]
				if !ok {
					return nil, nil, fmt.Errorf("session: restore: WAL moves unknown module %q", op.Module.Name)
				}
				pm.Rect = op.Module.Rect
				layout[op.Module.Name] = pm
			case "remove":
				delete(layout, op.Module.Name)
			default:
				return nil, nil, fmt.Errorf("session: restore: WAL has unknown layout op %q", op.Op)
			}
		}
		stats, rstats, lastDefrag = rec.Stats, rec.Reconfig, rec.LastDefrag
		if cs := rec.Result.Event.ClientSeq; cs > 0 {
			lastClientSeq = cs
			window = append(window, rec.Result)
			if len(window) > idempotencyWindow {
				window = window[len(window)-idempotencyWindow:]
			}
		}
	}

	// Materialize the layout onto a fresh device, fault-free. The
	// persisted Meta is authoritative over whatever the caller set.
	cfg.Meta = st.Meta
	faults := cfg.Faults
	cfg.Faults = nil
	m := &Manager{
		cfg:           cfg,
		rcm:           reconfig.NewDynamic(cfg.Device, cfg.FrameTime),
		free:          NewFreeSpace(cfg.Device),
		modules:       map[string]*module{},
		store:         cfg.Store,
		lastDefrag:    lastDefrag,
		lastClientSeq: lastClientSeq,
		window:        window,
	}
	names := sortedKeys(layout)
	for _, name := range names {
		pm := layout[name]
		ri, err := m.rcm.AddRegion(pm.Name, pm.Rect)
		if err != nil {
			return nil, nil, fmt.Errorf("session: restore %q: %w", pm.Name, err)
		}
		if err := m.rcm.Configure(ri, pm.Mode, 0); err != nil {
			return nil, nil, fmt.Errorf("session: restore %q: %w", pm.Name, err)
		}
		if err := m.free.Insert(pm.Rect); err != nil {
			return nil, nil, fmt.Errorf("session: restore %q: %w", pm.Name, err)
		}
		m.modules[pm.Name] = &module{
			name: pm.Name, req: pm.Req, mode: pm.Mode, region: ri, fallback: pm.Fallback,
		}
	}

	// The materialization's own port writes are recovery work, not
	// session activity: overwrite with the persisted counters, then
	// re-arm fault injection for live traffic.
	m.rcm.RestoreStats(rstats)
	m.cfg.Faults = faults
	m.rcm.SetFaultPlan(faults)
	m.stats = stats

	rep := &RecoveryReport{
		SessionID:      st.Meta.ID,
		SnapshotEvents: st.Stats.Events,
		WALRecords:     len(lr.Records),
		Live:           len(m.modules),
	}
	if lr.Torn != nil {
		rep.TornTail = lr.Torn.Error()
	}

	// Verify the rebuilt fabric frame by frame against what every live
	// module should hold — the recovery is only trusted when readback
	// matches exactly.
	for _, mod := range sortedModules(m.modules) {
		frames, corrupted := m.rcm.VerifyRegion(mod.region)
		rep.FramesVerified += frames
		rep.CorruptedFrames += corrupted
	}
	if rep.CorruptedFrames > 0 {
		return nil, rep, fmt.Errorf("session: restore: %d of %d frames failed readback verification",
			rep.CorruptedFrames, rep.FramesVerified)
	}

	// Compact: the replayed WAL is now captured in a fresh snapshot.
	if err := m.snapshotLocked(); err != nil {
		return nil, rep, err
	}
	return m, rep, nil
}

func sortedModules(mods map[string]*module) []*module {
	out := make([]*module, 0, len(mods))
	for _, mod := range mods {
		out = append(out, mod)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
