package session

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"strings"
	"testing"
)

// encodeWAL frames the payloads into a complete WAL image.
func encodeWAL(t testing.TB, payloads ...[]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(walMagic)
	for _, p := range payloads {
		if err := writeWALFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestWALRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte(`{"a":1}`),
		[]byte(``), // empty payloads are legal frames
		[]byte(strings.Repeat(`{"pad":true}`, 500)),
	}
	records, corrupt := readWALFramesBytes(encodeWAL(t, payloads...))
	if corrupt != nil {
		t.Fatalf("clean image reported corrupt: %v", corrupt)
	}
	if len(records) != len(payloads) {
		t.Fatalf("%d records, want %d", len(records), len(payloads))
	}
	for i, p := range payloads {
		if !bytes.Equal(records[i], p) {
			t.Fatalf("record %d = %q, want %q", i, records[i], p)
		}
	}
}

func TestWALTornTail(t *testing.T) {
	image := encodeWAL(t, []byte(`{"a":1}`), []byte(`{"b":2}`))
	// Cut into the second record's payload: the first must survive.
	cut := len(walMagic) + 8 + len(`{"a":1}`) + 1 + 8 + 3
	records, corrupt := readWALFramesBytes(image[:cut])
	if len(records) != 1 || !bytes.Equal(records[0], []byte(`{"a":1}`)) {
		t.Fatalf("prefix = %q", records)
	}
	if corrupt == nil || corrupt.Record != 1 || !strings.Contains(corrupt.Reason, "torn") {
		t.Fatalf("corrupt = %+v, want torn record 1", corrupt)
	}

	// Cut mid-header.
	records, corrupt = readWALFramesBytes(image[:len(walMagic)+3])
	if len(records) != 0 || corrupt == nil || !strings.Contains(corrupt.Reason, "torn header") {
		t.Fatalf("mid-header cut: records %q, corrupt %+v", records, corrupt)
	}
}

func TestWALBitFlip(t *testing.T) {
	image := encodeWAL(t, []byte(`{"a":1}`), []byte(`{"b":2}`))
	// Flip one payload byte of the second record.
	flipped := bytes.Clone(image)
	flipped[len(walMagic)+8+len(`{"a":1}`)+1+8+2] ^= 0x40
	records, corrupt := readWALFramesBytes(flipped)
	if len(records) != 1 {
		t.Fatalf("%d records survived a flipped byte, want 1", len(records))
	}
	if corrupt == nil || corrupt.Record != 1 || !strings.Contains(corrupt.Reason, "checksum") {
		t.Fatalf("corrupt = %+v, want checksum mismatch on record 1", corrupt)
	}
}

func TestWALBadMagic(t *testing.T) {
	records, corrupt := readWALFramesBytes([]byte("NOTAWAL00\n"))
	if len(records) != 0 || corrupt == nil || !strings.Contains(corrupt.Reason, "magic") {
		t.Fatalf("records %q, corrupt %+v", records, corrupt)
	}
}

// FuzzWALReplay feeds arbitrary bytes through the WAL decoder:
// truncated, bit-flipped and duplicated records must always yield a
// clean prefix plus a structured corruption error — never a panic, and
// never a record that fails to re-encode byte-identically.
func FuzzWALReplay(f *testing.F) {
	valid := func(payloads ...[]byte) []byte {
		var buf bytes.Buffer
		buf.WriteString(walMagic)
		for _, p := range payloads {
			_ = writeWALFrame(&buf, p)
		}
		return buf.Bytes()
	}
	rec := []byte(`{"result":{"seq":1,"placed":true},"ops":[{"op":"place","module":{"name":"a"}}]}`)
	f.Add([]byte{})
	f.Add([]byte(walMagic))
	f.Add(valid(rec))
	f.Add(valid(rec, rec))                      // duplicated record
	f.Add(valid(rec)[:len(walMagic)+12])        // torn payload
	f.Add(append(valid(rec), 0xde, 0xad, 0xbe)) // garbage tail
	flipped := valid(rec, []byte(`{"result":{"seq":2}}`))
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		records, corrupt := readWALFramesBytes(data)
		if corrupt == nil && len(data) > 0 {
			// A clean decode must round-trip byte-identically.
			var buf bytes.Buffer
			buf.WriteString(walMagic)
			for _, r := range records {
				if err := writeWALFrame(&buf, r); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(buf.Bytes(), data) {
				t.Fatalf("clean decode did not round-trip: %d in, %d out", len(data), buf.Len())
			}
		}
		if corrupt != nil && corrupt.Reason == "" {
			t.Fatal("corruption reported without a reason")
		}
		// Every clean record must be safe to hand to the JSON decoder
		// (errors fine, panics not).
		for _, payload := range records {
			var rec walRecord
			_ = json.Unmarshal(payload, &rec)
		}
	})
}

// TestWALLengthCap: a flipped length bit must not drive a giant
// allocation — the cap rejects it as corruption.
func TestWALLengthCap(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(walMagic)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], maxWALRecord+1)
	buf.Write(hdr[:])
	records, corrupt := readWALFramesBytes(buf.Bytes())
	if len(records) != 0 || corrupt == nil || !strings.Contains(corrupt.Reason, "cap") {
		t.Fatalf("records %q, corrupt %+v", records, corrupt)
	}
}
