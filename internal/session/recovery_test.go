package session

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/device"
)

// newDurableManager opens a store in dir and builds a manager over it.
func newDurableManager(t *testing.T, dir string, cfg Config) (*Manager, *Store) {
	t.Helper()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Device == nil {
		cfg.Device = device.VirtexFX70T()
	}
	cfg.Store = store
	if cfg.Meta.ID == "" {
		cfg.Meta = Meta{
			ID:             "test-session",
			Device:         cfg.Device.Name(),
			FragThreshold:  cfg.FragThreshold,
			DefragCooldown: cfg.DefragCooldown,
		}
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, store
}

// reload mimics a daemon restart: a fresh store over the same directory,
// loaded and restored.
func reload(t *testing.T, dir string, cfg Config) (*Manager, *RecoveryReport) {
	t.Helper()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Device == nil {
		cfg.Device = device.VirtexFX70T()
	}
	cfg.Store = store
	m, rep, err := Restore(cfg, lr)
	if err != nil {
		t.Fatalf("restore: %v (report %+v)", err, rep)
	}
	return m, rep
}

// TestCrashRecoveryMatchesControl is the kill-and-recover e2e: a durable
// session is dropped without a final snapshot (the crash), replayed from
// snapshot+WAL, and must match a never-killed control run frame for
// frame — then both keep serving the rest of the workload identically.
func TestCrashRecoveryMatchesControl(t *testing.T) {
	dev := device.VirtexFX70T()
	base := Config{Device: dev, FragThreshold: 0.55, DefragCooldown: 6}
	workload := GenerateWorkload(WorkloadConfig{Seed: 5, Events: 150, Intensity: 0.6, Device: dev})
	const crashAt = 120

	control := newTestManager(t, base)
	for _, ev := range workload[:crashAt] {
		if _, err := control.Apply(ev); err != nil {
			t.Fatal(err)
		}
	}

	dir := t.TempDir()
	durable, store := newDurableManager(t, dir, Config{
		Device: dev, FragThreshold: 0.55, DefragCooldown: 6, SnapshotEvery: 16,
	})
	for _, ev := range workload[:crashAt] {
		if _, err := durable.Apply(ev); err != nil {
			t.Fatal(err)
		}
	}
	wantStats := durable.Stats()
	wantDigest := durable.FrameDigest()
	// Crash: drop the manager with no Close — no final snapshot, only
	// what AppendEvent already fsynced.
	store.Close()

	if wantDigest != control.FrameDigest() {
		t.Fatal("durable and control runs diverged before the crash — workload replay is not deterministic")
	}

	restored, rep := reload(t, dir, Config{Device: dev, FragThreshold: 0.55, DefragCooldown: 6, SnapshotEvery: 16})
	if rep.SessionID != "test-session" || rep.CorruptedFrames != 0 || rep.TornTail != "" {
		t.Fatalf("recovery report = %+v", rep)
	}
	if rep.WALRecords == 0 {
		t.Fatal("recovery replayed no WAL records — the crash window was empty")
	}
	if got := restored.FrameDigest(); got != wantDigest {
		t.Fatalf("restored frame digest %08x, want %08x — fabric diverged", got, wantDigest)
	}
	gotStats := restored.Stats()
	// Restore writes one compacting snapshot of its own; everything else
	// must carry over exactly.
	gotStats.Snapshots, wantStats.Snapshots = 0, 0
	if gotStats != wantStats {
		t.Fatalf("restored stats %+v, want %+v", gotStats, wantStats)
	}
	if got, want := restored.Snapshot().Live, control.Snapshot().Live; len(got) != len(want) {
		t.Fatalf("restored %d live modules, control %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("live module %d: restored %+v, control %+v", i, got[i], want[i])
			}
		}
	}

	// The recovered session is not a museum piece: the rest of the
	// workload must apply and keep matching the control run.
	for _, ev := range workload[crashAt:] {
		if _, err := restored.Apply(ev); err != nil {
			t.Fatal(err)
		}
		if _, err := control.Apply(ev); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := restored.FrameDigest(), control.FrameDigest(); got != want {
		t.Fatalf("post-recovery digest %08x, control %08x — recovered session diverged", got, want)
	}
	if err := restored.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryToleratesTornTail: garbage appended to events.wal (a torn
// final write) must not block recovery — the clean prefix is replayed
// and the tear is reported.
func TestRecoveryToleratesTornTail(t *testing.T) {
	dev := device.VirtexFX70T()
	dir := t.TempDir()
	m, store := newDurableManager(t, dir, Config{Device: dev, FragThreshold: -1, SnapshotEvery: 1 << 20})
	for _, ev := range GenerateWorkload(WorkloadConfig{Seed: 2, Events: 40, Intensity: 0.5, Device: dev}) {
		if _, err := m.Apply(ev); err != nil {
			t.Fatal(err)
		}
	}
	digest := m.FrameDigest()
	store.Close()

	f, err := os.OpenFile(filepath.Join(dir, eventsFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	restored, rep := reload(t, dir, Config{Device: dev, FragThreshold: -1})
	if rep.TornTail == "" || !strings.Contains(rep.TornTail, "torn") {
		t.Fatalf("torn tail not reported: %+v", rep)
	}
	if rep.WALRecords != 40 {
		t.Fatalf("replayed %d records, want the full 40-event clean prefix", rep.WALRecords)
	}
	if got := restored.FrameDigest(); got != digest {
		t.Fatalf("digest %08x after torn-tail recovery, want %08x", got, digest)
	}
}

// TestDuplicateEventIdempotent: resubmitting an acknowledged ClientSeq
// returns the recorded result instead of double-applying.
func TestDuplicateEventIdempotent(t *testing.T) {
	dev := device.VirtexFX70T()
	m, _ := newDurableManager(t, t.TempDir(), Config{Device: dev, FragThreshold: -1})
	ev := Event{Kind: Arrival, Name: "a", Req: device.Requirements{device.ClassCLB: 4}, Mode: 1, ClientSeq: 1}
	first, err := m.Apply(ev)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Placed || first.Duplicate {
		t.Fatalf("first apply = %+v", first)
	}
	walBefore := m.Stats().WALRecords

	again, err := m.Apply(ev)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Duplicate {
		t.Fatalf("resubmission not flagged duplicate: %+v", again)
	}
	if again.Seq != first.Seq || again.Rect != first.Rect || !again.Placed {
		t.Fatalf("duplicate result %+v differs from original %+v", again, first)
	}
	st := m.Stats()
	if st.Events != 1 || st.Arrivals != 1 || st.Placed != 1 {
		t.Fatalf("duplicate was re-applied: %+v", st)
	}
	if st.WALRecords != walBefore {
		t.Fatal("duplicate appended a WAL record")
	}

	// The module must exist once, not twice: a fresh arrival under a new
	// ClientSeq still sees the name as live.
	if _, err := m.Apply(Event{Kind: Arrival, Name: "a", Req: ev.Req, Mode: 1, ClientSeq: 2}); err == nil {
		t.Fatal("second live arrival of the same name accepted")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDuplicateSurvivesRecovery: the idempotency window is durable — a
// resubmission after a crash and restore still returns the original
// result.
func TestDuplicateSurvivesRecovery(t *testing.T) {
	dev := device.VirtexFX70T()
	dir := t.TempDir()
	m, store := newDurableManager(t, dir, Config{Device: dev, FragThreshold: -1, SnapshotEvery: 1 << 20})
	ev := Event{Kind: Arrival, Name: "a", Req: device.Requirements{device.ClassCLB: 4}, Mode: 1, ClientSeq: 1}
	first, err := m.Apply(ev)
	if err != nil {
		t.Fatal(err)
	}
	store.Close() // crash

	restored, _ := reload(t, dir, Config{Device: dev, FragThreshold: -1})
	again, err := restored.Apply(ev)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Duplicate || again.Rect != first.Rect || again.Seq != first.Seq {
		t.Fatalf("post-recovery duplicate = %+v, original %+v", again, first)
	}
}

// TestClientSeqAgedOut: a ClientSeq below the oldest retained result is
// a structured error, not a silent re-apply.
func TestClientSeqAgedOut(t *testing.T) {
	dev := device.VirtexFX70T()
	m, _ := newDurableManager(t, t.TempDir(), Config{Device: dev, FragThreshold: -1})
	req := device.Requirements{device.ClassCLB: 2}
	seq := int64(0)
	// Arrival/departure pairs keep the device empty while the window
	// slides past its capacity.
	for i := 0; i < idempotencyWindow/2+2; i++ {
		seq++
		if _, err := m.Apply(Event{Kind: Arrival, Name: "m", Req: req, Mode: 1, ClientSeq: seq}); err != nil {
			t.Fatal(err)
		}
		seq++
		if _, err := m.Apply(Event{Kind: Departure, Name: "m", ClientSeq: seq}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Apply(Event{Kind: Arrival, Name: "m", Req: req, Mode: 1, ClientSeq: 1}); err == nil ||
		!strings.Contains(err.Error(), "aged out") {
		t.Fatalf("aged-out ClientSeq: err = %v", err)
	}
}

// TestConcurrentApplySnapshot hammers a durable session from several
// goroutines while snapshots and reads run concurrently (run under
// -race in CI), then proves the persisted state still replays to the
// same fabric.
func TestConcurrentApplySnapshot(t *testing.T) {
	dev := device.VirtexFX70T()
	dir := t.TempDir()
	m, _ := newDurableManager(t, dir, Config{Device: dev, FragThreshold: -1, SnapshotEvery: 2})

	const workers = 4
	const perWorker = 6
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = m.Snapshot()
				_ = m.Stats()
				_ = m.FrameDigest()
			}
		}
	}()
	var apply sync.WaitGroup
	for w := 0; w < workers; w++ {
		apply.Add(1)
		go func(w int) {
			defer apply.Done()
			for i := 0; i < perWorker; i++ {
				name := string(rune('a'+w)) + "-" + string(rune('0'+i))
				res, err := m.Apply(Event{Kind: Arrival, Name: name,
					Req: device.Requirements{device.ClassCLB: 2}, Mode: int64(w*perWorker + i + 1)})
				if err != nil {
					t.Errorf("apply %s: %v", name, err)
					return
				}
				_ = res
			}
		}(w)
	}
	apply.Wait()
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	digest := m.FrameDigest()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	restored, _ := reload(t, dir, Config{Device: dev, FragThreshold: -1, SnapshotEvery: 2})
	if got := restored.FrameDigest(); got != digest {
		t.Fatalf("digest %08x after concurrent run replay, want %08x", got, digest)
	}
}

// TestDiscardRemovesFiles: Discard deletes the session's durable
// directory so it can never be resurrected by replay.
func TestDiscardRemovesFiles(t *testing.T) {
	dir := t.TempDir()
	sess := filepath.Join(dir, "s1")
	m, _ := newDurableManager(t, sess, Config{FragThreshold: -1})
	if _, err := m.Apply(Event{Kind: Arrival, Name: "a", Req: device.Requirements{device.ClassCLB: 2}, Mode: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Discard(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(sess); !os.IsNotExist(err) {
		t.Fatalf("session dir still present after Discard: %v", err)
	}
}
