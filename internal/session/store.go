package session

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/grid"
	"repro/internal/reconfig"
)

// On-disk layout of one session's durable state, under its own
// directory:
//
//	snapshot.wal   one WAL frame holding a persistedState (atomic:
//	               written to snapshot.tmp, fsynced, renamed)
//	events.wal     one WAL frame per applied event since the snapshot
//
// Recovery is snapshot ⊕ events: the snapshot is the base, each event
// record folds its layout delta on top. A snapshot write truncates
// events.wal, bounding replay work.

const (
	snapshotFile = "snapshot.wal"
	eventsFile   = "events.wal"
)

// Meta identifies a persisted session and carries what the daemon needs
// to rebuild its Config after a restart (the engine is rebuilt by name).
type Meta struct {
	ID             string    `json:"id"`
	Device         string    `json:"device"`
	Engine         string    `json:"engine"`
	FragThreshold  float64   `json:"frag_threshold"`
	DefragCooldown int       `json:"defrag_cooldown"`
	SolveBudgetMS  int64     `json:"solve_budget_ms"`
	CreatedAt      time.Time `json:"created_at"`
}

// persistedModule is one live module's durable record: everything
// needed to regenerate and reload its exact frames at its exact area.
type persistedModule struct {
	Name     string              `json:"name"`
	Rect     grid.Rect           `json:"rect"`
	Mode     int64               `json:"mode"`
	Req      device.Requirements `json:"req"`
	Fallback bool                `json:"fallback,omitempty"`
}

// persistedState is the snapshot payload: the full durable state of a
// session at one event boundary.
type persistedState struct {
	Meta          Meta              `json:"meta"`
	LastDefrag    int               `json:"last_defrag,omitempty"`
	LastClientSeq int64             `json:"last_client_seq,omitempty"`
	Window        []EventResult     `json:"window,omitempty"`
	Stats         Stats             `json:"stats"`
	Reconfig      reconfig.Stats    `json:"reconfig"`
	Modules       []persistedModule `json:"modules,omitempty"`
}

// layoutOp is one event's effect on the live layout. Ops are diffs of
// the layout around the event, so they capture exactly what happened —
// including fallback migrations, defrag moves and transactional
// rollbacks — without replay having to re-run any (nondeterministic,
// time-budgeted) planning.
type layoutOp struct {
	// Op is "place", "move" or "remove".
	Op string `json:"op"`
	// Module carries the affected module; "move" uses Name and Rect,
	// "remove" only Name.
	Module persistedModule `json:"module"`
}

// walRecord is one events.wal frame: the applied event's recorded
// result, its layout delta, and the post-event counters (carried whole
// — they are a handful of ints — so replay never recomputes them).
type walRecord struct {
	Result     EventResult    `json:"result"`
	Ops        []layoutOp     `json:"ops,omitempty"`
	LastDefrag int            `json:"last_defrag,omitempty"`
	Stats      Stats          `json:"stats"`
	Reconfig   reconfig.Stats `json:"reconfig"`
}

// Store owns one session's durable files. Safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	dir    string
	events *os.File
	// records counts frames in the current events.wal.
	records int
}

// OpenStore opens (creating as needed) a session's durable directory.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("session: open store: %w", err)
	}
	s := &Store{dir: dir}
	if err := s.openEvents(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// openEvents opens events.wal for appending, writing the magic when the
// file is new. Callers hold s.mu or are the constructor.
func (s *Store) openEvents() error {
	f, err := os.OpenFile(filepath.Join(s.dir, eventsFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("session: open events WAL: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("session: open events WAL: %w", err)
	}
	if st.Size() == 0 {
		if _, err := f.WriteString(walMagic); err != nil {
			f.Close()
			return fmt.Errorf("session: open events WAL: %w", err)
		}
	}
	s.events = f
	return nil
}

// AppendEvent appends one record to events.wal and syncs it to stable
// storage — it returns only once the record would survive a crash.
func (s *Store) AppendEvent(rec *walRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("session: encode WAL record: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.events == nil {
		return fmt.Errorf("session: store is closed")
	}
	if err := writeWALFrame(s.events, payload); err != nil {
		return fmt.Errorf("session: append WAL record: %w", err)
	}
	if err := s.events.Sync(); err != nil {
		return fmt.Errorf("session: sync WAL: %w", err)
	}
	s.records++
	return nil
}

// Records returns the events.wal frame count since the last snapshot.
func (s *Store) Records() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.records
}

// WriteSnapshot atomically replaces the snapshot with state and
// truncates events.wal: tmp-write, fsync, rename — a crash at any point
// leaves either the old snapshot (plus its events) or the new one.
func (s *Store) WriteSnapshot(state *persistedState) error {
	payload, err := json.Marshal(state)
	if err != nil {
		return fmt.Errorf("session: encode snapshot: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.events == nil {
		return fmt.Errorf("session: store is closed")
	}
	tmp := filepath.Join(s.dir, snapshotFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("session: write snapshot: %w", err)
	}
	if _, err := f.WriteString(walMagic); err == nil {
		err = writeWALFrame(f, payload)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("session: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotFile)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("session: write snapshot: %w", err)
	}
	// The snapshot covers everything in events.wal — truncate it.
	s.events.Close()
	if err := os.Remove(filepath.Join(s.dir, eventsFile)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("session: truncate events WAL: %w", err)
	}
	s.records = 0
	return s.openEvents()
}

// LoadResult is what a store held on disk: the snapshot (nil when none
// was ever written), the clean prefix of event records appended after
// it, and — when the WAL tail was torn or corrupted — where decoding
// stopped. A torn tail is expected after a crash mid-append: the
// records before it are intact and the lost suffix was never
// acknowledged.
type LoadResult struct {
	State   *persistedState
	Records []*walRecord
	Torn    *CorruptError
}

// Load reads the snapshot and event records back. A missing snapshot
// with a missing/empty WAL is (nil, nil, nil)-ish: State nil, no
// records. A corrupt snapshot is a hard error — there is no base state
// to replay onto.
func (s *Store) Load() (*LoadResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lr := &LoadResult{}
	snap, err := os.ReadFile(filepath.Join(s.dir, snapshotFile))
	switch {
	case os.IsNotExist(err):
		// No snapshot: fall through with nil State.
	case err != nil:
		return nil, fmt.Errorf("session: read snapshot: %w", err)
	default:
		frames, corrupt := readWALFramesBytes(snap)
		if corrupt != nil && len(frames) == 0 {
			return nil, fmt.Errorf("session: snapshot unreadable: %w", corrupt)
		}
		if len(frames) == 0 {
			return nil, fmt.Errorf("session: snapshot holds no record")
		}
		state := &persistedState{}
		if err := json.Unmarshal(frames[0], state); err != nil {
			return nil, fmt.Errorf("session: decode snapshot: %w", err)
		}
		lr.State = state
	}
	events, err := os.ReadFile(filepath.Join(s.dir, eventsFile))
	if err != nil {
		if os.IsNotExist(err) {
			return lr, nil
		}
		return nil, fmt.Errorf("session: read events WAL: %w", err)
	}
	frames, corrupt := readWALFramesBytes(events)
	lr.Torn = corrupt
	for i, payload := range frames {
		rec := &walRecord{}
		if err := json.Unmarshal(payload, rec); err != nil {
			// A frame that checksums but does not decode is corruption
			// the CRC cannot see (it was written corrupt); stop here and
			// keep the prefix, like a torn tail.
			lr.Torn = &CorruptError{Record: i, Reason: fmt.Sprintf("record decodes as invalid JSON: %v", err)}
			break
		}
		lr.Records = append(lr.Records, rec)
	}
	return lr, nil
}

// readWALFramesBytes decodes a whole WAL image held in memory.
func readWALFramesBytes(data []byte) ([][]byte, *CorruptError) {
	return readWALFrames(bytes.NewReader(data))
}

// Close closes the store's files. Further appends fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.events == nil {
		return nil
	}
	err := s.events.Close()
	s.events = nil
	return err
}

// Purge closes the store and deletes its directory — the session can
// never be resurrected by replay.
func (s *Store) Purge() error {
	s.Close()
	return os.RemoveAll(s.dir)
}
