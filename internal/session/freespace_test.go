package session

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/device"
	"repro/internal/grid"
)

// TestFreeSpaceRoundTrip checks the free-space invariant under random
// insert/remove round-trips: after any sequence, the tracker's mask,
// free-tile count and MER set must equal those of a tracker freshly
// built from the currently live rectangles.
func TestFreeSpaceRoundTrip(t *testing.T) {
	d := device.VirtexFX70T()
	rng := rand.New(rand.NewSource(7))
	f := NewFreeSpace(d)
	var live []grid.Rect

	randRect := func() grid.Rect {
		w := 1 + rng.Intn(5)
		h := 1 + rng.Intn(4)
		return grid.Rect{X: rng.Intn(d.Width() - w + 1), Y: rng.Intn(d.Height() - h + 1), W: w, H: h}
	}

	for step := 0; step < 400; step++ {
		if len(live) > 0 && rng.Float64() < 0.4 {
			i := rng.Intn(len(live))
			f.Remove(live[i])
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		} else {
			r := randRect()
			if err := f.Insert(r); err == nil {
				live = append(live, r)
			} else if f.Fits(r) {
				t.Fatalf("step %d: Insert(%v) failed but Fits says it fits: %v", step, r, err)
			}
		}

		fresh := NewFreeSpace(d)
		for _, r := range live {
			if err := fresh.Insert(r); err != nil {
				t.Fatalf("step %d: rebuilding reference: %v", step, err)
			}
		}
		if got, want := f.FreeTiles(), fresh.FreeTiles(); got != want {
			t.Fatalf("step %d: FreeTiles = %d, fresh rebuild says %d", step, got, want)
		}
		gotMERs, wantMERs := f.MERs(), fresh.MERs()
		if len(gotMERs) != len(wantMERs) {
			t.Fatalf("step %d: %d MERs, fresh rebuild has %d", step, len(gotMERs), len(wantMERs))
		}
		for i := range gotMERs {
			if gotMERs[i] != wantMERs[i] {
				t.Fatalf("step %d: MER %d = %v, fresh rebuild has %v", step, i, gotMERs[i], wantMERs[i])
			}
		}
	}
}

// TestFreeSpaceConcurrent hammers one tracker from several goroutines,
// each owning a disjoint column band so inserts never collide. Run under
// -race this checks the tracker's internal locking.
func TestFreeSpaceConcurrent(t *testing.T) {
	// K160T has no forbidden blocks, so an empty device measures
	// fragmentation 0 (the FX70T's PowerPC block splits the free space
	// and puts its empty-device baseline at ~0.41).
	d := device.Kintex7K160T()
	f := NewFreeSpace(d)
	bands := []grid.Rect{
		{X: 4, Y: 0, W: 3, H: 8},
		{X: 17, Y: 0, W: 3, H: 8},
		{X: 24, Y: 0, W: 3, H: 8},
		{X: 34, Y: 0, W: 3, H: 8},
	}
	var wg sync.WaitGroup
	for gi, band := range bands {
		wg.Add(1)
		go func(gi int, band grid.Rect) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(gi)))
			r := grid.Rect{X: band.X, Y: 0, W: band.W, H: 2}
			for i := 0; i < 200; i++ {
				if err := f.Insert(r); err != nil {
					t.Errorf("goroutine %d: %v", gi, err)
					return
				}
				_ = f.MERs()
				_ = f.Fragmentation()
				f.Remove(r)
				if rng.Intn(2) == 0 {
					_ = f.FreeTiles()
				}
			}
		}(gi, band)
	}
	wg.Wait()

	if got, want := f.FreeTiles(), d.UsableTiles(); got != want {
		t.Fatalf("after round-trips FreeTiles = %d, want %d", got, want)
	}
	if frag := f.Fragmentation(); frag != 0 {
		t.Fatalf("empty device fragmentation = %v, want 0", frag)
	}
}

func TestFragmentationBounds(t *testing.T) {
	d := device.Kintex7K160T()
	f := NewFreeSpace(d)
	if frag := f.Fragmentation(); frag != 0 {
		t.Fatalf("empty device fragmentation = %v", frag)
	}
	// A module in the middle of the fabric fragments the free space.
	if err := f.Insert(grid.Rect{X: 30, Y: 5, W: 2, H: 2}); err != nil {
		t.Fatal(err)
	}
	frag := f.Fragmentation()
	if frag <= 0 || frag >= 1 {
		t.Fatalf("fragmentation = %v, want in (0, 1)", frag)
	}

	// The FX70T's forbidden PowerPC block gives the empty device a
	// nonzero baseline: the largest clear rectangle cannot span the
	// whole free area.
	if frag := NewFreeSpace(device.VirtexFX70T()).Fragmentation(); frag <= 0.3 || frag >= 0.5 {
		t.Fatalf("empty FX70T baseline = %v, want ~0.41", frag)
	}
}
