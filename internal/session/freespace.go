package session

import (
	"fmt"
	"sync"

	"repro/internal/device"
	"repro/internal/grid"
)

// FreeSpace tracks the free area of a device under a changing set of
// occupied rectangles. It maintains an occupancy bitmap updated
// incrementally per insert/remove, and the set of maximal empty
// rectangles (MERs) derived from it — the candidate pool online
// placement draws from and the basis of the fragmentation metric.
//
// FreeSpace is safe for concurrent use.
type FreeSpace struct {
	mu     sync.Mutex
	dev    *device.Device
	usable int
	mask   *grid.Mask // set = forbidden or occupied
	dirty  bool
	mers   []grid.Rect
}

// NewFreeSpace builds a tracker over an empty device: everything but the
// forbidden blocks is free.
func NewFreeSpace(dev *device.Device) *FreeSpace {
	return &FreeSpace{
		dev:    dev,
		usable: dev.UsableTiles(),
		mask:   dev.OccupancyMask(nil),
		dirty:  true,
	}
}

// Insert marks a rectangle occupied. It fails if the rectangle is not a
// legal placement or overlaps already-occupied tiles — the caller's
// placement logic is expected to have checked both, so a failure here is
// a bug surfaced, not a condition to handle.
func (f *FreeSpace) Insert(r grid.Rect) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.dev.CanPlace(r) {
		return fmt.Errorf("session: insert %v: not a legal placement", r)
	}
	if f.mask.OverlapsRect(r) {
		return fmt.Errorf("session: insert %v: overlaps occupied tiles", r)
	}
	f.mask.SetRect(r)
	f.dirty = true
	return nil
}

// Remove frees a previously inserted rectangle.
func (f *FreeSpace) Remove(r grid.Rect) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mask.ClearRect(r)
	f.dirty = true
}

// Fits reports whether a rectangle lies entirely on free tiles.
func (f *FreeSpace) Fits(r grid.Rect) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dev.Bounds().ContainsRect(r) && !f.mask.OverlapsRect(r)
}

// MERs returns the maximal empty rectangles of the current free space,
// recomputing them only when the occupancy changed since the last call.
func (f *FreeSpace) MERs() []grid.Rect {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]grid.Rect(nil), f.refresh()...)
}

// refresh recomputes the MER cache if stale. Callers hold f.mu.
func (f *FreeSpace) refresh() []grid.Rect {
	if f.dirty {
		f.mers = f.mask.MaximalClearRects()
		f.dirty = false
	}
	return f.mers
}

// FreeTiles returns the number of unoccupied usable tiles.
func (f *FreeSpace) FreeTiles() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.freeTiles()
}

func (f *FreeSpace) freeTiles() int {
	return f.dev.Width()*f.dev.Height() - f.mask.Count()
}

// Fragmentation returns the free-space fragmentation in [0, 1]:
//
//	1 - (largest MER area) / (free tiles)
//
// 0 means all free tiles form one rectangle (or there are none); values
// near 1 mean the free space is shattered into pieces far smaller than
// its total — the condition that makes placements fail despite enough
// aggregate capacity, and the trigger of the defragmentation planner.
func (f *FreeSpace) Fragmentation() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	free := f.freeTiles()
	if free == 0 {
		return 0
	}
	largest := 0
	for _, r := range f.refresh() {
		if a := r.Area(); a > largest {
			largest = a
		}
	}
	return 1 - float64(largest)/float64(free)
}

// Occupancy returns the fraction of usable tiles currently occupied.
func (f *FreeSpace) Occupancy() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.usable == 0 {
		return 0
	}
	return float64(f.usable-f.freeTiles()) / float64(f.usable)
}

// Snapshot returns a copy of the occupancy mask (forbidden + occupied),
// for planners that explore hypothetical layouts.
func (f *FreeSpace) SnapshotMask() *grid.Mask {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.mask.Clone()
}
