package session

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// WAL framing: a magic line, then one frame per record —
//
//	uint32 LE payload length
//	uint32 LE CRC-32 (IEEE) of the payload
//	payload (JSON)
//	'\n' (keeps the file greppable; not part of the checksum)
//
// The length prefix makes records skippable without parsing JSON; the
// checksum catches torn tails and bit flips. Readers return the longest
// clean prefix plus a structured *CorruptError for whatever follows —
// never a panic, never a silently diverged record.

// walMagic heads every WAL and snapshot file.
const walMagic = "FLOORWAL1\n"

// maxWALRecord bounds a single record's payload. Anything larger is a
// corrupt length prefix, not a real record — the cap keeps a flipped
// length bit from driving a giant allocation.
const maxWALRecord = 16 << 20

// CorruptError reports where and why WAL decoding stopped. Records
// before Offset decoded cleanly.
type CorruptError struct {
	// Offset is the file offset of the first undecodable byte.
	Offset int64
	// Record is the index of the record that failed (0-based).
	Record int
	// Reason says what was wrong.
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("session: corrupt WAL record %d at offset %d: %s", e.Record, e.Offset, e.Reason)
}

// writeWALFrame frames one payload onto w.
func writeWALFrame(w io.Writer, payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	_, err := w.Write([]byte{'\n'})
	return err
}

// readWALFrames decodes every record of a WAL stream (magic included).
// It returns the clean prefix; corrupt is non-nil when decoding stopped
// early (torn tail, bit flip, bad magic) and says where.
func readWALFrames(r io.Reader) (records [][]byte, corrupt *CorruptError) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(walMagic))
	n, err := io.ReadFull(br, magic)
	if err != nil || string(magic) != walMagic {
		return nil, &CorruptError{Offset: 0, Record: 0, Reason: fmt.Sprintf("bad magic %q", magic[:n])}
	}
	offset := int64(len(walMagic))
	for i := 0; ; i++ {
		var hdr [8]byte
		n, err := io.ReadFull(br, hdr[:])
		if err == io.EOF {
			return records, nil
		}
		if err != nil {
			return records, &CorruptError{Offset: offset, Record: i, Reason: fmt.Sprintf("torn header (%d of 8 bytes)", n)}
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxWALRecord {
			return records, &CorruptError{Offset: offset, Record: i, Reason: fmt.Sprintf("record length %d exceeds cap %d", length, maxWALRecord)}
		}
		payload := make([]byte, length)
		if n, err := io.ReadFull(br, payload); err != nil {
			return records, &CorruptError{Offset: offset, Record: i, Reason: fmt.Sprintf("torn payload (%d of %d bytes)", n, length)}
		}
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return records, &CorruptError{Offset: offset, Record: i, Reason: fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", sum, got)}
		}
		if b, err := br.ReadByte(); err != nil || b != '\n' {
			return records, &CorruptError{Offset: offset, Record: i, Reason: "missing record terminator"}
		}
		records = append(records, payload)
		offset += 8 + int64(length) + 1
	}
}
