package session

import (
	"fmt"
	"math/rand"

	"repro/internal/device"
)

// WorkloadConfig parameterizes the seeded workload generator.
type WorkloadConfig struct {
	// Seed drives the generator deterministically.
	Seed int64
	// Events is the number of events to emit.
	Events int
	// Intensity in (0, 1] is the target fraction of usable tiles kept
	// occupied: higher values mean more live modules and more pressure
	// on the free space (0 = 0.5).
	Intensity float64
	// Device sizes the modules relative to the fabric (nil = FX70T).
	Device *device.Device
}

// moduleTemplate is one draw of the workload's module population:
// requirement shapes modeled on the paper's Table I, scaled down so an
// online mix of them churns the device.
type moduleTemplate struct {
	label string
	req   device.Requirements
}

func templates() []moduleTemplate {
	return []moduleTemplate{
		{"clb-s", device.Requirements{device.ClassCLB: 4}},
		{"clb-m", device.Requirements{device.ClassCLB: 8}},
		{"clb-l", device.Requirements{device.ClassCLB: 16}},
		{"clb-xl", device.Requirements{device.ClassCLB: 28}},
		{"bram-s", device.Requirements{device.ClassCLB: 5, device.ClassBRAM: 1}},
		{"bram-m", device.Requirements{device.ClassCLB: 10, device.ClassBRAM: 2}},
		{"dsp-s", device.Requirements{device.ClassCLB: 6, device.ClassDSP: 1}},
		{"dsp-m", device.Requirements{device.ClassCLB: 12, device.ClassDSP: 2}},
	}
}

// GenerateWorkload emits a deterministic arrival/departure stream. The
// generator tracks which modules it has live and how many tiles they
// minimally require; it emits arrivals while the tracked load is below
// Intensity and departures (of a random live module) while above, with
// enough randomness that the mix churns and fragments the free space.
func GenerateWorkload(cfg WorkloadConfig) []Event {
	if cfg.Device == nil {
		cfg.Device = device.VirtexFX70T()
	}
	if cfg.Intensity <= 0 || cfg.Intensity > 1 {
		cfg.Intensity = 0.5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tmpl := templates()
	usable := cfg.Device.UsableTiles()

	type liveMod struct {
		name  string
		tiles int
	}
	var live []liveMod
	load := 0 // sum of minimal tile requirements of live modules
	next := 0 // next module number

	minTiles := func(req device.Requirements) int {
		total := 0
		for _, n := range req {
			total += n
		}
		return total
	}

	events := make([]Event, 0, cfg.Events)
	for len(events) < cfg.Events {
		occupancy := float64(load) / float64(usable)
		arrive := occupancy < cfg.Intensity
		// Randomize near the target so the stream keeps churning
		// instead of settling into arrivals-then-departures phases.
		if len(live) > 0 && rng.Float64() < 0.35 {
			arrive = !arrive
		}
		if len(live) == 0 {
			arrive = true
		}
		if arrive {
			t := tmpl[rng.Intn(len(tmpl))]
			name := fmt.Sprintf("%s-%d", t.label, next)
			next++
			events = append(events, Event{
				Kind: Arrival,
				Name: name,
				Req:  t.req.Clone(),
				Mode: rng.Int63n(1 << 30),
			})
			live = append(live, liveMod{name: name, tiles: minTiles(t.req)})
			load += minTiles(t.req)
		} else {
			i := rng.Intn(len(live))
			events = append(events, Event{Kind: Departure, Name: live[i].name})
			load -= live[i].tiles
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	// Number the stream so replays and retries are idempotent against a
	// durable session.
	for i := range events {
		events[i].ClientSeq = int64(i + 1)
	}
	return events
}
