package flight

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestRecordAssignsMonotonicSeqs(t *testing.T) {
	r := NewRecorder(4)
	for i := 1; i <= 3; i++ {
		if seq := r.Record(Record{Engine: "exact"}); seq != int64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	if r.Len() != 3 || r.Total() != 3 {
		t.Fatalf("len/total = %d/%d, want 3/3", r.Len(), r.Total())
	}
	rec, ok := r.Get(2)
	if !ok || rec.Seq != 2 || rec.Time.IsZero() {
		t.Fatalf("Get(2) = %+v, %v", rec, ok)
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRecorder(3)
	for i := 1; i <= 7; i++ {
		r.Record(Record{Engine: fmt.Sprintf("e%d", i)})
	}
	if r.Len() != 3 || r.Total() != 7 {
		t.Fatalf("len/total = %d/%d, want 3/7", r.Len(), r.Total())
	}
	// Seqs 1-4 were overwritten.
	for seq := int64(1); seq <= 4; seq++ {
		if _, ok := r.Get(seq); ok {
			t.Errorf("Get(%d) still present after wraparound", seq)
		}
	}
	last := r.Last(0)
	if len(last) != 3 {
		t.Fatalf("Last(0) returned %d records, want 3", len(last))
	}
	for i, want := range []int64{7, 6, 5} {
		if last[i].Seq != want {
			t.Errorf("Last[%d].Seq = %d, want %d (newest first)", i, last[i].Seq, want)
		}
	}
	if got := r.Last(2); len(got) != 2 || got[0].Seq != 7 || got[1].Seq != 6 {
		t.Errorf("Last(2) = %+v, want seqs 7,6", got)
	}
}

// TestConcurrentWraparound hammers a tiny ring from many writers (run
// under -race): every record retained afterwards must be internally
// consistent — the slot holds exactly the record whose Seq was assigned
// to it, with no torn Engine/Seq pairs — and the newest-first order of
// Last must hold.
func TestConcurrentWraparound(t *testing.T) {
	r := NewRecorder(8)
	const writers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				obj := float64(w*per + i)
				seq := r.Record(Record{
					Engine:    fmt.Sprintf("w%d", w),
					Outcome:   "solved",
					Objective: &obj,
				})
				if seq <= 0 {
					t.Errorf("non-positive seq %d", seq)
				}
				// Reads interleave with the other writers' wraparound.
				if rec, ok := r.Get(seq); ok && rec.Seq != seq {
					t.Errorf("Get(%d) returned record with seq %d", seq, rec.Seq)
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Total() != writers*per {
		t.Fatalf("total = %d, want %d", r.Total(), writers*per)
	}
	if r.Len() != 8 {
		t.Fatalf("len = %d, want ring capacity 8", r.Len())
	}
	last := r.Last(0)
	for i, rec := range last {
		if i > 0 && last[i-1].Seq != rec.Seq+1 {
			t.Errorf("Last not contiguous newest-first at %d: %d then %d", i, last[i-1].Seq, rec.Seq)
		}
		// Objective encodes (writer, iteration); the engine label must
		// agree, or the slot write was torn.
		w := int(*rec.Objective) / per
		if want := fmt.Sprintf("w%d", w); rec.Engine != want {
			t.Errorf("record %d torn: engine %q, objective %g", rec.Seq, rec.Engine, *rec.Objective)
		}
	}
}

func TestWriteJSONDumpRoundTrips(t *testing.T) {
	r := NewRecorder(4)
	obj := 42.0
	r.Record(Record{Engine: "exact", Outcome: "proven", Objective: &obj, Key: "k1"})
	r.Record(Record{Engine: "fallback", Outcome: "solved", Stages: []Stage{
		{Engine: "exact", Outcome: "no_solution", ElapsedMS: 12.5},
		{Engine: "constructive", Outcome: "solved", ElapsedMS: 1.5},
	}})

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump Dump
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if dump.Total != 2 || len(dump.Records) != 2 {
		t.Fatalf("dump total/records = %d/%d, want 2/2", dump.Total, len(dump.Records))
	}
	// Oldest first in the dump.
	if dump.Records[0].Seq != 1 || dump.Records[1].Seq != 2 {
		t.Fatalf("dump not chronological: seqs %d, %d", dump.Records[0].Seq, dump.Records[1].Seq)
	}
	if got := dump.Records[1].Stages; len(got) != 2 || got[0].Engine != "exact" {
		t.Fatalf("stage timings lost in dump: %+v", got)
	}
}

func TestWriteFile(t *testing.T) {
	r := NewRecorder(2)
	r.Record(Record{Engine: "exact", Outcome: "proven"})
	path := filepath.Join(t.TempDir(), "solves.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dump Dump
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("file dump is not valid JSON: %v", err)
	}
	if len(dump.Records) != 1 || dump.Records[0].Engine != "exact" {
		t.Fatalf("unexpected dump: %+v", dump)
	}
}

func TestGetBounds(t *testing.T) {
	r := NewRecorder(2)
	if _, ok := r.Get(0); ok {
		t.Error("Get(0) on empty ring succeeded")
	}
	if _, ok := r.Get(1); ok {
		t.Error("Get(1) on empty ring succeeded")
	}
	r.Record(Record{})
	if _, ok := r.Get(2); ok {
		t.Error("Get(2) beyond total succeeded")
	}
}

func TestDefaultIsShared(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default() is not a stable shared instance")
	}
	if Default().Cap() != DefaultSize {
		t.Fatalf("Default cap = %d, want %d", Default().Cap(), DefaultSize)
	}
}
