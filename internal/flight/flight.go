// Package flight is the solve flight recorder: a fixed-size ring buffer
// of the most recent solve records, kept in memory for post-mortems and
// fleet questions ("what did the last 200 solves look like?").
//
// Two rings exist in practice. The floorplanner facade records every
// library-level Solve into the shared Default ring, so any process
// embedding the library can ask for its recent solve history. The
// service daemon keeps its own ring (complete with cache-hit records,
// breaker snapshots and traces) behind GET /debug/solves and the
// SIGUSR1 JSON dump.
//
// Recording is lock-cheap: one uncontended mutex acquisition and a
// struct copy into a preallocated slot — no allocation on the record
// path — so it is safe to call on every solve of a busy daemon.
package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
)

// DefaultSize is the ring capacity used by the shared Default recorder
// and by callers that pass a non-positive size to NewRecorder.
const DefaultSize = 128

// Stage is one fallback-chain stage attempt inside a solve (converted
// from guard.StageTiming at the recording boundary).
type Stage struct {
	// Engine names the stage's member engine.
	Engine string `json:"engine"`
	// Outcome labels how the stage ended: an obs outcome ("solved",
	// "no_solution", "panic", ...) or "skipped" for breaker-gated stages
	// that never ran.
	Outcome string `json:"outcome"`
	// ElapsedMS is the stage's wall-clock in milliseconds (0 when
	// skipped).
	ElapsedMS float64 `json:"elapsed_ms"`
	// Err carries the stage's error text, when it failed.
	Err string `json:"err,omitempty"`
}

// Breaker is a per-engine circuit-breaker snapshot at record time.
type Breaker struct {
	// Engine names the breaker's engine.
	Engine string `json:"engine"`
	// State is "closed", "half-open" or "open".
	State string `json:"state"`
	// Trips counts closed-to-open transitions so far.
	Trips int64 `json:"trips"`
}

// SessionStats carries the online-session specifics of an event-batch
// record (pseudo-engine "session"): what the batch did to the live
// device, so /debug/solves and the wide-event export tell the defrag
// story without scraping SIM.json.
type SessionStats struct {
	// SessionID names the session the batch was applied to.
	SessionID string `json:"session_id"`
	// Events counts the events the batch applied (the prefix that
	// succeeded, when the batch failed partway).
	Events int `json:"events"`
	// FragBefore and FragAfter bracket the batch: free-space
	// fragmentation when it started and after its last event (including
	// any defragmentation cycles it triggered).
	FragBefore float64 `json:"frag_before"`
	FragAfter  float64 `json:"frag_after"`
	// Defrags counts the defragmentation cycles the batch executed;
	// Moves the relocation moves those cycles performed.
	Defrags int `json:"defrags,omitempty"`
	Moves   int `json:"moves,omitempty"`
	// CorruptedFrames counts frame-readback mismatches across the
	// batch's executed schedules (0 on a correct run).
	CorruptedFrames int `json:"corrupted_frames,omitempty"`
	// Retries counts frame-write attempts the batch repeated after
	// injected transient faults or detected corruptions.
	Retries int `json:"retries,omitempty"`
	// Rollbacks counts schedule moves the batch undid after mid-schedule
	// hard failures (transactional defrag rollback).
	Rollbacks int `json:"rollbacks,omitempty"`
	// WALRecords counts write-ahead-log records the batch appended
	// (durable sessions only).
	WALRecords int `json:"wal_records,omitempty"`
}

// Record is one solve's flight entry. Seq is assigned by the recorder
// and increases monotonically; a Record with Seq 0 has not been
// recorded yet.
type Record struct {
	// Seq is the recorder-assigned monotonic sequence number (1-based).
	Seq int64 `json:"seq"`
	// Time is when the record was appended.
	Time time.Time `json:"time"`
	// RequestDigest is the short problem digest (guard.RequestDigest)
	// correlating this record with log lines.
	RequestDigest string `json:"request_digest,omitempty"`
	// LabelDigest is the goroutine-label join digest
	// (diag.LabelSet.JoinDigest) the solve ran under: CPU-profile
	// samples carry the same value as the "ldig" pprof label, so a
	// profile sample joins back to the exact solve that was on CPU.
	LabelDigest string `json:"label_digest,omitempty"`
	// Key is the serving-layer cache key, when the solve went through
	// the daemon.
	Key string `json:"key,omitempty"`
	// Engine is the requested engine name.
	Engine string `json:"engine"`
	// Outcome is the obs outcome label ("proven", "solved",
	// "infeasible", "no_solution", "panic", "invalid", "error").
	Outcome string `json:"outcome"`
	// Objective is the returned solution's objective value, when one was
	// returned.
	Objective *float64 `json:"objective,omitempty"`
	// DurationMS is the solve wall-clock in milliseconds (0 for cache
	// hits).
	DurationMS float64 `json:"duration_ms"`
	// Cached marks a record answered from the solution cache rather
	// than a fresh solve.
	Cached bool `json:"cached,omitempty"`
	// OriginSeq links a cached record to the Seq of the record whose
	// solve produced the cached entry (0 when unknown, e.g. after a
	// daemon restart repopulated the cache without the ring).
	OriginSeq int64 `json:"origin_seq,omitempty"`
	// Stages are the fallback-chain stage timings, when the solve ran
	// the fallback meta-engine.
	Stages []Stage `json:"stages,omitempty"`
	// Breakers snapshots the per-engine circuit breakers at record time.
	Breakers []Breaker `json:"breakers,omitempty"`
	// Session carries the online-session batch specifics, for records
	// with Engine "session".
	Session *SessionStats `json:"session,omitempty"`
	// Err carries the failure text for non-ok outcomes.
	Err string `json:"err,omitempty"`
	// Trace is the solve's recorded telemetry, when a recording probe
	// observed it. Cached records carry the original solve's trace.
	Trace *obs.Trace `json:"trace,omitempty"`
}

// Recorder is the ring buffer. Safe for concurrent use.
type Recorder struct {
	mu   sync.Mutex
	ring []Record
	next int64 // total records ever appended == last assigned Seq
}

// NewRecorder returns a ring holding the last size records (DefaultSize
// when size is non-positive).
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = DefaultSize
	}
	return &Recorder{ring: make([]Record, size)}
}

var defaultRecorder = NewRecorder(DefaultSize)

// Default returns the process-wide shared ring the floorplanner facade
// records into.
func Default() *Recorder { return defaultRecorder }

// Record appends rec, assigning and returning its sequence number. A
// zero rec.Time is stamped with the current time. The oldest record is
// overwritten once the ring is full.
func (r *Recorder) Record(rec Record) int64 {
	if rec.Time.IsZero() {
		rec.Time = time.Now()
	}
	r.mu.Lock()
	r.next++
	rec.Seq = r.next
	r.ring[int((r.next-1)%int64(len(r.ring)))] = rec
	r.mu.Unlock()
	return rec.Seq
}

// Cap returns the ring capacity.
func (r *Recorder) Cap() int { return len(r.ring) }

// Total returns how many records were ever appended (>= Len).
func (r *Recorder) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Len returns how many records are currently held.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(min(r.next, int64(len(r.ring))))
}

// Last returns up to n records, newest first. n <= 0 returns everything
// held.
func (r *Recorder) Last(n int) []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	held := int(min(r.next, int64(len(r.ring))))
	if n <= 0 || n > held {
		n = held
	}
	out := make([]Record, 0, n)
	for seq := r.next; seq > r.next-int64(n); seq-- {
		out = append(out, r.ring[int((seq-1)%int64(len(r.ring)))])
	}
	return out
}

// Get returns the record with the given sequence number, if it is still
// in the ring.
func (r *Recorder) Get(seq int64) (Record, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if seq <= 0 || seq > r.next || seq <= r.next-int64(len(r.ring)) {
		return Record{}, false
	}
	return r.ring[int((seq-1)%int64(len(r.ring)))], true
}

// Dump is the JSON shape of a full ring dump.
type Dump struct {
	// DumpedAt is when the dump was taken.
	DumpedAt time.Time `json:"dumped_at"`
	// Total counts records ever appended; Records holds the retained
	// tail, oldest first.
	Total   int64    `json:"total"`
	Records []Record `json:"records"`
}

// WriteJSON writes the full retained ring (oldest first) as one JSON
// document — the SIGUSR1 post-mortem dump.
func (r *Recorder) WriteJSON(w io.Writer) error {
	recs := r.Last(0)
	// Last is newest-first; a post-mortem reads chronologically.
	for i, j := 0, len(recs)-1; i < j; i, j = i+1, j-1 {
		recs[i], recs[j] = recs[j], recs[i]
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Dump{DumpedAt: time.Now(), Total: r.Total(), Records: recs})
}

// WriteFile dumps the ring to path (0644, truncating).
func (r *Recorder) WriteFile(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("flight: creating dump: %w", err)
	}
	werr := r.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
