package device

import (
	"encoding/json"
	"testing"

	"repro/internal/grid"
)

func TestNewValidation(t *testing.T) {
	types := V5Types()
	if _, err := New("bad", 0, 3, types, nil, nil); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := New("bad", 2, 2, types, []TypeID{0, 0, 0}, nil); err == nil {
		t.Fatal("wrong cell count accepted")
	}
	if _, err := New("bad", 2, 2, types, []TypeID{0, 0, 0, 9}, nil); err == nil {
		t.Fatal("invalid type id accepted")
	}
	if _, err := New("bad", 2, 2, types, []TypeID{0, 0, 0, 0},
		[]grid.Rect{{X: 1, Y: 1, W: 5, H: 5}}); err == nil {
		t.Fatal("out-of-bounds forbidden area accepted")
	}
	dup := []TileType{{Name: "a", Class: ClassCLB, Frames: 1}, {Name: "a", Class: ClassCLB, Frames: 2}}
	if _, err := New("bad", 1, 1, dup, []TypeID{0}, nil); err == nil {
		t.Fatal("duplicate type name accepted")
	}
	zero := []TileType{{Name: "z", Class: ClassCLB, Frames: 0}}
	if _, err := New("bad", 1, 1, zero, []TypeID{0}, nil); err == nil {
		t.Fatal("zero frame count accepted")
	}
}

func TestFX70TShape(t *testing.T) {
	d := VirtexFX70T()
	if d.Width() != 41 || d.Height() != 8 {
		t.Fatalf("dimensions = %dx%d", d.Width(), d.Height())
	}
	if !d.IsColumnar() {
		t.Fatal("FX70T model must be columnar")
	}
	counts := d.CountClasses(d.Bounds())
	if counts[ClassCLB] != 35*8 {
		t.Fatalf("CLB tiles = %d, want %d", counts[ClassCLB], 35*8)
	}
	if counts[ClassBRAM] != 4*8 {
		t.Fatalf("BRAM tiles = %d, want %d", counts[ClassBRAM], 4*8)
	}
	if counts[ClassDSP] != 2*8 {
		t.Fatalf("DSP tiles = %d, want %d", counts[ClassDSP], 2*8)
	}
	if len(d.Forbidden()) != 1 {
		t.Fatalf("forbidden areas = %d, want 1 (PowerPC)", len(d.Forbidden()))
	}
}

// TestTableIFrameCounts reproduces the "# Frames" column of Table I: the
// per-region minimal frame counts follow from the 36/30/28 frames-per-tile
// figures.
func TestTableIFrameCounts(t *testing.T) {
	d := VirtexFX70T()
	cases := []struct {
		name           string
		clb, bram, dsp int
		wantFrames     int
	}{
		{"Matched Filter", 25, 0, 5, 1040},
		{"Carrier Recovery", 7, 0, 1, 280},
		{"Demodulator", 5, 2, 0, 240},
		{"Signal Decoder", 12, 1, 0, 462},
		{"Video Decoder", 55, 2, 5, 2180},
	}
	total := 0
	for _, c := range cases {
		rq := Requirements{ClassCLB: c.clb, ClassBRAM: c.bram, ClassDSP: c.dsp}
		got, err := d.FramesForRequirements(rq)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.wantFrames {
			t.Fatalf("%s: frames = %d, want %d", c.name, got, c.wantFrames)
		}
		total += got
	}
	if total != 4202 {
		t.Fatalf("total frames = %d, want 4202 (Table I)", total)
	}
}

func TestCountTilesAndFrames(t *testing.T) {
	d := VirtexFX70T()
	// Columns 4..9 include the DSP column 8; rows 0..4.
	r := grid.Rect{X: 4, Y: 0, W: 6, H: 5}
	counts := d.CountClasses(r)
	if counts[ClassCLB] != 25 || counts[ClassDSP] != 5 || counts[ClassBRAM] != 0 {
		t.Fatalf("counts = %v", counts)
	}
	if got := d.FramesInRect(r); got != 25*36+5*28 {
		t.Fatalf("frames = %d", got)
	}
}

func TestWastedFrames(t *testing.T) {
	d := VirtexFX70T()
	r := grid.Rect{X: 4, Y: 0, W: 6, H: 5} // 25 CLB + 5 DSP exactly
	rq := Requirements{ClassCLB: 25, ClassDSP: 5}
	if !d.Satisfies(r, rq) {
		t.Fatal("rect should satisfy requirements")
	}
	if w := d.WastedFrames(r, rq); w != 0 {
		t.Fatalf("waste = %d, want 0", w)
	}
	bigger := grid.Rect{X: 4, Y: 0, W: 6, H: 6}
	if w := d.WastedFrames(bigger, rq); w != 5*36+28 {
		t.Fatalf("waste = %d, want %d", w, 5*36+28)
	}
	small := grid.Rect{X: 4, Y: 0, W: 2, H: 2}
	if d.Satisfies(small, rq) {
		t.Fatal("undersized rect must not satisfy requirements")
	}
}

func TestForbiddenQueries(t *testing.T) {
	d := VirtexFX70T()
	ppc := d.Forbidden()[0]
	if !d.InForbidden(ppc.X, ppc.Y) {
		t.Fatal("PPC corner should be forbidden")
	}
	if d.InForbidden(0, 0) {
		t.Fatal("(0,0) should be free")
	}
	if d.CanPlace(grid.Rect{X: ppc.X - 1, Y: ppc.Y, W: 3, H: 1}) {
		t.Fatal("rect crossing PPC should be rejected")
	}
	if !d.CanPlace(grid.Rect{X: 0, Y: 0, W: 5, H: 2}) {
		t.Fatal("free rect rejected")
	}
	if d.CanPlace(grid.Rect{X: 39, Y: 6, W: 5, H: 5}) {
		t.Fatal("out-of-bounds rect accepted")
	}
}

// TestFigure1Compatibility reproduces the compatibility example of
// Figure 1: A and B compatible, A and C not.
func TestFigure1Compatibility(t *testing.T) {
	d := Figure1Device()
	// Columns: B B G B B G B G B B (B=blue/0, G=green/1).
	a := grid.Rect{X: 1, Y: 0, W: 2, H: 3} // cols 1-2: blue, green
	b := grid.Rect{X: 4, Y: 3, W: 2, H: 3} // cols 4-5: blue, green
	c := grid.Rect{X: 7, Y: 0, W: 2, H: 3} // cols 7-8: green, blue (mirrored)
	if !d.Compatible(a, b) {
		t.Fatal("A and B must be compatible")
	}
	if d.Compatible(a, c) {
		t.Fatal("A and C must not be compatible (tile order differs)")
	}
	if d.Compatible(a, grid.Rect{X: 1, Y: 0, W: 2, H: 4}) {
		t.Fatal("different shapes must not be compatible")
	}
}

func TestCompatibleIsEquivalenceLike(t *testing.T) {
	d := VirtexFX70T()
	a := grid.Rect{X: 2, Y: 1, W: 4, H: 3}
	if !d.Compatible(a, a) {
		t.Fatal("compatibility must be reflexive")
	}
	for _, b := range d.CompatiblePlacements(a) {
		if !d.Compatible(b, a) {
			t.Fatalf("compatibility must be symmetric (%v vs %v)", a, b)
		}
	}
}

func TestCompatiblePlacementsRespectForbidden(t *testing.T) {
	d := VirtexFX70T()
	src := grid.Rect{X: 14, Y: 0, W: 4, H: 2} // same columns as the PPC block
	for _, p := range d.CompatiblePlacements(src) {
		if d.OverlapsForbidden(p) {
			t.Fatalf("placement %v overlaps forbidden area", p)
		}
		if !d.Compatible(src, p) {
			t.Fatalf("placement %v not compatible with source", p)
		}
	}
}

func TestCompatibleXOffsets(t *testing.T) {
	d := VirtexFX70T()
	// Signature of the matched-filter shape: C C C C D C (cols 4..9).
	sig := d.ColumnSignature(grid.Rect{X: 4, Y: 0, W: 6, H: 1})
	offsets := d.CompatibleXOffsets(sig)
	want := []int{4, 24}
	if len(offsets) != len(want) {
		t.Fatalf("offsets = %v, want %v", offsets, want)
	}
	for i := range want {
		if offsets[i] != want[i] {
			t.Fatalf("offsets = %v, want %v", offsets, want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := VirtexFX70T()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var dec Device
	if err := json.Unmarshal(data, &dec); err != nil {
		t.Fatal(err)
	}
	if dec.Name() != orig.Name() || dec.Width() != orig.Width() || dec.Height() != orig.Height() {
		t.Fatalf("round trip changed identity: %s %dx%d", dec.Name(), dec.Width(), dec.Height())
	}
	for c := 0; c < orig.Width(); c++ {
		for r := 0; r < orig.Height(); r++ {
			if dec.TypeAt(c, r) != orig.TypeAt(c, r) {
				t.Fatalf("cell (%d,%d) changed", c, r)
			}
		}
	}
	if len(dec.Forbidden()) != len(orig.Forbidden()) {
		t.Fatal("forbidden areas lost")
	}
}

func TestJSONGeneralGrid(t *testing.T) {
	types := []TileType{
		{Name: "a", Class: ClassCLB, Frames: 1},
		{Name: "b", Class: ClassBRAM, Frames: 2},
	}
	orig, err := New("mix", 2, 2, types, []TypeID{0, 1, 1, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if orig.IsColumnar() {
		t.Fatal("device should not be columnar")
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var dec Device
	if err := json.Unmarshal(data, &dec); err != nil {
		t.Fatal(err)
	}
	if dec.TypeAt(0, 1) != 1 || dec.TypeAt(1, 1) != 0 {
		t.Fatal("general grid cells lost in round trip")
	}
}

func TestGenerate(t *testing.T) {
	d := MustGenerate(GeneratorConfig{
		Width: 60, Height: 10, BRAMEvery: 8, DSPEvery: 15,
		ForbiddenBlocks: 2, Seed: 9,
	})
	if !d.IsColumnar() {
		t.Fatal("generated device must be columnar")
	}
	counts := d.CountClasses(d.Bounds())
	if counts[ClassBRAM] == 0 || counts[ClassDSP] == 0 {
		t.Fatalf("generator produced no BRAM/DSP columns: %v", counts)
	}
	if _, err := Generate(GeneratorConfig{Width: 0, Height: 5}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestFramesForRequirementsErrors(t *testing.T) {
	d := VirtexFX70T()
	if _, err := d.FramesForRequirements(Requirements{ClassIO: 3}); err == nil {
		t.Fatal("unknown class accepted")
	}
	types := []TileType{
		{Name: "clb-a", Class: ClassCLB, Frames: 10},
		{Name: "clb-b", Class: ClassCLB, Frames: 20},
	}
	mixed, err := New("mixed", 2, 1, types, []TypeID{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mixed.FramesForRequirements(Requirements{ClassCLB: 1}); err == nil {
		t.Fatal("ambiguous class frame count accepted")
	}
}

func TestColumnType(t *testing.T) {
	d := VirtexFX70T()
	if d.ColumnType(8) != V5DSP {
		t.Fatalf("column 8 should be DSP")
	}
	if d.ColumnType(3) != V5BRAM {
		t.Fatalf("column 3 should be BRAM")
	}
	if d.ColumnType(0) != V5CLB {
		t.Fatalf("column 0 should be CLB")
	}
}

func TestTypeIDByName(t *testing.T) {
	d := VirtexFX70T()
	id, ok := d.TypeIDByName("DSP")
	if !ok || id != V5DSP {
		t.Fatalf("lookup DSP = %d, %v", id, ok)
	}
	if _, ok := d.TypeIDByName("nope"); ok {
		t.Fatal("unknown name found")
	}
}

func TestCountsHelpers(t *testing.T) {
	a := Counts{1, 2, 3}
	b := Counts{4, 0, 1}
	a.Add(b)
	if !a.Equal(Counts{5, 2, 4}) {
		t.Fatalf("add = %v", a)
	}
	if a.Total() != 11 {
		t.Fatalf("total = %d", a.Total())
	}
	if a.Equal(Counts{5, 2}) {
		t.Fatal("length mismatch must not be equal")
	}
}

func TestRequirementsHelpers(t *testing.T) {
	rq := Requirements{ClassCLB: 2}
	cp := rq.Clone()
	cp[ClassCLB] = 7
	if rq[ClassCLB] != 2 {
		t.Fatal("clone aliases original")
	}
	if rq.IsZero() {
		t.Fatal("non-zero requirements reported zero")
	}
	if !(Requirements{ClassCLB: 0}).IsZero() {
		t.Fatal("zero requirements not detected")
	}
}

func TestKintex7K160T(t *testing.T) {
	d := Kintex7K160T()
	if !d.IsColumnar() {
		t.Fatal("K160T model must be columnar")
	}
	counts := d.CountClasses(d.Bounds())
	if counts[ClassBRAM] == 0 || counts[ClassDSP] == 0 {
		t.Fatalf("counts = %v", counts)
	}
	if counts[ClassCLB]+counts[ClassBRAM]+counts[ClassDSP] != 70*12 {
		t.Fatalf("tile total = %v", counts)
	}
	if len(d.Forbidden()) != 0 {
		t.Fatal("7-series model should have no forbidden areas")
	}
	// Frames follow the 7-series figures.
	id, _ := d.TypeIDByName("BRAM")
	if d.Type(id).Frames != V7BRAMFrames {
		t.Fatalf("BRAM frames = %d", d.Type(id).Frames)
	}
}
