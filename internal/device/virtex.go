package device

import "repro/internal/grid"

// Frames per tile type on Virtex-5, as given in Section VI of the paper:
// a CLB tile takes 36 configuration frames, a BRAM tile 30, a DSP tile 28.
const (
	V5CLBFrames  = 36
	V5BRAMFrames = 30
	V5DSPFrames  = 28
)

// Tile type ids used by the Virtex-5 style builders, indices into the
// slice returned by V5Types.
const (
	V5CLB TypeID = iota
	V5BRAM
	V5DSP
)

// V5Types returns the three Virtex-5 tile types used by the paper's
// evaluation (CLB, BRAM, DSP with 36/30/28 frames).
func V5Types() []TileType {
	return []TileType{
		{Name: "CLB", Class: ClassCLB, Frames: V5CLBFrames},
		{Name: "BRAM", Class: ClassBRAM, Frames: V5BRAMFrames},
		{Name: "DSP", Class: ClassDSP, Frames: V5DSPFrames},
	}
}

// VirtexFX70T returns the tile-level model of the Xilinx Virtex-5 FX70T
// used as the target device in Section VI.
//
// The model is reconstructed from public FX70T figures at tile granularity
// (a tile is one column wide and one clock region tall):
//
//   - 8 tile rows (8 clock regions of 20 CLBs each: 160 CLB rows),
//   - 35 CLB columns (5,600 CLBs = 11,200 slices),
//   - 4 BRAM columns (4 x 8 = 32 BRAM tiles),
//   - 2 DSP columns (2 x 8 x 8 = 128 DSP48E slices),
//   - one PowerPC 440 hard block near the center, modeled as a 4x4-tile
//     forbidden area that reconfigurable regions and free-compatible areas
//     must not cross (the "model simplification" of Section III.A).
//
// The left-to-right column mix interleaves BRAM and DSP columns among the
// CLB fabric the way the FX70T die does; exact column indices are a
// documented approximation (see DESIGN.md) — the floorplanner only ever
// observes the device through this tile model.
func VirtexFX70T() *Device {
	const (
		width  = 41
		height = 8
	)
	colTypes := make([]TypeID, width)
	for c := range colTypes {
		colTypes[c] = V5CLB
	}
	for _, c := range [...]int{3, 13, 23, 33} {
		colTypes[c] = V5BRAM
	}
	for _, c := range [...]int{8, 28} {
		colTypes[c] = V5DSP
	}
	ppc := grid.Rect{X: 14, Y: 2, W: 4, H: 4}
	d, err := NewColumnar("xc5vfx70t", colTypes, height, V5Types(), []grid.Rect{ppc})
	if err != nil {
		panic("device: VirtexFX70T construction: " + err.Error())
	}
	return d
}

// Frames per tile type on 7-series devices: a CLB tile takes 36 frames, a
// BRAM or DSP tile 28.
const (
	V7CLBFrames  = 36
	V7BRAMFrames = 28
	V7DSPFrames  = 28
)

// V7Types returns 7-series tile types.
func V7Types() []TileType {
	return []TileType{
		{Name: "CLB", Class: ClassCLB, Frames: V7CLBFrames},
		{Name: "BRAM", Class: ClassBRAM, Frames: V7BRAMFrames},
		{Name: "DSP", Class: ClassDSP, Frames: V7DSPFrames},
	}
}

// Kintex7K160T returns a tile-level model of a Kintex-7 160T-class
// device — the "more recent devices are compliant with the columnar
// description" claim of Section III made concrete. The fabric is fully
// columnar (7-series hard blocks sit outside the CLB grid), larger than
// the FX70T, with a denser BRAM/DSP column mix:
//
//   - 12 tile rows (clock regions),
//   - 70 columns: BRAM every 8th column (8 total), DSP every 11th
//     (6 total), CLB elsewhere.
func Kintex7K160T() *Device {
	const (
		width  = 70
		height = 12
	)
	// V7Types orders CLB/BRAM/DSP exactly like V5Types, so the shared
	// V5CLB/V5BRAM/V5DSP ids index it correctly.
	colTypes := make([]TypeID, width)
	for c := range colTypes {
		switch {
		case c%11 == 5:
			colTypes[c] = V5DSP
		case c%8 == 3:
			colTypes[c] = V5BRAM
		default:
			colTypes[c] = V5CLB
		}
	}
	d, err := NewColumnar("xc7k160t", colTypes, height, V7Types(), nil)
	if err != nil {
		panic("device: Kintex7K160T construction: " + err.Error())
	}
	return d
}

// Figure1Device returns the small two-type device of Figure 1, used to
// illustrate compatible (A, B) and non-compatible (A, C) areas. Columns
// alternate between the "blue" and "green" tile types.
func Figure1Device() *Device {
	types := []TileType{
		{Name: "blue", Class: ClassCLB, Frames: 4},
		{Name: "green", Class: ClassBRAM, Frames: 2},
	}
	colTypes := []TypeID{0, 0, 1, 0, 0, 1, 0, 1, 0, 0}
	d, err := NewColumnar("figure1", colTypes, 6, types, nil)
	if err != nil {
		panic("device: Figure1Device construction: " + err.Error())
	}
	return d
}

// Figure2Device returns a device in the spirit of Figure 2: a columnar
// fabric with two hard processors (gray blocks) that become forbidden
// areas f1 and f2 after the revised partitioning procedure.
func Figure2Device() *Device {
	types := []TileType{
		{Name: "blue", Class: ClassCLB, Frames: 4},
		{Name: "green", Class: ClassBRAM, Frames: 2},
		{Name: "orange", Class: ClassDSP, Frames: 3},
	}
	colTypes := []TypeID{0, 0, 1, 0, 2, 0, 0, 1, 0, 0, 0, 2}
	forbidden := []grid.Rect{
		{X: 1, Y: 1, W: 2, H: 2},
		{X: 8, Y: 4, W: 3, H: 2},
	}
	d, err := NewColumnar("figure2", colTypes, 7, types, forbidden)
	if err != nil {
		panic("device: Figure2Device construction: " + err.Error())
	}
	return d
}
