package device

import "repro/internal/grid"

// Compatible reports whether two areas of the device are compatible in the
// sense of Section II of the paper: same shape, same size, and the same
// relative positioning of tiles of the same type. A bitstream configured
// for area a can (in the model) be relocated to area b iff they are
// compatible, because every frame lands on a tile of the identical type.
//
// Areas that extend outside the device are never compatible.
func (d *Device) Compatible(a, b grid.Rect) bool {
	if !a.SameShape(b) {
		return false
	}
	bounds := d.Bounds()
	if !bounds.ContainsRect(a) || !bounds.ContainsRect(b) {
		return false
	}
	for dc := 0; dc < a.W; dc++ {
		for dr := 0; dr < a.H; dr++ {
			if d.TypeAt(a.X+dc, a.Y+dr) != d.TypeAt(b.X+dc, b.Y+dr) {
				return false
			}
		}
	}
	return true
}

// ColumnSignature returns the left-to-right sequence of column tile types
// under rect. On a columnar device two placeable areas with equal heights
// are compatible iff their signatures match, which is what the MILP
// constraints of Section IV encode portion-wise.
func (d *Device) ColumnSignature(rect grid.Rect) []TypeID {
	sig := make([]TypeID, 0, rect.W)
	rect.Columns(func(c int) {
		sig = append(sig, d.TypeAt(c, rect.Y))
	})
	return sig
}

// CompatiblePlacements enumerates every legal placement compatible with
// src: same shape, pairwise-identical tile types, inside the device, and
// clear of forbidden areas. src itself is included when legal. Results are
// ordered by (x, y).
func (d *Device) CompatiblePlacements(src grid.Rect) []grid.Rect {
	var out []grid.Rect
	if src.Empty() {
		return out
	}
	for x := 0; x+src.W <= d.w; x++ {
		if !d.columnsMatch(src, x) {
			continue
		}
		for y := 0; y+src.H <= d.h; y++ {
			cand := grid.Rect{X: x, Y: y, W: src.W, H: src.H}
			if !d.Compatible(src, cand) {
				continue
			}
			if d.OverlapsForbidden(cand) {
				continue
			}
			out = append(out, cand)
		}
	}
	return out
}

// columnsMatch is a cheap columnar pre-filter for CompatiblePlacements: it
// compares the type of the first row of src's columns against the columns
// starting at x. On columnar devices this decides compatibility for any y;
// on general devices Compatible re-checks every tile.
func (d *Device) columnsMatch(src grid.Rect, x int) bool {
	for dc := 0; dc < src.W; dc++ {
		if d.TypeAt(src.X+dc, src.Y) != d.TypeAt(x+dc, 0) {
			return false
		}
	}
	return true
}

// CompatibleXOffsets returns, for a columnar device, every column x at
// which an area of width w whose signature equals sig can be placed
// (ignoring forbidden areas and the vertical position). This is the
// translation set exploited by the combinatorial engine.
func (d *Device) CompatibleXOffsets(sig []TypeID) []int {
	var out []int
	w := len(sig)
	for x := 0; x+w <= d.w; x++ {
		ok := true
		for i := 0; i < w; i++ {
			if d.TypeAt(x+i, 0) != sig[i] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, x)
		}
	}
	return out
}
