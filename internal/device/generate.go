package device

import (
	"fmt"
	"math/rand"

	"repro/internal/grid"
)

// GeneratorConfig parameterizes the synthetic columnar device generator
// used by the scaling benchmarks.
type GeneratorConfig struct {
	// Width and Height are the tile-grid dimensions.
	Width, Height int
	// BRAMEvery inserts a BRAM column every BRAMEvery columns (0 = none).
	BRAMEvery int
	// DSPEvery inserts a DSP column every DSPEvery columns (0 = none).
	// When both fall on the same column, DSP wins.
	DSPEvery int
	// ForbiddenBlocks carves this many random forbidden rectangles out of
	// the fabric (hard blocks).
	ForbiddenBlocks int
	// ForbiddenMaxW / ForbiddenMaxH bound the forbidden block size.
	ForbiddenMaxW, ForbiddenMaxH int
	// Seed drives the deterministic placement of forbidden blocks.
	Seed int64
}

// Generate builds a synthetic Virtex-style columnar device.
func Generate(cfg GeneratorConfig) (*Device, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("device: generator needs positive dimensions, got %dx%d", cfg.Width, cfg.Height)
	}
	colTypes := make([]TypeID, cfg.Width)
	for c := range colTypes {
		colTypes[c] = V5CLB
		if cfg.BRAMEvery > 0 && c%cfg.BRAMEvery == cfg.BRAMEvery/2 {
			colTypes[c] = V5BRAM
		}
		if cfg.DSPEvery > 0 && c%cfg.DSPEvery == cfg.DSPEvery/2 {
			colTypes[c] = V5DSP
		}
	}
	maxW := cfg.ForbiddenMaxW
	if maxW <= 0 {
		maxW = 2
	}
	maxH := cfg.ForbiddenMaxH
	if maxH <= 0 {
		maxH = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var forbidden []grid.Rect
	for i := 0; i < cfg.ForbiddenBlocks; i++ {
		w := 1 + rng.Intn(maxW)
		h := 1 + rng.Intn(maxH)
		if w > cfg.Width {
			w = cfg.Width
		}
		if h > cfg.Height {
			h = cfg.Height
		}
		r := grid.Rect{
			X: rng.Intn(cfg.Width - w + 1),
			Y: rng.Intn(cfg.Height - h + 1),
			W: w,
			H: h,
		}
		if !grid.AnyOverlap(r, forbidden) {
			forbidden = append(forbidden, r)
		}
	}
	name := fmt.Sprintf("synthetic-%dx%d-s%d", cfg.Width, cfg.Height, cfg.Seed)
	return NewColumnar(name, colTypes, cfg.Height, V5Types(), forbidden)
}

// MustGenerate is Generate for static configurations known to be valid.
func MustGenerate(cfg GeneratorConfig) *Device {
	d, err := Generate(cfg)
	if err != nil {
		panic("device: MustGenerate: " + err.Error())
	}
	return d
}
