package device

import (
	"fmt"
	"sort"

	"repro/internal/grid"
)

// Device is a tile-level FPGA model: a W x H grid of typed tiles plus a set
// of forbidden areas that reconfigurable regions must not cross (hard
// processors, configuration columns, ...).
//
// Rows are numbered 0..H-1 top to bottom, columns 0..W-1 left to right.
// In the paper rows correspond to clock regions: a tile is one column wide
// and one clock region tall.
//
// A Device is immutable once constructed: all fields are unexported, no
// method mutates them, and accessors that expose internal slices document
// them as read-only. Callers must not modify those slices — parts of the
// system (notably core's candidate cache) key derived data on Device
// pointer identity and depend on this immutability.
type Device struct {
	name      string
	w, h      int
	types     []TileType
	cells     []TypeID // row-major: cells[r*w+c]
	forbidden []grid.Rect
}

// Dimension caps: real devices are a few hundred tiles on a side, so
// these are generous while keeping w*h far from integer overflow and
// keeping a malformed wire payload from forcing a huge allocation.
const (
	// maxDim bounds device width and height.
	maxDim = 1 << 16
	// maxTiles bounds the total cell count.
	maxTiles = 1 << 26
)

// checkDims validates device dimensions before any w*h arithmetic or
// allocation (both New and NewColumnar route through it).
func checkDims(w, h int) error {
	if w <= 0 || h <= 0 {
		return fmt.Errorf("device: non-positive dimensions %dx%d", w, h)
	}
	if w > maxDim || h > maxDim {
		return fmt.Errorf("device: dimensions %dx%d exceed the %d-tile side cap", w, h, maxDim)
	}
	// Division, not w*h: on 32-bit platforms two maxDim sides overflow the
	// product to 0 and would slip past the cap (w is positive here).
	if h > maxTiles/w {
		return fmt.Errorf("device: %dx%d tiles exceeds the %d-tile cap", w, h, maxTiles)
	}
	return nil
}

// New builds a device from an explicit cell grid. cells must have w*h
// entries in row-major order, each a valid index into types. Forbidden
// areas must lie inside the grid.
func New(name string, w, h int, types []TileType, cells []TypeID, forbidden []grid.Rect) (*Device, error) {
	if err := checkDims(w, h); err != nil {
		return nil, err
	}
	if len(cells) != w*h {
		return nil, fmt.Errorf("device: got %d cells, want %d", len(cells), w*h)
	}
	if len(types) == 0 {
		return nil, fmt.Errorf("device: no tile types")
	}
	seen := map[string]bool{}
	for _, t := range types {
		if t.Frames <= 0 {
			return nil, fmt.Errorf("device: tile type %q has non-positive frame count %d", t.Name, t.Frames)
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("device: duplicate tile type name %q", t.Name)
		}
		seen[t.Name] = true
	}
	for i, id := range cells {
		if int(id) < 0 || int(id) >= len(types) {
			return nil, fmt.Errorf("device: cell %d has invalid type id %d", i, id)
		}
	}
	bounds := grid.Rect{X: 0, Y: 0, W: w, H: h}
	for _, f := range forbidden {
		if f.Empty() {
			return nil, fmt.Errorf("device: empty forbidden area %v", f)
		}
		if !bounds.ContainsRect(f) {
			return nil, fmt.Errorf("device: forbidden area %v outside %dx%d grid", f, w, h)
		}
	}
	d := &Device{
		name:      name,
		w:         w,
		h:         h,
		types:     append([]TileType(nil), types...),
		cells:     append([]TypeID(nil), cells...),
		forbidden: append([]grid.Rect(nil), forbidden...),
	}
	return d, nil
}

// NewColumnar builds a device whose tile type is uniform within each
// column, the layout targeted by the paper's simplified model (Section
// III.A). colTypes gives the tile type of each column, left to right.
func NewColumnar(name string, colTypes []TypeID, h int, types []TileType, forbidden []grid.Rect) (*Device, error) {
	w := len(colTypes)
	if err := checkDims(w, h); err != nil {
		return nil, err
	}
	cells := make([]TypeID, w*h)
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			cells[r*w+c] = colTypes[c]
		}
	}
	return New(name, w, h, types, cells, forbidden)
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Width returns the number of tile columns.
func (d *Device) Width() int { return d.w }

// Height returns the number of tile rows.
func (d *Device) Height() int { return d.h }

// Bounds returns the full device rectangle.
func (d *Device) Bounds() grid.Rect { return grid.Rect{X: 0, Y: 0, W: d.w, H: d.h} }

// Types returns the device's tile types. The returned slice must not be
// modified.
func (d *Device) Types() []TileType { return d.types }

// NumTypes returns the number of distinct tile types.
func (d *Device) NumTypes() int { return len(d.types) }

// Type returns the tile type with the given id.
func (d *Device) Type(id TypeID) TileType { return d.types[id] }

// TypeAt returns the type id of the tile at column c, row r.
func (d *Device) TypeAt(c, r int) TypeID { return d.cells[r*d.w+c] }

// TileAt returns the full tile type at column c, row r.
func (d *Device) TileAt(c, r int) TileType { return d.types[d.cells[r*d.w+c]] }

// Forbidden returns the device's forbidden areas. The returned slice must
// not be modified.
func (d *Device) Forbidden() []grid.Rect { return d.forbidden }

// InForbidden reports whether tile (c, r) belongs to a forbidden area.
func (d *Device) InForbidden(c, r int) bool {
	for _, f := range d.forbidden {
		if f.Contains(c, r) {
			return true
		}
	}
	return false
}

// OverlapsForbidden reports whether rect overlaps any forbidden area.
func (d *Device) OverlapsForbidden(rect grid.Rect) bool {
	return grid.AnyOverlap(rect, d.forbidden)
}

// CanPlace reports whether rect is a legal area for a reconfigurable region
// or free-compatible area: inside the device and clear of forbidden areas.
func (d *Device) CanPlace(rect grid.Rect) bool {
	return !rect.Empty() && d.Bounds().ContainsRect(rect) && !d.OverlapsForbidden(rect)
}

// CountTiles tallies the tiles covered by rect per tile type. Tiles outside
// the device are not counted.
func (d *Device) CountTiles(rect grid.Rect) Counts {
	counts := make(Counts, len(d.types))
	clipped, ok := rect.Intersect(d.Bounds())
	if !ok {
		return counts
	}
	clipped.Tiles(func(c, r int) {
		counts[d.TypeAt(c, r)]++
	})
	return counts
}

// CountClasses tallies the tiles covered by rect per resource class.
func (d *Device) CountClasses(rect grid.Rect) Requirements {
	out := Requirements{}
	for id, n := range d.CountTiles(rect) {
		if n > 0 {
			out[d.types[id].Class] += n
		}
	}
	return out
}

// FramesInRect returns the number of configuration frames covered by rect.
// This is the "size of the configuration data" cost of allocating rect.
func (d *Device) FramesInRect(rect grid.Rect) int {
	frames := 0
	for id, n := range d.CountTiles(rect) {
		frames += n * d.types[id].Frames
	}
	return frames
}

// FramesForRequirements returns the minimum number of frames needed to hold
// the given class requirements on this device (Table I, last column): for
// each class, the per-tile frame count of that class times the tile count.
// It returns an error if a class maps to tile types with differing frame
// counts, or to no tile type at all.
func (d *Device) FramesForRequirements(rq Requirements) (int, error) {
	classFrames := map[Class]int{}
	for _, t := range d.types {
		if f, ok := classFrames[t.Class]; ok && f != t.Frames {
			return 0, fmt.Errorf("device: class %s has tile types with different frame counts (%d vs %d)", t.Class, f, t.Frames)
		}
		classFrames[t.Class] = t.Frames
	}
	total := 0
	classes := make([]Class, 0, len(rq))
	for cl := range rq {
		classes = append(classes, cl)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, cl := range classes {
		n := rq[cl]
		if n == 0 {
			continue
		}
		f, ok := classFrames[cl]
		if !ok {
			return 0, fmt.Errorf("device: no tile type provides class %s", cl)
		}
		total += n * f
	}
	return total, nil
}

// Satisfies reports whether the tiles covered by rect meet the class
// requirements rq (coverage may exceed the requirements; the excess is
// waste).
func (d *Device) Satisfies(rect grid.Rect, rq Requirements) bool {
	have := d.CountClasses(rect)
	for cl, need := range rq {
		if have[cl] < need {
			return false
		}
	}
	return true
}

// WastedFrames returns the configuration frames covered by rect in excess
// of the class requirements rq. Excess tiles of a class waste that class's
// per-tile frames; rect must satisfy rq for the result to be meaningful.
func (d *Device) WastedFrames(rect grid.Rect, rq Requirements) int {
	classFrames := map[Class]int{}
	for _, t := range d.types {
		classFrames[t.Class] = t.Frames
	}
	waste := 0
	have := d.CountClasses(rect)
	classes := make([]Class, 0, len(have))
	for cl := range have {
		classes = append(classes, cl)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, cl := range classes {
		n := have[cl]
		extra := n - rq[cl]
		if extra > 0 {
			waste += extra * classFrames[cl]
		}
	}
	return waste
}

// TotalFrames returns the configuration frames of the whole device,
// including tiles under forbidden areas.
func (d *Device) TotalFrames() int {
	return d.FramesInRect(d.Bounds())
}

// IsColumnar reports whether every column has a uniform tile type, the
// precondition (after forbidden-tile replacement, which this model encodes
// directly) for the paper's columnar partitioning.
func (d *Device) IsColumnar() bool {
	for c := 0; c < d.w; c++ {
		t := d.TypeAt(c, 0)
		for r := 1; r < d.h; r++ {
			if d.TypeAt(c, r) != t {
				return false
			}
		}
	}
	return true
}

// ColumnType returns the tile type of column c. It panics if the column is
// not uniform; check IsColumnar first for untrusted devices.
func (d *Device) ColumnType(c int) TypeID {
	t := d.TypeAt(c, 0)
	for r := 1; r < d.h; r++ {
		if d.TypeAt(c, r) != t {
			panic(fmt.Sprintf("device: column %d is not uniform", c))
		}
	}
	return t
}

// ClassOf returns the resource class of the given tile type id.
func (d *Device) ClassOf(id TypeID) Class { return d.types[id].Class }

// TypeIDByName looks up a tile type id by name.
func (d *Device) TypeIDByName(name string) (TypeID, bool) {
	for i, t := range d.types {
		if t.Name == name {
			return TypeID(i), true
		}
	}
	return 0, false
}
