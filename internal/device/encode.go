package device

import (
	"encoding/json"
	"fmt"

	"repro/internal/grid"
)

// deviceJSON is the on-disk representation used by the CLI tools. Columnar
// devices serialize their column types; general devices serialize the full
// cell grid.
type deviceJSON struct {
	Name      string      `json:"name"`
	Width     int         `json:"width"`
	Height    int         `json:"height"`
	Types     []TileType  `json:"types"`
	Columns   []TypeID    `json:"columns,omitempty"`
	Cells     []TypeID    `json:"cells,omitempty"`
	Forbidden []grid.Rect `json:"forbidden,omitempty"`
}

// MarshalJSON encodes the device, using the compact columnar form when the
// device is columnar.
func (d *Device) MarshalJSON() ([]byte, error) {
	out := deviceJSON{
		Name:      d.name,
		Width:     d.w,
		Height:    d.h,
		Types:     d.types,
		Forbidden: d.forbidden,
	}
	if d.IsColumnar() {
		cols := make([]TypeID, d.w)
		for c := 0; c < d.w; c++ {
			cols[c] = d.TypeAt(c, 0)
		}
		out.Columns = cols
	} else {
		out.Cells = append([]TypeID(nil), d.cells...)
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a device written by MarshalJSON.
func (d *Device) UnmarshalJSON(data []byte) error {
	var in deviceJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	var dec *Device
	var err error
	switch {
	case len(in.Columns) > 0:
		if len(in.Columns) != in.Width {
			return fmt.Errorf("device: got %d columns, want %d", len(in.Columns), in.Width)
		}
		dec, err = NewColumnar(in.Name, in.Columns, in.Height, in.Types, in.Forbidden)
	case len(in.Cells) > 0:
		dec, err = New(in.Name, in.Width, in.Height, in.Types, in.Cells, in.Forbidden)
	default:
		return fmt.Errorf("device: JSON has neither columns nor cells")
	}
	if err != nil {
		return err
	}
	*d = *dec
	return nil
}
