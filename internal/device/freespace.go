package device

import "repro/internal/grid"

// UsableTiles returns the number of tiles a reconfigurable region could
// ever cover: the grid minus the tiles under forbidden areas. It is the
// denominator of occupancy and fragmentation metrics over the device.
// Forbidden areas may overlap; overlapped tiles are subtracted once.
func (d *Device) UsableTiles() int {
	if len(d.forbidden) == 0 {
		return d.w * d.h
	}
	m := grid.NewMask(d.w, d.h)
	for _, f := range d.forbidden {
		m.SetRect(f)
	}
	return d.w*d.h - m.Count()
}

// OccupancyMask returns a fresh mask over the device grid with every
// forbidden tile set plus every tile covered by the given rectangles —
// the starting point of a free-space tracker: clear bits are tiles a new
// module could occupy. occupied rectangles may overlap forbidden areas
// or each other freely.
func (d *Device) OccupancyMask(occupied []grid.Rect) *grid.Mask {
	m := grid.NewMask(d.w, d.h)
	for _, f := range d.forbidden {
		m.SetRect(f)
	}
	for _, r := range occupied {
		m.SetRect(r)
	}
	return m
}
