package device

import (
	"testing"

	"repro/internal/grid"
)

func TestUsableTiles(t *testing.T) {
	d := VirtexFX70T()
	// 41x8 grid minus the 4x4 PowerPC block.
	if got, want := d.UsableTiles(), 41*8-16; got != want {
		t.Fatalf("UsableTiles = %d, want %d", got, want)
	}
	if got, want := Kintex7K160T().UsableTiles(), 70*12; got != want {
		t.Fatalf("UsableTiles (no forbidden) = %d, want %d", got, want)
	}
}

func TestOccupancyMask(t *testing.T) {
	d := VirtexFX70T()
	occ := grid.Rect{X: 0, Y: 0, W: 3, H: 2}
	m := d.OccupancyMask([]grid.Rect{occ})
	if !m.Get(0, 0) || !m.Get(2, 1) {
		t.Fatalf("occupied tiles not set")
	}
	if !m.Get(14, 2) {
		t.Fatalf("forbidden (PowerPC) tile not set")
	}
	if m.Get(10, 7) {
		t.Fatalf("free tile unexpectedly set")
	}
	if got, want := m.Count(), 16+6; got != want {
		t.Fatalf("mask count = %d, want %d", got, want)
	}
}
