// Package device models partially-reconfigurable FPGAs at tile granularity,
// as required by the relocation-aware floorplanner of Rabozzi et al.
// (IPDPSW 2015).
//
// The basic block is a tile: the minimal unit of reconfiguration. Following
// Definition .1 of the paper, two tiles are of the same type iff they hold
// the same number and types of resources AND the configuration data needed
// to configure them is identical. Tile types therefore carry both a resource
// class (CLB, BRAM, DSP, ...) and a configuration identifier; two types with
// the same class but different configuration layouts are distinct and areas
// covering them are never relocation-compatible.
package device

import "fmt"

// Class names the resource family provided by a tile type. Classes are the
// unit in which designs state their requirements (e.g. "25 CLB tiles").
type Class string

// Standard resource classes of Xilinx-style devices.
const (
	ClassCLB  Class = "CLB"
	ClassBRAM Class = "BRAM"
	ClassDSP  Class = "DSP"
	ClassIO   Class = "IO"
)

// TypeID identifies a tile type within a Device. IDs are dense indices into
// Device.Types; equality of IDs is equality of types in the sense of
// Definition .1.
type TypeID int

// TileType describes one tile type of a device.
type TileType struct {
	// Name is a human-readable label, unique within the device.
	Name string
	// Class is the resource family this tile provides.
	Class Class
	// Frames is the number of configuration frames needed to configure
	// one tile of this type (e.g. 36 for a Virtex-5 CLB tile).
	Frames int
	// Config distinguishes tile types that provide the same resources
	// but have incompatible configuration-memory layouts. Two tile
	// types are Definition .1 equivalent only when both Class and
	// Config match; within a single device that is encoded by giving
	// them the same TypeID.
	Config int
}

func (t TileType) String() string {
	return fmt.Sprintf("%s(%s,%df)", t.Name, t.Class, t.Frames)
}

// Requirements states how many tiles of each class a reconfigurable region
// needs, as in Table I of the paper.
type Requirements map[Class]int

// Clone returns a copy of the requirement map.
func (rq Requirements) Clone() Requirements {
	out := make(Requirements, len(rq))
	for k, v := range rq {
		out[k] = v
	}
	return out
}

// IsZero reports whether no resources are required.
func (rq Requirements) IsZero() bool {
	for _, v := range rq {
		if v > 0 {
			return false
		}
	}
	return true
}

// Counts is a per-TypeID tile tally for some area of a device.
type Counts []int

// Add accumulates other into c.
func (c Counts) Add(other Counts) {
	for i, v := range other {
		c[i] += v
	}
}

// Equal reports whether two tallies are identical.
func (c Counts) Equal(other Counts) bool {
	if len(c) != len(other) {
		return false
	}
	for i, v := range c {
		if v != other[i] {
			return false
		}
	}
	return true
}

// Total returns the total number of tiles tallied.
func (c Counts) Total() int {
	n := 0
	for _, v := range c {
		n += v
	}
	return n
}
