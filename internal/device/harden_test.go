package device

import (
	"math"
	"testing"
)

// TestDimensionCaps pins the overflow guards: hostile dimensions must be
// rejected before any w*h arithmetic or cell allocation happens.
func TestDimensionCaps(t *testing.T) {
	types := V5Types()
	cases := []struct {
		name string
		w, h int
	}{
		{"negative width", -1, 4},
		{"negative height", 4, -1},
		{"zero height", 4, 0},
		{"width over per-side cap", maxDim + 1, 1},
		{"height over per-side cap", 1, maxDim + 1},
		{"tile count over cap", maxDim, maxDim},
		{"overflowing product", math.MaxInt / 2, 3},
	}
	for _, c := range cases {
		if _, err := New("bad", c.w, c.h, types, nil, nil); err == nil {
			t.Errorf("New accepted %s (%dx%d)", c.name, c.w, c.h)
		}
	}

	// NewColumnar must reject a hostile height before allocating the
	// cell grid; a huge h with a small column list would otherwise try
	// to allocate len(cols)*h cells.
	cols := make([]TypeID, 8)
	if _, err := NewColumnar("bad", cols, maxDim+1, types, nil); err == nil {
		t.Error("NewColumnar accepted a height over the per-side cap")
	}
	if _, err := NewColumnar("bad", cols, maxTiles, types, nil); err == nil {
		t.Error("NewColumnar accepted a tile count over the cap")
	}
}
