package grid

// MaximalClearRects enumerates every maximal empty rectangle (MER) of the
// mask: rectangles of entirely clear tiles that cannot be extended in any
// of the four directions without covering a set tile or leaving the grid.
//
// The MER set is the free-space structure of the online placement papers
// (van der Veen/Fekete, Ahmadinia et al.): any clear rectangle is
// contained in at least one MER, so a placement fits the free space iff
// it fits one of the maximal rectangles.
//
// The sweep enumerates each MER exactly once, keyed by its vertical span:
// for every row band [y1, y2] it finds the maximal horizontal runs of
// columns that are clear across the whole band, and keeps a run iff the
// band cannot grow upward or downward over that run. Cost is O(H²·W)
// with O(1) per-column band tests, which is microseconds at device scale.
//
// Rects are returned ordered by (Y, X, H, W). An all-set mask returns nil.
func (m *Mask) MaximalClearRects() []Rect {
	w, h := m.w, m.h
	// clearBelow[c][y] counts clear tiles in column c from row y downward,
	// so "column c clear across rows [y1, y2]" is one subtraction.
	clearBelow := make([][]int, w)
	for c := 0; c < w; c++ {
		col := make([]int, h+1)
		for y := h - 1; y >= 0; y-- {
			col[y] = col[y+1]
			if !m.Get(c, y) {
				col[y]++
			}
		}
		clearBelow[c] = col
	}
	colClear := func(c, y1, y2 int) bool {
		return clearBelow[c][y1]-clearBelow[c][y2+1] == y2+1-y1
	}

	var out []Rect
	for y1 := 0; y1 < h; y1++ {
		for y2 := y1; y2 < h; y2++ {
			for x := 0; x < w; {
				if !colClear(x, y1, y2) {
					x++
					continue
				}
				// Maximal horizontal run of band-clear columns from x.
				x2 := x
				for x2+1 < w && colClear(x2+1, y1, y2) {
					x2++
				}
				// Vertical maximality: the whole run must be blocked from
				// growing one row up and one row down.
				upBlocked := y1 == 0
				if !upBlocked {
					for c := x; c <= x2; c++ {
						if m.Get(c, y1-1) {
							upBlocked = true
							break
						}
					}
				}
				downBlocked := y2 == h-1
				if !downBlocked {
					for c := x; c <= x2; c++ {
						if m.Get(c, y2+1) {
							downBlocked = true
							break
						}
					}
				}
				if upBlocked && downBlocked {
					out = append(out, Rect{X: x, Y: y1, W: x2 - x + 1, H: y2 - y1 + 1})
				}
				x = x2 + 1
			}
		}
	}
	return out
}
