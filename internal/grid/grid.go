// Package grid provides the small integer-geometry kernel shared by the
// device model, the partitioner, and the floorplanning engines.
//
// All coordinates are tile coordinates: x grows left to right (columns),
// y grows top to bottom (rows). A Rect covers whole tiles; the tile at
// (c, r) is covered by rect iff X <= c < X+W and Y <= r < Y+H.
package grid

import "fmt"

// Rect is an axis-aligned rectangle of tiles, given by its top-left corner
// (X, Y) and its positive width W and height H in tiles.
type Rect struct {
	X, Y, W, H int
}

// NewRect returns the rectangle with top-left corner (x, y), width w and
// height h. It panics if w or h is not positive; use the zero Rect to
// represent "no rectangle".
func NewRect(x, y, w, h int) Rect {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("grid: non-positive rect %dx%d", w, h))
	}
	return Rect{X: x, Y: y, W: w, H: h}
}

// Empty reports whether r covers no tiles.
func (r Rect) Empty() bool { return r.W <= 0 || r.H <= 0 }

// Area returns the number of tiles covered by r.
func (r Rect) Area() int {
	if r.Empty() {
		return 0
	}
	return r.W * r.H
}

// X2 returns the exclusive right edge of r (first column not covered).
func (r Rect) X2() int { return r.X + r.W }

// Y2 returns the exclusive bottom edge of r (first row not covered).
func (r Rect) Y2() int { return r.Y + r.H }

// Contains reports whether tile (c, r) lies inside the rectangle.
func (r Rect) Contains(c, row int) bool {
	return !r.Empty() && c >= r.X && c < r.X2() && row >= r.Y && row < r.Y2()
}

// ContainsRect reports whether other lies entirely inside r.
// An empty other is contained in everything.
func (r Rect) ContainsRect(other Rect) bool {
	if other.Empty() {
		return true
	}
	if r.Empty() {
		return false
	}
	return other.X >= r.X && other.X2() <= r.X2() &&
		other.Y >= r.Y && other.Y2() <= r.Y2()
}

// Overlaps reports whether r and other share at least one tile.
func (r Rect) Overlaps(other Rect) bool {
	if r.Empty() || other.Empty() {
		return false
	}
	return r.X < other.X2() && other.X < r.X2() &&
		r.Y < other.Y2() && other.Y < r.Y2()
}

// Intersect returns the overlapping rectangle of r and other.
// The second result is false when the rectangles are disjoint, in which
// case the returned Rect is the zero value.
func (r Rect) Intersect(other Rect) (Rect, bool) {
	if !r.Overlaps(other) {
		return Rect{}, false
	}
	x1 := max(r.X, other.X)
	y1 := max(r.Y, other.Y)
	x2 := min(r.X2(), other.X2())
	y2 := min(r.Y2(), other.Y2())
	return Rect{X: x1, Y: y1, W: x2 - x1, H: y2 - y1}, true
}

// Union returns the smallest rectangle covering both r and other.
// If either is empty, the other is returned.
func (r Rect) Union(other Rect) Rect {
	if r.Empty() {
		return other
	}
	if other.Empty() {
		return r
	}
	x1 := min(r.X, other.X)
	y1 := min(r.Y, other.Y)
	x2 := max(r.X2(), other.X2())
	y2 := max(r.Y2(), other.Y2())
	return Rect{X: x1, Y: y1, W: x2 - x1, H: y2 - y1}
}

// Translate returns r moved by (dx, dy).
func (r Rect) Translate(dx, dy int) Rect {
	return Rect{X: r.X + dx, Y: r.Y + dy, W: r.W, H: r.H}
}

// SameShape reports whether r and other have identical width and height.
func (r Rect) SameShape(other Rect) bool {
	return r.W == other.W && r.H == other.H
}

// CenterX2 returns twice the x coordinate of the rectangle center. Working
// with doubled coordinates keeps centers exact for odd sizes without
// leaving integer arithmetic.
func (r Rect) CenterX2() int { return 2*r.X + r.W }

// CenterY2 returns twice the y coordinate of the rectangle center.
func (r Rect) CenterY2() int { return 2*r.Y + r.H }

// HalfPerimeter returns W + H, the half-perimeter of the rectangle.
func (r Rect) HalfPerimeter() int { return r.W + r.H }

// String renders the rectangle as "(x,y) wxh".
func (r Rect) String() string {
	return fmt.Sprintf("(%d,%d) %dx%d", r.X, r.Y, r.W, r.H)
}

// Columns calls fn for each column index covered by r, left to right.
func (r Rect) Columns(fn func(c int)) {
	for c := r.X; c < r.X2(); c++ {
		fn(c)
	}
}

// Tiles calls fn for every tile covered by r in column-major order.
func (r Rect) Tiles(fn func(c, row int)) {
	for c := r.X; c < r.X2(); c++ {
		for row := r.Y; row < r.Y2(); row++ {
			fn(c, row)
		}
	}
}

// AnyOverlap reports whether r overlaps any rectangle in rs.
func AnyOverlap(r Rect, rs []Rect) bool {
	for _, o := range rs {
		if r.Overlaps(o) {
			return true
		}
	}
	return false
}

// Disjoint reports whether all rectangles in rs are pairwise disjoint.
func Disjoint(rs []Rect) bool {
	for i := range rs {
		for j := i + 1; j < len(rs); j++ {
			if rs[i].Overlaps(rs[j]) {
				return false
			}
		}
	}
	return true
}

// Interval is a half-open integer interval [Lo, Hi).
type Interval struct {
	Lo, Hi int
}

// Len returns the number of integers in the interval (zero when inverted).
func (iv Interval) Len() int {
	if iv.Hi <= iv.Lo {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Overlap returns the length of the intersection of two intervals.
func (iv Interval) Overlap(other Interval) int {
	lo := max(iv.Lo, other.Lo)
	hi := min(iv.Hi, other.Hi)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v int) bool { return v >= iv.Lo && v < iv.Hi }

// XInterval returns the column interval spanned by r.
func (r Rect) XInterval() Interval { return Interval{Lo: r.X, Hi: r.X2()} }

// YInterval returns the row interval spanned by r.
func (r Rect) YInterval() Interval { return Interval{Lo: r.Y, Hi: r.Y2()} }
