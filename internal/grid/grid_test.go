package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := NewRect(2, 3, 4, 5)
	if r.Area() != 20 {
		t.Fatalf("area = %d", r.Area())
	}
	if r.X2() != 6 || r.Y2() != 8 {
		t.Fatalf("edges = %d, %d", r.X2(), r.Y2())
	}
	if !r.Contains(2, 3) || !r.Contains(5, 7) {
		t.Fatal("corner containment")
	}
	if r.Contains(6, 3) || r.Contains(2, 8) {
		t.Fatal("exclusive edge containment")
	}
	if r.HalfPerimeter() != 9 {
		t.Fatalf("half perimeter = %d", r.HalfPerimeter())
	}
}

func TestNewRectPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero width")
		}
	}()
	NewRect(0, 0, 0, 3)
}

func TestOverlapSymmetric(t *testing.T) {
	a := Rect{X: 0, Y: 0, W: 3, H: 3}
	b := Rect{X: 2, Y: 2, W: 3, H: 3}
	c := Rect{X: 3, Y: 0, W: 2, H: 2}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("a and b must overlap")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Fatal("a and c must not overlap (touching edges)")
	}
}

func TestIntersect(t *testing.T) {
	a := Rect{X: 0, Y: 0, W: 5, H: 5}
	b := Rect{X: 3, Y: 2, W: 5, H: 5}
	got, ok := a.Intersect(b)
	if !ok {
		t.Fatal("expected intersection")
	}
	want := Rect{X: 3, Y: 2, W: 2, H: 3}
	if got != want {
		t.Fatalf("intersect = %v, want %v", got, want)
	}
	if _, ok := a.Intersect(Rect{X: 5, Y: 0, W: 1, H: 1}); ok {
		t.Fatal("touching rectangles must not intersect")
	}
}

func TestUnionContainsBoth(t *testing.T) {
	f := func(ax, ay, bx, by int8, w1, h1, w2, h2 uint8) bool {
		a := Rect{X: int(ax), Y: int(ay), W: int(w1%10) + 1, H: int(h1%10) + 1}
		b := Rect{X: int(bx), Y: int(by), W: int(w2%10) + 1, H: int(h2%10) + 1}
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectionProperties(t *testing.T) {
	f := func(ax, ay, bx, by int8, w1, h1, w2, h2 uint8) bool {
		a := Rect{X: int(ax % 20), Y: int(ay % 20), W: int(w1%10) + 1, H: int(h1%10) + 1}
		b := Rect{X: int(bx % 20), Y: int(by % 20), W: int(w2%10) + 1, H: int(h2%10) + 1}
		i1, ok1 := a.Intersect(b)
		i2, ok2 := b.Intersect(a)
		if ok1 != ok2 || i1 != i2 {
			return false // intersection must be symmetric
		}
		if ok1 != a.Overlaps(b) {
			return false // Overlaps and Intersect must agree
		}
		if ok1 && (!a.ContainsRect(i1) || !b.ContainsRect(i1)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTranslate(t *testing.T) {
	r := Rect{X: 1, Y: 2, W: 3, H: 4}
	got := r.Translate(-1, 5)
	want := Rect{X: 0, Y: 7, W: 3, H: 4}
	if got != want {
		t.Fatalf("translate = %v, want %v", got, want)
	}
}

func TestCenters(t *testing.T) {
	r := Rect{X: 0, Y: 0, W: 3, H: 4}
	if r.CenterX2() != 3 || r.CenterY2() != 4 {
		t.Fatalf("centers = %d, %d", r.CenterX2(), r.CenterY2())
	}
}

func TestDisjoint(t *testing.T) {
	rs := []Rect{{0, 0, 2, 2}, {2, 0, 2, 2}, {0, 2, 4, 1}}
	if !Disjoint(rs) {
		t.Fatal("rects should be disjoint")
	}
	rs = append(rs, Rect{1, 1, 2, 2})
	if Disjoint(rs) {
		t.Fatal("overlap not detected")
	}
}

func TestIntervalOverlap(t *testing.T) {
	a := Interval{Lo: 2, Hi: 7}
	if a.Len() != 5 {
		t.Fatalf("len = %d", a.Len())
	}
	if got := a.Overlap(Interval{Lo: 5, Hi: 10}); got != 2 {
		t.Fatalf("overlap = %d", got)
	}
	if got := a.Overlap(Interval{Lo: 7, Hi: 9}); got != 0 {
		t.Fatalf("touching overlap = %d", got)
	}
}

func TestTilesVisitsAll(t *testing.T) {
	r := Rect{X: 1, Y: 1, W: 3, H: 2}
	seen := map[[2]int]bool{}
	r.Tiles(func(c, row int) { seen[[2]int{c, row}] = true })
	if len(seen) != 6 {
		t.Fatalf("visited %d tiles, want 6", len(seen))
	}
	for pos := range seen {
		if !r.Contains(pos[0], pos[1]) {
			t.Fatalf("visited tile %v outside rect", pos)
		}
	}
}

func TestMaskMatchesRects(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		w := 1 + rng.Intn(70)
		h := 1 + rng.Intn(12)
		m := NewMask(w, h)
		var placed []Rect
		for i := 0; i < 5; i++ {
			r := Rect{
				X: rng.Intn(w), Y: rng.Intn(h),
				W: 1 + rng.Intn(w), H: 1 + rng.Intn(h),
			}
			probe := Rect{
				X: rng.Intn(w), Y: rng.Intn(h),
				W: 1 + rng.Intn(8), H: 1 + rng.Intn(4),
			}
			wantOverlap := false
			clippedProbe, okP := probe.Intersect(Rect{0, 0, w, h})
			if okP {
				for _, p := range placed {
					if clippedProbe.Overlaps(p) {
						wantOverlap = true
						break
					}
				}
			}
			if got := m.OverlapsRect(probe); got != wantOverlap {
				t.Fatalf("trial %d: OverlapsRect(%v) = %v, want %v (placed %v)", trial, probe, got, wantOverlap, placed)
			}
			m.SetRect(r)
			if cl, ok := r.Intersect(Rect{0, 0, w, h}); ok {
				placed = append(placed, cl)
			}
		}
		// Count must equal union area, computed by brute force.
		count := 0
		for c := 0; c < w; c++ {
			for row := 0; row < h; row++ {
				covered := false
				for _, p := range placed {
					if p.Contains(c, row) {
						covered = true
						break
					}
				}
				if covered {
					count++
				}
				if got := m.Get(c, row); got != covered {
					t.Fatalf("trial %d: Get(%d,%d) = %v, want %v", trial, c, row, got, covered)
				}
			}
		}
		if m.Count() != count {
			t.Fatalf("trial %d: count = %d, want %d", trial, m.Count(), count)
		}
	}
}

func TestMaskSetClearRoundTrip(t *testing.T) {
	m := NewMask(41, 8)
	r := Rect{X: 5, Y: 2, W: 30, H: 4}
	m.SetRect(r)
	if !m.Any() {
		t.Fatal("mask should be non-empty")
	}
	m.ClearRect(r)
	if m.Any() {
		t.Fatal("mask should be empty after clearing the same rect")
	}
}

func TestMaskClone(t *testing.T) {
	m := NewMask(10, 10)
	m.Set(3, 3)
	cp := m.Clone()
	cp.Set(4, 4)
	if m.Get(4, 4) {
		t.Fatal("clone shares storage with original")
	}
	if !cp.Get(3, 3) {
		t.Fatal("clone lost original bits")
	}
}

func TestMaskReset(t *testing.T) {
	m := NewMask(10, 4)
	m.SetRect(Rect{0, 0, 10, 4})
	m.Reset()
	if m.Count() != 0 {
		t.Fatal("reset did not clear")
	}
}
