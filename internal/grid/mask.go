package grid

import "math/bits"

// Mask is a dense occupancy bitmap over a W x H tile grid. It is the
// workhorse of the combinatorial placement engines: overlap tests against
// the set of already-placed rectangles reduce to word-wise AND.
//
// Bits are stored row-major: the tile (c, r) maps to bit r*W + c.
type Mask struct {
	w, h  int
	words []uint64
}

// NewMask returns an empty mask for a w x h grid.
func NewMask(w, h int) *Mask {
	if w <= 0 || h <= 0 {
		panic("grid: non-positive mask dimensions")
	}
	n := (w*h + 63) / 64
	return &Mask{w: w, h: h, words: make([]uint64, n)}
}

// Clone returns a deep copy of the mask.
func (m *Mask) Clone() *Mask {
	cp := &Mask{w: m.w, h: m.h, words: make([]uint64, len(m.words))}
	copy(cp.words, m.words)
	return cp
}

// W returns the grid width.
func (m *Mask) W() int { return m.w }

// H returns the grid height.
func (m *Mask) H() int { return m.h }

func (m *Mask) bit(c, r int) (word, off int) {
	idx := r*m.w + c
	return idx >> 6, idx & 63
}

// Get reports whether tile (c, r) is set.
func (m *Mask) Get(c, r int) bool {
	w, off := m.bit(c, r)
	return m.words[w]&(1<<uint(off)) != 0
}

// Set marks tile (c, r).
func (m *Mask) Set(c, r int) {
	w, off := m.bit(c, r)
	m.words[w] |= 1 << uint(off)
}

// Clear unmarks tile (c, r).
func (m *Mask) Clear(c, r int) {
	w, off := m.bit(c, r)
	m.words[w] &^= 1 << uint(off)
}

// SetRect marks every tile covered by rect. Tiles outside the grid are
// ignored.
func (m *Mask) SetRect(rect Rect) {
	m.forRowSpans(rect, func(word int, bitsMask uint64) bool {
		m.words[word] |= bitsMask
		return true
	})
}

// ClearRect unmarks every tile covered by rect.
func (m *Mask) ClearRect(rect Rect) {
	m.forRowSpans(rect, func(word int, bitsMask uint64) bool {
		m.words[word] &^= bitsMask
		return true
	})
}

// OverlapsRect reports whether any tile covered by rect is set.
func (m *Mask) OverlapsRect(rect Rect) bool {
	overlap := false
	m.forRowSpans(rect, func(word int, bitsMask uint64) bool {
		if m.words[word]&bitsMask != 0 {
			overlap = true
			return false
		}
		return true
	})
	return overlap
}

// Count returns the number of set tiles.
func (m *Mask) Count() int {
	n := 0
	for _, w := range m.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether at least one tile is set.
func (m *Mask) Any() bool {
	for _, w := range m.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Reset clears the whole mask.
func (m *Mask) Reset() {
	for i := range m.words {
		m.words[i] = 0
	}
}

// forRowSpans visits, word by word, the bit spans covered by rect clipped
// to the grid, invoking fn with a word index and the bits of that word
// belonging to the span. fn returns false to stop early.
func (m *Mask) forRowSpans(rect Rect, fn func(word int, bitsMask uint64) bool) {
	clipped, ok := rect.Intersect(Rect{X: 0, Y: 0, W: m.w, H: m.h})
	if !ok {
		return
	}
	for r := clipped.Y; r < clipped.Y2(); r++ {
		start := r*m.w + clipped.X
		end := start + clipped.W // exclusive
		for start < end {
			word := start >> 6
			off := start & 63
			n := 64 - off
			if rem := end - start; rem < n {
				n = rem
			}
			var span uint64
			if n == 64 {
				span = ^uint64(0)
			} else {
				span = ((uint64(1) << uint(n)) - 1) << uint(off)
			}
			if !fn(word, span) {
				return
			}
			start += n
		}
	}
}
