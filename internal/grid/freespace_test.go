package grid

import (
	"math/rand"
	"testing"
)

// bruteMaximalClearRects enumerates maximal clear rectangles the obvious
// way: every clear rectangle that is not strictly contained in another
// clear rectangle. Exponential in spirit but fine at test-grid scale; it
// is the correctness oracle for the sweep.
func bruteMaximalClearRects(m *Mask) []Rect {
	var clear []Rect
	for x := 0; x < m.W(); x++ {
		for y := 0; y < m.H(); y++ {
			for w := 1; x+w <= m.W(); w++ {
				for h := 1; y+h <= m.H(); h++ {
					r := Rect{X: x, Y: y, W: w, H: h}
					if !m.OverlapsRect(r) {
						clear = append(clear, r)
					}
				}
			}
		}
	}
	var out []Rect
	for i, r := range clear {
		maximal := true
		for j, o := range clear {
			if i != j && o.ContainsRect(r) && o != r {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, r)
		}
	}
	return out
}

func rectSet(rs []Rect) map[Rect]bool {
	s := make(map[Rect]bool, len(rs))
	for _, r := range rs {
		s[r] = true
	}
	return s
}

func TestMaximalClearRectsEmptyMask(t *testing.T) {
	m := NewMask(7, 4)
	got := m.MaximalClearRects()
	if len(got) != 1 || got[0] != (Rect{X: 0, Y: 0, W: 7, H: 4}) {
		t.Fatalf("empty mask: got %v, want the full grid", got)
	}
}

func TestMaximalClearRectsFullMask(t *testing.T) {
	m := NewMask(3, 3)
	m.SetRect(Rect{X: 0, Y: 0, W: 3, H: 3})
	if got := m.MaximalClearRects(); len(got) != 0 {
		t.Fatalf("full mask: got %v, want none", got)
	}
}

func TestMaximalClearRectsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		w := 1 + rng.Intn(8)
		h := 1 + rng.Intn(6)
		m := NewMask(w, h)
		for i := rng.Intn(6); i > 0; i-- {
			rw := 1 + rng.Intn(w)
			rh := 1 + rng.Intn(h)
			m.SetRect(Rect{X: rng.Intn(w - rw + 1), Y: rng.Intn(h - rh + 1), W: rw, H: rh})
		}
		got := rectSet(m.MaximalClearRects())
		want := rectSet(bruteMaximalClearRects(m))
		if len(got) != len(want) {
			t.Fatalf("trial %d (%dx%d): got %d MERs, want %d\ngot:  %v\nwant: %v",
				trial, w, h, len(got), len(want), got, want)
		}
		for r := range want {
			if !got[r] {
				t.Fatalf("trial %d: missing MER %v", trial, r)
			}
		}
	}
}

func TestMaximalClearRectsCoverEveryClearTile(t *testing.T) {
	m := NewMask(10, 8)
	m.SetRect(Rect{X: 2, Y: 1, W: 3, H: 4})
	m.SetRect(Rect{X: 7, Y: 5, W: 2, H: 2})
	mers := m.MaximalClearRects()
	for x := 0; x < 10; x++ {
		for y := 0; y < 8; y++ {
			if m.Get(x, y) {
				continue
			}
			covered := false
			for _, r := range mers {
				if r.Contains(x, y) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("clear tile (%d,%d) not covered by any MER", x, y)
			}
		}
	}
}
