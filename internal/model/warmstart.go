package model

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/grid"
)

// WarmStartFrom converts a floorplan solution into a full assignment of
// the MILP's variables, suitable as a branch-and-bound incumbent. Missed
// metric-mode FC areas are assigned their region's rectangle with v_c = 1
// (the Section V relaxation makes that feasible). The result is verified
// against the compiled model, so a non-nil return is guaranteed feasible —
// which doubles as a cross-check of the formulation in tests.
func (c *Compiled) WarmStartFrom(sol *core.Solution) ([]float64, error) {
	if err := sol.Validate(c.Problem); err != nil {
		return nil, fmt.Errorf("model: warm start source: %w", err)
	}
	x := make([]float64, c.LP.NumVariables())

	rects := make([]grid.Rect, c.nAreas)
	missed := make([]bool, c.nAreas)
	for n := 0; n < c.regionCount(); n++ {
		rects[n] = sol.Regions[n]
	}
	for f, fc := range sol.FC {
		area := c.regionCount() + f
		if fc.Placed {
			rects[area] = fc.Rect
		} else {
			// Mirror the region: satisfies the hard shape equalities;
			// overlap and forbidden crossings are absorbed by v_c = 1.
			rects[area] = sol.Regions[c.Problem.FCAreas[f].Region]
			missed[area] = true
		}
	}
	c.canonicalizeFCOrder(rects, missed)
	for f := range sol.FC {
		if missed[c.regionCount()+f] {
			x[c.viol[f]] = 1
		}
	}

	for n := 0; n < c.nAreas; n++ {
		c.assignArea(x, n, rects[n])
	}
	c.assignPairVars(x, rects, missed)
	c.assignNets(x, rects)

	if err := c.LP.CheckFeasible(x, 1e-6); err != nil {
		return nil, fmt.Errorf("model: warm start infeasible against compiled model: %w", err)
	}
	return x, nil
}

// canonicalizeFCOrder permutes the placements of each identical FC group
// so they satisfy the symmetry-breaking order constraints of
// buildSymmetryBreaking (ascending W*y + x). The group's requests are
// interchangeable, so the permuted assignment describes the same
// floorplan; without it a valid seed could be rejected as warm start for
// sitting in a symmetric branch the model excludes. No-op in HO mode,
// matching the constraints being skipped there.
func (c *Compiled) canonicalizeFCOrder(rects []grid.Rect, missed []bool) {
	if c.Opts.SeqPair != nil {
		return
	}
	W := c.Problem.Device.Width()
	type placement struct {
		rect grid.Rect
		miss bool
	}
	for _, g := range identicalFCGroups(c.Problem) {
		if len(g) < 2 {
			continue
		}
		items := make([]placement, len(g))
		for t, f := range g {
			area := c.regionCount() + f
			items[t] = placement{rects[area], missed[area]}
		}
		sort.SliceStable(items, func(a, b int) bool {
			return items[a].rect.Y*W+items[a].rect.X < items[b].rect.Y*W+items[b].rect.X
		})
		for t, f := range g {
			area := c.regionCount() + f
			rects[area] = items[t].rect
			missed[area] = items[t].miss
		}
	}
}

// assignArea fills every per-area variable from the rectangle.
func (c *Compiled) assignArea(x []float64, n int, r grid.Rect) {
	d := c.Problem.Device
	x[c.x[n]] = float64(r.X)
	x[c.w[n]] = float64(r.W)
	x[c.y[n]] = float64(r.Y)
	x[c.h[n]] = float64(r.H)
	for row := 0; row < d.Height(); row++ {
		if row >= r.Y && row < r.Y2() {
			x[c.a[n][row]] = 1
		}
	}
	firstCovered := -1
	for p, por := range c.Part.Portions {
		ov := grid.Interval{Lo: r.X, Hi: r.X2()}.Overlap(grid.Interval{Lo: por.X1, Hi: por.X2 + 1})
		switch {
		case r.X2() <= por.X1:
			x[c.left[n][p]] = 1
		case r.X >= por.X2+1:
			x[c.rt[n][p]] = 1
		default:
			x[c.k[n][p]] = 1
			if firstCovered < 0 {
				firstCovered = p
			}
		}
		if r.X >= por.X1 {
			x[c.uu[n][p]] = 1
		}
		if r.X2() <= por.X2+1 {
			x[c.tt[n][p]] = 1
		}
		x[c.ov[n][p]] = float64(ov)
		if c.l[n] != nil {
			for row := 0; row < d.Height(); row++ {
				if row >= r.Y && row < r.Y2() {
					x[c.l[n][p][row]] = float64(ov)
				}
			}
		}
	}
	if c.off[n] != nil && firstCovered >= 0 {
		x[c.off[n][firstCovered]] = 1
	}
	if c.profS[n] != nil {
		P := c.Part.NumPortions()
		for j := 0; j < P; j++ {
			p := firstCovered + j
			if p >= P {
				break
			}
			ov := grid.Interval{Lo: r.X, Hi: r.X2()}.Overlap(
				grid.Interval{Lo: c.Part.Portions[p].X1, Hi: c.Part.Portions[p].X2 + 1})
			x[c.profS[n][j]] = float64(ov)
			if ov > 0 {
				x[c.profT[n][j]] = c.tid(p)
			}
		}
	}
	for fa, rect := range c.Part.Forbidden {
		if r.X2() > rect.X {
			x[c.q[n][fa]] = 1
		}
	}
}

// assignPairVars sets the non-overlap disjunction binaries (when present)
// from the geometry; pairs involving a missed FC area may legitimately
// leave all four at zero (their constraint is relaxed by v_c).
func (c *Compiled) assignPairVars(x []float64, rects []grid.Rect, missed []bool) {
	for i := 0; i < c.nAreas; i++ {
		for j := i + 1; j < c.nAreas; j++ {
			d, ok := c.delta[[2]int{i, j}]
			if !ok {
				continue // sequence-pair mode: no binaries for this pair
			}
			a, b := rects[i], rects[j]
			switch {
			case a.X2() <= b.X:
				x[d[0]] = 1
			case b.X2() <= a.X:
				x[d[1]] = 1
			case a.Y2() <= b.Y:
				x[d[2]] = 1
			case b.Y2() <= a.Y:
				x[d[3]] = 1
			default:
				// Overlapping rectangles: only legal when one side is a
				// missed metric-mode FC, whose v_c = 1 relaxes the
				// disjunction; leave all four indicators at zero.
				_ = missed
			}
		}
	}
}

// assignNets sets the wire-length auxiliaries.
func (c *Compiled) assignNets(x []float64, rects []grid.Rect) {
	for e, net := range c.Problem.Nets {
		a, b := rects[net.A], rects[net.B]
		cxA := float64(a.CenterX2()) / 2
		cxB := float64(b.CenterX2()) / 2
		cyA := float64(a.CenterY2()) / 2
		cyB := float64(b.CenterY2()) / 2
		dx := cxA - cxB
		if dx < 0 {
			dx = -dx
		}
		dy := cyA - cyB
		if dy < 0 {
			dy = -dy
		}
		x[c.dx[e]] = dx
		x[c.dy[e]] = dy
	}
}
