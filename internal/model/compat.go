package model

import (
	"fmt"

	"repro/internal/lp"
)

// tid returns the paper's 1-based portion tile-type identifier tid_p.
func (c *Compiled) tid(p int) float64 {
	return float64(int(c.Part.Portions[p].Type) + 1)
}

// buildProfiles pins, for every compatibility-relevant area, the
// offset-relative portion profiles:
//
//	S_{n,j}  = columns of area n overlapping the j-th portion at or right
//	           of the first covered portion (0 beyond the coverage),
//	TY_{n,j} = tid of that portion when covered, 0 otherwise.
//
// Both are gated by the offset variables o_{n,p}: since exactly one o is 1
// (Equation 4), each big-M pair pins the profile to its true value.
func (c *Compiled) buildProfiles() {
	P := c.Part.NumPortions()
	W := c.bigW()
	nTypes := float64(c.Problem.Device.NumTypes())
	for n := 0; n < c.nAreas; n++ {
		if !c.isCompatArea(n) {
			continue
		}
		name := c.areaName(n)
		c.profS[n] = make([]lp.VarID, P)
		c.profT[n] = make([]lp.VarID, P)
		for j := 0; j < P; j++ {
			c.profS[n][j] = c.LP.AddVariable(fmt.Sprintf("%s.S[%d]", name, j), 0, W, 0)
			c.profT[n][j] = c.LP.AddVariable(fmt.Sprintf("%s.TY[%d]", name, j), 0, nTypes, 0)
		}
		for j := 0; j < P; j++ {
			for p := 0; p < P; p++ {
				pfx := fmt.Sprintf("%s.S%d.o%d", name, j, p)
				if p+j < P {
					// o_p=1 -> S_j = ov_{p+j}.
					c.LP.AddConstraint(pfx+".ub", []lp.Term{
						{Var: c.profS[n][j], Coef: 1}, {Var: c.ov[n][p+j], Coef: -1}, {Var: c.off[n][p], Coef: W},
					}, lp.LE, W)
					c.LP.AddConstraint(pfx+".lb", []lp.Term{
						{Var: c.profS[n][j], Coef: 1}, {Var: c.ov[n][p+j], Coef: -1}, {Var: c.off[n][p], Coef: -W},
					}, lp.GE, -W)
					// o_p=1 -> TY_j = tid_{p+j} * k_{p+j}.
					c.LP.AddConstraint(pfx+".tub", []lp.Term{
						{Var: c.profT[n][j], Coef: 1}, {Var: c.k[n][p+j], Coef: -c.tid(p + j)}, {Var: c.off[n][p], Coef: nTypes},
					}, lp.LE, nTypes)
					c.LP.AddConstraint(pfx+".tlb", []lp.Term{
						{Var: c.profT[n][j], Coef: 1}, {Var: c.k[n][p+j], Coef: -c.tid(p + j)}, {Var: c.off[n][p], Coef: -nTypes},
					}, lp.GE, -nTypes)
				} else {
					// o_p=1 -> the j-th relative portion is off-device.
					c.LP.AddConstraint(pfx+".zero", []lp.Term{
						{Var: c.profS[n][j], Coef: 1}, {Var: c.off[n][p], Coef: W},
					}, lp.LE, W)
					c.LP.AddConstraint(pfx+".tzero", []lp.Term{
						{Var: c.profT[n][j], Coef: 1}, {Var: c.off[n][p], Coef: nTypes},
					}, lp.LE, nTypes)
				}
			}
		}
	}
}

// buildProfileCompatibility emits, per FC request, Equations 6 and 7 plus
// the profile equalities (the Equation 8-10 equivalent); metric-mode
// requests get the v_c relaxation of Section V on the profile part.
func (c *Compiled) buildProfileCompatibility() {
	P := c.Part.NumPortions()
	W := c.bigW()
	nTypes := float64(c.Problem.Device.NumTypes())
	for f, fc := range c.Problem.FCAreas {
		af := c.regionCount() + f
		v := c.viol[f]
		// s_{c,n}: the area must match every region it serves.
		compat := fc.CompatRegions()
		for _, n := range compat {
			name := fmt.Sprintf("compat.fc%d.r%d", f, n)
			shapeViol := lp.VarID(-1)
			if v >= 0 && len(compat) > 1 {
				shapeViol = v
			}
			c.emitShapeEqualities(name, af, n, shapeViol)
			for j := 0; j < P; j++ {
				sTerms := []lp.Term{{Var: c.profS[af][j], Coef: 1}, {Var: c.profS[n][j], Coef: -1}}
				tTerms := []lp.Term{{Var: c.profT[af][j], Coef: 1}, {Var: c.profT[n][j], Coef: -1}}
				if v < 0 {
					c.LP.AddConstraint(fmt.Sprintf("%s.S%d", name, j), sTerms, lp.EQ, 0)
					c.LP.AddConstraint(fmt.Sprintf("%s.T%d", name, j), tTerms, lp.EQ, 0)
					continue
				}
				c.LP.AddConstraint(fmt.Sprintf("%s.S%d.ub", name, j),
					append(append([]lp.Term(nil), sTerms...), lp.Term{Var: v, Coef: -W}), lp.LE, 0)
				c.LP.AddConstraint(fmt.Sprintf("%s.S%d.lb", name, j),
					append(append([]lp.Term(nil), sTerms...), lp.Term{Var: v, Coef: W}), lp.GE, 0)
				c.LP.AddConstraint(fmt.Sprintf("%s.T%d.ub", name, j),
					append(append([]lp.Term(nil), tTerms...), lp.Term{Var: v, Coef: -nTypes}), lp.LE, 0)
				c.LP.AddConstraint(fmt.Sprintf("%s.T%d.lb", name, j),
					append(append([]lp.Term(nil), tTerms...), lp.Term{Var: v, Coef: nTypes}), lp.GE, 0)
			}
		}
	}
}

// emitShapeEqualities emits Equation 6 (equal heights) and Equation 7
// (equal number of covered portions) for FC area af versus region n.
//
// For single-region requests both stay hard even in metric mode, exactly
// as in the paper — they never make the model infeasible because the FC
// area can always mirror the region. For the s_{c,n} generalization
// (viol >= 0 with several regions) a mirror cannot satisfy two regions of
// different shapes simultaneously, so the equalities are v_c-relaxed.
func (c *Compiled) emitShapeEqualities(name string, af, n int, viol lp.VarID) {
	H := c.bigH()
	P := float64(c.Part.NumPortions())
	eq6 := []lp.Term{{Var: c.h[af], Coef: 1}, {Var: c.h[n], Coef: -1}}
	terms := make([]lp.Term, 0, 2*c.Part.NumPortions()+1)
	for p := 0; p < c.Part.NumPortions(); p++ {
		terms = append(terms,
			lp.Term{Var: c.k[af][p], Coef: 1},
			lp.Term{Var: c.k[n][p], Coef: -1})
	}
	if viol < 0 {
		c.LP.AddConstraint(name+".eq6", eq6, lp.EQ, 0)
		c.LP.AddConstraint(name+".eq7", terms, lp.EQ, 0)
		return
	}
	c.LP.AddConstraint(name+".eq6.ub",
		append(append([]lp.Term(nil), eq6...), lp.Term{Var: viol, Coef: -H}), lp.LE, 0)
	c.LP.AddConstraint(name+".eq6.lb",
		append(append([]lp.Term(nil), eq6...), lp.Term{Var: viol, Coef: H}), lp.GE, 0)
	c.LP.AddConstraint(name+".eq7.ub",
		append(append([]lp.Term(nil), terms...), lp.Term{Var: viol, Coef: -P}), lp.LE, 0)
	c.LP.AddConstraint(name+".eq7.lb",
		append(append([]lp.Term(nil), terms...), lp.Term{Var: viol, Coef: P}), lp.GE, 0)
}

// buildPairwiseCompatibility emits Equations 9 and 10 verbatim: for every
// FC request (c, n) with s_{c,n}=1, every pair of potential first portions
// (pc, pn) and every relative index i, big-M gated tile-count equalities
// and the tightened type-mismatch cuts.
func (c *Compiled) buildPairwiseCompatibility() {
	P := c.Part.NumPortions()
	H := c.Problem.Device.Height()
	bigM := c.bigW() * c.bigH() // maxW * |R|
	for f, fc := range c.Problem.FCAreas {
		af := c.regionCount() + f
		v := c.viol[f]
		compat := fc.CompatRegions()
		for _, n := range compat {
			name := fmt.Sprintf("pw.fc%d.r%d", f, n)
			shapeViol := lp.VarID(-1)
			if v >= 0 && len(compat) > 1 {
				shapeViol = v
			}
			c.emitShapeEqualities(name, af, n, shapeViol)
			for pc := 0; pc < P; pc++ {
				for pn := 0; pn < P; pn++ {
					for i := -(P - 1); i <= P-1; i++ {
						if pc+i < 0 || pc+i >= P || pn+i < 0 || pn+i >= P {
							continue
						}
						guard := []lp.Term{
							{Var: c.off[af][pc], Coef: bigM},
							{Var: c.off[n][pn], Coef: bigM},
							{Var: c.k[n][pn+i], Coef: bigM},
						}
						// Equation 10 (tightened Equation 8): active only on
						// type mismatch.
						if c.tid(pc+i) != c.tid(pn+i) {
							terms := []lp.Term{
								{Var: c.off[af][pc], Coef: 1},
								{Var: c.off[n][pn], Coef: 1},
								{Var: c.k[n][pn+i], Coef: 1},
							}
							rhs := 2.0
							if v >= 0 {
								terms = append(terms, lp.Term{Var: v, Coef: -1})
							}
							c.LP.AddConstraint(fmt.Sprintf("%s.eq10.%d.%d.%d", name, pc, pn, i),
								terms, lp.LE, rhs)
						}
						// Equation 9: sum_r l_c = sum_r l_n when the guard
						// variables are all 1.
						ub := make([]lp.Term, 0, 2*H+4)
						lb := make([]lp.Term, 0, 2*H+4)
						for r := 0; r < H; r++ {
							ub = append(ub, lp.Term{Var: c.l[af][pc+i][r], Coef: 1}, lp.Term{Var: c.l[n][pn+i][r], Coef: -1})
							lb = append(lb, lp.Term{Var: c.l[af][pc+i][r], Coef: 1}, lp.Term{Var: c.l[n][pn+i][r], Coef: -1})
						}
						ub = append(ub, guard...)
						rhsUB := 3 * bigM
						for _, g := range guard {
							lb = append(lb, lp.Term{Var: g.Var, Coef: -bigM})
						}
						rhsLB := -3 * bigM
						if v >= 0 {
							ub = append(ub, lp.Term{Var: v, Coef: -bigM})
							lb = append(lb, lp.Term{Var: v, Coef: bigM})
						}
						c.LP.AddConstraint(fmt.Sprintf("%s.eq9u.%d.%d.%d", name, pc, pn, i), ub, lp.LE, rhsUB)
						c.LP.AddConstraint(fmt.Sprintf("%s.eq9l.%d.%d.%d", name, pc, pn, i), lb, lp.GE, rhsLB)
					}
				}
			}
		}
	}
}
