package model

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/grid"
)

// Decode converts a MILP solution vector into a floorplan Solution.
// Integer variables are rounded; metric-mode FC areas with v_c = 1 are
// reported as missed (their rectangle in the MILP is a relaxed
// placeholder).
func (c *Compiled) Decode(x []float64) (*core.Solution, error) {
	if len(x) != c.LP.NumVariables() {
		return nil, fmt.Errorf("model: solution vector has %d entries, want %d", len(x), c.LP.NumVariables())
	}
	ri := func(v float64) int { return int(math.Round(v)) }
	rectOf := func(area int) grid.Rect {
		return grid.Rect{
			X: ri(x[c.x[area]]),
			Y: ri(x[c.y[area]]),
			W: ri(x[c.w[area]]),
			H: ri(x[c.h[area]]),
		}
	}
	sol := &core.Solution{
		Regions: make([]grid.Rect, c.regionCount()),
		FC:      make([]core.FCPlacement, len(c.Problem.FCAreas)),
	}
	for n := 0; n < c.regionCount(); n++ {
		sol.Regions[n] = rectOf(n)
	}
	for f := range c.Problem.FCAreas {
		sol.FC[f] = core.FCPlacement{Request: f}
		if v := c.viol[f]; v >= 0 && ri(x[v]) == 1 {
			continue // missed metric-mode area
		}
		sol.FC[f].Placed = true
		sol.FC[f].Rect = rectOf(c.regionCount() + f)
	}
	return sol, nil
}

// WastedFramesOf evaluates the waste part of the MILP objective on a
// solution vector: covered frames minus the constant requirement.
func (c *Compiled) WastedFramesOf(x []float64) int {
	covered := 0.0
	d := c.Problem.Device
	for n := 0; n < c.regionCount(); n++ {
		for p, por := range c.Part.Portions {
			frames := float64(d.Type(por.Type).Frames)
			for r := 0; r < d.Height(); r++ {
				covered += frames * x[c.l[n][p][r]]
			}
		}
	}
	return int(math.Round(covered)) - c.reqFrames
}
