// Package model compiles relocation-aware floorplanning problems into the
// mixed-integer linear program of the paper (extending the FCCM'14 MILP
// floorplanner [10] with Sections IV and V), ready to be solved by
// internal/milp.
//
// # Variables (per area n — a reconfigurable region or free-compatible area)
//
//	x_n, w_n   leftmost column and width (integer, Section III),
//	y_n, h_n   top row and height; h_n is continuous as in the paper and
//	           pinned through the row indicators a_{n,r},
//	a_{n,r}    binary, 1 iff the area occupies row r (the paper's an,r),
//	k_{n,p}    binary, 1 iff the area's x-projection intersects columnar
//	           portion p; its semantics are enforced through the
//	           left/right indicator pair (left+right+k = 1),
//	ov_{n,p}   continuous overlap (in columns) with portion p, pinned
//	           exactly from both sides via the u/t position binaries,
//	l_{n,p,r}  continuous per-row tile coverage (regions only), pinned to
//	           ov_{n,p}·a_{n,r} so resource coverage and wasted frames
//	           are exact,
//	o_{n,p}    the offset variable of Section IV.B: 1 iff p is the first
//	           portion covered (Equations 4 and 5),
//	q_{n,a}    forbidden-area side indicator (Equations 1 and 2),
//	v_c        Section V violation indicator for metric-mode
//	           free-compatible areas.
//
// # Compatibility encodings
//
// EncodingProfile (default) pins, per area, the profile S_{n,j} = tiles
// covered in the j-th portion right of the first covered portion, and
// TY_{n,j} = that portion's tile type (0 when not covered), both gated by
// o_{n,p}; compatibility of area c with region n then reads S_{c,j} =
// S_{n,j} and TY_{c,j} = TY_{n,j} for all j, plus the paper's Equations 6
// and 7. This is equivalent to Equations 8-10 (see DESIGN.md) with
// O(|P|^2) instead of O(|P|^3) constraints per pair.
//
// EncodingPairwise emits Equations 9 and 10 literally (the big-M pairs
// over (pc, pn, i)), for fidelity testing on small devices.
//
// # Non-overlap
//
// The O algorithm uses the classic four-way disjunction with indicator
// binaries; the HO algorithm replaces it with the linear order constraints
// induced by a sequence pair (Options.SeqPair), as in [10].
package model

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/partition"
	"repro/internal/seqpair"
)

// Encoding selects how free-compatible-area compatibility is expressed.
type Encoding int

const (
	// EncodingProfile uses the offset-gated portion profiles
	// (equivalent to Equations 8-10, asymptotically smaller).
	EncodingProfile Encoding = iota
	// EncodingPairwise uses Equations 9/10 verbatim.
	EncodingPairwise
)

// Options tunes the compilation.
type Options struct {
	// Encoding selects the compatibility encoding.
	Encoding Encoding
	// SeqPair, when non-nil, compiles the HO variant: non-overlap is
	// enforced through the pair's order relations instead of
	// disjunction binaries for the areas listed in SeqMembers.
	SeqPair *seqpair.Pair
	// SeqMembers maps sequence-pair element i to an area index (areas
	// are regions then FC requests, in problem order). nil means the
	// identity over all areas. Pairs involving a non-member area fall
	// back to disjunction binaries, which lets HO handle seeds whose
	// metric-mode FC areas were not placed.
	SeqMembers []int
	// WireObjective adds the wire-length term to the LP objective with
	// this weight per tile of weighted HPWL (0 = waste-only objective;
	// the lexicographic refinement is done by a second solve).
	WireObjective float64
}

// Compiled is a compiled floorplanning MILP plus the variable maps needed
// to decode solutions and build warm starts.
type Compiled struct {
	Problem *core.Problem
	Part    *partition.Partitioning
	LP      *lp.Model
	Opts    Options

	// nAreas = len(regions) + len(FC requests); area index a is a
	// region for a < len(regions), otherwise FC request a-len(regions).
	nAreas int

	x, w, y, h []lp.VarID
	a          [][]lp.VarID           // [area][row]
	k          [][]lp.VarID           // [area][portion]
	left, rt   [][]lp.VarID           // [area][portion]
	uu, tt     [][]lp.VarID           // [area][portion] exact-overlap binaries
	ov         [][]lp.VarID           // [area][portion]
	l          [][][]lp.VarID         // [area][portion][row]; nil for FC areas under EncodingProfile
	off        [][]lp.VarID           // offsets o_{n,p}; nil for areas without compatibility role
	profS      [][]lp.VarID           // S profile; nil unless compat area under EncodingProfile
	profT      [][]lp.VarID           // TY profile
	q          [][]lp.VarID           // [area][forbidden]
	viol       []lp.VarID             // per FC request; -1 unless metric mode
	dx, dy     []lp.VarID             // per net
	delta      map[[2]int][4]lp.VarID // non-overlap disjunction binaries per pair

	reqFrames int // sum of minimal frames of all regions (constant in waste)
}

// regionCount returns the number of reconfigurable regions.
func (c *Compiled) regionCount() int { return len(c.Problem.Regions) }

// areaRegion maps area index -> the region whose shape it must take (the
// area itself for regions, the compat region for FC areas).
func (c *Compiled) areaRegion(area int) int {
	if area < c.regionCount() {
		return area
	}
	return c.Problem.FCAreas[area-c.regionCount()].Region
}

// areaName labels an area for variable/constraint names.
func (c *Compiled) areaName(area int) string {
	if area < c.regionCount() {
		return fmt.Sprintf("r%d", area)
	}
	return fmt.Sprintf("fc%d", area-c.regionCount())
}

// isCompatArea reports whether the area participates in compatibility
// constraints (an FC area, or a region with at least one FC request).
func (c *Compiled) isCompatArea(area int) bool {
	if area >= c.regionCount() {
		return true
	}
	for _, fc := range c.Problem.FCAreas {
		for _, ri := range fc.CompatRegions() {
			if ri == area {
				return true
			}
		}
	}
	return false
}

// Build compiles the problem.
func Build(p *core.Problem, opts Options) (*Compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	part, err := partition.Columnar(p.Device)
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	c := &Compiled{
		Problem: p,
		Part:    part,
		LP:      lp.NewModel(),
		Opts:    opts,
		nAreas:  len(p.Regions) + len(p.FCAreas),
	}
	for _, r := range p.Regions {
		f, err := p.Device.FramesForRequirements(r.Req)
		if err != nil {
			return nil, fmt.Errorf("model: region %q: %w", r.Name, err)
		}
		c.reqFrames += f
	}
	if opts.SeqPair != nil {
		nMembers := c.nAreas
		if opts.SeqMembers != nil {
			nMembers = len(opts.SeqMembers)
			for _, area := range opts.SeqMembers {
				if area < 0 || area >= c.nAreas {
					return nil, fmt.Errorf("model: sequence-pair member %d out of range", area)
				}
			}
		}
		if err := opts.SeqPair.Validate(nMembers); err != nil {
			return nil, fmt.Errorf("model: HO sequence pair: %w", err)
		}
	}

	c.buildAreaVariables()
	c.buildGeometry()
	c.buildPortionCoverage()
	c.buildForbidden()
	c.buildResources()
	c.buildOffsets()
	switch opts.Encoding {
	case EncodingProfile:
		c.buildProfiles()
		c.buildProfileCompatibility()
	case EncodingPairwise:
		c.buildPairwiseCompatibility()
	default:
		return nil, fmt.Errorf("model: unknown encoding %d", opts.Encoding)
	}
	c.buildNonOverlap()
	c.buildSymmetryBreaking()
	c.buildObjective()
	return c, nil
}

// identicalFCGroups partitions the FC request indices into groups of
// interchangeable requests: same primary region, same AlsoCompatible set,
// same mode and same effective weight. Any solution permuting such a
// group's placements is equivalent — nets only attach to regions — which
// makes the group a pure symmetry of the MILP.
func identicalFCGroups(p *core.Problem) [][]int {
	byKey := map[string][]int{}
	var order []string
	for i, fc := range p.FCAreas {
		extras := append([]int(nil), fc.AlsoCompatible...)
		sort.Ints(extras)
		key := fmt.Sprintf("%d|%v|%d|%g", fc.Region, extras, fc.Mode, fc.EffectiveWeight())
		if _, seen := byKey[key]; !seen {
			order = append(order, key)
		}
		byKey[key] = append(byKey[key], i)
	}
	groups := make([][]int, 0, len(order))
	for _, key := range order {
		groups = append(groups, byKey[key])
	}
	return groups
}

// buildSymmetryBreaking orders the placements of interchangeable FC
// requests canonically: within each identical group, consecutive areas i,
// j satisfy W*y_i + x_i <= W*y_j + x_j (lexicographic by row, then
// column). This prunes the k! permutations of a k-request group from the
// branch-and-bound tree without excluding any distinct floorplan. The
// comparison is non-strict because missed metric-mode areas may
// legitimately coincide. Skipped in HO mode: the seed's sequence pair
// already fixes every pairwise order and could contradict the canonical
// one.
func (c *Compiled) buildSymmetryBreaking() {
	if c.Opts.SeqPair != nil {
		return
	}
	W := c.bigW()
	for _, g := range identicalFCGroups(c.Problem) {
		for t := 1; t < len(g); t++ {
			i := c.regionCount() + g[t-1]
			j := c.regionCount() + g[t]
			c.LP.AddConstraint(fmt.Sprintf("sym.fc%d.fc%d", g[t-1], g[t]), []lp.Term{
				{Var: c.y[i], Coef: W}, {Var: c.x[i], Coef: 1},
				{Var: c.y[j], Coef: -W}, {Var: c.x[j], Coef: -1},
			}, lp.LE, 0)
		}
	}
}

// bigW and bigH are the big-M constants of the x and y dimensions (the
// paper's maxW).
func (c *Compiled) bigW() float64 { return float64(c.Problem.Device.Width()) }
func (c *Compiled) bigH() float64 { return float64(c.Problem.Device.Height()) }

func (c *Compiled) buildAreaVariables() {
	W := c.Problem.Device.Width()
	H := c.Problem.Device.Height()
	P := c.Part.NumPortions()
	R := len(c.Problem.FCAreas)

	c.x = make([]lp.VarID, c.nAreas)
	c.w = make([]lp.VarID, c.nAreas)
	c.y = make([]lp.VarID, c.nAreas)
	c.h = make([]lp.VarID, c.nAreas)
	c.a = make([][]lp.VarID, c.nAreas)
	c.k = make([][]lp.VarID, c.nAreas)
	c.left = make([][]lp.VarID, c.nAreas)
	c.rt = make([][]lp.VarID, c.nAreas)
	c.uu = make([][]lp.VarID, c.nAreas)
	c.tt = make([][]lp.VarID, c.nAreas)
	c.ov = make([][]lp.VarID, c.nAreas)
	c.l = make([][][]lp.VarID, c.nAreas)
	c.off = make([][]lp.VarID, c.nAreas)
	c.profS = make([][]lp.VarID, c.nAreas)
	c.profT = make([][]lp.VarID, c.nAreas)
	c.q = make([][]lp.VarID, c.nAreas)
	c.viol = make([]lp.VarID, R)
	for i := range c.viol {
		c.viol[i] = -1
	}

	for n := 0; n < c.nAreas; n++ {
		name := c.areaName(n)
		c.x[n] = c.LP.AddInteger(name+".x", 0, float64(W-1), 0)
		c.w[n] = c.LP.AddInteger(name+".w", 1, float64(W), 0)
		c.y[n] = c.LP.AddInteger(name+".y", 0, float64(H-1), 0)
		c.h[n] = c.LP.AddVariable(name+".h", 1, float64(H), 0)
		c.a[n] = make([]lp.VarID, H)
		for r := 0; r < H; r++ {
			c.a[n][r] = c.LP.AddBinary(fmt.Sprintf("%s.a[%d]", name, r), 0)
		}
		c.k[n] = make([]lp.VarID, P)
		c.left[n] = make([]lp.VarID, P)
		c.rt[n] = make([]lp.VarID, P)
		c.uu[n] = make([]lp.VarID, P)
		c.tt[n] = make([]lp.VarID, P)
		c.ov[n] = make([]lp.VarID, P)
		for p := 0; p < P; p++ {
			pw := float64(c.Part.Portions[p].Width())
			c.k[n][p] = c.LP.AddBinary(fmt.Sprintf("%s.k[%d]", name, p), 0)
			c.left[n][p] = c.LP.AddBinary(fmt.Sprintf("%s.left[%d]", name, p), 0)
			c.rt[n][p] = c.LP.AddBinary(fmt.Sprintf("%s.right[%d]", name, p), 0)
			c.uu[n][p] = c.LP.AddBinary(fmt.Sprintf("%s.u[%d]", name, p), 0)
			c.tt[n][p] = c.LP.AddBinary(fmt.Sprintf("%s.t[%d]", name, p), 0)
			c.ov[n][p] = c.LP.AddVariable(fmt.Sprintf("%s.ov[%d]", name, p), 0, pw, 0)
		}
		// Per-row coverage variables: regions always (resources and
		// waste objective); FC areas only under the pairwise encoding
		// (Equation 9 needs their l sums).
		if n < c.regionCount() || c.Opts.Encoding == EncodingPairwise {
			c.l[n] = make([][]lp.VarID, P)
			for p := 0; p < P; p++ {
				pw := float64(c.Part.Portions[p].Width())
				c.l[n][p] = make([]lp.VarID, H)
				for r := 0; r < H; r++ {
					c.l[n][p][r] = c.LP.AddVariable(fmt.Sprintf("%s.l[%d][%d]", name, p, r), 0, pw, 0)
				}
			}
		}
		c.q[n] = make([]lp.VarID, len(c.Part.Forbidden))
		for fa := range c.Part.Forbidden {
			c.q[n][fa] = c.LP.AddBinary(fmt.Sprintf("%s.q[%d]", name, fa), 0)
		}
	}
	for i, fc := range c.Problem.FCAreas {
		if fc.Mode == core.RelocMetric {
			c.viol[i] = c.LP.AddBinary(fmt.Sprintf("v[%d]", i), 0)
		}
	}
	c.dx = make([]lp.VarID, len(c.Problem.Nets))
	c.dy = make([]lp.VarID, len(c.Problem.Nets))
	for e := range c.Problem.Nets {
		c.dx[e] = c.LP.AddVariable(fmt.Sprintf("net%d.dx", e), 0, lp.Inf, 0)
		c.dy[e] = c.LP.AddVariable(fmt.Sprintf("net%d.dy", e), 0, lp.Inf, 0)
	}
}

// buildGeometry links x/w/y/h/a: areas stay inside the device, h equals
// the number of occupied rows, and the occupied rows form the window
// [y, y+h).
func (c *Compiled) buildGeometry() {
	W, H := c.bigW(), c.bigH()
	for n := 0; n < c.nAreas; n++ {
		name := c.areaName(n)
		c.LP.AddConstraint(name+".fitX",
			[]lp.Term{{Var: c.x[n], Coef: 1}, {Var: c.w[n], Coef: 1}}, lp.LE, W)
		c.LP.AddConstraint(name+".fitY",
			[]lp.Term{{Var: c.y[n], Coef: 1}, {Var: c.h[n], Coef: 1}}, lp.LE, H)
		// h = sum of row indicators.
		terms := []lp.Term{{Var: c.h[n], Coef: -1}}
		for r := 0; r < int(H); r++ {
			terms = append(terms, lp.Term{Var: c.a[n][r], Coef: 1})
		}
		c.LP.AddConstraint(name+".hRows", terms, lp.EQ, 0)
		// Row window: a_{n,r}=1 implies y <= r and y+h >= r+1. Together
		// with the row count this pins a to exactly [y, y+h).
		for r := 0; r < int(H); r++ {
			c.LP.AddConstraint(fmt.Sprintf("%s.rowLo[%d]", name, r),
				[]lp.Term{{Var: c.y[n], Coef: 1}, {Var: c.a[n][r], Coef: H}}, lp.LE, float64(r)+H)
			c.LP.AddConstraint(fmt.Sprintf("%s.rowHi[%d]", name, r),
				[]lp.Term{{Var: c.y[n], Coef: 1}, {Var: c.h[n], Coef: 1}, {Var: c.a[n][r], Coef: -H}}, lp.GE, float64(r)+1-H)
		}
	}
}

// buildPortionCoverage enforces the k/left/right trichotomy, pins the
// portion overlaps ov, and (where l variables exist) pins the per-row
// coverage l.
func (c *Compiled) buildPortionCoverage() {
	W := c.bigW()
	for n := 0; n < c.nAreas; n++ {
		name := c.areaName(n)
		for p, por := range c.Part.Portions {
			x1 := float64(por.X1)
			x2 := float64(por.X2)
			pw := float64(por.Width())
			pfx := fmt.Sprintf("%s.p%d", name, p)

			// Exactly one of: area left of portion, right of portion,
			// or intersecting it.
			c.LP.AddConstraint(pfx+".tri", []lp.Term{
				{Var: c.left[n][p], Coef: 1}, {Var: c.rt[n][p], Coef: 1}, {Var: c.k[n][p], Coef: 1},
			}, lp.EQ, 1)
			// left=1 -> x+w <= X1 (Equation 1 shape).
			c.LP.AddConstraint(pfx+".left", []lp.Term{
				{Var: c.x[n], Coef: 1}, {Var: c.w[n], Coef: 1}, {Var: c.left[n][p], Coef: W},
			}, lp.LE, x1+W)
			// right=1 -> x >= X2+1.
			c.LP.AddConstraint(pfx+".right", []lp.Term{
				{Var: c.x[n], Coef: 1}, {Var: c.rt[n][p], Coef: -W},
			}, lp.GE, x2+1-W)
			// k=1 -> x <= X2 and x+w >= X1+1 (projections intersect).
			c.LP.AddConstraint(pfx+".kLo", []lp.Term{
				{Var: c.x[n], Coef: 1}, {Var: c.k[n][p], Coef: W},
			}, lp.LE, x2+W)
			c.LP.AddConstraint(pfx+".kHi", []lp.Term{
				{Var: c.x[n], Coef: 1}, {Var: c.w[n], Coef: 1}, {Var: c.k[n][p], Coef: -W},
			}, lp.GE, x1+1-W)

			// Overlap upper caps: ov <= true overlap, and 0 when k=0.
			c.LP.AddConstraint(pfx+".ovW", []lp.Term{
				{Var: c.ov[n][p], Coef: 1}, {Var: c.w[n], Coef: -1},
			}, lp.LE, 0)
			c.LP.AddConstraint(pfx+".ovK", []lp.Term{
				{Var: c.ov[n][p], Coef: 1}, {Var: c.k[n][p], Coef: -pw},
			}, lp.LE, 0)
			c.LP.AddConstraint(pfx+".ovR", []lp.Term{
				{Var: c.ov[n][p], Coef: 1}, {Var: c.x[n], Coef: -1}, {Var: c.w[n], Coef: -1}, {Var: c.k[n][p], Coef: W},
			}, lp.LE, -x1+W)
			c.LP.AddConstraint(pfx+".ovL", []lp.Term{
				{Var: c.ov[n][p], Coef: 1}, {Var: c.x[n], Coef: 1}, {Var: c.k[n][p], Coef: W},
			}, lp.LE, x2+1+W)

			// u=1 <-> x >= X1; t=1 <-> x+w <= X2+1.
			c.LP.AddConstraint(pfx+".u1", []lp.Term{
				{Var: c.x[n], Coef: 1}, {Var: c.uu[n][p], Coef: -W},
			}, lp.GE, x1-W)
			c.LP.AddConstraint(pfx+".u0", []lp.Term{
				{Var: c.x[n], Coef: 1}, {Var: c.uu[n][p], Coef: -W},
			}, lp.LE, x1-1)
			c.LP.AddConstraint(pfx+".t1", []lp.Term{
				{Var: c.x[n], Coef: 1}, {Var: c.w[n], Coef: 1}, {Var: c.tt[n][p], Coef: W},
			}, lp.LE, x2+1+W)
			c.LP.AddConstraint(pfx+".t0", []lp.Term{
				{Var: c.x[n], Coef: 1}, {Var: c.w[n], Coef: 1}, {Var: c.tt[n][p], Coef: W},
			}, lp.GE, x2+2)

			// Overlap lower bounds, selected by (u, t):
			//   u=1, t=1: ov >= w          (area inside portion span)
			//   u=1, t=0: ov >= X2+1-x     (starts inside, ends right)
			//   u=0, t=1: ov >= x+w-X1     (starts left, ends inside)
			//   u=0, t=0: ov >= width_p    (covers whole portion)
			c.LP.AddConstraint(pfx+".ovLB1", []lp.Term{
				{Var: c.ov[n][p], Coef: 1}, {Var: c.w[n], Coef: -1},
				{Var: c.uu[n][p], Coef: -W}, {Var: c.tt[n][p], Coef: -W},
			}, lp.GE, -2*W)
			c.LP.AddConstraint(pfx+".ovLB2", []lp.Term{
				{Var: c.ov[n][p], Coef: 1}, {Var: c.x[n], Coef: 1},
				{Var: c.uu[n][p], Coef: -W}, {Var: c.tt[n][p], Coef: W},
			}, lp.GE, x2+1-W)
			c.LP.AddConstraint(pfx+".ovLB3", []lp.Term{
				{Var: c.ov[n][p], Coef: 1}, {Var: c.x[n], Coef: -1}, {Var: c.w[n], Coef: -1},
				{Var: c.uu[n][p], Coef: W}, {Var: c.tt[n][p], Coef: -W},
			}, lp.GE, -x1-W)
			c.LP.AddConstraint(pfx+".ovLB4", []lp.Term{
				{Var: c.ov[n][p], Coef: 1},
				{Var: c.uu[n][p], Coef: W}, {Var: c.tt[n][p], Coef: W},
			}, lp.GE, pw)

			// Per-row coverage pinning: l = ov when the row is covered,
			// 0 otherwise.
			if c.l[n] != nil {
				for r := 0; r < c.Problem.Device.Height(); r++ {
					lv := c.l[n][p][r]
					c.LP.AddConstraint(fmt.Sprintf("%s.l%dcap", pfx, r), []lp.Term{
						{Var: lv, Coef: 1}, {Var: c.a[n][r], Coef: -pw},
					}, lp.LE, 0)
					c.LP.AddConstraint(fmt.Sprintf("%s.l%dov", pfx, r), []lp.Term{
						{Var: lv, Coef: 1}, {Var: c.ov[n][p], Coef: -1},
					}, lp.LE, 0)
					c.LP.AddConstraint(fmt.Sprintf("%s.l%dlb", pfx, r), []lp.Term{
						{Var: lv, Coef: 1}, {Var: c.ov[n][p], Coef: -1}, {Var: c.a[n][r], Coef: -pw},
					}, lp.GE, -pw)
				}
			}
		}
	}
}

// buildForbidden emits Equations 1 and 2 for every (area, forbidden area)
// pair; metric-mode FC areas get the +v_c relaxation on Equation 2.
func (c *Compiled) buildForbidden() {
	W := c.bigW()
	for n := 0; n < c.nAreas; n++ {
		name := c.areaName(n)
		for fa, rect := range c.Part.Forbidden {
			xa1 := float64(rect.X)
			xa2 := float64(rect.X2() - 1)
			// Equation 1: x + w <= xa1 + q*maxW.
			c.LP.AddConstraint(fmt.Sprintf("%s.f%d.eq1", name, fa), []lp.Term{
				{Var: c.x[n], Coef: 1}, {Var: c.w[n], Coef: 1}, {Var: c.q[n][fa], Coef: -W},
			}, lp.LE, xa1)
			// Equation 2: for rows of the forbidden area,
			// x >= xa2+1 - (2 - q - a_{n,r})*maxW  (+ v_c*maxW).
			for r := rect.Y; r < rect.Y2(); r++ {
				terms := []lp.Term{
					{Var: c.x[n], Coef: 1},
					{Var: c.q[n][fa], Coef: -W},
					{Var: c.a[n][r], Coef: -W},
				}
				rhs := xa2 + 1 - 2*W
				if v := c.violOf(n); v >= 0 {
					terms = append(terms, lp.Term{Var: v, Coef: W})
				}
				c.LP.AddConstraint(fmt.Sprintf("%s.f%d.eq2r%d", name, fa, r), terms, lp.GE, rhs)
			}
		}
	}
}

// violOf returns the violation variable of an FC area (metric mode), or -1.
func (c *Compiled) violOf(area int) lp.VarID {
	if area < c.regionCount() {
		return -1
	}
	return c.viol[area-c.regionCount()]
}

// buildResources emits the per-class coverage constraints of the regions.
func (c *Compiled) buildResources() {
	d := c.Problem.Device
	for n := 0; n < c.regionCount(); n++ {
		req := c.Problem.Regions[n].Req
		for class, needed := range req {
			if needed <= 0 {
				continue
			}
			var terms []lp.Term
			for p, por := range c.Part.Portions {
				if d.Type(por.Type).Class != class {
					continue
				}
				for r := 0; r < d.Height(); r++ {
					terms = append(terms, lp.Term{Var: c.l[n][p][r], Coef: 1})
				}
			}
			c.LP.AddConstraint(fmt.Sprintf("%s.res.%s", c.areaName(n), class),
				terms, lp.GE, float64(needed))
		}
	}
}

// buildOffsets emits Equations 4 and 5 for every compatibility-relevant
// area.
func (c *Compiled) buildOffsets() {
	P := c.Part.NumPortions()
	for n := 0; n < c.nAreas; n++ {
		if !c.isCompatArea(n) {
			continue
		}
		name := c.areaName(n)
		c.off[n] = make([]lp.VarID, P)
		for p := 0; p < P; p++ {
			c.off[n][p] = c.LP.AddVariable(fmt.Sprintf("%s.o[%d]", name, p), 0, 1, 0)
		}
		// Equation 4: offsets sum to one.
		terms := make([]lp.Term, P)
		for p := 0; p < P; p++ {
			terms[p] = lp.Term{Var: c.off[n][p], Coef: 1}
		}
		c.LP.AddConstraint(name+".offSum", terms, lp.EQ, 1)
		// Equation 5.
		c.LP.AddConstraint(name+".off0", []lp.Term{
			{Var: c.off[n][0], Coef: 1}, {Var: c.k[n][0], Coef: -1},
		}, lp.EQ, 0)
		for p := 1; p < P; p++ {
			c.LP.AddConstraint(fmt.Sprintf("%s.off%d", name, p), []lp.Term{
				{Var: c.off[n][p], Coef: 1}, {Var: c.k[n][p], Coef: -1}, {Var: c.k[n][p-1], Coef: 1},
			}, lp.GE, 0)
		}
	}
}

// buildNonOverlap emits the pairwise non-overlap constraints: disjunction
// binaries for O, sequence-pair order constraints for HO. Metric-mode FC
// areas get the v_c relaxation.
func (c *Compiled) buildNonOverlap() {
	W, H := c.bigW(), c.bigH()
	relax := func(i, j int) []lp.Term {
		var terms []lp.Term
		if v := c.violOf(i); v >= 0 {
			terms = append(terms, lp.Term{Var: v, Coef: 1})
		}
		if v := c.violOf(j); v >= 0 {
			terms = append(terms, lp.Term{Var: v, Coef: 1})
		}
		return terms
	}

	c.delta = map[[2]int][4]lp.VarID{}
	disjunction := func(i, j int) {
		name := fmt.Sprintf("no.%s.%s", c.areaName(i), c.areaName(j))
		d1 := c.LP.AddBinary(name+".dL", 0)
		d2 := c.LP.AddBinary(name+".dR", 0)
		d3 := c.LP.AddBinary(name+".dA", 0)
		d4 := c.LP.AddBinary(name+".dB", 0)
		c.delta[[2]int{i, j}] = [4]lp.VarID{d1, d2, d3, d4}
		c.LP.AddConstraint(name+".L", []lp.Term{
			{Var: c.x[i], Coef: 1}, {Var: c.w[i], Coef: 1}, {Var: c.x[j], Coef: -1}, {Var: d1, Coef: W},
		}, lp.LE, W)
		c.LP.AddConstraint(name+".R", []lp.Term{
			{Var: c.x[j], Coef: 1}, {Var: c.w[j], Coef: 1}, {Var: c.x[i], Coef: -1}, {Var: d2, Coef: W},
		}, lp.LE, W)
		c.LP.AddConstraint(name+".A", []lp.Term{
			{Var: c.y[i], Coef: 1}, {Var: c.h[i], Coef: 1}, {Var: c.y[j], Coef: -1}, {Var: d3, Coef: H},
		}, lp.LE, H)
		c.LP.AddConstraint(name+".B", []lp.Term{
			{Var: c.y[j], Coef: 1}, {Var: c.h[j], Coef: 1}, {Var: c.y[i], Coef: -1}, {Var: d4, Coef: H},
		}, lp.LE, H)
		sum := []lp.Term{{Var: d1, Coef: 1}, {Var: d2, Coef: 1}, {Var: d3, Coef: 1}, {Var: d4, Coef: 1}}
		sum = append(sum, relax(i, j)...)
		c.LP.AddConstraint(name+".one", sum, lp.GE, 1)
	}

	if sp := c.Opts.SeqPair; sp != nil {
		members := c.Opts.SeqMembers
		if members == nil {
			members = make([]int, c.nAreas)
			for i := range members {
				members[i] = i
			}
		}
		inPair := make([]bool, c.nAreas)
		for _, area := range members {
			inPair[area] = true
		}
		sp.Relations(len(members), func(mi, mj int, rel seqpair.Rel) {
			i, j := members[mi], members[mj]
			name := fmt.Sprintf("sp.%s.%s", c.areaName(i), c.areaName(j))
			lo, hi := i, j
			horizontal := true
			switch rel {
			case seqpair.Left:
			case seqpair.Right:
				lo, hi = j, i
			case seqpair.Above:
				horizontal = false
			case seqpair.Below:
				lo, hi = j, i
				horizontal = false
			}
			var terms []lp.Term
			if horizontal {
				terms = []lp.Term{{Var: c.x[lo], Coef: 1}, {Var: c.w[lo], Coef: 1}, {Var: c.x[hi], Coef: -1}}
				for _, t := range relax(i, j) {
					terms = append(terms, lp.Term{Var: t.Var, Coef: -W})
				}
			} else {
				terms = []lp.Term{{Var: c.y[lo], Coef: 1}, {Var: c.h[lo], Coef: 1}, {Var: c.y[hi], Coef: -1}}
				for _, t := range relax(i, j) {
					terms = append(terms, lp.Term{Var: t.Var, Coef: -H})
				}
			}
			c.LP.AddConstraint(name, terms, lp.LE, 0)
		})
		// Areas outside the sequence pair (e.g. metric-mode FC areas the
		// seed could not place) keep the generic disjunction.
		for i := 0; i < c.nAreas; i++ {
			for j := i + 1; j < c.nAreas; j++ {
				if !inPair[i] || !inPair[j] {
					disjunction(i, j)
				}
			}
		}
		return
	}

	for i := 0; i < c.nAreas; i++ {
		for j := i + 1; j < c.nAreas; j++ {
			disjunction(i, j)
		}
	}
}

// buildObjective sets the LP objective: wasted frames (covered minus the
// constant requirement) plus the optional wire-length term, plus a large
// penalty per violated metric-mode FC area.
func (c *Compiled) buildObjective() {
	d := c.Problem.Device
	for n := 0; n < c.regionCount(); n++ {
		for p, por := range c.Part.Portions {
			frames := float64(d.Type(por.Type).Frames)
			for r := 0; r < d.Height(); r++ {
				c.LP.SetObjective(c.l[n][p][r], frames)
			}
		}
	}
	for e, net := range c.Problem.Nets {
		// dx >= |cx_i - cx_j| with cx = x + w/2 (and dy likewise); the
		// objective coefficient is installed by StageWireLength or by a
		// positive Options.WireObjective blend weight.
		i, j := net.A, net.B
		c.LP.AddConstraint(fmt.Sprintf("net%d.dx1", e), []lp.Term{
			{Var: c.dx[e], Coef: 1},
			{Var: c.x[i], Coef: -1}, {Var: c.w[i], Coef: -0.5},
			{Var: c.x[j], Coef: 1}, {Var: c.w[j], Coef: 0.5},
		}, lp.GE, 0)
		c.LP.AddConstraint(fmt.Sprintf("net%d.dx2", e), []lp.Term{
			{Var: c.dx[e], Coef: 1},
			{Var: c.x[i], Coef: 1}, {Var: c.w[i], Coef: 0.5},
			{Var: c.x[j], Coef: -1}, {Var: c.w[j], Coef: -0.5},
		}, lp.GE, 0)
		c.LP.AddConstraint(fmt.Sprintf("net%d.dy1", e), []lp.Term{
			{Var: c.dy[e], Coef: 1},
			{Var: c.y[i], Coef: -1}, {Var: c.h[i], Coef: -0.5},
			{Var: c.y[j], Coef: 1}, {Var: c.h[j], Coef: 0.5},
		}, lp.GE, 0)
		c.LP.AddConstraint(fmt.Sprintf("net%d.dy2", e), []lp.Term{
			{Var: c.dy[e], Coef: 1},
			{Var: c.y[i], Coef: 1}, {Var: c.h[i], Coef: 0.5},
			{Var: c.y[j], Coef: -1}, {Var: c.h[j], Coef: -0.5},
		}, lp.GE, 0)
		if w := c.Opts.WireObjective; w > 0 {
			c.LP.SetObjective(c.dx[e], w*net.Weight)
			c.LP.SetObjective(c.dy[e], w*net.Weight)
		}
	}
	// Metric-mode violation penalty: RLcost with weights large enough to
	// dominate the waste term (Section V, Equations 13-14 with q4 set to
	// make relocation the leading tier).
	penalty := float64(d.TotalFrames() + 1)
	for i, fc := range c.Problem.FCAreas {
		if c.viol[i] >= 0 {
			c.LP.SetObjective(c.viol[i], penalty*fc.EffectiveWeight())
		}
	}
}

// StageWireLength converts the compiled model into the second pass of the
// lexicographic solve: the stage-1 objective (relocation misses and
// covered frames) is frozen at its optimum via cap constraints and the
// objective becomes the weighted wire length. stage1X must be the optimal
// stage-1 solution vector; it remains feasible afterwards and can warm
// start the second solve.
func (c *Compiled) StageWireLength(stage1X []float64) {
	d := c.Problem.Device
	// Cap the covered frames.
	covered := 0.0
	var coverTerms []lp.Term
	for n := 0; n < c.regionCount(); n++ {
		for p, por := range c.Part.Portions {
			frames := float64(d.Type(por.Type).Frames)
			for r := 0; r < d.Height(); r++ {
				covered += frames * stage1X[c.l[n][p][r]]
				coverTerms = append(coverTerms, lp.Term{Var: c.l[n][p][r], Coef: frames})
				c.LP.SetObjective(c.l[n][p][r], 0)
			}
		}
	}
	// Allow half a frame of slack so numerical noise in stage 1 cannot
	// make the stage-2 model infeasible; the frame counts are integers.
	c.LP.AddConstraint("stage2.coverCap", coverTerms, lp.LE, covered+0.5)
	// Cap the relocation misses.
	var violTerms []lp.Term
	miss := 0.0
	for i, fc := range c.Problem.FCAreas {
		if c.viol[i] < 0 {
			continue
		}
		violTerms = append(violTerms, lp.Term{Var: c.viol[i], Coef: fc.EffectiveWeight()})
		miss += fc.EffectiveWeight() * stage1X[c.viol[i]]
		c.LP.SetObjective(c.viol[i], 0)
	}
	if len(violTerms) > 0 {
		c.LP.AddConstraint("stage2.missCap", violTerms, lp.LE, miss+1e-6)
	}
	for e, net := range c.Problem.Nets {
		c.LP.SetObjective(c.dx[e], net.Weight)
		c.LP.SetObjective(c.dy[e], net.Weight)
	}
}
