package model

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/exact"
	"repro/internal/grid"
	"repro/internal/heuristic"
	"repro/internal/sdr"
)

// smallDevice is a 12x3 columnar fabric with BRAM columns at 2 and 8 and
// a DSP column at 5 — small enough for MILP solves in test time.
func smallDevice() *device.Device {
	cols := make([]device.TypeID, 12)
	for i := range cols {
		cols[i] = device.V5CLB
	}
	cols[2], cols[8] = device.V5BRAM, device.V5BRAM
	cols[5] = device.V5DSP
	d, err := device.NewColumnar("small", cols, 3, device.V5Types(), nil)
	if err != nil {
		panic(err)
	}
	return d
}

func smallProblem(fcCount int, mode core.RelocMode) *core.Problem {
	p := &core.Problem{
		Device: smallDevice(),
		Regions: []core.Region{
			{Name: "A", Req: device.Requirements{device.ClassCLB: 3, device.ClassDSP: 1}},
			{Name: "B", Req: device.Requirements{device.ClassCLB: 2, device.ClassBRAM: 1}},
		},
		Nets:      []core.Net{{A: 0, B: 1, Weight: 8}},
		Objective: core.DefaultObjective(),
	}
	for k := 0; k < fcCount; k++ {
		p.FCAreas = append(p.FCAreas, core.FCRequest{Region: 0, Mode: mode})
	}
	return p
}

// tinyDevice is an 8x2 fabric with one BRAM column (2) and one DSP column
// (4) — small enough that even infeasibility proofs finish quickly.
func tinyDevice() *device.Device {
	cols := []device.TypeID{
		device.V5CLB, device.V5CLB, device.V5BRAM, device.V5CLB,
		device.V5DSP, device.V5CLB, device.V5CLB, device.V5CLB,
	}
	d, err := device.NewColumnar("tiny", cols, 2, device.V5Types(), nil)
	if err != nil {
		panic(err)
	}
	return d
}

func solveO(t *testing.T, p *core.Problem, enc Encoding, skipWire bool) (*core.Solution, error) {
	t.Helper()
	eng := &OEngine{Encoding: enc, SkipWireStage: skipWire}
	sol, err := eng.Solve(context.Background(), p, core.SolveOptions{TimeLimit: 30 * time.Second})
	if err != nil {
		return nil, err
	}
	if verr := sol.Validate(p); verr != nil {
		t.Fatalf("O solution invalid: %v", verr)
	}
	return sol, nil
}

func TestOMatchesExactNoFC(t *testing.T) {
	p := smallProblem(0, core.RelocConstraint)
	want, err := (&exact.Engine{}).Solve(context.Background(), p, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := solveO(t, p, EncodingProfile, true)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Proven {
		t.Fatal("small instance must be proven optimal")
	}
	gw := got.Metrics(p).WastedFrames
	ww := want.Metrics(p).WastedFrames
	if gw != ww {
		t.Fatalf("MILP waste %d != exact waste %d", gw, ww)
	}
}

func TestOMatchesExactWithFC(t *testing.T) {
	p := smallProblem(1, core.RelocConstraint)
	want, err := (&exact.Engine{}).Solve(context.Background(), p, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := solveO(t, p, EncodingProfile, true)
	if err != nil {
		t.Fatal(err)
	}
	gw := got.Metrics(p).WastedFrames
	ww := want.Metrics(p).WastedFrames
	if got.Proven && gw != ww {
		t.Fatalf("MILP waste %d != exact waste %d", gw, ww)
	}
	if !got.Proven && gw < ww {
		t.Fatalf("MILP waste %d below exact optimum %d (formulation admits illegal placements)", gw, ww)
	}
}

func TestPairwiseEncodingAgrees(t *testing.T) {
	p := smallProblem(1, core.RelocConstraint)
	profile, err := solveO(t, p, EncodingProfile, true)
	if err != nil {
		t.Fatal(err)
	}
	pairwise, err := solveO(t, p, EncodingPairwise, true)
	if err != nil {
		t.Fatal(err)
	}
	pw := profile.Metrics(p).WastedFrames
	ww := pairwise.Metrics(p).WastedFrames
	if profile.Proven && pairwise.Proven && pw != ww {
		t.Fatalf("profile encoding waste %d != pairwise %d", pw, ww)
	}
}

func TestOInfeasibleFC(t *testing.T) {
	// The region consumes the full (only) DSP column, so a
	// free-compatible area cannot exist; constraint mode must prove
	// infeasibility — the MILP analogue of the paper's Matched Filter /
	// Video Decoder feasibility result.
	p := &core.Problem{
		Device: tinyDevice(),
		Regions: []core.Region{
			{Name: "A", Req: device.Requirements{device.ClassCLB: 4, device.ClassDSP: 2}},
		},
		Objective: core.DefaultObjective(),
	}
	p.FCAreas = []core.FCRequest{{Region: 0, Mode: core.RelocConstraint}}
	// Cross-check with the exact engine first.
	if _, err := (&exact.Engine{}).Solve(context.Background(), p, core.SolveOptions{}); !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("exact engine: %v, want infeasible", err)
	}
	eng := &OEngine{SkipWireStage: true}
	_, err := eng.Solve(context.Background(), p, core.SolveOptions{TimeLimit: 60 * time.Second})
	if !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("err = %v, want infeasible", err)
	}
}

func TestOMetricModeMiss(t *testing.T) {
	// Region A consumes the only DSP column of the tiny device entirely,
	// so its free-compatible area is impossible and must be missed.
	p := &core.Problem{
		Device: tinyDevice(),
		Regions: []core.Region{
			{Name: "A", Req: device.Requirements{device.ClassCLB: 4, device.ClassDSP: 2}},
		},
		Objective: core.DefaultObjective(),
	}
	p.FCAreas = []core.FCRequest{{Region: 0, Mode: core.RelocMetric}}
	sol, err := solveO(t, p, EncodingProfile, true)
	if err != nil {
		t.Fatal(err)
	}
	m := sol.Metrics(p)
	if m.PlacedFC != 0 || m.RelocationMiss != 1 {
		t.Fatalf("metrics = %+v, want one miss", m)
	}
}

func TestHONeverClaimsInfeasibilityProof(t *testing.T) {
	// Same provably-infeasible instance as TestOInfeasibleFC. The HO flow
	// must not surface ErrInfeasible for it: its seed is a heuristic whose
	// give-up proves nothing, and its MILP only covers the seed-restricted
	// space — a false proof here would make the portfolio (which trusts
	// exact/milp-o verdicts) cancel the race on possibly-feasible inputs.
	p := &core.Problem{
		Device: tinyDevice(),
		Regions: []core.Region{
			{Name: "A", Req: device.Requirements{device.ClassCLB: 4, device.ClassDSP: 2}},
		},
		Objective: core.DefaultObjective(),
	}
	p.FCAreas = []core.FCRequest{{Region: 0, Mode: core.RelocConstraint}}
	eng := &HOEngine{SkipWireStage: true}
	_, err := eng.Solve(context.Background(), p, core.SolveOptions{TimeLimit: 30 * time.Second})
	if err == nil {
		t.Fatal("expected an error on the infeasible instance")
	}
	if errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("HO claimed an infeasibility proof it cannot have: %v", err)
	}
	if !errors.Is(err, core.ErrNoSolution) {
		t.Fatalf("err = %v, want ErrNoSolution", err)
	}
}

func TestHOImprovesOrMatchesSeed(t *testing.T) {
	p := smallProblem(1, core.RelocConstraint)
	seed, err := (&heuristic.Constructive{}).Solve(context.Background(), p, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng := &HOEngine{Seed: seed, SkipWireStage: true}
	sol, err := eng.Solve(context.Background(), p, core.SolveOptions{TimeLimit: 90 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if verr := sol.Validate(p); verr != nil {
		t.Fatal(verr)
	}
	if sol.Metrics(p).WastedFrames > seed.Metrics(p).WastedFrames {
		t.Fatalf("HO waste %d worse than seed %d", sol.Metrics(p).WastedFrames, seed.Metrics(p).WastedFrames)
	}
}

// TestWarmStartCrossValidation: every solution of the exact engine (and
// the heuristics) must be feasible in the compiled MILP — the strongest
// formulation check we have, exercised across random problems.
func TestWarmStartCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 12; trial++ {
		fcCount := rng.Intn(3)
		mode := core.RelocMode(rng.Intn(2))
		p := smallProblem(fcCount, mode)
		sol, err := (&exact.Engine{}).Solve(context.Background(), p, core.SolveOptions{})
		if errors.Is(err, core.ErrInfeasible) {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, enc := range []Encoding{EncodingProfile, EncodingPairwise} {
			c, err := Build(p, Options{Encoding: enc})
			if err != nil {
				t.Fatalf("trial %d enc %d: %v", trial, enc, err)
			}
			ws, err := c.WarmStartFrom(sol)
			if err != nil {
				t.Fatalf("trial %d enc %d: exact solution infeasible in MILP: %v", trial, enc, err)
			}
			// The MILP's waste evaluation must agree with the metric.
			if got, want := c.WastedFramesOf(ws), sol.Metrics(p).WastedFrames; got != want {
				t.Fatalf("trial %d enc %d: MILP waste %d != metric %d", trial, enc, got, want)
			}
		}
	}
}

// TestWarmStartOnFX70T compiles the full FX70T SDR2 model and verifies the
// exact engine's optimum against it — formulation fidelity at real scale,
// without paying for a full MILP solve.
func TestWarmStartOnFX70T(t *testing.T) {
	p := sdr.SDR2()
	sol, err := (&exact.Engine{}).Solve(context.Background(), p, core.SolveOptions{TimeLimit: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Build(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WarmStartFrom(sol); err != nil {
		t.Fatalf("SDR2 optimum infeasible in the compiled MILP: %v", err)
	}
}

// TestDecodeRoundTrip: warm start then decode reproduces the original
// placements.
func TestDecodeRoundTrip(t *testing.T) {
	p := smallProblem(1, core.RelocConstraint)
	sol, err := (&exact.Engine{}).Solve(context.Background(), p, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Build(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := c.WarmStartFrom(sol)
	if err != nil {
		t.Fatal(err)
	}
	back, err := c.Decode(ws)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sol.Regions {
		if back.Regions[i] != sol.Regions[i] {
			t.Fatalf("region %d: %v -> %v", i, sol.Regions[i], back.Regions[i])
		}
	}
	for i := range sol.FC {
		if back.FC[i].Placed != sol.FC[i].Placed || back.FC[i].Rect != sol.FC[i].Rect {
			t.Fatalf("FC %d changed in round trip", i)
		}
	}
}

// TestMILPRejectsIncompatibleFC: assemble the full variable assignment of
// a placement whose FC area has a mismatched column signature; the
// compiled constraints must reject it under both encodings.
func TestMILPRejectsIncompatibleFC(t *testing.T) {
	p := smallProblem(1, core.RelocConstraint)
	for _, enc := range []Encoding{EncodingProfile, EncodingPairwise} {
		c, err := Build(p, Options{Encoding: enc})
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, c.LP.NumVariables())
		// Region A at (3,0) 4x1 covers C,C,D(5),C; region B legally at
		// (0,2) 4x1; the FC area at (6,1) 4x1 covers C,C,B(8),C — same
		// width, height and portion count as A, but the wrong types.
		c.assignArea(x, 0, grid.Rect{X: 3, Y: 0, W: 4, H: 1})
		c.assignArea(x, 1, grid.Rect{X: 0, Y: 2, W: 4, H: 1})
		c.assignArea(x, 2, grid.Rect{X: 6, Y: 1, W: 4, H: 1})
		c.assignPairVars(x, []grid.Rect{{X: 3, Y: 0, W: 4, H: 1}, {X: 0, Y: 2, W: 4, H: 1}, {X: 6, Y: 1, W: 4, H: 1}}, make([]bool, 3))
		c.assignNets(x, []grid.Rect{{X: 3, Y: 0, W: 4, H: 1}, {X: 0, Y: 2, W: 4, H: 1}, {X: 6, Y: 1, W: 4, H: 1}})
		if err := c.LP.CheckFeasible(x, 1e-6); err == nil {
			t.Fatalf("enc %d: incompatible FC placement accepted by the formulation", enc)
		}
		// Sanity: the same assignment with a compatible FC area (the
		// mirrored span around the DSP column, rows shifted) passes.
		x2 := make([]float64, c.LP.NumVariables())
		c.assignArea(x2, 0, grid.Rect{X: 3, Y: 0, W: 4, H: 1})
		c.assignArea(x2, 1, grid.Rect{X: 0, Y: 2, W: 4, H: 1})
		c.assignArea(x2, 2, grid.Rect{X: 3, Y: 1, W: 4, H: 1})
		rects := []grid.Rect{{X: 3, Y: 0, W: 4, H: 1}, {X: 0, Y: 2, W: 4, H: 1}, {X: 3, Y: 1, W: 4, H: 1}}
		c.assignPairVars(x2, rects, make([]bool, 3))
		c.assignNets(x2, rects)
		if err := c.LP.CheckFeasible(x2, 1e-6); err != nil {
			t.Fatalf("enc %d: compatible FC placement rejected: %v", enc, err)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	p := smallProblem(0, core.RelocConstraint)
	if _, err := Build(p, Options{Encoding: Encoding(99)}); err == nil {
		t.Fatal("unknown encoding accepted")
	}
	bad := *p
	bad.Regions = nil
	if _, err := Build(&bad, Options{}); err == nil {
		t.Fatal("invalid problem accepted")
	}
}

func TestModelSizeScalesWithEncoding(t *testing.T) {
	p := smallProblem(2, core.RelocConstraint)
	prof, err := Build(p, Options{Encoding: EncodingProfile})
	if err != nil {
		t.Fatal(err)
	}
	pw, err := Build(p, Options{Encoding: EncodingPairwise})
	if err != nil {
		t.Fatal(err)
	}
	if prof.LP.NumConstraints() >= pw.LP.NumConstraints() {
		t.Fatalf("profile encoding (%d constraints) should be smaller than pairwise (%d)",
			prof.LP.NumConstraints(), pw.LP.NumConstraints())
	}
}

func TestWireStageReducesWL(t *testing.T) {
	// With the wire stage, total wire length must be <= the waste-only
	// result for the same proven waste.
	p := smallProblem(0, core.RelocConstraint)
	wasteOnly, err := solveO(t, p, EncodingProfile, true)
	if err != nil {
		t.Fatal(err)
	}
	full, err := solveO(t, p, EncodingProfile, false)
	if err != nil {
		t.Fatal(err)
	}
	mw := wasteOnly.Metrics(p)
	mf := full.Metrics(p)
	if mf.WastedFrames > mw.WastedFrames {
		t.Fatalf("wire stage increased waste: %d vs %d", mf.WastedFrames, mw.WastedFrames)
	}
	if mf.WireLength > mw.WireLength+1e-9 {
		t.Fatalf("wire stage did not reduce wire length: %g vs %g", mf.WireLength, mw.WireLength)
	}
}

// TestMultiRegionFCInMILP: the s_{c,n} generalization in the MILP — the
// widening instance that defeats width-minimal candidate sets. The MILP
// has no such restriction; its optimum must validate and agree with the
// exact engine (which falls back to full enumeration for these regions).
func TestMultiRegionFCInMILP(t *testing.T) {
	cols := make([]device.TypeID, 18)
	for i := range cols {
		cols[i] = device.V5CLB
	}
	cols[3] = device.V5DSP
	cols[9] = device.V5DSP
	cols[14] = device.V5BRAM
	d, err := device.NewColumnar("multi", cols, 4, device.V5Types(), nil)
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{
		Device: d,
		Regions: []core.Region{
			{Name: "A", Req: device.Requirements{device.ClassCLB: 2, device.ClassDSP: 1}},
			{Name: "B", Req: device.Requirements{device.ClassCLB: 2, device.ClassBRAM: 1}},
		},
		FCAreas: []core.FCRequest{
			{Region: 0, AlsoCompatible: []int{1}, Mode: core.RelocConstraint},
		},
		Objective: core.DefaultObjective(),
	}
	want, err := (&exact.Engine{}).Solve(context.Background(), p, core.SolveOptions{TimeLimit: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Cross-validate the exact optimum against the compiled MILP.
	c, err := Build(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := c.WarmStartFrom(want)
	if err != nil {
		t.Fatalf("exact multi-region optimum infeasible in MILP: %v", err)
	}
	// Solve the MILP itself, warm-started with the exact optimum, and
	// compare waste.
	eng := &OEngine{SkipWireStage: true, Seed: want}
	got, err := eng.Solve(context.Background(), p, core.SolveOptions{TimeLimit: 15 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if verr := got.Validate(p); verr != nil {
		t.Fatal(verr)
	}
	gw := got.Metrics(p).WastedFrames
	ww := want.Metrics(p).WastedFrames
	if got.Proven && want.Proven && gw != ww {
		t.Fatalf("MILP waste %d != exact %d", gw, ww)
	}
	if gw < ww && want.Proven {
		t.Fatalf("MILP waste %d beats proven exact optimum %d", gw, ww)
	}
	_ = ws
}
