package model

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/heuristic"
	"repro/internal/milp"
	"repro/internal/seqpair"
)

// OEngine is the paper's O (Optimal) algorithm: the full MILP over the
// whole solution space, solved by branch-and-bound. The evaluation
// objective is lexicographic (relocation misses, wasted frames, wire
// length), realized as two MILP passes: pass 1 minimizes misses+waste,
// pass 2 freezes them and minimizes wire length. On instances that exceed
// the budget the best incumbent is returned with Proven=false — mirroring
// the paper's SDR3 run, which 6h of commercial-solver time did not prove
// optimal either.
type OEngine struct {
	// Encoding selects the compatibility encoding (default profile).
	Encoding Encoding
	// SkipWarmStart disables seeding branch-and-bound with the
	// constructive heuristic's solution.
	SkipWarmStart bool
	// Seed, when non-nil, warm-starts branch-and-bound with this
	// solution instead of running the constructive heuristic.
	Seed *core.Solution
	// MaxNodes caps branch-and-bound nodes per pass (0 = milp default).
	MaxNodes int
	// SkipWireStage skips pass 2 (waste-only optimization).
	SkipWireStage bool
}

// Name implements core.Engine.
func (e *OEngine) Name() string { return "milp-o" }

// Solve implements core.Engine.
func (e *OEngine) Solve(ctx context.Context, p *core.Problem, opts core.SolveOptions) (*core.Solution, error) {
	compiled, err := Build(p, Options{Encoding: e.Encoding})
	if err != nil {
		return nil, err
	}
	seed := e.Seed
	if seed == nil && !e.SkipWarmStart {
		if s, err := (&heuristic.Constructive{}).Solve(ctx, p, opts); err == nil {
			seed = s
		}
	}
	return solveLexicographic(ctx, compiled, opts, e.Name(), seed, e.MaxNodes, e.SkipWireStage)
}

// HOEngine is the paper's HO (Heuristic Optimal) algorithm: a heuristic
// solution is computed first, its sequence pair (including the
// free-compatible areas, as Section II.A prescribes) is extracted, and the
// MILP is solved restricted to placements consistent with that pair —
// a much smaller search space that locally improves the seed.
type HOEngine struct {
	// Encoding selects the compatibility encoding (default profile).
	Encoding Encoding
	// Seed, when non-nil, provides the heuristic solution; nil runs the
	// constructive placer.
	Seed *core.Solution
	// MaxNodes caps branch-and-bound nodes per pass (0 = milp default).
	MaxNodes int
	// SkipWireStage skips the wire-length pass.
	SkipWireStage bool
}

// Name implements core.Engine.
func (e *HOEngine) Name() string { return "milp-ho" }

// Solve implements core.Engine.
func (e *HOEngine) Solve(ctx context.Context, p *core.Problem, opts core.SolveOptions) (*core.Solution, error) {
	seed := e.Seed
	if seed == nil {
		var err error
		seed, err = (&heuristic.Constructive{}).Solve(ctx, p, opts)
		if err != nil {
			return nil, fmt.Errorf("model: HO seed: %w", err)
		}
	}
	if err := seed.Validate(p); err != nil {
		return nil, fmt.Errorf("model: HO seed invalid: %w", err)
	}

	// Sequence pair over regions plus the placed FC areas.
	members := make([]int, 0, len(p.Regions)+len(seed.FC))
	rects := make([]grid.Rect, 0, len(p.Regions)+len(seed.FC))
	for i, r := range seed.Regions {
		members = append(members, i)
		rects = append(rects, r)
	}
	for f, fc := range seed.FC {
		if fc.Placed {
			members = append(members, len(p.Regions)+f)
			rects = append(rects, fc.Rect)
		}
	}
	pair, err := seqpair.FromPlacement(rects)
	if err != nil {
		return nil, fmt.Errorf("model: HO sequence pair: %w", err)
	}

	compiled, err := Build(p, Options{
		Encoding:   e.Encoding,
		SeqPair:    &pair,
		SeqMembers: members,
	})
	if err != nil {
		return nil, err
	}
	return solveLexicographic(ctx, compiled, opts, e.Name(), seed, e.MaxNodes, e.SkipWireStage)
}

// solveLexicographic runs the two-pass lexicographic MILP solve.
func solveLexicographic(ctx context.Context, c *Compiled, opts core.SolveOptions, name string, seed *core.Solution, maxNodes int, skipWire bool) (*core.Solution, error) {
	opts = opts.Normalized()
	start := time.Now()
	budget := opts.TimeLimit
	mopts := milp.Options{
		Workers:  opts.Workers,
		MaxNodes: maxNodes,
	}
	if budget > 0 {
		// Reserve a share of the budget for the wire-length pass.
		mopts.TimeLimit = budget
		if !skipWire && len(c.Problem.Nets) > 0 {
			mopts.TimeLimit = budget * 2 / 3
		}
	}
	if seed != nil {
		if ws, err := c.WarmStartFrom(seed); err == nil {
			mopts.WarmStart = ws
		}
	}

	res := milp.Solve(ctx, c.LP, mopts)
	switch res.Status {
	case milp.StatusInfeasible:
		return nil, core.ErrInfeasible
	case milp.StatusNoSolution:
		return nil, core.ErrNoSolution
	case milp.StatusUnbounded:
		return nil, errors.New("model: MILP relaxation unbounded (formulation bug)")
	}
	proven := res.Status == milp.StatusOptimal
	nodes := res.Nodes
	finalX := res.X

	if !skipWire && len(c.Problem.Nets) > 0 {
		c.StageWireLength(res.X)
		m2 := milp.Options{
			Workers:   opts.Workers,
			MaxNodes:  maxNodes,
			WarmStart: res.X,
		}
		if budget > 0 {
			remaining := budget - time.Since(start)
			if remaining < time.Second {
				remaining = time.Second
			}
			m2.TimeLimit = remaining
		}
		res2 := milp.Solve(ctx, c.LP, m2)
		nodes += res2.Nodes
		if res2.X != nil {
			finalX = res2.X
			proven = proven && res2.Status == milp.StatusOptimal
		} else {
			proven = false
		}
	}

	sol, err := c.Decode(finalX)
	if err != nil {
		return nil, err
	}
	sol.Engine = name
	sol.Proven = proven
	sol.Elapsed = time.Since(start)
	sol.Nodes = nodes
	if err := sol.Validate(c.Problem); err != nil {
		return nil, fmt.Errorf("model: decoded MILP solution invalid: %w", err)
	}
	return sol, nil
}
