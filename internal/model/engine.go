package model

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/heuristic"
	"repro/internal/milp"
	"repro/internal/obs"
	"repro/internal/seqpair"
)

// OEngine is the paper's O (Optimal) algorithm: the full MILP over the
// whole solution space, solved by branch-and-bound. The evaluation
// objective is lexicographic (relocation misses, wasted frames, wire
// length), realized as two MILP passes: pass 1 minimizes misses+waste,
// pass 2 freezes them and minimizes wire length. On instances that exceed
// the budget the best incumbent is returned with Proven=false — mirroring
// the paper's SDR3 run, which 6h of commercial-solver time did not prove
// optimal either.
type OEngine struct {
	// Encoding selects the compatibility encoding (default profile).
	Encoding Encoding
	// SkipWarmStart disables seeding branch-and-bound with the
	// constructive heuristic's solution.
	SkipWarmStart bool
	// Seed, when non-nil, warm-starts branch-and-bound with this
	// solution instead of running the constructive heuristic.
	Seed *core.Solution
	// MaxNodes caps branch-and-bound nodes per pass (0 = milp default).
	MaxNodes int
	// SkipWireStage skips pass 2 (waste-only optimization).
	SkipWireStage bool
}

// Name implements core.Engine.
func (e *OEngine) Name() string { return "milp-o" }

// Solve implements core.Engine.
func (e *OEngine) Solve(ctx context.Context, p *core.Problem, opts core.SolveOptions) (sol *core.Solution, err error) {
	opts = opts.Normalized()
	start := time.Now()
	var deadline time.Time
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit)
	}
	sp := opts.Probe.Span(e.Name())
	defer func() { sp.End(core.ObsOutcome(sol, err), obs.SlackUntil(deadline)) }()
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("%w: %w", core.ErrNoSolution, cerr)
	}
	compiled, err := Build(p, Options{Encoding: e.Encoding})
	if err != nil {
		return nil, err
	}
	seed := e.Seed
	if seed == nil && !e.SkipWarmStart {
		// The seed solve inherits opts.Probe and reports under its own
		// "constructive" span.
		if s, err := (&heuristic.Constructive{}).Solve(ctx, p, seedBudget(opts)); err == nil {
			seed = s
		}
	}
	return solveLexicographic(ctx, compiled, remainingBudget(opts, start), e.Name(), sp, seed, e.MaxNodes, e.SkipWireStage, false)
}

// HOEngine is the paper's HO (Heuristic Optimal) algorithm: a heuristic
// solution is computed first, its sequence pair (including the
// free-compatible areas, as Section II.A prescribes) is extracted, and the
// MILP is solved restricted to placements consistent with that pair —
// a much smaller search space that locally improves the seed.
type HOEngine struct {
	// Encoding selects the compatibility encoding (default profile).
	Encoding Encoding
	// Seed, when non-nil, provides the heuristic solution; nil runs the
	// constructive placer.
	Seed *core.Solution
	// MaxNodes caps branch-and-bound nodes per pass (0 = milp default).
	MaxNodes int
	// SkipWireStage skips the wire-length pass.
	SkipWireStage bool
	// seedSolve replaces the constructive heuristic in tests; nil uses
	// heuristic.Constructive.
	seedSolve func(context.Context, *core.Problem, core.SolveOptions) (*core.Solution, error)
}

// Name implements core.Engine.
func (e *HOEngine) Name() string { return "milp-ho" }

// Solve implements core.Engine.
func (e *HOEngine) Solve(ctx context.Context, p *core.Problem, opts core.SolveOptions) (sol *core.Solution, err error) {
	opts = opts.Normalized()
	start := time.Now()
	var deadline time.Time
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit)
	}
	sp := opts.Probe.Span(e.Name())
	defer func() { sp.End(core.ObsOutcome(sol, err), obs.SlackUntil(deadline)) }()
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("%w: %w", core.ErrNoSolution, cerr)
	}
	seed := e.Seed
	if seed == nil {
		solveSeed := e.seedSolve
		if solveSeed == nil {
			solveSeed = (&heuristic.Constructive{}).Solve
		}
		var err error
		seed, err = solveSeed(ctx, p, seedBudget(opts))
		if err != nil && ctx.Err() == nil {
			// The quarter-slice seed budget is a split heuristic, not a
			// verdict: without a seed HO has no sequence pair and hence no
			// MILP to run, so the unspent MILP share is worthless on its
			// own. Lend the seed the remaining budget before giving up —
			// this is what lets HO solve sdr3-sized instances whose seed
			// alone needs more than a quarter of the budget.
			seed, err = solveSeed(ctx, p, remainingBudget(opts, start))
		}
		if err != nil {
			// The constructive placer's give-up (bounded backtracking
			// exhausted) is not an infeasibility proof. Do not wrap err:
			// letting its ErrInfeasible escape through a MILP engine would
			// let callers such as the portfolio mistake it for one.
			return nil, fmt.Errorf("model: HO seed: %v: %w", err, core.ErrNoSolution)
		}
	}
	if err := seed.Validate(p); err != nil {
		return nil, fmt.Errorf("model: HO seed invalid: %w", err)
	}

	// Sequence pair over regions plus the placed FC areas.
	members := make([]int, 0, len(p.Regions)+len(seed.FC))
	rects := make([]grid.Rect, 0, len(p.Regions)+len(seed.FC))
	for i, r := range seed.Regions {
		members = append(members, i)
		rects = append(rects, r)
	}
	for f, fc := range seed.FC {
		if fc.Placed {
			members = append(members, len(p.Regions)+f)
			rects = append(rects, fc.Rect)
		}
	}
	pair, err := seqpair.FromPlacement(rects)
	if err != nil {
		return nil, fmt.Errorf("model: HO sequence pair: %w", err)
	}

	compiled, err := Build(p, Options{
		Encoding:   e.Encoding,
		SeqPair:    &pair,
		SeqMembers: members,
	})
	if err != nil {
		return nil, err
	}
	return solveLexicographic(ctx, compiled, remainingBudget(opts, start), e.Name(), sp, seed, e.MaxNodes, e.SkipWireStage, true)
}

// seedBudget carves the warm-start heuristic's slice out of the caller's
// budget (a quarter, so the MILP keeps the bulk of it). Zero stays zero:
// an unlimited solve runs an unlimited seed.
func seedBudget(opts core.SolveOptions) core.SolveOptions {
	if opts.TimeLimit > 0 {
		opts.TimeLimit /= 4
	}
	return opts
}

// remainingBudget shrinks opts.TimeLimit by what has already elapsed
// since start, so seed time is not paid twice. A fully consumed budget
// leaves a minimal slice: the MILP still gets to surface its warm-start
// incumbent, and the overrun stays bounded by this slice.
func remainingBudget(opts core.SolveOptions, start time.Time) core.SolveOptions {
	if opts.TimeLimit <= 0 {
		return opts
	}
	const minSlice = 5 * time.Millisecond
	rem := opts.TimeLimit - time.Since(start)
	if rem < minSlice {
		rem = minSlice
	}
	opts.TimeLimit = rem
	return opts
}

// milpOutcome maps a MILP status onto the telemetry outcome taxonomy for
// the per-pass sub-spans.
func milpOutcome(s milp.Status) obs.Outcome {
	switch s {
	case milp.StatusOptimal:
		return obs.OutcomeProven
	case milp.StatusFeasible:
		return obs.OutcomeSolved
	case milp.StatusInfeasible:
		return obs.OutcomeInfeasible
	case milp.StatusNoSolution:
		return obs.OutcomeNoSolution
	}
	return obs.OutcomeError
}

// solveLexicographic runs the two-pass lexicographic MILP solve.
// restricted marks a MILP over a subset of the solution space (the HO
// flow's seed-derived sequence pair): its infeasibility verdict does not
// extend to the full problem and is therefore never reported as
// core.ErrInfeasible — the engine falls back to the seed instead.
//
// sp is the engine's telemetry span; it receives one final incumbent on
// the problem-objective scale. Each MILP pass gets its own sub-span
// ("<name>/waste", "<name>/wire") carrying the raw branch-and-bound
// trajectory, whose objective scale differs per pass.
func solveLexicographic(ctx context.Context, c *Compiled, opts core.SolveOptions, name string, sp obs.Span, seed *core.Solution, maxNodes int, skipWire, restricted bool) (*core.Solution, error) {
	opts = opts.Normalized()
	sp = obs.OrNop(sp)
	start := time.Now()
	budget := opts.TimeLimit
	mopts := milp.Options{
		Workers:  opts.Workers,
		MaxNodes: maxNodes,
	}
	if budget > 0 {
		// Reserve a share of the budget for the wire-length pass.
		mopts.TimeLimit = budget
		if !skipWire && len(c.Problem.Nets) > 0 {
			mopts.TimeLimit = budget * 2 / 3
		}
	}
	if seed != nil {
		if ws, err := c.WarmStartFrom(seed); err == nil {
			mopts.WarmStart = ws
		}
	}

	wasteSp := opts.Probe.Span(name + "/waste")
	mopts.Obs = wasteSp
	var wasteDeadline time.Time
	if mopts.TimeLimit > 0 {
		wasteDeadline = start.Add(mopts.TimeLimit)
	}
	res := milp.Solve(ctx, c.LP, mopts)
	wasteSp.End(milpOutcome(res.Status), obs.SlackUntil(wasteDeadline))
	switch res.Status {
	case milp.StatusInfeasible, milp.StatusNoSolution:
		if res.Status == milp.StatusInfeasible && !restricted {
			return nil, core.ErrInfeasible
		}
		// Budget exhausted without an incumbent, or the restricted space
		// admits no placement (reachable when warm-start mapping or the
		// encoding excludes the seed itself — not a proof for the full
		// problem). The validated seed is still a legal floorplan: return
		// it unimproved rather than claiming failure, or worse a false
		// infeasibility proof, after a successful heuristic run.
		if seed != nil && seed.Validate(c.Problem) == nil {
			fallback := *seed
			fallback.Engine = name
			fallback.Proven = false
			fallback.Elapsed = time.Since(start)
			sp.Incumbent(fallback.Objective(c.Problem))
			return &fallback, nil
		}
		return nil, core.ErrNoSolution
	case milp.StatusUnbounded:
		return nil, errors.New("model: MILP relaxation unbounded (formulation bug)")
	}
	proven := res.Status == milp.StatusOptimal
	nodes := res.Nodes
	finalX := res.X

	wirePass := !skipWire && len(c.Problem.Nets) > 0
	remaining := time.Duration(0)
	if wirePass && budget > 0 {
		// Never extend past the caller's budget: an exhausted budget
		// skips the wire pass instead of borrowing extra wall-clock
		// (the engine deadline contract, see DESIGN.md).
		remaining = budget - time.Since(start)
		if remaining <= 0 {
			wirePass = false
			proven = false
		}
	}
	if wirePass {
		c.StageWireLength(res.X)
		wireSp := opts.Probe.Span(name + "/wire")
		m2 := milp.Options{
			Workers:   opts.Workers,
			MaxNodes:  maxNodes,
			WarmStart: res.X,
			Obs:       wireSp,
		}
		var wireDeadline time.Time
		if budget > 0 {
			m2.TimeLimit = remaining
			wireDeadline = time.Now().Add(remaining)
		}
		res2 := milp.Solve(ctx, c.LP, m2)
		wireSp.End(milpOutcome(res2.Status), obs.SlackUntil(wireDeadline))
		nodes += res2.Nodes
		if res2.X != nil {
			finalX = res2.X
			proven = proven && res2.Status == milp.StatusOptimal
		} else {
			proven = false
		}
	}

	sol, err := c.Decode(finalX)
	if err != nil {
		return nil, err
	}
	sol.Engine = name
	sol.Proven = proven
	sol.Elapsed = time.Since(start)
	sol.Nodes = nodes
	if err := sol.Validate(c.Problem); err != nil {
		return nil, fmt.Errorf("model: decoded MILP solution invalid: %w", err)
	}
	sp.Incumbent(sol.Objective(c.Problem))
	return sol, nil
}
