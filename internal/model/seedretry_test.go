package model

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/heuristic"
)

// TestHOSeedRetryWithRemainingBudget pins the seed-retry policy: the
// quarter-slice seed budget is a split heuristic, so when the heuristic
// fails inside it, HO must retry the seed with the remaining budget
// before reporting ErrNoSolution. This is what makes milp-ho feasible on
// sdr3, where the constructive placer needs more than a quarter of a
// tight budget to find a legal placement.
func TestHOSeedRetryWithRemainingBudget(t *testing.T) {
	p := smallProblem(1, core.RelocMetric)
	const limit = 8 * time.Second

	var budgets []time.Duration
	eng := &HOEngine{
		SkipWireStage: true,
		seedSolve: func(ctx context.Context, p *core.Problem, opts core.SolveOptions) (*core.Solution, error) {
			budgets = append(budgets, opts.TimeLimit)
			if len(budgets) == 1 {
				return nil, core.ErrNoSolution // quarter-slice attempt fails
			}
			return (&heuristic.Constructive{}).Solve(ctx, p, opts)
		},
	}
	sol, err := eng.Solve(context.Background(), p, core.SolveOptions{TimeLimit: limit, Seed: 1})
	if err != nil {
		t.Fatalf("HO failed despite retry budget: %v", err)
	}
	if verr := sol.Validate(p); verr != nil {
		t.Fatalf("HO solution invalid: %v", verr)
	}
	if len(budgets) != 2 {
		t.Fatalf("seed attempts = %d, want 2 (quarter slice, then retry)", len(budgets))
	}
	if budgets[0] != limit/4 {
		t.Errorf("first seed budget = %s, want quarter slice %s", budgets[0], limit/4)
	}
	if budgets[1] <= budgets[0] {
		t.Errorf("retry budget %s not larger than the quarter slice %s", budgets[1], budgets[0])
	}
}

// TestHOSeedRetryStopsOnFailure: when the retry fails too, the error must
// surface as ErrNoSolution (never ErrInfeasible — a heuristic give-up is
// not a proof) after exactly two attempts.
func TestHOSeedRetryStopsOnFailure(t *testing.T) {
	p := smallProblem(0, core.RelocConstraint)
	attempts := 0
	eng := &HOEngine{
		seedSolve: func(ctx context.Context, p *core.Problem, opts core.SolveOptions) (*core.Solution, error) {
			attempts++
			return nil, core.ErrNoSolution
		},
	}
	_, err := eng.Solve(context.Background(), p, core.SolveOptions{TimeLimit: time.Second, Seed: 1})
	if !errors.Is(err, core.ErrNoSolution) {
		t.Fatalf("err = %v, want ErrNoSolution", err)
	}
	if errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("heuristic give-up surfaced as infeasibility proof: %v", err)
	}
	if attempts != 2 {
		t.Fatalf("seed attempts = %d, want 2", attempts)
	}
}

// TestHOSeedNoRetryOnCanceledContext: a seed failure caused by context
// cancellation must not trigger a retry — there is no budget left to lend.
func TestHOSeedNoRetryOnCanceledContext(t *testing.T) {
	p := smallProblem(0, core.RelocConstraint)
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	eng := &HOEngine{
		seedSolve: func(ctx context.Context, p *core.Problem, opts core.SolveOptions) (*core.Solution, error) {
			attempts++
			cancel() // simulate the budget dying mid-seed
			return nil, core.ErrNoSolution
		},
	}
	_, err := eng.Solve(ctx, p, core.SolveOptions{TimeLimit: time.Second, Seed: 1})
	if !errors.Is(err, core.ErrNoSolution) {
		t.Fatalf("err = %v, want ErrNoSolution", err)
	}
	if attempts != 1 {
		t.Fatalf("seed attempts = %d, want 1 (no retry on canceled context)", attempts)
	}
}
