package model

import (
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/grid"
)

// TestFigure3OffsetSemantics reproduces Figure 3: a region placed over
// the middle portions of a five-portion device has k = (0,1,1,1,0) and
// offset o = (0,1,0,0,0) — o marks the first covered portion.
func TestFigure3OffsetSemantics(t *testing.T) {
	// Five portions: C | B | C | D | C (widths 2,1,2,1,2).
	cols := []device.TypeID{
		device.V5CLB, device.V5CLB,
		device.V5BRAM,
		device.V5CLB, device.V5CLB,
		device.V5DSP,
		device.V5CLB, device.V5CLB,
	}
	d, err := device.NewColumnar("fig3", cols, 3, device.V5Types(), nil)
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{
		Device: d,
		Regions: []core.Region{
			{Name: "n", Req: device.Requirements{device.ClassCLB: 2, device.ClassBRAM: 1}},
		},
		// A free-compatible request makes region 0 a compatibility area,
		// so its offset variables are materialized.
		FCAreas:   []core.FCRequest{{Region: 0, Mode: core.RelocMetric}},
		Objective: core.DefaultObjective(),
	}
	c, err := Build(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Part.NumPortions() != 5 {
		t.Fatalf("portions = %d, want 5", c.Part.NumPortions())
	}

	// Place the region like Figure 3: covering portions 1..3 (0-based),
	// i.e. columns 1..5.
	x := make([]float64, c.LP.NumVariables())
	region := grid.Rect{X: 1, Y: 0, W: 5, H: 1}
	c.assignArea(x, 0, region)
	wantK := []float64{1, 1, 1, 1, 0} // portion 0 (cols 0-1) intersects col 1!
	// Recompute: columns 1..5 touch portion 0 (cols 0-1), portion 1
	// (col 2), portion 2 (cols 3-4), portion 3 (col 5). Adjust the
	// placement to start inside portion 1 instead, mirroring the figure:
	x = make([]float64, c.LP.NumVariables())
	region = grid.Rect{X: 2, Y: 0, W: 4, H: 1} // cols 2..5 -> portions 1,2,3
	c.assignArea(x, 0, region)
	wantK = []float64{0, 1, 1, 1, 0}
	wantO := []float64{0, 1, 0, 0, 0}
	for pIdx := 0; pIdx < 5; pIdx++ {
		if got := x[c.k[0][pIdx]]; got != wantK[pIdx] {
			t.Fatalf("k[%d] = %g, want %g", pIdx, got, wantK[pIdx])
		}
		if got := x[c.off[0][pIdx]]; got != wantO[pIdx] {
			t.Fatalf("o[%d] = %g, want %g", pIdx, got, wantO[pIdx])
		}
	}

	// And the assignment satisfies the offset constraints (Equations 4/5)
	// of the compiled model: the semantic constraints accept exactly this
	// o for this k. Fill the remaining per-area variables for the FC area
	// mirroring the region with v=1 and check full feasibility.
	c.assignArea(x, 1, region) // FC area mirrors (overlap is fine: v=1)
	x[c.viol[0]] = 1
	c.assignPairVars(x, []grid.Rect{region, region}, []bool{false, true})
	c.assignNets(x, []grid.Rect{region, region})
	if err := c.LP.CheckFeasible(x, 1e-6); err != nil {
		t.Fatalf("Figure 3 assignment violates the model: %v", err)
	}

	// A wrong offset (claiming portion 2 is first) must be rejected.
	x[c.off[0][1]] = 0
	x[c.off[0][2]] = 1
	if err := c.LP.CheckFeasible(x, 1e-6); err == nil {
		t.Fatal("incorrect offset accepted by Equations 4/5")
	}
}
