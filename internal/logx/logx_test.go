package logx

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestDefaultsAreInfoText(t *testing.T) {
	var buf bytes.Buffer
	log, err := New(&buf, "", "")
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("hidden")
	log.Info("shown", "k", "v")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Error("debug line emitted at the default info level")
	}
	if !strings.Contains(out, "msg=shown") || !strings.Contains(out, "k=v") {
		t.Errorf("default format is not slog text: %q", out)
	}
}

func TestJSONFormatAndLevels(t *testing.T) {
	var buf bytes.Buffer
	log, err := New(&buf, "warn", "json")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hidden")
	log.Warn("shown")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("emitted %d lines, want the warn line only: %q", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("json format emitted non-JSON %q: %v", lines[0], err)
	}
	if rec["msg"] != "shown" || rec["level"] != "WARN" {
		t.Errorf("unexpected record: %v", rec)
	}
}

func TestUnknownNamesError(t *testing.T) {
	if _, err := New(&bytes.Buffer{}, "loud", ""); err == nil {
		t.Error("unknown level accepted")
	}
	if _, err := New(&bytes.Buffer{}, "", "xml"); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := New(&bytes.Buffer{}, "DEBUG", "JSON"); err != nil {
		t.Errorf("case-insensitive names rejected: %v", err)
	}
}
