// Package logx builds the slog handler shared by the repo's binaries, so
// every CLI exposes the same -log-level/-log-format contract: levels
// debug, info (the default), warn and error; formats text (the default)
// and json.
package logx

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Levels and Formats list the accepted flag values, for usage strings.
const (
	Levels  = "debug, info, warn, error"
	Formats = "text, json"
)

// New builds a logger writing to w at the named level and format. Empty
// strings select the defaults (info, text); unknown names error.
func New(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("logx: unknown log level %q (want %s)", level, Levels)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("logx: unknown log format %q (want %s)", format, Formats)
	}
	return slog.New(h), nil
}
