// Package reconfig simulates the run-time side of a relocation-aware
// partially-reconfigurable system — the use case that motivates the
// paper's floorplanner.
//
// A Manager takes a floorplanned design (regions plus the free-compatible
// areas the floorplanner reserved) and operates it over simulated time:
// module modes are configured into region slots through the
// configuration-memory model of internal/bitstream, relocations move a
// running mode to a reserved compatible slot via the address-rewriting
// filter, and every operation is charged the configuration-port time of
// the frames it writes.
//
// The Manager quantifies the two benefits the paper's introduction
// claims for bitstream relocation:
//
//   - design re-use: one stored bitstream per module mode serves every
//     compatible slot, instead of one bitstream per (mode, slot) — see
//     StorageReport;
//   - rapid run-time change: moving a module is a partial
//     reconfiguration of just its frames, orders of magnitude below a
//     full-device reconfiguration — see Stats and FullDeviceReconfig.
package reconfig

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/grid"
)

// DefaultFrameTime is the simulated configuration-port time per frame
// (the order of magnitude of an ICAP write of one frame).
const DefaultFrameTime = 6 * time.Microsecond

// Slot is one location a region's bitstreams can live in: the region's
// own placement (index 0) or one of its free-compatible areas.
type Slot struct {
	Region int
	Index  int
	Area   grid.Rect
}

// Manager operates a floorplanned design at run time.
//
// A Manager comes in two flavors sharing all operations:
//
//   - New builds a static manager from a floorplanned (problem, solution)
//     pair: the region set and their slots are fixed up front;
//   - NewDynamic builds a manager over an empty device for the online
//     session workload: regions are registered as modules arrive
//     (AddRegion), gain relocation targets at run time (AddSlot) and are
//     retired as modules depart (RemoveRegion).
type Manager struct {
	dev       *device.Device
	problem   *core.Problem // nil for dynamic managers
	cm        *bitstream.ConfigMemory
	frameTime time.Duration

	names   []string // per region: task label
	removed []bool   // per region: retired by RemoveRegion
	slots   [][]Slot // per region: placement + FC areas
	current []int    // per region: occupied slot index, -1 if unloaded
	mode    []int64  // per region: loaded mode seed (valid when current >= 0)
	store   map[storeKey]*bitstream.Bitstream

	// faults, when non-nil, injects configuration-port failures into
	// every frame write; loadFrames retries/repairs around them.
	faults *FaultPlan

	stats Stats
}

type storeKey struct {
	region int
	mode   int64
}

// Stats accumulates the manager's activity.
type Stats struct {
	// Configurations counts initial mode loads.
	Configurations int `json:"configurations"`
	// ModeSwitches counts reconfigurations of a region in place.
	ModeSwitches int `json:"mode_switches"`
	// Relocations counts moves between compatible slots.
	Relocations int `json:"relocations"`
	// FramesWritten is the total configuration frames written.
	FramesWritten int `json:"frames_written"`
	// BusyTime is the summed configuration-port time.
	BusyTime time.Duration `json:"busy_time"`
	// FaultsInjected counts frame-write attempts a FaultPlan failed or
	// corrupted.
	FaultsInjected int `json:"faults_injected,omitempty"`
	// Retries counts frame-write attempts repeated after a transient
	// failure or a detected corruption.
	Retries int `json:"retries,omitempty"`
	// CorruptionsRepaired counts corrupted writes caught by readback
	// verification and repaired by rewriting the frames.
	CorruptionsRepaired int `json:"corruptions_repaired,omitempty"`
	// Rollbacks counts moves undone by ExecuteSchedule's transactional
	// rollback after a mid-schedule hard failure.
	Rollbacks int `json:"rollbacks,omitempty"`
}

// New builds a manager from a validated problem/solution pair.
func New(p *core.Problem, sol *core.Solution, frameTime time.Duration) (*Manager, error) {
	if err := sol.Validate(p); err != nil {
		return nil, fmt.Errorf("reconfig: %w", err)
	}
	if frameTime <= 0 {
		frameTime = DefaultFrameTime
	}
	m := &Manager{
		dev:       p.Device,
		problem:   p,
		cm:        bitstream.NewConfigMemory(p.Device),
		frameTime: frameTime,
		names:     make([]string, len(p.Regions)),
		removed:   make([]bool, len(p.Regions)),
		slots:     make([][]Slot, len(p.Regions)),
		current:   make([]int, len(p.Regions)),
		mode:      make([]int64, len(p.Regions)),
		store:     map[storeKey]*bitstream.Bitstream{},
	}
	for ri, r := range sol.Regions {
		m.names[ri] = p.Regions[ri].Name
		m.slots[ri] = []Slot{{Region: ri, Index: 0, Area: r}}
		m.current[ri] = -1
	}
	for _, fc := range sol.FC {
		if !fc.Placed {
			continue
		}
		ri := p.FCAreas[fc.Request].Region
		m.slots[ri] = append(m.slots[ri], Slot{
			Region: ri,
			Index:  len(m.slots[ri]),
			Area:   fc.Rect,
		})
	}
	return m, nil
}

// Slots returns the slots available to a region (home placement first).
func (m *Manager) Slots(region int) []Slot {
	return append([]Slot(nil), m.slots[region]...)
}

// CurrentSlot returns the slot a region currently occupies, or -1.
func (m *Manager) CurrentSlot(region int) int { return m.current[region] }

// Stats returns the accumulated activity counters.
func (m *Manager) Stats() Stats { return m.stats }

// RestoreStats overwrites the activity counters — used by crash
// recovery to resume the counters a persisted session had accumulated,
// instead of restarting them at the replay's (much smaller) cost.
func (m *Manager) RestoreStats(s Stats) { m.stats = s }

// SetFaultPlan installs (or, with nil, removes) the injected-fault
// schedule applied to subsequent frame writes.
func (m *Manager) SetFaultPlan(p *FaultPlan) { m.faults = p }

// FrameDigest hashes the entire configuration memory (every loaded
// frame's address and payload). Two managers operating the same live
// design digest identically — the frame-for-frame equality check used
// by crash-recovery tests.
func (m *Manager) FrameDigest() uint32 { return m.cm.Digest() }

// taskName labels a region's configuration in the config memory.
func (m *Manager) taskName(region int) string {
	return fmt.Sprintf("region-%d:%s", region, m.names[region])
}

// bitstreamFor returns (building and caching on first use) the single
// stored bitstream of a region mode, generated for the region's home
// slot. Thanks to relocatability the same stored image serves every slot.
func (m *Manager) bitstreamFor(region int, mode int64) (*bitstream.Bitstream, error) {
	key := storeKey{region: region, mode: mode}
	if bs, ok := m.store[key]; ok {
		return bs, nil
	}
	bs, err := bitstream.Generate(m.dev, m.slots[region][0].Area, mode)
	if err != nil {
		return nil, err
	}
	m.store[key] = bs
	return bs, nil
}

// charge accounts for writing a bitstream through the configuration port.
func (m *Manager) charge(bs *bitstream.Bitstream) {
	m.stats.FramesWritten += bs.FrameCount()
	m.stats.BusyTime += time.Duration(bs.FrameCount()) * m.frameTime
}

// loadFrames writes a bitstream into configuration memory under the
// fault plan, retrying with capped exponential backoff. Each attempt
// draws one fault:
//
//   - pass: the write lands and is readback-verified (belt and braces —
//     a silently corrupted pass would otherwise survive);
//   - transient: the attempt fails; the next attempt draws afresh;
//   - corrupt: the write lands with flipped bits in one frame; readback
//     verification catches the mismatch and the retry rewrites;
//   - stuck: the port is dead for the rest of this operation — every
//     remaining attempt fails.
//
// When the attempt budget is exhausted the operation hard-fails with a
// KindFaulted OpError wrapping ErrFaultInjected; the frames the task had
// written in failed attempts are unloaded so no half-written
// configuration lingers. Substrate rejections (CRC, ownership, bounds)
// are not retried: they are deterministic model errors, not hardware
// flakes.
func (m *Manager) loadFrames(op string, region, slot int, bs *bitstream.Bitstream, task string) error {
	stuck := false
	for attempt := 1; ; attempt++ {
		fault := m.faults.draw()
		if stuck {
			fault = FaultStuck
		}
		switch fault {
		case FaultTransient, FaultStuck:
			m.stats.FaultsInjected++
			if fault == FaultStuck {
				stuck = true
			}
		case FaultCorrupt:
			m.stats.FaultsInjected++
			if err := m.cm.Load(bs, task); err != nil {
				return wrapErr(op, region, slot, err)
			}
			m.charge(bs)
			m.cm.CorruptFrame(bs.Frames[attempt%len(bs.Frames)].Addr, 0xA5)
			if m.verifyLoaded(bs) > 0 {
				m.stats.CorruptionsRepaired++
			}
		default: // FaultPass
			if err := m.cm.Load(bs, task); err != nil {
				return wrapErr(op, region, slot, err)
			}
			m.charge(bs)
			if m.verifyLoaded(bs) == 0 {
				return nil
			}
			// A pass whose readback still mismatches means stale frames
			// from an earlier corrupted attempt survived under another
			// owner — cannot happen with same-task overwrite, but verify
			// is cheap and the retry below is the right response anyway.
			m.stats.CorruptionsRepaired++
		}
		if attempt >= m.faults.maxAttempts() {
			m.cm.Unload(task)
			return &OpError{Op: op, Region: region, Slot: slot, Kind: KindFaulted,
				Detail: fmt.Sprintf("after %d attempts", attempt), Err: ErrFaultInjected}
		}
		m.stats.Retries++
		m.faults.backoff(attempt)
	}
}

// verifyLoaded reads the bitstream's frames back from configuration
// memory and counts mismatches against the expected payloads.
func (m *Manager) verifyLoaded(bs *bitstream.Bitstream) int {
	mismatched := 0
	for _, f := range bs.Frames {
		got, ok := m.cm.Frame(f.Addr)
		if !ok || got != f.Payload {
			mismatched++
		}
	}
	return mismatched
}

// Configure loads a module mode into one of the region's slots.
func (m *Manager) Configure(region int, mode int64, slot int) error {
	const op = "configure"
	if err := m.checkSlot(op, region, slot); err != nil {
		return err
	}
	if m.current[region] >= 0 {
		return slotErr(op, region, slot, KindAlreadyConfigured, "unload or switch modes first")
	}
	target := m.slots[region][slot].Area
	if other, taken := m.occupiedBy(target, region); taken {
		return slotErr(op, region, slot, KindOccupied,
			fmt.Sprintf("area %v overlaps live region %d (%s)", target, other, m.names[other]))
	}
	bs, err := m.bitstreamFor(region, mode)
	if err != nil {
		return wrapErr(op, region, slot, err)
	}
	placed, err := bitstream.Relocate(m.dev, bs, target)
	if err != nil {
		return wrapErr(op, region, slot, err)
	}
	if err := m.loadFrames(op, region, slot, placed, m.taskName(region)); err != nil {
		return err
	}
	m.current[region] = slot
	m.mode[region] = mode
	m.stats.Configurations++
	return nil
}

// SwitchMode reconfigures the region in place with a different mode (the
// SDR scenario: mutually exclusive implementations of one module).
func (m *Manager) SwitchMode(region int, mode int64) error {
	const op = "switch-mode"
	if err := m.checkRegion(op, region); err != nil {
		return err
	}
	slot := m.current[region]
	if slot < 0 {
		return opErr(op, region, KindNotConfigured, "")
	}
	bs, err := m.bitstreamFor(region, mode)
	if err != nil {
		return wrapErr(op, region, slot, err)
	}
	placed, err := bitstream.Relocate(m.dev, bs, m.slots[region][slot].Area)
	if err != nil {
		return wrapErr(op, region, slot, err)
	}
	m.cm.Unload(m.taskName(region))
	if err := m.loadFrames(op, region, slot, placed, m.taskName(region)); err != nil {
		// An in-place switch overwrites the region's own frames, so a
		// hard fault here has already torn the old mode down. Restore it
		// from the stored image so the region keeps running what it ran
		// before: the restore bypasses injection — the image is known
		// good, and modelling a second-order fault on the recovery write
		// adds nothing (the caller already gets the KindFaulted error).
		if old, berr := m.bitstreamFor(region, m.mode[region]); berr == nil {
			if restored, rerr := bitstream.Relocate(m.dev, old, m.slots[region][slot].Area); rerr == nil {
				_ = m.cm.Load(restored, m.taskName(region))
			}
		}
		return err
	}
	m.mode[region] = mode
	m.stats.ModeSwitches++
	return nil
}

// Relocate moves the region's running mode to another of its slots: the
// stored bitstream is retargeted by the filter and written to the new
// area, then the old area is released. This is the operation the
// floorplanner's free-compatible areas exist for.
func (m *Manager) Relocate(region, slot int) error {
	const op = "relocate"
	if err := m.checkSlot(op, region, slot); err != nil {
		return err
	}
	cur := m.current[region]
	if cur < 0 {
		return slotErr(op, region, slot, KindNotConfigured, "")
	}
	if cur == slot {
		return nil
	}
	source := m.slots[region][cur].Area
	target := m.slots[region][slot].Area
	if !m.dev.Compatible(m.slots[region][0].Area, target) {
		return slotErr(op, region, slot, KindIncompatible,
			fmt.Sprintf("area %v is not compatible with home area %v", target, m.slots[region][0].Area))
	}
	if other, taken := m.occupiedBy(target, region); taken {
		return slotErr(op, region, slot, KindOccupied,
			fmt.Sprintf("area %v overlaps live region %d (%s)", target, other, m.names[other]))
	}
	if target.Overlaps(source) {
		return slotErr(op, region, slot, KindOccupied,
			fmt.Sprintf("area %v overlaps the region's own live area %v (make-before-break needs a disjoint target)", target, source))
	}
	bs, err := m.bitstreamFor(region, m.mode[region])
	if err != nil {
		return wrapErr(op, region, slot, err)
	}
	moved, err := bitstream.Relocate(m.dev, bs, target)
	if err != nil {
		return wrapErr(op, region, slot, err)
	}
	// Configure the target first (it is reserved, so it must be free),
	// then release the source — make-before-break. Only this first write
	// goes through the fault plan: if it hard-fails the source copy is
	// still live and the region is untouched. The ownership handover
	// below rewrites frames whose content is already verified on the
	// fabric, so it bypasses injection.
	tmpTask := m.taskName(region) + ":moving"
	if err := m.loadFrames(op, region, slot, moved, tmpTask); err != nil {
		return err
	}
	m.cm.Unload(m.taskName(region))
	m.cm.Unload(tmpTask)
	if err := m.cm.Load(moved, m.taskName(region)); err != nil {
		return wrapErr(op, region, slot, err)
	}
	m.current[region] = slot
	m.stats.Relocations++
	return nil
}

// Unload releases a region's configuration.
func (m *Manager) Unload(region int) {
	if region < 0 || region >= len(m.slots) || m.removed[region] {
		return
	}
	if m.current[region] < 0 {
		return
	}
	m.cm.Unload(m.taskName(region))
	m.current[region] = -1
}

// checkRegion validates a region index against the live region set.
func (m *Manager) checkRegion(op string, region int) error {
	if region < 0 || region >= len(m.slots) || m.removed[region] {
		return opErr(op, region, KindUnknownRegion, "")
	}
	return nil
}

func (m *Manager) checkSlot(op string, region, slot int) error {
	if err := m.checkRegion(op, region); err != nil {
		return err
	}
	if slot < 0 || slot >= len(m.slots[region]) {
		return slotErr(op, region, slot, KindUnknownSlot,
			fmt.Sprintf("region has %d slots", len(m.slots[region])))
	}
	return nil
}

// occupiedBy reports whether area overlaps the current area of any live
// region other than exclude.
func (m *Manager) occupiedBy(area grid.Rect, exclude int) (region int, taken bool) {
	for ri, cur := range m.current {
		if ri == exclude || cur < 0 || m.removed[ri] {
			continue
		}
		if m.slots[ri][cur].Area.Overlaps(area) {
			return ri, true
		}
	}
	return -1, false
}

// FullDeviceReconfig returns the simulated time of reconfiguring the
// whole device — the baseline partial reconfiguration beats (the paper's
// "as FPGA gets larger, it takes longer to reconfigure the entire chip").
func (m *Manager) FullDeviceReconfig() time.Duration {
	return time.Duration(m.dev.TotalFrames()) * m.frameTime
}

// RegionReconfig returns the simulated time of reconfiguring one region.
func (m *Manager) RegionReconfig(region int) time.Duration {
	frames := m.dev.FramesInRect(m.slots[region][0].Area)
	return time.Duration(frames) * m.frameTime
}

// StorageEntry describes the bitstream storage needed for one region.
type StorageEntry struct {
	Region string
	Modes  int
	Slots  int
	// WithRelocation is the stored bytes using one relocatable image
	// per mode.
	WithRelocation int
	// WithoutRelocation is the stored bytes when every (mode, slot)
	// pair needs its own image (no relocation filter available).
	WithoutRelocation int
}

// StorageReport quantifies the design re-use benefit: stored bitstream
// bytes per region for a given number of modes, with and without
// relocation.
func (m *Manager) StorageReport(modesPerRegion int) ([]StorageEntry, error) {
	var out []StorageEntry
	for ri, slots := range m.slots {
		if m.removed[ri] {
			continue
		}
		bs, err := m.bitstreamFor(ri, 0)
		if err != nil {
			return nil, err
		}
		data, err := bs.Bytes()
		if err != nil {
			return nil, err
		}
		out = append(out, StorageEntry{
			Region:            m.names[ri],
			Modes:             modesPerRegion,
			Slots:             len(slots),
			WithRelocation:    modesPerRegion * len(data),
			WithoutRelocation: modesPerRegion * len(slots) * len(data),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Region < out[j].Region })
	return out, nil
}
