package reconfig

import (
	"time"

	"repro/internal/bitstream"
)

// Move is one step of a relocation schedule: move region to its slot.
type Move struct {
	Region int `json:"region"`
	Slot   int `json:"slot"`
}

// ScheduleReport accounts for an executed relocation schedule.
type ScheduleReport struct {
	// Executed counts the moves performed.
	Executed int `json:"executed"`
	// FramesWritten is the configuration frames the schedule wrote.
	FramesWritten int `json:"frames_written"`
	// BusyTime is the configuration-port time the schedule consumed.
	BusyTime time.Duration `json:"busy_time"`
	// FramesVerified counts frames read back from configuration memory
	// after each move and compared against the expected design content.
	FramesVerified int `json:"frames_verified"`
	// CorruptedFrames counts readback mismatches (0 on a correct run).
	CorruptedFrames int `json:"corrupted_frames"`
}

// ExecuteSchedule runs an ordered relocation schedule move by move. Each
// move must be executable against the state left by the moves before it —
// the planner's no-break guarantee. After every move the region's frames
// are read back from configuration memory and verified against the
// expected design content.
//
// Execution stops at the first failing move; the report covers the moves
// that did execute, and the error identifies the one that did not.
func (m *Manager) ExecuteSchedule(moves []Move) (*ScheduleReport, error) {
	rep := &ScheduleReport{}
	for _, mv := range moves {
		before := m.stats
		if err := m.Relocate(mv.Region, mv.Slot); err != nil {
			return rep, err
		}
		rep.Executed++
		rep.FramesWritten += m.stats.FramesWritten - before.FramesWritten
		rep.BusyTime += m.stats.BusyTime - before.BusyTime
		frames, corrupted := m.VerifyRegion(mv.Region)
		rep.FramesVerified += frames
		rep.CorruptedFrames += corrupted
	}
	return rep, nil
}

// VerifyRegion reads the region's frames back from configuration memory
// and compares them against the content its loaded mode should have at
// its current area. It returns the frames checked and how many
// mismatched (missing frames count as corrupted). An unloaded or removed
// region verifies vacuously: (0, 0).
func (m *Manager) VerifyRegion(region int) (frames, corrupted int) {
	if region < 0 || region >= len(m.slots) || m.removed[region] || m.current[region] < 0 {
		return 0, 0
	}
	area := m.slots[region][m.current[region]].Area
	bs, err := m.bitstreamFor(region, m.mode[region])
	if err != nil {
		return 0, 0
	}
	expected, err := bitstream.Relocate(m.dev, bs, area)
	if err != nil {
		return 0, 0
	}
	for _, f := range expected.Frames {
		frames++
		got, ok := m.cm.Frame(f.Addr)
		if !ok || got != f.Payload {
			corrupted++
		}
	}
	return frames, corrupted
}
