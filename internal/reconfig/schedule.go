package reconfig

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bitstream"
)

// Move is one step of a relocation schedule: move region to its slot.
type Move struct {
	Region int `json:"region"`
	Slot   int `json:"slot"`
}

// ScheduleReport accounts for an executed relocation schedule.
type ScheduleReport struct {
	// Executed counts the moves performed.
	Executed int `json:"executed"`
	// FramesWritten is the configuration frames the schedule wrote.
	FramesWritten int `json:"frames_written"`
	// BusyTime is the configuration-port time the schedule consumed.
	BusyTime time.Duration `json:"busy_time"`
	// FramesVerified counts frames read back from configuration memory
	// after each move and compared against the expected design content.
	FramesVerified int `json:"frames_verified"`
	// CorruptedFrames counts readback mismatches (0 on a correct run).
	CorruptedFrames int `json:"corrupted_frames"`
	// Retries counts frame-write attempts the schedule repeated after
	// injected transient faults or detected corruptions.
	Retries int `json:"retries,omitempty"`
	// RolledBack counts moves undone after a mid-schedule hard failure.
	// Executed is net of rollback: a fully rolled-back schedule reports
	// Executed 0.
	RolledBack int `json:"rolled_back,omitempty"`
}

// ExecuteSchedule runs an ordered relocation schedule move by move. Each
// move must be executable against the state left by the moves before it —
// the planner's no-break guarantee. After every move the region's frames
// are read back from configuration memory and verified against the
// expected design content.
//
// The schedule is transactional: when a move hard-fails (its retry
// budget exhausted, or a substrate rejection), the moves already
// executed are undone in reverse order so the layout returns to its
// pre-schedule state — a partial defrag never strands the plan halfway.
// Reverse order makes each undo target exactly the slot that move
// vacated, so every rollback relocation is conflict-free; rollback
// writes bypass fault injection (every region stays on-fabric either
// way under make-before-break, but a faulted rollback would leave the
// layout in a third state neither the planner nor the caller asked
// for). The report covers the net effect, and the error identifies the
// move that failed.
func (m *Manager) ExecuteSchedule(moves []Move) (*ScheduleReport, error) {
	rep := &ScheduleReport{}
	before := m.stats
	type done struct{ region, from int }
	var executed []done
	var failErr error
	for _, mv := range moves {
		from := m.current[mv.Region]
		if err := m.Relocate(mv.Region, mv.Slot); err != nil {
			failErr = err
			break
		}
		executed = append(executed, done{region: mv.Region, from: from})
		rep.Executed++
		frames, corrupted := m.VerifyRegion(mv.Region)
		rep.FramesVerified += frames
		rep.CorruptedFrames += corrupted
	}
	if failErr != nil {
		plan := m.faults
		m.faults = nil
		for i := len(executed) - 1; i >= 0; i-- {
			d := executed[i]
			if err := m.Relocate(d.region, d.from); err != nil {
				// Cannot happen on the fault-free rollback path (the slot
				// was just vacated); surface it rather than mask it.
				failErr = errors.Join(failErr, fmt.Errorf("rollback of region %d to slot %d: %w", d.region, d.from, err))
				break
			}
			rep.Executed--
			rep.RolledBack++
			m.stats.Rollbacks++
			frames, corrupted := m.VerifyRegion(d.region)
			rep.FramesVerified += frames
			rep.CorruptedFrames += corrupted
		}
		m.faults = plan
	}
	rep.FramesWritten = m.stats.FramesWritten - before.FramesWritten
	rep.BusyTime = m.stats.BusyTime - before.BusyTime
	rep.Retries = m.stats.Retries - before.Retries
	return rep, failErr
}

// VerifyRegion reads the region's frames back from configuration memory
// and compares them against the content its loaded mode should have at
// its current area. It returns the frames checked and how many
// mismatched (missing frames count as corrupted). An unloaded or removed
// region verifies vacuously: (0, 0).
func (m *Manager) VerifyRegion(region int) (frames, corrupted int) {
	if region < 0 || region >= len(m.slots) || m.removed[region] || m.current[region] < 0 {
		return 0, 0
	}
	area := m.slots[region][m.current[region]].Area
	bs, err := m.bitstreamFor(region, m.mode[region])
	if err != nil {
		return 0, 0
	}
	expected, err := bitstream.Relocate(m.dev, bs, area)
	if err != nil {
		return 0, 0
	}
	for _, f := range expected.Frames {
		frames++
		got, ok := m.cm.Frame(f.Addr)
		if !ok || got != f.Payload {
			corrupted++
		}
	}
	return frames, corrupted
}
