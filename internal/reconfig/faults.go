package reconfig

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// FaultKind is one kind of injected hardware fault on the configuration
// port. Faults model the failure modes a real ICAP/PCAP write path
// exhibits: a write that fails transiently (bus contention, clocking),
// a write that lands but corrupts frame content (SEU during shift-in),
// and a port that stays dead for the rest of the operation.
type FaultKind int

const (
	// FaultPass lets the frame write through untouched.
	FaultPass FaultKind = iota
	// FaultTransient fails this write attempt; a retry draws again.
	FaultTransient
	// FaultCorrupt lets the write land but flips bits in one written
	// frame — only readback verification can catch it.
	FaultCorrupt
	// FaultStuck fails this write attempt and every retry of the same
	// operation (the port is dead for this op): the operation hard-fails
	// once the retry budget is exhausted.
	FaultStuck
)

var faultNames = map[FaultKind]string{
	FaultPass:      "pass",
	FaultTransient: "transient",
	FaultCorrupt:   "corrupt",
	FaultStuck:     "stuck",
}

func (k FaultKind) String() string {
	if s, ok := faultNames[k]; ok {
		return s
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// ErrFaultInjected is the root cause carried by KindFaulted operation
// errors: the injected hardware fault persisted past the retry budget.
var ErrFaultInjected = errors.New("reconfig: injected hardware fault persisted past retries")

// FaultPlan schedules injected configuration-port faults for a Manager,
// in the spirit of guard.Chaos. Two modes:
//
//   - Script: a non-empty fault list consumed one entry per frame-write
//     attempt, cycling — exact control for unit tests;
//   - Weights: when Script is empty, each attempt draws from the weighted
//     distribution using a rand.Rand seeded with Seed, so a whole soak is
//     reproducible from one integer.
//
// The zero weights (with an empty script) inject nothing. A FaultPlan is
// safe for concurrent use; concurrent operations consume schedule
// entries in arrival order.
type FaultPlan struct {
	// Seed seeds the weighted draw (ignored in Script mode).
	Seed int64
	// Script, when non-empty, is cycled deterministically attempt by
	// attempt.
	Script []FaultKind
	// PassWeight .. StuckWeight are the relative draw weights for the
	// weighted mode.
	PassWeight      int
	TransientWeight int
	CorruptWeight   int
	StuckWeight     int
	// MaxAttempts caps the write attempts per operation, first try
	// included (0 = DefaultMaxAttempts).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry, doubling per
	// retry up to MaxBackoff. The default 0 retries immediately — the
	// substrate is simulated, so tests and soaks stay fast; set it when
	// exercising real backoff timing.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff (0 = 50ms, only relevant
	// when BaseBackoff > 0).
	MaxBackoff time.Duration

	mu    sync.Mutex
	rng   *rand.Rand
	calls int
}

// DefaultMaxAttempts is the per-operation write-attempt cap (first try
// plus retries) used when a FaultPlan does not set its own.
const DefaultMaxAttempts = 4

// DefaultFaultWeights returns the weighted mix a bare "seed:N" plan
// uses: mostly clean writes with a tail of transient, corrupt and stuck
// faults — enough to exercise every recovery path in a soak without
// drowning the workload.
func DefaultFaultWeights() (pass, transient, corrupt, stuck int) {
	return 90, 5, 4, 1
}

// ParseFaultPlan builds a plan from a flag value:
//
//	off                         no injection (returns nil)
//	seed:7                      weighted mode, default weights
//	seed:7,transient:10,corrupt:5,stuck:1,pass:84
//	seed:7,attempts:6           override the retry budget
//	script:transient,pass,stuck exact per-attempt schedule
func ParseFaultPlan(s string) (*FaultPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "off" || s == "none" {
		return nil, nil
	}
	if rest, ok := strings.CutPrefix(s, "script:"); ok {
		plan := &FaultPlan{}
		for _, name := range strings.Split(rest, ",") {
			found := false
			for k, n := range faultNames {
				if n == strings.TrimSpace(name) {
					plan.Script = append(plan.Script, k)
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("reconfig: unknown fault %q (want pass, transient, corrupt or stuck)", name)
			}
		}
		return plan, nil
	}
	plan := &FaultPlan{}
	plan.PassWeight, plan.TransientWeight, plan.CorruptWeight, plan.StuckWeight = DefaultFaultWeights()
	seeded := false
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("reconfig: fault plan part %q is not key:value", part)
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return nil, fmt.Errorf("reconfig: fault plan %s: %w", key, err)
		}
		switch key {
		case "seed":
			plan.Seed, seeded = int64(n), true
		case "pass":
			plan.PassWeight = n
		case "transient":
			plan.TransientWeight = n
		case "corrupt":
			plan.CorruptWeight = n
		case "stuck":
			plan.StuckWeight = n
		case "attempts":
			plan.MaxAttempts = n
		default:
			return nil, fmt.Errorf("reconfig: unknown fault plan key %q", key)
		}
	}
	if !seeded {
		return nil, fmt.Errorf("reconfig: fault plan %q names no seed (use seed:N or script:...)", s)
	}
	return plan, nil
}

// maxAttempts returns the plan's effective per-operation attempt cap. A
// nil plan injects nothing, so one attempt always suffices.
func (p *FaultPlan) maxAttempts() int {
	if p == nil || p.MaxAttempts <= 0 {
		return DefaultMaxAttempts
	}
	return p.MaxAttempts
}

// backoff sleeps the capped exponential delay before retry number n
// (1-based). With BaseBackoff 0 it returns immediately.
func (p *FaultPlan) backoff(n int) {
	if p == nil || p.BaseBackoff <= 0 {
		return
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = 50 * time.Millisecond
	}
	d := p.BaseBackoff << (n - 1)
	if d > max || d <= 0 {
		d = max
	}
	time.Sleep(d)
}

// draw consumes one schedule entry. A nil plan always passes.
func (p *FaultPlan) draw() FaultKind {
	if p == nil {
		return FaultPass
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls++
	if len(p.Script) > 0 {
		return p.Script[(p.calls-1)%len(p.Script)]
	}
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.Seed))
	}
	weights := [...]struct {
		k FaultKind
		w int
	}{
		{FaultPass, p.PassWeight},
		{FaultTransient, p.TransientWeight},
		{FaultCorrupt, p.CorruptWeight},
		{FaultStuck, p.StuckWeight},
	}
	total := 0
	for _, e := range weights {
		if e.w > 0 {
			total += e.w
		}
	}
	if total == 0 {
		return FaultPass
	}
	n := p.rng.Intn(total)
	for _, e := range weights {
		if e.w <= 0 {
			continue
		}
		if n < e.w {
			return e.k
		}
		n -= e.w
	}
	return FaultPass
}

// Draws returns how many write attempts the plan has scheduled faults
// for (diagnostics).
func (p *FaultPlan) Draws() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls
}
