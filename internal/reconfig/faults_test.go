package reconfig

import (
	"errors"
	"testing"

	"repro/internal/sdr"
)

func TestParseFaultPlan(t *testing.T) {
	for _, spec := range []string{"", "off", "none"} {
		plan, err := ParseFaultPlan(spec)
		if err != nil || plan != nil {
			t.Fatalf("ParseFaultPlan(%q) = %v, %v; want nil, nil", spec, plan, err)
		}
	}

	plan, err := ParseFaultPlan("seed:7")
	if err != nil {
		t.Fatal(err)
	}
	p, tr, c, st := DefaultFaultWeights()
	if plan.Seed != 7 || plan.PassWeight != p || plan.TransientWeight != tr ||
		plan.CorruptWeight != c || plan.StuckWeight != st {
		t.Fatalf("seed:7 plan = %+v", plan)
	}

	plan, err = ParseFaultPlan("seed:3,transient:10,corrupt:5,stuck:1,pass:84,attempts:6")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 3 || plan.TransientWeight != 10 || plan.CorruptWeight != 5 ||
		plan.StuckWeight != 1 || plan.PassWeight != 84 || plan.MaxAttempts != 6 {
		t.Fatalf("explicit plan = %+v", plan)
	}

	plan, err = ParseFaultPlan("script:transient,pass,stuck")
	if err != nil {
		t.Fatal(err)
	}
	want := []FaultKind{FaultTransient, FaultPass, FaultStuck}
	if len(plan.Script) != len(want) {
		t.Fatalf("script = %v, want %v", plan.Script, want)
	}
	for i, k := range want {
		if plan.Script[i] != k {
			t.Fatalf("script = %v, want %v", plan.Script, want)
		}
	}

	for _, bad := range []string{"transient:10", "seed:x", "script:bogus", "seed:1,wat:2", "justwords"} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Fatalf("ParseFaultPlan(%q) accepted", bad)
		}
	}
}

// TestTransientFaultRetried: a transient write failure is absorbed by
// one retry and the operation succeeds with verified frames.
func TestTransientFaultRetried(t *testing.T) {
	m, p := sdr2Manager(t)
	m.SetFaultPlan(&FaultPlan{Script: []FaultKind{FaultTransient, FaultPass}})
	ri := p.RegionIndex(sdr.CarrierRecovery)
	if err := m.Configure(ri, 100, 0); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.FaultsInjected != 1 || st.Retries != 1 {
		t.Fatalf("stats = %+v, want 1 fault, 1 retry", st)
	}
	frames, corrupted := m.VerifyRegion(ri)
	if frames == 0 || corrupted != 0 {
		t.Fatalf("verify = %d frames, %d corrupted", frames, corrupted)
	}
}

// TestCorruptFaultRepaired: a corrupted write is caught by readback
// verification and the retry rewrites clean frames.
func TestCorruptFaultRepaired(t *testing.T) {
	m, p := sdr2Manager(t)
	m.SetFaultPlan(&FaultPlan{Script: []FaultKind{FaultCorrupt, FaultPass}})
	ri := p.RegionIndex(sdr.Demodulator)
	if err := m.Configure(ri, 200, 0); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.FaultsInjected != 1 || st.CorruptionsRepaired != 1 || st.Retries != 1 {
		t.Fatalf("stats = %+v, want 1 fault, 1 repair, 1 retry", st)
	}
	if _, corrupted := m.VerifyRegion(ri); corrupted != 0 {
		t.Fatalf("%d corrupted frames survived the repair", corrupted)
	}
}

// TestStuckFaultHardFails: a stuck port exhausts the retry budget, the
// operation fails with KindFaulted, and no half-written configuration
// lingers — a clean retry of the same configure succeeds.
func TestStuckFaultHardFails(t *testing.T) {
	m, p := sdr2Manager(t)
	m.SetFaultPlan(&FaultPlan{Script: []FaultKind{FaultStuck}})
	ri := p.RegionIndex(sdr.SignalDecoder)
	err := m.Configure(ri, 7, 0)
	if err == nil {
		t.Fatal("configure succeeded through a stuck port")
	}
	if kind, ok := KindOf(err); !ok || kind != KindFaulted {
		t.Fatalf("error kind = %v (ok %v), want KindFaulted (%v)", kind, ok, err)
	}
	if !errors.Is(err, ErrFaultInjected) {
		t.Fatalf("error %v does not wrap ErrFaultInjected", err)
	}
	st := m.Stats()
	if st.Retries != DefaultMaxAttempts-1 {
		t.Fatalf("retries = %d, want %d", st.Retries, DefaultMaxAttempts-1)
	}
	if m.CurrentSlot(ri) != -1 || st.Configurations != 0 {
		t.Fatalf("failed configure left state: slot %d, %+v", m.CurrentSlot(ri), st)
	}

	m.SetFaultPlan(nil)
	if err := m.Configure(ri, 7, 0); err != nil {
		t.Fatalf("clean configure after fault failure: %v", err)
	}
	if _, corrupted := m.VerifyRegion(ri); corrupted != 0 {
		t.Fatalf("%d corrupted frames after recovery", corrupted)
	}
}

// TestScheduleRollsBackOnHardFault: a schedule that hard-fails mid-way
// is unwound in reverse — the layout and the configuration memory end
// frame-for-frame identical to where they started.
func TestScheduleRollsBackOnHardFault(t *testing.T) {
	m, p := sdr2Manager(t)
	ri := p.RegionIndex(sdr.SignalDecoder)
	if err := m.Configure(ri, 7, 0); err != nil {
		t.Fatal(err)
	}
	digest := m.FrameDigest()

	// First move's single write passes; the second move's port is stuck.
	m.SetFaultPlan(&FaultPlan{Script: []FaultKind{FaultPass, FaultStuck}})
	rep, err := m.ExecuteSchedule([]Move{{Region: ri, Slot: 1}, {Region: ri, Slot: 2}})
	if err == nil {
		t.Fatal("schedule succeeded through a stuck port")
	}
	if !errors.Is(err, ErrFaultInjected) {
		t.Fatalf("schedule error %v does not wrap ErrFaultInjected", err)
	}
	if rep.Executed != 0 || rep.RolledBack != 1 {
		t.Fatalf("report = %+v, want net 0 executed, 1 rolled back", rep)
	}
	if m.CurrentSlot(ri) != 0 {
		t.Fatalf("region left at slot %d after rollback", m.CurrentSlot(ri))
	}
	if got := m.FrameDigest(); got != digest {
		t.Fatalf("frame digest %08x after rollback, want %08x — fabric diverged", got, digest)
	}
	st := m.Stats()
	if st.Rollbacks != 1 {
		t.Fatalf("stats = %+v, want 1 rollback", st)
	}
	if _, corrupted := m.VerifyRegion(ri); corrupted != 0 {
		t.Fatalf("%d corrupted frames after rollback", corrupted)
	}
}

// TestFaultPlanWeightedDeterminism: the same seed draws the same fault
// sequence — soaks are reproducible from one integer.
func TestFaultPlanWeightedDeterminism(t *testing.T) {
	draw := func() []FaultKind {
		p := &FaultPlan{Seed: 42}
		p.PassWeight, p.TransientWeight, p.CorruptWeight, p.StuckWeight = DefaultFaultWeights()
		seq := make([]FaultKind, 64)
		for i := range seq {
			seq[i] = p.draw()
		}
		return seq
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
}
