package reconfig

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/sdr"
)

func sdr2Manager(t *testing.T) (*Manager, *core.Problem) {
	t.Helper()
	p := sdr.SDR2()
	sol, err := (&exact.Engine{}).Solve(context.Background(), p, core.SolveOptions{TimeLimit: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, sol, DefaultFrameTime)
	if err != nil {
		t.Fatal(err)
	}
	return m, p
}

func TestSlotsFromFloorplan(t *testing.T) {
	m, p := sdr2Manager(t)
	for ri, r := range p.Regions {
		want := 1
		switch r.Name {
		case sdr.CarrierRecovery, sdr.Demodulator, sdr.SignalDecoder:
			want = 3 // home + 2 free-compatible areas
		}
		if got := len(m.Slots(ri)); got != want {
			t.Fatalf("%s: %d slots, want %d", r.Name, got, want)
		}
	}
}

func TestConfigureAndModeSwitch(t *testing.T) {
	m, p := sdr2Manager(t)
	ri := p.RegionIndex(sdr.CarrierRecovery)
	if err := m.Configure(ri, 100, 0); err != nil {
		t.Fatal(err)
	}
	if m.CurrentSlot(ri) != 0 {
		t.Fatalf("slot = %d", m.CurrentSlot(ri))
	}
	if err := m.Configure(ri, 101, 0); err == nil {
		t.Fatal("double configure accepted")
	}
	if err := m.SwitchMode(ri, 101); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Configurations != 1 || st.ModeSwitches != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Each operation writes the region's 280 frames.
	if st.FramesWritten != 2*280 {
		t.Fatalf("frames = %d, want 560", st.FramesWritten)
	}
	if st.BusyTime != time.Duration(560)*DefaultFrameTime {
		t.Fatalf("busy = %s", st.BusyTime)
	}
}

func TestRelocateBetweenSlots(t *testing.T) {
	m, p := sdr2Manager(t)
	ri := p.RegionIndex(sdr.SignalDecoder)
	if err := m.Configure(ri, 7, 0); err != nil {
		t.Fatal(err)
	}
	for slot := 1; slot < len(m.Slots(ri)); slot++ {
		if err := m.Relocate(ri, slot); err != nil {
			t.Fatalf("relocating to slot %d: %v", slot, err)
		}
		if m.CurrentSlot(ri) != slot {
			t.Fatalf("current slot = %d, want %d", m.CurrentSlot(ri), slot)
		}
	}
	// Back home.
	if err := m.Relocate(ri, 0); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().Relocations; got != 3 {
		t.Fatalf("relocations = %d", got)
	}
	// Relocating to the current slot is a no-op.
	if err := m.Relocate(ri, 0); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().Relocations; got != 3 {
		t.Fatalf("no-op relocation counted: %d", got)
	}
}

func TestRelocateRequiresConfigured(t *testing.T) {
	m, p := sdr2Manager(t)
	ri := p.RegionIndex(sdr.Demodulator)
	if err := m.Relocate(ri, 1); err == nil {
		t.Fatal("relocating an unconfigured region accepted")
	}
	if err := m.Relocate(ri, 99); err == nil {
		t.Fatal("unknown slot accepted")
	}
	if err := m.Relocate(99, 0); err == nil {
		t.Fatal("unknown region accepted")
	}
}

func TestAllRegionsRunningThenRelocate(t *testing.T) {
	m, p := sdr2Manager(t)
	// Configure every region at its home slot.
	for ri := range p.Regions {
		if err := m.Configure(ri, int64(ri), 0); err != nil {
			t.Fatalf("configure %s: %v", p.Regions[ri].Name, err)
		}
	}
	// With the whole design running, the relocatable regions can still
	// move into their reserved areas — that is what Definition .2's
	// free-compatibility guarantees.
	for _, ri := range sdr.RelocatableRegions(p) {
		if err := m.Relocate(ri, 1); err != nil {
			t.Fatalf("relocate %s: %v", p.Regions[ri].Name, err)
		}
	}
}

func TestUnloadFreesSlot(t *testing.T) {
	m, p := sdr2Manager(t)
	ri := p.RegionIndex(sdr.CarrierRecovery)
	if err := m.Configure(ri, 1, 0); err != nil {
		t.Fatal(err)
	}
	m.Unload(ri)
	if m.CurrentSlot(ri) != -1 {
		t.Fatal("unload did not clear the slot")
	}
	if err := m.Configure(ri, 2, 1); err != nil {
		t.Fatalf("configuring after unload: %v", err)
	}
}

func TestLatencyModel(t *testing.T) {
	m, p := sdr2Manager(t)
	full := m.FullDeviceReconfig()
	ri := p.RegionIndex(sdr.CarrierRecovery)
	partial := m.RegionReconfig(ri)
	if partial >= full {
		t.Fatalf("partial %s not below full %s", partial, full)
	}
	// Carrier Recovery is 280 of the device's frames.
	if partial != 280*DefaultFrameTime {
		t.Fatalf("partial = %s", partial)
	}
}

func TestStorageReport(t *testing.T) {
	m, p := sdr2Manager(t)
	rows, err := m.StorageReport(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(p.Regions) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Slots > 1 && r.WithoutRelocation != r.Slots*r.WithRelocation {
			t.Fatalf("%s: storage math wrong: %+v", r.Region, r)
		}
		if r.Slots == 1 && r.WithoutRelocation != r.WithRelocation {
			t.Fatalf("%s: single-slot region should need identical storage", r.Region)
		}
	}
}

func TestNewRejectsInvalidSolution(t *testing.T) {
	p := sdr.SDR2()
	sol := &core.Solution{} // empty: invalid
	if _, err := New(p, sol, 0); err == nil {
		t.Fatal("invalid solution accepted")
	}
}
