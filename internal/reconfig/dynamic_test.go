package reconfig

import (
	"errors"
	"testing"

	"repro/internal/device"
	"repro/internal/grid"
)

func wantKind(t *testing.T, err error, kind ErrKind) {
	t.Helper()
	if err == nil {
		t.Fatalf("want %v error, got nil", kind)
	}
	got, ok := KindOf(err)
	if !ok {
		t.Fatalf("want %v error, got unclassified %v", kind, err)
	}
	if got != kind {
		t.Fatalf("want %v error, got %v: %v", kind, got, err)
	}
}

func TestDynamicLifecycle(t *testing.T) {
	d := device.VirtexFX70T()
	m := NewDynamic(d, DefaultFrameTime)

	// Register a region on a CLB-only band, give it a compatible slot.
	home := grid.Rect{X: 4, Y: 0, W: 3, H: 2}
	ri, err := m.AddRegion("mod-a", home)
	if err != nil {
		t.Fatal(err)
	}
	alt := grid.Rect{X: 4, Y: 4, W: 3, H: 2}
	si, err := m.AddSlot(ri, alt)
	if err != nil {
		t.Fatal(err)
	}
	if si != 1 {
		t.Fatalf("slot index = %d, want 1", si)
	}
	// Re-adding the same area is idempotent.
	if again, err := m.AddSlot(ri, alt); err != nil || again != si {
		t.Fatalf("duplicate AddSlot = (%d, %v), want (%d, nil)", again, err, si)
	}

	if err := m.Configure(ri, 7, 0); err != nil {
		t.Fatal(err)
	}
	if got, ok := m.CurrentArea(ri); !ok || got != home {
		t.Fatalf("CurrentArea = (%v, %v), want (%v, true)", got, ok, home)
	}
	if err := m.Relocate(ri, si); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.CurrentArea(ri); got != alt {
		t.Fatalf("after relocate CurrentArea = %v, want %v", got, alt)
	}
	if frames, corrupted := m.VerifyRegion(ri); frames == 0 || corrupted != 0 {
		t.Fatalf("verify = (%d, %d), want (>0, 0)", frames, corrupted)
	}

	if err := m.RemoveRegion(ri); err != nil {
		t.Fatal(err)
	}
	if !m.Removed(ri) {
		t.Fatal("region not marked removed")
	}
	wantKind(t, m.Configure(ri, 7, 0), KindUnknownRegion)
	if _, ok := m.CurrentArea(ri); ok {
		t.Fatal("removed region still reports a live area")
	}

	// The freed area can host a new region immediately.
	if _, err := m.AddRegion("mod-b", alt); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicAddErrors(t *testing.T) {
	d := device.VirtexFX70T()
	m := NewDynamic(d, DefaultFrameTime)

	// Crossing the PowerPC block is illegal.
	_, err := m.AddRegion("bad", grid.Rect{X: 13, Y: 2, W: 4, H: 2})
	wantKind(t, err, KindIllegalArea)

	ri, err := m.AddRegion("a", grid.Rect{X: 4, Y: 0, W: 3, H: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Configure(ri, 1, 0); err != nil {
		t.Fatal(err)
	}
	// A second region overlapping a live one is rejected...
	_, err = m.AddRegion("b", grid.Rect{X: 5, Y: 1, W: 3, H: 2})
	wantKind(t, err, KindOccupied)
	// ...but an overlapping region is fine while the first is unloaded.
	m.Unload(ri)
	if _, err := m.AddRegion("b", grid.Rect{X: 5, Y: 1, W: 3, H: 2}); err != nil {
		t.Fatal(err)
	}

	// Column 3 is BRAM on FX70T, so a slot shifted one column is not
	// layout-compatible with a CLB-only home.
	_, err = m.AddSlot(ri, grid.Rect{X: 1, Y: 0, W: 3, H: 2})
	wantKind(t, err, KindIncompatible)

	wantKind(t, m.Relocate(ri, 0), KindNotConfigured)
	_, err = m.AddSlot(99, grid.Rect{X: 4, Y: 4, W: 3, H: 2})
	wantKind(t, err, KindUnknownRegion)
}

func TestRelocateOccupiedClassification(t *testing.T) {
	d := device.VirtexFX70T()
	m := NewDynamic(d, DefaultFrameTime)

	ri, err := m.AddRegion("a", grid.Rect{X: 4, Y: 0, W: 3, H: 2})
	if err != nil {
		t.Fatal(err)
	}
	target := grid.Rect{X: 4, Y: 4, W: 3, H: 2}
	si, err := m.AddSlot(ri, target)
	if err != nil {
		t.Fatal(err)
	}
	// A second region sits on the target.
	rj, err := m.AddRegion("b", target)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Configure(ri, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Configure(rj, 2, 0); err != nil {
		t.Fatal(err)
	}
	wantKind(t, m.Relocate(ri, si), KindOccupied)

	// A target overlapping the mover's own live area is also occupied:
	// make-before-break cannot write over itself.
	overlap := grid.Rect{X: 4, Y: 1, W: 3, H: 2}
	so, err := m.AddSlot(ri, overlap)
	if err != nil {
		t.Fatal(err)
	}
	wantKind(t, m.Relocate(ri, so), KindOccupied)

	// Configure into an occupied slot is classified the same way.
	m.Unload(ri)
	wantKind(t, m.Configure(ri, 1, si), KindOccupied)

	var oe *OpError
	err = m.Configure(ri, 1, si)
	if !errors.As(err, &oe) || oe.Op != "configure" || oe.Region != ri || oe.Slot != si {
		t.Fatalf("OpError fields = %+v", oe)
	}
}

func TestExecuteSchedule(t *testing.T) {
	d := device.VirtexFX70T()
	m := NewDynamic(d, DefaultFrameTime)

	// Two regions on one CLB band; compact both leftward, in left-to-right
	// order so each target is free when its move runs.
	ra, err := m.AddRegion("a", grid.Rect{X: 9, Y: 0, W: 3, H: 2})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := m.AddRegion("b", grid.Rect{X: 17, Y: 0, W: 3, H: 2})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := m.AddSlot(ra, grid.Rect{X: 4, Y: 0, W: 3, H: 2})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := m.AddSlot(rb, grid.Rect{X: 9, Y: 0, W: 3, H: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Configure(ra, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Configure(rb, 2, 0); err != nil {
		t.Fatal(err)
	}

	rep, err := m.ExecuteSchedule([]Move{{ra, sa}, {rb, sb}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executed != 2 {
		t.Fatalf("executed = %d, want 2", rep.Executed)
	}
	if rep.CorruptedFrames != 0 || rep.FramesVerified != rep.FramesWritten {
		t.Fatalf("report = %+v, want verified == written and 0 corrupted", rep)
	}
	if rep.BusyTime <= 0 {
		t.Fatalf("busy time = %v", rep.BusyTime)
	}

	// Reversed order breaks: b's target is still under a. The report
	// covers the moves that ran before the failure.
	m2 := NewDynamic(d, DefaultFrameTime)
	ra2, _ := m2.AddRegion("a", grid.Rect{X: 9, Y: 0, W: 3, H: 2})
	rb2, _ := m2.AddRegion("b", grid.Rect{X: 17, Y: 0, W: 3, H: 2})
	sa2, _ := m2.AddSlot(ra2, grid.Rect{X: 4, Y: 0, W: 3, H: 2})
	sb2, _ := m2.AddSlot(rb2, grid.Rect{X: 9, Y: 0, W: 3, H: 2})
	if err := m2.Configure(ra2, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := m2.Configure(rb2, 2, 0); err != nil {
		t.Fatal(err)
	}
	rep2, err := m2.ExecuteSchedule([]Move{{rb2, sb2}, {ra2, sa2}})
	wantKind(t, err, KindOccupied)
	if rep2.Executed != 0 {
		t.Fatalf("executed = %d, want 0", rep2.Executed)
	}
}
