package reconfig

import (
	"fmt"
	"time"

	"repro/internal/bitstream"
	"repro/internal/device"
	"repro/internal/grid"
)

// NewDynamic builds a manager over an empty device for online workloads:
// no problem, no pre-reserved slots. Regions are registered as modules
// arrive (AddRegion), gain relocation targets at run time (AddSlot) and
// are retired as modules depart (RemoveRegion).
func NewDynamic(dev *device.Device, frameTime time.Duration) *Manager {
	if frameTime <= 0 {
		frameTime = DefaultFrameTime
	}
	return &Manager{
		dev:       dev,
		cm:        bitstream.NewConfigMemory(dev),
		frameTime: frameTime,
		store:     map[storeKey]*bitstream.Bitstream{},
	}
}

// AddRegion registers a new region with the given home area and returns
// its index. The area must be placeable on the device and must not
// overlap any live configuration. The region starts unloaded; Configure
// it into slot 0 to bring it up.
func (m *Manager) AddRegion(name string, home grid.Rect) (int, error) {
	const op = "add-region"
	ri := len(m.slots)
	if !m.dev.CanPlace(home) {
		return -1, opErr(op, ri, KindIllegalArea,
			fmt.Sprintf("area %v is outside the device or crosses a forbidden block", home))
	}
	if other, taken := m.occupiedBy(home, -1); taken {
		return -1, opErr(op, ri, KindOccupied,
			fmt.Sprintf("area %v overlaps live region %d (%s)", home, other, m.names[other]))
	}
	m.names = append(m.names, name)
	m.removed = append(m.removed, false)
	m.slots = append(m.slots, []Slot{{Region: ri, Index: 0, Area: home}})
	m.current = append(m.current, -1)
	m.mode = append(m.mode, 0)
	return ri, nil
}

// AddSlot registers a relocation target for a region and returns its slot
// index. The area must be placeable and relocation-compatible with the
// region's home area; it need not be free — occupancy is checked when a
// move actually targets it. Adding an area the region already has is
// idempotent and returns the existing slot index.
func (m *Manager) AddSlot(region int, area grid.Rect) (int, error) {
	const op = "add-slot"
	if err := m.checkRegion(op, region); err != nil {
		return -1, err
	}
	for _, s := range m.slots[region] {
		if s.Area == area {
			return s.Index, nil
		}
	}
	if !m.dev.CanPlace(area) {
		return -1, opErr(op, region, KindIllegalArea,
			fmt.Sprintf("area %v is outside the device or crosses a forbidden block", area))
	}
	if !m.dev.Compatible(m.slots[region][0].Area, area) {
		return -1, opErr(op, region, KindIncompatible,
			fmt.Sprintf("area %v is not compatible with home area %v", area, m.slots[region][0].Area))
	}
	si := len(m.slots[region])
	m.slots[region] = append(m.slots[region], Slot{Region: region, Index: si, Area: area})
	return si, nil
}

// RemoveRegion unloads a region and retires its index: the area is
// released and every later operation on the index fails with
// KindUnknownRegion. Indices are never reused, so handles held by
// callers stay unambiguous.
func (m *Manager) RemoveRegion(region int) error {
	const op = "remove-region"
	if err := m.checkRegion(op, region); err != nil {
		return err
	}
	m.Unload(region)
	m.removed[region] = true
	for key := range m.store {
		if key.region == region {
			delete(m.store, key)
		}
	}
	return nil
}

// Removed reports whether a region index has been retired.
func (m *Manager) Removed(region int) bool {
	return region < 0 || region >= len(m.removed) || m.removed[region]
}

// CurrentArea returns the area a region currently occupies. ok is false
// when the region is unloaded or removed.
func (m *Manager) CurrentArea(region int) (grid.Rect, bool) {
	if region < 0 || region >= len(m.slots) || m.removed[region] || m.current[region] < 0 {
		return grid.Rect{}, false
	}
	return m.slots[region][m.current[region]].Area, true
}

// LiveAreas returns the current area of every loaded region, indexed by
// region. Unloaded and removed regions are absent.
func (m *Manager) LiveAreas() map[int]grid.Rect {
	out := make(map[int]grid.Rect)
	for ri, cur := range m.current {
		if cur < 0 || m.removed[ri] {
			continue
		}
		out[ri] = m.slots[ri][cur].Area
	}
	return out
}
