package reconfig

import (
	"errors"
	"fmt"
)

// ErrKind classifies a Manager operation failure, so callers that drive
// the run-time model programmatically — the session planner, the HTTP
// layer — can map causes to distinct responses and metrics instead of
// string-matching error text.
type ErrKind int

const (
	// KindUnknownRegion: the region index does not exist (or was removed).
	KindUnknownRegion ErrKind = iota
	// KindUnknownSlot: the region has no slot with that index.
	KindUnknownSlot
	// KindNotConfigured: the operation needs a loaded region, but the
	// region holds no configuration.
	KindNotConfigured
	// KindAlreadyConfigured: Configure on a region that is already loaded
	// (use SwitchMode or Unload first).
	KindAlreadyConfigured
	// KindOccupied: the target area overlaps a live configuration — either
	// another region's, or the moving region's own current area (a
	// make-before-break relocation needs a disjoint target).
	KindOccupied
	// KindIncompatible: the target area is not relocation-compatible with
	// the region's home area (Section II compatibility).
	KindIncompatible
	// KindIllegalArea: the area is outside the device or crosses a
	// forbidden block.
	KindIllegalArea
	// KindRejected: the bitstream substrate (filter or config-memory
	// model) rejected the operation for a reason the pre-checks did not
	// anticipate; the wrapped error carries the detail.
	KindRejected
	// KindFaulted: an injected (or, on real hardware, observed)
	// configuration-port fault persisted past the operation's retry
	// budget. The wrapped error is ErrFaultInjected.
	KindFaulted
)

var errKindNames = map[ErrKind]string{
	KindUnknownRegion:     "unknown_region",
	KindUnknownSlot:       "unknown_slot",
	KindNotConfigured:     "not_configured",
	KindAlreadyConfigured: "already_configured",
	KindOccupied:          "occupied",
	KindIncompatible:      "incompatible",
	KindIllegalArea:       "illegal_area",
	KindRejected:          "rejected",
	KindFaulted:           "faulted",
}

func (k ErrKind) String() string {
	if s, ok := errKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("ErrKind(%d)", int(k))
}

// OpError is the structured error every Manager operation returns: the
// operation, the region (and slot, when one was addressed), a machine
// classification and a human detail.
type OpError struct {
	// Op names the failed operation ("configure", "relocate", ...).
	Op string
	// Region is the region index the operation addressed.
	Region int
	// Slot is the slot index, -1 when the operation addressed no slot.
	Slot int
	// Kind is the failure class.
	Kind ErrKind
	// Detail is the human-readable cause.
	Detail string
	// Err is the underlying error, when a lower layer produced one.
	Err error
}

func (e *OpError) Error() string {
	msg := fmt.Sprintf("reconfig: %s region %d", e.Op, e.Region)
	if e.Slot >= 0 {
		msg += fmt.Sprintf(" slot %d", e.Slot)
	}
	msg += ": " + e.Kind.String()
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *OpError) Unwrap() error { return e.Err }

// KindOf extracts the failure class of a Manager error. ok is false when
// err carries no OpError (nil, or a foreign error).
func KindOf(err error) (kind ErrKind, ok bool) {
	var oe *OpError
	if errors.As(err, &oe) {
		return oe.Kind, true
	}
	return 0, false
}

// opErr builds an OpError with no slot.
func opErr(op string, region int, kind ErrKind, detail string) *OpError {
	return &OpError{Op: op, Region: region, Slot: -1, Kind: kind, Detail: detail}
}

// slotErr builds an OpError addressing a slot.
func slotErr(op string, region, slot int, kind ErrKind, detail string) *OpError {
	return &OpError{Op: op, Region: region, Slot: slot, Kind: kind, Detail: detail}
}

// wrapErr builds a KindRejected OpError around a substrate error.
func wrapErr(op string, region, slot int, err error) *OpError {
	return &OpError{Op: op, Region: region, Slot: slot, Kind: KindRejected, Err: err}
}
