package exact

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sdr"
)

// TestParallelMatchesSequential verifies the parallel exact engine
// reaches the same lexicographic optimum as the sequential one.
func TestParallelMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    *core.Problem
	}{{"SDR", sdr.Problem()}, {"SDR2", sdr.SDR2()}, {"SDR3", sdr.SDR3()}} {
		seq, err := (&Engine{}).Solve(context.Background(), tc.p, core.SolveOptions{TimeLimit: 60 * time.Second})
		if err != nil {
			t.Fatalf("%s seq: %v", tc.name, err)
		}
		par, err := (&Engine{}).Solve(context.Background(), tc.p, core.SolveOptions{TimeLimit: 60 * time.Second, Workers: 4})
		if err != nil {
			t.Fatalf("%s par: %v", tc.name, err)
		}
		if err := par.Validate(tc.p); err != nil {
			t.Fatalf("%s par invalid: %v", tc.name, err)
		}
		ms, mp := seq.Metrics(tc.p), par.Metrics(tc.p)
		if !seq.Proven || !par.Proven {
			t.Fatalf("%s: proven seq=%v par=%v", tc.name, seq.Proven, par.Proven)
		}
		if ms.WastedFrames != mp.WastedFrames || ms.RelocationMiss != mp.RelocationMiss {
			t.Fatalf("%s: seq waste %d/miss %g, par waste %d/miss %g",
				tc.name, ms.WastedFrames, ms.RelocationMiss, mp.WastedFrames, mp.RelocationMiss)
		}
		if ms.WireLength != mp.WireLength {
			t.Fatalf("%s: seq wl %g != par wl %g", tc.name, ms.WireLength, mp.WireLength)
		}
	}
}

// TestParallelInfeasible: parallel workers agree on infeasibility.
func TestParallelInfeasible(t *testing.T) {
	base := sdr.Problem()
	p := base.WithFCConstraints([]int{base.RegionIndex(sdr.MatchedFilter)}, 1)
	_, err := (&Engine{}).Solve(context.Background(), p, core.SolveOptions{Workers: 4, TimeLimit: 60 * time.Second})
	if err != core.ErrInfeasible {
		t.Fatalf("err = %v, want infeasible", err)
	}
}
