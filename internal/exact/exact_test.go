package exact

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/grid"
	"repro/internal/sdr"
)

func solve(t *testing.T, p *core.Problem) (*core.Solution, error) {
	t.Helper()
	eng := &Engine{}
	sol, err := eng.Solve(context.Background(), p, core.SolveOptions{TimeLimit: 120 * time.Second})
	if err != nil {
		return nil, err
	}
	if err := sol.Validate(p); err != nil {
		t.Fatalf("engine returned invalid solution: %v", err)
	}
	return sol, nil
}

func TestSDRBaseOptimal(t *testing.T) {
	p := sdr.Problem()
	sol, err := solve(t, p)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Proven {
		t.Fatal("SDR must be solved to proven optimality")
	}
	m := sol.Metrics(p)
	// The optimum of the FX70T tile model (cross-checked by brute force
	// when first established; guards against regressions in the engine
	// or the device model).
	if m.WastedFrames != 126 {
		t.Fatalf("SDR optimal waste = %d, want 126", m.WastedFrames)
	}
}

// TestFeasibilityAnalysis reproduces the Section VI feasibility test: one
// free-compatible area per region at a time is infeasible exactly for the
// Matched Filter and Video Decoder.
func TestFeasibilityAnalysis(t *testing.T) {
	base := sdr.Problem()
	wantInfeasible := map[string]bool{
		sdr.MatchedFilter:   true,
		sdr.CarrierRecovery: false,
		sdr.Demodulator:     false,
		sdr.SignalDecoder:   false,
		sdr.VideoDecoder:    true,
	}
	for ri, region := range base.Regions {
		p := base.WithFCConstraints([]int{ri}, 1)
		_, err := solve(t, p)
		gotInfeasible := errors.Is(err, core.ErrInfeasible)
		if err != nil && !gotInfeasible {
			t.Fatalf("%s: unexpected error %v", region.Name, err)
		}
		if gotInfeasible != wantInfeasible[region.Name] {
			t.Fatalf("%s: infeasible=%v, want %v", region.Name, gotInfeasible, wantInfeasible[region.Name])
		}
	}
}

// TestSDR2SDR3 reproduces the Table II shape: SDR2's relocation
// constraints cost no extra wasted frames over the relocation-free
// optimum, and SDR3 costs at least as much as SDR2.
func TestSDR2SDR3(t *testing.T) {
	base, err := solve(t, sdr.Problem())
	if err != nil {
		t.Fatal(err)
	}
	baseWaste := base.Metrics(sdr.Problem()).WastedFrames

	p2 := sdr.SDR2()
	s2, err := solve(t, p2)
	if err != nil {
		t.Fatal(err)
	}
	m2 := s2.Metrics(p2)
	if m2.PlacedFC != 6 {
		t.Fatalf("SDR2 placed %d FC areas, want 6", m2.PlacedFC)
	}
	if m2.WastedFrames < baseWaste {
		t.Fatalf("SDR2 waste %d below the relocation-free optimum %d", m2.WastedFrames, baseWaste)
	}

	p3 := sdr.SDR3()
	s3, err := solve(t, p3)
	if err != nil {
		t.Fatal(err)
	}
	m3 := s3.Metrics(p3)
	if m3.PlacedFC != 9 {
		t.Fatalf("SDR3 placed %d FC areas, want 9", m3.PlacedFC)
	}
	if m3.WastedFrames < m2.WastedFrames {
		t.Fatalf("SDR3 waste %d below SDR2 waste %d", m3.WastedFrames, m2.WastedFrames)
	}
}

func TestMetricModeDegradesGracefully(t *testing.T) {
	// Request metric-mode FC areas for the Matched Filter (which the
	// feasibility analysis proves impossible): the solve must succeed
	// with the area reported missed.
	base := sdr.Problem()
	p := *base
	p.FCAreas = []core.FCRequest{{Region: p.RegionIndex(sdr.MatchedFilter), Mode: core.RelocMetric}}
	sol, err := solve(t, &p)
	if err != nil {
		t.Fatal(err)
	}
	m := sol.Metrics(&p)
	if m.PlacedFC != 0 || m.RelocationMiss != 1 {
		t.Fatalf("metrics = %+v, want one missed area", m)
	}
	// And mixing in placeable requests keeps them placed.
	p.FCAreas = append(p.FCAreas, core.FCRequest{Region: p.RegionIndex(sdr.CarrierRecovery), Mode: core.RelocMetric})
	sol, err = solve(t, &p)
	if err != nil {
		t.Fatal(err)
	}
	m = sol.Metrics(&p)
	if m.PlacedFC != 1 {
		t.Fatalf("placed %d FC areas, want 1", m.PlacedFC)
	}
}

func TestInfeasibleRegion(t *testing.T) {
	p := &core.Problem{
		Device: device.VirtexFX70T(),
		Regions: []core.Region{
			{Name: "huge", Req: device.Requirements{device.ClassDSP: 17}},
		},
	}
	_, err := (&Engine{}).Solve(context.Background(), p, core.SolveOptions{})
	if !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("err = %v, want infeasible", err)
	}
}

func TestTimeLimitHonored(t *testing.T) {
	p, err := sdr.Synthetic(sdr.GeneratorConfig{Regions: 10, MaxCLB: 30, MaxBRAM: 3, MaxDSP: 2, ChainNets: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	eng := &Engine{}
	_, _ = eng.Solve(context.Background(), p, core.SolveOptions{TimeLimit: 150 * time.Millisecond})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("solve took %s despite 150ms limit", elapsed)
	}
}

func TestContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := sdr.SDR3()
	_, err := (&Engine{}).Solve(ctx, p, core.SolveOptions{})
	// Either a fast solve finished legitimately or the cancellation
	// surfaced as no-solution; both are acceptable, hanging is not.
	if err != nil && !errors.Is(err, core.ErrNoSolution) && !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("unexpected error %v", err)
	}
}

// bruteForce finds the optimal (waste, wirelength) lexicographic solution
// of a tiny problem by complete enumeration over all legal rectangles
// (not just width-minimal ones) — the independent oracle.
func bruteForce(p *core.Problem) (bestWaste int, bestWL float64, found bool) {
	d := p.Device
	var rects []grid.Rect
	var all [][]grid.Rect
	for _, reg := range p.Regions {
		var opts []grid.Rect
		for x := 0; x < d.Width(); x++ {
			for y := 0; y < d.Height(); y++ {
				for w := 1; x+w <= d.Width(); w++ {
					for h := 1; y+h <= d.Height(); h++ {
						r := grid.Rect{X: x, Y: y, W: w, H: h}
						if d.CanPlace(r) && d.Satisfies(r, reg.Req) {
							opts = append(opts, r)
						}
					}
				}
			}
		}
		all = append(all, opts)
	}
	bestWaste = 1 << 30
	var rec func(i int)
	rec = func(i int) {
		if i == len(all) {
			waste := 0
			for ri, r := range rects {
				waste += d.WastedFrames(r, p.Regions[ri].Req)
			}
			wl := core.WireLengthOf(p, rects)
			if waste < bestWaste || (waste == bestWaste && wl < bestWL) {
				bestWaste, bestWL, found = waste, wl, true
			}
			return
		}
		for _, r := range all[i] {
			if grid.AnyOverlap(r, rects) {
				continue
			}
			rects = append(rects, r)
			rec(i + 1)
			rects = rects[:len(rects)-1]
		}
	}
	rec(0)
	return bestWaste, bestWL, found
}

// TestQuickAgainstBruteForce cross-checks the engine against complete
// enumeration on tiny random problems (small device, two regions).
func TestQuickAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := device.MustGenerate(device.GeneratorConfig{
			Width: 6 + rng.Intn(4), Height: 3,
			BRAMEvery: 4, DSPEvery: 7,
			Seed: seed,
		})
		p := &core.Problem{
			Device: d,
			Regions: []core.Region{
				{Name: "A", Req: device.Requirements{device.ClassCLB: 1 + rng.Intn(4)}},
				{Name: "B", Req: device.Requirements{device.ClassCLB: 1 + rng.Intn(3), device.ClassBRAM: rng.Intn(2)}},
			},
			Nets:      []core.Net{{A: 0, B: 1, Weight: 1}},
			Objective: core.DefaultObjective(),
		}
		// Drop zero requirements (Validate requires non-zero total).
		for _, r := range p.Regions {
			for cl, n := range r.Req {
				if n == 0 {
					delete(r.Req, cl)
				}
			}
		}
		wantWaste, wantWL, feasible := bruteForce(p)
		sol, err := (&Engine{}).Solve(context.Background(), p, core.SolveOptions{})
		if !feasible {
			return errors.Is(err, core.ErrInfeasible)
		}
		if err != nil {
			t.Logf("seed %d: %v (oracle waste %d)", seed, err, wantWaste)
			return false
		}
		if sol.Validate(p) != nil {
			return false
		}
		m := sol.Metrics(p)
		if m.WastedFrames != wantWaste {
			t.Logf("seed %d: waste %d vs oracle %d", seed, m.WastedFrames, wantWaste)
			return false
		}
		if m.WireLength > wantWL+1e-9 {
			t.Logf("seed %d: wl %g vs oracle %g", seed, m.WireLength, wantWL)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFCAreasAreFreeCompatible checks Definition .2 end to end: every
// reserved area in an SDR3 solution is compatible with its region and
// overlaps nothing.
func TestFCAreasAreFreeCompatible(t *testing.T) {
	p := sdr.SDR3()
	sol, err := solve(t, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, fc := range sol.FC {
		if !fc.Placed {
			t.Fatal("constraint-mode FC area missing")
		}
		src := sol.Regions[p.FCAreas[fc.Request].Region]
		if !p.Device.Compatible(src, fc.Rect) {
			t.Fatalf("area %v not compatible with %v", fc.Rect, src)
		}
	}
}

func TestSyntheticScaling(t *testing.T) {
	for _, n := range []int{3, 6, 9} {
		p, err := sdr.Synthetic(sdr.GeneratorConfig{
			Regions: n, MaxCLB: 15, MaxBRAM: 2, MaxDSP: 1, ChainNets: true, Seed: int64(n),
		})
		if err != nil {
			t.Fatal(err)
		}
		sol, err := (&Engine{}).Solve(context.Background(), p, core.SolveOptions{TimeLimit: 20 * time.Second})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := sol.Validate(p); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}
