// Package exact implements a combinatorial branch-and-bound floorplanner
// specialized to columnar devices. It optimizes the paper's evaluation
// objective exactly — lexicographically minimizing (missed relocation
// areas, wasted configuration frames, wire length) — and enforces
// free-compatible-area constraints by construction.
//
// Relationship to the paper: the MILP formulations O/HO (internal/model)
// are the paper's algorithms; this engine is the solver substrate that
// makes the Section VI experiments reproducible without a commercial MILP
// solver. It explores the same solution space (width-minimal rectangles on
// the columnar partitioning; free-compatible areas as compatible
// translations, cf. core.EnumerateCandidates) and its solutions validate
// against the same independent checker.
package exact

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/grid"
	"repro/internal/obs"
)

// Engine is the combinatorial exact floorplanner.
type Engine struct {
	// MaxNodes bounds the search (0 = 50M region nodes).
	MaxNodes int64
}

// Name implements core.Engine.
func (e *Engine) Name() string { return "exact" }

// objective triple compared lexicographically: relocation misses, wasted
// frames, wire length.
type triple struct {
	miss  float64
	waste int
	wl    float64
}

func (a triple) less(b triple) bool {
	if a.miss != b.miss {
		return a.miss < b.miss
	}
	if a.waste != b.waste {
		return a.waste < b.waste
	}
	return a.wl < b.wl-1e-9
}

type fcGroup struct {
	// regions is the compatibility set of the group's requests (the
	// primary region first); all requests in a group share it.
	regions  []int
	requests []int // FCRequest indices
	required int   // constraint-mode count
	optional int   // metric-mode count
	weights  []float64
}

// region returns the group's primary region.
func (g fcGroup) region() int { return g.regions[0] }

// sharedBest is the incumbent shared between parallel workers. Workers
// keep a local copy of the best triple for cheap pruning and periodically
// refresh it; installs go through the mutex.
type sharedBest struct {
	mu    sync.Mutex
	best  triple
	sol   *core.Solution
	nodes atomic.Int64
	p     *core.Problem
	sp    obs.Span
}

// tryInstall installs a candidate solution if it improves the shared
// incumbent; it returns the current best either way. Incumbent telemetry
// is emitted under the mutex so the trajectory stays monotone even with
// racing workers.
func (sb *sharedBest) tryInstall(t triple, sol *core.Solution) triple {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if t.less(sb.best) {
		sb.best = t
		sb.sol = sol
		sb.sp.Incumbent(sol.Objective(sb.p))
	}
	return sb.best
}

// snapshot returns the current shared best.
func (sb *sharedBest) snapshot() triple {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.best
}

type searchState struct {
	p       *core.Problem
	dev     *device.Device
	cands   [][]core.Candidate // per region, sorted by waste
	order   []int              // region placement order
	minTail []int              // minTail[k]: sum of min waste of order[k:]
	groups  []fcGroup
	// netsDoneBy[k] lists the nets whose second endpoint is order[k]:
	// placing that region completes them, so the running wire length is
	// maintained incrementally instead of rescanning all nets per node.
	netsDoneBy [][]int
	// groupReadyAt[gi] is the depth k at which every region of groups[gi]
	// is placed — the first depth where its FC bound applies.
	groupReadyAt []int

	mask          *grid.Mask
	placed        []grid.Rect // per region (by region index)
	slotCache     map[grid.Rect][]grid.Rect
	best          triple
	bestSol       *core.Solution
	nodes         int64
	pruned        int64
	maxNodes      int64
	deadline      time.Time
	ctx           context.Context
	checkTick     int64
	aborted       bool
	lastPublished int64 // nodes already added to shared.nodes

	// sp is the engine's telemetry span; node/prune counts are flushed to
	// it in batches (at budget-check ticks and once at search exit) so the
	// hot DFS loop pays no per-node probe call.
	sp            obs.Span
	lastObsNodes  int64
	lastObsPruned int64

	// shared, when non-nil, is the cross-worker incumbent of a parallel
	// solve; best is then a local (possibly stale) copy and bestSol is
	// ignored in favor of shared.sol.
	shared *sharedBest
	// rootStride/rootOffset partition the first region's candidates
	// round-robin across parallel workers (stride <= 1 = all).
	rootStride, rootOffset int
}

// Solve implements core.Engine.
func (e *Engine) Solve(ctx context.Context, p *core.Problem, opts core.SolveOptions) (sol *core.Solution, err error) {
	opts = opts.Normalized()
	start := time.Now()
	var deadline time.Time
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit)
	}
	// The span opens before any early return so that validation failures
	// and pre-canceled contexts still produce a terminal record.
	sp := opts.Probe.Span(e.Name())
	defer func() { sp.End(core.ObsOutcome(sol, err), obs.SlackUntil(deadline)) }()

	if err = p.Validate(); err != nil {
		return nil, err
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("%w: %w", core.ErrNoSolution, cerr)
	}

	st := &searchState{
		p:        p,
		dev:      p.Device,
		mask:     grid.NewMask(p.Device.Width(), p.Device.Height()),
		placed:   make([]grid.Rect, len(p.Regions)),
		best:     triple{miss: math.Inf(1), waste: math.MaxInt64 / 4, wl: math.Inf(1)},
		maxNodes: e.MaxNodes,
		ctx:      ctx,
		deadline: deadline,
		sp:       sp,
	}
	if st.maxNodes <= 0 {
		st.maxNodes = 50_000_000
	}

	// Group FC requests by compatibility set.
	st.groups = buildGroups(p)

	// Regions tied into a multi-region compatibility set may need
	// non-width-minimal shapes to align their signatures with their
	// partners', so they get the full candidate enumeration; everyone
	// else keeps the lossless width-minimal set.
	needsAll := make([]bool, len(p.Regions))
	for _, g := range st.groups {
		if len(g.regions) > 1 {
			for _, ri := range g.regions {
				needsAll[ri] = true
			}
		}
	}

	// Candidate enumeration per region.
	st.cands = make([][]core.Candidate, len(p.Regions))
	for i, r := range p.Regions {
		if needsAll[i] {
			st.cands[i] = core.CachedAllCandidatesFor(p.Device, r.Req, sp)
		} else {
			st.cands[i] = core.CachedCandidatesFor(p.Device, r.Req, sp)
		}
		if len(st.cands[i]) == 0 {
			return nil, fmt.Errorf("%w: region %q cannot be placed anywhere", core.ErrInfeasible, r.Name)
		}
	}

	// Region order: most constrained first (fewest candidates), with
	// FC-burdened regions earlier so compatibility pruning bites sooner.
	st.order = make([]int, len(p.Regions))
	for i := range st.order {
		st.order[i] = i
	}
	fcCount := p.FCCountByRegion()
	sort.SliceStable(st.order, func(a, b int) bool {
		ra, rb := st.order[a], st.order[b]
		ka := len(st.cands[ra]) - 1000*fcCount[ra]
		kb := len(st.cands[rb]) - 1000*fcCount[rb]
		if ka != kb {
			return ka < kb
		}
		return ra < rb
	})
	st.minTail = make([]int, len(st.order)+1)
	for k := len(st.order) - 1; k >= 0; k-- {
		st.minTail[k] = st.minTail[k+1] + st.cands[st.order[k]][0].Waste
	}

	// Precompute the per-depth hot-path tables (see the field comments):
	// these replace the per-node map allocations that dominated the DFS.
	orderPos := make([]int, len(p.Regions))
	for k, ri := range st.order {
		orderPos[ri] = k
	}
	st.netsDoneBy = make([][]int, len(st.order))
	for e, net := range p.Nets {
		last := orderPos[net.A]
		if orderPos[net.B] > last {
			last = orderPos[net.B]
		}
		st.netsDoneBy[last] = append(st.netsDoneBy[last], e)
	}
	st.groupReadyAt = make([]int, len(st.groups))
	for gi, g := range st.groups {
		ready := 0
		for _, ri := range g.regions {
			if orderPos[ri]+1 > ready {
				ready = orderPos[ri] + 1
			}
		}
		st.groupReadyAt[gi] = ready
	}

	// Candidate enumeration and ordering above can take a while on a cold
	// cache; re-check the context before committing to the search.
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("%w: %w", core.ErrNoSolution, cerr)
	}

	workers := opts.Workers // >= 1 after normalization
	var (
		bestSol *core.Solution
		nodes   int64
		aborted bool
	)
	if workers <= 1 {
		st.placeRegion(0, 0, 0)
		st.flushObs()
		bestSol, nodes, aborted = st.bestSol, st.nodes, st.aborted
	} else {
		bestSol, nodes, aborted = e.solveParallel(st, workers)
	}

	if bestSol == nil {
		if aborted {
			return nil, core.ErrNoSolution
		}
		return nil, core.ErrInfeasible
	}
	bestSol.Engine = e.Name()
	bestSol.Proven = !aborted
	bestSol.Elapsed = time.Since(start)
	bestSol.Nodes = int(nodes)
	return bestSol, nil
}

// solveParallel fans the search out over workers: the first region's
// candidate list is partitioned round-robin and each worker explores its
// subtrees with a private mask/placement state, sharing only the
// incumbent. The template state contributes its precomputed candidate
// sets, ordering and FC groups (all read-only during the search).
func (e *Engine) solveParallel(tmpl *searchState, workers int) (*core.Solution, int64, bool) {
	shared := &sharedBest{best: tmpl.best, p: tmpl.p, sp: tmpl.sp}
	states := make([]*searchState, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		ws := &searchState{
			p:            tmpl.p,
			dev:          tmpl.dev,
			cands:        tmpl.cands,
			order:        tmpl.order,
			minTail:      tmpl.minTail,
			groups:       tmpl.groups,
			netsDoneBy:   tmpl.netsDoneBy,
			groupReadyAt: tmpl.groupReadyAt,
			mask:         grid.NewMask(tmpl.dev.Width(), tmpl.dev.Height()),
			placed:       make([]grid.Rect, len(tmpl.p.Regions)),
			best:         tmpl.best,
			maxNodes:     tmpl.maxNodes,
			deadline:     tmpl.deadline,
			ctx:          tmpl.ctx,
			sp:           tmpl.sp,
			shared:       shared,
			rootStride:   workers,
			rootOffset:   w,
		}
		states[w] = ws
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws.placeRegion(0, 0, 0)
			ws.flushObs()
		}()
	}
	wg.Wait()
	nodes := shared.nodes.Load()
	aborted := false
	for _, ws := range states {
		nodes += ws.nodes - ws.lastPublished
		aborted = aborted || ws.aborted
	}
	shared.mu.Lock()
	sol := shared.sol
	shared.mu.Unlock()
	return sol, nodes, aborted
}

func buildGroups(p *core.Problem) []fcGroup {
	// Requests sharing the same compatibility set are interchangeable
	// and merge into one group (enables symmetry breaking in the
	// packer); the key is the canonical region set.
	bySet := map[string]*fcGroup{}
	var order []string
	for i, fc := range p.FCAreas {
		regions := fc.CompatRegions()
		key := fmt.Sprint(regions)
		g, ok := bySet[key]
		if !ok {
			g = &fcGroup{regions: regions}
			bySet[key] = g
			order = append(order, key)
		}
		g.requests = append(g.requests, i)
		if fc.Mode == core.RelocConstraint {
			g.required++
		} else {
			g.optional++
			g.weights = append(g.weights, fc.EffectiveWeight())
		}
	}
	sort.Strings(order)
	out := make([]fcGroup, 0, len(order))
	for _, key := range order {
		g := *bySet[key]
		sort.Float64s(g.weights) // cheapest-miss order, used by fcBound
		out = append(out, g)
	}
	return out
}

// flushObs reports the node/prune counts accumulated since the last
// flush to the telemetry span.
func (st *searchState) flushObs() {
	if d := st.nodes - st.lastObsNodes; d > 0 {
		st.sp.Add(obs.Nodes, d)
		st.lastObsNodes = st.nodes
	}
	if d := st.pruned - st.lastObsPruned; d > 0 {
		st.sp.Add(obs.Pruned, d)
		st.lastObsPruned = st.pruned
	}
}

func (st *searchState) outOfBudget() bool {
	if st.aborted {
		return true
	}
	st.checkTick++
	if st.checkTick&1023 == 0 {
		st.flushObs()
		totalNodes := st.nodes
		if st.shared != nil {
			totalNodes = st.shared.nodes.Add(st.nodes - st.lastPublished)
			st.lastPublished = st.nodes
			// Refresh the local incumbent copy for sharper pruning.
			if b := st.shared.snapshot(); b.less(st.best) {
				st.best = b
			}
		}
		if totalNodes > st.maxNodes {
			st.aborted = true
			return true
		}
		if !st.deadline.IsZero() && time.Now().After(st.deadline) {
			st.aborted = true
			return true
		}
		if st.ctx != nil {
			select {
			case <-st.ctx.Done():
				st.aborted = true
				return true
			default:
			}
		}
	}
	return false
}

// placeRegion is the region-level DFS. k indexes st.order; wasteSoFar
// accumulates the waste of regions order[0:k]; wlSoFar is the exact wire
// length of the nets completed by those placements (a valid lower bound
// on the final wire length), maintained incrementally via netsDoneBy.
func (st *searchState) placeRegion(k, wasteSoFar int, wlSoFar float64) {
	if st.outOfBudget() {
		return
	}
	if k == len(st.order) {
		st.finishRegions(wasteSoFar, wlSoFar)
		return
	}
	ri := st.order[k]
	for idx, cand := range st.cands[ri] {
		if k == 0 && st.rootStride > 1 && idx%st.rootStride != st.rootOffset {
			continue // another worker owns this subtree
		}
		// Waste bound: candidates are waste-sorted, so once the bound
		// trips no later candidate can help.
		lb := triple{miss: 0, waste: wasteSoFar + cand.Waste + st.minTail[k+1], wl: wlSoFar}
		if !lb.less(st.best) {
			st.pruned += int64(len(st.cands[ri]) - idx)
			break
		}
		if st.mask.OverlapsRect(cand.Rect) {
			continue
		}
		st.nodes++
		st.mask.SetRect(cand.Rect)
		st.placed[ri] = cand.Rect

		// Refine the bound with the wire length of the nets this placement
		// completes and the relocation misses already forced by the partial
		// placement.
		wl := wlSoFar
		for _, e := range st.netsDoneBy[k] {
			n := &st.p.Nets[e]
			a, b := st.placed[n.A], st.placed[n.B]
			dx := a.CenterX2() - b.CenterX2()
			if dx < 0 {
				dx = -dx
			}
			dy := a.CenterY2() - b.CenterY2()
			if dy < 0 {
				dy = -dy
			}
			wl += n.Weight * float64(dx+dy) / 2
		}
		lb.wl = wl
		feasible, missLB := st.fcBound(k + 1)
		lb.miss = missLB
		if feasible && lb.less(st.best) {
			st.placeRegion(k+1, wasteSoFar+cand.Waste, wl)
		} else {
			st.pruned++
		}

		st.mask.ClearRect(cand.Rect)
		st.placed[ri] = grid.Rect{}
		if st.aborted {
			return
		}
	}
}

// fcBound inspects every already-placed region with FC requests and
// returns whether the constraint-mode requests can still be satisfied,
// plus a lower bound on the metric-mode miss cost. The slot count ignores
// unplaced regions and lets slots overlap each other, so it upper-bounds
// the truly packable count — both results are admissible for pruning.
func (st *searchState) fcBound(k int) (feasible bool, missLB float64) {
	for gi, g := range st.groups {
		if st.groupReadyAt[gi] > k {
			continue // some member region not yet placed
		}
		want := g.required + g.optional
		slots := st.countFreeSlotsForGroup(g, want)
		if slots < g.required {
			return false, 0
		}
		if shortfall := want - slots; shortfall > 0 {
			// The cheapest optional requests are the ones optimally
			// missed; weights are the group's metric requests, sorted
			// ascending by buildGroups.
			for i := 0; i < shortfall && i < len(g.weights); i++ {
				missLB += g.weights[i]
			}
		}
	}
	return true, missLB
}

// countFreeSlotsForGroup counts the group's compatible placements that are
// free in the current mask, stopping early at limit.
func (st *searchState) countFreeSlotsForGroup(g fcGroup, limit int) int {
	n := 0
	for _, slot := range st.groupSlots(g) {
		if !st.mask.OverlapsRect(slot) {
			n++
			if n >= limit {
				return n
			}
		}
	}
	return n
}

// groupSlots enumerates the legal placements compatible with every region
// of the group. Single-region groups use the per-rect cache; multi-region
// sets additionally filter by the extra regions' placements.
func (st *searchState) groupSlots(g fcGroup) []grid.Rect {
	base := st.slotsFor(st.placed[g.region()])
	if len(g.regions) == 1 {
		return base
	}
	out := make([]grid.Rect, 0, len(base))
	for _, slot := range base {
		ok := true
		for _, ri := range g.regions[1:] {
			if slot == st.placed[ri] || !st.dev.Compatible(st.placed[ri], slot) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, slot)
		}
	}
	return out
}

// slotsFor enumerates the legal compatible placements of src (excluding
// src itself, which is occupied by the region). Results are cached per
// source rectangle: the same candidate rectangles recur across millions
// of search nodes.
func (st *searchState) slotsFor(src grid.Rect) []grid.Rect {
	if st.slotCache == nil {
		st.slotCache = make(map[grid.Rect][]grid.Rect)
	}
	if cached, ok := st.slotCache[src]; ok {
		return cached
	}
	all := st.dev.CompatiblePlacements(src)
	out := make([]grid.Rect, 0, len(all))
	for _, r := range all {
		if r != src {
			out = append(out, r)
		}
	}
	st.slotCache[src] = out
	return out
}

// finishRegions runs after all regions are placed: solve the FC packing
// subproblem and record the solution if it improves the incumbent. wl is
// the incrementally-maintained total wire length (every net is complete
// at full depth), kept instead of recomputing so bound comparisons along
// the DFS path and here use bit-identical values.
func (st *searchState) finishRegions(waste int, wl float64) {
	lb := triple{miss: 0, waste: waste, wl: wl}
	if !lb.less(st.best) {
		return
	}
	fcRects, miss, ok := st.solveFC(triple{miss: st.best.miss, waste: waste, wl: wl})
	if !ok {
		return
	}
	got := triple{miss: miss, waste: waste, wl: wl}
	if !got.less(st.best) {
		return
	}
	sol := &core.Solution{
		Regions: append([]grid.Rect(nil), st.placed...),
		FC:      make([]core.FCPlacement, len(st.p.FCAreas)),
	}
	for i := range sol.FC {
		sol.FC[i] = core.FCPlacement{Request: i}
	}
	for req, r := range fcRects {
		sol.FC[req].Placed = true
		sol.FC[req].Rect = r
	}
	if st.shared != nil {
		st.best = st.shared.tryInstall(got, sol)
		return
	}
	st.best = got
	st.bestSol = sol
	st.sp.Incumbent(sol.Objective(st.p))
}

// solveFC packs the free-compatible areas given the fixed region
// placements. It returns the placements by request index, the metric-mode
// miss cost, and whether all constraint-mode areas were placed.
func (st *searchState) solveFC(budget triple) (map[int]grid.Rect, float64, bool) {
	if len(st.groups) == 0 {
		return nil, 0, true
	}
	packer := &fcPacker{
		st:     st,
		budget: budget,
		best:   math.Inf(1),
	}
	// Materialize per-group slot lists against the final mask.
	for _, g := range st.groups {
		slots := st.groupSlots(g)
		free := make([]grid.Rect, 0, len(slots))
		for _, s := range slots {
			if !st.mask.OverlapsRect(s) {
				free = append(free, s)
			}
		}
		packer.groups = append(packer.groups, fcWork{group: g, slots: free})
	}
	// Most constrained groups first: fewest slots per requested area.
	sort.SliceStable(packer.groups, func(a, b int) bool {
		ga, gb := packer.groups[a], packer.groups[b]
		la := len(ga.slots) - len(ga.group.requests)
		lb := len(gb.slots) - len(gb.group.requests)
		if la != lb {
			return la < lb
		}
		return ga.group.region() < gb.group.region()
	})
	packer.used = grid.NewMask(st.dev.Width(), st.dev.Height())
	packer.assign = map[int]grid.Rect{}
	packer.solve(0)
	if packer.bestAssign == nil {
		return nil, 0, false
	}
	return packer.bestAssign, packer.best, true
}

type fcWork struct {
	group fcGroup
	slots []grid.Rect
}

// fcPacker places free-compatible areas group by group with backtracking.
// Within a group the areas are interchangeable, so slots are assigned in
// index order (symmetry breaking).
type fcPacker struct {
	st     *searchState
	groups []fcWork
	used   *grid.Mask
	assign map[int]grid.Rect

	budget     triple
	best       float64 // best total miss found
	bestAssign map[int]grid.Rect
	nodes      int
}

func (pk *fcPacker) solve(gi int) {
	pk.nodes++
	if pk.nodes > 2_000_000 {
		return // safety valve; incumbent-so-far stands
	}
	if gi == len(pk.groups) {
		miss := pk.currentMiss()
		if miss < pk.best {
			pk.best = miss
			pk.bestAssign = make(map[int]grid.Rect, len(pk.assign))
			for k, v := range pk.assign {
				pk.bestAssign[k] = v
			}
		}
		return
	}
	g := pk.groups[gi]
	need := len(g.group.requests)
	pk.placeInGroup(gi, 0, 0, need)
}

// placeInGroup assigns the j-th request of group gi using slots starting
// at index from. placedCount tracks how many of the group's areas were
// placed so far.
func (pk *fcPacker) placeInGroup(gi, j, from, remaining int) {
	g := pk.groups[gi]
	if j == len(g.group.requests) {
		pk.solve(gi + 1)
		return
	}
	req := g.group.requests[j]
	mode := pk.st.p.FCAreas[req].Mode

	// Option 1: place it using some slot >= from.
	for si := from; si < len(g.slots); si++ {
		slot := g.slots[si]
		if pk.used.OverlapsRect(slot) {
			continue
		}
		pk.used.SetRect(slot)
		pk.assign[req] = slot
		pk.placeInGroup(gi, j+1, si+1, remaining-1)
		delete(pk.assign, req)
		pk.used.ClearRect(slot)
		if pk.best == 0 {
			return // cannot do better than zero miss
		}
	}

	// Option 2: skip it (metric mode only).
	if mode == core.RelocMetric {
		pk.placeInGroup(gi, j+1, from, remaining-1)
	}
}

func (pk *fcPacker) currentMiss() float64 {
	miss := 0.0
	for _, g := range pk.groups {
		for _, req := range g.group.requests {
			if _, ok := pk.assign[req]; !ok {
				miss += pk.st.p.FCAreas[req].EffectiveWeight()
			}
		}
	}
	return miss
}
